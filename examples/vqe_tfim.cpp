// VQE for the transverse-field Ising model.
//
//   $ ./vqe_tfim [num_qubits] [layers]
//
// Minimizes <H> of H = -J Σ Z_i Z_{i+1} - h Σ X_i over a hardware-efficient
// ansatz using coordinate descent with exact expectation values (the
// simulator's Pauli-expectation path), and compares against the exact ground
// state from dense diagonalization-free power iteration on the (small)
// Hamiltonian matrix.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <numbers>
#include <vector>

#include "common/bits.hpp"
#include "qc/library.hpp"
#include "qc/pauli.hpp"
#include "sv/simulator.hpp"

using namespace svsim;

namespace {

double energy(unsigned n, unsigned layers, const std::vector<double>& params,
              const qc::PauliOperator& ham) {
  sv::Simulator<double> sim;
  return sim.expectation(qc::hardware_efficient_ansatz(n, layers, params),
                         ham);
}

/// Exact ground-state energy by inverse-free power iteration on (cI - H).
double exact_ground_energy(const qc::PauliOperator& ham, unsigned n) {
  const qc::Matrix hm = ham.to_matrix();
  const std::uint64_t dim = pow2(n);
  // Shift so the ground state dominates: c = ||H||_inf bound.
  double shift = 0.0;
  for (const auto& term : ham.terms()) shift += std::abs(term.coefficient);
  std::vector<qc::cplx> v(dim, qc::cplx{1.0, 0.0});
  for (int iter = 0; iter < 600; ++iter) {
    std::vector<qc::cplx> w(dim, qc::cplx{0.0, 0.0});
    for (std::uint64_t r = 0; r < dim; ++r) {
      w[r] = shift * v[r];
      for (std::uint64_t c = 0; c < dim; ++c) w[r] -= hm(r, c) * v[c];
    }
    double norm = 0.0;
    for (const auto& a : w) norm += std::norm(a);
    norm = std::sqrt(norm);
    for (auto& a : w) a /= norm;
    v = std::move(w);
  }
  // Rayleigh quotient.
  qc::cplx e{0.0, 0.0};
  for (std::uint64_t r = 0; r < dim; ++r)
    for (std::uint64_t c = 0; c < dim; ++c)
      e += std::conj(v[r]) * hm(r, c) * v[c];
  return e.real();
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 6;
  const unsigned layers =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 3;
  if (n < 2 || n > 12) {
    std::cerr << "usage: vqe_tfim [2..12] [layers]\n";
    return 1;
  }
  const double J = 1.0, h = 1.0;  // critical point: hardest for VQE
  const auto ham = qc::tfim_hamiltonian(n, J, h);
  const double exact = exact_ground_energy(ham, n);
  std::printf("TFIM chain: n=%u, J=%.1f, h=%.1f, exact E0 = %.6f\n\n", n, J,
              h, exact);

  std::vector<double> params(2ull * n * layers, 0.1);
  double e = energy(n, layers, params, ham);
  std::printf("%6s  %12s  %14s\n", "sweep", "energy", "error_vs_exact");
  std::printf("%6d  %12.6f  %14.6f\n", 0, e, e - exact);

  // Coordinate descent: golden-ratio-free three-point parabolic step per
  // parameter (expectations are trig polynomials, so ±π/2 probes give the
  // exact sinusoidal minimum — the "rotosolve" rule).
  for (int sweep = 1; sweep <= 6; ++sweep) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      const double theta = params[i];
      const double e0 = energy(n, layers, params, ham);
      params[i] = theta + std::numbers::pi / 2;
      const double ep = energy(n, layers, params, ham);
      params[i] = theta - std::numbers::pi / 2;
      const double em = energy(n, layers, params, ham);
      // E(θ) = a + b sin(θ + φ): minimizer in closed form.
      const double phi =
          std::atan2(2.0 * e0 - ep - em, ep - em);
      params[i] = theta - phi - std::numbers::pi / 2 +
                  (2.0 * std::numbers::pi) *
                      std::floor((phi + std::numbers::pi) /
                                 (2.0 * std::numbers::pi));
      // Keep whichever of the candidates is actually best (guards against
      // branch issues in atan2 at degenerate points).
      const double e_new = energy(n, layers, params, ham);
      if (e_new > std::min({e0, ep, em})) {
        const double best = std::min({e0, ep, em});
        params[i] = best == e0 ? theta
                    : best == ep ? theta + std::numbers::pi / 2
                                 : theta - std::numbers::pi / 2;
      }
    }
    e = energy(n, layers, params, ham);
    std::printf("%6d  %12.6f  %14.6f\n", sweep, e, e - exact);
  }

  std::printf("\nfinal relative error: %.3f%%\n",
              100.0 * (e - exact) / std::abs(exact));
  return 0;
}
