// Grover search: find a marked item among 2^n with ~π/4·√N oracle calls.
//
//   $ ./grover_search [num_qubits] [marked_item]
//
// Builds the textbook Grover circuit (phase oracle + diffuser), runs the
// optimal number of iterations, and shows how the success probability grows
// iteration by iteration — including the overshoot past the optimum.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/bits.hpp"
#include "qc/library.hpp"
#include "sv/simulator.hpp"

int main(int argc, char** argv) {
  using namespace svsim;

  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
  const std::uint64_t marked =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
               : (pow2(n) * 2) / 3;
  if (n < 2 || n > 24 || marked >= pow2(n)) {
    std::cerr << "usage: grover_search [2..24] [marked < 2^n]\n";
    return 1;
  }

  const unsigned optimal = qc::grover_optimal_iterations(n);
  std::printf("searching %llu items for |%llu>, optimal iterations: %u\n\n",
              static_cast<unsigned long long>(pow2(n)),
              static_cast<unsigned long long>(marked), optimal);

  sv::Simulator<double> sim;
  std::printf("%10s  %18s\n", "iteration", "P(marked)");
  for (unsigned it : {1u, optimal / 4, optimal / 2, optimal,
                      optimal + optimal / 2}) {
    if (it == 0) continue;
    const auto state = sim.run(qc::grover(n, marked, it));
    std::printf("%10u  %18.6f%s\n", it, state.probability(marked),
                it == optimal ? "   <- optimal" : "");
  }

  // Sample the optimal circuit: the marked item dominates the histogram.
  qc::Circuit c = qc::grover(n, marked);
  c.measure_all();
  const auto counts = sim.sample_counts(c, 200);
  std::size_t hits = counts.count(marked) ? counts.at(marked) : 0;
  std::printf("\n200 shots at the optimum: %zu found the marked item\n", hits);
  return 0;
}
