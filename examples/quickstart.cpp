// Quickstart: build a circuit, simulate it, sample measurement outcomes.
//
//   $ ./quickstart
//
// Prepares a 3-qubit GHZ state with the fluent circuit builder, runs it on
// the double-precision state-vector simulator, prints the exact amplitudes,
// and histograms 1000 measurement shots.
#include <cstdio>
#include <iostream>

#include "qc/circuit.hpp"
#include "sv/simulator.hpp"

int main() {
  using namespace svsim;

  // 1. Build a circuit: H on qubit 0, then a CX ladder -> GHZ state.
  qc::Circuit circuit(3);
  circuit.h(0).cx(0, 1).cx(1, 2);
  std::cout << circuit.to_string() << '\n';

  // 2. Run it. Simulator<T> owns the RNG seed and optional fusion/noise.
  sv::SimulatorOptions options;
  options.seed = 42;
  sv::Simulator<double> simulator(options);
  sv::StateVector<double> state = simulator.run(circuit);

  std::cout << "final amplitudes:\n";
  for (std::uint64_t i = 0; i < state.size(); ++i) {
    const auto a = state.amplitude(i);
    std::printf("  |%llu> : %+.4f %+.4fi   (p = %.4f)\n",
                static_cast<unsigned long long>(i), a.real(), a.imag(),
                state.probability(i));
  }

  // 3. Expectation values of observables.
  qc::PauliOperator parity(3);
  parity.add(1.0, "ZZZ");
  std::cout << "<ZZZ> = " << state.expectation(parity) << "\n\n";

  // 4. Shot-based sampling (the fast path: prepare once, sample many).
  qc::Circuit measured = circuit;
  measured.measure_all();
  const auto counts = simulator.sample_counts(measured, 1000);
  std::cout << "1000 shots:\n";
  for (const auto& [bits, count] : counts)
    std::printf("  %03llu: %zu\n", static_cast<unsigned long long>(bits),
                count);
  return 0;
}
