// Run an OpenQASM 2.0 file: parse, simulate, print counts.
//
//   $ ./qasm_run circuit.qasm [shots]
//   $ ./qasm_run            # runs a built-in demo program
//
// Demonstrates the QASM front-end plus the shot-execution engine (fast path
// for trailing measurements, trajectories for mid-circuit measurement).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "qc/qasm.hpp"
#include "sv/simulator.hpp"

namespace {

const char* kDemo = R"(
// Built-in demo: 4-qubit phase-kickback interferometer.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
h q[1];
h q[2];
x q[3];
cu1(pi/2) q[0],q[3];
cu1(pi/4) q[1],q[3];
cu1(pi/8) q[2],q[3];
h q[0];
h q[1];
h q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace svsim;
  try {
    const qc::Circuit circuit = argc > 1 ? qc::parse_qasm_file(argv[1])
                                         : qc::parse_qasm(kDemo);
    const std::size_t shots =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 1024;

    std::cout << "parsed: " << circuit.num_qubits() << " qubits, "
              << circuit.size() << " ops, depth " << circuit.depth() << "\n";
    for (const auto& [name, count] : circuit.gate_counts())
      std::cout << "  " << name << " x" << count << "\n";

    sv::Simulator<double> sim;
    const auto counts = sim.sample_counts(circuit, shots);
    std::cout << "\ncounts (" << shots << " shots):\n";
    for (const auto& [bits, count] : counts) {
      std::string label;
      for (unsigned b = circuit.num_clbits(); b-- > 0;)
        label += ((bits >> b) & 1) ? '1' : '0';
      std::printf("  %s : %zu\n", label.c_str(), count);
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
