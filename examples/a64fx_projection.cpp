// A64FX performance projection: what would this circuit cost on Fugaku?
//
//   $ ./a64fx_projection [num_qubits]
//
// Takes a QFT workload, runs it for real on the host (small n), then uses
// the machine models to project single-node runtime, power, the effect of
// the boost/eco knobs and gate fusion, and the multi-node scaling over
// Tofu-D — the full performance-analysis pipeline of the library.
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "dist/dist_sim.hpp"
#include "perf/perf_simulator.hpp"
#include "perf/power_model.hpp"
#include "qc/library.hpp"
#include "sv/simulator.hpp"

using namespace svsim;

int main(int argc, char** argv) {
  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 28;
  if (n < 4 || n > 33) {
    std::cerr << "usage: a64fx_projection [4..33]\n";
    return 1;
  }
  const qc::Circuit circuit = qc::qft(n);
  std::cout << "workload: QFT(" << n << "), " << circuit.size()
            << " gates, depth " << circuit.depth() << "\n\n";

  // Host reality check when the state fits comfortably.
  if (n <= 20) {
    sv::Simulator<double> sim;
    Timer t;
    sim.run(circuit);
    std::cout << "host measured wall time: " << t.seconds() << " s\n\n";
  }

  const auto a64fx = machine::MachineSpec::a64fx();

  // Single-node projection with and without fusion, all power modes.
  Table node("Single A64FX node projection",
             {"configuration", "seconds", "watts", "joules", "GFLOP/s",
              "GB/s"});
  for (const bool fusion : {false, true}) {
    for (const auto& m :
         {machine::MachineSpec::a64fx(), machine::MachineSpec::a64fx_boost(),
          machine::MachineSpec::a64fx_eco()}) {
      perf::PerfOptions opts;
      opts.fusion = fusion;
      opts.fusion_width = 4;
      const auto r = perf::simulate_circuit(circuit, m, {}, opts);
      const auto p = perf::estimate_power(circuit, m, {}, opts);
      node.add_row({m.name + (fusion ? " +fuse4" : ""), r.total_seconds,
                    p.average_watts, p.joules, r.achieved_gflops(),
                    r.achieved_bandwidth_gbps()});
    }
  }
  node.print(std::cout);

  // Multi-node projection over Tofu-D.
  const auto tofu = dist::InterconnectSpec::tofu_d();
  Table multi("Multi-node projection (Tofu-D, remap scheduler)",
              {"nodes", "local_qubits", "exchanges", "compute_s", "comm_s",
               "total_s", "speedup"});
  double single = perf::simulate_circuit(circuit, a64fx, {}).total_seconds;
  multi.add_row({std::int64_t{1}, static_cast<std::int64_t>(n),
                 std::int64_t{0}, single, 0.0, single, 1.0});
  for (unsigned d = 2; d <= 8 && n - d >= 20; d += 2) {
    const auto plan =
        dist::plan_distribution(circuit, d, dist::CommScheduler::Remap);
    const auto t = dist::time_plan(plan, a64fx, {}, tofu);
    multi.add_row({static_cast<std::int64_t>(plan.num_nodes()),
                   static_cast<std::int64_t>(n - d),
                   static_cast<std::int64_t>(t.num_exchanges),
                   t.compute_seconds, t.comm_seconds, t.total_seconds,
                   single / t.total_seconds});
  }
  multi.print(std::cout);

  std::cout << "note: model estimates; see DESIGN.md for the substitution\n"
               "of real A64FX hardware by calibrated analytical models.\n";
  return 0;
}
