// Noisy GHZ fidelity: quantum-trajectory noise simulation.
//
//   $ ./noisy_ghz [num_qubits]
//
// Prepares GHZ states under increasing depolarizing noise and reports the
// trajectory-averaged parity <Z..Z> and the state fidelity with the ideal
// GHZ state — the standard decoherence benchmark for NISQ-era studies.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "qc/library.hpp"
#include "sv/simulator.hpp"

int main(int argc, char** argv) {
  using namespace svsim;
  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 6;
  if (n < 2 || n > 16) {
    std::cerr << "usage: noisy_ghz [2..16]\n";
    return 1;
  }
  const qc::Circuit circuit = qc::ghz(n);
  qc::PauliOperator parity(n);
  parity.add(1.0, std::string(n, 'Z'));
  qc::PauliOperator xparity(n);
  xparity.add(1.0, std::string(n, 'X'));

  sv::Simulator<double> ideal;
  const auto ideal_state = ideal.run(circuit);

  std::printf("GHZ(%u): trajectory-averaged observables vs. noise\n\n", n);
  std::printf("%8s  %10s  %10s  %10s\n", "p_depol", "<Z...Z>", "<X...X>",
              "fidelity");
  const int trajectories = 150;
  for (const double p : {0.0, 0.005, 0.02, 0.05, 0.1}) {
    sv::SimulatorOptions opts;
    if (p > 0.0) opts.noise.add_depolarizing(p);
    opts.seed = 11;
    sv::Simulator<double> sim(opts);
    double z = 0.0, x = 0.0, fid = 0.0;
    for (int t = 0; t < trajectories; ++t) {
      const auto state = sim.run(circuit);
      z += state.expectation(parity);
      x += state.expectation(xparity);
      const auto ip = ideal_state.inner_product(state);
      fid += std::norm(ip);
    }
    std::printf("%8.3f  %10.4f  %10.4f  %10.4f\n", p, z / trajectories,
                x / trajectories, fid / trajectories);
  }
  // Depolarizing noise hits Z- and X-parity symmetrically. Pure phase
  // noise does not: the populations (Z-parity) are untouched while the
  // coherence (X-parity) decays — the textbook GHZ decoherence hierarchy.
  std::printf("\npure phase-flip noise: populations vs. coherence\n\n");
  std::printf("%8s  %10s  %10s\n", "p_phase", "<Z...Z>", "<X...X>");
  for (const double p : {0.0, 0.02, 0.05, 0.1}) {
    sv::SimulatorOptions opts;
    if (p > 0.0) opts.noise.add_phase_flip(p);
    opts.seed = 13;
    sv::Simulator<double> sim(opts);
    double z = 0.0, x = 0.0;
    for (int t = 0; t < trajectories; ++t) {
      const auto state = sim.run(circuit);
      z += state.expectation(parity);
      x += state.expectation(xparity);
    }
    std::printf("%8.3f  %10.4f  %10.4f\n", p, z / trajectories,
                x / trajectories);
  }
  std::printf(
      "\nZ-parity is immune to phase flips while X-parity decays --\n"
      "the GHZ coherence is the fragile quantity.\n");
  return 0;
}
