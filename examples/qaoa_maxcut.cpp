// QAOA for MaxCut: variational optimization with exact expectation values.
//
//   $ ./qaoa_maxcut [num_qubits]
//
// Builds a random 3-regular-ish graph, sweeps the p=1 QAOA angles on a
// coarse grid, refines around the best point, and reports the expected cut
// against the exhaustively computed optimum.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/bits.hpp"
#include "qc/library.hpp"
#include "qc/pauli.hpp"
#include "sv/simulator.hpp"

using namespace svsim;

namespace {

/// Expected cut value of the QAOA state for the given angles.
double expected_cut(
    unsigned n, const std::vector<std::tuple<unsigned, unsigned, double>>& edges,
    const qc::PauliOperator& ham, double gamma, double beta) {
  sv::Simulator<double> sim;
  const double h = sim.expectation(qc::qaoa_maxcut(n, edges, {gamma}, {beta}),
                                   ham);
  // C = m/2 + <H> for H = Σ -w/2 Z Z.
  return static_cast<double>(edges.size()) / 2.0 + h;
}

/// Exhaustive MaxCut optimum (n <= ~20).
std::uint64_t brute_force_cut(
    unsigned n,
    const std::vector<std::tuple<unsigned, unsigned, double>>& edges) {
  std::uint64_t best = 0;
  for (std::uint64_t assign = 0; assign < pow2(n); ++assign) {
    std::uint64_t cut = 0;
    for (const auto& [a, b, w] : edges)
      cut += test_bit(assign, a) != test_bit(assign, b);
    best = std::max(best, cut);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 10;
  if (n < 3 || n > 18) {
    std::cerr << "usage: qaoa_maxcut [3..18]\n";
    return 1;
  }
  const auto edges = qc::random_graph(n, n * 3 / 2, /*seed=*/4);
  const auto ham = qc::maxcut_hamiltonian(n, edges);
  std::printf("graph: %u vertices, %zu edges; optimal cut (brute force): %llu\n\n",
              n, edges.size(),
              static_cast<unsigned long long>(brute_force_cut(n, edges)));

  // Coarse grid.
  double best_cut = -1.0, best_gamma = 0.0, best_beta = 0.0;
  for (double gamma = 0.1; gamma < 2.0; gamma += 0.2) {
    for (double beta = 0.1; beta < 1.6; beta += 0.2) {
      const double cut = expected_cut(n, edges, ham, gamma, beta);
      if (cut > best_cut) {
        best_cut = cut;
        best_gamma = gamma;
        best_beta = beta;
      }
    }
  }
  std::printf("coarse grid best: cut=%.3f at (gamma=%.2f, beta=%.2f)\n",
              best_cut, best_gamma, best_beta);

  // Local refinement.
  for (double step = 0.05; step > 0.01; step /= 2) {
    for (const auto& [dg, db] : {std::pair{step, 0.0}, {-step, 0.0},
                                 {0.0, step}, {0.0, -step}}) {
      const double cut =
          expected_cut(n, edges, ham, best_gamma + dg, best_beta + db);
      if (cut > best_cut) {
        best_cut = cut;
        best_gamma += dg;
        best_beta += db;
      }
    }
  }
  std::printf("refined:          cut=%.3f at (gamma=%.3f, beta=%.3f)\n",
              best_cut, best_gamma, best_beta);

  // Sample bitstrings from the optimized state and report the best seen.
  qc::Circuit c = qc::qaoa_maxcut(n, edges, {best_gamma}, {best_beta});
  c.measure_all();
  sv::Simulator<double> sim;
  const auto counts = sim.sample_counts(c, 500);
  std::uint64_t best_sampled = 0;
  for (const auto& [bits, cnt] : counts) {
    std::uint64_t cut = 0;
    for (const auto& [a, b, w] : edges)
      cut += test_bit(bits, a) != test_bit(bits, b);
    best_sampled = std::max(best_sampled, cut);
  }
  std::printf("best cut among 500 sampled bitstrings: %llu\n",
              static_cast<unsigned long long>(best_sampled));
  return 0;
}
