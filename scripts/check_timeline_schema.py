#!/usr/bin/env python3
"""Validate a timeline JSON artifact emitted by `svsim timeline --json`
(or `svsim plan/profile --timeline FILE`).

Usage:
  check_timeline_schema.py TIMELINE.json [TIMELINE2.json ...]
  check_timeline_schema.py --emit-with PATH/TO/svsim [--output-dir DIR]

With --emit-with, the tool is run twice — once on an 8-rank simulated-
distributed QV circuit (with the Chrome trace alongside) and once on a
single-node blocked QFT — and both artifacts are validated. Beyond key and
type checks, the invariants the analysis layer guarantees are enforced:
every rank's events tile its axis gap-free, compute + wire + wait + slack
spans the makespan per rank, wire events pair symmetrically across ranks
through 'partner_event', the critical path's chronological step sum equals
the reported makespan within 1e-9 relative (the recorder is bit-exact; the
tolerance only absorbs JSON round-tripping), no wait event appears on the
path, the what-if baseline reproduces the makespan, and the Chrome trace
carries one pid-3 lane per rank plus the pid-4 wire lane. Exits nonzero
with a diagnostic on the first violation.
"""

import argparse
import json
import math
import os
import subprocess
import sys

EVENT_KINDS = {"compute", "wire", "wait"}
PHASE_KINDS = {"local_sweep", "dense_gate", "exchange", "measure_flush"}
PLAN_INT_KEYS = ("num_qubits", "node_qubits", "local_qubits", "block_qubits",
                 "num_phases", "ranks")
RANK_PID = 3
WIRE_PID = 4

REL_TOL = 1e-9


def fail(msg):
    print(f"check_timeline_schema: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def check_event(where, e):
    if not isinstance(e, dict):
        fail(f"{where} is not an object")
    kind = e.get("kind")
    if kind not in EVENT_KINDS:
        fail(f"{where}: unknown kind {kind!r}")
    if e.get("phase_kind") not in PHASE_KINDS:
        fail(f"{where}: unknown phase_kind {e.get('phase_kind')!r}")
    if not isinstance(e.get("phase"), int) or e["phase"] < 0:
        fail(f"{where}: 'phase' must be a non-negative integer")
    for key in ("start_seconds", "duration_seconds"):
        if not is_num(e.get(key)) or e[key] < 0:
            fail(f"{where}: '{key}' must be a non-negative number")
    if kind == "compute":
        if not isinstance(e.get("gates"), int) or e["gates"] < 0:
            fail(f"{where}: compute event missing 'gates'")
        if e["phase_kind"] == "exchange":
            fail(f"{where}: compute event inside an exchange phase")
    else:
        for key in ("hop", "partner", "rank_bit"):
            if not isinstance(e.get(key), int):
                fail(f"{where}: '{key}' must be an integer")
        if e["phase_kind"] != "exchange":
            fail(f"{where}: {kind} event outside an exchange phase")
    if kind == "wire":
        for key in ("bytes", "fixed_seconds", "transfer_seconds"):
            if not is_num(e.get(key)) or e[key] < 0:
                fail(f"{where}: '{key}' must be a non-negative number")
        if not isinstance(e.get("partner_event"), int) or e["partner_event"] < 0:
            fail(f"{where}: wire event missing 'partner_event'")
        split = e["fixed_seconds"] + e["transfer_seconds"]
        if not math.isclose(e["duration_seconds"], split, rel_tol=REL_TOL):
            fail(f"{where}: duration {e['duration_seconds']} != "
                 f"fixed + transfer {split}")


def check_rank(r, rank, makespan):
    where = f"ranks[{r}]"
    if not isinstance(rank, dict):
        fail(f"{where} is not an object")
    if rank.get("rank") != r:
        fail(f"{where}: rank id {rank.get('rank')!r} breaks dense ordering")
    for key in ("end_seconds", "compute_seconds", "wire_seconds",
                "wait_seconds"):
        if not is_num(rank.get(key)) or rank[key] < 0:
            fail(f"{where}: '{key}' must be a non-negative number")
    events = rank.get("events")
    if not isinstance(events, list):
        fail(f"{where}: 'events' must be an array")

    clock = 0.0
    sums = {"compute": 0.0, "wire": 0.0, "wait": 0.0}
    for i, e in enumerate(events):
        check_event(f"{where}.events[{i}]", e)
        if not math.isclose(e["start_seconds"], clock, rel_tol=REL_TOL,
                            abs_tol=1e-15):
            fail(f"{where}.events[{i}]: starts at {e['start_seconds']}, "
                 f"previous event ended at {clock} — the lane has a gap")
        clock = e["start_seconds"] + e["duration_seconds"]
        sums[e["kind"]] += e["duration_seconds"]
    if not math.isclose(rank["end_seconds"], clock, rel_tol=REL_TOL,
                        abs_tol=1e-15):
        fail(f"{where}: end_seconds {rank['end_seconds']} != last event "
             f"end {clock}")
    if rank["end_seconds"] > makespan * (1 + REL_TOL):
        fail(f"{where}: rank ends after the makespan")
    for kind, key in (("compute", "compute_seconds"), ("wire", "wire_seconds"),
                      ("wait", "wait_seconds")):
        if not math.isclose(rank[key], sums[kind], rel_tol=1e-6,
                            abs_tol=1e-15):
            fail(f"{where}: {key} {rank[key]} != event sum {sums[kind]}")


def check_wire_pairing(ranks):
    wires = 0
    for r, rank in enumerate(ranks):
        for i, e in enumerate(rank["events"]):
            if e["kind"] != "wire":
                continue
            wires += 1
            p = e["partner"]
            if not 0 <= p < len(ranks):
                fail(f"ranks[{r}].events[{i}]: partner {p} out of range")
            partner_events = ranks[p]["events"]
            if e["partner_event"] >= len(partner_events):
                fail(f"ranks[{r}].events[{i}]: partner_event out of range")
            pe = partner_events[e["partner_event"]]
            if (pe["kind"] != "wire" or pe["partner"] != r
                    or pe["partner_event"] != i):
                fail(f"ranks[{r}].events[{i}]: wire pairing with rank {p} is "
                     f"not symmetric")
            for key in ("start_seconds", "duration_seconds", "bytes",
                        "rank_bit"):
                if pe[key] != e[key]:
                    fail(f"ranks[{r}].events[{i}]: '{key}' disagrees with "
                         f"the partner wire")
    return wires


def check_critical_path(doc):
    cp = doc.get("critical_path")
    if not isinstance(cp, dict):
        fail("'critical_path' must be an object")
    for key in ("path_seconds", "compute_seconds", "wire_seconds",
                "wait_seconds"):
        if not is_num(cp.get(key)) or cp[key] < 0:
            fail(f"critical_path.{key} must be a non-negative number")
    steps = cp.get("steps")
    if not isinstance(steps, list) or not steps:
        fail("critical_path.steps must be a non-empty array")

    makespan = doc["makespan_seconds"]
    ranks = doc["ranks"]
    total = 0.0
    clock = 0.0
    for i, s in enumerate(steps):
        where = f"critical_path.steps[{i}]"
        if not isinstance(s, dict):
            fail(f"{where} is not an object")
        if s.get("kind") == "wait":
            fail(f"{where}: a wait event on the critical path — waits are "
                 f"symptoms, the path must cross to the late partner")
        if s.get("kind") not in EVENT_KINDS:
            fail(f"{where}: unknown kind {s.get('kind')!r}")
        r = s.get("rank")
        if not isinstance(r, int) or not 0 <= r < len(ranks):
            fail(f"{where}: rank {r!r} out of range")
        idx = s.get("event_index")
        events = ranks[r]["events"]
        if not isinstance(idx, int) or not 0 <= idx < len(events):
            fail(f"{where}: event_index {idx!r} out of range")
        e = events[idx]
        for key, ekey in (("kind", "kind"), ("phase", "phase"),
                          ("start_seconds", "start_seconds"),
                          ("duration_seconds", "duration_seconds")):
            if s.get(key) != e[ekey]:
                fail(f"{where}: '{key}' disagrees with "
                     f"ranks[{r}].events[{idx}]")
        if s["start_seconds"] < clock * (1 - REL_TOL) - 1e-15:
            fail(f"{where}: steps are not chronological")
        clock = s["start_seconds"] + s["duration_seconds"]
        total += s["duration_seconds"]

    # The invariant of the whole artifact: the path sum is the makespan.
    if not math.isclose(total, makespan, rel_tol=REL_TOL, abs_tol=1e-15):
        fail(f"critical path sums to {total}, makespan is {makespan} "
             f"(relative error {abs(total - makespan) / max(makespan, 1e-300)})")
    if not math.isclose(cp["path_seconds"], makespan, rel_tol=REL_TOL,
                        abs_tol=1e-15):
        fail(f"critical_path.path_seconds {cp['path_seconds']} != makespan "
             f"{makespan}")
    kind_sum = cp["compute_seconds"] + cp["wire_seconds"] + cp["wait_seconds"]
    if not math.isclose(kind_sum, total, rel_tol=1e-6, abs_tol=1e-15):
        fail(f"critical path kind split sums to {kind_sum}, steps to {total}")
    return len(steps)


def check_attribution(doc):
    attribution = doc.get("attribution")
    ranks = doc["ranks"]
    if not isinstance(attribution, list) or len(attribution) != len(ranks):
        fail("'attribution' must list every rank exactly once")
    makespan = doc["makespan_seconds"]
    critical = 0.0
    for r, row in enumerate(attribution):
        where = f"attribution[{r}]"
        if not isinstance(row, dict) or row.get("rank") != r:
            fail(f"{where}: must be ordered by rank")
        for key in ("compute_seconds", "wire_seconds", "wait_seconds",
                    "slack_seconds", "critical_seconds"):
            if not is_num(row.get(key)) or row[key] < 0:
                fail(f"{where}: '{key}' must be a non-negative number")
        span = (row["compute_seconds"] + row["wire_seconds"]
                + row["wait_seconds"] + row["slack_seconds"])
        if makespan > 0 and not math.isclose(span, makespan, rel_tol=1e-6):
            fail(f"{where}: compute+wire+wait+slack {span} does not span the "
                 f"makespan {makespan}")
        critical += row["critical_seconds"]
    if makespan > 0 and not math.isclose(critical, makespan, rel_tol=1e-6):
        fail(f"attribution critical_seconds sum to {critical}, expected the "
             f"makespan {makespan}")

    histogram = doc.get("slack_histogram")
    if not isinstance(histogram, list) or not histogram:
        fail("'slack_histogram' must be a non-empty array")
    if sum(histogram) != len(ranks):
        fail(f"slack_histogram counts {sum(histogram)} ranks, artifact has "
             f"{len(ranks)}")


def check_whatif(doc):
    whatif = doc.get("whatif")
    if not isinstance(whatif, list) or not whatif:
        fail("'whatif' must be a non-empty array")
    makespan = doc["makespan_seconds"]
    for i, w in enumerate(whatif):
        where = f"whatif[{i}]"
        if not isinstance(w, dict) or not isinstance(w.get("name"), str):
            fail(f"{where}: must be an object with a 'name'")
        for key in ("compute_scale", "link_bandwidth_scale", "latency_scale",
                    "makespan_seconds", "baseline_seconds", "speedup"):
            if not is_num(w.get(key)) or w[key] <= 0:
                fail(f"{where}: '{key}' must be a positive number")
        if w["baseline_seconds"] != makespan:
            fail(f"{where}: baseline {w['baseline_seconds']} != recorded "
                 f"makespan {makespan}")
        expect = w["baseline_seconds"] / w["makespan_seconds"]
        if not math.isclose(w["speedup"], expect, rel_tol=1e-6):
            fail(f"{where}: speedup {w['speedup']} != baseline/makespan "
                 f"{expect}")
    first = whatif[0]
    if (first["name"] != "baseline"
            or not math.isclose(first["makespan_seconds"], makespan,
                                rel_tol=REL_TOL)):
        fail("whatif[0] must be the baseline replay reproducing the makespan")


def check_timeline(path, expect_ranks=None):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict):
        fail("top level must be an object")
    if doc.get("version") != 1:
        fail("missing or unsupported 'version'")

    plan = doc.get("plan")
    if not isinstance(plan, dict):
        fail("'plan' must be an object")
    if not isinstance(plan.get("id"), str) or not plan["id"]:
        fail("plan.id must be a non-empty string")
    for key in PLAN_INT_KEYS:
        if not isinstance(plan.get(key), int) or plan[key] < 0:
            fail(f"plan.{key} must be a non-negative integer")
    if plan["local_qubits"] != plan["num_qubits"] - plan["node_qubits"]:
        fail("plan: local_qubits != num_qubits - node_qubits")
    if plan["ranks"] != 1 << plan["node_qubits"]:
        fail("plan: ranks != 2^node_qubits")
    if expect_ranks is not None and plan["ranks"] != expect_ranks:
        fail(f"plan: expected {expect_ranks} ranks, artifact has "
             f"{plan['ranks']}")
    for key in ("machine", "interconnect"):
        if not isinstance(doc.get(key), str) or not doc[key]:
            fail(f"'{key}' must be a non-empty string")
    for key in ("makespan_seconds", "imbalance", "wire_utilization"):
        if not is_num(doc.get(key)) or doc[key] < 0:
            fail(f"'{key}' must be a non-negative number")

    ranks = doc.get("ranks")
    if not isinstance(ranks, list) or len(ranks) != plan["ranks"]:
        fail("'ranks' must hold one entry per rank")
    makespan = doc["makespan_seconds"]
    for r, rank in enumerate(ranks):
        check_rank(r, rank, makespan)
    if not any(rank["events"] for rank in ranks):
        fail("no rank recorded any event — the timeline is empty")

    wires = check_wire_pairing(ranks)
    if plan["node_qubits"] > 0 and wires == 0:
        fail("distributed plan recorded no wire events")
    steps = check_critical_path(doc)
    check_attribution(doc)
    check_whatif(doc)

    print(f"check_timeline_schema: OK: {path}: {plan['ranks']} ranks, "
          f"{sum(len(r['events']) for r in ranks)} events ({wires} wire), "
          f"{steps} path steps, makespan {makespan * 1e6:.3f} us")


def check_chrome_trace(path, expect_ranks):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: 'traceEvents' must be a non-empty array")
    rank_lanes = set()
    wire_lane = 0
    for e in events:
        if e.get("pid") == RANK_PID and e.get("ph") == "X":
            rank_lanes.add(e.get("tid"))
        elif e.get("pid") == WIRE_PID and e.get("ph") == "X":
            wire_lane += 1
        elif e.get("pid") not in (RANK_PID, WIRE_PID):
            fail(f"{path}: pid {e.get('pid')!r} collides with the profiler "
                 f"overlay's reserved pids 0-2")
    if rank_lanes != set(range(expect_ranks)):
        fail(f"{path}: expected one lane per rank 0..{expect_ranks - 1}, "
             f"got {sorted(rank_lanes)}")
    if expect_ranks > 1 and wire_lane == 0:
        fail(f"{path}: multi-rank trace has no wire-lane events")
    print(f"check_timeline_schema: OK: {path}: {expect_ranks} rank lanes, "
          f"{wire_lane} wire-lane slices")


def emit(svsim, out_dir):
    """Emit the two canonical artifacts: 8-rank distributed and single-node."""
    dist_json = os.path.join(out_dir, "timeline_dist.json")
    dist_trace = os.path.join(out_dir, "timeline_dist_trace.json")
    single_json = os.path.join(out_dir, "timeline_single.json")
    jobs = [
        (["timeline", "--qv", "12", "4", "--ranks", "8", "--blocked",
          "--machine", "a64fx", "--json", dist_json,
          "--trace-json", dist_trace], dist_json, dist_trace, 8),
        (["timeline", "--qft", "10", "--blocked", "--machine", "a64fx",
          "--json", single_json], single_json, None, 1),
    ]
    for args, json_path, trace_path, ranks in jobs:
        cmd = [svsim] + args
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            fail(f"'{' '.join(cmd)}' exited {result.returncode}:\n"
                 f"{result.stderr}")
        yield json_path, trace_path, ranks


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("timelines", nargs="*",
                        help="existing timeline JSON artifacts to check")
    parser.add_argument("--emit-with", metavar="SVSIM",
                        help="svsim binary; run it first to emit timelines")
    parser.add_argument("--output-dir", default=".",
                        help="where --emit-with writes its artifacts")
    args = parser.parse_args()

    if args.emit_with:
        for json_path, trace_path, ranks in emit(args.emit_with,
                                                 args.output_dir):
            check_timeline(json_path, expect_ranks=ranks)
            if trace_path:
                check_chrome_trace(trace_path, expect_ranks=ranks)
    elif args.timelines:
        for path in args.timelines:
            check_timeline(path)
    else:
        parser.error("need timeline files or --emit-with")


if __name__ == "__main__":
    main()
