#!/usr/bin/env python3
"""Validate a ProfileReport JSON artifact emitted by `svsim profile --json`
(or `svsim run --profile FILE`).

Usage:
  check_profile_schema.py PROFILE.json [PROFILE2.json ...]
  check_profile_schema.py --emit-with PATH/TO/svsim [--output-dir DIR]

With --emit-with, the tool is run twice — once on a blocked single-node QV
circuit and once on a simulated-distributed one (--ranks 4) — and both
emitted artifacts are validated, so the check exercises the full
profile-join-dump path on the two plan shapes that matter. Beyond key/type
checks, the cross-field invariants consumers rely on are enforced: phase
indices dense and in order, phase kinds drawn from the plan IR vocabulary,
per-phase shares summing to one, the attribution section sorted by
measured time with a cumulative share that ends at ~1, drift ratios
consistent with the measured/modeled pairs they summarize, and roofline
placements zeroed exactly on exchange phases. Exits nonzero with a
diagnostic on the first violation.
"""

import argparse
import json
import math
import os
import subprocess
import sys

KNOWN_KINDS = {"local_sweep", "dense_gate", "exchange", "measure_flush"}

ENV_INT_KEYS = ("threads", "num_qubits", "node_qubits", "local_qubits",
                "block_qubits", "simd_vector_bits", "ranks",
                "declared_cache_budget_bytes", "probed_cache_budget_bytes")
PHASE_NUM_KEYS = ("measured_seconds", "modeled_seconds", "drift_ratio",
                  "measured_bytes", "modeled_bytes", "flops",
                  "exchange_bytes", "sim_exchange_seconds", "measured_gbps",
                  "modeled_gbps", "measured_gflops", "modeled_gflops",
                  "share")
ROOFLINE_NUM_KEYS = ("arithmetic_intensity", "attainable_gflops",
                     "compute_roof_gflops", "bandwidth_gbps")


def fail(msg):
    print(f"check_profile_schema: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def check_phase(i, phase):
    where = f"phases[{i}]"
    if not isinstance(phase, dict):
        fail(f"{where} is not an object")
    if phase.get("index") != i:
        fail(f"{where}: index {phase.get('index')!r} breaks dense ordering")
    kind = phase.get("kind")
    if kind not in KNOWN_KINDS:
        fail(f"{where}: unknown kind {kind!r}")
    for key in ("gates", "hops", "threads", "dropped_spans"):
        if not isinstance(phase.get(key), int) or phase[key] < 0:
            fail(f"{where}: '{key}' must be a non-negative integer")
    for key in PHASE_NUM_KEYS:
        if not is_num(phase.get(key)) or phase[key] < 0:
            fail(f"{where}: '{key}' must be a non-negative number")
    m, mod, ratio = (phase["measured_seconds"], phase["modeled_seconds"],
                     phase["drift_ratio"])
    expect = m / mod if mod > 0 else 0.0
    if not math.isclose(ratio, expect, rel_tol=1e-6, abs_tol=1e-12):
        fail(f"{where}: drift_ratio {ratio} != measured/modeled {expect}")

    roof = phase.get("roofline")
    if not isinstance(roof, dict):
        fail(f"{where}: missing 'roofline' object")
    for key in ROOFLINE_NUM_KEYS:
        if not is_num(roof.get(key)) or roof[key] < 0:
            fail(f"{where}.roofline: '{key}' must be a non-negative number")
    if not isinstance(roof.get("memory_bound"), bool):
        fail(f"{where}.roofline: 'memory_bound' must be a boolean")
    if kind == "exchange":
        if roof["attainable_gflops"] != 0:
            fail(f"{where}: exchange phase carries a roofline placement")
    elif (phase["modeled_bytes"] > 0 and phase["flops"] > 0
          and roof["attainable_gflops"] <= 0):
        # Zero-flop phases (pure permutations) legitimately sit at AI = 0.
        fail(f"{where}: compute phase missing its roofline placement")
    if kind != "exchange" and phase["sim_exchange_seconds"] > 0:
        fail(f"{where}: sim_exchange_seconds on a non-exchange phase")

    hw = phase.get("hw")
    if not isinstance(hw, dict) or not isinstance(hw.get("valid"), bool):
        fail(f"{where}: missing 'hw' object with boolean 'valid'")
    for key in ("cycles", "instructions", "cache_misses"):
        if not isinstance(hw.get(key), int) or hw[key] < 0:
            fail(f"{where}.hw: '{key}' must be a non-negative integer")
    if not is_num(hw.get("ipc")):
        fail(f"{where}.hw: 'ipc' must be a number")


def check_profile(path, expect_ranks=None):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict):
        fail("top level must be an object")
    if doc.get("version") != 1:
        fail("missing or unsupported 'version'")
    if not isinstance(doc.get("partial"), bool):
        fail("'partial' must be a boolean")

    env = doc.get("env")
    if not isinstance(env, dict):
        fail("'env' must be an object")
    if not isinstance(env.get("machine"), str) or not env["machine"]:
        fail("env.machine must be a non-empty string")
    for key in ("simd_isa", "simd_backend"):
        if not isinstance(env.get(key), str) or not env[key]:
            fail(f"env.{key} must be a non-empty string")
    for key in ENV_INT_KEYS:
        if not isinstance(env.get(key), int) or env[key] < 0:
            fail(f"env.{key} must be a non-negative integer")
    for key in ("probe_valid", "cache_budget_warning"):
        if not isinstance(env.get(key), bool):
            fail(f"env.{key} must be a boolean")
    if not is_num(env.get("cache_budget_disagreement")):
        fail("env.cache_budget_disagreement must be a number")
    if env["local_qubits"] != env["num_qubits"] - env["node_qubits"]:
        fail("env: local_qubits != num_qubits - node_qubits")
    if env["ranks"] != 1 << env["node_qubits"]:
        fail("env: ranks != 2^node_qubits")
    if expect_ranks is not None and env["ranks"] != expect_ranks:
        fail(f"env: expected {expect_ranks} ranks, artifact has "
             f"{env['ranks']}")

    totals = doc.get("totals")
    if not isinstance(totals, dict):
        fail("'totals' must be an object")
    for key in ("measured_seconds", "modeled_seconds", "drift_ratio",
                "measured_bytes", "modeled_bytes"):
        if not is_num(totals.get(key)) or totals[key] < 0:
            fail(f"totals.{key} must be a non-negative number")

    phases = doc.get("phases")
    if not isinstance(phases, list) or not phases:
        fail("'phases' must be a non-empty array")
    if totals.get("phases") != len(phases):
        fail(f"totals.phases = {totals.get('phases')!r} but the artifact "
             f"holds {len(phases)}")
    for i, phase in enumerate(phases):
        check_phase(i, phase)
    share_sum = sum(p["share"] for p in phases)
    if not math.isclose(share_sum, 1.0, rel_tol=1e-6):
        fail(f"phase shares sum to {share_sum}, expected 1")
    if not any(p["modeled_seconds"] > 0 for p in phases):
        fail("no phase carries a modeled cost — the cost join is empty")
    m, mod = totals["measured_seconds"], totals["modeled_seconds"]
    expect = m / mod if mod > 0 else 0.0
    if not math.isclose(totals["drift_ratio"], expect, rel_tol=1e-6,
                        abs_tol=1e-12):
        fail(f"totals.drift_ratio {totals['drift_ratio']} != "
             f"measured/modeled {expect}")

    attribution = doc.get("attribution")
    if not isinstance(attribution, list) or len(attribution) != len(phases):
        fail("'attribution' must list every phase exactly once")
    cumulative = 0.0
    prev = math.inf
    seen = set()
    for j, row in enumerate(attribution):
        where = f"attribution[{j}]"
        if not isinstance(row, dict):
            fail(f"{where} is not an object")
        idx = row.get("index")
        if not isinstance(idx, int) or not 0 <= idx < len(phases):
            fail(f"{where}: index {idx!r} out of range")
        if idx in seen:
            fail(f"{where}: phase {idx} attributed twice")
        seen.add(idx)
        if row.get("kind") != phases[idx]["kind"]:
            fail(f"{where}: kind disagrees with phases[{idx}]")
        if not is_num(row.get("measured_seconds")):
            fail(f"{where}: 'measured_seconds' must be a number")
        if row["measured_seconds"] > prev * (1 + 1e-9):
            fail(f"{where}: attribution not sorted by measured time")
        prev = row["measured_seconds"]
        cumulative += row.get("share", 0.0)
        if not math.isclose(row.get("cumulative_share", -1), cumulative,
                            rel_tol=1e-6, abs_tol=1e-12):
            fail(f"{where}: cumulative_share does not accumulate the shares")
    if not math.isclose(cumulative, 1.0, rel_tol=1e-6):
        fail(f"attribution shares sum to {cumulative}, expected 1")

    exchanges = sum(1 for p in phases if p["kind"] == "exchange")
    print(f"check_profile_schema: OK: {path}: {len(phases)} phases "
          f"({exchanges} exchange), ranks={env['ranks']}, "
          f"drift x{totals['drift_ratio']:.3g}"
          f"{' [PARTIAL]' if doc['partial'] else ''}")


def emit(svsim, out_dir):
    """Emit the two canonical artifacts: blocked and simulated-distributed."""
    jobs = [
        (os.path.join(out_dir, "profile_blocked.json"),
         ["profile", "--qv", "12", "6", "--blocked"], 1),
        (os.path.join(out_dir, "profile_dist.json"),
         ["profile", "--qv", "12", "4", "--ranks", "4", "--blocked"], 4),
    ]
    for path, args, ranks in jobs:
        cmd = [svsim] + args + ["--json", path]
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            fail(f"'{' '.join(cmd)}' exited {result.returncode}:\n"
                 f"{result.stderr}")
        yield path, ranks


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("profiles", nargs="*",
                        help="existing profile JSON artifacts to check")
    parser.add_argument("--emit-with", metavar="SVSIM",
                        help="svsim binary; run it first to emit profiles")
    parser.add_argument("--output-dir", default=".",
                        help="where --emit-with writes its artifacts")
    args = parser.parse_args()

    if args.emit_with:
        for path, ranks in emit(args.emit_with, args.output_dir):
            check_profile(path, expect_ranks=ranks)
    elif args.profiles:
        for path in args.profiles:
            check_profile(path)
    else:
        parser.error("need profile files or --emit-with")


if __name__ == "__main__":
    main()
