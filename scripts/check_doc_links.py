#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation (stdlib only).

Scans the given markdown files (default: README.md, EXPERIMENTS.md,
DESIGN.md, ROADMAP.md, and docs/*.md — SERVICE.md included) for inline
links and [[wiki]]-free reference
links, and verifies that every *relative* target resolves to a file or
directory in the repository. Absolute URLs (http/https/mailto) are not
fetched — docs must stay checkable offline — but a malformed scheme-less
`//` target is still an error. Anchors (`file.md#section`) are checked
against the target file's headings.

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link). Runs in CI as the docs-lint step and locally via

    python3 scripts/check_doc_links.py [FILES...]
"""
import argparse
import os
import re
import sys

# Inline links/images: [text](target) — target may carry a "title".
INLINE_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Reference definitions: [label]: target
REFDEF_RE = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.M)
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.M)
FENCE_RE = re.compile(r"```.*?```", re.S)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")

DEFAULT_FILES = ["README.md", "EXPERIMENTS.md", "DESIGN.md", "ROADMAP.md"]


def slugify(heading):
    """GitHub-style anchor slug: lowercase, spaces to dashes, drop others."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\s-]", "", slug)
    return re.sub(r"[\s]+", "-", slug)


def anchors_of(path, cache={}):
    if path not in cache:
        with open(path, encoding="utf-8") as f:
            text = FENCE_RE.sub("", f.read())
        cache[path] = {slugify(h) for h in HEADING_RE.findall(text)}
    return cache[path]


def check_file(md_path, repo_root):
    errors = []
    with open(md_path, encoding="utf-8") as f:
        raw = f.read()
    text = FENCE_RE.sub("", raw)  # links inside code fences are examples
    targets = INLINE_RE.findall(text) + REFDEF_RE.findall(text)
    for target in targets:
        if target.startswith(EXTERNAL):
            continue
        if target.startswith("//"):
            errors.append(f"{md_path}: malformed scheme-less target '{target}'")
            continue
        path_part, _, anchor = target.partition("#")
        if not path_part:  # pure in-page anchor
            if anchor and slugify(anchor) not in anchors_of(md_path):
                errors.append(f"{md_path}: missing anchor '#{anchor}'")
            continue
        base = repo_root if path_part.startswith("/") else os.path.dirname(md_path)
        resolved = os.path.normpath(os.path.join(base, path_part.lstrip("/")))
        if not os.path.exists(resolved):
            errors.append(f"{md_path}: broken link '{target}' -> {resolved}")
            continue
        if anchor and resolved.endswith(".md"):
            if slugify(anchor) not in anchors_of(resolved):
                errors.append(
                    f"{md_path}: '{target}' anchor '#{anchor}' not found")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="markdown files to check")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = args.files
    if not files:
        files = [os.path.join(repo_root, f) for f in DEFAULT_FILES]
        docs = os.path.join(repo_root, "docs")
        if os.path.isdir(docs):
            files += [os.path.join(docs, f) for f in sorted(os.listdir(docs))
                      if f.endswith(".md")]

    errors = []
    checked = 0
    for f in files:
        if not os.path.exists(f):
            errors.append(f"{f}: file not found")
            continue
        checked += 1
        errors.extend(check_file(f, repo_root))

    for e in errors:
        print(e, file=sys.stderr)
    print(f"check_doc_links: {checked} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
