#!/usr/bin/env python3
"""Validates the structured output of the svsim_bench telemetry harness.

Checks the aggregate results document (--json) and/or the per-case JSONL
stream (--jsonl) produced by `svsim_bench --json/--jsonl`:

  * schema_version is 1 and the envelope fields are present;
  * the environment stamp carries the required provenance keys;
  * every expected benchmark case (the reconstructed figures/tables of the
    paper evaluation) is present and did not fail;
  * every record has a stable ID prefixed by its case, a known kind, a
    unit, and a finite value;
  * "measured" records retain their per-rep samples and the summary
    statistics are internally consistent (median within [min, max], value
    equals the median);
  * record IDs are unique across the whole document.

With --emit-with BINARY the script first runs the harness itself (smoke
tier) so ctest can validate the end-to-end pipeline with one test.
"""

import argparse
import json
import math
import subprocess
import sys

EXPECTED_CASES = [
    "abl_design",
    "fig1_target_qubit",
    "fig2_gate_kernels",
    "fig3_thread_scaling",
    "fig4_sve_width",
    "fig5_roofline",
    "fig6_distributed",
    "micro_kernels",
    "simd_kernels",
    "tab1_circuits",
    "tab2_fusion",
    "tab3_power",
    "tab4_precision",
    "tab5_clifford_baseline",
]

ENV_KEYS = [
    "hostname",
    "hw_concurrency",
    "threads",
    "compiler",
    "build_type",
    "clock_ghz",
    "clock_source",
    "stream_gbps",
    "cpu_isa",
    "simd_backend",
    "simd_vector_bits",
    "timestamp_utc",
]

KINDS = {"measured", "model", "derived", "value"}

errors = []


def err(msg):
    errors.append(msg)


def check_env(env, where):
    if not isinstance(env, dict):
        err(f"{where}: env is not an object")
        return
    for key in ENV_KEYS:
        if key not in env:
            err(f"{where}: env missing key '{key}'")


def check_record(rec, case_id, where):
    for key in ("id", "kind", "unit", "value"):
        if key not in rec:
            err(f"{where}: record missing '{key}': {rec}")
            return
    rid = rec["id"]
    if not rid.startswith(case_id + "."):
        err(f"{where}: record id '{rid}' not prefixed by case '{case_id}'")
    if rec["kind"] not in KINDS:
        err(f"{where}: record '{rid}' has unknown kind '{rec['kind']}'")
    value = rec["value"]
    if not isinstance(value, (int, float)) or not math.isfinite(value):
        err(f"{where}: record '{rid}' has non-finite value {value!r}")
    if rec["kind"] == "measured":
        stats = rec.get("stats")
        if not isinstance(stats, dict):
            err(f"{where}: measured record '{rid}' lacks stats")
            return
        samples = stats.get("samples")
        if not isinstance(samples, list) or not samples:
            err(f"{where}: measured record '{rid}' retains no samples")
            return
        lo, hi = stats.get("min"), stats.get("max")
        med = stats.get("median")
        if not (lo is not None and hi is not None and med is not None):
            err(f"{where}: measured record '{rid}' stats incomplete")
            return
        if not (lo - 1e-12 <= med <= hi + 1e-12):
            err(f"{where}: record '{rid}' median {med} outside [{lo}, {hi}]")
        if abs(value - med) > max(1e-12, 1e-9 * abs(med)):
            err(f"{where}: record '{rid}' value {value} != median {med}")
        if len(samples) != stats.get("reps"):
            err(f"{where}: record '{rid}' reps {stats.get('reps')} != "
                f"len(samples) {len(samples)}")


def check_results_json(path):
    with open(path) as f:
        doc = json.load(f)
    where = path
    if doc.get("schema_version") != 1:
        err(f"{where}: schema_version != 1")
    if doc.get("mode") not in ("smoke", "full"):
        err(f"{where}: mode '{doc.get('mode')}' not smoke/full")
    check_env(doc.get("env"), where)

    cases = doc.get("cases", {})
    for case in EXPECTED_CASES:
        if case not in cases:
            err(f"{where}: expected case '{case}' missing")
        elif cases[case].get("failed"):
            err(f"{where}: case '{case}' failed")

    records = doc.get("records", {})
    if not isinstance(records, dict) or not records:
        err(f"{where}: no records")
        return
    for rid, rec in records.items():
        if rec.get("id") != rid:
            err(f"{where}: key '{rid}' != embedded id '{rec.get('id')}'")
        case_id = rec.get("case", "")
        check_record(rec, case_id, where)
    counted = {c: 0 for c in cases}
    for rec in records.values():
        counted[rec.get("case")] = counted.get(rec.get("case"), 0) + 1
    for case, meta in cases.items():
        if not meta.get("failed") and meta.get("records") != counted.get(case, 0):
            err(f"{where}: case '{case}' advertises {meta.get('records')} "
                f"records, found {counted.get(case, 0)}")
    print(f"{path}: {len(records)} records across {len(cases)} cases OK")


def check_results_jsonl(path):
    seen_ids = set()
    seen_cases = set()
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as e:
                err(f"{where}: invalid JSON: {e}")
                continue
            case_id = doc.get("case")
            if not case_id:
                err(f"{where}: line missing 'case'")
                continue
            seen_cases.add(case_id)
            check_env(doc.get("env"), where)
            if doc.get("failed"):
                err(f"{where}: case '{case_id}' failed")
            for rec in doc.get("records", []):
                check_record(rec, case_id, where)
                rid = rec.get("id")
                if rid in seen_ids:
                    err(f"{where}: duplicate record id '{rid}'")
                seen_ids.add(rid)
    for case in EXPECTED_CASES:
        if case not in seen_cases:
            err(f"{path}: expected case '{case}' missing")
    print(f"{path}: {len(seen_ids)} records across {len(seen_cases)} cases OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", help="aggregate results document to validate")
    ap.add_argument("--jsonl", help="per-case JSONL stream to validate")
    ap.add_argument("--emit-with", metavar="BINARY",
                    help="run this svsim_bench binary (smoke tier) first to "
                         "produce the files being validated")
    args = ap.parse_args()
    if not args.json and not args.jsonl:
        ap.error("nothing to validate: pass --json and/or --jsonl")

    if args.emit_with:
        cmd = [args.emit_with, "--smoke", "--no-tables"]
        if args.json:
            cmd += ["--json", args.json]
        if args.jsonl:
            cmd += ["--jsonl", args.jsonl]
        proc = subprocess.run(cmd)
        if proc.returncode != 0:
            print(f"error: {' '.join(cmd)} exited {proc.returncode}",
                  file=sys.stderr)
            return 1

    if args.json:
        check_results_json(args.json)
    if args.jsonl:
        check_results_jsonl(args.jsonl)

    if errors:
        for e in errors:
            print(f"SCHEMA ERROR: {e}", file=sys.stderr)
        print(f"{len(errors)} schema error(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
