#!/usr/bin/env python3
"""Validate an ExecutionPlan JSON document emitted by `svsim plan --dump-plan`.

Usage:
  check_plan_schema.py PLAN.json
  check_plan_schema.py --emit-with PATH/TO/svsim [--output PLAN.json]

With --emit-with, the tool is run first (`plan --qft 10 --ranks 4 --blocked
--dump-plan OUTPUT`) and the emitted file is then validated, so the check
exercises the full compile-and-dump path. Beyond key/type checks, the
structural invariants every executor relies on are enforced: no two
adjacent exchange phases (windows must be maximal), local-sweep operands
strictly below the block boundary, the block boundary at or below the rank
boundary, measure/reset only inside measure_flush phases, and data-moving
hops straddling the rank boundary with a consistent rank bit. Exits nonzero
with a diagnostic on the first violation.
"""

import argparse
import json
import subprocess
import sys

KNOWN_KINDS = {"local_sweep", "dense_gate", "exchange", "measure_flush"}
MEASURE_NAMES = {"measure", "reset"}


def fail(msg):
    print(f"check_plan_schema: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_gate(where, gate, num_qubits):
    if not isinstance(gate, dict):
        fail(f"{where} is not an object")
    name = gate.get("name")
    if not isinstance(name, str) or not name:
        fail(f"{where}: 'name' must be a non-empty string")
    qubits = gate.get("qubits")
    if not isinstance(qubits, list):
        fail(f"{where}: 'qubits' must be a list")
    for q in qubits:
        if not isinstance(q, int) or not 0 <= q < num_qubits:
            fail(f"{where}: qubit {q!r} out of range [0, {num_qubits})")
    return name, qubits


def check_phase(i, phase, doc):
    where = f"phases[{i}]"
    if not isinstance(phase, dict):
        fail(f"{where} is not an object")
    kind = phase.get("kind")
    if kind not in KNOWN_KINDS:
        fail(f"{where}: unknown kind {kind!r}")
    num_qubits = doc["num_qubits"]
    local_qubits = doc["local_qubits"]
    block_qubits = doc["block_qubits"]

    if kind == "exchange":
        if "moves_data" not in phase or not isinstance(phase["moves_data"], bool):
            fail(f"{where}: exchange needs a boolean 'moves_data'")
        hops = phase.get("hops")
        if not isinstance(hops, list) or not hops:
            fail(f"{where}: exchange needs a non-empty 'hops' list")
        total = 0.0
        for j, hop in enumerate(hops):
            hw = f"{where}.hops[{j}]"
            for key in ("local_slot", "node_slot", "rank_bit", "bytes"):
                if key not in hop:
                    fail(f"{hw} missing required key '{key}'")
            if not isinstance(hop["bytes"], (int, float)) or hop["bytes"] < 0:
                fail(f"{hw}: 'bytes' must be a non-negative number")
            total += hop["bytes"]
            if phase["moves_data"]:
                ls, ns = hop["local_slot"], hop["node_slot"]
                if not 0 <= ls < local_qubits:
                    fail(f"{hw}: local_slot {ls} not below the rank boundary")
                if not local_qubits <= ns < num_qubits:
                    fail(f"{hw}: node_slot {ns} not a node slot")
                if hop["rank_bit"] != ns - local_qubits:
                    fail(f"{hw}: rank_bit {hop['rank_bit']} inconsistent "
                         f"with node_slot {ns}")
        if abs(total - phase.get("bytes_per_rank", -1)) > 1e-6 * max(total, 1):
            fail(f"{where}: bytes_per_rank does not equal the hop sum")
        return

    gates = phase.get("gates")
    if not isinstance(gates, list) or not gates:
        fail(f"{where}: '{kind}' needs a non-empty 'gates' list")
    if kind == "dense_gate" and len(gates) != 1:
        fail(f"{where}: dense_gate must hold exactly one gate")
    for j, gate in enumerate(gates):
        name, qubits = check_gate(f"{where}.gates[{j}]", gate, num_qubits)
        is_measure = name in MEASURE_NAMES
        if kind == "measure_flush" and not is_measure:
            fail(f"{where}.gates[{j}]: unitary gate '{name}' inside a "
                 f"measure_flush phase")
        if kind != "measure_flush" and is_measure:
            fail(f"{where}.gates[{j}]: '{name}' outside a measure_flush phase")
        if kind == "local_sweep":
            for q in qubits:
                if q >= block_qubits:
                    fail(f"{where}.gates[{j}]: sweep operand {q} at or above "
                         f"the block boundary {block_qubits}")


def check_plan(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict):
        fail("top level must be an object")
    if doc.get("version") != 1:
        fail("missing or unsupported 'version'")
    for key in ("num_qubits", "node_qubits", "local_qubits", "block_qubits",
                "num_clbits", "ranks"):
        if not isinstance(doc.get(key), int) or doc[key] < 0:
            fail(f"'{key}' must be a non-negative integer")
    if doc["local_qubits"] != doc["num_qubits"] - doc["node_qubits"]:
        fail("local_qubits != num_qubits - node_qubits")
    if doc["block_qubits"] > doc["local_qubits"]:
        fail("block boundary above the rank boundary "
             f"({doc['block_qubits']} > {doc['local_qubits']})")
    if doc["ranks"] != 1 << doc["node_qubits"]:
        fail("ranks != 2^node_qubits")

    slots = doc.get("final_slot_of")
    if (not isinstance(slots, list) or len(slots) != doc["num_qubits"]
            or sorted(slots) != list(range(doc["num_qubits"]))):
        fail("'final_slot_of' must be a permutation of the qubit indices")

    phases = doc.get("phases")
    if not isinstance(phases, list):
        fail("'phases' must be an array")
    prev_exchange = False
    counted = {"sweep_gates": 0, "dense_gates": 0, "free_gates": 0,
               "measure_gates": 0, "num_exchanges": 0}
    for i, phase in enumerate(phases):
        check_phase(i, phase, doc)
        is_exchange = phase.get("kind") == "exchange"
        if is_exchange and prev_exchange:
            fail(f"phases[{i}]: two adjacent exchange phases "
                 f"(windows not coalesced)")
        prev_exchange = is_exchange
        kind = phase["kind"]
        if kind == "local_sweep":
            counted["sweep_gates"] += len(phase["gates"])
        elif kind == "dense_gate":
            free = phase["gates"][0]["name"] in ("id", "barrier")
            counted["free_gates" if free else "dense_gates"] += 1
        elif kind == "measure_flush":
            counted["measure_gates"] += len(phase["gates"])
        else:
            counted["num_exchanges"] += len(phase["hops"])

    stats = doc.get("stats")
    if not isinstance(stats, dict):
        fail("'stats' must be an object")
    for key, value in counted.items():
        if stats.get(key) != value:
            fail(f"stats.{key} = {stats.get(key)!r} but the phases "
                 f"contain {value}")
    print(f"check_plan_schema: OK: {len(phases)} phases, "
          f"{counted['num_exchanges']} exchange hops, "
          f"{stats.get('traversals')} traversals")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("plan", nargs="?", help="existing plan JSON to check")
    parser.add_argument("--emit-with", metavar="SVSIM",
                        help="svsim binary; run it first to emit the plan")
    parser.add_argument("--output", default="plan_schema_check.json",
                        help="where --emit-with writes the plan")
    args = parser.parse_args()

    if args.emit_with:
        path = args.output
        cmd = [args.emit_with, "plan", "--qft", "10", "--ranks", "4",
               "--blocked", "--dump-plan", path]
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            fail(f"'{' '.join(cmd)}' exited {result.returncode}:\n"
                 f"{result.stderr}")
    elif args.plan:
        path = args.plan
    else:
        parser.error("need a plan file or --emit-with")
    check_plan(path)


if __name__ == "__main__":
    main()
