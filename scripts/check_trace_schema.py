#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by `svsim run --trace-json`.

Usage:
  check_trace_schema.py TRACE.json
  check_trace_schema.py --emit-with PATH/TO/svsim [--output TRACE.json]

With --emit-with, the tool is run first (`run --qft 5 --shots 8
--trace-json OUTPUT`) and the emitted file is then validated, so the check
exercises the full emit path. Exits nonzero with a diagnostic on the first
schema violation.
"""

import argparse
import json
import subprocess
import sys

KNOWN_CATEGORIES = {"kernel", "measure", "fusion", "collective", "region"}


def fail(msg):
    print(f"check_trace_schema: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_event(i, ev):
    where = f"traceEvents[{i}]"
    if not isinstance(ev, dict):
        fail(f"{where} is not an object")
    for key in ("name", "cat", "ph", "pid", "tid", "ts", "dur", "args"):
        if key not in ev:
            fail(f"{where} missing required key '{key}'")
    if not isinstance(ev["name"], str) or not ev["name"]:
        fail(f"{where}: 'name' must be a non-empty string")
    if ev["cat"] not in KNOWN_CATEGORIES:
        fail(f"{where}: unknown category '{ev['cat']}'")
    if ev["ph"] != "X":
        fail(f"{where}: expected complete ('X') event, got '{ev['ph']}'")
    for key in ("pid", "tid"):
        if not isinstance(ev[key], int) or ev[key] < 0:
            fail(f"{where}: '{key}' must be a non-negative integer")
    for key in ("ts", "dur"):
        if not isinstance(ev[key], (int, float)) or ev[key] < 0:
            fail(f"{where}: '{key}' must be a non-negative number (µs)")
    args = ev["args"]
    if not isinstance(args, dict):
        fail(f"{where}: 'args' must be an object")
    for key in ("bytes", "stride"):
        if key not in args or not isinstance(args[key], int) or args[key] < 0:
            fail(f"{where}: args.{key} must be a non-negative integer")
    if "qubits" in args:
        q = args["qubits"]
        if not isinstance(q, list) or not q:
            fail(f"{where}: args.qubits must be a non-empty list")
        # Entries are qubit indices; a trailing "+N" string summarizes
        # operands beyond the two recorded per span.
        for entry in q:
            ok = (isinstance(entry, int) and entry >= 0) or (
                isinstance(entry, str) and entry.startswith("+")
            )
            if not ok:
                fail(f"{where}: bad args.qubits entry {entry!r}")


def check_trace(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict):
        fail("top level must be an object")
    if doc.get("displayTimeUnit") not in ("ns", "ms"):
        fail("missing or invalid 'displayTimeUnit'")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("'traceEvents' must be a non-empty array")
    for i, ev in enumerate(events):
        check_event(i, ev)
    kernels = sum(1 for ev in events if ev["cat"] in ("kernel", "measure"))
    if kernels == 0:
        fail("no kernel/measure spans — tracing was not wired into the run")
    # Spans are sorted by start time at export.
    ts = [ev["ts"] for ev in events]
    if ts != sorted(ts):
        fail("events are not sorted by timestamp")
    print(
        f"check_trace_schema: OK: {len(events)} events "
        f"({kernels} kernel/measure spans)"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", help="existing trace JSON to check")
    parser.add_argument("--emit-with", metavar="SVSIM",
                        help="svsim binary; run it first to emit the trace")
    parser.add_argument("--output", default="trace_schema_check.json",
                        help="where --emit-with writes the trace")
    args = parser.parse_args()

    if args.emit_with:
        path = args.output
        cmd = [args.emit_with, "run", "--qft", "5", "--shots", "8",
               "--trace-json", path]
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            fail(f"'{' '.join(cmd)}' exited {result.returncode}:\n"
                 f"{result.stderr}")
    elif args.trace:
        path = args.trace
    else:
        parser.error("need a trace file or --emit-with")
    check_trace(path)


if __name__ == "__main__":
    main()
