#!/usr/bin/env python3
"""Validate a `svsim serve` session transcript against docs/SERVICE.md.

Usage:
  check_service_schema.py TRANSCRIPT.jsonl
  check_service_schema.py --emit-with PATH/TO/svsim [--output TRANSCRIPT.jsonl]
      [--threads N]

With --emit-with, a canned session is first driven through `svsim serve`:
the same QFT job twice (the second submission MUST be a plan-cache hit with
an identical histogram at the same seed), a noisy trajectory job, a
malformed line, and an over-cost job against a tight admission ceiling
(MUST come back `admission_rejected`). The captured transcript is then
validated line by line: every line is a well-formed JSON object, results
carry the counts/cache/admission/timing blocks with consistent types, shot
totals add up, cache attribution matches the summary's plan_cache block,
the summary's svc block accounts every job to a worker, and the summary
accounting (jobs = ok + errors) closes. Exits nonzero with a diagnostic on
the first violation.

Result lines are correlated by job id, never by position: with --threads N
(> 1) the serve loop runs N workers and emits results in completion order.
Concurrent workers may also both miss on the same plan (the "warm" job can
race "cold"), so the warm-submission-must-hit assertion is enforced only at
--threads 1; the bit-identical-histogram assertion holds at every worker
count.
"""

import argparse
import json
import subprocess
import sys

SESSION_JOBS = [
    {"id": "cold", "qft": 5, "shots": 128, "options": {"seed": 11}},
    {"id": "warm", "qft": 5, "shots": 128, "options": {"seed": 11}},
    {"id": "noisy", "qft": 3, "shots": 32, "options": {"seed": 7},
     "noise": {"depolarizing": 0.02, "readout": [0.01, 0.01]}},
    "this line is not JSON",
    {"id": "too-big", "qft": 16, "shots": 100000, "options": {"seed": 1},
     "noise": {"depolarizing": 0.01}},
]
ADMISSION_CEILING = "0.05"  # seconds; admits the small jobs, rejects too-big


def fail(msg):
    print(f"check_service_schema: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_result(i, rec):
    where = f"line {i + 1} (id={rec.get('id')!r})"
    for key, types in (("id", str), ("ok", bool), ("shots", int),
                       ("admission", dict), ("timing", dict)):
        if not isinstance(rec.get(key), types):
            fail(f"{where}: '{key}' must be {types.__name__}")
    timing = rec["timing"]
    for key in ("compile_seconds", "execute_seconds", "total_seconds"):
        if not isinstance(timing.get(key), (int, float)) or timing[key] < 0:
            fail(f"{where}: timing.{key} must be a non-negative number")
    admission = rec["admission"]
    for key in ("modeled_seconds", "limit_seconds"):
        if not isinstance(admission.get(key), (int, float)):
            fail(f"{where}: admission.{key} must be a number")

    if rec["ok"]:
        counts = rec.get("counts")
        if not isinstance(counts, dict) or not counts:
            fail(f"{where}: ok result needs a non-empty 'counts' object")
        total = 0
        for bits, n in counts.items():
            if not bits or set(bits) - {"0", "1"}:
                fail(f"{where}: counts key {bits!r} is not a bitstring")
            if not isinstance(n, int) or n <= 0:
                fail(f"{where}: counts[{bits!r}] must be a positive integer")
            total += n
        if total != rec["shots"]:
            fail(f"{where}: counts sum {total} != shots {rec['shots']}")
        if rec.get("mode") not in ("sampled", "trajectory"):
            fail(f"{where}: 'mode' must be sampled|trajectory")
        expected_execs = 1 if rec["mode"] == "sampled" else rec["shots"]
        if rec.get("executions") != expected_execs:
            fail(f"{where}: executions {rec.get('executions')} inconsistent "
                 f"with {rec['mode']} mode")
        for key in ("batches", "batch_size"):
            if not isinstance(rec.get(key), int) or rec[key] < 1:
                fail(f"{where}: '{key}' must be a positive integer")
    else:
        err = rec.get("error")
        if not isinstance(err, dict):
            fail(f"{where}: failed result needs an 'error' object")
        if err.get("code") not in ("bad_request", "admission_rejected",
                                   "job_failed"):
            fail(f"{where}: unknown error code {err.get('code')!r}")
        if not isinstance(err.get("message"), str) or not err["message"]:
            fail(f"{where}: error.message must be a non-empty string")

    cache = rec.get("cache")
    if cache is not None:
        for key, types in (("hit", bool), ("key", str), ("plan", str),
                           ("footprint_bytes", int)):
            if not isinstance(cache.get(key), types):
                fail(f"{where}: cache.{key} must be {types.__name__}")
        parts = cache["key"].split(".")
        if (len(parts) != 3
                or [p[0] for p in parts] != ["c", "m", "o"]
                or any(len(p) != 17 for p in parts)):
            fail(f"{where}: cache.key {cache['key']!r} is not "
                 f"c<16hex>.m<16hex>.o<16hex>")


def check_summary_svc(summary, jobs):
    svc = summary.get("svc")
    if not isinstance(svc, dict):
        fail("summary needs an 'svc' object")
    workers = svc.get("workers")
    if not isinstance(workers, int) or workers < 1:
        fail("summary: svc.workers must be a positive integer")
    worker_jobs = svc.get("worker_jobs")
    if (not isinstance(worker_jobs, list) or len(worker_jobs) != workers
            or any(not isinstance(j, int) or j < 0 for j in worker_jobs)):
        fail("summary: svc.worker_jobs must list one non-negative job "
             "count per worker")
    if sum(worker_jobs) != jobs:
        fail(f"summary: svc.worker_jobs sums to {sum(worker_jobs)}, "
             f"jobs says {jobs}")
    return workers


def check_transcript(path, expect_session, threads=1):
    try:
        with open(path, encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as e:
        fail(f"{path}: {e}")
    if not lines:
        fail("transcript is empty")
    records = []
    for i, line in enumerate(lines):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"line {i + 1} is not valid JSON: {e}")
        if not isinstance(rec, dict) or rec.get("type") not in ("result",
                                                                "summary"):
            fail(f"line {i + 1}: 'type' must be result|summary")
        records.append(rec)

    if records[-1]["type"] != "summary":
        fail("last line must be the summary record")
    results, summary = records[:-1], records[-1]
    if any(r["type"] != "result" for r in results):
        fail("summary must be the only non-result line, and come last")

    for i, rec in enumerate(results):
        check_result(i, rec)

    ok = [r for r in results if r["ok"]]
    errors = [r for r in results if not r["ok"]]
    cache = summary.get("plan_cache")
    if not isinstance(cache, dict):
        fail("summary needs a 'plan_cache' object")
    for key in ("hits", "misses", "evictions", "entries", "bytes",
                "budget_bytes"):
        if not isinstance(cache.get(key), int) or cache[key] < 0:
            fail(f"summary: plan_cache.{key} must be a non-negative integer")
    checks = {
        "jobs": len(results),
        "ok": len(ok),
        "errors": len(errors),
        "shots": sum(r["shots"] for r in ok),
    }
    for key, expected in checks.items():
        if summary.get(key) != expected:
            fail(f"summary: '{key}' = {summary.get(key)!r}, "
                 f"results say {expected}")
    workers = check_summary_svc(summary, len(results))
    if threads > 1 and workers != threads:
        fail(f"summary: svc.workers = {workers}, expected {threads}")
    hits = [r for r in results if (r.get("cache") or {}).get("hit")]
    misses = [r for r in results if r.get("cache")
              and not r["cache"]["hit"]]
    if cache["hits"] != len(hits) or cache["misses"] != len(misses):
        fail(f"summary plan_cache hits/misses ({cache['hits']}/"
             f"{cache['misses']}) disagree with per-result attribution "
             f"({len(hits)}/{len(misses)})")

    if expect_session:
        by_id = {r["id"]: r for r in results}
        for job_id in ("cold", "warm", "noisy", "too-big"):
            if job_id not in by_id:
                fail(f"canned session: result '{job_id}' missing")
        cold, warm = by_id["cold"], by_id["warm"]
        if threads <= 1:
            # Deterministic single-worker attribution. With concurrent
            # workers, cold and warm may race and both miss; the cache key,
            # plan, and histogram equalities below hold regardless.
            if cold["cache"]["hit"]:
                fail("canned session: first submission must be a cache miss")
            if not warm["cache"]["hit"]:
                fail("canned session: identical resubmission must be a "
                     "plan-cache hit")
            if warm["timing"]["compile_seconds"] != 0:
                fail("canned session: a cache hit must not recompile")
        if warm["cache"]["key"] != cold["cache"]["key"]:
            fail("canned session: identical jobs produced different keys")
        if warm["cache"]["plan"] != cold["cache"]["plan"]:
            fail("canned session: cache hit returned a different plan")
        if warm["counts"] != cold["counts"]:
            fail("canned session: same job + seed must reproduce the "
                 "histogram bit-for-bit")
        if by_id["noisy"]["mode"] != "trajectory":
            fail("canned session: the noisy job must run trajectories")
        too_big = by_id["too-big"]
        if too_big["ok"] or too_big["error"]["code"] != "admission_rejected":
            fail("canned session: the over-cost job must be rejected by "
                 "admission control")
        bad = [r for r in results if not r["ok"]
               and r["error"]["code"] == "bad_request"]
        if not bad:
            fail("canned session: the malformed line must yield bad_request")

    print(f"check_service_schema: OK: {len(results)} results "
          f"({len(ok)} ok, {len(errors)} errors), "
          f"plan cache {cache['hits']} hits / {cache['misses']} misses")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("transcript", nargs="?",
                        help="existing serve transcript to check")
    parser.add_argument("--emit-with", metavar="SVSIM",
                        help="svsim binary; drive the canned session first")
    parser.add_argument("--output", default="service_schema_check.jsonl",
                        help="where --emit-with writes the transcript")
    parser.add_argument("--threads", type=int, default=1,
                        help="serve worker count for --emit-with; > 1 "
                        "relaxes single-worker cache-hit attribution")
    args = parser.parse_args()
    if args.threads < 1:
        parser.error("--threads must be >= 1")

    if args.emit_with:
        path = args.output
        stdin = "\n".join(
            job if isinstance(job, str) else json.dumps(job)
            for job in SESSION_JOBS) + "\n"
        cmd = [args.emit_with, "serve", "--max-seconds", ADMISSION_CEILING,
               "--out", path]
        if args.threads > 1:
            cmd += ["--threads", str(args.threads)]
        result = subprocess.run(cmd, input=stdin, capture_output=True,
                                text=True)
        if result.returncode != 0:
            fail(f"'{' '.join(cmd)}' exited {result.returncode}:\n"
                 f"{result.stderr}")
        check_transcript(path, expect_session=True, threads=args.threads)
    elif args.transcript:
        check_transcript(args.transcript, expect_session=False,
                         threads=args.threads)
    else:
        parser.error("need a transcript file or --emit-with")


if __name__ == "__main__":
    main()
