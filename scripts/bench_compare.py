#!/usr/bin/env python3
"""Noise-aware regression gate over svsim_bench results documents.

Compares a new `BENCH_results.json` (svsim_bench --json) against a stored
baseline and exits nonzero when a measured record regressed beyond what the
noise of BOTH runs can explain:

    new_median - base_median  >  margin * base_median + (base_ci + new_ci)

where each ci is that run's 95% confidence half-width. A record flags only
when the medians are far apart relative to the baseline AND the gap exceeds
the combined statistical noise — so a wobbly record needs a proportionally
bigger jump to flag, and a rock-steady record is gated tightly.

Model/value records are deterministic: they must match to --model-rtol
(relative) or the model itself changed, which is a different kind of drift
the gate also refuses to ignore silently.

Records present in only one of the two documents are reported (the stable
IDs are the contract) but only fail the run with --strict-ids, so the gate
stays usable while benches are being added.

Self test (encodes the gate's own acceptance criterion):
    bench_compare.py --self-test results.json
verifies that a document passes against itself and that a synthetic 2x
slowdown fails, flagging exactly the records whose noise permits detecting
a doubling (a record whose CI half-width rivals its median *cannot*
distinguish 2x — the gate skipping it is correct behaviour, not a miss).
"""

import argparse
import copy
import json
import sys


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    records = doc.get("records")
    if not isinstance(records, dict):
        raise SystemExit(f"error: {path}: not a svsim_bench results document")
    return doc, records


def ci_of(rec):
    stats = rec.get("stats") or {}
    return float(stats.get("ci95", 0.0))


def compare(base_records, new_records, margin, model_rtol, strict_ids):
    """Returns (regressions, improvements, mismatches, missing, extra)."""
    regressions = []
    improvements = []
    mismatches = []
    missing = sorted(set(base_records) - set(new_records))
    extra = sorted(set(new_records) - set(base_records))

    for rid in sorted(set(base_records) & set(new_records)):
        base, new = base_records[rid], new_records[rid]
        if base.get("kind") != new.get("kind"):
            mismatches.append((rid, f"kind changed: {base.get('kind')} -> "
                                    f"{new.get('kind')}"))
            continue
        b, n = float(base["value"]), float(new["value"])
        if base.get("kind") == "measured":
            threshold = margin * b + ci_of(base) + ci_of(new)
            if n - b > threshold:
                regressions.append((rid, b, n, threshold))
            elif b - n > threshold:
                improvements.append((rid, b, n, threshold))
        elif base.get("kind") == "derived":
            # Computed from measured values (speedups, per-gate rates): give
            # them the measured noise margin, direction-agnostic — whether
            # higher is better depends on the unit.
            threshold = margin * abs(b)
            if abs(n - b) > threshold:
                mismatches.append((rid, f"derived value moved beyond the "
                                        f"noise margin: {b:g} -> {n:g}"))
        else:
            scale = max(abs(b), abs(n))
            # Absolute floor so near-zero values (e.g. accuracy records of
            # ~1e-7) do not flag on representation noise.
            if abs(n - b) > model_rtol * scale + 1e-12:
                mismatches.append((rid, f"{base.get('kind')} value changed: "
                                        f"{b:g} -> {n:g}"))

    failed = bool(regressions or mismatches)
    if strict_ids and (missing or extra):
        failed = True
    return failed, regressions, improvements, mismatches, missing, extra


def report(failed, regressions, improvements, mismatches, missing, extra,
           strict_ids):
    for rid, b, n, thr in regressions:
        print(f"REGRESSION  {rid}: {b:g} -> {n:g} "
              f"(+{(n - b) / b * 100 if b else float('inf'):.1f}%, "
              f"threshold {thr:g})")
    for rid, why in mismatches:
        print(f"MISMATCH    {rid}: {why}")
    for rid, b, n, thr in improvements:
        print(f"improvement {rid}: {b:g} -> {n:g} "
              f"({(n - b) / b * 100 if b else 0:.1f}%)")
    for rid in missing:
        print(f"{'MISSING' if strict_ids else 'missing'}     {rid} "
              f"(in baseline, not in new)")
    for rid in extra:
        print(f"{'EXTRA' if strict_ids else 'extra'}       {rid} "
              f"(in new, not in baseline)")
    print(f"summary: {len(regressions)} regression(s), "
          f"{len(mismatches)} mismatch(es), "
          f"{len(improvements)} improvement(s), "
          f"{len(missing)} missing, {len(extra)} extra")
    print("RESULT: " + ("FAIL" if failed else "PASS"))


def self_test(path, margin, model_rtol):
    _, records = load_records(path)
    measured = [r for r in records.values() if r.get("kind") == "measured"]
    if not measured:
        print("self-test: document has no measured records", file=sys.stderr)
        return 1

    failed, *_ = compare(records, records, margin, model_rtol, True)
    if failed:
        print("self-test FAIL: document does not pass against itself",
              file=sys.stderr)
        return 1

    # Double every measured record's distribution wholesale (location AND
    # dispersion), then predict which records the gate's own threshold can
    # flag: base + base_ci + 2*base_ci noise against a gap of base.
    slowed = copy.deepcopy(records)
    for rec in slowed.values():
        if rec.get("kind") == "measured":
            rec["value"] = float(rec["value"]) * 2.0
            stats = rec.get("stats")
            if stats:
                for key in ("mean", "median", "min", "max", "stddev", "mad",
                            "ci95"):
                    if key in stats:
                        stats[key] = float(stats[key]) * 2.0
    detectable = {
        rid for rid, rec in records.items()
        if rec.get("kind") == "measured"
        and float(rec["value"]) > margin * float(rec["value"]) + 3 * ci_of(rec)
    }
    failed, regressions, *_ = compare(records, slowed, margin, model_rtol,
                                      False)
    flagged = {rid for rid, *_ in regressions}
    if not detectable:
        print("self-test FAIL: no measured record is steady enough for a 2x "
              "slowdown to be detectable", file=sys.stderr)
        return 1
    if not failed or flagged != detectable:
        print(f"self-test FAIL: 2x slowdown flagged {len(flagged)} records, "
              f"expected exactly the {len(detectable)} detectable ones "
              f"(diff: {sorted(flagged ^ detectable)})", file=sys.stderr)
        return 1
    skipped = len(measured) - len(detectable)
    note = (f" ({skipped} too noisy for 2x to clear the noise gate)"
            if skipped else "")
    print(f"self-test PASS: identity comparison clean, 2x slowdown flags "
          f"{len(detectable)} of {len(measured)} measured records{note}")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="baseline results document")
    ap.add_argument("new", nargs="?", help="new results document to gate")
    ap.add_argument("--margin", type=float, default=0.10,
                    help="allowed relative slowdown before noise "
                         "(default 0.10)")
    ap.add_argument("--model-rtol", type=float, default=1e-6,
                    help="relative tolerance for model/value records")
    ap.add_argument("--strict-ids", action="store_true",
                    help="missing/extra record IDs fail the run")
    ap.add_argument("--self-test", action="store_true",
                    help="validate the gate itself against BASELINE "
                         "(no NEW needed)")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.baseline, args.margin, args.model_rtol)
    if not args.new:
        ap.error("NEW results document required (or use --self-test)")

    _, base_records = load_records(args.baseline)
    _, new_records = load_records(args.new)
    failed, *rest = compare(base_records, new_records, args.margin,
                            args.model_rtol, args.strict_ids)
    report(failed, *rest, args.strict_ids)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
