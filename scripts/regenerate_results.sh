#!/usr/bin/env bash
# Regenerates the recorded evaluation artifacts:
#   test_output.txt     — full ctest log
#   BENCH_results.json  — structured benchmark records (svsim_bench --all)
#   BENCH_results.jsonl — the same records as one JSONL line per case
#   bench_output.txt    — rendered tables (the human-readable view)
# and refreshes the smoke-tier baseline in bench/baselines/ for this host.
# Usage: scripts/regenerate_results.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j

ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

# Full-tier structured results + rendered tables in one pass.
"$BUILD"/tools/svsim_bench --all \
  --json BENCH_results.json \
  --jsonl BENCH_results.jsonl \
  > bench_output.txt

# Validate what we just wrote, then refresh the smoke baseline used by
# scripts/bench_compare.py on this machine.
python3 scripts/check_bench_schema.py \
  --json BENCH_results.json --jsonl BENCH_results.jsonl
python3 scripts/bench_compare.py --self-test BENCH_results.json

# The blocked-engine comparison (EXPERIMENTS.md "Fig. 1 (blocked)" /
# "Tab. 2 (blocked)") must be present in the refreshed records.
for id in fig1_blocked.k4.blocked.s fig1_blocked.k4.unblocked.s \
          fig1_blocked.k4.gates_per_traversal tab2_blocked.qv.blocked.s; do
  grep -q "\"$id\"" BENCH_results.json || {
    echo "missing blocked-engine record: $id" >&2; exit 1; }
done

# The plan-compiler weak-scaling comparison (EXPERIMENTS.md "Fig. 6
# (blocked)") must be present too, both in the .json and the .jsonl view.
for id in fig6_blocked_dist.d3.naive.exchanges \
          fig6_blocked_dist.d3.remap_blocked.windows \
          fig6_blocked_dist.d3.window_ratio \
          fig6_blocked_dist.d3.traversal_ratio \
          fig6_blocked_dist.d0.gates_per_traversal; do
  grep -q "\"$id\"" BENCH_results.json || {
    echo "missing plan-compiler record: $id" >&2; exit 1; }
  grep -q "\"$id\"" BENCH_results.jsonl || {
    echo "missing plan-compiler record in jsonl: $id" >&2; exit 1; }
done

# The service-throughput comparison (docs/SERVICE.md, "svc_throughput")
# must record both submission paths for both execution modes, plus the
# warm-cache worker-scaling sweep behind `svsim serve --threads N`.
for id in svc_throughput.sampled.cold.s svc_throughput.sampled.warm.s \
          svc_throughput.sampled.speedup svc_throughput.trajectory.warm.s \
          svc_throughput.trajectory.warm.shots_per_s \
          svc_throughput.workers.w1.jobs_per_s \
          svc_throughput.workers.w2.jobs_per_s \
          svc_throughput.workers.w4.jobs_per_s; do
  grep -q "\"$id\"" BENCH_results.json || {
    echo "missing service-throughput record: $id" >&2; exit 1; }
done
# The 4-worker scaling ratio only means something when the host can actually
# run 4 executors concurrently; on smaller machines the pool slices all
# degrade to one thread and the sweep merely must have run (checked above).
if [ "$(nproc)" -ge 4 ]; then
  python3 - <<'EOF'
import json, sys
recs = json.load(open("BENCH_results.json"))["records"]
scaling = recs["svc_throughput.workers.w4.scaling"]["value"]
if scaling < 2.0:
    sys.exit(f"svc_throughput.workers.w4.scaling: {scaling:.2f}x < 2.0x "
             "over one worker")
print(f"svc_throughput.workers.w4.scaling: {scaling:.2f}x over one worker")
EOF
fi

# The SIMD backend comparison (docs/ARCHITECTURE.md "sv/simd") must record
# every hand-vectorized class for the scalar reference and, via the derived
# speedup records, at least one vectorized backend. On an AVX2 host the
# hand-vectorized f32 Hadamard and Matrix1 kernels must beat scalar 1.3x.
for id in simd_kernels.scalar.hadamard.f64 simd_kernels.scalar.hadamard.f32 \
          simd_kernels.scalar.diag1.f64 simd_kernels.scalar.matrix1.f32 \
          simd_kernels.scalar.matrix2.f64; do
  grep -q "\"$id\"" BENCH_results.json || {
    echo "missing simd-kernel record: $id" >&2; exit 1; }
done
python3 - <<'EOF'
import json, sys
doc = json.load(open("BENCH_results.json"))
recs = doc["records"]
if not any(k.startswith("simd_kernels.speedup.") for k in recs):
    sys.exit("no simd_kernels speedup records: no vectorized backend ran")
if doc["env"].get("simd_backend") == "avx2":
    for cls in ("hadamard", "matrix1"):
        rid = f"simd_kernels.speedup.avx2.{cls}.f32"
        speedup = recs[rid]["value"]
        if speedup < 1.3:
            sys.exit(f"{rid}: {speedup:.2f}x < 1.3x over scalar")
        print(f"{rid}: {speedup:.2f}x over scalar")
EOF

# A serve transcript must validate against the service schema: drive the
# canned session (cache hit, trajectories, bad line, admission rejection),
# then the same session through four serve workers (results correlate by id;
# the summary's svc block must account every job to a worker).
python3 scripts/check_service_schema.py \
  --emit-with "$BUILD"/tools/svsim --output "$BUILD"/service_schema_check.jsonl
python3 scripts/check_service_schema.py --threads 4 \
  --emit-with "$BUILD"/tools/svsim \
  --output "$BUILD"/service_schema_check_w4.jsonl

# A profile report must come out of the plan-phase profiler: emit the
# blocked + simulated-distributed artifacts and validate them.
python3 scripts/check_profile_schema.py \
  --emit-with "$BUILD"/tools/svsim --output-dir "$BUILD"
for artifact in profile_blocked.json profile_dist.json; do
  [ -s "$BUILD/$artifact" ] || {
    echo "profiler produced no $artifact" >&2; exit 1; }
done

mkdir -p bench/baselines
"$BUILD"/tools/svsim_bench --smoke --no-tables --json bench/baselines/smoke.json
python3 scripts/check_bench_schema.py --json bench/baselines/smoke.json

# Gate an unmodified re-run against the baseline we just wrote. The margin is
# wide because run-to-run drift on shared/virtualized hosts reaches tens of
# percent for microsecond-scale records (see bench/baselines/README.md);
# 10% (the default) is for dedicated hardware.
"$BUILD"/tools/svsim_bench --smoke --no-tables --json "$BUILD"/bench_rerun.json
python3 scripts/bench_compare.py --margin 0.75 \
  bench/baselines/smoke.json "$BUILD"/bench_rerun.json

echo "wrote test_output.txt, BENCH_results.json(.jsonl), bench_output.txt,"
echo "and bench/baselines/smoke.json"
