#!/usr/bin/env bash
# Regenerates the recorded evaluation artifacts:
#   test_output.txt  — full ctest log
#   bench_output.txt — every table/figure bench, in order
# Usage: scripts/regenerate_results.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD"

ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

: > bench_output.txt
for b in "$BUILD"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "################################################################" >> bench_output.txt
  echo "# $(basename "$b")" >> bench_output.txt
  "$b" >> bench_output.txt 2>&1
done
echo "wrote test_output.txt and bench_output.txt"
