// Service throughput: compile-once serve-many amortization.
//
// svc_throughput — the plan cache's value proposition measured end to end:
// the same small fused quantum-volume job submitted through svc::Service
// cache-cold (fresh cache, every submission compiles) vs. cache-warm (one
// compile, every later submission reuses the cached plan). Reported as
// jobs/sec and shots/sec; the warm/cold ratio is the per-job compile cost
// the cache amortizes away. A second table row runs the same circuit as a
// noisy trajectory job, where the cached plan is walked once per batch via
// sv::run_plan_batch, so the warm path also amortizes plan traversal
// across trajectories.
// A third table measures warm-cache worker scaling: the same sampled job
// stream pushed through 1/2/4 concurrent executor threads (each with a
// private ThreadPool slice, as `svsim serve --threads N` lays them out)
// against one shared Service and cache.
#include "bench_util.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/threading.hpp"
#include "qc/library.hpp"
#include "svc/service.hpp"

using namespace svsim;

namespace {

svc::JobRequest qv_job(unsigned n, unsigned depth, std::size_t shots) {
  svc::JobRequest req;
  req.id = "bench";
  qc::Circuit c = qc::random_quantum_volume(n, depth, 3);
  c.measure_all();
  req.circuit = c;
  req.shots = shots;
  req.fusion = true;
  req.fusion_width = 3;
  req.seed = 11;
  return req;
}

}  // namespace

SVSIM_BENCH(svc_throughput, "Service throughput",
            "plan-cache amortization: jobs/sec cache-cold vs cache-warm") {
  const unsigned n = ctx.smoke() ? 8 : 12;
  const unsigned depth = ctx.smoke() ? 3 : 6;
  const std::size_t shots = ctx.smoke() ? 128 : 1024;
  const std::size_t noisy_shots = ctx.smoke() ? 32 : 256;

  Table t("Service n=" + std::to_string(n) + " depth=" +
              std::to_string(depth) + " QV: cold vs warm submissions",
          {"job", "cold_s", "warm_s", "speedup", "warm_jobs_per_s",
           "warm_shots_per_s"});

  BenchContext::MeasureOpts mo;
  mo.min_reps = 3;
  mo.max_seconds = 2.0;

  // --- Sampled (noiseless) job: compile cost dominates the cold path. ---
  const svc::JobRequest sampled = qv_job(n, depth, shots);
  {
    // Cold: clear the cache before each submission so run_job recompiles.
    svc::Service service{svc::ServiceOptions{}};
    const auto cold = ctx.measure(
        "sampled.cold.s",
        [&] {
          service.cache().clear();
          service.run_job(sampled);
        },
        mo);

    service.run_job(sampled);  // prime
    const auto warm = ctx.measure(
        "sampled.warm.s", [&] { service.run_job(sampled); }, mo);

    const double jobs_per_s = warm.median > 0 ? 1.0 / warm.median : 0.0;
    const double shots_per_s = jobs_per_s * static_cast<double>(shots);
    ctx.derived("sampled.speedup", cold.median / warm.median, "x");
    ctx.derived("sampled.warm.jobs_per_s", jobs_per_s, "jobs/s");
    ctx.derived("sampled.warm.shots_per_s", shots_per_s, "shots/s");
    t.add_row({std::string("sampled"), cold.median, warm.median,
               cold.median / warm.median, jobs_per_s, shots_per_s});
  }

  // --- Trajectory job: warm path amortizes the plan walk per batch. ---
  svc::JobRequest noisy = qv_job(n, depth, noisy_shots);
  noisy.noise.add_depolarizing(0.01, 1);
  {
    svc::Service service{svc::ServiceOptions{}};
    const auto cold = ctx.measure(
        "trajectory.cold.s",
        [&] {
          service.cache().clear();
          service.run_job(noisy);
        },
        mo);

    service.run_job(noisy);  // prime
    const auto warm = ctx.measure(
        "trajectory.warm.s", [&] { service.run_job(noisy); }, mo);

    const double jobs_per_s = warm.median > 0 ? 1.0 / warm.median : 0.0;
    const double shots_per_s = jobs_per_s * static_cast<double>(noisy_shots);
    ctx.derived("trajectory.speedup", cold.median / warm.median, "x");
    ctx.derived("trajectory.warm.jobs_per_s", jobs_per_s, "jobs/s");
    ctx.derived("trajectory.warm.shots_per_s", shots_per_s, "shots/s");
    t.add_row({std::string("trajectory"), cold.median, warm.median,
               cold.median / warm.median, jobs_per_s, shots_per_s});
  }

  ctx.table(t);

  // --- Warm-cache worker scaling: W executors share one Service. --------
  // jobs_per_round submissions of the primed sampled job are striped
  // across W threads; each thread runs under its own ExecutionContext and
  // ThreadPool slice (serve_session's layout). On a machine with >= 4
  // cores the w4 rate should scale well above w1 — the serve acceptance
  // ratio regenerate_results.sh asserts; on smaller hosts the slices all
  // degrade to one thread and the rate merely must not regress.
  {
    svc::Service service{svc::ServiceOptions{}};
    service.run_job(sampled);  // prime the shared cache once
    const std::size_t jobs_per_round = ctx.smoke() ? 16 : 64;
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

    Table wt("Warm sampled submissions through W concurrent workers",
             {"workers", "round_s", "jobs_per_s", "scaling_vs_w1"});
    double base_jobs_per_s = 0.0;
    for (const unsigned workers : {1u, 2u, 4u}) {
      // Pool slices live outside the measured region, matching the serve
      // loop (slices are built once per session, not per job).
      const unsigned per_worker = std::max(1u, hw / workers);
      std::vector<std::unique_ptr<ThreadPool>> slices;
      std::vector<ExecutionContext> contexts;
      contexts.reserve(workers);
      for (unsigned w = 0; w < workers; ++w) {
        slices.push_back(std::make_unique<ThreadPool>(per_worker));
        contexts.emplace_back();
        contexts.back().with_pool(*slices.back());
      }

      const std::string label = "workers.w" + std::to_string(workers);
      const auto round = ctx.measure(
          label + ".round_s",
          [&] {
            std::vector<std::thread> threads;
            threads.reserve(workers);
            for (unsigned w = 0; w < workers; ++w) {
              threads.emplace_back([&service, &sampled, &contexts, w, workers,
                                    jobs_per_round] {
                for (std::size_t j = w; j < jobs_per_round; j += workers)
                  service.run_job(sampled, contexts[w]);
              });
            }
            for (auto& th : threads) th.join();
          },
          mo);

      const double jobs_per_s =
          round.median > 0
              ? static_cast<double>(jobs_per_round) / round.median
              : 0.0;
      if (workers == 1) base_jobs_per_s = jobs_per_s;
      const double scaling =
          base_jobs_per_s > 0 ? jobs_per_s / base_jobs_per_s : 0.0;
      ctx.derived(label + ".jobs_per_s", jobs_per_s, "jobs/s");
      ctx.derived(label + ".scaling", scaling, "x");
      wt.add_row({std::to_string(workers), round.median, jobs_per_s,
                  scaling});
    }
    ctx.table(wt);
  }
}
