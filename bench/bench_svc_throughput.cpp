// Service throughput: compile-once serve-many amortization.
//
// svc_throughput — the plan cache's value proposition measured end to end:
// the same small fused quantum-volume job submitted through svc::Service
// cache-cold (fresh cache, every submission compiles) vs. cache-warm (one
// compile, every later submission reuses the cached plan). Reported as
// jobs/sec and shots/sec; the warm/cold ratio is the per-job compile cost
// the cache amortizes away. A second table row runs the same circuit as a
// noisy trajectory job, where the cached plan is walked once per batch via
// sv::run_plan_batch, so the warm path also amortizes plan traversal
// across trajectories.
#include "bench_util.hpp"

#include <cstdint>
#include <string>

#include "qc/library.hpp"
#include "svc/service.hpp"

using namespace svsim;

namespace {

svc::JobRequest qv_job(unsigned n, unsigned depth, std::size_t shots) {
  svc::JobRequest req;
  req.id = "bench";
  qc::Circuit c = qc::random_quantum_volume(n, depth, 3);
  c.measure_all();
  req.circuit = c;
  req.shots = shots;
  req.fusion = true;
  req.fusion_width = 3;
  req.seed = 11;
  return req;
}

}  // namespace

SVSIM_BENCH(svc_throughput, "Service throughput",
            "plan-cache amortization: jobs/sec cache-cold vs cache-warm") {
  const unsigned n = ctx.smoke() ? 8 : 12;
  const unsigned depth = ctx.smoke() ? 3 : 6;
  const std::size_t shots = ctx.smoke() ? 128 : 1024;
  const std::size_t noisy_shots = ctx.smoke() ? 32 : 256;

  Table t("Service n=" + std::to_string(n) + " depth=" +
              std::to_string(depth) + " QV: cold vs warm submissions",
          {"job", "cold_s", "warm_s", "speedup", "warm_jobs_per_s",
           "warm_shots_per_s"});

  BenchContext::MeasureOpts mo;
  mo.min_reps = 3;
  mo.max_seconds = 2.0;

  // --- Sampled (noiseless) job: compile cost dominates the cold path. ---
  const svc::JobRequest sampled = qv_job(n, depth, shots);
  {
    // Cold: clear the cache before each submission so run_job recompiles.
    svc::Service service{svc::ServiceOptions{}};
    const auto cold = ctx.measure(
        "sampled.cold.s",
        [&] {
          service.cache().clear();
          service.run_job(sampled);
        },
        mo);

    service.run_job(sampled);  // prime
    const auto warm = ctx.measure(
        "sampled.warm.s", [&] { service.run_job(sampled); }, mo);

    const double jobs_per_s = warm.median > 0 ? 1.0 / warm.median : 0.0;
    const double shots_per_s = jobs_per_s * static_cast<double>(shots);
    ctx.derived("sampled.speedup", cold.median / warm.median, "x");
    ctx.derived("sampled.warm.jobs_per_s", jobs_per_s, "jobs/s");
    ctx.derived("sampled.warm.shots_per_s", shots_per_s, "shots/s");
    t.add_row({std::string("sampled"), cold.median, warm.median,
               cold.median / warm.median, jobs_per_s, shots_per_s});
  }

  // --- Trajectory job: warm path amortizes the plan walk per batch. ---
  svc::JobRequest noisy = qv_job(n, depth, noisy_shots);
  noisy.noise.add_depolarizing(0.01, 1);
  {
    svc::Service service{svc::ServiceOptions{}};
    const auto cold = ctx.measure(
        "trajectory.cold.s",
        [&] {
          service.cache().clear();
          service.run_job(noisy);
        },
        mo);

    service.run_job(noisy);  // prime
    const auto warm = ctx.measure(
        "trajectory.warm.s", [&] { service.run_job(noisy); }, mo);

    const double jobs_per_s = warm.median > 0 ? 1.0 / warm.median : 0.0;
    const double shots_per_s = jobs_per_s * static_cast<double>(noisy_shots);
    ctx.derived("trajectory.speedup", cold.median / warm.median, "x");
    ctx.derived("trajectory.warm.jobs_per_s", jobs_per_s, "jobs/s");
    ctx.derived("trajectory.warm.shots_per_s", shots_per_s, "shots/s");
    t.add_row({std::string("trajectory"), cold.median, warm.median,
               cold.median / warm.median, jobs_per_s, shots_per_s});
  }

  ctx.table(t);
}
