// Ablation bench: quantifies the design choices DESIGN.md calls out.
//
//  A. Cache-line granularity — the A64FX's unusually large 256 B lines are
//     load-bearing for controlled/diagonal gates: re-running the model with
//     64 B lines shows how much traffic the big lines waste on low-bit
//     controls (and why the model must be line-granular at all).
//  B. Diagonal-fusion preference — emitting diagonal groups as DIAG gates
//     instead of dense UNITARY matrices: model and host-measured effect.
//  C. Communication scheduler — naive vs. Belady remap exchange volume on
//     workloads with different node-qubit pressure.
#include "bench_util.hpp"

#include "common/rng.hpp"
#include "dist/dist_sim.hpp"
#include "perf/perf_simulator.hpp"
#include "qc/library.hpp"
#include "sv/fusion.hpp"
#include "sv/kernels.hpp"

using namespace svsim;

namespace {

void ablation_line_size() {
  auto m256 = machine::MachineSpec::a64fx();
  auto m64 = m256;
  m64.name = "A64FX (hypothetical 64B lines)";
  for (auto& c : m64.caches) c.line_bytes = 64;

  Table t("A: traffic vs. cache-line size (n=26, model bytes per gate)",
          {"gate", "256B_lines_MB", "64B_lines_MB", "waste_factor"});
  const std::vector<std::pair<std::string, qc::Gate>> gates = {
      {"cx ctrl@0", qc::Gate::cx(0, 13)},
      {"cx ctrl@3", qc::Gate::cx(3, 13)},
      {"cx ctrl@25", qc::Gate::cx(25, 13)},
      {"t @2", qc::Gate::t(2)},
      {"t @25", qc::Gate::t(25)},
      {"ccz 0,1,2", qc::Gate::ccz(0, 1, 2)},
      {"ccz 23,24,25", qc::Gate::ccz(23, 24, 25)},
  };
  for (const auto& [name, g] : gates) {
    const double b256 = perf::gate_cost(g, 26, m256, {}).bytes;
    const double b64 = perf::gate_cost(g, 26, m64, {}).bytes;
    t.add_row({name, b256 * 1e-6, b64 * 1e-6, b256 / b64});
  }
  t.print(std::cout);
}

void ablation_diagonal_fusion() {
  // A circuit with long diagonal runs (QAOA cost layers).
  const unsigned n_model = 26;
  const qc::Circuit c_model = qc::qaoa_maxcut(
      n_model, qc::ring_graph(n_model), {0.8, 0.7, 0.6}, {0.4, 0.3, 0.2});
  const auto m = machine::MachineSpec::a64fx();

  Table t("B: diagonal-fusion preference (QAOA p=3, model on A64FX n=26)",
          {"variant", "gates", "model_s"});
  for (const bool prefer : {true, false}) {
    sv::FusionOptions fo;
    fo.max_width = 4;
    fo.prefer_diagonal = prefer;
    const qc::Circuit fused = sv::fuse(c_model, fo);
    const auto r = perf::simulate_circuit(fused, m, {});
    t.add_row({std::string(prefer ? "DIAG kernels" : "dense UNITARY"),
               static_cast<std::int64_t>(fused.size()), r.total_seconds});
  }
  t.print(std::cout);

  // Host-measured.
  const unsigned n_host = 18;
  const qc::Circuit c_host = qc::qaoa_maxcut(
      n_host, qc::ring_graph(n_host), {0.8, 0.7, 0.6}, {0.4, 0.3, 0.2});
  Table th("B: diagonal-fusion preference (host measured, n=18)",
           {"variant", "gates", "seconds"});
  for (const bool prefer : {true, false}) {
    sv::FusionOptions fo;
    fo.max_width = 4;
    fo.prefer_diagonal = prefer;
    const qc::Circuit fused = sv::fuse(c_host, fo);
    sv::Simulator<double> sim;
    Timer timer;
    sim.run(fused);
    th.add_row({std::string(prefer ? "DIAG kernels" : "dense UNITARY"),
                static_cast<std::int64_t>(fused.size()), timer.seconds()});
  }
  th.print(std::cout);
}

void ablation_scheduler() {
  const auto m = machine::MachineSpec::a64fx();
  const auto net = dist::InterconnectSpec::tofu_d();
  Table t("C: communication scheduler (16 nodes, per-node GB exchanged)",
          {"workload", "naive_GB", "remap_GB", "naive_s", "remap_s"});
  const std::vector<std::pair<std::string, qc::Circuit>> workloads = {
      {"qft(24)", qc::qft(24)},
      {"qv(24,8)", qc::random_quantum_volume(24, 8, 5)},
      {"ghz(24)", qc::ghz(24)},
      {"qaoa(24,p2)", qc::qaoa_maxcut(24, qc::ring_graph(24), {0.8, 0.6},
                                      {0.4, 0.3})},
  };
  for (const auto& [name, c] : workloads) {
    const auto naive =
        dist::plan_distribution(c, 4, dist::CommScheduler::Naive);
    const auto remap =
        dist::plan_distribution(c, 4, dist::CommScheduler::Remap);
    const auto tn = dist::time_plan(naive, m, {}, net);
    const auto tr = dist::time_plan(remap, m, {}, net);
    t.add_row({name, tn.exchange_bytes * 1e-9, tr.exchange_bytes * 1e-9,
               tn.total_seconds, tr.total_seconds});
  }
  t.print(std::cout);
}

void ablation_kernel_variant() {
  // Run-blocked 1q kernel (contiguous inner loops the vectorizer can chew)
  // vs. the per-pair insert_zero_bit variant. Host-measured.
  const unsigned n = 20;
  Xoshiro256 rng(2);
  const qc::Matrix u = qc::Matrix::random_unitary(2, rng);
  sv::StateVector<double> state(n);
  sv::apply_gate(state, qc::Gate::h(0));
  Table t("D: 1q kernel iteration scheme (host measured, n=20)",
          {"target", "run_blocked_us", "per_pair_us", "speedup"});
  for (unsigned target : {0u, 4u, 10u, 18u}) {
    const double tb = time_mean_seconds([&] {
      sv::apply_matrix1(state.data(), n, target, u, state.pool());
    });
    const double tp = time_mean_seconds([&] {
      sv::apply_matrix1_pairwise(state.data(), n, target, u, state.pool());
    });
    t.add_row({static_cast<std::int64_t>(target), tb * 1e6, tp * 1e6,
               tp / tb});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  bench::print_header("Ablations", "design-choice quantification");
  ablation_line_size();
  ablation_diagonal_fusion();
  ablation_scheduler();
  ablation_kernel_variant();
  return 0;
}
