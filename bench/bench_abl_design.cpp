// Ablation bench: quantifies the design choices DESIGN.md calls out.
//
//  A. Cache-line granularity — the A64FX's unusually large 256 B lines are
//     load-bearing for controlled/diagonal gates: re-running the model with
//     64 B lines shows how much traffic the big lines waste on low-bit
//     controls (and why the model must be line-granular at all).
//  B. Diagonal-fusion preference — emitting diagonal groups as DIAG gates
//     instead of dense UNITARY matrices: model and host-measured effect.
//  C. Communication scheduler — naive vs. Belady remap exchange volume on
//     workloads with different node-qubit pressure.
//  D. 1q kernel iteration scheme — run-blocked vs. per-pair, host-measured.
#include "bench_util.hpp"

#include "common/rng.hpp"
#include "dist/dist_sim.hpp"
#include "perf/perf_simulator.hpp"
#include "qc/library.hpp"
#include "sv/fusion.hpp"
#include "sv/kernels.hpp"

using namespace svsim;

namespace {

void ablation_line_size(bench::BenchContext& ctx) {
  auto m256 = machine::MachineSpec::a64fx();
  auto m64 = m256;
  m64.name = "A64FX (hypothetical 64B lines)";
  for (auto& c : m64.caches) c.line_bytes = 64;

  Table t("A: traffic vs. cache-line size (n=26, model bytes per gate)",
          {"gate", "256B_lines_MB", "64B_lines_MB", "waste_factor"});
  const std::vector<std::pair<std::string, qc::Gate>> gates = {
      {"cx_ctrl0", qc::Gate::cx(0, 13)},
      {"cx_ctrl3", qc::Gate::cx(3, 13)},
      {"cx_ctrl25", qc::Gate::cx(25, 13)},
      {"t_2", qc::Gate::t(2)},
      {"t_25", qc::Gate::t(25)},
      {"ccz_0_1_2", qc::Gate::ccz(0, 1, 2)},
      {"ccz_23_24_25", qc::Gate::ccz(23, 24, 25)},
  };
  for (const auto& [name, g] : gates) {
    const double b256 = perf::gate_cost(g, 26, m256, {}).bytes;
    const double b64 = perf::gate_cost(g, 26, m64, {}).bytes;
    t.add_row({name, b256 * 1e-6, b64 * 1e-6, b256 / b64});
    ctx.model("lines." + name + ".waste", b256 / b64, "ratio", m256.name);
  }
  ctx.table(t);
}

void ablation_diagonal_fusion(bench::BenchContext& ctx) {
  // A circuit with long diagonal runs (QAOA cost layers).
  const unsigned n_model = 26;
  const qc::Circuit c_model = qc::qaoa_maxcut(
      n_model, qc::ring_graph(n_model), {0.8, 0.7, 0.6}, {0.4, 0.3, 0.2});
  const auto m = machine::MachineSpec::a64fx();

  Table t("B: diagonal-fusion preference (QAOA p=3, model on A64FX n=26)",
          {"variant", "gates", "model_s"});
  for (const bool prefer : {true, false}) {
    sv::FusionOptions fo;
    fo.max_width = 4;
    fo.prefer_diagonal = prefer;
    const qc::Circuit fused = sv::fuse(c_model, fo);
    const auto r = perf::simulate_circuit(fused, m, {});
    t.add_row({std::string(prefer ? "DIAG kernels" : "dense UNITARY"),
               static_cast<std::int64_t>(fused.size()), r.total_seconds});
    ctx.model(std::string("diagfuse.") + (prefer ? "diag" : "dense") + ".s",
              r.total_seconds, "s", m.name);
  }
  ctx.table(t);

  // Host-measured.
  const unsigned n_host = ctx.smoke() ? 14 : 18;
  const qc::Circuit c_host = qc::qaoa_maxcut(
      n_host, qc::ring_graph(n_host), {0.8, 0.7, 0.6}, {0.4, 0.3, 0.2});
  const auto host = bench::host_spec();
  Table th("B: diagonal-fusion preference (host measured, n=" +
               std::to_string(n_host) + ")",
           {"variant", "gates", "seconds"});
  for (const bool prefer : {true, false}) {
    sv::FusionOptions fo;
    fo.max_width = 4;
    fo.prefer_diagonal = prefer;
    const qc::Circuit fused = sv::fuse(c_host, fo);
    BenchContext::MeasureOpts mo;
    mo.model_seconds = perf::simulate_circuit(fused, host, {}).total_seconds;
    mo.model_machine = host.name;
    const auto st = ctx.measure(
        std::string("host.diagfuse.") + (prefer ? "diag" : "dense"),
        [&] {
          sv::Simulator<double> sim;
          sim.run(fused);
        },
        mo);
    th.add_row({std::string(prefer ? "DIAG kernels" : "dense UNITARY"),
                static_cast<std::int64_t>(fused.size()), st.median});
  }
  ctx.table(th);
}

void ablation_scheduler(bench::BenchContext& ctx) {
  const auto m = machine::MachineSpec::a64fx();
  const auto net = dist::InterconnectSpec::tofu_d();
  Table t("C: communication scheduler (16 nodes, per-node GB exchanged)",
          {"workload", "naive_GB", "remap_GB", "naive_s", "remap_s"});
  const std::vector<std::pair<std::string, qc::Circuit>> workloads = {
      {"qft24", qc::qft(24)},
      {"qv24_8", qc::random_quantum_volume(24, 8, 5)},
      {"ghz24", qc::ghz(24)},
      {"qaoa24_p2", qc::qaoa_maxcut(24, qc::ring_graph(24), {0.8, 0.6},
                                    {0.4, 0.3})},
  };
  for (const auto& [name, c] : workloads) {
    const auto naive =
        dist::plan_distribution(c, 4, dist::CommScheduler::Naive);
    const auto remap =
        dist::plan_distribution(c, 4, dist::CommScheduler::Remap);
    const auto tn = dist::time_plan(naive, m, {}, net);
    const auto tr = dist::time_plan(remap, m, {}, net);
    t.add_row({name, tn.exchange_bytes * 1e-9, tr.exchange_bytes * 1e-9,
               tn.total_seconds, tr.total_seconds});
    ctx.model("sched." + name + ".naive_gb", tn.exchange_bytes * 1e-9, "GB",
              m.name);
    ctx.model("sched." + name + ".remap_gb", tr.exchange_bytes * 1e-9, "GB",
              m.name);
  }
  ctx.table(t);
}

void ablation_kernel_variant(bench::BenchContext& ctx) {
  // Run-blocked 1q kernel (contiguous inner loops the vectorizer can chew)
  // vs. the per-pair insert_zero_bit variant. Host-measured.
  const unsigned n = ctx.smoke() ? 16 : 20;
  Xoshiro256 rng(2);
  const qc::Matrix u = qc::Matrix::random_unitary(2, rng);
  sv::StateVector<double> state(n);
  bench::spread_amplitudes(state);
  Table t("D: 1q kernel iteration scheme (host measured, n=" +
              std::to_string(n) + ")",
          {"target", "run_blocked_us", "per_pair_us", "speedup"});
  const std::vector<unsigned> targets =
      ctx.smoke() ? std::vector<unsigned>{0u, n - 2}
                  : std::vector<unsigned>{0u, 4u, 10u, n - 2};
  const double bytes = static_cast<double>(pow2(n)) * 2 * 16;
  for (unsigned target : targets) {
    BenchContext::MeasureOpts mo;
    mo.model_bytes = bytes;
    const auto tb = ctx.measure(
        bench::sub("kernel.blocked.t", target),
        [&] { sv::apply_matrix1(state.data(), n, target, u, state.pool()); },
        mo);
    const auto tp = ctx.measure(
        bench::sub("kernel.pairwise.t", target),
        [&] {
          sv::apply_matrix1_pairwise(state.data(), n, target, u,
                                     state.pool());
        },
        mo);
    t.add_row({static_cast<std::int64_t>(target), tb.median * 1e6,
               tp.median * 1e6, tp.median / tb.median});
  }
  ctx.table(t);
}

}  // namespace

SVSIM_BENCH(abl_design, "Ablations", "design-choice quantification") {
  ablation_line_size(ctx);
  ablation_diagonal_fusion(ctx);
  ablation_scheduler(ctx);
  ablation_kernel_variant(ctx);
}
