// Shared helpers for the bench harness.
//
// Each bench binary regenerates one table or figure of the reconstructed
// evaluation (see DESIGN.md). Two kinds of numbers appear side by side:
//   measured  — real kernel executions on the build host;
//   model     — the analytical A64FX/Xeon/ThunderX2 performance simulator.
// Absolute host numbers depend on the machine running this; the model
// columns are the paper-facing result.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "machine/machine_spec.hpp"
#include "qc/gate.hpp"
#include "sv/simulator.hpp"
#include "sv/state_vector.hpp"

namespace svsim::bench {

/// Mean seconds per application of `gate` to an n-qubit host register.
/// The state is reused across repetitions (steady-state cache behaviour).
template <typename T = double>
double measure_gate_seconds(const qc::Gate& gate, unsigned n,
                            double min_seconds = 0.05) {
  sv::StateVector<T> state(n);
  // Spread amplitude mass so kernels do representative work.
  sv::apply_gate(state, qc::Gate::h(0));
  return time_mean_seconds([&] { sv::apply_gate(state, gate); }, min_seconds);
}

/// Effective memory bandwidth of a measured gate application, given the
/// model's byte count for the gate (bytes moved / measured seconds).
inline double measured_bandwidth_gbps(double model_bytes, double seconds) {
  return model_bytes / seconds * 1e-9;
}

/// A rough description of the build host for model cross-checks: core count
/// from the thread pool, clock and STREAM guessed conservatively. Only the
/// *shape* of host-model comparisons is meaningful.
inline machine::MachineSpec host_spec() {
  const unsigned cores = ThreadPool::global().num_threads();
  return machine::MachineSpec::generic_host(cores, 2.1, 8.0 * cores);
}

/// Prints a standard bench header naming the experiment.
inline void print_header(const std::string& experiment,
                         const std::string& description) {
  std::cout << "\n##### " << experiment << " — " << description << " #####\n\n";
}

}  // namespace svsim::bench
