// Shared helpers for benchmark cases.
//
// Each translation unit in bench/ registers one or more benchmark cases
// (SVSIM_BENCH) reproducing a table or figure of the reconstructed
// evaluation (see DESIGN.md); the unified `svsim_bench` runner executes
// them. Two kinds of numbers appear side by side:
//   measured  — real kernel executions on the build host, sampled by the
//               statistical engine (obs/bench/stats.hpp);
//   model     — the analytical A64FX/Xeon/ThunderX2 performance simulator.
// Absolute host numbers depend on the machine running this; the model
// columns are the paper-facing result.
#pragma once

#include <string>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "machine/machine_spec.hpp"
#include "obs/bench/env.hpp"
#include "obs/bench/registry.hpp"
#include "qc/gate.hpp"
#include "sv/simulator.hpp"
#include "sv/state_vector.hpp"

namespace svsim {

// Case bodies live inside `using namespace svsim;` translation units; hoist
// the context type so `BenchContext::MeasureOpts` reads naturally there.
using obs::bench::BenchContext;

}  // namespace svsim

namespace svsim::bench {

using obs::bench::BenchContext;

/// Spreads amplitude mass (H on qubit 0) so kernels do representative work
/// instead of streaming a delta state.
template <typename T>
void spread_amplitudes(sv::StateVector<T>& state) {
  sv::apply_gate(state, qc::Gate::h(0));
}

/// Effective memory bandwidth of a measured gate application, given the
/// model's byte count for the gate (bytes moved / measured seconds).
inline double measured_bandwidth_gbps(double model_bytes, double seconds) {
  return seconds > 0.0 ? model_bytes / seconds * 1e-9 : 0.0;
}

/// The build host's machine description for model cross-checks. The clock
/// is probed from /proc/cpuinfo and `SVSIM_HOST_SPEC` overrides any of
/// cores/ghz/gbps (see obs/bench/env.hpp); only the *shape* of host-model
/// comparisons is meaningful on an uncontrolled machine.
inline machine::MachineSpec host_spec() { return obs::bench::host_spec(); }

/// Stable record sub-ID fragment: "<prefix><number>", e.g. sub("host.h.t", 4).
inline std::string sub(const std::string& prefix, unsigned long long v) {
  return prefix + std::to_string(v);
}

}  // namespace svsim::bench
