// SIMD backend comparison: every available kernel backend × precision ×
// hand-vectorized KernelClass, measured as achieved GB/s on one serial
// cache-block application (the unit the blocked engine dispatches). The
// scalar backend rows are the reference the speedup records divide by;
// regenerate_results.sh asserts the records exist and, on an AVX2 host,
// that the hand-vectorized f32 Hadamard and Matrix1 kernels beat scalar
// by the target factor.
#include "bench_util.hpp"

#include <map>

#include "common/rng.hpp"
#include "qc/matrix.hpp"
#include "sv/kernels.hpp"
#include "sv/simd/simd.hpp"

using namespace svsim;

namespace {

struct ClassCase {
  const char* name;
  qc::Gate gate;
};

/// Low targets on purpose: t < lanes is where the in-register swizzle
/// kernels earn their keep and where `-march=native` auto-vectorization of
/// the scalar loops fails (runs shorter than a vector).
std::vector<ClassCase> class_cases() {
  Xoshiro256 rng(7);
  return {
      {"hadamard", qc::Gate::h(0)},
      {"diag1", qc::Gate::rz(0, 1.13)},
      {"matrix1", qc::Gate::u(0, 0.3, 0.7, 1.9)},
      {"matrix2", qc::Gate::u2q(2, 5, qc::Matrix::random_unitary(4, rng))},
  };
}

template <typename T>
double measure_class(BenchContext& ctx, const std::string& id,
                     const ClassCase& c, unsigned n) {
  sv::StateVector<T> state(n);
  bench::spread_amplitudes(state);
  const sv::PreparedGate<T> pg = sv::prepare_gate<T>(c.gate);
  const double bytes = static_cast<double>(pow2(n)) * 4 * sizeof(T);  // rd+wr
  BenchContext::MeasureOpts mo;
  mo.model_bytes = bytes;
  const auto st = ctx.measure(
      id, [&] { sv::apply_gate_in_block(state.data(), n, pg); }, mo);
  return st.median;
}

}  // namespace

SVSIM_BENCH(simd_kernels, "SIMD kernels",
            "backend x precision x KernelClass GB/s vs the scalar reference") {
  const unsigned n = ctx.smoke() ? 14 : 18;
  const auto cases = class_cases();

  // Whatever happens below, later cases must run on the backend the
  // session selected, not on the last one this sweep touched.
  struct BackendRestore {
    sv::simd::Isa prev = sv::simd::active_backend().isa;
    ~BackendRestore() { sv::simd::select_backend(prev); }
  } restore;

  Table t("SIMD backends, n=" + std::to_string(n),
          {"backend", "class", "prec", "median_us", "GB/s", "x scalar"});
  const double bytes_f64 = static_cast<double>(pow2(n)) * 32;
  const double bytes_f32 = static_cast<double>(pow2(n)) * 16;

  std::map<std::string, double> medians;  // "<isa>.<class>.<prec>" -> s
  for (const auto& b : sv::simd::backends()) {
    if (!b.available) continue;
    sv::simd::select_backend(b.isa);
    for (const ClassCase& c : cases) {
      const std::string base = std::string(b.name) + "." + c.name;
      medians[base + ".f64"] =
          measure_class<double>(ctx, base + ".f64", c, n);
      medians[base + ".f32"] = measure_class<float>(ctx, base + ".f32", c, n);
      for (const char* prec : {"f64", "f32"}) {
        const double med = medians[base + "." + prec];
        const double scalar_med =
            medians[std::string("scalar.") + c.name + "." + prec];
        const double bytes = prec == std::string("f64") ? bytes_f64
                                                        : bytes_f32;
        t.add_row({b.name, c.name, prec, med * 1e6,
                   bench::measured_bandwidth_gbps(bytes, med),
                   scalar_med > 0.0 && med > 0.0 ? scalar_med / med : 0.0});
      }
    }
  }

  // Derived speedup records (scalar median / backend median): the
  // regression surface for "hand-vectorized beats scalar".
  for (const auto& [key, med] : medians) {
    if (key.rfind("scalar.", 0) == 0 || med <= 0.0) continue;
    const std::string tail = key.substr(key.find('.') + 1);
    const double scalar_med = medians["scalar." + tail];
    if (scalar_med <= 0.0) continue;
    ctx.derived("speedup." + key, scalar_med / med, "x");
  }
  ctx.table(t);
}
