// Figure 4 (reconstructed): SVE vector-length sensitivity.
//
// The vector-length-agnostic sweep of the authors' SVE studies: the same
// kernel modeled at VL 128/256/512 bits. In the HBM regime the width is
// irrelevant (bandwidth-bound); in the cache regime longer vectors win, and
// the low-target permute penalty moves with the lane count.
#include "bench_util.hpp"

#include "perf/perf_simulator.hpp"
#include "qc/library.hpp"

using namespace svsim;

namespace {

void vl_table(bench::BenchContext& ctx, unsigned n, unsigned threads,
              const char* title) {
  const auto m = machine::MachineSpec::a64fx();
  Table t(title, {"target", "VL128_us", "VL256_us", "VL512_us",
                  "VL512_vs_128"});
  for (unsigned target : {0u, 1u, 2u, 4u, 8u, n - 2}) {
    std::vector<Cell> row;
    row.push_back(static_cast<std::int64_t>(target));
    double t128 = 0.0, t512 = 0.0;
    for (unsigned vl : {128u, 256u, 512u}) {
      machine::ExecConfig cfg;
      cfg.threads = threads;
      cfg.vector_bits = vl;
      const double s =
          perf::time_gate(qc::Gate::rx(target, 0.3), n, m, cfg).seconds;
      row.push_back(s * 1e6);
      if (vl == 128) t128 = s;
      if (vl == 512) t512 = s;
    }
    row.push_back(t128 / t512);
    t.add_row(std::move(row));
    ctx.model(bench::sub(bench::sub("a64fx.n", n) + ".rx.t", target) +
                  ".vl512_vs_128",
              t128 / t512, "ratio", m.name);
  }
  ctx.table(t);
}

}  // namespace

SVSIM_BENCH(fig4_sve_width, "Fig. 4", "SVE vector-length sweep (model)") {
  vl_table(ctx, 14, 1, "A64FX model, n=14, 1 core (L2-resident: VL matters)");
  vl_table(ctx, 20, 12, "A64FX model, n=20, one CMG (L2/HBM boundary)");
  vl_table(ctx, 28, 48, "A64FX model, n=28, 48 cores (HBM-bound: VL irrelevant)");

  // Whole-circuit view: a cache-resident circuit (VL visible) vs. an
  // HBM-resident one (VL hidden by bandwidth).
  {
    const auto m = machine::MachineSpec::a64fx();
    Table t("A64FX model: circuit wall time vs. vector length",
            {"workload", "VL_bits", "ms", "GFLOP/s"});
    const std::vector<std::tuple<std::string, std::string, qc::Circuit,
                                 unsigned>>
        cases = {{"QFT(14), 1 core, fused4", "qft14_1c", qc::qft(14), 1u},
                 {"QFT(24), 48 cores", "qft24_48c", qc::qft(24), 0u}};
    for (const auto& [name, key, c, threads] : cases) {
      for (unsigned vl : {128u, 256u, 512u}) {
        machine::ExecConfig cfg;
        cfg.vector_bits = vl;
        cfg.threads = threads;
        perf::PerfOptions po;
        po.fusion = threads == 1;  // fusion makes the small case FP-bound
        po.fusion_width = 4;
        const auto r = perf::simulate_circuit(c, m, cfg, po);
        t.add_row({name, static_cast<std::int64_t>(vl),
                   r.total_seconds * 1e3, r.achieved_gflops()});
        ctx.model(bench::sub("a64fx." + key + ".vl", vl) + ".s",
                  r.total_seconds, "s", m.name);
      }
    }
    ctx.table(t);
  }
}
