// Figure 2 (reconstructed): time per gate vs. register size for the main
// kernel classes (H, X, RZ, CX, fused 4-qubit unitary).
//
// The model series shows the L1 -> L2 -> HBM regime transitions on A64FX;
// the measured host series shows the same growth-by-2x-per-qubit once the
// state leaves cache.
#include "bench_util.hpp"

#include "common/rng.hpp"
#include "perf/perf_simulator.hpp"
#include "qc/matrix.hpp"

using namespace svsim;

namespace {

std::vector<std::pair<std::string, qc::Gate>> kernel_set(unsigned n) {
  Xoshiro256 rng(7);
  const unsigned hi = n - 2;
  return {
      {"h", qc::Gate::h(hi)},
      {"x", qc::Gate::x(hi)},
      {"rz", qc::Gate::rz(hi, 0.42)},
      {"cx", qc::Gate::cx(n - 1, 2)},
      {"fused4", qc::Gate::unitary({2, 5, hi - 1, hi},
                                   qc::Matrix::random_unitary(16, rng))},
  };
}

}  // namespace

SVSIM_BENCH(fig2_gate_kernels, "Fig. 2", "time per gate vs. register size") {
  {
    const auto m = machine::MachineSpec::a64fx();
    machine::ExecConfig cfg;
    Table t("A64FX model (48 threads): microseconds per gate",
            {"n", "h", "x", "rz", "cx", "fused4", "regime(h)"});
    for (unsigned n = 14; n <= 30; n += 2) {
      std::vector<Cell> row;
      row.push_back(static_cast<std::int64_t>(n));
      std::string regime;
      for (const auto& [name, gate] : kernel_set(n)) {
        const auto gt = perf::time_gate(gate, n, m, cfg);
        row.push_back(gt.seconds * 1e6);
        ctx.model(bench::sub("a64fx." + name + ".n", n) + ".s", gt.seconds,
                  "s", m.name);
        if (name == "h")
          regime = gt.serving_level < 0
                       ? "HBM"
                       : m.caches[static_cast<std::size_t>(gt.serving_level)]
                             .name;
      }
      row.push_back(regime);
      t.add_row(std::move(row));
    }
    ctx.table(t);
  }

  {
    const unsigned n_lo = 14;
    const unsigned n_hi = ctx.smoke() ? 14 : 20;
    const auto host = bench::host_spec();
    Table t("Host measured: microseconds per gate",
            {"n", "h", "x", "rz", "cx", "fused4"});
    for (unsigned n = n_lo; n <= n_hi; n += 2) {
      std::vector<Cell> row;
      row.push_back(static_cast<std::int64_t>(n));
      sv::StateVector<double> state(n);
      bench::spread_amplitudes(state);
      for (const auto& [name, gate] : kernel_set(n)) {
        const auto predicted = perf::time_gate(gate, n, host, {});
        BenchContext::MeasureOpts mo;
        mo.model_seconds = predicted.seconds;
        mo.model_bytes = predicted.cost.bytes;
        mo.model_machine = host.name;
        const auto st = ctx.measure(
            bench::sub("host." + name + ".n", n),
            [&] { sv::apply_gate(state, gate); }, mo);
        row.push_back(st.median * 1e6);
      }
      t.add_row(std::move(row));
    }
    ctx.table(t);
  }
}
