// Figure 6 (blocked): weak scaling through the ExecutionPlan compiler.
//
// Same weak-scaling setup as fig6_distributed (fixed 2^24 local partition,
// 2^d nodes, Tofu-D), but planned by dist::compile_distributed so both
// schemes flow through the shared IR: the naive scheduler pays a cost-only
// exchange at every node-slot gate, while the Belady remapper batches gates
// into exchange-free windows that the sweep engine then cache-blocks. A
// quantum-volume workload is used because its dense two-qubit blocks touch
// the high slots non-diagonally (QFT's controlled phases are diagonal and
// therefore free on the wire, which hides the remapper's advantage).
//
// The claims the records encode: remap needs no more collective windows
// than naive needs exchanges, and blocking divides the traversal count by
// roughly the gates-per-sweep factor k.
#include "bench_util.hpp"

#include "dist/dist_plan.hpp"
#include "dist/dist_sim.hpp"
#include "qc/library.hpp"
#include "sv/plan.hpp"

using namespace svsim;

namespace {

struct SchemeResult {
  std::size_t windows = 0;
  std::size_t hops = 0;
  double gb_per_rank = 0.0;
  std::size_t traversals = 0;
  double gates_per_traversal = 0.0;
  dist::DistTiming timing;
};

SchemeResult run_scheme(bench::BenchContext& ctx, Table& t, unsigned d,
                        const qc::Circuit& c, const char* label,
                        const dist::DistExecOptions& o,
                        const machine::MachineSpec& m,
                        const dist::InterconnectSpec& net) {
  const sv::ExecutionPlan plan = dist::compile_distributed(c, d, o);
  SchemeResult r;
  r.windows = plan.num_windows();
  r.hops = plan.num_exchanges;
  r.gb_per_rank = plan.exchange_bytes_per_rank * 1e-9;
  r.traversals = plan.traversals();
  r.gates_per_traversal = plan.gates_per_traversal();
  r.timing = dist::time_plan(plan, m, {}, net);
  t.add_row({static_cast<std::int64_t>(plan.num_ranks()),
             static_cast<std::int64_t>(plan.num_qubits), std::string(label),
             static_cast<std::int64_t>(r.windows),
             static_cast<std::int64_t>(r.hops), r.gb_per_rank,
             static_cast<std::int64_t>(r.traversals), r.gates_per_traversal,
             r.timing.compute_seconds, r.timing.comm_seconds,
             r.timing.total_seconds});
  const std::string p = bench::sub("d", d) + "." + label + ".";
  ctx.model(p + "windows", static_cast<double>(r.windows), "count", m.name);
  ctx.model(p + "exchanges", static_cast<double>(r.hops), "count", m.name);
  ctx.model(p + "gb_per_rank", r.gb_per_rank, "GB", m.name);
  ctx.model(p + "traversals", static_cast<double>(r.traversals), "count",
            m.name);
  ctx.model(p + "gates_per_traversal", r.gates_per_traversal, "ratio",
            m.name);
  ctx.model(p + "total_s", r.timing.total_seconds, "s", m.name);
  return r;
}

}  // namespace

SVSIM_BENCH(fig6_blocked_dist, "Fig. 6 (blocked)",
            "distributed weak scaling via the plan compiler (model)") {
  const auto m = machine::MachineSpec::a64fx();
  const auto net = dist::InterconnectSpec::tofu_d();
  const unsigned local = 24, depth = 8;
  const unsigned max_d = ctx.smoke() ? 3 : 9;

  Table t("Weak scaling, QV(n, 8), 2^24 amplitudes per rank (" + net.name +
              ")",
          {"ranks", "n", "scheme", "windows", "hops", "GB/rank", "traversals",
           "g/trav", "compute_s", "comm_s", "total_s"});

  // Per-gate naive exchange with no blocking — the baseline the legacy
  // dispatch loop implemented — against the Belady remapper, unblocked
  // (isolating the scheduler) and with cache blocking sized from the A64FX
  // per-core L2 share (the full pipeline).
  dist::DistExecOptions naive;
  naive.scheduler = dist::CommScheduler::Naive;
  naive.restore_layout = false;  // naive never permutes the layout
  dist::DistExecOptions remap;
  remap.scheduler = dist::CommScheduler::Remap;
  dist::DistExecOptions blocked = remap;
  blocked.plan.blocking = true;
  blocked.plan.machine = &m;

  for (unsigned d = 3; d <= max_d; d += 3) {
    const unsigned n = local + d;
    const qc::Circuit c = qc::random_quantum_volume(n, depth, 1234 + d);
    const SchemeResult nv =
        run_scheme(ctx, t, d, c, "naive", naive, m, net);
    const SchemeResult rm =
        run_scheme(ctx, t, d, c, "remap", remap, m, net);
    const SchemeResult bl =
        run_scheme(ctx, t, d, c, "remap_blocked", blocked, m, net);

    // The acceptance metrics. Windows: the remapper opens at most as many
    // collective windows as the naive scheduler pays exchanges. Traversals:
    // with k = gates-per-traversal, blocking cuts the same remap schedule's
    // traversal count to ~1/k of the per-gate figure.
    ctx.model(bench::sub("d", d) + ".window_ratio",
              static_cast<double>(bl.windows) / static_cast<double>(nv.hops),
              "ratio", m.name);
    ctx.model(bench::sub("d", d) + ".traversal_ratio",
              static_cast<double>(bl.traversals) /
                  static_cast<double>(rm.traversals),
              "ratio", m.name);
  }
  ctx.table(t);

  // Single-node control: the same compiler with node_qubits = 0 reduces to
  // the blocked sweep pipeline (zero exchange phases).
  {
    const qc::Circuit c = qc::random_quantum_volume(local, depth, 1234);
    sv::PlanOptions po;
    po.blocking = true;
    po.machine = &m;
    const sv::ExecutionPlan plan = sv::compile_plan(c, po);
    ctx.model("d0.windows", static_cast<double>(plan.num_windows()), "count",
              m.name);
    ctx.model("d0.gates_per_traversal", plan.gates_per_traversal(), "ratio",
              m.name);
  }
}
