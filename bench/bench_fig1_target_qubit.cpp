// Figure 1 (reconstructed): effective bandwidth of a Hadamard kernel vs.
// target qubit index.
//
// Model series (A64FX, n=30): flat HBM-limited bandwidth for high targets,
// SIMD-penalty dip for targets below log2(vector lanes). Measured series
// (host): the same qualitative dip at low targets.
#include "bench_util.hpp"

#include "perf/perf_simulator.hpp"

using namespace svsim;

SVSIM_BENCH(fig1_target_qubit, "Fig. 1",
            "H-gate effective bandwidth vs. target qubit") {
  // ---- model: A64FX, 30 qubits, 48 threads ------------------------------
  {
    const auto m = machine::MachineSpec::a64fx();
    machine::ExecConfig cfg;
    Table t("A64FX model, n=30 (48 threads, 512-bit SVE)",
            {"target", "GB/s", "GFLOP/s", "simd_eff", "bound"});
    for (unsigned target = 0; target < 30; target += 1) {
      const auto gt = perf::time_gate(qc::Gate::h(target), 30, m, cfg);
      const double gbps = gt.cost.bytes / gt.seconds * 1e-9;
      t.add_row({static_cast<std::int64_t>(target), gbps,
                 gt.cost.flops / gt.seconds * 1e-9, gt.cost.simd_efficiency,
                 std::string(gt.memory_bound ? "mem" : "fp")});
      if (target % 4 == 0 || target == 29)
        ctx.model(bench::sub("a64fx.n30.h.t", target) + ".gbps", gbps, "GB/s",
                  m.name);
    }
    ctx.table(t);
  }

  // ---- model: cache-regime contrast (n=14, L1/L2-resident) ---------------
  {
    const auto m = machine::MachineSpec::a64fx();
    machine::ExecConfig cfg;
    cfg.threads = 1;
    Table t("A64FX model, n=14, single core (cache regime: SIMD dip visible)",
            {"target", "GB/s", "GFLOP/s", "simd_eff"});
    for (unsigned target = 0; target < 14; ++target) {
      const auto gt = perf::time_gate(qc::Gate::h(target), 14, m, cfg);
      const double gbps = gt.cost.bytes / gt.seconds * 1e-9;
      t.add_row({static_cast<std::int64_t>(target), gbps,
                 gt.cost.flops / gt.seconds * 1e-9, gt.cost.simd_efficiency});
      if (target == 0 || target == 13)
        ctx.model(bench::sub("a64fx.n14.1c.h.t", target) + ".gbps", gbps,
                  "GB/s", m.name);
    }
    ctx.table(t);
  }

  // ---- measured on the build host ----------------------------------------
  {
    const unsigned n = ctx.smoke() ? 16 : 20;
    const unsigned step = ctx.smoke() ? 7 : 2;
    const auto host = bench::host_spec();
    machine::ExecConfig cfg;
    sv::StateVector<double> state(n);
    bench::spread_amplitudes(state);
    Table t("Host measured, n=" + std::to_string(n) +
                " (absolute numbers machine-dependent)",
            {"target", "ms/gate", "GB/s"});
    for (unsigned target = 0; target < n; target += step) {
      const qc::Gate gate = qc::Gate::h(target);
      const auto predicted = perf::time_gate(gate, n, host, cfg);
      BenchContext::MeasureOpts mo;
      mo.model_seconds = predicted.seconds;
      mo.model_bytes = predicted.cost.bytes;
      mo.model_machine = host.name;
      const auto st = ctx.measure(
          bench::sub("host.h.t", target),
          [&] { sv::apply_gate(state, gate); }, mo);
      t.add_row({static_cast<std::int64_t>(target), st.median * 1e3,
                 bench::measured_bandwidth_gbps(predicted.cost.bytes,
                                                st.median)});
    }
    ctx.table(t);
  }
}
