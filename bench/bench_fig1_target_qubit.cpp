// Figure 1 (reconstructed): effective bandwidth of a Hadamard kernel vs.
// target qubit index.
//
// Model series (A64FX, n=30): flat HBM-limited bandwidth for high targets,
// SIMD-penalty dip for targets below log2(vector lanes). Measured series
// (host, n=22): the same qualitative dip at low targets.
#include "bench_util.hpp"

#include "perf/perf_simulator.hpp"

using namespace svsim;

int main() {
  bench::print_header("Fig. 1",
                      "H-gate effective bandwidth vs. target qubit");

  // ---- model: A64FX, 30 qubits, 48 threads ------------------------------
  {
    const auto m = machine::MachineSpec::a64fx();
    machine::ExecConfig cfg;
    Table t("A64FX model, n=30 (48 threads, 512-bit SVE)",
            {"target", "GB/s", "GFLOP/s", "simd_eff", "bound"});
    for (unsigned target = 0; target < 30; target += 1) {
      const auto gt = perf::time_gate(qc::Gate::h(target), 30, m, cfg);
      t.add_row({static_cast<std::int64_t>(target),
                 gt.cost.bytes / gt.seconds * 1e-9,
                 gt.cost.flops / gt.seconds * 1e-9,
                 gt.cost.simd_efficiency,
                 std::string(gt.memory_bound ? "mem" : "fp")});
    }
    t.print(std::cout);
  }

  // ---- model: cache-regime contrast (n=14, L1/L2-resident) ---------------
  {
    const auto m = machine::MachineSpec::a64fx();
    machine::ExecConfig cfg;
    cfg.threads = 1;
    Table t("A64FX model, n=14, single core (cache regime: SIMD dip visible)",
            {"target", "GB/s", "GFLOP/s", "simd_eff"});
    for (unsigned target = 0; target < 14; ++target) {
      const auto gt = perf::time_gate(qc::Gate::h(target), 14, m, cfg);
      t.add_row({static_cast<std::int64_t>(target),
                 gt.cost.bytes / gt.seconds * 1e-9,
                 gt.cost.flops / gt.seconds * 1e-9,
                 gt.cost.simd_efficiency});
    }
    t.print(std::cout);
  }

  // ---- measured on the build host ----------------------------------------
  {
    const unsigned n = 20;
    const auto host = bench::host_spec();
    machine::ExecConfig cfg;
    cfg.threads = 1;
    Table t("Host measured, n=20 (absolute numbers machine-dependent)",
            {"target", "ms/gate", "GB/s"});
    for (unsigned target = 0; target < n; target += 2) {
      const double s = bench::measure_gate_seconds(qc::Gate::h(target), n);
      const double bytes =
          perf::gate_cost(qc::Gate::h(target), n, host, cfg).bytes;
      t.add_row({static_cast<std::int64_t>(target), s * 1e3,
                 bench::measured_bandwidth_gbps(bytes, s)});
    }
    t.print(std::cout);
  }
  return 0;
}
