// Table 2 (reconstructed): gate-fusion impact.
//
// A quantum-volume circuit fused at widths 1..5: gate count collapses and
// arithmetic intensity rises ~2^k/4. On A64FX (ridge ~3.7 flop/byte) the
// model improves until fused kernels cross the ridge around width 4. On a
// weak-compute host (ridge below 1 flop/byte) the same fusion turns the
// kernels compute-bound and *hurts* — and the model, instantiated with the
// host description, predicts that reversal, which the measured column
// confirms.
#include "bench_util.hpp"

#include "perf/perf_simulator.hpp"
#include "qc/library.hpp"
#include "sv/fusion.hpp"

using namespace svsim;

int main() {
  bench::print_header("Tab. 2", "gate-fusion impact (QV circuit)");

  {
    const unsigned n = 26;
    const qc::Circuit c = qc::random_quantum_volume(n, 10, 3);
    const auto m = machine::MachineSpec::a64fx();
    Table t("A64FX model, QV n=26 depth=10",
            {"fusion_width", "gates", "mean_AI", "model_s", "speedup"});
    double base = 0.0;
    for (unsigned width = 1; width <= 5; ++width) {
      sv::FusionOptions fo;
      fo.max_width = width;
      const qc::Circuit fused = sv::fuse(c, fo);
      perf::PerfOptions po;  // circuit already fused
      const auto r = perf::simulate_circuit(fused, m, {}, po);
      if (width == 1) base = r.total_seconds;
      t.add_row({static_cast<std::int64_t>(width),
                 static_cast<std::int64_t>(fused.size()),
                 r.total_flops / r.total_bytes, r.total_seconds,
                 base / r.total_seconds});
    }
    t.print(std::cout);
  }

  {
    const unsigned n = 19;
    const qc::Circuit c = qc::random_quantum_volume(n, 8, 3);
    const auto host = bench::host_spec();
    machine::ExecConfig host_cfg;
    Table t("Host: measured vs. host-model prediction, QV n=19 depth=8",
            {"fusion_width", "gates", "measured_s", "measured_speedup",
             "model_speedup"});
    double base = 0.0, model_base = 0.0;
    // Warm-up run so the first measured width is not penalized by faults.
    { sv::Simulator<double> warm; warm.run(c); }
    for (unsigned width = 1; width <= 5; ++width) {
      sv::FusionOptions fo;
      fo.max_width = width;
      const qc::Circuit fused = sv::fuse(c, fo);
      sv::Simulator<double> sim;
      Timer timer;
      sim.run(fused);
      const double s = timer.seconds();
      const double model_s =
          perf::simulate_circuit(fused, host, host_cfg).total_seconds;
      if (width == 1) {
        base = s;
        model_base = model_s;
      }
      t.add_row({static_cast<std::int64_t>(width),
                 static_cast<std::int64_t>(fused.size()), s, base / s,
                 model_base / model_s});
    }
    t.print(std::cout);
  }
  return 0;
}
