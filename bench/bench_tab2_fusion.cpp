// Table 2 (reconstructed): gate-fusion impact.
//
// A quantum-volume circuit fused at widths 1..5: gate count collapses and
// arithmetic intensity rises ~2^k/4. On A64FX (ridge ~3.7 flop/byte) the
// model improves until fused kernels cross the ridge around width 4. On a
// weak-compute host (ridge below 1 flop/byte) the same fusion turns the
// kernels compute-bound and *hurts* — and the model, instantiated with the
// host description, predicts that reversal, which the measured column
// confirms.
#include "bench_util.hpp"

#include "perf/perf_simulator.hpp"
#include "qc/library.hpp"
#include "sv/fusion.hpp"

using namespace svsim;

SVSIM_BENCH(tab2_fusion, "Tab. 2", "gate-fusion impact (QV circuit)") {
  {
    const unsigned n = 26;
    const qc::Circuit c = qc::random_quantum_volume(n, 10, 3);
    const auto m = machine::MachineSpec::a64fx();
    Table t("A64FX model, QV n=26 depth=10",
            {"fusion_width", "gates", "mean_AI", "model_s", "speedup"});
    double base = 0.0;
    for (unsigned width = 1; width <= 5; ++width) {
      sv::FusionOptions fo;
      fo.max_width = width;
      const qc::Circuit fused = sv::fuse(c, fo);
      perf::PerfOptions po;  // circuit already fused
      const auto r = perf::simulate_circuit(fused, m, {}, po);
      if (width == 1) base = r.total_seconds;
      t.add_row({static_cast<std::int64_t>(width),
                 static_cast<std::int64_t>(fused.size()),
                 r.total_flops / r.total_bytes, r.total_seconds,
                 base / r.total_seconds});
      ctx.model(bench::sub("a64fx.qv26.w", width) + ".s", r.total_seconds,
                "s", m.name);
    }
    ctx.table(t);
  }

  {
    const unsigned n = ctx.smoke() ? 14 : 19;
    const unsigned depth = ctx.smoke() ? 4 : 8;
    const qc::Circuit c = qc::random_quantum_volume(n, depth, 3);
    const auto host = bench::host_spec();
    machine::ExecConfig host_cfg;
    Table t("Host: measured vs. host-model prediction, QV n=" +
                std::to_string(n) + " depth=" + std::to_string(depth),
            {"fusion_width", "gates", "measured_s", "measured_speedup",
             "model_speedup"});
    double base = 0.0, model_base = 0.0;
    for (unsigned width = 1; width <= 5; ++width) {
      if (ctx.smoke() && width != 1 && width != 4) continue;
      sv::FusionOptions fo;
      fo.max_width = width;
      const qc::Circuit fused = sv::fuse(c, fo);
      const double model_s =
          perf::simulate_circuit(fused, host, host_cfg).total_seconds;
      BenchContext::MeasureOpts mo;
      mo.model_seconds = model_s;
      mo.model_machine = host.name;
      const auto st = ctx.measure(
          bench::sub("host.qv.w", width),
          [&] {
            sv::Simulator<double> sim;
            sim.run(fused);
          },
          mo);
      if (base == 0.0) {
        base = st.median;
        model_base = model_s;
      }
      t.add_row({static_cast<std::int64_t>(width),
                 static_cast<std::int64_t>(fused.size()), st.median,
                 base / st.median, model_base / model_s});
    }
    ctx.table(t);
  }
}
