// Figure 5 (reconstructed): roofline placement of the state-vector kernels
// on A64FX.
//
// Every kernel class is plotted as (arithmetic intensity, attainable and
// model-achieved GFLOP/s) against the 3.07 TF compute roof and the 830 GB/s
// STREAM ceiling. Plain gates sit far left of the ridge (~3.7 flop/byte);
// fusion walks them to the right, crossing the ridge around width 4-5.
#include "bench_util.hpp"

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "machine/roofline.hpp"
#include "perf/perf_simulator.hpp"
#include "qc/matrix.hpp"

using namespace svsim;

SVSIM_BENCH(fig5_roofline, "Fig. 5",
            "roofline placement of kernels (A64FX, n=30)") {
  const auto m = machine::MachineSpec::a64fx();
  machine::ExecConfig cfg;
  const auto placement = machine::place_threads(m, cfg);
  const unsigned n = 30;

  ctx.model("a64fx.peak_gflops", m.peak_gflops(), "GFLOP/s", m.name);
  ctx.model("a64fx.stream_gbps", m.stream_bandwidth_gbps(), "GB/s", m.name);
  const double ridge =
      machine::ridge_intensity(m, placement, cfg, 1.0, 1ull << 34);
  ctx.model("a64fx.ridge_intensity", ridge, "flop/byte", m.name);

  {
    Table t("Roofs", {"quantity", "value"});
    t.add_row({std::string("compute roof GFLOP/s"), m.peak_gflops()});
    t.add_row({std::string("STREAM ceiling GB/s"), m.stream_bandwidth_gbps()});
    t.add_row({std::string("ridge flop/byte"), ridge});
    ctx.table(t);
  }

  Xoshiro256 rng(5);
  std::vector<std::pair<std::string, qc::Gate>> kernels = {
      {"x", qc::Gate::x(20)},
      {"h", qc::Gate::h(20)},
      {"rz", qc::Gate::rz(20, 0.3)},
      {"rx", qc::Gate::rx(20, 0.3)},
      {"cx", qc::Gate::cx(28, 20)},
      {"u2q", qc::Gate::u2q(10, 20, qc::Matrix::random_unitary(4, rng))},
  };
  for (unsigned k = 3; k <= 6; ++k) {
    std::vector<unsigned> qs;
    for (unsigned i = 0; i < k; ++i) qs.push_back(4 * i + 2);
    kernels.emplace_back(
        "fused" + std::to_string(k),
        qc::Gate::unitary(qs, qc::Matrix::random_unitary(pow2(k), rng)));
  }

  Table t("Roofline points",
          {"kernel", "AI_flop_per_byte", "attainable_GFLOPs",
           "model_GFLOPs", "bound"});
  for (const auto& [name, gate] : kernels) {
    const auto cost = perf::gate_cost(gate, n, m, cfg);
    // Placement API: hand it raw (flops, bytes) and let it derive the
    // arithmetic intensity — the same path profile reports go through.
    const machine::RooflinePlacement placed = machine::place_on_roofline(
        m, placement, cfg, cost.flops, cost.bytes, cost.simd_efficiency,
        cost.footprint_bytes);
    const auto gt = perf::time_gate(gate, n, m, cfg);
    const double model_gflops = placed.achieved_gflops(gt.seconds);
    t.add_row({name, placed.point.arithmetic_intensity,
               placed.point.attainable_gflops, model_gflops,
               std::string(placed.point.memory_bound ? "mem" : "fp")});
    ctx.model("a64fx." + name + ".ai", placed.point.arithmetic_intensity,
              "flop/byte", m.name);
    ctx.model("a64fx." + name + ".gflops", model_gflops, "GFLOP/s", m.name);
  }
  ctx.table(t);
}
