// Figure 5 (reconstructed): roofline placement of the state-vector kernels
// on A64FX.
//
// Every kernel class is plotted as (arithmetic intensity, attainable and
// model-achieved GFLOP/s) against the 3.07 TF compute roof and the 830 GB/s
// STREAM ceiling. Plain gates sit far left of the ridge (~3.7 flop/byte);
// fusion walks them to the right, crossing the ridge around width 4-5.
#include "bench_util.hpp"

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "machine/roofline.hpp"
#include "perf/perf_simulator.hpp"
#include "qc/matrix.hpp"

using namespace svsim;

int main() {
  bench::print_header("Fig. 5", "roofline placement of kernels (A64FX, n=30)");

  const auto m = machine::MachineSpec::a64fx();
  machine::ExecConfig cfg;
  const auto placement = machine::place_threads(m, cfg);
  const unsigned n = 30;

  std::cout << "compute roof: " << m.peak_gflops() << " GFLOP/s, "
            << "STREAM ceiling: " << m.stream_bandwidth_gbps() << " GB/s, "
            << "ridge: "
            << machine::ridge_intensity(m, placement, cfg, 1.0, 1ull << 34)
            << " flop/byte\n\n";

  Xoshiro256 rng(5);
  std::vector<std::pair<std::string, qc::Gate>> kernels = {
      {"x", qc::Gate::x(20)},
      {"h", qc::Gate::h(20)},
      {"rz (diag)", qc::Gate::rz(20, 0.3)},
      {"rx (gen1q)", qc::Gate::rx(20, 0.3)},
      {"cx", qc::Gate::cx(28, 20)},
      {"u2q (gen2q)", qc::Gate::u2q(10, 20, qc::Matrix::random_unitary(4, rng))},
  };
  for (unsigned k = 3; k <= 6; ++k) {
    std::vector<unsigned> qs;
    for (unsigned i = 0; i < k; ++i) qs.push_back(4 * i + 2);
    kernels.emplace_back(
        "fused" + std::to_string(k),
        qc::Gate::unitary(qs, qc::Matrix::random_unitary(pow2(k), rng)));
  }

  Table t("Roofline points",
          {"kernel", "AI_flop_per_byte", "attainable_GFLOPs",
           "model_GFLOPs", "bound"});
  for (const auto& [name, gate] : kernels) {
    const auto cost = perf::gate_cost(gate, n, m, cfg);
    const auto pt = machine::roofline(m, placement, cfg,
                                      cost.arithmetic_intensity(),
                                      cost.simd_efficiency,
                                      cost.footprint_bytes);
    const auto gt = perf::time_gate(gate, n, m, cfg);
    t.add_row({name, cost.arithmetic_intensity(), pt.attainable_gflops,
               gt.cost.flops / gt.seconds * 1e-9,
               std::string(pt.memory_bound ? "mem" : "fp")});
  }
  t.print(std::cout);
  return 0;
}
