// Table 3 (reconstructed): A64FX power modes (normal / boost / eco).
//
// The Fugaku power knobs applied to two contrasting workloads: a bandwidth-
// bound plain QFT (eco should save energy nearly for free; boost should buy
// nothing) and a compute-bound heavily-fused quantum-volume circuit (boost:
// ~+10% speed for ~+17% power, the authors' published calibration point).
#include "bench_util.hpp"

#include "perf/power_model.hpp"
#include "qc/library.hpp"

using namespace svsim;

namespace {

void mode_table(bench::BenchContext& ctx, const std::string& key,
                const qc::Circuit& c, const perf::PerfOptions& opts,
                const char* title) {
  const std::vector<std::pair<std::string, machine::MachineSpec>> modes = {
      {"normal", machine::MachineSpec::a64fx()},
      {"boost", machine::MachineSpec::a64fx_boost()},
      {"eco", machine::MachineSpec::a64fx_eco()},
  };
  Table t(title, {"mode", "seconds", "watts", "joules", "EDP_Js",
                  "vs_normal_time", "vs_normal_power"});
  double t0 = 0.0, w0 = 0.0;
  for (const auto& [name, m] : modes) {
    const auto p = perf::estimate_power(c, m, {}, opts);
    if (name == "normal") {
      t0 = p.seconds;
      w0 = p.average_watts;
    }
    t.add_row({name, p.seconds, p.average_watts, p.joules,
               p.energy_delay_product(), p.seconds / t0,
               p.average_watts / w0});
    ctx.model(key + "." + name + ".s", p.seconds, "s", m.name);
    ctx.model(key + "." + name + ".watts", p.average_watts, "W", m.name);
    ctx.model(key + "." + name + ".joules", p.joules, "J", m.name);
  }
  ctx.table(t);
}

}  // namespace

SVSIM_BENCH(tab3_power, "Tab. 3", "A64FX power modes (model)") {
  mode_table(ctx, "qft27", qc::qft(27), {},
             "Memory-bound: QFT(27), no fusion");

  perf::PerfOptions fused;
  fused.fusion = true;
  fused.fusion_width = 5;
  mode_table(ctx, "qv20f5", qc::random_quantum_volume(20, 20, 3), fused,
             "Compute-bound: QV(20) depth 20, fusion width 5");
}
