// Table 4 (reconstructed): double vs. single precision.
//
// Halving the amplitude size halves the streamed bytes; for a bandwidth-
// bound simulator that is a ~2x speedup on the model, and measurably faster
// on the host. The accuracy records report the float-vs-double state error
// after a full circuit — the trade the precision study quantifies.
#include "bench_util.hpp"

#include <cmath>
#include <complex>

#include "common/bits.hpp"

#include "perf/perf_simulator.hpp"
#include "qc/library.hpp"

using namespace svsim;

SVSIM_BENCH(tab4_precision, "Tab. 4", "double vs. single precision") {
  {
    const auto m = machine::MachineSpec::a64fx();
    Table t("A64FX model, H-gate sweep",
            {"n", "double_us", "float_us", "speedup"});
    for (unsigned n = 20; n <= 30; n += 2) {
      machine::ExecConfig dp;
      machine::ExecConfig sp;
      sp.element_bytes = 4;
      const double td = perf::time_gate(qc::Gate::h(n - 2), n, m, dp).seconds;
      const double ts = perf::time_gate(qc::Gate::h(n - 2), n, m, sp).seconds;
      t.add_row({static_cast<std::int64_t>(n), td * 1e6, ts * 1e6, td / ts});
      ctx.model(bench::sub("a64fx.h.n", n) + ".speedup", td / ts, "ratio",
                m.name);
    }
    ctx.table(t);
  }

  {
    const unsigned n = ctx.smoke() ? 16 : 20;
    const auto host = bench::host_spec();
    Table t("Host measured, n=" + std::to_string(n),
            {"kernel", "double_us", "float_us", "speedup"});
    const std::vector<std::pair<std::string, qc::Gate>> kernels = {
        {"h", qc::Gate::h(n - 2)},
        {"x", qc::Gate::x(n - 2)},
        {"cx", qc::Gate::cx(n - 1, 2)},
    };
    const double bytes_d = static_cast<double>(pow2(n)) * 2 * 16;
    for (const auto& [name, g] : kernels) {
      sv::StateVector<double> sd(n);
      bench::spread_amplitudes(sd);
      BenchContext::MeasureOpts mo;
      mo.model_seconds =
          perf::time_gate(g, n, host, {}).seconds;
      mo.model_bytes = bytes_d;
      mo.model_machine = host.name;
      const auto rd = ctx.measure("host." + name + ".double",
                                  [&] { sv::apply_gate(sd, g); }, mo);

      sv::StateVector<float> sf(n);
      bench::spread_amplitudes(sf);
      machine::ExecConfig sp;
      sp.element_bytes = 4;
      mo.model_seconds = perf::time_gate(g, n, host, sp).seconds;
      mo.model_bytes = bytes_d / 2;
      const auto rf = ctx.measure("host." + name + ".float",
                                  [&] { sv::apply_gate(sf, g); }, mo);
      t.add_row({name, rd.median * 1e6, rf.median * 1e6,
                 rd.median / rf.median});
    }
    ctx.table(t);
  }

  {
    // Accuracy: float-vs-double final-state error for a deep circuit.
    // Deterministic (seeded circuit, exact arithmetic comparison), so these
    // are "value" records: no sampling, but baselined like everything else.
    Table t("Accuracy: QV circuit float-vs-double state error",
            {"n", "depth", "max_amp_error", "fidelity_loss"});
    std::vector<unsigned> sizes = {12u};
    if (!ctx.smoke()) sizes.push_back(16u);
    for (unsigned n : sizes) {
      const qc::Circuit c = qc::random_quantum_volume(n, 12, 9);
      sv::Simulator<double> sd;
      sv::Simulator<float> sf;
      const auto vd = sd.run(c);
      const auto vf = sf.run(c);
      const auto a = vd.to_vector();
      const auto b = vf.to_vector();
      double max_err = 0.0;
      std::complex<double> ip{0, 0};
      for (std::size_t i = 0; i < a.size(); ++i) {
        max_err = std::max(max_err, std::abs(a[i] - b[i]));
        ip += std::conj(a[i]) * b[i];
      }
      const double fid_loss = 1.0 - std::abs(ip);
      t.add_row({static_cast<std::int64_t>(n), std::int64_t{12}, max_err,
                 fid_loss});
      obs::bench::BenchRecord r;
      r.id = bench::sub("accuracy.qv", n) + ".max_amp_error";
      r.kind = "value";
      r.unit = "abs";
      r.value = max_err;
      ctx.record(std::move(r));
      obs::bench::BenchRecord r2;
      r2.id = bench::sub("accuracy.qv", n) + ".fidelity_loss";
      r2.kind = "value";
      r2.unit = "abs";
      r2.value = fid_loss;
      ctx.record(std::move(r2));
    }
    ctx.table(t);
  }
}
