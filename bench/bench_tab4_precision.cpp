// Table 4 (reconstructed): double vs. single precision.
//
// Halving the amplitude size halves the streamed bytes; for a bandwidth-
// bound simulator that is a ~2x speedup on the model, and measurably faster
// on the host. The accuracy column reports the float-vs-double state error
// after the full circuit — the trade the precision study quantifies.
#include "bench_util.hpp"

#include <cmath>

#include "perf/perf_simulator.hpp"
#include "qc/library.hpp"

using namespace svsim;

int main() {
  bench::print_header("Tab. 4", "double vs. single precision");

  {
    const auto m = machine::MachineSpec::a64fx();
    Table t("A64FX model, H-gate sweep", {"n", "double_us", "float_us",
                                          "speedup"});
    for (unsigned n = 20; n <= 30; n += 2) {
      machine::ExecConfig dp;
      machine::ExecConfig sp;
      sp.element_bytes = 4;
      const double td = perf::time_gate(qc::Gate::h(n - 2), n, m, dp).seconds;
      const double ts = perf::time_gate(qc::Gate::h(n - 2), n, m, sp).seconds;
      t.add_row({static_cast<std::int64_t>(n), td * 1e6, ts * 1e6, td / ts});
    }
    t.print(std::cout);
  }

  {
    const unsigned n = 20;
    Table t("Host measured, n=20", {"kernel", "double_us", "float_us",
                                    "speedup"});
    const std::vector<std::pair<std::string, qc::Gate>> kernels = {
        {"h", qc::Gate::h(n - 2)},
        {"x", qc::Gate::x(n - 2)},
        {"cx", qc::Gate::cx(n - 1, 2)},
    };
    for (const auto& [name, g] : kernels) {
      const double td = bench::measure_gate_seconds<double>(g, n);
      const double ts = bench::measure_gate_seconds<float>(g, n);
      t.add_row({name, td * 1e6, ts * 1e6, td / ts});
    }
    t.print(std::cout);
  }

  {
    // Accuracy: float-vs-double final-state error for a deep circuit.
    Table t("Accuracy: QV circuit float-vs-double state error",
            {"n", "depth", "max_amp_error", "fidelity_loss"});
    for (unsigned n : {12u, 16u}) {
      const qc::Circuit c = qc::random_quantum_volume(n, 12, 9);
      sv::Simulator<double> sd;
      sv::Simulator<float> sf;
      const auto vd = sd.run(c);
      const auto vf = sf.run(c);
      const auto a = vd.to_vector();
      const auto b = vf.to_vector();
      double max_err = 0.0;
      std::complex<double> ip{0, 0};
      for (std::size_t i = 0; i < a.size(); ++i) {
        max_err = std::max(max_err, std::abs(a[i] - b[i]));
        ip += std::conj(a[i]) * b[i];
      }
      t.add_row({static_cast<std::int64_t>(n), std::int64_t{12}, max_err,
                 1.0 - std::abs(ip)});
    }
    t.print(std::cout);
  }
  return 0;
}
