// Google-benchmark microkernels: real host measurements of the hot kernels.
//
// These complement the model tables with statistically solid wall-clock
// numbers on whatever machine builds the repo (used to validate that the
// kernels genuinely stream at memory speed and that fusion raises per-byte
// work).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "qc/matrix.hpp"
#include "sv/kernels.hpp"
#include "sv/simulator.hpp"
#include "sv/state_vector.hpp"

using namespace svsim;

namespace {

constexpr unsigned kN = 18;  // 4 MiB state: out of L2 on most hosts

sv::StateVector<double>& shared_state() {
  static sv::StateVector<double> state(kN);
  return state;
}

void BM_ApplyH(benchmark::State& st) {
  auto& sv = shared_state();
  const unsigned target = static_cast<unsigned>(st.range(0));
  for (auto _ : st) {
    sv::apply_h(sv.data(), kN, target, sv.pool());
    benchmark::ClobberMemory();
  }
  st.SetBytesProcessed(static_cast<std::int64_t>(st.iterations()) *
                       static_cast<std::int64_t>(pow2(kN)) * 32);
}
BENCHMARK(BM_ApplyH)->Arg(0)->Arg(4)->Arg(kN - 1);

void BM_ApplyX(benchmark::State& st) {
  auto& sv = shared_state();
  for (auto _ : st) {
    sv::apply_x(sv.data(), kN, 9, sv.pool());
    benchmark::ClobberMemory();
  }
  st.SetBytesProcessed(static_cast<std::int64_t>(st.iterations()) *
                       static_cast<std::int64_t>(pow2(kN)) * 32);
}
BENCHMARK(BM_ApplyX);

void BM_ApplyDiag(benchmark::State& st) {
  auto& sv = shared_state();
  for (auto _ : st) {
    sv::apply_diag1(sv.data(), kN, 9, {1.0, 0.0}, {0.0, 1.0}, sv.pool());
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ApplyDiag);

void BM_ApplyCX(benchmark::State& st) {
  auto& sv = shared_state();
  for (auto _ : st) {
    sv::apply_mcx(sv.data(), kN, {3}, 11, sv.pool());
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ApplyCX);

void BM_ApplyMatrix2(benchmark::State& st) {
  auto& sv = shared_state();
  Xoshiro256 rng(1);
  const qc::Matrix u = qc::Matrix::random_unitary(4, rng);
  for (auto _ : st) {
    sv::apply_matrix2(sv.data(), kN, 3, 11, u, sv.pool());
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ApplyMatrix2);

void BM_ApplyFusedK(benchmark::State& st) {
  auto& sv = shared_state();
  const unsigned k = static_cast<unsigned>(st.range(0));
  Xoshiro256 rng(k);
  std::vector<unsigned> qs;
  for (unsigned i = 0; i < k; ++i) qs.push_back(2 * i + 1);
  const qc::Matrix u = qc::Matrix::random_unitary(pow2(k), rng);
  for (auto _ : st) {
    sv::apply_matrix_k(sv.data(), kN, qs, u, sv.pool());
    benchmark::ClobberMemory();
  }
  // flops per group x groups, for the counters report.
  const double sub = static_cast<double>(pow2(k));
  st.counters["flops_per_iter"] =
      sub * (6.0 * sub + 2.0 * (sub - 1.0)) * (static_cast<double>(pow2(kN)) / sub);
}
BENCHMARK(BM_ApplyFusedK)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_NormSquared(benchmark::State& st) {
  auto& sv = shared_state();
  for (auto _ : st) {
    benchmark::DoNotOptimize(sv.norm_squared());
  }
}
BENCHMARK(BM_NormSquared);

}  // namespace

BENCHMARK_MAIN();
