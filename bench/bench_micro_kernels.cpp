// Microkernels: real host measurements of the hot kernels.
//
// These complement the model tables with statistically solid wall-clock
// numbers on whatever machine builds the repo (used to validate that the
// kernels genuinely stream at memory speed and that fusion raises per-byte
// work). The achieved-GB/s column comes from the harness' attribution join.
#include "bench_util.hpp"

#include "common/rng.hpp"
#include "qc/matrix.hpp"
#include "sv/kernels.hpp"

using namespace svsim;

SVSIM_BENCH(micro_kernels, "Micro", "hot-kernel wall-clock on the host") {
  const unsigned n = ctx.smoke() ? 16 : 18;  // 4 MiB state: out of L2
  sv::StateVector<double> state(n);
  bench::spread_amplitudes(state);
  const double bytes = static_cast<double>(pow2(n)) * 32;  // rd+wr complex

  Table t("Hot kernels, n=" + std::to_string(n),
          {"kernel", "median_us", "rel_ci95", "GB/s"});
  auto row = [&](const std::string& name, const obs::bench::SampleStats& st,
                 double b) {
    t.add_row({name, st.median * 1e6, st.rel_ci95,
               bench::measured_bandwidth_gbps(b, st.median)});
  };

  {
    const std::vector<unsigned> targets =
        ctx.smoke() ? std::vector<unsigned>{0u, n - 1}
                    : std::vector<unsigned>{0u, 4u, n - 1};
    for (unsigned target : targets) {
      BenchContext::MeasureOpts mo;
      mo.model_bytes = bytes;
      const auto st = ctx.measure(
          bench::sub("h.t", target),
          [&] { sv::apply_h(state.data(), n, target, state.pool()); }, mo);
      row(bench::sub("h t=", target), st, bytes);
    }
  }
  {
    BenchContext::MeasureOpts mo;
    mo.model_bytes = bytes;
    const auto st = ctx.measure(
        "x.t9", [&] { sv::apply_x(state.data(), n, 9, state.pool()); }, mo);
    row("x t=9", st, bytes);
  }
  {
    const auto st = ctx.measure("diag.t9", [&] {
      sv::apply_diag1(state.data(), n, 9, {1.0, 0.0}, {0.0, 1.0},
                      state.pool());
    });
    row("diag t=9", st, bytes);
  }
  {
    const auto st = ctx.measure("cx.c3.t11", [&] {
      sv::apply_mcx(state.data(), n, {3}, 11, state.pool());
    });
    row("cx 3->11", st, bytes / 2);
  }
  {
    Xoshiro256 rng(1);
    const qc::Matrix u = qc::Matrix::random_unitary(4, rng);
    BenchContext::MeasureOpts mo;
    mo.model_bytes = bytes;
    const auto st = ctx.measure("matrix2.t3.t11", [&] {
      sv::apply_matrix2(state.data(), n, 3, 11, u, state.pool());
    }, mo);
    row("matrix2 3,11", st, bytes);
  }
  for (unsigned k = 2; k <= 5; ++k) {
    if (ctx.smoke() && k != 2 && k != 4) continue;
    Xoshiro256 rng(k);
    std::vector<unsigned> qs;
    for (unsigned i = 0; i < k; ++i) qs.push_back(2 * i + 1);
    const qc::Matrix u = qc::Matrix::random_unitary(pow2(k), rng);
    BenchContext::MeasureOpts mo;
    mo.model_bytes = bytes;
    const auto st = ctx.measure(bench::sub("fused.k", k), [&] {
      sv::apply_matrix_k(state.data(), n, qs, u, state.pool());
    }, mo);
    row(bench::sub("fused k=", k), st, bytes);
  }
  {
    const auto st =
        ctx.measure("norm_squared", [&] { (void)state.norm_squared(); });
    row("norm_squared", st, bytes / 2);
  }
  ctx.table(t);
}
