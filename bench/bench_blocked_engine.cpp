// Fig. 1 / Tab. 2 variants: cache-blocked sweep execution.
//
// fig1_blocked — the core claim of the blocked engine: a sweep of k
// low-target-qubit gates costs ~1 traversal of the state instead of k, so
// measured time per gate falls toward t_traversal/k and the DRAM bandwidth
// each gate consumes (measured GB/s divided across the sweep's gates) drops
// accordingly, while the unblocked baseline re-streams the state per gate.
//
// tab2_blocked — the same effect at circuit level: a fused
// quantum-volume circuit run through Simulator with blocking on/off,
// alongside the sweep planner's gates-per-traversal for the fused circuit.
#include "bench_util.hpp"

#include <cstdint>
#include <vector>

#include "perf/kernel_model.hpp"
#include "qc/library.hpp"
#include "sv/engine.hpp"
#include "sv/fusion.hpp"
#include "sv/sweep.hpp"

using namespace svsim;

SVSIM_BENCH(fig1_blocked, "Fig. 1 (blocked)",
            "sweep-length scaling: blocked vs. unblocked low-qubit gates") {
  const unsigned n = ctx.smoke() ? 18 : 24;
  sv::StateVector<double> state(n);
  bench::spread_amplitudes(state);

  const sv::SweepOptions so;  // defaults: 512 KiB budget, complex<double>
  const unsigned b = sv::auto_block_qubits(n, so.cache_bytes, so.amp_bytes,
                                           so.min_free_qubits);
  const auto a64fx = machine::MachineSpec::a64fx();

  Table t("Blocked sweep, n=" + std::to_string(n) +
              " b=" + std::to_string(b) + " (H gates, targets < b)",
          {"sweep_k", "gates_per_trav", "blocked_s", "unblocked_s", "speedup",
           "blk_GBps_per_gate", "unblk_GBps_per_gate"});

  for (unsigned k : {1u, 2u, 4u, 8u, 16u}) {
    if (ctx.smoke() && k != 1 && k != 4 && k != 16) continue;

    // k Hadamards on rotating low targets: every operand < b, so the
    // planner folds the whole run into one blocked step.
    qc::Circuit c(n);
    for (unsigned i = 0; i < k; ++i) c.h(i % 8);
    const sv::SweepPlan plan = sv::plan_sweeps(c, so);
    const perf::SweepCost cost = perf::blocked_sweep_cost(
        c.gates(), n, b, a64fx, machine::ExecConfig{});

    BenchContext::MeasureOpts mo;
    mo.model_bytes = cost.dram_bytes;
    mo.min_reps = 3;
    mo.max_seconds = 2.0;
    const auto bs = ctx.measure(
        bench::sub("k", k) + ".blocked.s",
        [&] { sv::run_sweep(state, c.gates().data(), c.gates().size(), b); },
        mo);
    mo.model_bytes = cost.unblocked_bytes;
    const auto us = ctx.measure(
        bench::sub("k", k) + ".unblocked.s",
        [&] {
          for (const auto& g : c.gates()) sv::apply_gate(state, g);
        },
        mo);

    // Plan + model facts for this sweep length.
    ctx.model(bench::sub("k", k) + ".gates_per_traversal",
              plan.gates_per_traversal(), "gates");
    ctx.model(bench::sub("k", k) + ".blocked.gb_per_gate",
              cost.bytes_per_gate() * 1e-9, "GB", a64fx.name);
    ctx.model(bench::sub("k", k) + ".unblocked.gb_per_gate",
              cost.unblocked_bytes / static_cast<double>(k) * 1e-9, "GB",
              a64fx.name);

    // Measured-derived: the DRAM rate each gate's share of the run
    // sustains. Unblocked, every gate streams the state at full bandwidth;
    // blocked, one traversal is split across k gates, so this falls ~1/k.
    const double blk_gbps_per_gate =
        bench::measured_bandwidth_gbps(cost.dram_bytes, bs.median) / k;
    const double unblk_gbps_per_gate =
        bench::measured_bandwidth_gbps(cost.unblocked_bytes, us.median) / k;
    ctx.derived(bench::sub("k", k) + ".blocked.gbps_per_gate",
                blk_gbps_per_gate, "GB/s");
    ctx.derived(bench::sub("k", k) + ".unblocked.gbps_per_gate",
                unblk_gbps_per_gate, "GB/s");
    ctx.derived(bench::sub("k", k) + ".speedup", us.median / bs.median, "x");

    t.add_row({static_cast<std::int64_t>(k), plan.gates_per_traversal(),
               bs.median, us.median, us.median / bs.median, blk_gbps_per_gate,
               unblk_gbps_per_gate});
  }
  ctx.table(t);
}

SVSIM_BENCH(tab2_blocked, "Tab. 2 (blocked)",
            "blocked engine at circuit level: fused QV, Simulator on/off") {
  const unsigned n = ctx.smoke() ? 14 : 20;
  const unsigned depth = ctx.smoke() ? 4 : 8;
  const qc::Circuit c = qc::random_quantum_volume(n, depth, 3);

  sv::FusionOptions fo;
  fo.max_width = 3;
  const qc::Circuit fused = sv::fuse(c, fo);
  const sv::SweepPlan plan = sv::plan_sweeps(fused, sv::SweepOptions{});
  ctx.model("qv.gates_per_traversal", plan.gates_per_traversal(), "gates");

  Table t("Fused QV n=" + std::to_string(n) + " depth=" +
              std::to_string(depth) + ": Simulator blocking off/on",
          {"blocking", "measured_s", "speedup"});
  double base = 0.0;
  for (const bool blocking : {false, true}) {
    sv::SimulatorOptions opts;
    opts.blocking = blocking;
    BenchContext::MeasureOpts mo;
    mo.min_reps = 3;
    mo.max_seconds = 2.0;
    const auto st = ctx.measure(
        std::string("qv.") + (blocking ? "blocked" : "unblocked") + ".s",
        [&] {
          sv::Simulator<double> sim(opts);
          sim.run(fused);
        },
        mo);
    if (!blocking) base = st.median;
    t.add_row({std::string(blocking ? "on" : "off"), st.median,
               base / st.median});
  }
  ctx.table(t);
}
