// Table 1 (reconstructed): whole-circuit comparison across processors.
//
// QFT / GHZ / quantum-volume / QAOA circuits modeled on A64FX, dual-socket
// Xeon 6148 and dual ThunderX2. State-vector simulation is bandwidth-bound,
// so the expected ranking follows STREAM: A64FX (~830 GB/s) beats ThunderX2
// (~245) beats Xeon (~205), by roughly the bandwidth ratios. Host-measured
// wall times for smaller instances validate that the code actually runs.
#include "bench_util.hpp"

#include "perf/perf_simulator.hpp"
#include "qc/library.hpp"

using namespace svsim;

SVSIM_BENCH(tab1_circuits, "Tab. 1", "circuit suite across processors") {
  const unsigned n = 26;
  const std::vector<std::pair<std::string, qc::Circuit>> suite = {
      {"qft", qc::qft(n)},
      {"ghz", qc::ghz(n)},
      {"qv_d10", qc::random_quantum_volume(n, 10, 11)},
      {"qaoa_p2", qc::qaoa_maxcut(n, qc::ring_graph(n), {0.8, 0.6},
                                  {0.4, 0.3})},
  };
  const std::vector<std::pair<std::string, machine::MachineSpec>> machines = {
      {"a64fx", machine::MachineSpec::a64fx()},
      {"xeon", machine::MachineSpec::xeon_6148_dual()},
      {"tx2", machine::MachineSpec::thunderx2_dual()},
  };

  Table t("Model wall time (seconds), n=26, all cores, no fusion",
          {"circuit", "gates", "A64FX", "2xXeon6148", "2xTX2",
           "xeon/a64fx", "tx2/a64fx"});
  for (const auto& [name, c] : suite) {
    std::vector<double> secs;
    for (const auto& [key, m] : machines) {
      secs.push_back(perf::simulate_circuit(c, m, {}).total_seconds);
      ctx.model(key + "." + name + ".s", secs.back(), "s", m.name);
    }
    t.add_row({name, static_cast<std::int64_t>(c.size()), secs[0], secs[1],
               secs[2], secs[1] / secs[0], secs[2] / secs[0]});
  }
  ctx.table(t);

  Table tf("Model wall time (seconds), n=26, fusion width 4",
           {"circuit", "A64FX", "2xXeon6148", "2xTX2"});
  perf::PerfOptions fo;
  fo.fusion = true;
  fo.fusion_width = 4;
  for (const auto& [name, c] : suite) {
    std::vector<Cell> row{name};
    for (const auto& [key, m] : machines) {
      const double s = perf::simulate_circuit(c, m, {}, fo).total_seconds;
      row.push_back(s);
      ctx.model(key + "." + name + ".fused4.s", s, "s", m.name);
    }
    tf.add_row(std::move(row));
  }
  ctx.table(tf);

  // Host-measured small instances: real end-to-end runs.
  {
    const unsigned hn = ctx.smoke() ? 14 : 18;
    std::vector<std::pair<std::string, qc::Circuit>> small = {
        {"qft", qc::qft(hn)},
        {"ghz", qc::ghz(hn)},
    };
    if (!ctx.smoke())
      small.emplace_back("qv_d10", qc::random_quantum_volume(hn, 10, 11));
    const auto host = bench::host_spec();
    Table th("Host measured (seconds), n=" + std::to_string(hn),
             {"circuit", "plain", "fused4"});
    for (const auto& [name, c] : small) {
      BenchContext::MeasureOpts mo;
      mo.model_seconds = perf::simulate_circuit(c, host, {}).total_seconds;
      mo.model_machine = host.name;
      const auto plain = ctx.measure(
          "host." + name + ".plain",
          [&] {
            sv::Simulator<double> sim;
            sim.run(c);
          },
          mo);

      sv::SimulatorOptions fopts;
      fopts.fusion = true;
      fopts.fusion_width = 4;
      perf::PerfOptions fpo;
      fpo.fusion = true;
      fpo.fusion_width = 4;
      mo.model_seconds =
          perf::simulate_circuit(c, host, {}, fpo).total_seconds;
      const auto fused = ctx.measure(
          "host." + name + ".fused4",
          [&] {
            sv::Simulator<double> sim(fopts);
            sim.run(c);
          },
          mo);
      th.add_row({name, plain.median, fused.median});
    }
    ctx.table(th);
  }
}
