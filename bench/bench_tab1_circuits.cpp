// Table 1 (reconstructed): whole-circuit comparison across processors.
//
// QFT / GHZ / quantum-volume / QAOA circuits modeled on A64FX, dual-socket
// Xeon 6148 and dual ThunderX2. State-vector simulation is bandwidth-bound,
// so the expected ranking follows STREAM: A64FX (~830 GB/s) beats ThunderX2
// (~245) beats Xeon (~205), by roughly the bandwidth ratios. Host-measured
// wall times for smaller instances validate that the code actually runs.
#include "bench_util.hpp"

#include "perf/perf_simulator.hpp"
#include "qc/library.hpp"

using namespace svsim;

int main() {
  bench::print_header("Tab. 1", "circuit suite across processors");

  const unsigned n = 26;
  const std::vector<std::pair<std::string, qc::Circuit>> suite = {
      {"qft", qc::qft(n)},
      {"ghz", qc::ghz(n)},
      {"qv_d10", qc::random_quantum_volume(n, 10, 11)},
      {"qaoa_p2", qc::qaoa_maxcut(n, qc::ring_graph(n), {0.8, 0.6},
                                  {0.4, 0.3})},
  };
  const std::vector<machine::MachineSpec> machines = {
      machine::MachineSpec::a64fx(),
      machine::MachineSpec::xeon_6148_dual(),
      machine::MachineSpec::thunderx2_dual(),
  };

  Table t("Model wall time (seconds), n=26, all cores, no fusion",
          {"circuit", "gates", "A64FX", "2xXeon6148", "2xTX2",
           "xeon/a64fx", "tx2/a64fx"});
  for (const auto& [name, c] : suite) {
    std::vector<double> secs;
    for (const auto& m : machines)
      secs.push_back(perf::simulate_circuit(c, m, {}).total_seconds);
    t.add_row({name, static_cast<std::int64_t>(c.size()), secs[0], secs[1],
               secs[2], secs[1] / secs[0], secs[2] / secs[0]});
  }
  t.print(std::cout);

  Table tf("Model wall time (seconds), n=26, fusion width 4",
           {"circuit", "A64FX", "2xXeon6148", "2xTX2"});
  perf::PerfOptions fo;
  fo.fusion = true;
  fo.fusion_width = 4;
  for (const auto& [name, c] : suite) {
    std::vector<Cell> row{name};
    for (const auto& m : machines)
      row.push_back(perf::simulate_circuit(c, m, {}, fo).total_seconds);
    tf.add_row(std::move(row));
  }
  tf.print(std::cout);

  // Host-measured small instances: real end-to-end runs.
  {
    const unsigned hn = 18;
    const std::vector<std::pair<std::string, qc::Circuit>> small = {
        {"qft", qc::qft(hn)},
        {"ghz", qc::ghz(hn)},
        {"qv_d10", qc::random_quantum_volume(hn, 10, 11)},
    };
    Table th("Host measured (seconds), n=18", {"circuit", "plain", "fused4"});
    for (const auto& [name, c] : small) {
      sv::Simulator<double> plain;
      sv::SimulatorOptions fopts;
      fopts.fusion = true;
      fopts.fusion_width = 4;
      sv::Simulator<double> fused(fopts);
      Timer t0;
      plain.run(c);
      const double tp = t0.seconds();
      Timer t1;
      fused.run(c);
      const double tfused = t1.seconds();
      th.add_row({name, tp, tfused});
    }
    th.print(std::cout);
  }
  return 0;
}
