// Figure 6 (reconstructed): multi-node weak scaling over Tofu-D.
//
// Weak scaling with a fixed 2^24 local partition per node: at 2^d nodes the
// register has 24+d qubits. A QFT workload (every qubit touched repeatedly)
// is planned under the naive pair-exchange scheduler and the Belady qubit-
// remapping scheduler; the figure reports compute/comm split and the
// parallel efficiency of each.
#include "bench_util.hpp"

#include "dist/dist_sim.hpp"
#include "perf/perf_simulator.hpp"
#include "qc/library.hpp"

using namespace svsim;

namespace {

void weak_scaling(bench::BenchContext& ctx, const dist::InterconnectSpec& net,
                  unsigned max_d) {
  const auto m = machine::MachineSpec::a64fx();
  const unsigned local = 24;
  Table t("Weak scaling, QFT, 2^24 amplitudes per node (" + net.name + ")",
          {"nodes", "n", "sched", "exchanges", "GB/node", "compute_s",
           "comm_s", "total_s", "comm_share"});
  for (unsigned d = 0; d <= max_d; d += 3) {
    const unsigned n = local + d;
    const qc::Circuit c = qc::qft(n);
    if (d == 0) {
      const auto r = perf::simulate_circuit(c, m, {});
      t.add_row({std::int64_t{1}, static_cast<std::int64_t>(n),
                 std::string("-"), std::int64_t{0}, 0.0, r.total_seconds, 0.0,
                 r.total_seconds, 0.0});
      ctx.model(net.name + ".nodes1.total_s", r.total_seconds, "s", m.name);
      continue;
    }
    for (auto sched :
         {dist::CommScheduler::Naive, dist::CommScheduler::Remap}) {
      const auto plan = dist::plan_distribution(c, d, sched);
      const auto dt = dist::time_plan(plan, m, {}, net);
      t.add_row({static_cast<std::int64_t>(plan.num_nodes()),
                 static_cast<std::int64_t>(n),
                 std::string(dist::scheduler_name(sched)),
                 static_cast<std::int64_t>(dt.num_exchanges),
                 dt.exchange_bytes * 1e-9, dt.compute_seconds,
                 dt.comm_seconds, dt.total_seconds,
                 dt.comm_seconds / dt.total_seconds});
      ctx.model(bench::sub(net.name + ".nodes", plan.num_nodes()) + "." +
                    dist::scheduler_name(sched) + ".total_s",
                dt.total_seconds, "s", m.name);
    }
  }
  ctx.table(t);
}

}  // namespace

SVSIM_BENCH(fig6_distributed, "Fig. 6", "distributed weak scaling (model)") {
  const unsigned max_d = ctx.smoke() ? 6 : 9;
  weak_scaling(ctx, dist::InterconnectSpec::tofu_d(), max_d);
  weak_scaling(ctx, dist::InterconnectSpec::infiniband_edr(), max_d);

  // Straggler propagation: the event-driven simulator's contribution.
  {
    const auto m = machine::MachineSpec::a64fx();
    const auto net = dist::InterconnectSpec::tofu_d();
    const qc::Circuit c = qc::qft(22);
    const auto plan = dist::plan_distribution(c, 4, dist::CommScheduler::Naive);
    Table t("Straggler propagation (16 nodes, one slow node, QFT(22))",
            {"slowdown", "makespan_ms", "vs_clean"});
    const double clean = dist::event_driven_makespan(plan, m, {}, net);
    for (double slow : {1.0, 1.5, 2.0, 4.0}) {
      dist::StragglerConfig s;
      s.node = 3;
      s.slowdown = slow;
      const double ms = dist::event_driven_makespan(plan, m, {}, net, s);
      t.add_row({slow, ms * 1e3, ms / clean});
      ctx.model(bench::sub("straggler.x", static_cast<unsigned>(slow * 10)) +
                    ".vs_clean",
                ms / clean, "ratio", m.name);
    }
    ctx.table(t);
  }
}
