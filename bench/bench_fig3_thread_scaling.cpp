// Figure 3 (reconstructed): thread scaling and CMG affinity on A64FX.
//
// A memory-bound H-gate sweep (n=28) modeled for 1..48 threads under
// compact vs. scatter placement. The expected shape: near-linear up to the
// per-CMG saturation point (~6 cores compact), scatter reaching all four
// HBM stacks much earlier, both converging at full occupancy. A small
// register (n=16) shows the fork-join overhead eating the scaling instead.
#include "bench_util.hpp"

#include "perf/perf_simulator.hpp"

using namespace svsim;

namespace {

void scaling_table(bench::BenchContext& ctx, unsigned n, const char* title) {
  const auto m = machine::MachineSpec::a64fx();
  Table t(title, {"threads", "compact_us", "scatter_us", "compact_speedup",
                  "scatter_speedup"});
  double base = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 6u, 8u, 12u, 16u, 24u, 32u, 48u}) {
    machine::ExecConfig compact;
    compact.threads = threads;
    compact.affinity = machine::Affinity::Compact;
    machine::ExecConfig scatter = compact;
    scatter.affinity = machine::Affinity::Scatter;
    const double tc = perf::time_gate(qc::Gate::h(n - 2), n, m, compact).seconds;
    const double ts = perf::time_gate(qc::Gate::h(n - 2), n, m, scatter).seconds;
    if (threads == 1) base = tc;
    t.add_row({static_cast<std::int64_t>(threads), tc * 1e6, ts * 1e6,
               base / tc, base / ts});
    if (threads == 1 || threads == 12 || threads == 48) {
      const std::string prefix =
          bench::sub(bench::sub("a64fx.n", n) + ".th", threads);
      ctx.model(prefix + ".compact.s", tc, "s", m.name);
      ctx.model(prefix + ".scatter.s", ts, "s", m.name);
    }
  }
  ctx.table(t);
}

}  // namespace

SVSIM_BENCH(fig3_thread_scaling, "Fig. 3",
            "thread scaling and CMG affinity") {
  scaling_table(ctx, 28, "A64FX model, n=28 (HBM-bound): compact vs. scatter");
  scaling_table(ctx, 16, "A64FX model, n=16 (cache-resident, overhead-limited)");

  // Host measurement: whatever parallelism this machine has.
  {
    const unsigned n = ctx.smoke() ? 16 : 20;
    const unsigned max_threads = ThreadPool::global().num_threads();
    Table t("Host measured, n=" + std::to_string(n),
            {"threads", "us/gate", "speedup"});
    double base = 0.0;
    for (unsigned threads = 1; threads <= max_threads; threads *= 2) {
      if (ctx.smoke() && threads != 1 && threads * 2 <= max_threads)
        continue;  // smoke: endpoints only
      ThreadPool pool(threads);
      sv::StateVector<double> state(n, &pool);
      bench::spread_amplitudes(state);
      const qc::Gate gate = qc::Gate::h(n - 2);
      const auto st = ctx.measure(
          bench::sub("host.h.th", threads),
          [&] { sv::apply_gate(state, gate); });
      if (threads == 1 || base == 0.0) base = st.median;
      t.add_row({static_cast<std::int64_t>(threads), st.median * 1e6,
                 base / st.median});
    }
    ctx.table(t);
  }
}
