// Table 5 (extension): stabilizer baseline vs. state-vector simulation on
// Clifford workloads.
//
// The CHP tableau simulates Clifford circuits in O(poly n) while the state
// vector pays O(2^n) memory and time — the classic crossover that motivates
// specialized baselines. Both backends are run on identical GHZ and random
// Clifford circuits on the host; the stabilizer column keeps going far past
// the state-vector memory wall (the SV column stops at the host's limit).
#include "bench_util.hpp"

#include "common/rng.hpp"
#include "qc/library.hpp"
#include "stab/stabilizer.hpp"

using namespace svsim;

namespace {

qc::Circuit random_clifford(unsigned n, std::size_t length,
                            std::uint64_t seed) {
  Xoshiro256 rng(seed);
  qc::Circuit c(n);
  for (std::size_t i = 0; i < length; ++i) {
    const auto q = static_cast<unsigned>(rng.uniform_int(n));
    auto p = static_cast<unsigned>(rng.uniform_int(n - 1));
    if (p >= q) ++p;
    switch (rng.uniform_int(5)) {
      case 0: c.h(q); break;
      case 1: c.s(q); break;
      case 2: c.x(q); break;
      case 3: c.cx(q, p); break;
      case 4: c.cz(q, p); break;
    }
  }
  return c;
}

}  // namespace

SVSIM_BENCH(tab5_clifford_baseline, "Tab. 5",
            "stabilizer baseline vs. state vector (host measured)") {
  {
    const unsigned sv_cap = ctx.smoke() ? 14 : 18;
    const std::vector<unsigned> sizes =
        ctx.smoke() ? std::vector<unsigned>{8u, 14u}
                    : std::vector<unsigned>{8u, 12u, 16u, 18u, 20u, 22u};
    Table t("Random Clifford circuit, 20n gates",
            {"n", "stabilizer_ms", "state_vector_ms", "sv/stab"});
    for (unsigned n : sizes) {
      const qc::Circuit c = random_clifford(n, 20ull * n, 7);
      const auto t_stab = ctx.measure(bench::sub("stab.n", n), [&] {
        stab::StabilizerState s = stab::run_clifford(c);
        (void)s;
      });
      double sv_ms = -1.0, ratio = -1.0;
      if (n <= sv_cap) {
        BenchContext::MeasureOpts mo;
        mo.max_seconds = 1.0;
        const auto t_sv = ctx.measure(bench::sub("sv.n", n),
                                      [&] {
                                        sv::Simulator<double> sim;
                                        sim.run(c);
                                      },
                                      mo);
        sv_ms = t_sv.median * 1e3;
        ratio = t_sv.median / t_stab.median;
      }
      t.add_row({static_cast<std::int64_t>(n), t_stab.median * 1e3, sv_ms,
                 ratio});
    }
    ctx.table(t);
  }

  {
    const std::vector<unsigned> sizes =
        ctx.smoke() ? std::vector<unsigned>{64u, 256u}
                    : std::vector<unsigned>{64u, 128u, 256u, 512u, 1024u};
    Table t("Stabilizer-only scale (GHZ ladder + measurement)",
            {"n", "build_ms", "measure_all_ms"});
    for (unsigned n : sizes) {
      const auto build = ctx.measure(bench::sub("ghz.build.n", n), [&] {
        stab::StabilizerState s(n);
        s.h(0);
        for (unsigned q = 0; q + 1 < n; ++q) s.cx(q, q + 1);
      });
      // Measurement collapses the state, so each rep rebuilds then measures;
      // the reported number is the delta from the build-only median.
      Xoshiro256 rng(3);
      const auto both = ctx.measure(bench::sub("ghz.measure.n", n), [&] {
        stab::StabilizerState s(n);
        s.h(0);
        for (unsigned q = 0; q + 1 < n; ++q) s.cx(q, q + 1);
        for (unsigned q = 0; q < n; ++q) s.measure(q, rng);
      });
      t.add_row({static_cast<std::int64_t>(n), build.median * 1e3,
                 (both.median - build.median) * 1e3});
    }
    ctx.table(t);
  }

  {
    // Cross-check column: expectations agree exactly where both run.
    // Deterministic, so recorded as "value" — a nonzero baseline delta here
    // is a correctness bug, not noise.
    Table t("Cross-validation on random Clifford circuits (n=8)",
            {"seed", "paulis_checked", "max_disagreement"});
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      const qc::Circuit c = random_clifford(8, 120, seed);
      const auto stab_state = stab::run_clifford(c);
      sv::Simulator<double> sim;
      const auto svec = sim.run(c);
      Xoshiro256 prng(seed + 50);
      double worst = 0.0;
      const int checks = 40;
      for (int i = 0; i < checks; ++i) {
        const qc::PauliString p(8, prng.uniform_int(256),
                                prng.uniform_int(256));
        worst = std::max(worst, std::abs(svec.expectation(p) -
                                         stab_state.expectation(p)));
      }
      t.add_row({static_cast<std::int64_t>(seed), std::int64_t{checks},
                 worst});
      obs::bench::BenchRecord r;
      r.id = bench::sub("crosscheck.seed", seed) + ".max_disagreement";
      r.kind = "value";
      r.unit = "abs";
      r.value = worst;
      ctx.record(std::move(r));
    }
    ctx.table(t);
  }
}
