// Table 5 (extension): stabilizer baseline vs. state-vector simulation on
// Clifford workloads.
//
// The CHP tableau simulates Clifford circuits in O(poly n) while the state
// vector pays O(2^n) memory and time — the classic crossover that motivates
// specialized baselines. Both backends are run on identical GHZ and random
// Clifford circuits on the host; the stabilizer column keeps going far past
// the state-vector memory wall (the SV column stops at the host's limit).
#include "bench_util.hpp"

#include "common/rng.hpp"
#include "qc/library.hpp"
#include "stab/stabilizer.hpp"

using namespace svsim;

namespace {

qc::Circuit random_clifford(unsigned n, std::size_t length,
                            std::uint64_t seed) {
  Xoshiro256 rng(seed);
  qc::Circuit c(n);
  for (std::size_t i = 0; i < length; ++i) {
    const auto q = static_cast<unsigned>(rng.uniform_int(n));
    auto p = static_cast<unsigned>(rng.uniform_int(n - 1));
    if (p >= q) ++p;
    switch (rng.uniform_int(5)) {
      case 0: c.h(q); break;
      case 1: c.s(q); break;
      case 2: c.x(q); break;
      case 3: c.cx(q, p); break;
      case 4: c.cz(q, p); break;
    }
  }
  return c;
}

}  // namespace

int main() {
  bench::print_header("Tab. 5",
                      "stabilizer baseline vs. state vector (host measured)");

  {
    Table t("Random Clifford circuit, 20n gates",
            {"n", "stabilizer_ms", "state_vector_ms", "sv/stab"});
    for (unsigned n : {8u, 12u, 16u, 18u, 20u, 22u}) {
      const qc::Circuit c = random_clifford(n, 20ull * n, 7);
      Timer ts;
      stab::StabilizerState stab_state = stab::run_clifford(c);
      const double t_stab = ts.seconds();
      double t_sv = -1.0;
      if (n <= 22) {
        sv::Simulator<double> sim;
        Timer tv;
        sim.run(c);
        t_sv = tv.seconds();
      }
      t.add_row({static_cast<std::int64_t>(n), t_stab * 1e3, t_sv * 1e3,
                 t_sv / t_stab});
    }
    t.print(std::cout);
  }

  {
    Table t("Stabilizer-only scale (GHZ ladder + measurement)",
            {"n", "build_ms", "measure_all_ms"});
    Xoshiro256 rng(3);
    for (unsigned n : {64u, 128u, 256u, 512u, 1024u}) {
      Timer tb;
      stab::StabilizerState s(n);
      s.h(0);
      for (unsigned q = 0; q + 1 < n; ++q) s.cx(q, q + 1);
      const double build = tb.seconds();
      Timer tm;
      for (unsigned q = 0; q < n; ++q) s.measure(q, rng);
      t.add_row({static_cast<std::int64_t>(n), build * 1e3,
                 tm.seconds() * 1e3});
    }
    t.print(std::cout);
  }

  {
    // Cross-check column: expectations agree exactly where both run.
    Table t("Cross-validation on random Clifford circuits (n=8)",
            {"seed", "paulis_checked", "max_disagreement"});
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      const qc::Circuit c = random_clifford(8, 120, seed);
      const auto stab_state = stab::run_clifford(c);
      sv::Simulator<double> sim;
      const auto svec = sim.run(c);
      Xoshiro256 prng(seed + 50);
      double worst = 0.0;
      const int checks = 40;
      for (int i = 0; i < checks; ++i) {
        const qc::PauliString p(8, prng.uniform_int(256),
                                prng.uniform_int(256));
        worst = std::max(worst,
                         std::abs(svec.expectation(p) -
                                  stab_state.expectation(p)));
      }
      t.add_row({static_cast<std::int64_t>(seed), std::int64_t{checks},
                 worst});
    }
    t.print(std::cout);
  }
  return 0;
}
