file(REMOVE_RECURSE
  "CMakeFiles/svsim_common.dir/table.cpp.o"
  "CMakeFiles/svsim_common.dir/table.cpp.o.d"
  "CMakeFiles/svsim_common.dir/threading.cpp.o"
  "CMakeFiles/svsim_common.dir/threading.cpp.o.d"
  "libsvsim_common.a"
  "libsvsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
