# Empty dependencies file for svsim_common.
# This may be replaced when dependencies are built.
