file(REMOVE_RECURSE
  "libsvsim_common.a"
)
