file(REMOVE_RECURSE
  "libsvsim_dm.a"
)
