
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dm/density_matrix.cpp" "src/dm/CMakeFiles/svsim_dm.dir/density_matrix.cpp.o" "gcc" "src/dm/CMakeFiles/svsim_dm.dir/density_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/svsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/qc/CMakeFiles/svsim_qc.dir/DependInfo.cmake"
  "/root/repo/build/src/sv/CMakeFiles/svsim_sv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
