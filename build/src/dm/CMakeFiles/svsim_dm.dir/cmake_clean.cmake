file(REMOVE_RECURSE
  "CMakeFiles/svsim_dm.dir/density_matrix.cpp.o"
  "CMakeFiles/svsim_dm.dir/density_matrix.cpp.o.d"
  "libsvsim_dm.a"
  "libsvsim_dm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_dm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
