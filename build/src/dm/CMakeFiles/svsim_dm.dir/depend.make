# Empty dependencies file for svsim_dm.
# This may be replaced when dependencies are built.
