file(REMOVE_RECURSE
  "CMakeFiles/svsim_dist.dir/collectives.cpp.o"
  "CMakeFiles/svsim_dist.dir/collectives.cpp.o.d"
  "CMakeFiles/svsim_dist.dir/dist_plan.cpp.o"
  "CMakeFiles/svsim_dist.dir/dist_plan.cpp.o.d"
  "CMakeFiles/svsim_dist.dir/dist_sim.cpp.o"
  "CMakeFiles/svsim_dist.dir/dist_sim.cpp.o.d"
  "CMakeFiles/svsim_dist.dir/interconnect.cpp.o"
  "CMakeFiles/svsim_dist.dir/interconnect.cpp.o.d"
  "libsvsim_dist.a"
  "libsvsim_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
