# Empty dependencies file for svsim_dist.
# This may be replaced when dependencies are built.
