file(REMOVE_RECURSE
  "libsvsim_dist.a"
)
