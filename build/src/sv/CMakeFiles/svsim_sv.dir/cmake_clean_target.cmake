file(REMOVE_RECURSE
  "libsvsim_sv.a"
)
