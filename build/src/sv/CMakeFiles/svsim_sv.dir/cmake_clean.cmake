file(REMOVE_RECURSE
  "CMakeFiles/svsim_sv.dir/estimator.cpp.o"
  "CMakeFiles/svsim_sv.dir/estimator.cpp.o.d"
  "CMakeFiles/svsim_sv.dir/fusion.cpp.o"
  "CMakeFiles/svsim_sv.dir/fusion.cpp.o.d"
  "CMakeFiles/svsim_sv.dir/gradient.cpp.o"
  "CMakeFiles/svsim_sv.dir/gradient.cpp.o.d"
  "CMakeFiles/svsim_sv.dir/io.cpp.o"
  "CMakeFiles/svsim_sv.dir/io.cpp.o.d"
  "CMakeFiles/svsim_sv.dir/mitigation.cpp.o"
  "CMakeFiles/svsim_sv.dir/mitigation.cpp.o.d"
  "CMakeFiles/svsim_sv.dir/noise.cpp.o"
  "CMakeFiles/svsim_sv.dir/noise.cpp.o.d"
  "CMakeFiles/svsim_sv.dir/simulator.cpp.o"
  "CMakeFiles/svsim_sv.dir/simulator.cpp.o.d"
  "CMakeFiles/svsim_sv.dir/state_vector.cpp.o"
  "CMakeFiles/svsim_sv.dir/state_vector.cpp.o.d"
  "libsvsim_sv.a"
  "libsvsim_sv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_sv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
