# Empty dependencies file for svsim_sv.
# This may be replaced when dependencies are built.
