
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sv/estimator.cpp" "src/sv/CMakeFiles/svsim_sv.dir/estimator.cpp.o" "gcc" "src/sv/CMakeFiles/svsim_sv.dir/estimator.cpp.o.d"
  "/root/repo/src/sv/fusion.cpp" "src/sv/CMakeFiles/svsim_sv.dir/fusion.cpp.o" "gcc" "src/sv/CMakeFiles/svsim_sv.dir/fusion.cpp.o.d"
  "/root/repo/src/sv/gradient.cpp" "src/sv/CMakeFiles/svsim_sv.dir/gradient.cpp.o" "gcc" "src/sv/CMakeFiles/svsim_sv.dir/gradient.cpp.o.d"
  "/root/repo/src/sv/io.cpp" "src/sv/CMakeFiles/svsim_sv.dir/io.cpp.o" "gcc" "src/sv/CMakeFiles/svsim_sv.dir/io.cpp.o.d"
  "/root/repo/src/sv/mitigation.cpp" "src/sv/CMakeFiles/svsim_sv.dir/mitigation.cpp.o" "gcc" "src/sv/CMakeFiles/svsim_sv.dir/mitigation.cpp.o.d"
  "/root/repo/src/sv/noise.cpp" "src/sv/CMakeFiles/svsim_sv.dir/noise.cpp.o" "gcc" "src/sv/CMakeFiles/svsim_sv.dir/noise.cpp.o.d"
  "/root/repo/src/sv/simulator.cpp" "src/sv/CMakeFiles/svsim_sv.dir/simulator.cpp.o" "gcc" "src/sv/CMakeFiles/svsim_sv.dir/simulator.cpp.o.d"
  "/root/repo/src/sv/state_vector.cpp" "src/sv/CMakeFiles/svsim_sv.dir/state_vector.cpp.o" "gcc" "src/sv/CMakeFiles/svsim_sv.dir/state_vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/svsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/qc/CMakeFiles/svsim_qc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
