# Empty dependencies file for svsim_stab.
# This may be replaced when dependencies are built.
