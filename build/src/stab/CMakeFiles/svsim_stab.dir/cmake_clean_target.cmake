file(REMOVE_RECURSE
  "libsvsim_stab.a"
)
