
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stab/stabilizer.cpp" "src/stab/CMakeFiles/svsim_stab.dir/stabilizer.cpp.o" "gcc" "src/stab/CMakeFiles/svsim_stab.dir/stabilizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/svsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/qc/CMakeFiles/svsim_qc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
