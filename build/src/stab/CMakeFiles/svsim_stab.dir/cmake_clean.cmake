file(REMOVE_RECURSE
  "CMakeFiles/svsim_stab.dir/stabilizer.cpp.o"
  "CMakeFiles/svsim_stab.dir/stabilizer.cpp.o.d"
  "libsvsim_stab.a"
  "libsvsim_stab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_stab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
