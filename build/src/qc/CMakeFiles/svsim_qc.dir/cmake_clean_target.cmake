file(REMOVE_RECURSE
  "libsvsim_qc.a"
)
