
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qc/circuit.cpp" "src/qc/CMakeFiles/svsim_qc.dir/circuit.cpp.o" "gcc" "src/qc/CMakeFiles/svsim_qc.dir/circuit.cpp.o.d"
  "/root/repo/src/qc/dense.cpp" "src/qc/CMakeFiles/svsim_qc.dir/dense.cpp.o" "gcc" "src/qc/CMakeFiles/svsim_qc.dir/dense.cpp.o.d"
  "/root/repo/src/qc/gate.cpp" "src/qc/CMakeFiles/svsim_qc.dir/gate.cpp.o" "gcc" "src/qc/CMakeFiles/svsim_qc.dir/gate.cpp.o.d"
  "/root/repo/src/qc/grouping.cpp" "src/qc/CMakeFiles/svsim_qc.dir/grouping.cpp.o" "gcc" "src/qc/CMakeFiles/svsim_qc.dir/grouping.cpp.o.d"
  "/root/repo/src/qc/library.cpp" "src/qc/CMakeFiles/svsim_qc.dir/library.cpp.o" "gcc" "src/qc/CMakeFiles/svsim_qc.dir/library.cpp.o.d"
  "/root/repo/src/qc/matrix.cpp" "src/qc/CMakeFiles/svsim_qc.dir/matrix.cpp.o" "gcc" "src/qc/CMakeFiles/svsim_qc.dir/matrix.cpp.o.d"
  "/root/repo/src/qc/pauli.cpp" "src/qc/CMakeFiles/svsim_qc.dir/pauli.cpp.o" "gcc" "src/qc/CMakeFiles/svsim_qc.dir/pauli.cpp.o.d"
  "/root/repo/src/qc/qasm.cpp" "src/qc/CMakeFiles/svsim_qc.dir/qasm.cpp.o" "gcc" "src/qc/CMakeFiles/svsim_qc.dir/qasm.cpp.o.d"
  "/root/repo/src/qc/routing.cpp" "src/qc/CMakeFiles/svsim_qc.dir/routing.cpp.o" "gcc" "src/qc/CMakeFiles/svsim_qc.dir/routing.cpp.o.d"
  "/root/repo/src/qc/transpile.cpp" "src/qc/CMakeFiles/svsim_qc.dir/transpile.cpp.o" "gcc" "src/qc/CMakeFiles/svsim_qc.dir/transpile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/svsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
