# Empty dependencies file for svsim_qc.
# This may be replaced when dependencies are built.
