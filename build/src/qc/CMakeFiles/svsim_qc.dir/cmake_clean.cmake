file(REMOVE_RECURSE
  "CMakeFiles/svsim_qc.dir/circuit.cpp.o"
  "CMakeFiles/svsim_qc.dir/circuit.cpp.o.d"
  "CMakeFiles/svsim_qc.dir/dense.cpp.o"
  "CMakeFiles/svsim_qc.dir/dense.cpp.o.d"
  "CMakeFiles/svsim_qc.dir/gate.cpp.o"
  "CMakeFiles/svsim_qc.dir/gate.cpp.o.d"
  "CMakeFiles/svsim_qc.dir/grouping.cpp.o"
  "CMakeFiles/svsim_qc.dir/grouping.cpp.o.d"
  "CMakeFiles/svsim_qc.dir/library.cpp.o"
  "CMakeFiles/svsim_qc.dir/library.cpp.o.d"
  "CMakeFiles/svsim_qc.dir/matrix.cpp.o"
  "CMakeFiles/svsim_qc.dir/matrix.cpp.o.d"
  "CMakeFiles/svsim_qc.dir/pauli.cpp.o"
  "CMakeFiles/svsim_qc.dir/pauli.cpp.o.d"
  "CMakeFiles/svsim_qc.dir/qasm.cpp.o"
  "CMakeFiles/svsim_qc.dir/qasm.cpp.o.d"
  "CMakeFiles/svsim_qc.dir/routing.cpp.o"
  "CMakeFiles/svsim_qc.dir/routing.cpp.o.d"
  "CMakeFiles/svsim_qc.dir/transpile.cpp.o"
  "CMakeFiles/svsim_qc.dir/transpile.cpp.o.d"
  "libsvsim_qc.a"
  "libsvsim_qc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_qc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
