# Empty compiler generated dependencies file for svsim_machine.
# This may be replaced when dependencies are built.
