
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/bandwidth_model.cpp" "src/machine/CMakeFiles/svsim_machine.dir/bandwidth_model.cpp.o" "gcc" "src/machine/CMakeFiles/svsim_machine.dir/bandwidth_model.cpp.o.d"
  "/root/repo/src/machine/exec_config.cpp" "src/machine/CMakeFiles/svsim_machine.dir/exec_config.cpp.o" "gcc" "src/machine/CMakeFiles/svsim_machine.dir/exec_config.cpp.o.d"
  "/root/repo/src/machine/machine_spec.cpp" "src/machine/CMakeFiles/svsim_machine.dir/machine_spec.cpp.o" "gcc" "src/machine/CMakeFiles/svsim_machine.dir/machine_spec.cpp.o.d"
  "/root/repo/src/machine/roofline.cpp" "src/machine/CMakeFiles/svsim_machine.dir/roofline.cpp.o" "gcc" "src/machine/CMakeFiles/svsim_machine.dir/roofline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/svsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
