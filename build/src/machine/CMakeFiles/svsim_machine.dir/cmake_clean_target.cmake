file(REMOVE_RECURSE
  "libsvsim_machine.a"
)
