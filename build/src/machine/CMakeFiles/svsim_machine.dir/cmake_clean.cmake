file(REMOVE_RECURSE
  "CMakeFiles/svsim_machine.dir/bandwidth_model.cpp.o"
  "CMakeFiles/svsim_machine.dir/bandwidth_model.cpp.o.d"
  "CMakeFiles/svsim_machine.dir/exec_config.cpp.o"
  "CMakeFiles/svsim_machine.dir/exec_config.cpp.o.d"
  "CMakeFiles/svsim_machine.dir/machine_spec.cpp.o"
  "CMakeFiles/svsim_machine.dir/machine_spec.cpp.o.d"
  "CMakeFiles/svsim_machine.dir/roofline.cpp.o"
  "CMakeFiles/svsim_machine.dir/roofline.cpp.o.d"
  "libsvsim_machine.a"
  "libsvsim_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
