# Empty dependencies file for svsim_perf.
# This may be replaced when dependencies are built.
