file(REMOVE_RECURSE
  "CMakeFiles/svsim_perf.dir/kernel_model.cpp.o"
  "CMakeFiles/svsim_perf.dir/kernel_model.cpp.o.d"
  "CMakeFiles/svsim_perf.dir/perf_simulator.cpp.o"
  "CMakeFiles/svsim_perf.dir/perf_simulator.cpp.o.d"
  "CMakeFiles/svsim_perf.dir/power_model.cpp.o"
  "CMakeFiles/svsim_perf.dir/power_model.cpp.o.d"
  "CMakeFiles/svsim_perf.dir/report.cpp.o"
  "CMakeFiles/svsim_perf.dir/report.cpp.o.d"
  "libsvsim_perf.a"
  "libsvsim_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
