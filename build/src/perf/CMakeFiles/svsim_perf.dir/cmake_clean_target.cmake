file(REMOVE_RECURSE
  "libsvsim_perf.a"
)
