
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/kernel_model.cpp" "src/perf/CMakeFiles/svsim_perf.dir/kernel_model.cpp.o" "gcc" "src/perf/CMakeFiles/svsim_perf.dir/kernel_model.cpp.o.d"
  "/root/repo/src/perf/perf_simulator.cpp" "src/perf/CMakeFiles/svsim_perf.dir/perf_simulator.cpp.o" "gcc" "src/perf/CMakeFiles/svsim_perf.dir/perf_simulator.cpp.o.d"
  "/root/repo/src/perf/power_model.cpp" "src/perf/CMakeFiles/svsim_perf.dir/power_model.cpp.o" "gcc" "src/perf/CMakeFiles/svsim_perf.dir/power_model.cpp.o.d"
  "/root/repo/src/perf/report.cpp" "src/perf/CMakeFiles/svsim_perf.dir/report.cpp.o" "gcc" "src/perf/CMakeFiles/svsim_perf.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/svsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/qc/CMakeFiles/svsim_qc.dir/DependInfo.cmake"
  "/root/repo/build/src/sv/CMakeFiles/svsim_sv.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/svsim_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
