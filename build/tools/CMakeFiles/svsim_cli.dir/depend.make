# Empty dependencies file for svsim_cli.
# This may be replaced when dependencies are built.
