file(REMOVE_RECURSE
  "CMakeFiles/svsim_cli.dir/svsim_cli.cpp.o"
  "CMakeFiles/svsim_cli.dir/svsim_cli.cpp.o.d"
  "svsim"
  "svsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
