file(REMOVE_RECURSE
  "CMakeFiles/test_perf_simulator.dir/test_perf_simulator.cpp.o"
  "CMakeFiles/test_perf_simulator.dir/test_perf_simulator.cpp.o.d"
  "test_perf_simulator"
  "test_perf_simulator.pdb"
  "test_perf_simulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
