# Empty compiler generated dependencies file for test_perf_simulator.
# This may be replaced when dependencies are built.
