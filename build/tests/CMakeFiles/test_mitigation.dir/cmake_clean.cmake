file(REMOVE_RECURSE
  "CMakeFiles/test_mitigation.dir/test_mitigation.cpp.o"
  "CMakeFiles/test_mitigation.dir/test_mitigation.cpp.o.d"
  "test_mitigation"
  "test_mitigation.pdb"
  "test_mitigation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
