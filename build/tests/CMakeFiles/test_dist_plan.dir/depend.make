# Empty dependencies file for test_dist_plan.
# This may be replaced when dependencies are built.
