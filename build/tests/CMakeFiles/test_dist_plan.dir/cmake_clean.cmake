file(REMOVE_RECURSE
  "CMakeFiles/test_dist_plan.dir/test_dist_plan.cpp.o"
  "CMakeFiles/test_dist_plan.dir/test_dist_plan.cpp.o.d"
  "test_dist_plan"
  "test_dist_plan.pdb"
  "test_dist_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
