file(REMOVE_RECURSE
  "CMakeFiles/test_gradient.dir/test_gradient.cpp.o"
  "CMakeFiles/test_gradient.dir/test_gradient.cpp.o.d"
  "test_gradient"
  "test_gradient.pdb"
  "test_gradient[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gradient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
