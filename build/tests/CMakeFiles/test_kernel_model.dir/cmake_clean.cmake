file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_model.dir/test_kernel_model.cpp.o"
  "CMakeFiles/test_kernel_model.dir/test_kernel_model.cpp.o.d"
  "test_kernel_model"
  "test_kernel_model.pdb"
  "test_kernel_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
