# Empty compiler generated dependencies file for test_kernel_model.
# This may be replaced when dependencies are built.
