# Empty dependencies file for test_sampling_stats.
# This may be replaced when dependencies are built.
