file(REMOVE_RECURSE
  "CMakeFiles/test_sampling_stats.dir/test_sampling_stats.cpp.o"
  "CMakeFiles/test_sampling_stats.dir/test_sampling_stats.cpp.o.d"
  "test_sampling_stats"
  "test_sampling_stats.pdb"
  "test_sampling_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sampling_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
