file(REMOVE_RECURSE
  "CMakeFiles/test_dist_sim.dir/test_dist_sim.cpp.o"
  "CMakeFiles/test_dist_sim.dir/test_dist_sim.cpp.o.d"
  "test_dist_sim"
  "test_dist_sim.pdb"
  "test_dist_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
