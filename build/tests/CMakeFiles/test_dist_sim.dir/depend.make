# Empty dependencies file for test_dist_sim.
# This may be replaced when dependencies are built.
