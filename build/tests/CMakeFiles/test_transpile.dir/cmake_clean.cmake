file(REMOVE_RECURSE
  "CMakeFiles/test_transpile.dir/test_transpile.cpp.o"
  "CMakeFiles/test_transpile.dir/test_transpile.cpp.o.d"
  "test_transpile"
  "test_transpile.pdb"
  "test_transpile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transpile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
