# Empty dependencies file for test_transpile.
# This may be replaced when dependencies are built.
