file(REMOVE_RECURSE
  "CMakeFiles/test_density_matrix.dir/test_density_matrix.cpp.o"
  "CMakeFiles/test_density_matrix.dir/test_density_matrix.cpp.o.d"
  "test_density_matrix"
  "test_density_matrix.pdb"
  "test_density_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_density_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
