# Empty dependencies file for test_density_matrix.
# This may be replaced when dependencies are built.
