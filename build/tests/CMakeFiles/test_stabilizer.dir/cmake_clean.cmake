file(REMOVE_RECURSE
  "CMakeFiles/test_stabilizer.dir/test_stabilizer.cpp.o"
  "CMakeFiles/test_stabilizer.dir/test_stabilizer.cpp.o.d"
  "test_stabilizer"
  "test_stabilizer.pdb"
  "test_stabilizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stabilizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
