# Empty dependencies file for test_stabilizer.
# This may be replaced when dependencies are built.
