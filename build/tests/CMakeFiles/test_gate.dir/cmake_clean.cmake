file(REMOVE_RECURSE
  "CMakeFiles/test_gate.dir/test_gate.cpp.o"
  "CMakeFiles/test_gate.dir/test_gate.cpp.o.d"
  "test_gate"
  "test_gate.pdb"
  "test_gate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
