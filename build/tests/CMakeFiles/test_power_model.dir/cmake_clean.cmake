file(REMOVE_RECURSE
  "CMakeFiles/test_power_model.dir/test_power_model.cpp.o"
  "CMakeFiles/test_power_model.dir/test_power_model.cpp.o.d"
  "test_power_model"
  "test_power_model.pdb"
  "test_power_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
