# Empty dependencies file for test_power_model.
# This may be replaced when dependencies are built.
