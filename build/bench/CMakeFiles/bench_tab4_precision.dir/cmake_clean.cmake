file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_precision.dir/bench_tab4_precision.cpp.o"
  "CMakeFiles/bench_tab4_precision.dir/bench_tab4_precision.cpp.o.d"
  "bench_tab4_precision"
  "bench_tab4_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
