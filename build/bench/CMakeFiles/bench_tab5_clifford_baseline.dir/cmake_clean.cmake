file(REMOVE_RECURSE
  "CMakeFiles/bench_tab5_clifford_baseline.dir/bench_tab5_clifford_baseline.cpp.o"
  "CMakeFiles/bench_tab5_clifford_baseline.dir/bench_tab5_clifford_baseline.cpp.o.d"
  "bench_tab5_clifford_baseline"
  "bench_tab5_clifford_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_clifford_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
