# Empty compiler generated dependencies file for bench_tab5_clifford_baseline.
# This may be replaced when dependencies are built.
