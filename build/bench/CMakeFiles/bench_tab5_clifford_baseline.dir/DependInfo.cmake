
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_tab5_clifford_baseline.cpp" "bench/CMakeFiles/bench_tab5_clifford_baseline.dir/bench_tab5_clifford_baseline.cpp.o" "gcc" "bench/CMakeFiles/bench_tab5_clifford_baseline.dir/bench_tab5_clifford_baseline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/svsim_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/svsim_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/svsim_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/stab/CMakeFiles/svsim_stab.dir/DependInfo.cmake"
  "/root/repo/build/src/dm/CMakeFiles/svsim_dm.dir/DependInfo.cmake"
  "/root/repo/build/src/sv/CMakeFiles/svsim_sv.dir/DependInfo.cmake"
  "/root/repo/build/src/qc/CMakeFiles/svsim_qc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/svsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
