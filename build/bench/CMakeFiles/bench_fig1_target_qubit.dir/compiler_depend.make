# Empty compiler generated dependencies file for bench_fig1_target_qubit.
# This may be replaced when dependencies are built.
