file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_target_qubit.dir/bench_fig1_target_qubit.cpp.o"
  "CMakeFiles/bench_fig1_target_qubit.dir/bench_fig1_target_qubit.cpp.o.d"
  "bench_fig1_target_qubit"
  "bench_fig1_target_qubit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_target_qubit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
