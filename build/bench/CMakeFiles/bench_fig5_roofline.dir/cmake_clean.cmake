file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_roofline.dir/bench_fig5_roofline.cpp.o"
  "CMakeFiles/bench_fig5_roofline.dir/bench_fig5_roofline.cpp.o.d"
  "bench_fig5_roofline"
  "bench_fig5_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
