# Empty dependencies file for bench_fig5_roofline.
# This may be replaced when dependencies are built.
