file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_design.dir/bench_abl_design.cpp.o"
  "CMakeFiles/bench_abl_design.dir/bench_abl_design.cpp.o.d"
  "bench_abl_design"
  "bench_abl_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
