# Empty dependencies file for bench_abl_design.
# This may be replaced when dependencies are built.
