# Empty dependencies file for bench_fig2_gate_kernels.
# This may be replaced when dependencies are built.
