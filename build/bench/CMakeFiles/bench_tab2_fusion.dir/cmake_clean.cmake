file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_fusion.dir/bench_tab2_fusion.cpp.o"
  "CMakeFiles/bench_tab2_fusion.dir/bench_tab2_fusion.cpp.o.d"
  "bench_tab2_fusion"
  "bench_tab2_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
