# Empty dependencies file for bench_tab2_fusion.
# This may be replaced when dependencies are built.
