file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_distributed.dir/bench_fig6_distributed.cpp.o"
  "CMakeFiles/bench_fig6_distributed.dir/bench_fig6_distributed.cpp.o.d"
  "bench_fig6_distributed"
  "bench_fig6_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
