# Empty dependencies file for bench_fig6_distributed.
# This may be replaced when dependencies are built.
