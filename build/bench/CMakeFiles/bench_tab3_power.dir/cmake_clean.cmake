file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_power.dir/bench_tab3_power.cpp.o"
  "CMakeFiles/bench_tab3_power.dir/bench_tab3_power.cpp.o.d"
  "bench_tab3_power"
  "bench_tab3_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
