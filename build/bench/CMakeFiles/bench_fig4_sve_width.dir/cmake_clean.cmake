file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sve_width.dir/bench_fig4_sve_width.cpp.o"
  "CMakeFiles/bench_fig4_sve_width.dir/bench_fig4_sve_width.cpp.o.d"
  "bench_fig4_sve_width"
  "bench_fig4_sve_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sve_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
