# Empty compiler generated dependencies file for bench_fig4_sve_width.
# This may be replaced when dependencies are built.
