file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_circuits.dir/bench_tab1_circuits.cpp.o"
  "CMakeFiles/bench_tab1_circuits.dir/bench_tab1_circuits.cpp.o.d"
  "bench_tab1_circuits"
  "bench_tab1_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
