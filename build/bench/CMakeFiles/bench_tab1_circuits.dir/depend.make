# Empty dependencies file for bench_tab1_circuits.
# This may be replaced when dependencies are built.
