file(REMOVE_RECURSE
  "CMakeFiles/a64fx_projection.dir/a64fx_projection.cpp.o"
  "CMakeFiles/a64fx_projection.dir/a64fx_projection.cpp.o.d"
  "a64fx_projection"
  "a64fx_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a64fx_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
