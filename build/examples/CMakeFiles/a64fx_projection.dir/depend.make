# Empty dependencies file for a64fx_projection.
# This may be replaced when dependencies are built.
