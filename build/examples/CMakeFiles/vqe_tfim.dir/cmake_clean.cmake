file(REMOVE_RECURSE
  "CMakeFiles/vqe_tfim.dir/vqe_tfim.cpp.o"
  "CMakeFiles/vqe_tfim.dir/vqe_tfim.cpp.o.d"
  "vqe_tfim"
  "vqe_tfim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqe_tfim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
