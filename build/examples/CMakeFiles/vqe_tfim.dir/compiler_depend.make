# Empty compiler generated dependencies file for vqe_tfim.
# This may be replaced when dependencies are built.
