# Empty compiler generated dependencies file for qaoa_maxcut.
# This may be replaced when dependencies are built.
