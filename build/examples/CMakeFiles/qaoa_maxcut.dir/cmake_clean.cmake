file(REMOVE_RECURSE
  "CMakeFiles/qaoa_maxcut.dir/qaoa_maxcut.cpp.o"
  "CMakeFiles/qaoa_maxcut.dir/qaoa_maxcut.cpp.o.d"
  "qaoa_maxcut"
  "qaoa_maxcut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qaoa_maxcut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
