# Empty compiler generated dependencies file for qasm_run.
# This may be replaced when dependencies are built.
