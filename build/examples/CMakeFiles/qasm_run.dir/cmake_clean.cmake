file(REMOVE_RECURSE
  "CMakeFiles/qasm_run.dir/qasm_run.cpp.o"
  "CMakeFiles/qasm_run.dir/qasm_run.cpp.o.d"
  "qasm_run"
  "qasm_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qasm_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
