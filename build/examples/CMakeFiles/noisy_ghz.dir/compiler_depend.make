# Empty compiler generated dependencies file for noisy_ghz.
# This may be replaced when dependencies are built.
