file(REMOVE_RECURSE
  "CMakeFiles/noisy_ghz.dir/noisy_ghz.cpp.o"
  "CMakeFiles/noisy_ghz.dir/noisy_ghz.cpp.o.d"
  "noisy_ghz"
  "noisy_ghz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noisy_ghz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
