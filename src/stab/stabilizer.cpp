#include "stab/stabilizer.hpp"

#include <cmath>
#include <numbers>
#include <sstream>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace svsim::stab {

using qc::Gate;
using qc::GateKind;

namespace {

/// Maps an angle to k with angle ≡ k·π/2 (mod 2π), if such k exists.
std::optional<int> quarter_turns(double angle) {
  const double turns = angle / (std::numbers::pi / 2);
  const double rounded = std::round(turns);
  if (std::abs(turns - rounded) > 1e-9) return std::nullopt;
  int k = static_cast<int>(std::llround(rounded)) % 4;
  if (k < 0) k += 4;
  return k;
}

}  // namespace

StabilizerState::StabilizerState(unsigned num_qubits)
    : n_(num_qubits),
      words_((num_qubits + 63) / 64),
      x_(static_cast<std::size_t>(2) * num_qubits * words_, 0),
      z_(static_cast<std::size_t>(2) * num_qubits * words_, 0),
      r_(static_cast<std::size_t>(2) * num_qubits, false) {
  require(num_qubits >= 1 && num_qubits <= 4096,
          "StabilizerState supports 1..4096 qubits");
  // Destabilizer j = X_j, stabilizer j = Z_j.
  for (unsigned j = 0; j < n_; ++j) {
    set_x(j, j, true);
    set_z(n_ + j, j, true);
  }
}

bool StabilizerState::get_x(unsigned row, unsigned q) const {
  return (x_[static_cast<std::size_t>(row) * words_ + q / 64] >> (q % 64)) & 1u;
}
bool StabilizerState::get_z(unsigned row, unsigned q) const {
  return (z_[static_cast<std::size_t>(row) * words_ + q / 64] >> (q % 64)) & 1u;
}
void StabilizerState::set_x(unsigned row, unsigned q, bool v) {
  auto& w = x_[static_cast<std::size_t>(row) * words_ + q / 64];
  w = v ? (w | (std::uint64_t{1} << (q % 64)))
        : (w & ~(std::uint64_t{1} << (q % 64)));
}
void StabilizerState::set_z(unsigned row, unsigned q, bool v) {
  auto& w = z_[static_cast<std::size_t>(row) * words_ + q / 64];
  w = v ? (w | (std::uint64_t{1} << (q % 64)))
        : (w & ~(std::uint64_t{1} << (q % 64)));
}

int StabilizerState::g_phase(bool x1, bool z1, bool x2, bool z2) {
  if (!x1 && !z1) return 0;
  if (x1 && z1) return static_cast<int>(z2) - static_cast<int>(x2);
  if (x1 && !z1) return z2 ? (x2 ? 1 : -1) : 0;
  /* !x1 && z1 */ return x2 ? (z2 ? -1 : 1) : 0;
}

void StabilizerState::rowsum(unsigned h, unsigned i) {
  int phase = (r_[h] ? 2 : 0) + (r_[i] ? 2 : 0);
  for (unsigned q = 0; q < n_; ++q)
    phase += g_phase(get_x(i, q), get_z(i, q), get_x(h, q), get_z(h, q));
  phase = ((phase % 4) + 4) % 4;
  SVSIM_ASSERT(phase == 0 || phase == 2);
  r_[h] = phase == 2;
  for (unsigned w = 0; w < words_; ++w) {
    x_[static_cast<std::size_t>(h) * words_ + w] ^=
        x_[static_cast<std::size_t>(i) * words_ + w];
    z_[static_cast<std::size_t>(h) * words_ + w] ^=
        z_[static_cast<std::size_t>(i) * words_ + w];
  }
}

void StabilizerState::h(unsigned q) {
  require(q < n_, "stabilizer h: qubit out of range");
  for (unsigned row = 0; row < 2 * n_; ++row) {
    const bool xb = get_x(row, q), zb = get_z(row, q);
    if (xb && zb) r_[row] = !r_[row];
    set_x(row, q, zb);
    set_z(row, q, xb);
  }
}

void StabilizerState::s(unsigned q) {
  require(q < n_, "stabilizer s: qubit out of range");
  for (unsigned row = 0; row < 2 * n_; ++row) {
    const bool xb = get_x(row, q), zb = get_z(row, q);
    if (xb && zb) r_[row] = !r_[row];
    set_z(row, q, zb ^ xb);
  }
}

void StabilizerState::sdg(unsigned q) {
  s(q);
  s(q);
  s(q);
}

void StabilizerState::z(unsigned q) {
  s(q);
  s(q);
}

void StabilizerState::x(unsigned q) {
  require(q < n_, "stabilizer x: qubit out of range");
  for (unsigned row = 0; row < 2 * n_; ++row)
    if (get_z(row, q)) r_[row] = !r_[row];
}

void StabilizerState::y(unsigned q) {
  require(q < n_, "stabilizer y: qubit out of range");
  for (unsigned row = 0; row < 2 * n_; ++row)
    if (get_x(row, q) != get_z(row, q)) r_[row] = !r_[row];
}

void StabilizerState::cx(unsigned c, unsigned t) {
  require(c < n_ && t < n_ && c != t, "stabilizer cx: bad operands");
  for (unsigned row = 0; row < 2 * n_; ++row) {
    const bool xc = get_x(row, c), zc = get_z(row, c);
    const bool xt = get_x(row, t), zt = get_z(row, t);
    if (xc && zt && (xt == zc)) r_[row] = !r_[row];
    set_x(row, t, xt ^ xc);
    set_z(row, c, zc ^ zt);
  }
}

void StabilizerState::cz(unsigned c, unsigned t) {
  h(t);
  cx(c, t);
  h(t);
}

void StabilizerState::cy(unsigned c, unsigned t) {
  sdg(t);
  cx(c, t);
  s(t);
}

void StabilizerState::swap(unsigned a, unsigned b) {
  cx(a, b);
  cx(b, a);
  cx(a, b);
}

bool StabilizerState::is_clifford(qc::GateKind kind) {
  switch (kind) {
    case GateKind::I: case GateKind::X: case GateKind::Y: case GateKind::Z:
    case GateKind::H: case GateKind::S: case GateKind::Sdg:
    case GateKind::SX: case GateKind::SXdg:
    case GateKind::CX: case GateKind::CY: case GateKind::CZ:
    case GateKind::SWAP: case GateKind::ISWAP:
    case GateKind::BARRIER:
    // Parameterized kinds are Clifford only at quarter-turn angles; apply()
    // checks the actual parameter.
    case GateKind::P: case GateKind::RZ: case GateKind::CP:
    case GateKind::RZZ:
      return true;
    default:
      return false;
  }
}

void StabilizerState::apply(const Gate& g) {
  switch (g.kind) {
    case GateKind::I:
    case GateKind::BARRIER:
      return;
    case GateKind::X: x(g.qubits[0]); return;
    case GateKind::Y: y(g.qubits[0]); return;
    case GateKind::Z: z(g.qubits[0]); return;
    case GateKind::H: h(g.qubits[0]); return;
    case GateKind::S: s(g.qubits[0]); return;
    case GateKind::Sdg: sdg(g.qubits[0]); return;
    case GateKind::SX:  // √X = H S H (exactly)
      h(g.qubits[0]); s(g.qubits[0]); h(g.qubits[0]);
      return;
    case GateKind::SXdg:
      h(g.qubits[0]); sdg(g.qubits[0]); h(g.qubits[0]);
      return;
    case GateKind::CX: cx(g.qubits[0], g.qubits[1]); return;
    case GateKind::CY: cy(g.qubits[0], g.qubits[1]); return;
    case GateKind::CZ: cz(g.qubits[0], g.qubits[1]); return;
    case GateKind::SWAP: swap(g.qubits[0], g.qubits[1]); return;
    case GateKind::ISWAP: {
      const unsigned a = g.qubits[0], b = g.qubits[1];
      s(a); s(b); h(a); cx(a, b); cx(b, a); h(b);
      return;
    }
    case GateKind::P:
    case GateKind::RZ: {
      // Global phase is irrelevant for the stabilizer formalism: both map
      // to powers of S at quarter turns.
      const auto k = quarter_turns(g.params[0]);
      require(k.has_value(), "stabilizer: rotation angle is not Clifford");
      for (int i = 0; i < *k; ++i) s(g.qubits[0]);
      return;
    }
    case GateKind::CP: {
      const auto k = quarter_turns(g.params[0]);
      require(k.has_value() && (*k % 2 == 0 || *k == 0),
              "stabilizer: cp angle is not Clifford");
      if (*k == 2) cz(g.qubits[0], g.qubits[1]);
      // k == 0: identity.
      return;
    }
    case GateKind::RZZ: {
      const auto k = quarter_turns(g.params[0]);
      require(k.has_value(), "stabilizer: rzz angle is not Clifford");
      // rzz(θ) = CX · RZ(θ)_t · CX (up to global phase).
      cx(g.qubits[0], g.qubits[1]);
      for (int i = 0; i < *k; ++i) s(g.qubits[1]);
      cx(g.qubits[0], g.qubits[1]);
      return;
    }
    case GateKind::MEASURE:
    case GateKind::RESET:
      throw Error("stabilizer: use measure() for measurement/reset");
    default:
      throw Error(std::string("stabilizer: gate '") + g.name() +
                  "' is not Clifford");
  }
}

void StabilizerState::apply(const qc::Circuit& circuit) {
  require(circuit.num_qubits() <= n_,
          "stabilizer: circuit wider than the register");
  for (const auto& g : circuit.gates()) apply(g);
}

bool StabilizerState::measure(unsigned q, Xoshiro256& rng) {
  require(q < n_, "stabilizer measure: qubit out of range");
  // Random outcome iff some stabilizer generator anticommutes with Z_q.
  unsigned p = 2 * n_;
  for (unsigned row = n_; row < 2 * n_; ++row) {
    if (get_x(row, q)) {
      p = row;
      break;
    }
  }
  if (p < 2 * n_) {
    for (unsigned row = 0; row < 2 * n_; ++row)
      if (row != p && get_x(row, q)) rowsum(row, p);
    // Destabilizer p-n := old stabilizer p; stabilizer p := ±Z_q.
    for (unsigned w = 0; w < words_; ++w) {
      x_[static_cast<std::size_t>(p - n_) * words_ + w] =
          x_[static_cast<std::size_t>(p) * words_ + w];
      z_[static_cast<std::size_t>(p - n_) * words_ + w] =
          z_[static_cast<std::size_t>(p) * words_ + w];
      x_[static_cast<std::size_t>(p) * words_ + w] = 0;
      z_[static_cast<std::size_t>(p) * words_ + w] = 0;
    }
    r_[p - n_] = r_[p];
    const bool outcome = rng.uniform() < 0.5;
    set_z(p, q, true);
    r_[p] = outcome;
    return outcome;
  }
  // Deterministic: accumulate the product of stabilizers selected by the
  // destabilizers that anticommute with Z_q.
  std::vector<std::uint64_t> acc_x(words_, 0), acc_z(words_, 0);
  int phase = 0;  // exponent of i, mod 4
  for (unsigned j = 0; j < n_; ++j) {
    if (!get_x(j, q)) continue;
    const unsigned row = n_ + j;
    if (r_[row]) phase += 2;
    for (unsigned qq = 0; qq < n_; ++qq) {
      const bool ax = (acc_x[qq / 64] >> (qq % 64)) & 1u;
      const bool az = (acc_z[qq / 64] >> (qq % 64)) & 1u;
      phase += g_phase(get_x(row, qq), get_z(row, qq), ax, az);
    }
    for (unsigned w = 0; w < words_; ++w) {
      acc_x[w] ^= x_[static_cast<std::size_t>(row) * words_ + w];
      acc_z[w] ^= z_[static_cast<std::size_t>(row) * words_ + w];
    }
  }
  phase = ((phase % 4) + 4) % 4;
  SVSIM_ASSERT(phase == 0 || phase == 2);
  return phase == 2;
}

std::optional<bool> StabilizerState::deterministic_outcome(unsigned q) const {
  require(q < n_, "stabilizer: qubit out of range");
  for (unsigned row = n_; row < 2 * n_; ++row)
    if (get_x(row, q)) return std::nullopt;
  // Same accumulation as the deterministic branch of measure().
  StabilizerState copy = *this;
  Xoshiro256 unused(0);
  return copy.measure(q, unused);
}

int StabilizerState::expectation(const qc::PauliString& p) const {
  require(p.num_qubits() == n_, "stabilizer expectation: width mismatch");
  auto anticommutes_with_row = [&](unsigned row) {
    unsigned count = 0;
    for (unsigned q = 0; q < n_; ++q) {
      const bool px = test_bit(p.x_mask(), q), pz = test_bit(p.z_mask(), q);
      const bool rx = get_x(row, q), rz = get_z(row, q);
      count += static_cast<unsigned>((px && rz) != (pz && rx));
    }
    return count % 2 == 1;
  };
  for (unsigned j = 0; j < n_; ++j)
    if (anticommutes_with_row(n_ + j)) return 0;

  // ±P is in the stabilizer group: reconstruct it from the generators
  // selected by the anticommuting destabilizers and read off the sign.
  std::vector<std::uint64_t> acc_x(words_, 0), acc_z(words_, 0);
  int phase = 0;
  for (unsigned j = 0; j < n_; ++j) {
    if (!anticommutes_with_row(j)) continue;
    const unsigned row = n_ + j;
    if (r_[row]) phase += 2;
    for (unsigned qq = 0; qq < n_; ++qq) {
      const bool ax = (acc_x[qq / 64] >> (qq % 64)) & 1u;
      const bool az = (acc_z[qq / 64] >> (qq % 64)) & 1u;
      phase += g_phase(get_x(row, qq), get_z(row, qq), ax, az);
    }
    for (unsigned w = 0; w < words_; ++w) {
      acc_x[w] ^= x_[static_cast<std::size_t>(row) * words_ + w];
      acc_z[w] ^= z_[static_cast<std::size_t>(row) * words_ + w];
    }
  }
  // The reconstruction must reproduce P's masks exactly.
  for (unsigned q = 0; q < n_; ++q) {
    const bool ax = (acc_x[q / 64] >> (q % 64)) & 1u;
    const bool az = (acc_z[q / 64] >> (q % 64)) & 1u;
    SVSIM_ASSERT(ax == test_bit(p.x_mask(), q));
    SVSIM_ASSERT(az == test_bit(p.z_mask(), q));
  }
  phase = ((phase % 4) + 4) % 4;
  SVSIM_ASSERT(phase == 0 || phase == 2);
  return phase == 0 ? 1 : -1;
}

std::pair<int, qc::PauliString> StabilizerState::stabilizer(unsigned j) const {
  require(j < n_, "stabilizer index out of range");
  const unsigned row = n_ + j;
  std::uint64_t xm = 0, zm = 0;
  require(n_ <= 64, "stabilizer(): PauliString export limited to 64 qubits");
  for (unsigned q = 0; q < n_; ++q) {
    if (get_x(row, q)) xm |= pow2(q);
    if (get_z(row, q)) zm |= pow2(q);
  }
  return {r_[row] ? -1 : 1, qc::PauliString(n_, xm, zm)};
}

std::string StabilizerState::to_string() const {
  std::ostringstream os;
  for (unsigned j = 0; j < n_; ++j) {
    const unsigned row = n_ + j;
    os << (r_[row] ? '-' : '+');
    for (unsigned q = n_; q-- > 0;) {
      const bool xb = get_x(row, q), zb = get_z(row, q);
      os << (xb && zb ? 'Y' : xb ? 'X' : zb ? 'Z' : 'I');
    }
    os << '\n';
  }
  return os.str();
}

StabilizerState run_clifford(const qc::Circuit& circuit) {
  StabilizerState state(circuit.num_qubits());
  state.apply(circuit);
  return state;
}

}  // namespace svsim::stab
