// Stabilizer (CHP tableau) simulator — the Clifford-circuit baseline.
//
// Aaronson-Gottesman tableau: n destabilizer rows, n stabilizer rows, each a
// signed Pauli over n qubits stored as packed x/z bit vectors. Clifford
// gates are O(n) column updates; measurement is O(n^2). The simulator serves
// two roles in this repository: an independent oracle that cross-validates
// the state-vector kernels on Clifford circuits, and a baseline that handles
// register sizes (hundreds of qubits) the state vector cannot touch.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "qc/circuit.hpp"
#include "qc/pauli.hpp"

namespace svsim::stab {

class StabilizerState {
 public:
  /// |0...0> on n qubits (stabilizers Z_0..Z_{n-1}).
  explicit StabilizerState(unsigned num_qubits);

  unsigned num_qubits() const noexcept { return n_; }

  // ---- native Clifford updates (O(n) each) -------------------------------
  void h(unsigned q);
  void s(unsigned q);
  void sdg(unsigned q);
  void x(unsigned q);
  void y(unsigned q);
  void z(unsigned q);
  void cx(unsigned c, unsigned t);
  void cz(unsigned c, unsigned t);
  void cy(unsigned c, unsigned t);
  void swap(unsigned a, unsigned b);

  /// Applies a circuit gate. Clifford kinds (including SX/SXdg/ISWAP and
  /// CCX-free compositions) are mapped onto the native updates; non-Clifford
  /// gates throw svsim::Error.
  void apply(const qc::Gate& gate);

  /// Applies every gate of a (Clifford, unitary) circuit.
  void apply(const qc::Circuit& circuit);

  /// True if `kind` (with arbitrary parameters) is supported.
  static bool is_clifford(qc::GateKind kind);

  /// Measures qubit q in the computational basis; collapses the tableau.
  bool measure(unsigned q, Xoshiro256& rng);

  /// If the outcome of measuring q is deterministic, returns it without
  /// collapsing; otherwise nullopt (the outcome would be a fair coin).
  std::optional<bool> deterministic_outcome(unsigned q) const;

  /// <P> for a Pauli string: +1 or -1 if ±P stabilizes the state, 0 if the
  /// outcome is equidistributed.
  int expectation(const qc::PauliString& pauli) const;

  /// The j-th stabilizer generator as (sign, PauliString).
  std::pair<int, qc::PauliString> stabilizer(unsigned j) const;

  /// Human-readable tableau ("+XXI / +ZZI / ..." style).
  std::string to_string() const;

 private:
  bool get_x(unsigned row, unsigned q) const;
  bool get_z(unsigned row, unsigned q) const;
  void set_x(unsigned row, unsigned q, bool v);
  void set_z(unsigned row, unsigned q, bool v);
  /// row_h *= row_i with exact phase tracking (CHP "rowsum").
  void rowsum(unsigned h, unsigned i);
  /// Phase exponent contribution of multiplying single-qubit Paulis.
  static int g_phase(bool x1, bool z1, bool x2, bool z2);

  unsigned n_ = 0;
  unsigned words_ = 0;
  // Rows: [0, n) destabilizers, [n, 2n) stabilizers, 2n = scratch.
  std::vector<std::uint64_t> x_;
  std::vector<std::uint64_t> z_;
  std::vector<bool> r_;
};

/// Convenience: runs a Clifford circuit from |0...0> and returns the state.
StabilizerState run_clifford(const qc::Circuit& circuit);

}  // namespace svsim::stab
