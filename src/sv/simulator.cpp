#include "sv/simulator.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "sv/engine.hpp"
#include "sv/kernels.hpp"
#include "sv/plan.hpp"

namespace svsim::sv {

using qc::Gate;
using qc::GateKind;
using qc::cplx;

template <typename T>
void apply_gate(StateVector<T>& state, const Gate& g) {
  std::complex<T>* psi = state.data();
  const unsigned n = state.num_qubits();
  ThreadPool& pool = state.pool();
  for (unsigned q : g.qubits)
    require(q < n, "apply_gate: qubit out of range");

  switch (g.kind) {
    case GateKind::I:
    case GateKind::BARRIER:
      return;
    case GateKind::X:
      apply_x(psi, n, g.qubits[0], pool);
      return;
    case GateKind::Y:
      apply_y(psi, n, g.qubits[0], pool);
      return;
    case GateKind::H:
      apply_h(psi, n, g.qubits[0], pool);
      return;
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::P:
    case GateKind::RZ: {
      const qc::Matrix u = g.matrix();
      apply_diag1(psi, n, g.qubits[0], u(0, 0), u(1, 1), pool);
      return;
    }
    case GateKind::SX:
    case GateKind::SXdg:
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::U:
      apply_matrix1(psi, n, g.qubits[0], g.matrix(), pool);
      return;
    case GateKind::CX:
    case GateKind::CCX:
    case GateKind::MCX:
      apply_mcx(psi, n, g.controls(), g.targets()[0], pool);
      return;
    case GateKind::CZ:
    case GateKind::CP:
    case GateKind::CRZ:
    case GateKind::CCZ:
    case GateKind::MCP: {
      const qc::Matrix u = g.target_matrix();
      apply_controlled_diag1(psi, n, g.controls(), g.targets()[0], u(0, 0),
                             u(1, 1), pool);
      return;
    }
    case GateKind::CY:
    case GateKind::CH:
    case GateKind::CRX:
    case GateKind::CRY:
      apply_controlled_matrix1(psi, n, g.controls(), g.targets()[0],
                               g.target_matrix(), pool);
      return;
    case GateKind::SWAP:
      apply_swap(psi, n, g.qubits[0], g.qubits[1], pool);
      return;
    case GateKind::RZZ: {
      const qc::Matrix u = g.matrix();
      apply_diag2(psi, n, g.qubits[0], g.qubits[1],
                  {u(0, 0), u(1, 1), u(2, 2), u(3, 3)}, pool);
      return;
    }
    case GateKind::ISWAP:
    case GateKind::RXX:
    case GateKind::RYY:
    case GateKind::U2Q:
      apply_matrix2(psi, n, g.qubits[0], g.qubits[1], g.matrix(), pool);
      return;
    case GateKind::CSWAP:
      apply_matrix_k(psi, n, g.qubits, g.matrix(), pool);
      return;
    case GateKind::DIAG:
      apply_diag_k(psi, n, g.qubits, g.diagonal_entries(), pool);
      return;
    case GateKind::UNITARY:
      if (g.num_qubits() == 1) {
        apply_matrix1(psi, n, g.qubits[0], g.matrix_payload(), pool);
      } else if (g.num_qubits() == 2) {
        apply_matrix2(psi, n, g.qubits[0], g.qubits[1], g.matrix_payload(),
                      pool);
      } else {
        apply_matrix_k(psi, n, g.qubits, g.matrix_payload(), pool);
      }
      return;
    case GateKind::MEASURE:
    case GateKind::RESET:
      throw Error(
          "apply_gate: MEASURE/RESET need a Simulator (they are stochastic)");
  }
  throw Error("apply_gate: unhandled gate kind");
}

template <typename T>
Simulator<T>::Simulator(SimulatorOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  SVSIM_ASSERT(options_.pool != nullptr);
}

template <typename T>
const ExecutionContext& Simulator<T>::ctx() const noexcept {
  return options_.context != nullptr ? *options_.context
                                     : ExecutionContext::global();
}

template <typename T>
ThreadPool& Simulator<T>::exec_pool() const noexcept {
  return options_.context != nullptr ? options_.context->pool()
                                     : *options_.pool;
}

template <typename T>
StateVector<T> Simulator<T>::run(const qc::Circuit& circuit) {
  StateVector<T> state(circuit.num_qubits(), &exec_pool());
  run_in_place(state, circuit);
  return state;
}

template <typename T>
void Simulator<T>::run_in_place(StateVector<T>& state,
                                const qc::Circuit& circuit) {
  require(state.num_qubits() == circuit.num_qubits(),
          "run_in_place: state/circuit width mismatch");
  PlanOptions po;
  po.fusion = options_.fusion;
  po.fusion_width = options_.fusion_width;
  // Noise channels must sample after every individual gate, so the blocked
  // path only serves noiseless execution.
  po.blocking = options_.blocking && options_.noise.empty();
  po.block_qubits = options_.block_qubits;
  po.amp_bytes = 2 * sizeof(T);
  po.machine = options_.machine;
  po.metrics = &ctx().metrics();
  run_plan(state, compile_plan(circuit, po));
}

template <typename T>
void Simulator<T>::run_plan(StateVector<T>& state, const ExecutionPlan& plan) {
  require(state.num_qubits() == plan.num_qubits,
          "run_plan: state/plan width mismatch");
  classical_bits_.assign(plan.num_clbits, false);

  // The engine is purely unitary; the stochastic ops and trajectory noise
  // come in through the hooks so measurement order (and thus RNG
  // consumption) is identical across dense, blocked, and distributed plans.
  PlanHooks<T> hooks;
  hooks.measure = [this](StateVector<T>& s, const Gate& g) {
    if (g.kind == GateKind::MEASURE) {
      // Readout error flips only the recorded bit, not the collapse.
      classical_bits_[g.cbit] =
          options_.noise.flip_readout(s.measure(g.qubits[0], rng_), rng_);
    } else {
      s.reset_qubit(g.qubits[0], rng_);
    }
  };
  if (!options_.noise.empty()) {
    hooks.after_gate = [this](StateVector<T>& s, const Gate& g) {
      options_.noise.apply_after(s, g, rng_);
    };
  }

  const EngineStats stats = svsim::sv::run_plan(state, plan, hooks, ctx());

  // One registry flush per run, not per gate: counters stay observable even
  // on hot trajectory loops without per-gate atomics. Handles are resolved
  // from the context's registry on every run — never cached in statics,
  // which would pin the first registry across contexts.
  obs::MetricsRegistry& registry = ctx().metrics();
  registry.counter("sv.runs").increment();
  registry.counter("sv.gates_applied").add(plan.total_gates());
  registry.counter("sv.bytes_streamed").add(stats.bytes_streamed);
  registry.counter("sv.measure_ops").add(stats.measure_ops);
}

namespace {

/// O(1) derived seed for global trajectory t. The Xoshiro256 constructor
/// scrambles its argument through splitmix64 per state word, so a
/// golden-ratio stride is enough to decorrelate streams — unlike
/// Xoshiro256::split(), whose t long-jumps would make seeding a batch of B
/// trajectories O(B^2).
std::uint64_t trajectory_seed(std::uint64_t seed, std::uint64_t traj) {
  return seed + (traj + 1) * 0x9e3779b97f4a7c15ull;
}

}  // namespace

template <typename T>
std::vector<std::vector<bool>> Simulator<T>::run_plan_batch(
    const std::vector<StateVector<T>*>& states, const ExecutionPlan& plan,
    std::uint64_t first_trajectory) {
  if (states.empty()) return {};
  for (const StateVector<T>* s : states)
    require(s != nullptr && s->num_qubits() == plan.num_qubits,
            "run_plan_batch: state/plan width mismatch");

  std::vector<std::vector<bool>> bits(
      states.size(), std::vector<bool>(plan.num_clbits, false));
  // One independent stream per trajectory, keyed by the global index: the
  // batch split is an execution detail, not part of the random experiment.
  std::vector<Xoshiro256> rngs;
  rngs.reserve(states.size());
  for (std::size_t i = 0; i < states.size(); ++i)
    rngs.emplace_back(trajectory_seed(options_.seed, first_trajectory + i));

  BatchHooks<T> hooks;
  hooks.measure = [this, &bits, &rngs](std::size_t traj, StateVector<T>& s,
                                       const Gate& g) {
    if (g.kind == GateKind::MEASURE) {
      bits[traj][g.cbit] = options_.noise.flip_readout(
          s.measure(g.qubits[0], rngs[traj]), rngs[traj]);
    } else {
      s.reset_qubit(g.qubits[0], rngs[traj]);
    }
  };
  if (!options_.noise.empty()) {
    hooks.after_gate = [this, &rngs](std::size_t traj, StateVector<T>& s,
                                     const Gate& g) {
      options_.noise.apply_after(s, g, rngs[traj]);
    };
  }

  const EngineStats stats =
      svsim::sv::run_plan_batch(states, plan, hooks, ctx());

  obs::MetricsRegistry& registry = ctx().metrics();
  registry.counter("sv.runs").add(states.size());
  registry.counter("sv.gates_applied").add(plan.total_gates() * states.size());
  registry.counter("sv.bytes_streamed").add(stats.bytes_streamed);
  registry.counter("sv.measure_ops").add(stats.measure_ops);

  classical_bits_ = bits.back();
  return bits;
}

namespace {

/// True if every MEASURE comes after every non-measure operation.
bool measurements_trailing(const qc::Circuit& circuit) {
  bool seen_measure = false;
  for (const auto& g : circuit.gates()) {
    if (g.kind == GateKind::MEASURE) {
      seen_measure = true;
    } else if (seen_measure && g.kind != GateKind::BARRIER) {
      return false;
    }
  }
  return true;
}

}  // namespace

template <typename T>
std::map<std::uint64_t, std::size_t> Simulator<T>::sample_counts(
    const qc::Circuit& circuit, std::size_t shots) {
  std::map<std::uint64_t, std::size_t> counts;
  const bool has_measure = std::any_of(
      circuit.gates().begin(), circuit.gates().end(),
      [](const Gate& g) { return g.kind == GateKind::MEASURE; });
  const bool has_reset = std::any_of(
      circuit.gates().begin(), circuit.gates().end(),
      [](const Gate& g) { return g.kind == GateKind::RESET; });

  // Gate-level noise forces trajectories; pure readout error does not.
  const bool fast_path = options_.noise.channels().empty() && !has_reset &&
                         (!has_measure || measurements_trailing(circuit));
  if (fast_path) {
    // Strip trailing measures, run once, sample.
    qc::Circuit unitary_part(circuit.num_qubits(), circuit.num_clbits());
    std::vector<std::pair<unsigned, unsigned>> measures;  // (qubit, cbit)
    for (const auto& g : circuit.gates()) {
      if (g.kind == GateKind::MEASURE) {
        measures.emplace_back(g.qubits[0], g.cbit);
      } else if (g.kind != GateKind::BARRIER) {
        unitary_part.append(g);
      }
    }
    StateVector<T> state = run(unitary_part);
    const auto samples = state.sample(shots, rng_);
    const bool readout = options_.noise.has_readout_error();
    for (std::uint64_t basis : samples) {
      std::uint64_t key = 0;
      if (has_measure) {
        for (const auto& [q, c] : measures) {
          bool bit = test_bit(basis, q);
          if (readout) bit = options_.noise.flip_readout(bit, rng_);
          if (bit) key = set_bit(key, c);
        }
      } else {
        key = basis;
      }
      ++counts[key];
    }
    return counts;
  }

  // General path: one trajectory per shot.
  for (std::size_t s = 0; s < shots; ++s) {
    StateVector<T> state = run(circuit);
    std::uint64_t key = 0;
    if (has_measure) {
      for (std::size_t b = 0; b < classical_bits_.size(); ++b)
        if (classical_bits_[b]) key = set_bit(key, static_cast<unsigned>(b));
    } else {
      key = state.sample(1, rng_)[0];
    }
    ++counts[key];
  }
  return counts;
}

template <typename T>
double Simulator<T>::expectation(const qc::Circuit& circuit,
                                 const qc::PauliOperator& op) {
  StateVector<T> state = run(circuit);
  return state.expectation(op);
}

template void apply_gate<float>(StateVector<float>&, const qc::Gate&);
template void apply_gate<double>(StateVector<double>&, const qc::Gate&);
template class Simulator<float>;
template class Simulator<double>;

}  // namespace svsim::sv
