// Gate-application kernels over the raw amplitude array.
//
// Each kernel streams the state once. The 1-qubit iteration is written as
// (block, contiguous-run) loops rather than a per-pair index computation so
// the inner loop is a unit-stride sweep the compiler can vectorize; for a
// target qubit t the contiguous run length is 2^t, which is exactly the
// low-target SIMD-efficiency effect the A64FX performance model captures.
//
// Index conventions match qc::Gate: for a k-qubit kernel, qs[0] is the least
// significant bit of the matrix index.
#pragma once

#include <algorithm>
#include <array>
#include <complex>
#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/threading.hpp"
#include "qc/gate.hpp"
#include "qc/matrix.hpp"

namespace svsim::sv {

namespace detail {

/// Splits the pair-counter space [begin, end) of a 1-qubit kernel on target
/// `t` into contiguous runs: body(i0, len) must process lower indices
/// [i0, i0+len) with partners at +2^t.
template <typename Body>
inline void for_pair_runs(std::uint64_t begin, std::uint64_t end, unsigned t,
                          Body&& body) {
  const std::uint64_t stride = pow2(t);
  std::uint64_t c = begin;
  while (c < end) {
    const std::uint64_t offset = c & (stride - 1);
    const std::uint64_t block = c >> t;
    const std::uint64_t base = (block << (t + 1)) | offset;
    const std::uint64_t run = std::min(end - c, stride - offset);
    body(base, run);
    c += run;
  }
}

/// Converts a qc::Matrix entry to the kernel precision.
template <typename T>
inline std::complex<T> cast_c(const qc::cplx& v) {
  return {static_cast<T>(v.real()), static_cast<T>(v.imag())};
}

}  // namespace detail

// ---- 1-qubit kernels ------------------------------------------------------

/// General 2x2: [a0', a1'] = [[m00 m01],[m10 m11]] [a0, a1].
template <typename T>
void apply_matrix1(std::complex<T>* psi, unsigned n, unsigned t,
                   const qc::Matrix& u, ThreadPool& pool) {
  SVSIM_ASSERT(u.dim() == 2 && t < n);
  const std::complex<T> m00 = detail::cast_c<T>(u(0, 0));
  const std::complex<T> m01 = detail::cast_c<T>(u(0, 1));
  const std::complex<T> m10 = detail::cast_c<T>(u(1, 0));
  const std::complex<T> m11 = detail::cast_c<T>(u(1, 1));
  const std::uint64_t stride = pow2(t);
  pool.parallel_for(pow2(n - 1), [=](unsigned, std::uint64_t b,
                                     std::uint64_t e) {
    detail::for_pair_runs(b, e, t, [&](std::uint64_t base, std::uint64_t run) {
      std::complex<T>* lo = psi + base;
      std::complex<T>* hi = psi + base + stride;
      for (std::uint64_t j = 0; j < run; ++j) {
        const std::complex<T> a0 = lo[j];
        const std::complex<T> a1 = hi[j];
        lo[j] = m00 * a0 + m01 * a1;
        hi[j] = m10 * a0 + m11 * a1;
      }
    });
  });
}

/// Reference variant of apply_matrix1 that computes each pair index with
/// insert_zero_bit instead of run blocking. Same result, but the inner loop
/// has a data-dependent index chain the vectorizer cannot see through —
/// kept as the ablation baseline for the run-blocked design
/// (bench_abl_design quantifies the difference).
template <typename T>
void apply_matrix1_pairwise(std::complex<T>* psi, unsigned n, unsigned t,
                            const qc::Matrix& u, ThreadPool& pool) {
  SVSIM_ASSERT(u.dim() == 2 && t < n);
  const std::complex<T> m00 = detail::cast_c<T>(u(0, 0));
  const std::complex<T> m01 = detail::cast_c<T>(u(0, 1));
  const std::complex<T> m10 = detail::cast_c<T>(u(1, 0));
  const std::complex<T> m11 = detail::cast_c<T>(u(1, 1));
  const std::uint64_t tbit = pow2(t);
  pool.parallel_for(pow2(n - 1), [=](unsigned, std::uint64_t b,
                                     std::uint64_t e) {
    for (std::uint64_t c = b; c < e; ++c) {
      const std::uint64_t i0 = insert_zero_bit(c, t);
      const std::uint64_t i1 = i0 | tbit;
      const std::complex<T> a0 = psi[i0];
      const std::complex<T> a1 = psi[i1];
      psi[i0] = m00 * a0 + m01 * a1;
      psi[i1] = m10 * a0 + m11 * a1;
    }
  });
}

/// Hadamard: fewer multiplies than the general path.
template <typename T>
void apply_h(std::complex<T>* psi, unsigned n, unsigned t, ThreadPool& pool) {
  const T inv_sqrt2 = static_cast<T>(0.70710678118654752440);
  const std::uint64_t stride = pow2(t);
  pool.parallel_for(pow2(n - 1), [=](unsigned, std::uint64_t b,
                                     std::uint64_t e) {
    detail::for_pair_runs(b, e, t, [&](std::uint64_t base, std::uint64_t run) {
      std::complex<T>* lo = psi + base;
      std::complex<T>* hi = psi + base + stride;
      for (std::uint64_t j = 0; j < run; ++j) {
        const std::complex<T> a0 = lo[j];
        const std::complex<T> a1 = hi[j];
        lo[j] = (a0 + a1) * inv_sqrt2;
        hi[j] = (a0 - a1) * inv_sqrt2;
      }
    });
  });
}

/// X: pure swap of pair halves (no arithmetic).
template <typename T>
void apply_x(std::complex<T>* psi, unsigned n, unsigned t, ThreadPool& pool) {
  const std::uint64_t stride = pow2(t);
  pool.parallel_for(pow2(n - 1), [=](unsigned, std::uint64_t b,
                                     std::uint64_t e) {
    detail::for_pair_runs(b, e, t, [&](std::uint64_t base, std::uint64_t run) {
      std::complex<T>* lo = psi + base;
      std::complex<T>* hi = psi + base + stride;
      for (std::uint64_t j = 0; j < run; ++j) std::swap(lo[j], hi[j]);
    });
  });
}

/// Y = [[0,-i],[i,0]]: swap with ±i phases.
template <typename T>
void apply_y(std::complex<T>* psi, unsigned n, unsigned t, ThreadPool& pool) {
  const std::uint64_t stride = pow2(t);
  pool.parallel_for(pow2(n - 1), [=](unsigned, std::uint64_t b,
                                     std::uint64_t e) {
    detail::for_pair_runs(b, e, t, [&](std::uint64_t base, std::uint64_t run) {
      std::complex<T>* lo = psi + base;
      std::complex<T>* hi = psi + base + stride;
      for (std::uint64_t j = 0; j < run; ++j) {
        const std::complex<T> a0 = lo[j];
        const std::complex<T> a1 = hi[j];
        lo[j] = std::complex<T>{a1.imag(), -a1.real()};   // -i * a1
        hi[j] = std::complex<T>{-a0.imag(), a0.real()};   //  i * a0
      }
    });
  });
}

/// Diagonal 1-qubit gate diag(d0, d1). When d0 == 1 (Z, S, T, P) only the
/// |1> half of each pair is touched — half the memory traffic, which the
/// performance model accounts for.
template <typename T>
void apply_diag1(std::complex<T>* psi, unsigned n, unsigned t, qc::cplx d0,
                 qc::cplx d1, ThreadPool& pool) {
  const std::complex<T> f0 = detail::cast_c<T>(d0);
  const std::complex<T> f1 = detail::cast_c<T>(d1);
  const std::uint64_t stride = pow2(t);
  const bool skip_lower = (d0 == qc::cplx{1.0, 0.0});
  pool.parallel_for(pow2(n - 1), [=](unsigned, std::uint64_t b,
                                     std::uint64_t e) {
    detail::for_pair_runs(b, e, t, [&](std::uint64_t base, std::uint64_t run) {
      std::complex<T>* lo = psi + base;
      std::complex<T>* hi = psi + base + stride;
      if (skip_lower) {
        for (std::uint64_t j = 0; j < run; ++j) hi[j] *= f1;
      } else {
        for (std::uint64_t j = 0; j < run; ++j) {
          lo[j] *= f0;
          hi[j] *= f1;
        }
      }
    });
  });
}

// ---- controlled 1-qubit kernels --------------------------------------------

/// General 2x2 on `t`, applied only where every control bit is 1.
template <typename T>
void apply_controlled_matrix1(std::complex<T>* psi, unsigned n,
                              const std::vector<unsigned>& controls,
                              unsigned t, const qc::Matrix& u,
                              ThreadPool& pool) {
  SVSIM_ASSERT(u.dim() == 2 && t < n);
  if (controls.empty()) {
    apply_matrix1(psi, n, t, u, pool);
    return;
  }
  const std::complex<T> m00 = detail::cast_c<T>(u(0, 0));
  const std::complex<T> m01 = detail::cast_c<T>(u(0, 1));
  const std::complex<T> m10 = detail::cast_c<T>(u(1, 0));
  const std::complex<T> m11 = detail::cast_c<T>(u(1, 1));

  std::vector<unsigned> positions = controls;
  positions.push_back(t);
  std::sort(positions.begin(), positions.end());
  std::uint64_t cmask = 0;
  for (unsigned c : controls) cmask |= pow2(c);
  const std::uint64_t tbit = pow2(t);
  const unsigned free_bits = n - static_cast<unsigned>(positions.size());

  pool.parallel_for(pow2(free_bits), [=, &positions](unsigned, std::uint64_t b,
                                                     std::uint64_t e) {
    for (std::uint64_t c = b; c < e; ++c) {
      const std::uint64_t i0 = insert_zero_bits(c, positions) | cmask;
      const std::uint64_t i1 = i0 | tbit;
      const std::complex<T> a0 = psi[i0];
      const std::complex<T> a1 = psi[i1];
      psi[i0] = m00 * a0 + m01 * a1;
      psi[i1] = m10 * a0 + m11 * a1;
    }
  });
}

/// CX: swap the target pair where all controls are 1 (covers CCX/MCX too).
template <typename T>
void apply_mcx(std::complex<T>* psi, unsigned n,
               const std::vector<unsigned>& controls, unsigned t,
               ThreadPool& pool) {
  std::vector<unsigned> positions = controls;
  positions.push_back(t);
  std::sort(positions.begin(), positions.end());
  std::uint64_t cmask = 0;
  for (unsigned c : controls) cmask |= pow2(c);
  const std::uint64_t tbit = pow2(t);
  const unsigned free_bits = n - static_cast<unsigned>(positions.size());
  pool.parallel_for(pow2(free_bits), [=, &positions](unsigned, std::uint64_t b,
                                                     std::uint64_t e) {
    for (std::uint64_t c = b; c < e; ++c) {
      const std::uint64_t i0 = insert_zero_bits(c, positions) | cmask;
      std::swap(psi[i0], psi[i0 | tbit]);
    }
  });
}

/// Multi-controlled phase: multiplies the single amplitude subset where all
/// of `qubits` (controls AND target — MCP is symmetric) are 1 by `phase`.
template <typename T>
void apply_mc_phase(std::complex<T>* psi, unsigned n,
                    const std::vector<unsigned>& qubits, qc::cplx phase,
                    ThreadPool& pool) {
  std::vector<unsigned> positions = qubits;
  std::sort(positions.begin(), positions.end());
  std::uint64_t mask = 0;
  for (unsigned q : qubits) mask |= pow2(q);
  const std::complex<T> f = detail::cast_c<T>(phase);
  const unsigned free_bits = n - static_cast<unsigned>(positions.size());
  pool.parallel_for(pow2(free_bits), [=, &positions](unsigned, std::uint64_t b,
                                                     std::uint64_t e) {
    for (std::uint64_t c = b; c < e; ++c)
      psi[insert_zero_bits(c, positions) | mask] *= f;
  });
}

/// Controlled diag(d0, d1) on target t (covers CZ, CP, CRZ, CCZ).
template <typename T>
void apply_controlled_diag1(std::complex<T>* psi, unsigned n,
                            const std::vector<unsigned>& controls, unsigned t,
                            qc::cplx d0, qc::cplx d1, ThreadPool& pool) {
  if (d0 == qc::cplx{1.0, 0.0}) {
    // Only the all-controls-1, target-1 subspace is scaled.
    std::vector<unsigned> qs = controls;
    qs.push_back(t);
    apply_mc_phase(psi, n, qs, d1, pool);
    return;
  }
  std::vector<unsigned> positions = controls;
  positions.push_back(t);
  std::sort(positions.begin(), positions.end());
  std::uint64_t cmask = 0;
  for (unsigned c : controls) cmask |= pow2(c);
  const std::uint64_t tbit = pow2(t);
  const std::complex<T> f0 = detail::cast_c<T>(d0);
  const std::complex<T> f1 = detail::cast_c<T>(d1);
  const unsigned free_bits = n - static_cast<unsigned>(positions.size());
  pool.parallel_for(pow2(free_bits), [=, &positions](unsigned, std::uint64_t b,
                                                     std::uint64_t e) {
    for (std::uint64_t c = b; c < e; ++c) {
      const std::uint64_t i0 = insert_zero_bits(c, positions) | cmask;
      psi[i0] *= f0;
      psi[i0 | tbit] *= f1;
    }
  });
}

// ---- 2-qubit kernels --------------------------------------------------------

/// SWAP: exchanges amplitudes whose bits at (q0, q1) are (0,1) and (1,0).
template <typename T>
void apply_swap(std::complex<T>* psi, unsigned n, unsigned q0, unsigned q1,
                ThreadPool& pool) {
  std::vector<unsigned> positions = {std::min(q0, q1), std::max(q0, q1)};
  const std::uint64_t b0 = pow2(q0), b1 = pow2(q1);
  pool.parallel_for(pow2(n - 2), [=, &positions](unsigned, std::uint64_t b,
                                                 std::uint64_t e) {
    for (std::uint64_t c = b; c < e; ++c) {
      const std::uint64_t base = insert_zero_bits(c, positions);
      std::swap(psi[base | b0], psi[base | b1]);
    }
  });
}

/// General 4x4 on (q0, q1) with q0 the matrix LSB.
template <typename T>
void apply_matrix2(std::complex<T>* psi, unsigned n, unsigned q0, unsigned q1,
                   const qc::Matrix& u, ThreadPool& pool) {
  SVSIM_ASSERT(u.dim() == 4 && q0 != q1 && q0 < n && q1 < n);
  std::array<std::complex<T>, 16> m;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      m[r * 4 + c] = detail::cast_c<T>(u(r, c));
  std::vector<unsigned> positions = {std::min(q0, q1), std::max(q0, q1)};
  const std::uint64_t b0 = pow2(q0), b1 = pow2(q1);
  pool.parallel_for(pow2(n - 2), [=, &positions](unsigned, std::uint64_t b,
                                                 std::uint64_t e) {
    for (std::uint64_t c = b; c < e; ++c) {
      const std::uint64_t base = insert_zero_bits(c, positions);
      const std::uint64_t i[4] = {base, base | b0, base | b1, base | b0 | b1};
      const std::complex<T> a0 = psi[i[0]], a1 = psi[i[1]], a2 = psi[i[2]],
                            a3 = psi[i[3]];
      psi[i[0]] = m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
      psi[i[1]] = m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
      psi[i[2]] = m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
      psi[i[3]] = m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
    }
  });
}

/// Diagonal 2-qubit gate diag(d00, d01, d10, d11) on (q0, q1), q0 = LSB.
template <typename T>
void apply_diag2(std::complex<T>* psi, unsigned n, unsigned q0, unsigned q1,
                 const std::array<qc::cplx, 4>& d, ThreadPool& pool) {
  std::array<std::complex<T>, 4> f;
  for (std::size_t i = 0; i < 4; ++i) f[i] = detail::cast_c<T>(d[i]);
  const std::uint64_t m0 = pow2(q0), m1 = pow2(q1);
  pool.parallel_for(pow2(n), [=](unsigned, std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) {
      const unsigned s = static_cast<unsigned>(((i & m1) != 0) * 2 +
                                               ((i & m0) != 0));
      psi[i] *= f[s];
    }
  });
}

// ---- k-qubit kernels ---------------------------------------------------------

/// Dense 2^k x 2^k unitary on qs (qs[0] = matrix LSB). Practical for k <= 6;
/// this is the fused-gate execution path.
template <typename T>
void apply_matrix_k(std::complex<T>* psi, unsigned n,
                    const std::vector<unsigned>& qs, const qc::Matrix& u,
                    ThreadPool& pool) {
  const unsigned k = static_cast<unsigned>(qs.size());
  SVSIM_ASSERT(u.dim() == pow2(k) && k <= n);
  require(k <= 10, "apply_matrix_k: fused width too large");
  const std::uint64_t sub = pow2(k);

  // Precompute the scatter offsets of each sub-index and cast the matrix.
  std::vector<std::uint64_t> offs(sub);
  for (std::uint64_t s = 0; s < sub; ++s) offs[s] = scatter_bits(s, qs);
  std::vector<std::complex<T>> m(sub * sub);
  for (std::uint64_t r = 0; r < sub; ++r)
    for (std::uint64_t c = 0; c < sub; ++c)
      m[r * sub + c] = detail::cast_c<T>(u(r, c));

  std::vector<unsigned> positions = qs;
  std::sort(positions.begin(), positions.end());

  pool.parallel_for(
      pow2(n - k),
      [=, &positions, &offs, &m](unsigned, std::uint64_t b, std::uint64_t e) {
        std::vector<std::complex<T>> in(sub);
        for (std::uint64_t c = b; c < e; ++c) {
          const std::uint64_t base = insert_zero_bits(c, positions);
          for (std::uint64_t s = 0; s < sub; ++s) in[s] = psi[base | offs[s]];
          for (std::uint64_t r = 0; r < sub; ++r) {
            std::complex<T> acc{};
            const std::complex<T>* row = m.data() + r * sub;
            for (std::uint64_t s = 0; s < sub; ++s) acc += row[s] * in[s];
            psi[base | offs[r]] = acc;
          }
        }
      });
}

/// Diagonal unitary on qs: psi[i] *= d[gather(i, qs)].
template <typename T>
void apply_diag_k(std::complex<T>* psi, unsigned n,
                  const std::vector<unsigned>& qs,
                  const std::vector<qc::cplx>& d, ThreadPool& pool) {
  const unsigned k = static_cast<unsigned>(qs.size());
  SVSIM_ASSERT(d.size() == pow2(k));
  std::vector<std::complex<T>> f(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) f[i] = detail::cast_c<T>(d[i]);
  pool.parallel_for(pow2(n), [=, &qs, &f](unsigned, std::uint64_t b,
                                          std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) psi[i] *= f[gather_bits(i, qs)];
  });
}

// ---- block-local kernels and the dispatch table -----------------------------
//
// The cache-blocked engine (sv/engine.hpp) applies a *sweep* of gates to one
// aligned block of 2^b amplitudes at a time while the block is L2-resident.
// The kernel contract for this path (documented in docs/ARCHITECTURE.md):
//
//  * Operands: every operand qubit of the gate is < b, so the gate acts
//    identically and independently on each aligned block — the block kernel
//    is the same math as the whole-state kernel with n replaced by b.
//  * Threading: block kernels are SERIAL. The engine owns parallelism (one
//    parallel_for over blocks, statically partitioned so each worker streams
//    the pages it first-touched); a block kernel must never re-enter the
//    pool.
//  * Coefficients: pre-cast once per sweep into PreparedGate<T> — the
//    per-block loop does no matrix conversion or allocation (MatrixK uses a
//    fixed stack scratch, hence its k <= 8 limit).
//  * Dispatch: one indirect call per (gate, block) through
//    block_kernel_table<T>(), indexed by KernelClass.

/// Kernel specialization classes the dispatcher distinguishes. Order is the
/// dispatch-table index; keep kernel_class_name and block_kernel_table in
/// sync.
enum class KernelClass : std::uint8_t {
  Nop = 0,      ///< I / BARRIER
  PermX,        ///< X: pure pair swap, no arithmetic
  PermY,        ///< Y: pair swap with ±i phases
  PermSwap,     ///< SWAP: (01)<->(10) amplitude exchange
  Mcx,          ///< CX/CCX/MCX: controlled pair swap
  Hadamard,     ///< H: add/sub + scale
  Diag1,        ///< Z/S/T/P/RZ: diag(d0, d1)
  CtrlDiag1,    ///< CRZ (controlled diagonal with d0 != 1)
  McPhase,      ///< CZ/CP/CCZ/MCP: one phased amplitude subset
  Diag2,        ///< RZZ: 4-entry diagonal
  DiagK,        ///< DIAG: 2^k-entry diagonal
  Matrix1,      ///< general 2x2
  CtrlMatrix1,  ///< CY/CH/CRX/CRY: controlled 2x2
  Matrix2,      ///< general (fused) 4x4
  MatrixK,      ///< dense 2^k x 2^k (fusion output, CSWAP)
  Unsupported,  ///< MEASURE / RESET: not a unitary kernel
};

inline constexpr std::size_t kNumKernelClasses = 16;

const char* kernel_class_name(KernelClass c);

/// Maps a gate to its kernel class. Total: every GateKind classifies
/// (MEASURE/RESET as Unsupported). This is the single source of truth for
/// which specialized kernel serves a gate on the blocked path.
KernelClass classify_gate(const qc::Gate& g);

/// A gate resolved for block-local application: kernel class plus every
/// coefficient pre-cast to the state precision, so applying it to a block
/// touches only the block's amplitudes.
template <typename T>
struct PreparedGate {
  KernelClass cls = KernelClass::Nop;
  std::vector<unsigned> qubits;   ///< operands, gate order (qubits[0] = LSB)
  std::vector<unsigned> sorted;   ///< ascending operand bit positions
  unsigned target = 0;            ///< target qubit (1-target kernels)
  std::uint64_t cmask = 0;        ///< OR of control bits
  std::uint64_t mask = 0;         ///< OR of all operand bits (McPhase)
  /// Class-dependent payload: Diag1/CtrlDiag1 {d0,d1}; McPhase {phase};
  /// Matrix1/CtrlMatrix1 4; Diag2 4; Matrix2 16; DiagK 2^k; MatrixK 4^k.
  std::vector<std::complex<T>> coeff;
  std::vector<std::uint64_t> offs;  ///< MatrixK sub-index scatter offsets
};

namespace detail::blk {

/// Highest operand qubit + 1 (0 for operand-free gates): the minimum block
/// exponent this prepared gate is valid for.
template <typename T>
unsigned min_block_qubits(const PreparedGate<T>& pg) {
  unsigned m = 0;
  for (unsigned q : pg.qubits) m = std::max(m, q + 1);
  return m;
}

template <typename T>
void bk_nop(std::complex<T>*, unsigned, const PreparedGate<T>&) {}

template <typename T>
void bk_perm_x(std::complex<T>* psi, unsigned nb, const PreparedGate<T>& pg) {
  const unsigned t = pg.target;
  const std::uint64_t stride = pow2(t);
  for_pair_runs(0, pow2(nb - 1), t, [&](std::uint64_t base, std::uint64_t run) {
    std::complex<T>* lo = psi + base;
    std::complex<T>* hi = psi + base + stride;
    for (std::uint64_t j = 0; j < run; ++j) std::swap(lo[j], hi[j]);
  });
}

template <typename T>
void bk_perm_y(std::complex<T>* psi, unsigned nb, const PreparedGate<T>& pg) {
  const unsigned t = pg.target;
  const std::uint64_t stride = pow2(t);
  for_pair_runs(0, pow2(nb - 1), t, [&](std::uint64_t base, std::uint64_t run) {
    std::complex<T>* lo = psi + base;
    std::complex<T>* hi = psi + base + stride;
    for (std::uint64_t j = 0; j < run; ++j) {
      const std::complex<T> a0 = lo[j];
      const std::complex<T> a1 = hi[j];
      lo[j] = std::complex<T>{a1.imag(), -a1.real()};
      hi[j] = std::complex<T>{-a0.imag(), a0.real()};
    }
  });
}

template <typename T>
void bk_hadamard(std::complex<T>* psi, unsigned nb, const PreparedGate<T>& pg) {
  const T inv_sqrt2 = static_cast<T>(0.70710678118654752440);
  const unsigned t = pg.target;
  const std::uint64_t stride = pow2(t);
  for_pair_runs(0, pow2(nb - 1), t, [&](std::uint64_t base, std::uint64_t run) {
    std::complex<T>* lo = psi + base;
    std::complex<T>* hi = psi + base + stride;
    for (std::uint64_t j = 0; j < run; ++j) {
      const std::complex<T> a0 = lo[j];
      const std::complex<T> a1 = hi[j];
      lo[j] = (a0 + a1) * inv_sqrt2;
      hi[j] = (a0 - a1) * inv_sqrt2;
    }
  });
}

template <typename T>
void bk_diag1(std::complex<T>* psi, unsigned nb, const PreparedGate<T>& pg) {
  const std::complex<T> f0 = pg.coeff[0];
  const std::complex<T> f1 = pg.coeff[1];
  const bool skip_lower = (f0 == std::complex<T>{T{1}, T{0}});
  const unsigned t = pg.target;
  const std::uint64_t stride = pow2(t);
  for_pair_runs(0, pow2(nb - 1), t, [&](std::uint64_t base, std::uint64_t run) {
    std::complex<T>* lo = psi + base;
    std::complex<T>* hi = psi + base + stride;
    if (skip_lower) {
      for (std::uint64_t j = 0; j < run; ++j) hi[j] *= f1;
    } else {
      for (std::uint64_t j = 0; j < run; ++j) {
        lo[j] *= f0;
        hi[j] *= f1;
      }
    }
  });
}

template <typename T>
void bk_matrix1(std::complex<T>* psi, unsigned nb, const PreparedGate<T>& pg) {
  const std::complex<T> m00 = pg.coeff[0], m01 = pg.coeff[1];
  const std::complex<T> m10 = pg.coeff[2], m11 = pg.coeff[3];
  const unsigned t = pg.target;
  const std::uint64_t stride = pow2(t);
  for_pair_runs(0, pow2(nb - 1), t, [&](std::uint64_t base, std::uint64_t run) {
    std::complex<T>* lo = psi + base;
    std::complex<T>* hi = psi + base + stride;
    for (std::uint64_t j = 0; j < run; ++j) {
      const std::complex<T> a0 = lo[j];
      const std::complex<T> a1 = hi[j];
      lo[j] = m00 * a0 + m01 * a1;
      hi[j] = m10 * a0 + m11 * a1;
    }
  });
}

template <typename T>
void bk_mcx(std::complex<T>* psi, unsigned nb, const PreparedGate<T>& pg) {
  const std::uint64_t tbit = pow2(pg.target);
  const unsigned free_bits = nb - static_cast<unsigned>(pg.sorted.size());
  for (std::uint64_t c = 0; c < pow2(free_bits); ++c) {
    const std::uint64_t i0 = insert_zero_bits(c, pg.sorted) | pg.cmask;
    std::swap(psi[i0], psi[i0 | tbit]);
  }
}

template <typename T>
void bk_ctrl_matrix1(std::complex<T>* psi, unsigned nb,
                     const PreparedGate<T>& pg) {
  const std::complex<T> m00 = pg.coeff[0], m01 = pg.coeff[1];
  const std::complex<T> m10 = pg.coeff[2], m11 = pg.coeff[3];
  const std::uint64_t tbit = pow2(pg.target);
  const unsigned free_bits = nb - static_cast<unsigned>(pg.sorted.size());
  for (std::uint64_t c = 0; c < pow2(free_bits); ++c) {
    const std::uint64_t i0 = insert_zero_bits(c, pg.sorted) | pg.cmask;
    const std::uint64_t i1 = i0 | tbit;
    const std::complex<T> a0 = psi[i0];
    const std::complex<T> a1 = psi[i1];
    psi[i0] = m00 * a0 + m01 * a1;
    psi[i1] = m10 * a0 + m11 * a1;
  }
}

template <typename T>
void bk_ctrl_diag1(std::complex<T>* psi, unsigned nb,
                   const PreparedGate<T>& pg) {
  const std::complex<T> f0 = pg.coeff[0];
  const std::complex<T> f1 = pg.coeff[1];
  const std::uint64_t tbit = pow2(pg.target);
  const unsigned free_bits = nb - static_cast<unsigned>(pg.sorted.size());
  for (std::uint64_t c = 0; c < pow2(free_bits); ++c) {
    const std::uint64_t i0 = insert_zero_bits(c, pg.sorted) | pg.cmask;
    psi[i0] *= f0;
    psi[i0 | tbit] *= f1;
  }
}

template <typename T>
void bk_mc_phase(std::complex<T>* psi, unsigned nb, const PreparedGate<T>& pg) {
  const std::complex<T> f = pg.coeff[0];
  const unsigned free_bits = nb - static_cast<unsigned>(pg.sorted.size());
  for (std::uint64_t c = 0; c < pow2(free_bits); ++c)
    psi[insert_zero_bits(c, pg.sorted) | pg.mask] *= f;
}

template <typename T>
void bk_perm_swap(std::complex<T>* psi, unsigned nb,
                  const PreparedGate<T>& pg) {
  const std::uint64_t b0 = pow2(pg.qubits[0]), b1 = pow2(pg.qubits[1]);
  for (std::uint64_t c = 0; c < pow2(nb - 2); ++c) {
    const std::uint64_t base = insert_zero_bits(c, pg.sorted);
    std::swap(psi[base | b0], psi[base | b1]);
  }
}

template <typename T>
void bk_matrix2(std::complex<T>* psi, unsigned nb, const PreparedGate<T>& pg) {
  const std::complex<T>* m = pg.coeff.data();
  const std::uint64_t b0 = pow2(pg.qubits[0]), b1 = pow2(pg.qubits[1]);
  for (std::uint64_t c = 0; c < pow2(nb - 2); ++c) {
    const std::uint64_t base = insert_zero_bits(c, pg.sorted);
    const std::uint64_t i[4] = {base, base | b0, base | b1, base | b0 | b1};
    const std::complex<T> a0 = psi[i[0]], a1 = psi[i[1]], a2 = psi[i[2]],
                          a3 = psi[i[3]];
    psi[i[0]] = m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
    psi[i[1]] = m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
    psi[i[2]] = m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
    psi[i[3]] = m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
  }
}

template <typename T>
void bk_diag2(std::complex<T>* psi, unsigned nb, const PreparedGate<T>& pg) {
  const std::uint64_t m0 = pow2(pg.qubits[0]), m1 = pow2(pg.qubits[1]);
  for (std::uint64_t i = 0; i < pow2(nb); ++i) {
    const unsigned s =
        static_cast<unsigned>(((i & m1) != 0) * 2 + ((i & m0) != 0));
    psi[i] *= pg.coeff[s];
  }
}

template <typename T>
void bk_diag_k(std::complex<T>* psi, unsigned nb, const PreparedGate<T>& pg) {
  for (std::uint64_t i = 0; i < pow2(nb); ++i)
    psi[i] *= pg.coeff[gather_bits(i, pg.qubits)];
}

/// MatrixK block limit: fixed stack scratch of 2^8 amplitudes.
inline constexpr unsigned kMaxBlockMatrixK = 8;

template <typename T>
void bk_matrix_k(std::complex<T>* psi, unsigned nb, const PreparedGate<T>& pg) {
  const unsigned k = static_cast<unsigned>(pg.qubits.size());
  const std::uint64_t sub = pow2(k);
  std::array<std::complex<T>, pow2(kMaxBlockMatrixK)> in;
  const unsigned free_bits = nb - k;
  for (std::uint64_t c = 0; c < pow2(free_bits); ++c) {
    const std::uint64_t base = insert_zero_bits(c, pg.sorted);
    for (std::uint64_t s = 0; s < sub; ++s) in[s] = psi[base | pg.offs[s]];
    for (std::uint64_t r = 0; r < sub; ++r) {
      std::complex<T> acc{};
      const std::complex<T>* row = pg.coeff.data() + r * sub;
      for (std::uint64_t s = 0; s < sub; ++s) acc += row[s] * in[s];
      psi[base | pg.offs[r]] = acc;
    }
  }
}

template <typename T>
void bk_unsupported(std::complex<T>*, unsigned, const PreparedGate<T>&) {
  throw Error("block kernel: MEASURE/RESET are not block-local");
}

}  // namespace detail::blk

/// Serial block-kernel signature: apply to block[0 .. 2^nb).
template <typename T>
using BlockKernelFn = void (*)(std::complex<T>*, unsigned nb,
                               const PreparedGate<T>&);

/// The portable scalar reference table, indexed by KernelClass. SIMD
/// backends (sv/simd) derive their tables from this one, substituting
/// hand-vectorized entries; it also serves as the equivalence oracle in
/// tests.
template <typename T>
inline const std::array<BlockKernelFn<T>, kNumKernelClasses>&
block_kernel_table() {
  namespace blk = detail::blk;
  static const std::array<BlockKernelFn<T>, kNumKernelClasses> table = {
      &blk::bk_nop<T>,          &blk::bk_perm_x<T>,
      &blk::bk_perm_y<T>,       &blk::bk_perm_swap<T>,
      &blk::bk_mcx<T>,          &blk::bk_hadamard<T>,
      &blk::bk_diag1<T>,        &blk::bk_ctrl_diag1<T>,
      &blk::bk_mc_phase<T>,     &blk::bk_diag2<T>,
      &blk::bk_diag_k<T>,       &blk::bk_matrix1<T>,
      &blk::bk_ctrl_matrix1<T>, &blk::bk_matrix2<T>,
      &blk::bk_matrix_k<T>,     &blk::bk_unsupported<T>,
  };
  return table;
}

/// The table of the active SIMD backend (scalar entries where the backend
/// has no hand-vectorized kernel). Defined in sv/simd/registry.cpp; the
/// first call triggers runtime CPU detection / the SVSIM_SIMD override
/// (see sv/simd/simd.hpp).
template <typename T>
const std::array<BlockKernelFn<T>, kNumKernelClasses>&
active_block_kernel_table();

template <>
const std::array<BlockKernelFn<float>, kNumKernelClasses>&
active_block_kernel_table<float>();
template <>
const std::array<BlockKernelFn<double>, kNumKernelClasses>&
active_block_kernel_table<double>();

/// Resolves `g` for block-local application: classifies it and pre-casts
/// every coefficient to precision T. Throws for MEASURE/RESET and for dense
/// payloads wider than the block path supports.
template <typename T>
PreparedGate<T> prepare_gate(const qc::Gate& g);

extern template PreparedGate<float> prepare_gate<float>(const qc::Gate&);
extern template PreparedGate<double> prepare_gate<double>(const qc::Gate&);

/// Applies a prepared gate serially to one aligned block of 2^nb amplitudes.
/// Precondition (the kernel contract): every operand qubit < nb.
template <typename T>
inline void apply_gate_in_block(std::complex<T>* block, unsigned nb,
                                const PreparedGate<T>& pg) {
  SVSIM_ASSERT(detail::blk::min_block_qubits(pg) <= nb);
  active_block_kernel_table<T>()[static_cast<std::size_t>(pg.cls)](block, nb,
                                                                  pg);
}

}  // namespace svsim::sv
