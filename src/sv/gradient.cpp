#include "sv/gradient.hpp"

#include <numbers>

#include "common/error.hpp"

namespace svsim::sv {

namespace {

bool is_shiftable(qc::GateKind kind) {
  switch (kind) {
    case qc::GateKind::RX: case qc::GateKind::RY: case qc::GateKind::RZ:
    case qc::GateKind::RXX: case qc::GateKind::RYY: case qc::GateKind::RZZ:
    case qc::GateKind::P: case qc::GateKind::CP:
      return true;
    default:
      return false;
  }
}

bool is_unsupported_parameterized(const qc::Gate& g) {
  return g.is_parameterized() && !is_shiftable(g.kind);
}

}  // namespace

std::vector<std::size_t> shiftable_parameters(const qc::Circuit& circuit) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < circuit.size(); ++i)
    if (is_shiftable(circuit.gate(i).kind)) out.push_back(i);
  return out;
}

template <typename T>
std::vector<double> parameter_shift_gradient(
    Simulator<T>& simulator, const qc::Circuit& circuit,
    const qc::PauliOperator& observable) {
  require(circuit.is_unitary(),
          "parameter_shift_gradient: circuit contains measure/reset");
  for (const auto& g : circuit.gates())
    require(!is_unsupported_parameterized(g),
            std::string("parameter_shift_gradient: gate '") + g.name() +
                "' is not covered by the two-term shift rule");

  const auto indices = shiftable_parameters(circuit);
  std::vector<double> grad;
  grad.reserve(indices.size());
  const double shift = std::numbers::pi / 2;

  for (const std::size_t idx : indices) {
    qc::Circuit plus(circuit.num_qubits(), circuit.num_clbits());
    qc::Circuit minus(circuit.num_qubits(), circuit.num_clbits());
    for (std::size_t i = 0; i < circuit.size(); ++i) {
      qc::Gate g = circuit.gate(i);
      if (i == idx) {
        qc::Gate gp = g, gm = g;
        gp.params[0] += shift;
        gm.params[0] -= shift;
        plus.append(std::move(gp));
        minus.append(std::move(gm));
        continue;
      }
      plus.append(g);
      minus.append(std::move(g));
    }
    const double ep = simulator.expectation(plus, observable);
    const double em = simulator.expectation(minus, observable);
    grad.push_back((ep - em) / 2.0);
  }
  return grad;
}

template std::vector<double> parameter_shift_gradient<float>(
    Simulator<float>&, const qc::Circuit&, const qc::PauliOperator&);
template std::vector<double> parameter_shift_gradient<double>(
    Simulator<double>&, const qc::Circuit&, const qc::PauliOperator&);

}  // namespace svsim::sv
