// ExecutionPlan: the shared IR behind dense, blocked, and distributed runs.
//
// A plan is an ordered list of phases compiled from a circuit:
//
//   LocalSweep   — k grouped gates, all operands below the block boundary,
//                  applied per cache block in one traversal of the local
//                  partition (sv/engine.hpp);
//   DenseGate    — one gate executed by the whole-state kernel dispatch
//                  (operands anywhere below local_qubits, plus node-slot
//                  controls/diagonals which are free on the wire);
//   Exchange     — a qubit-remap collective window: pairwise partner
//                  exchanges that move node-slot qubits into local slots
//                  (or cost-only markers for the naive per-gate scheduler);
//   MeasureFlush — MEASURE/RESET gates, which need the Simulator's RNG and
//                  must observe the identity qubit->slot layout.
//
// The compilers are `compile_plan` (single node: fusion -> sweep grouping;
// zero Exchange phases) and `dist::compile_distributed` (fusion ->
// Belady-style exchange placement -> sweep grouping per exchange window).
// Executors — sv::run_plan for amplitudes, dist::time_plan /
// event_driven_makespan for modeled time, perf::cost_plan for first
// principles — all walk this one IR; none keeps a private dispatch loop.
//
// Distributed plans express gates in *slot space*: operand q names the slot
// holding a logical qubit, slots [local_qubits, num_qubits) live in the
// node rank. Executed on a single in-memory state, a slot-space plan is
// amplitude-exact: an Exchange's slot swaps are real SWAP applications (the
// same data movement 2^node_qubits ranks would perform pairwise), and
// whole-state kernels applied across the partition boundary reproduce what
// each rank computes on its 2^local_qubits amplitudes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "qc/circuit.hpp"
#include "sv/sweep.hpp"

namespace svsim::machine {
struct MachineSpec;
}

namespace svsim::sv {

enum class PhaseKind : std::uint8_t {
  LocalSweep,
  DenseGate,
  Exchange,
  MeasureFlush,
};

/// Stable lowercase name ("local_sweep", "dense_gate", "exchange",
/// "measure_flush") — the vocabulary of the --dump-plan JSON schema.
const char* phase_kind_name(PhaseKind kind);

/// One pairwise partner exchange inside an Exchange phase. For a data-moving
/// remap, (local_slot, node_slot) is the slot swap each rank performs with
/// the partner across `rank_bit`; for cost-only hops (naive scheduler,
/// legacy DistPlan adapters) the slots are not meaningful and the executor
/// does not touch amplitudes — see PlanPhase::moves_data.
struct ExchangeHop {
  unsigned local_slot = 0;  ///< destination slot, < local_qubits
  unsigned node_slot = 0;   ///< source slot, >= local_qubits
  int rank_bit = -1;        ///< partner = rank ^ (1 << rank_bit); -1 = none
  double bytes = 0.0;       ///< per rank, one direction
};

struct PlanPhase {
  PhaseKind kind = PhaseKind::DenseGate;
  /// LocalSweep: >= 1 block-local gates; DenseGate: exactly 1 gate;
  /// MeasureFlush: >= 1 MEASURE/RESET gates; Exchange: empty.
  std::vector<qc::Gate> gates;
  /// Exchange only: the pairwise hops of this collective window.
  std::vector<ExchangeHop> hops;
  /// Exchange only: true when the hops are slot swaps the amplitude
  /// executor must perform; false for cost-only exchange markers.
  bool moves_data = false;
  std::string note;

  double exchange_bytes() const noexcept {
    double total = 0.0;
    for (const auto& h : hops) total += h.bytes;
    return total;
  }
};

struct ExecutionPlan {
  unsigned num_qubits = 0;
  unsigned node_qubits = 0;   ///< d: log2(rank count); 0 = single node
  unsigned local_qubits = 0;  ///< num_qubits - node_qubits
  unsigned block_qubits = 0;  ///< 0 = no LocalSweep phases were planned
  unsigned num_clbits = 0;
  std::vector<PlanPhase> phases;
  /// slot_of[logical qubit] after the plan runs (identity unless a
  /// distributed compiler left the register permuted).
  std::vector<unsigned> final_slot_of;

  // Aggregates, recomputed by finalize().
  std::size_t sweep_gates = 0;    ///< gates inside LocalSweep phases
  std::size_t dense_gates = 0;    ///< non-free DenseGate gates
  std::size_t free_gates = 0;     ///< I / BARRIER DenseGate gates
  std::size_t measure_gates = 0;  ///< MEASURE / RESET gates
  std::size_t num_exchanges = 0;  ///< pairwise hops across Exchange phases
  double exchange_bytes_per_rank = 0.0;

  std::uint64_t num_ranks() const noexcept {
    return std::uint64_t{1} << node_qubits;
  }
  std::size_t total_gates() const noexcept {
    return sweep_gates + dense_gates + free_gates + measure_gates;
  }
  /// Maximal exchange-free runs of compute phases.
  std::size_t num_windows() const noexcept;
  /// Local-partition traversals the compute phases perform: one per
  /// LocalSweep, one per non-free DenseGate gate, one per measure.
  std::size_t traversals() const noexcept;
  /// Gates applied per traversal — the amortization the sweep engine buys.
  double gates_per_traversal() const noexcept;

  /// Compact plan identifier for diagnostics and artifacts:
  /// "q<num_qubits>r<ranks>b<block_qubits>p<phases>g<total_gates>".
  std::string summary_id() const;

  /// Recomputes the aggregate fields from the phases and defaults
  /// final_slot_of to identity when unset.
  void finalize();

  /// Checks the IR invariants every executor relies on; throws Error:
  ///  * widths consistent, block_qubits <= local_qubits;
  ///  * no two adjacent Exchange phases;
  ///  * LocalSweep gates unitary with every operand below block_qubits;
  ///  * DenseGate phases hold exactly one unitary gate;
  ///  * MeasureFlush phases hold only MEASURE/RESET and observe the
  ///    identity slot layout (data-moving hops tracked through the plan);
  ///  * Exchange hops name a valid (local, node) slot pair and rank bit.
  void validate() const;
};

struct PlanOptions {
  /// Run the fusion pass before planning.
  bool fusion = false;
  unsigned fusion_width = 3;
  /// Group block-local gates into LocalSweep phases.
  bool blocking = false;
  /// Block size in qubits; 0 = auto from the cache budget.
  unsigned block_qubits = 0;
  /// Cache budget for auto block sizing. 0 = derive from `machine`
  /// (per-core share of its last-level cache) when given, else the
  /// SweepOptions 512 KiB default.
  std::uint64_t cache_bytes = 0;
  /// Bytes per amplitude (16 = complex<double>).
  unsigned amp_bytes = 16;
  unsigned max_sweep_gates = 64;
  unsigned min_free_qubits = 3;
  /// Machine whose cache topology sizes the blocks (borrowed; optional).
  const machine::MachineSpec* machine = nullptr;
  /// Registry compile telemetry (plan.compiles, fusion.*, sweep.*)
  /// publishes to (borrowed); nullptr = the process-wide registry. Set
  /// from ExecutionContext::metrics() when compiling under a per-context
  /// registry.
  obs::MetricsRegistry* metrics = nullptr;
};

/// The cache budget auto block sizing will use under `options` (explicit
/// bytes > machine-derived per-core LLC share > 512 KiB fallback).
///
/// `SVSIM_CACHE_BUDGET=probed` swaps the machine-derived share for the
/// startup microprobe's measured figure (machine/cache_probe.hpp) when the
/// probe found a valid knee; `declared` (or unset) keeps the MachineSpec
/// description. Explicit `options.cache_bytes` always wins. Any other
/// value throws Error.
std::uint64_t plan_cache_budget(const PlanOptions& options);

/// Compiler building block shared with dist::compile_distributed: appends
/// the compute phases (LocalSweep / DenseGate) for one exchange-free window
/// of slot-space gates, sweep-grouped when plan.block_qubits > 0.
void append_window_phases(ExecutionPlan& plan, std::vector<qc::Gate> gates,
                          const PlanOptions& options);

/// Publishes plan.* compile-side counters (plan.compiles/phases/windows/
/// exchanges/exchange_bytes) for a freshly compiled plan. `metrics` is the
/// destination registry; nullptr = the process-wide registry.
void note_plan_compiled(const ExecutionPlan& plan,
                        obs::MetricsRegistry* metrics = nullptr);

/// Compiles a circuit for single-node execution: fusion (optional) ->
/// sweep grouping per window between MEASURE/RESET flush points. The
/// result has zero Exchange phases and is equivalent to the circuit
/// gate-for-gate.
ExecutionPlan compile_plan(const qc::Circuit& circuit,
                           const PlanOptions& options);

/// Serializes a plan as the --dump-plan JSON document
/// (scripts/check_plan_schema.py validates this shape).
void write_plan_json(const ExecutionPlan& plan, std::ostream& os);

}  // namespace svsim::sv
