// Sweep planner: groups gates into cache-blocked execution steps.
//
// State-vector simulation is memory-bandwidth-bound (~0.44 flop/byte for a
// general 1-qubit gate), so once fusion has raised per-gate arithmetic
// intensity the remaining lever is to stop re-streaming the state from DRAM
// for every gate. A gate whose operand qubits all lie below `block_qubits`
// acts independently and identically on every aligned block of
// 2^block_qubits amplitudes. A *sweep* is a run of consecutive such gates:
// the blocked engine (engine.hpp) applies the whole sweep to one block —
// which fits in L2 by construction — before moving to the next, so k gates
// cost one traversal of the state instead of k.
//
// The planner is a pure function circuit -> SweepPlan; it never reorders
// gates, so a plan is exactly equivalent to the input circuit. Gates that do
// not qualify (operand at or above the block boundary, MEASURE/RESET) become
// single-gate pass-through steps executed by the whole-state kernels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "qc/circuit.hpp"

namespace svsim::obs {
class MetricsRegistry;
}

namespace svsim::sv {

struct SweepOptions {
  /// Block size in qubits; a block is 2^block_qubits contiguous amplitudes.
  /// 0 = derive from `cache_bytes` via auto_block_qubits().
  unsigned block_qubits = 0;
  /// Per-core cache budget the working block must fit in (used only when
  /// block_qubits == 0). Default 512 KiB: comfortably inside an A64FX CMG's
  /// 8 MiB L2 share (~680 KiB/core) and typical x86 private L2 sizes.
  std::uint64_t cache_bytes = 512u * 1024u;
  /// Bytes per amplitude (16 = complex<double>, 8 = complex<float>).
  unsigned amp_bytes = 16;
  /// Upper bound on gates per sweep (bounds prepared-gate storage; sweeps
  /// longer than this split, each split still amortizing one traversal).
  unsigned max_sweep_gates = 64;
  /// Keep at least 2^min_free_qubits blocks when the register allows, so
  /// the per-block loop still parallelizes across the pool.
  unsigned min_free_qubits = 3;
  /// Registry planner telemetry publishes to (borrowed); nullptr = the
  /// process-wide registry. Set from ExecutionContext::metrics() when
  /// compiling under a per-context registry.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Largest block exponent whose block (2^b amplitudes of `amp_bytes`) fits
/// in `cache_bytes`, clamped to keep >= 2^min_free qubits of parallelism on
/// an n-qubit register (never below 1, never above n).
unsigned auto_block_qubits(unsigned num_qubits, std::uint64_t cache_bytes,
                           unsigned amp_bytes, unsigned min_free);

/// One execution step of a plan.
struct SweepStep {
  /// Gates applied by this step, in circuit order.
  std::vector<qc::Gate> gates;
  /// True: every gate's operands are below the plan's block_qubits and the
  /// engine applies them block-by-block in one state traversal. False: a
  /// single gate executed by the whole-state kernel dispatch (includes
  /// MEASURE/RESET, which need the Simulator's RNG).
  bool blocked = false;
};

/// Execution plan for a circuit. Equivalent to the circuit gate-for-gate.
struct SweepPlan {
  unsigned block_qubits = 0;
  std::vector<SweepStep> steps;
  std::size_t blocked_gates = 0;      ///< gates inside blocked steps
  std::size_t passthrough_gates = 0;  ///< gates in pass-through steps

  /// State traversals the plan performs: one per blocked step, one per
  /// pass-through gate (BARRIER/I pass-throughs are free and not counted).
  std::size_t traversals() const noexcept;

  /// Effective gates applied per state traversal — the figure of merit the
  /// blocked engine raises (1.0 for an unblocked plan).
  double gates_per_traversal() const noexcept;
};

/// Plans the execution of `circuit` (normally post-fusion). Pure; does not
/// reorder gates. With options.block_qubits == 0 the block size is derived
/// from the cache budget.
SweepPlan plan_sweeps(const qc::Circuit& circuit, const SweepOptions& options);

/// Same, over a bare gate sequence on an n-qubit register. This is the form
/// the plan compiler calls once per exchange-free window.
SweepPlan plan_sweeps(const std::vector<qc::Gate>& gates, unsigned num_qubits,
                      const SweepOptions& options);

}  // namespace svsim::sv
