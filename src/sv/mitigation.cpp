#include "sv/mitigation.hpp"

#include "common/error.hpp"

namespace svsim::sv {

qc::Circuit fold_global(const qc::Circuit& circuit, unsigned scale) {
  require(scale % 2 == 1, "fold_global: scale must be odd");
  require(circuit.is_unitary(), "fold_global: circuit must be unitary");
  qc::Circuit folded(circuit.num_qubits(), circuit.num_clbits());
  auto append_all = [&](const qc::Circuit& c) {
    for (const auto& g : c.gates())
      if (g.kind != qc::GateKind::BARRIER) folded.append(g);
  };
  append_all(circuit);
  const qc::Circuit inverse = circuit.inverse();
  for (unsigned k = 0; k < (scale - 1) / 2; ++k) {
    append_all(inverse);
    append_all(circuit);
  }
  return folded;
}

double richardson_extrapolate(const std::vector<double>& xs,
                              const std::vector<double>& ys) {
  require(xs.size() == ys.size() && !xs.empty(),
          "richardson_extrapolate: need matching non-empty samples");
  double result = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double weight = 1.0;
    for (std::size_t j = 0; j < xs.size(); ++j) {
      if (j == i) continue;
      require(xs[i] != xs[j], "richardson_extrapolate: duplicate scale");
      weight *= xs[j] / (xs[j] - xs[i]);  // Lagrange basis at x = 0
    }
    result += weight * ys[i];
  }
  return result;
}

template <typename T>
ZneResult zero_noise_extrapolation(Simulator<T>& simulator,
                                   const qc::Circuit& circuit,
                                   const qc::PauliOperator& observable,
                                   int trajectories,
                                   std::vector<unsigned> scales) {
  require(trajectories > 0, "zero_noise_extrapolation: need trajectories");
  require(!scales.empty(), "zero_noise_extrapolation: need scales");
  ZneResult result;
  result.scales = scales;
  for (const unsigned scale : scales) {
    const qc::Circuit folded = fold_global(circuit, scale);
    double sum = 0.0;
    for (int t = 0; t < trajectories; ++t)
      sum += simulator.expectation(folded, observable);
    result.values.push_back(sum / trajectories);
  }
  std::vector<double> xs(scales.begin(), scales.end());
  result.extrapolated = richardson_extrapolate(xs, result.values);
  return result;
}

template ZneResult zero_noise_extrapolation<float>(Simulator<float>&,
                                                   const qc::Circuit&,
                                                   const qc::PauliOperator&,
                                                   int,
                                                   std::vector<unsigned>);
template ZneResult zero_noise_extrapolation<double>(Simulator<double>&,
                                                    const qc::Circuit&,
                                                    const qc::PauliOperator&,
                                                    int,
                                                    std::vector<unsigned>);

}  // namespace svsim::sv
