// Gate fusion: merge adjacent gates into dense k-qubit unitaries.
//
// State-vector simulation is memory-bound; a 1-qubit gate moves the whole
// state for 14 flops per pair. Fusing a run of gates whose combined support
// fits in k qubits into one 2^k x 2^k UNITARY gate raises arithmetic
// intensity ~2^k/4-fold and cuts sweeps of the state from one-per-gate to
// one-per-group. This is the optimization whose effect Table 2 of the
// reconstructed evaluation quantifies (the same technique as Qiskit Aer's
// fusion and qsim's gate grouping).
#pragma once

#include "qc/circuit.hpp"

namespace svsim::obs {
class MetricsRegistry;
}

namespace svsim::sv {

struct FusionOptions {
  /// Maximum number of distinct qubits per fused group (2..6 useful).
  unsigned max_width = 3;
  /// Groups that remain a single gate pass through unchanged.
  /// Diagonal-only groups are emitted as DIAG gates (cheaper kernel).
  bool prefer_diagonal = true;
  /// Registry fusion telemetry publishes to (borrowed); nullptr = the
  /// process-wide registry.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Returns an equivalent circuit where runs of adjacent unitary gates with
/// combined support <= max_width qubits are merged into UNITARY (or DIAG)
/// gates. MEASURE/RESET/BARRIER flush the current group and are preserved.
qc::Circuit fuse(const qc::Circuit& circuit, const FusionOptions& options);

}  // namespace svsim::sv
