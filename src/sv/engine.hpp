// Cache-blocked execution engine.
//
// Executes a SweepPlan against a StateVector. A blocked step's gates are
// prepared once (coefficients pre-cast, kernels resolved through the
// dispatch table in kernels.hpp) and then applied block-by-block: each
// worker takes a contiguous range of aligned 2^block_qubits blocks — the
// same static partition the state's first-touch initialization used, so on
// NUMA machines every worker streams pages it owns — and runs the whole
// sweep over one block while it is cache-resident before advancing. k gates
// therefore cost ~1 traversal of the state instead of k.
//
// Pass-through steps (operands at or above the block boundary) fall back to
// the whole-state kernels via apply_gate. MEASURE/RESET are rejected here;
// the Simulator front-end keeps them on its own stochastic path.
#pragma once

#include <cstddef>

#include "qc/gate.hpp"
#include "sv/state_vector.hpp"
#include "sv/sweep.hpp"

namespace svsim::sv {

/// What an execution of a plan (or sweep) actually did.
struct EngineStats {
  std::size_t sweeps = 0;             ///< blocked steps executed
  std::size_t blocked_gates = 0;      ///< gates applied on the blocked path
  std::size_t passthrough_gates = 0;  ///< gates applied by whole-state kernels
  std::size_t traversals = 0;         ///< state traversals performed

  double gates_per_traversal() const noexcept {
    return traversals == 0 ? 0.0
                           : static_cast<double>(blocked_gates +
                                                 passthrough_gates) /
                                 static_cast<double>(traversals);
  }
};

/// Applies `count` gates — all block-local for `block_qubits` — to the state
/// in one blocked traversal. Records one "sweep" tracer span when tracing.
template <typename T>
void run_sweep(StateVector<T>& state, const qc::Gate* gates, std::size_t count,
               unsigned block_qubits);

/// Executes a whole plan (unitary steps only; throws on MEASURE/RESET).
/// Equivalent to applying the plan's gates in order with apply_gate.
template <typename T>
EngineStats run_plan(StateVector<T>& state, const SweepPlan& plan);

extern template void run_sweep<float>(StateVector<float>&, const qc::Gate*,
                                      std::size_t, unsigned);
extern template void run_sweep<double>(StateVector<double>&, const qc::Gate*,
                                       std::size_t, unsigned);
extern template EngineStats run_plan<float>(StateVector<float>&,
                                            const SweepPlan&);
extern template EngineStats run_plan<double>(StateVector<double>&,
                                             const SweepPlan&);

}  // namespace svsim::sv
