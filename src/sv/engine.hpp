// Execution engine: runs an ExecutionPlan against a StateVector.
//
// The engine is a thin interpreter over the plan IR (sv/plan.hpp):
//
//  * LocalSweep phases are applied block-by-block: gates are prepared once
//    (coefficients pre-cast, kernels resolved through the dispatch table in
//    kernels.hpp), then each worker takes a contiguous range of aligned
//    2^block_qubits blocks — the same static partition the state's
//    first-touch initialization used, so on NUMA machines every worker
//    streams pages it owns — and runs the whole sweep over one block while
//    it is cache-resident. k gates cost ~1 traversal instead of k.
//  * DenseGate phases fall back to the whole-state kernels via apply_gate;
//    every gate records its tracer span and counts toward the stats (so
//    drift reports see blocked and unblocked runs alike).
//  * Exchange phases with moves_data perform the slot swaps on the full
//    state — exactly the data movement the pairwise rank exchange performs;
//    cost-only exchanges are skipped.
//  * MeasureFlush phases dispatch to the `measure` hook (the Simulator owns
//    the RNG and classical bits); executing them without a hook throws.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "obs/context.hpp"
#include "qc/gate.hpp"
#include "sv/plan.hpp"
#include "sv/state_vector.hpp"
#include "sv/sweep.hpp"

namespace svsim::sv {

/// What an execution of a plan (or sweep) actually did.
struct EngineStats {
  std::size_t sweeps = 0;             ///< blocked steps executed
  std::size_t blocked_gates = 0;      ///< gates applied on the blocked path
  std::size_t passthrough_gates = 0;  ///< gates applied by whole-state kernels
  std::size_t traversals = 0;         ///< state traversals performed
  std::size_t exchanges = 0;          ///< slot swaps applied for Exchange phases
  std::size_t measure_ops = 0;        ///< MEASURE/RESET dispatched to the hook
  std::uint64_t bytes_streamed = 0;   ///< estimated bytes moved (span labels)

  double gates_per_traversal() const noexcept {
    return traversals == 0 ? 0.0
                           : static_cast<double>(blocked_gates +
                                                 passthrough_gates) /
                                 static_cast<double>(traversals);
  }
};

/// Executor callbacks a front-end may supply. The engine itself is purely
/// unitary; anything stochastic (RNG, classical bits, noise channels) lives
/// behind these hooks so one executor serves ideal, noisy, and distributed
/// runs.
template <typename T>
struct PlanHooks {
  /// Handles one MEASURE/RESET gate. Required when the plan has
  /// MeasureFlush phases; run_plan throws otherwise.
  std::function<void(StateVector<T>&, const qc::Gate&)> measure;
  /// Called after each DenseGate application (noise channels). LocalSweep
  /// phases are only compiled when this is absent.
  std::function<void(StateVector<T>&, const qc::Gate&)> after_gate;
};

/// Batch-execution callbacks: the same contract as PlanHooks with the
/// trajectory index prepended, so each state in the batch draws from its
/// own RNG stream and records its own classical bits.
template <typename T>
struct BatchHooks {
  std::function<void(std::size_t traj, StateVector<T>&, const qc::Gate&)>
      measure;
  std::function<void(std::size_t traj, StateVector<T>&, const qc::Gate&)>
      after_gate;
};

/// Records a copy of every ExecutionPlan run_plan executes while the scope
/// is alive (in execution order). The plan-phase profiler (obs/profile.hpp)
/// records measured samples but cannot retain plans — obs sits below sv —
/// so callers that need the measured<->modeled join (CLI `run --profile`)
/// open this scope alongside the profiler and pair runs()[i] with plans()[i].
/// One scope at a time; opening a second throws.
class PlanCaptureScope {
 public:
  PlanCaptureScope();
  ~PlanCaptureScope();

  PlanCaptureScope(const PlanCaptureScope&) = delete;
  PlanCaptureScope& operator=(const PlanCaptureScope&) = delete;

  /// The open scope, or nullptr.
  static PlanCaptureScope* current() noexcept;
  /// Called by run_plan for every executed plan.
  void add(const ExecutionPlan& plan);

  std::vector<ExecutionPlan> plans() const;

 private:
  mutable std::mutex mutex_;
  std::vector<ExecutionPlan> plans_;
};

/// Applies `count` gates — all block-local for `block_qubits` — to the state
/// in one blocked traversal. Records one "sweep" tracer span when tracing.
/// Spans and counters resolve through `ctx`; the default context is the
/// process-wide singletons, so existing call sites are unchanged.
template <typename T>
void run_sweep(StateVector<T>& state, const qc::Gate* gates, std::size_t count,
               unsigned block_qubits,
               const ExecutionContext& ctx = ExecutionContext::global());

/// Executes a whole plan. Every phase kind records its tracer spans and
/// metric counters (resolved through `ctx`); MeasureFlush needs
/// hooks.measure.
template <typename T>
EngineStats run_plan(StateVector<T>& state, const ExecutionPlan& plan,
                     const PlanHooks<T>& hooks = {},
                     const ExecutionContext& ctx = ExecutionContext::global());

/// Executes one plan over a batch of same-width states — the shot-batching
/// hook the simulation service amortizes noise trajectories with. The plan
/// is walked ONCE for the whole batch: each LocalSweep's gates are prepared
/// (coefficients pre-cast, kernels resolved) a single time and applied to
/// every state, and each phase records a single tracer span labeled with
/// the batch's combined bytes, so per-trajectory bookkeeping cost drops
/// with the batch size. Stochastic work comes in through BatchHooks with
/// the batch-local trajectory index. Stats aggregate over the batch.
///
/// Unlike run_plan, the batch path does not emit plan-phase profiler
/// samples or PlanCaptureScope entries (a sample must describe one state's
/// traversal; profile single runs instead).
template <typename T>
EngineStats run_plan_batch(const std::vector<StateVector<T>*>& states,
                           const ExecutionPlan& plan,
                           const BatchHooks<T>& hooks = {},
                           const ExecutionContext& ctx =
                               ExecutionContext::global());

extern template void run_sweep<float>(StateVector<float>&, const qc::Gate*,
                                      std::size_t, unsigned,
                                      const ExecutionContext&);
extern template void run_sweep<double>(StateVector<double>&, const qc::Gate*,
                                       std::size_t, unsigned,
                                       const ExecutionContext&);
extern template EngineStats run_plan<float>(StateVector<float>&,
                                            const ExecutionPlan&,
                                            const PlanHooks<float>&,
                                            const ExecutionContext&);
extern template EngineStats run_plan<double>(StateVector<double>&,
                                             const ExecutionPlan&,
                                             const PlanHooks<double>&,
                                             const ExecutionContext&);
extern template EngineStats run_plan_batch<float>(
    const std::vector<StateVector<float>*>&, const ExecutionPlan&,
    const BatchHooks<float>&, const ExecutionContext&);
extern template EngineStats run_plan_batch<double>(
    const std::vector<StateVector<double>*>&, const ExecutionPlan&,
    const BatchHooks<double>&, const ExecutionContext&);

}  // namespace svsim::sv
