#include "sv/estimator.hpp"

#include "common/error.hpp"
#include "qc/grouping.hpp"

namespace svsim::sv {

template <typename T>
EstimateResult estimate_expectation(Simulator<T>& simulator,
                                    const qc::Circuit& circuit,
                                    const qc::PauliOperator& observable,
                                    std::size_t shots_per_group) {
  require(circuit.num_qubits() == observable.num_qubits(),
          "estimate_expectation: circuit/observable width mismatch");
  require(circuit.is_unitary(),
          "estimate_expectation: circuit must not contain measure/reset");
  require(shots_per_group > 0, "estimate_expectation: need shots");

  const auto groups = qc::group_qubitwise_commuting(observable);
  EstimateResult result;
  result.groups = groups.size();

  for (const auto& group : groups) {
    // Identity-only groups contribute their coefficients exactly.
    bool all_identity = true;
    for (const auto& term : group.terms)
      all_identity = all_identity && term.pauli.is_identity();
    if (all_identity) {
      for (const auto& term : group.terms) result.value += term.coefficient;
      continue;
    }

    qc::Circuit rotated = circuit;
    rotated.compose(
        qc::measurement_basis_circuit(group, circuit.num_qubits()));
    const auto counts = simulator.sample_counts(rotated, shots_per_group);
    result.total_shots += shots_per_group;

    for (const auto& term : group.terms) {
      if (term.pauli.is_identity()) {
        result.value += term.coefficient;
        continue;
      }
      // After the basis change the term acts as Z on its support.
      const qc::PauliString diag(term.pauli.num_qubits(), 0,
                                 term.pauli.x_mask() | term.pauli.z_mask());
      double mean = 0.0;
      for (const auto& [bits, count] : counts)
        mean += qc::diagonal_term_value(diag, bits) *
                static_cast<double>(count);
      mean /= static_cast<double>(shots_per_group);
      result.value += term.coefficient * mean;
    }
  }
  return result;
}

template EstimateResult estimate_expectation<float>(Simulator<float>&,
                                                    const qc::Circuit&,
                                                    const qc::PauliOperator&,
                                                    std::size_t);
template EstimateResult estimate_expectation<double>(Simulator<double>&,
                                                     const qc::Circuit&,
                                                     const qc::PauliOperator&,
                                                     std::size_t);

}  // namespace svsim::sv
