#include "sv/io.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace svsim::sv {

namespace {

constexpr char kMagic[8] = {'S', 'V', 'S', 'I', 'M', 'S', 'T', '1'};

struct Header {
  char magic[8];
  std::uint32_t element_bytes;  // 4 = float, 8 = double (per scalar)
  std::uint32_t num_qubits;
};

}  // namespace

template <typename T>
void save_state(const StateVector<T>& state, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  require(out.good(), "save_state: cannot open '" + path + "'");
  Header h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.element_bytes = sizeof(T);
  h.num_qubits = state.num_qubits();
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  out.write(reinterpret_cast<const char*>(state.data()),
            static_cast<std::streamsize>(state.size() *
                                         sizeof(std::complex<T>)));
  require(out.good(), "save_state: write failed for '" + path + "'");
}

template <typename T>
StateVector<T> load_state(const std::string& path, ThreadPool* pool) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "load_state: cannot open '" + path + "'");
  Header h{};
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  require(in.good() && std::memcmp(h.magic, kMagic, sizeof(kMagic)) == 0,
          "load_state: '" + path + "' is not an svsim state file");
  require(h.element_bytes == 4 || h.element_bytes == 8,
          "load_state: unsupported precision in '" + path + "'");
  require(h.num_qubits >= 1 && h.num_qubits <= 34,
          "load_state: invalid register size in '" + path + "'");

  StateVector<T> state(h.num_qubits, pool);
  const std::uint64_t count = state.size();
  if (h.element_bytes == sizeof(T)) {
    in.read(reinterpret_cast<char*>(state.data()),
            static_cast<std::streamsize>(count * sizeof(std::complex<T>)));
    require(in.good(), "load_state: truncated state in '" + path + "'");
    return state;
  }
  // Cross-precision load: stream-convert in chunks.
  if (h.element_bytes == 8) {
    std::vector<std::complex<double>> buffer(std::min<std::uint64_t>(
        count, 1u << 16));
    std::uint64_t done = 0;
    while (done < count) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(buffer.size(), count - done);
      in.read(reinterpret_cast<char*>(buffer.data()),
              static_cast<std::streamsize>(chunk *
                                           sizeof(std::complex<double>)));
      require(in.good(), "load_state: truncated state in '" + path + "'");
      for (std::uint64_t i = 0; i < chunk; ++i)
        state.data()[done + i] = {static_cast<T>(buffer[i].real()),
                                  static_cast<T>(buffer[i].imag())};
      done += chunk;
    }
  } else {
    std::vector<std::complex<float>> buffer(std::min<std::uint64_t>(
        count, 1u << 16));
    std::uint64_t done = 0;
    while (done < count) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(buffer.size(), count - done);
      in.read(reinterpret_cast<char*>(buffer.data()),
              static_cast<std::streamsize>(chunk *
                                           sizeof(std::complex<float>)));
      require(in.good(), "load_state: truncated state in '" + path + "'");
      for (std::uint64_t i = 0; i < chunk; ++i)
        state.data()[done + i] = {static_cast<T>(buffer[i].real()),
                                  static_cast<T>(buffer[i].imag())};
      done += chunk;
    }
  }
  return state;
}

template void save_state<float>(const StateVector<float>&,
                                const std::string&);
template void save_state<double>(const StateVector<double>&,
                                 const std::string&);
template StateVector<float> load_state<float>(const std::string&,
                                              ThreadPool*);
template StateVector<double> load_state<double>(const std::string&,
                                                ThreadPool*);

}  // namespace svsim::sv
