// Vector-length-agnostic SVE block kernels (ACLE), compiled only when
// the toolchain targets SVE (__ARM_FEATURE_SVE, e.g. -march=armv8.2-a+sve
// or an A64FX toolchain).
//
// The kernels are written against the scalable types, so one binary runs
// at any hardware vector length (128..2048 bits; 512 on A64FX). Every
// target qubit is handled by the same predicated loop: a pair run of
// length `run` complexes is 2*run adjacent scalars for both the lo and hi
// streams, and whilelt masks the tail — short low-target runs simply
// execute with partially-filled vectors, which is exactly the efficiency
// cliff the paper measures. Complex multiply uses FCMLA (rotate 0 + 90),
// which operates natively on interleaved re/im pairs; predicates stay
// complex-aligned because SVE vector lengths are multiples of 128 bits.

#include "sv/simd/backend_tables.hpp"

#if defined(__aarch64__) && defined(__ARM_FEATURE_SVE)
#define SVSIM_HAVE_SVE_KERNELS 1
#include <arm_sve.h>
#endif

namespace svsim::sv::simd::detail {

#if defined(SVSIM_HAVE_SVE_KERNELS)

namespace {

using ::svsim::sv::detail::for_pair_runs;

constexpr std::size_t idx(KernelClass c) { return static_cast<std::size_t>(c); }

// acc + a*b for interleaved complex lanes: FCMLA rot 0 accumulates
// re*re/re*im, rot 90 accumulates -im*im/im*re.
inline svfloat64_t cmla_d(svbool_t m, svfloat64_t acc, svfloat64_t a,
                          svfloat64_t b) {
  return svcmla_f64_x(m, svcmla_f64_x(m, acc, a, b, 0), a, b, 90);
}

inline svfloat32_t cmla_s(svbool_t m, svfloat32_t acc, svfloat32_t a,
                          svfloat32_t b) {
  return svcmla_f32_x(m, svcmla_f32_x(m, acc, a, b, 0), a, b, 90);
}

template <typename T>
void sve_hadamard(std::complex<T>* psi, unsigned nb,
                  const PreparedGate<T>& pg);

template <>
void sve_hadamard<double>(std::complex<double>* psi, unsigned nb,
                          const PreparedGate<double>& pg) {
  const svfloat64_t vs = svdup_f64(0.70710678118654752440);
  double* p = reinterpret_cast<double*>(psi);
  const unsigned t = pg.target;
  const std::uint64_t stride = pow2(t);
  for_pair_runs(0, pow2(nb - 1), t, [&](std::uint64_t base, std::uint64_t run) {
    double* lo = p + 2 * base;
    double* hi = lo + 2 * stride;
    const std::int64_t len = static_cast<std::int64_t>(2 * run);
    for (std::int64_t j = 0; j < len;
         j += static_cast<std::int64_t>(svcntd())) {
      const svbool_t m = svwhilelt_b64(j, len);
      const svfloat64_t a0 = svld1_f64(m, lo + j);
      const svfloat64_t a1 = svld1_f64(m, hi + j);
      svst1_f64(m, lo + j, svmul_f64_x(m, svadd_f64_x(m, a0, a1), vs));
      svst1_f64(m, hi + j, svmul_f64_x(m, svsub_f64_x(m, a0, a1), vs));
    }
  });
}

template <>
void sve_hadamard<float>(std::complex<float>* psi, unsigned nb,
                         const PreparedGate<float>& pg) {
  const svfloat32_t vs =
      svdup_f32(static_cast<float>(0.70710678118654752440));
  float* p = reinterpret_cast<float*>(psi);
  const unsigned t = pg.target;
  const std::uint64_t stride = pow2(t);
  for_pair_runs(0, pow2(nb - 1), t, [&](std::uint64_t base, std::uint64_t run) {
    float* lo = p + 2 * base;
    float* hi = lo + 2 * stride;
    const std::int32_t len = static_cast<std::int32_t>(2 * run);
    for (std::int32_t j = 0; j < len;
         j += static_cast<std::int32_t>(svcntw())) {
      const svbool_t m = svwhilelt_b32(j, len);
      const svfloat32_t a0 = svld1_f32(m, lo + j);
      const svfloat32_t a1 = svld1_f32(m, hi + j);
      svst1_f32(m, lo + j, svmul_f32_x(m, svadd_f32_x(m, a0, a1), vs));
      svst1_f32(m, hi + j, svmul_f32_x(m, svsub_f32_x(m, a0, a1), vs));
    }
  });
}

template <typename T>
void sve_diag1(std::complex<T>* psi, unsigned nb, const PreparedGate<T>& pg);

template <>
void sve_diag1<double>(std::complex<double>* psi, unsigned nb,
                       const PreparedGate<double>& pg) {
  const svfloat64_t f0 = svdupq_n_f64(pg.coeff[0].real(), pg.coeff[0].imag());
  const svfloat64_t f1 = svdupq_n_f64(pg.coeff[1].real(), pg.coeff[1].imag());
  const bool skip_lower = (pg.coeff[0] == std::complex<double>{1.0, 0.0});
  double* p = reinterpret_cast<double*>(psi);
  const unsigned t = pg.target;
  const std::uint64_t stride = pow2(t);
  for_pair_runs(0, pow2(nb - 1), t, [&](std::uint64_t base, std::uint64_t run) {
    double* lo = p + 2 * base;
    double* hi = lo + 2 * stride;
    const std::int64_t len = static_cast<std::int64_t>(2 * run);
    for (std::int64_t j = 0; j < len;
         j += static_cast<std::int64_t>(svcntd())) {
      const svbool_t m = svwhilelt_b64(j, len);
      const svfloat64_t zero = svdup_f64(0.0);
      if (!skip_lower)
        svst1_f64(m, lo + j, cmla_d(m, zero, svld1_f64(m, lo + j), f0));
      svst1_f64(m, hi + j, cmla_d(m, zero, svld1_f64(m, hi + j), f1));
    }
  });
}

template <>
void sve_diag1<float>(std::complex<float>* psi, unsigned nb,
                      const PreparedGate<float>& pg) {
  const svfloat32_t f0 = svdupq_n_f32(pg.coeff[0].real(), pg.coeff[0].imag(),
                                      pg.coeff[0].real(), pg.coeff[0].imag());
  const svfloat32_t f1 = svdupq_n_f32(pg.coeff[1].real(), pg.coeff[1].imag(),
                                      pg.coeff[1].real(), pg.coeff[1].imag());
  const bool skip_lower = (pg.coeff[0] == std::complex<float>{1.0f, 0.0f});
  float* p = reinterpret_cast<float*>(psi);
  const unsigned t = pg.target;
  const std::uint64_t stride = pow2(t);
  for_pair_runs(0, pow2(nb - 1), t, [&](std::uint64_t base, std::uint64_t run) {
    float* lo = p + 2 * base;
    float* hi = lo + 2 * stride;
    const std::int32_t len = static_cast<std::int32_t>(2 * run);
    for (std::int32_t j = 0; j < len;
         j += static_cast<std::int32_t>(svcntw())) {
      const svbool_t m = svwhilelt_b32(j, len);
      const svfloat32_t zero = svdup_f32(0.0f);
      if (!skip_lower)
        svst1_f32(m, lo + j, cmla_s(m, zero, svld1_f32(m, lo + j), f0));
      svst1_f32(m, hi + j, cmla_s(m, zero, svld1_f32(m, hi + j), f1));
    }
  });
}

template <typename T>
void sve_matrix1(std::complex<T>* psi, unsigned nb, const PreparedGate<T>& pg);

template <>
void sve_matrix1<double>(std::complex<double>* psi, unsigned nb,
                         const PreparedGate<double>& pg) {
  const svfloat64_t m00 = svdupq_n_f64(pg.coeff[0].real(), pg.coeff[0].imag());
  const svfloat64_t m01 = svdupq_n_f64(pg.coeff[1].real(), pg.coeff[1].imag());
  const svfloat64_t m10 = svdupq_n_f64(pg.coeff[2].real(), pg.coeff[2].imag());
  const svfloat64_t m11 = svdupq_n_f64(pg.coeff[3].real(), pg.coeff[3].imag());
  double* p = reinterpret_cast<double*>(psi);
  const unsigned t = pg.target;
  const std::uint64_t stride = pow2(t);
  for_pair_runs(0, pow2(nb - 1), t, [&](std::uint64_t base, std::uint64_t run) {
    double* lo = p + 2 * base;
    double* hi = lo + 2 * stride;
    const std::int64_t len = static_cast<std::int64_t>(2 * run);
    for (std::int64_t j = 0; j < len;
         j += static_cast<std::int64_t>(svcntd())) {
      const svbool_t m = svwhilelt_b64(j, len);
      const svfloat64_t zero = svdup_f64(0.0);
      const svfloat64_t a0 = svld1_f64(m, lo + j);
      const svfloat64_t a1 = svld1_f64(m, hi + j);
      svst1_f64(m, lo + j, cmla_d(m, cmla_d(m, zero, a0, m00), a1, m01));
      svst1_f64(m, hi + j, cmla_d(m, cmla_d(m, zero, a0, m10), a1, m11));
    }
  });
}

template <>
void sve_matrix1<float>(std::complex<float>* psi, unsigned nb,
                        const PreparedGate<float>& pg) {
  const svfloat32_t m00 = svdupq_n_f32(pg.coeff[0].real(), pg.coeff[0].imag(),
                                       pg.coeff[0].real(), pg.coeff[0].imag());
  const svfloat32_t m01 = svdupq_n_f32(pg.coeff[1].real(), pg.coeff[1].imag(),
                                       pg.coeff[1].real(), pg.coeff[1].imag());
  const svfloat32_t m10 = svdupq_n_f32(pg.coeff[2].real(), pg.coeff[2].imag(),
                                       pg.coeff[2].real(), pg.coeff[2].imag());
  const svfloat32_t m11 = svdupq_n_f32(pg.coeff[3].real(), pg.coeff[3].imag(),
                                       pg.coeff[3].real(), pg.coeff[3].imag());
  float* p = reinterpret_cast<float*>(psi);
  const unsigned t = pg.target;
  const std::uint64_t stride = pow2(t);
  for_pair_runs(0, pow2(nb - 1), t, [&](std::uint64_t base, std::uint64_t run) {
    float* lo = p + 2 * base;
    float* hi = lo + 2 * stride;
    const std::int32_t len = static_cast<std::int32_t>(2 * run);
    for (std::int32_t j = 0; j < len;
         j += static_cast<std::int32_t>(svcntw())) {
      const svbool_t m = svwhilelt_b32(j, len);
      const svfloat32_t zero = svdup_f32(0.0f);
      const svfloat32_t a0 = svld1_f32(m, lo + j);
      const svfloat32_t a1 = svld1_f32(m, hi + j);
      svst1_f32(m, lo + j, cmla_s(m, cmla_s(m, zero, a0, m00), a1, m01));
      svst1_f32(m, hi + j, cmla_s(m, cmla_s(m, zero, a0, m10), a1, m11));
    }
  });
}

}  // namespace

const KernelOverrides& sve_overrides() {
  static const KernelOverrides ov = [] {
    KernelOverrides o;
    o.compiled = true;
    o.vector_bits = static_cast<unsigned>(svcntb() * 8);  // runtime VL
    o.f64[idx(KernelClass::Hadamard)] = &sve_hadamard<double>;
    o.f64[idx(KernelClass::Diag1)] = &sve_diag1<double>;
    o.f64[idx(KernelClass::Matrix1)] = &sve_matrix1<double>;
    o.f32[idx(KernelClass::Hadamard)] = &sve_hadamard<float>;
    o.f32[idx(KernelClass::Diag1)] = &sve_diag1<float>;
    o.f32[idx(KernelClass::Matrix1)] = &sve_matrix1<float>;
    return o;
  }();
  return ov;
}

#else  // !SVSIM_HAVE_SVE_KERNELS

const KernelOverrides& sve_overrides() {
  static const KernelOverrides ov{};
  return ov;
}

#endif

}  // namespace svsim::sv::simd::detail
