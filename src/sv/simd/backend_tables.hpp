#pragma once

// Internal contract between the backend kernel translation units and the
// registry (sv/simd/registry.cpp). Each backend TU returns a sparse
// override set: null entries fall back to the scalar reference table.
// When the ISA is not compiled in (wrong architecture or missing
// compiler flags), the TU still links but reports compiled = false.

#include <array>

#include "sv/kernels.hpp"

namespace svsim::sv::simd::detail {

struct KernelOverrides {
  bool compiled = false;
  /// Hardware vector width of the compiled kernels; 0 when !compiled.
  /// For SVE this is probed at runtime (vector-length agnostic code).
  unsigned vector_bits = 0;
  std::array<BlockKernelFn<float>, kNumKernelClasses> f32{};
  std::array<BlockKernelFn<double>, kNumKernelClasses> f64{};
};

const KernelOverrides& generic_overrides();
const KernelOverrides& avx2_overrides();
const KernelOverrides& neon_overrides();
const KernelOverrides& sve_overrides();

}  // namespace svsim::sv::simd::detail
