// AArch64 AdvSIMD (NEON) block kernels: 128-bit vectors, i.e. 2
// complex<float> or 1 complex<double> per register.
//
// f32 covers every target: unit-stride runs for target >= 1 and an
// in-register vext partner swap for target 0 (the low-target permute
// case the paper studies). f64 vectors hold exactly one complex, so
// every run is trivially vectorizable at any target. Complex multiply is
// one rev64 (f32) / ext (f64) swizzle plus mul + fma with the
// subtract-sign folded into the imaginary constant.

#include "sv/simd/backend_tables.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)
#define SVSIM_HAVE_NEON_KERNELS 1
#include <arm_neon.h>
#endif

namespace svsim::sv::simd::detail {

#if defined(SVSIM_HAVE_NEON_KERNELS)

namespace {

namespace blk = ::svsim::sv::detail::blk;
using ::svsim::sv::detail::for_pair_runs;

constexpr std::size_t idx(KernelClass c) { return static_cast<std::size_t>(c); }

// ---- float: 2 complexes per float32x4_t ----------------------------------

struct CconstS {
  float32x4_t re, im_s;  // im_s carries the -,+ fmaddsub signs
};

inline CconstS cdup_s(std::complex<float> x) {
  const float re[4] = {x.real(), x.real(), x.real(), x.real()};
  const float im[4] = {-x.imag(), x.imag(), -x.imag(), x.imag()};
  return {vld1q_f32(re), vld1q_f32(im)};
}

inline CconstS cpair_s(std::complex<float> x, std::complex<float> y) {
  const float re[4] = {x.real(), x.real(), y.real(), y.real()};
  const float im[4] = {-x.imag(), x.imag(), -y.imag(), y.imag()};
  return {vld1q_f32(re), vld1q_f32(im)};
}

inline float32x4_t cmul_s(float32x4_t a, const CconstS& b) {
  return vfmaq_f32(vmulq_f32(a, b.re), vrev64q_f32(a), b.im_s);
}

void hadamard_s(std::complex<float>* psi, unsigned nb,
                const PreparedGate<float>& pg) {
  const float32x4_t vs =
      vdupq_n_f32(static_cast<float>(0.70710678118654752440));
  float* p = reinterpret_cast<float*>(psi);
  const std::uint64_t size = pow2(nb);
  const unsigned t = pg.target;
  if (t == 0) {
    for (std::uint64_t i = 0; i < size; i += 2) {
      const float32x4_t v = vld1q_f32(p + 2 * i);       // [lo, hi]
      const float32x4_t w = vextq_f32(v, v, 2);         // [hi, lo]
      const float32x4_t plus = vmulq_f32(vaddq_f32(v, w), vs);
      const float32x4_t minus = vmulq_f32(vsubq_f32(w, v), vs);
      // keep lanes 0,1 from plus (lo') and 2,3 from minus (hi')
      vst1q_f32(p + 2 * i,
                vcombine_f32(vget_low_f32(plus), vget_high_f32(minus)));
    }
    return;
  }
  const std::uint64_t stride = pow2(t);
  for (std::uint64_t base = 0; base < size; base += 2 * stride) {
    float* lo = p + 2 * base;
    float* hi = lo + 2 * stride;
    for (std::uint64_t j = 0; j < 2 * stride; j += 4) {
      const float32x4_t a0 = vld1q_f32(lo + j);
      const float32x4_t a1 = vld1q_f32(hi + j);
      vst1q_f32(lo + j, vmulq_f32(vaddq_f32(a0, a1), vs));
      vst1q_f32(hi + j, vmulq_f32(vsubq_f32(a0, a1), vs));
    }
  }
}

void diag1_s(std::complex<float>* psi, unsigned nb,
             const PreparedGate<float>& pg) {
  const std::complex<float> f0 = pg.coeff[0], f1 = pg.coeff[1];
  float* p = reinterpret_cast<float*>(psi);
  const std::uint64_t size = pow2(nb);
  const unsigned t = pg.target;
  if (t == 0) {
    const CconstS c01 = cpair_s(f0, f1);
    for (std::uint64_t i = 0; i < size; i += 2)
      vst1q_f32(p + 2 * i, cmul_s(vld1q_f32(p + 2 * i), c01));
    return;
  }
  const bool skip_lower = (f0 == std::complex<float>{1.0f, 0.0f});
  const CconstS c0 = cdup_s(f0), c1 = cdup_s(f1);
  const std::uint64_t stride = pow2(t);
  for (std::uint64_t base = 0; base < size; base += 2 * stride) {
    float* lo = p + 2 * base;
    float* hi = lo + 2 * stride;
    for (std::uint64_t j = 0; j < 2 * stride; j += 4) {
      if (!skip_lower) vst1q_f32(lo + j, cmul_s(vld1q_f32(lo + j), c0));
      vst1q_f32(hi + j, cmul_s(vld1q_f32(hi + j), c1));
    }
  }
}

void matrix1_s(std::complex<float>* psi, unsigned nb,
               const PreparedGate<float>& pg) {
  const std::complex<float> m00 = pg.coeff[0], m01 = pg.coeff[1];
  const std::complex<float> m10 = pg.coeff[2], m11 = pg.coeff[3];
  float* p = reinterpret_cast<float*>(psi);
  const std::uint64_t size = pow2(nb);
  const unsigned t = pg.target;
  if (t == 0) {
    const CconstS c1 = cpair_s(m00, m11);
    const CconstS c2 = cpair_s(m01, m10);
    for (std::uint64_t i = 0; i < size; i += 2) {
      const float32x4_t v = vld1q_f32(p + 2 * i);
      const float32x4_t w = vextq_f32(v, v, 2);
      vst1q_f32(p + 2 * i, vaddq_f32(cmul_s(v, c1), cmul_s(w, c2)));
    }
    return;
  }
  const CconstS c00 = cdup_s(m00), c01 = cdup_s(m01);
  const CconstS c10 = cdup_s(m10), c11 = cdup_s(m11);
  const std::uint64_t stride = pow2(t);
  for (std::uint64_t base = 0; base < size; base += 2 * stride) {
    float* lo = p + 2 * base;
    float* hi = lo + 2 * stride;
    for (std::uint64_t j = 0; j < 2 * stride; j += 4) {
      const float32x4_t a0 = vld1q_f32(lo + j);
      const float32x4_t a1 = vld1q_f32(hi + j);
      vst1q_f32(lo + j, vaddq_f32(cmul_s(a0, c00), cmul_s(a1, c01)));
      vst1q_f32(hi + j, vaddq_f32(cmul_s(a0, c10), cmul_s(a1, c11)));
    }
  }
}

// ---- double: 1 complex per float64x2_t -----------------------------------

struct CconstD {
  float64x2_t re, im_s;
};

inline CconstD cdup_d(std::complex<double> x) {
  const double re[2] = {x.real(), x.real()};
  const double im[2] = {-x.imag(), x.imag()};
  return {vld1q_f64(re), vld1q_f64(im)};
}

inline float64x2_t cmul_d(float64x2_t a, const CconstD& b) {
  return vfmaq_f64(vmulq_f64(a, b.re), vextq_f64(a, a, 1), b.im_s);
}

void hadamard_d(std::complex<double>* psi, unsigned nb,
                const PreparedGate<double>& pg) {
  const float64x2_t vs = vdupq_n_f64(0.70710678118654752440);
  double* p = reinterpret_cast<double*>(psi);
  const unsigned t = pg.target;
  const std::uint64_t stride = pow2(t);
  for_pair_runs(0, pow2(nb - 1), t,
                [&](std::uint64_t base, std::uint64_t run) {
                  double* lo = p + 2 * base;
                  double* hi = lo + 2 * stride;
                  for (std::uint64_t j = 0; j < 2 * run; j += 2) {
                    const float64x2_t a0 = vld1q_f64(lo + j);
                    const float64x2_t a1 = vld1q_f64(hi + j);
                    vst1q_f64(lo + j, vmulq_f64(vaddq_f64(a0, a1), vs));
                    vst1q_f64(hi + j, vmulq_f64(vsubq_f64(a0, a1), vs));
                  }
                });
}

void diag1_d(std::complex<double>* psi, unsigned nb,
             const PreparedGate<double>& pg) {
  const bool skip_lower =
      (pg.coeff[0] == std::complex<double>{1.0, 0.0});
  const CconstD c0 = cdup_d(pg.coeff[0]), c1 = cdup_d(pg.coeff[1]);
  double* p = reinterpret_cast<double*>(psi);
  const unsigned t = pg.target;
  const std::uint64_t stride = pow2(t);
  for_pair_runs(0, pow2(nb - 1), t,
                [&](std::uint64_t base, std::uint64_t run) {
                  double* lo = p + 2 * base;
                  double* hi = lo + 2 * stride;
                  for (std::uint64_t j = 0; j < 2 * run; j += 2) {
                    if (!skip_lower)
                      vst1q_f64(lo + j, cmul_d(vld1q_f64(lo + j), c0));
                    vst1q_f64(hi + j, cmul_d(vld1q_f64(hi + j), c1));
                  }
                });
}

void matrix1_d(std::complex<double>* psi, unsigned nb,
               const PreparedGate<double>& pg) {
  const CconstD c00 = cdup_d(pg.coeff[0]), c01 = cdup_d(pg.coeff[1]);
  const CconstD c10 = cdup_d(pg.coeff[2]), c11 = cdup_d(pg.coeff[3]);
  double* p = reinterpret_cast<double*>(psi);
  const unsigned t = pg.target;
  const std::uint64_t stride = pow2(t);
  for_pair_runs(0, pow2(nb - 1), t,
                [&](std::uint64_t base, std::uint64_t run) {
                  double* lo = p + 2 * base;
                  double* hi = lo + 2 * stride;
                  for (std::uint64_t j = 0; j < 2 * run; j += 2) {
                    const float64x2_t a0 = vld1q_f64(lo + j);
                    const float64x2_t a1 = vld1q_f64(hi + j);
                    vst1q_f64(lo + j,
                              vaddq_f64(cmul_d(a0, c00), cmul_d(a1, c01)));
                    vst1q_f64(hi + j,
                              vaddq_f64(cmul_d(a0, c10), cmul_d(a1, c11)));
                  }
                });
}

}  // namespace

const KernelOverrides& neon_overrides() {
  static const KernelOverrides ov = [] {
    KernelOverrides o;
    o.compiled = true;
    o.vector_bits = 128;
    o.f32[idx(KernelClass::Hadamard)] = &hadamard_s;
    o.f32[idx(KernelClass::Diag1)] = &diag1_s;
    o.f32[idx(KernelClass::Matrix1)] = &matrix1_s;
    o.f64[idx(KernelClass::Hadamard)] = &hadamard_d;
    o.f64[idx(KernelClass::Diag1)] = &diag1_d;
    o.f64[idx(KernelClass::Matrix1)] = &matrix1_d;
    return o;
  }();
  return ov;
}

#else  // !SVSIM_HAVE_NEON_KERNELS

const KernelOverrides& neon_overrides() {
  static const KernelOverrides ov{};
  return ov;
}

#endif

}  // namespace svsim::sv::simd::detail
