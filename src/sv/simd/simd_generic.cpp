// Portable "generic vector" backend: GCC/Clang vector extensions over
// 256-bit logical vectors (lowered to whatever the target provides).
//
// This tier vectorizes the unit-stride runs of Hadamard, Diag1, and
// Matrix1 (target high enough that a run fills whole vectors) and falls
// back to the scalar reference for low targets — the in-register permute
// games are left to the ISA-specific backends. Complex multiply folds the
// fmaddsub sign into a premultiplied imaginary constant, so the inner
// loop is one shuffle, two multiplies, and one add per vector.

#include "sv/simd/backend_tables.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define SVSIM_HAVE_GENERIC_KERNELS 1
#endif

namespace svsim::sv::simd::detail {

#if defined(SVSIM_HAVE_GENERIC_KERNELS)

namespace {

namespace blk = ::svsim::sv::detail::blk;

constexpr std::size_t idx(KernelClass c) { return static_cast<std::size_t>(c); }

using VD = double __attribute__((vector_size(32)));  // 2 complex<double>
using VS = float __attribute__((vector_size(32)));   // 4 complex<float>

template <typename T>
struct VecOf;
template <>
struct VecOf<double> {
  using V = VD;
};
template <>
struct VecOf<float> {
  using V = VS;
};

inline VD swap_ri(VD a) { return __builtin_shufflevector(a, a, 1, 0, 3, 2); }
inline VS swap_ri(VS a) {
  return __builtin_shufflevector(a, a, 1, 0, 3, 2, 5, 4, 7, 6);
}

template <typename V, typename T>
inline V splat(T x) {
  V v{};
  for (unsigned i = 0; i < sizeof(V) / sizeof(T); ++i) v[i] = x;
  return v;
}

// Complex constant split for the one-shuffle multiply: re broadcast plus
// the imaginary part with the subtract-on-even-lanes sign folded in.
template <typename V, typename T>
struct Cconst {
  V re, im_s;
};

template <typename V, typename T>
inline Cconst<V, T> csplit(std::complex<T> c) {
  Cconst<V, T> out;
  for (unsigned i = 0; i < sizeof(V) / sizeof(T); i += 2) {
    out.re[i] = c.real();
    out.re[i + 1] = c.real();
    out.im_s[i] = -c.imag();
    out.im_s[i + 1] = c.imag();
  }
  return out;
}

template <typename V, typename T>
inline V cmul(V a, const Cconst<V, T>& b) {
  return a * b.re + swap_ri(a) * b.im_s;
}

template <typename V, typename T>
inline V vload(const T* p) {
  V v;
  __builtin_memcpy(&v, p, sizeof(V));
  return v;
}

template <typename V, typename T>
inline void vstore(T* p, V v) {
  __builtin_memcpy(p, &v, sizeof(V));
}

template <typename T>
void g_hadamard(std::complex<T>* psi, unsigned nb, const PreparedGate<T>& pg) {
  using V = typename VecOf<T>::V;
  constexpr std::uint64_t kScalars = sizeof(V) / sizeof(T);
  const unsigned t = pg.target;
  const std::uint64_t stride = pow2(t);
  if (2 * stride < kScalars) {
    blk::bk_hadamard<T>(psi, nb, pg);
    return;
  }
  const V vs = splat<V>(static_cast<T>(0.70710678118654752440));
  T* p = reinterpret_cast<T*>(psi);
  const std::uint64_t size = pow2(nb);
  for (std::uint64_t base = 0; base < size; base += 2 * stride) {
    T* lo = p + 2 * base;
    T* hi = lo + 2 * stride;
    for (std::uint64_t j = 0; j < 2 * stride; j += kScalars) {
      const V a0 = vload<V>(lo + j);
      const V a1 = vload<V>(hi + j);
      vstore(lo + j, (a0 + a1) * vs);
      vstore(hi + j, (a0 - a1) * vs);
    }
  }
}

template <typename T>
void g_diag1(std::complex<T>* psi, unsigned nb, const PreparedGate<T>& pg) {
  using V = typename VecOf<T>::V;
  constexpr std::uint64_t kScalars = sizeof(V) / sizeof(T);
  const unsigned t = pg.target;
  const std::uint64_t stride = pow2(t);
  if (2 * stride < kScalars) {
    blk::bk_diag1<T>(psi, nb, pg);
    return;
  }
  const bool skip_lower = (pg.coeff[0] == std::complex<T>{T{1}, T{0}});
  const Cconst<V, T> c0 = csplit<V>(pg.coeff[0]);
  const Cconst<V, T> c1 = csplit<V>(pg.coeff[1]);
  T* p = reinterpret_cast<T*>(psi);
  const std::uint64_t size = pow2(nb);
  for (std::uint64_t base = 0; base < size; base += 2 * stride) {
    T* lo = p + 2 * base;
    T* hi = lo + 2 * stride;
    for (std::uint64_t j = 0; j < 2 * stride; j += kScalars) {
      if (!skip_lower) vstore(lo + j, cmul(vload<V>(lo + j), c0));
      vstore(hi + j, cmul(vload<V>(hi + j), c1));
    }
  }
}

template <typename T>
void g_matrix1(std::complex<T>* psi, unsigned nb, const PreparedGate<T>& pg) {
  using V = typename VecOf<T>::V;
  constexpr std::uint64_t kScalars = sizeof(V) / sizeof(T);
  const unsigned t = pg.target;
  const std::uint64_t stride = pow2(t);
  if (2 * stride < kScalars) {
    blk::bk_matrix1<T>(psi, nb, pg);
    return;
  }
  const Cconst<V, T> c00 = csplit<V>(pg.coeff[0]);
  const Cconst<V, T> c01 = csplit<V>(pg.coeff[1]);
  const Cconst<V, T> c10 = csplit<V>(pg.coeff[2]);
  const Cconst<V, T> c11 = csplit<V>(pg.coeff[3]);
  T* p = reinterpret_cast<T*>(psi);
  const std::uint64_t size = pow2(nb);
  for (std::uint64_t base = 0; base < size; base += 2 * stride) {
    T* lo = p + 2 * base;
    T* hi = lo + 2 * stride;
    for (std::uint64_t j = 0; j < 2 * stride; j += kScalars) {
      const V a0 = vload<V>(lo + j);
      const V a1 = vload<V>(hi + j);
      vstore(lo + j, cmul(a0, c00) + cmul(a1, c01));
      vstore(hi + j, cmul(a0, c10) + cmul(a1, c11));
    }
  }
}

}  // namespace

const KernelOverrides& generic_overrides() {
  static const KernelOverrides ov = [] {
    KernelOverrides o;
    o.compiled = true;
    o.vector_bits = 256;
    o.f64[idx(KernelClass::Hadamard)] = &g_hadamard<double>;
    o.f64[idx(KernelClass::Diag1)] = &g_diag1<double>;
    o.f64[idx(KernelClass::Matrix1)] = &g_matrix1<double>;
    o.f32[idx(KernelClass::Hadamard)] = &g_hadamard<float>;
    o.f32[idx(KernelClass::Diag1)] = &g_diag1<float>;
    o.f32[idx(KernelClass::Matrix1)] = &g_matrix1<float>;
    return o;
  }();
  return ov;
}

#else  // !SVSIM_HAVE_GENERIC_KERNELS

const KernelOverrides& generic_overrides() {
  static const KernelOverrides ov{};
  return ov;
}

#endif

}  // namespace svsim::sv::simd::detail
