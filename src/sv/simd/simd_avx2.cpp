// AVX2+FMA block kernels: 256-bit vectors over interleaved complex
// amplitudes (2 complex<double> or 4 complex<float> per register).
//
// The low-target cases — the pair partner sits inside the vector — are
// handled with in-register permutes instead of scalar fallback: this is
// exactly the permute strategy the paper analyzes for SVE on A64FX,
// transplanted to AVX2. target >= lanes runs are unit-stride streams.
// Complex multiply uses the movedup/permute + fmaddsub idiom, so results
// can differ from the scalar reference by FMA contraction (<= a few ulps
// per gate); Hadamard keeps the scalar operation order and stays exact.
//
// Compiled only when the TU is built with -mavx2 -mfma (see
// src/sv/CMakeLists.txt); otherwise this file still links and reports
// compiled = false.

#include "sv/simd/backend_tables.hpp"

#if defined(__x86_64__) && defined(__AVX2__) && defined(__FMA__)
#define SVSIM_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#endif

namespace svsim::sv::simd::detail {

#if defined(SVSIM_HAVE_AVX2_KERNELS)

namespace {

namespace blk = ::svsim::sv::detail::blk;

constexpr std::size_t idx(KernelClass c) { return static_cast<std::size_t>(c); }

// ---- double: 2 complexes per __m256d -------------------------------------

// A complex constant pre-split into re/im broadcasts so the per-element
// multiply is one permute + one mul + one fmaddsub.
struct CconstD {
  __m256d re, im;
};

inline CconstD cdup_d(std::complex<double> x) {
  return {_mm256_set1_pd(x.real()), _mm256_set1_pd(x.imag())};
}

// Per-complex-lane constants [x, y] (lane 0 gets x, lane 1 gets y).
inline CconstD cpair_d(std::complex<double> x, std::complex<double> y) {
  return {_mm256_setr_pd(x.real(), x.real(), y.real(), y.real()),
          _mm256_setr_pd(x.imag(), x.imag(), y.imag(), y.imag())};
}

inline __m256d cmul_d(__m256d a, const CconstD& b) {
  const __m256d a_sw = _mm256_permute_pd(a, 0x5);  // swap re<->im per complex
  return _mm256_fmaddsub_pd(a, b.re, _mm256_mul_pd(a_sw, b.im));
}

void hadamard_d(std::complex<double>* psi, unsigned nb,
                const PreparedGate<double>& pg) {
  const __m256d vs = _mm256_set1_pd(0.70710678118654752440);
  double* p = reinterpret_cast<double*>(psi);
  const std::uint64_t size = pow2(nb);
  const unsigned t = pg.target;
  if (t == 0) {
    // Partner is the adjacent complex: swap the 128-bit halves.
    for (std::uint64_t i = 0; i < size; i += 2) {
      const __m256d v = _mm256_loadu_pd(p + 2 * i);
      const __m256d w = _mm256_permute2f128_pd(v, v, 0x01);
      const __m256d plus = _mm256_mul_pd(_mm256_add_pd(v, w), vs);
      const __m256d minus = _mm256_mul_pd(_mm256_sub_pd(w, v), vs);
      _mm256_storeu_pd(p + 2 * i, _mm256_blend_pd(plus, minus, 0xC));
    }
    return;
  }
  const std::uint64_t stride = pow2(t);
  for (std::uint64_t base = 0; base < size; base += 2 * stride) {
    double* lo = p + 2 * base;
    double* hi = lo + 2 * stride;
    for (std::uint64_t j = 0; j < 2 * stride; j += 4) {
      const __m256d a0 = _mm256_loadu_pd(lo + j);
      const __m256d a1 = _mm256_loadu_pd(hi + j);
      _mm256_storeu_pd(lo + j, _mm256_mul_pd(_mm256_add_pd(a0, a1), vs));
      _mm256_storeu_pd(hi + j, _mm256_mul_pd(_mm256_sub_pd(a0, a1), vs));
    }
  }
}

void diag1_d(std::complex<double>* psi, unsigned nb,
             const PreparedGate<double>& pg) {
  const std::complex<double> f0 = pg.coeff[0], f1 = pg.coeff[1];
  double* p = reinterpret_cast<double*>(psi);
  const std::uint64_t size = pow2(nb);
  const unsigned t = pg.target;
  if (t == 0) {
    // lo/hi alternate within the vector: one strided-free pass.
    const CconstD c01 = cpair_d(f0, f1);
    for (std::uint64_t i = 0; i < size; i += 2)
      _mm256_storeu_pd(p + 2 * i, cmul_d(_mm256_loadu_pd(p + 2 * i), c01));
    return;
  }
  const bool skip_lower = (f0 == std::complex<double>{1.0, 0.0});
  const CconstD c0 = cdup_d(f0), c1 = cdup_d(f1);
  const std::uint64_t stride = pow2(t);
  for (std::uint64_t base = 0; base < size; base += 2 * stride) {
    double* lo = p + 2 * base;
    double* hi = lo + 2 * stride;
    for (std::uint64_t j = 0; j < 2 * stride; j += 4) {
      if (!skip_lower)
        _mm256_storeu_pd(lo + j, cmul_d(_mm256_loadu_pd(lo + j), c0));
      _mm256_storeu_pd(hi + j, cmul_d(_mm256_loadu_pd(hi + j), c1));
    }
  }
}

void matrix1_d(std::complex<double>* psi, unsigned nb,
               const PreparedGate<double>& pg) {
  const std::complex<double> m00 = pg.coeff[0], m01 = pg.coeff[1];
  const std::complex<double> m10 = pg.coeff[2], m11 = pg.coeff[3];
  double* p = reinterpret_cast<double*>(psi);
  const std::uint64_t size = pow2(nb);
  const unsigned t = pg.target;
  if (t == 0) {
    // v holds [a0, a1]; the swapped vector supplies the cross terms.
    const CconstD c1 = cpair_d(m00, m11);
    const CconstD c2 = cpair_d(m01, m10);
    for (std::uint64_t i = 0; i < size; i += 2) {
      const __m256d v = _mm256_loadu_pd(p + 2 * i);
      const __m256d w = _mm256_permute2f128_pd(v, v, 0x01);
      _mm256_storeu_pd(p + 2 * i, _mm256_add_pd(cmul_d(v, c1), cmul_d(w, c2)));
    }
    return;
  }
  const CconstD c00 = cdup_d(m00), c01 = cdup_d(m01);
  const CconstD c10 = cdup_d(m10), c11 = cdup_d(m11);
  const std::uint64_t stride = pow2(t);
  for (std::uint64_t base = 0; base < size; base += 2 * stride) {
    double* lo = p + 2 * base;
    double* hi = lo + 2 * stride;
    for (std::uint64_t j = 0; j < 2 * stride; j += 4) {
      const __m256d a0 = _mm256_loadu_pd(lo + j);
      const __m256d a1 = _mm256_loadu_pd(hi + j);
      _mm256_storeu_pd(lo + j, _mm256_add_pd(cmul_d(a0, c00), cmul_d(a1, c01)));
      _mm256_storeu_pd(hi + j, _mm256_add_pd(cmul_d(a0, c10), cmul_d(a1, c11)));
    }
  }
}

void matrix2_d(std::complex<double>* psi, unsigned nb,
               const PreparedGate<double>& pg) {
  // Unit-stride quad streams require both operand qubits above the
  // in-vector bit; low-qubit pairs fall back to the scalar reference.
  if (nb < 3 || pg.sorted[0] < 1) {
    blk::bk_matrix2<double>(psi, nb, pg);
    return;
  }
  CconstD m[16];
  for (int k = 0; k < 16; ++k) m[k] = cdup_d(pg.coeff[k]);
  const std::uint64_t b0 = pow2(pg.qubits[0]), b1 = pow2(pg.qubits[1]);
  double* p = reinterpret_cast<double*>(psi);
  const std::uint64_t total = pow2(nb - 2);
  for (std::uint64_t c = 0; c < total; c += 2) {
    const std::uint64_t base = insert_zero_bits(c, pg.sorted);
    double* q0 = p + 2 * base;
    double* q1 = p + 2 * (base + b0);
    double* q2 = p + 2 * (base + b1);
    double* q3 = p + 2 * (base + b0 + b1);
    const __m256d a0 = _mm256_loadu_pd(q0);
    const __m256d a1 = _mm256_loadu_pd(q1);
    const __m256d a2 = _mm256_loadu_pd(q2);
    const __m256d a3 = _mm256_loadu_pd(q3);
    _mm256_storeu_pd(q0,
                     _mm256_add_pd(_mm256_add_pd(cmul_d(a0, m[0]), cmul_d(a1, m[1])),
                                   _mm256_add_pd(cmul_d(a2, m[2]), cmul_d(a3, m[3]))));
    _mm256_storeu_pd(q1,
                     _mm256_add_pd(_mm256_add_pd(cmul_d(a0, m[4]), cmul_d(a1, m[5])),
                                   _mm256_add_pd(cmul_d(a2, m[6]), cmul_d(a3, m[7]))));
    _mm256_storeu_pd(q2,
                     _mm256_add_pd(_mm256_add_pd(cmul_d(a0, m[8]), cmul_d(a1, m[9])),
                                   _mm256_add_pd(cmul_d(a2, m[10]), cmul_d(a3, m[11]))));
    _mm256_storeu_pd(q3,
                     _mm256_add_pd(_mm256_add_pd(cmul_d(a0, m[12]), cmul_d(a1, m[13])),
                                   _mm256_add_pd(cmul_d(a2, m[14]), cmul_d(a3, m[15]))));
  }
}

// ---- float: 4 complexes per __m256 ---------------------------------------

struct CconstS {
  __m256 re, im;
};

inline CconstS cdup_s(std::complex<float> x) {
  return {_mm256_set1_ps(x.real()), _mm256_set1_ps(x.imag())};
}

// Per-complex-lane constants [a, b, c, d].
inline CconstS cquad_s(std::complex<float> a, std::complex<float> b,
                       std::complex<float> c, std::complex<float> d) {
  return {_mm256_setr_ps(a.real(), a.real(), b.real(), b.real(), c.real(),
                         c.real(), d.real(), d.real()),
          _mm256_setr_ps(a.imag(), a.imag(), b.imag(), b.imag(), c.imag(),
                         c.imag(), d.imag(), d.imag())};
}

inline __m256 cmul_s(__m256 a, const CconstS& b) {
  const __m256 a_sw = _mm256_permute_ps(a, 0xB1);  // swap re<->im per complex
  return _mm256_fmaddsub_ps(a, b.re, _mm256_mul_ps(a_sw, b.im));
}

// Partner permute for target 0 (adjacent complexes, within 128-bit lanes)
// and target 1 (complex pairs, across the 128-bit halves).
inline __m256 swap_t0_s(__m256 v) { return _mm256_permute_ps(v, 0x4E); }
inline __m256 swap_t1_s(__m256 v) { return _mm256_permute2f128_ps(v, v, 0x01); }

void hadamard_s(std::complex<float>* psi, unsigned nb,
                const PreparedGate<float>& pg) {
  const unsigned t = pg.target;
  if (nb < 2) {  // fewer amplitudes than one vector
    blk::bk_hadamard<float>(psi, nb, pg);
    return;
  }
  const __m256 vs =
      _mm256_set1_ps(static_cast<float>(0.70710678118654752440));
  float* p = reinterpret_cast<float*>(psi);
  const std::uint64_t size = pow2(nb);
  if (t <= 1) {
    // Output complex lanes holding "hi" partners: t=0 -> lanes 1,3
    // (floats 2,3,6,7 = 0xCC); t=1 -> lanes 2,3 (floats 4..7 = 0xF0).
    for (std::uint64_t i = 0; i < size; i += 4) {
      const __m256 v = _mm256_loadu_ps(p + 2 * i);
      const __m256 w = (t == 0) ? swap_t0_s(v) : swap_t1_s(v);
      const __m256 plus = _mm256_mul_ps(_mm256_add_ps(v, w), vs);
      const __m256 minus = _mm256_mul_ps(_mm256_sub_ps(w, v), vs);
      _mm256_storeu_ps(p + 2 * i, t == 0 ? _mm256_blend_ps(plus, minus, 0xCC)
                                         : _mm256_blend_ps(plus, minus, 0xF0));
    }
    return;
  }
  const std::uint64_t stride = pow2(t);
  for (std::uint64_t base = 0; base < size; base += 2 * stride) {
    float* lo = p + 2 * base;
    float* hi = lo + 2 * stride;
    for (std::uint64_t j = 0; j < 2 * stride; j += 8) {
      const __m256 a0 = _mm256_loadu_ps(lo + j);
      const __m256 a1 = _mm256_loadu_ps(hi + j);
      _mm256_storeu_ps(lo + j, _mm256_mul_ps(_mm256_add_ps(a0, a1), vs));
      _mm256_storeu_ps(hi + j, _mm256_mul_ps(_mm256_sub_ps(a0, a1), vs));
    }
  }
}

void diag1_s(std::complex<float>* psi, unsigned nb,
             const PreparedGate<float>& pg) {
  const unsigned t = pg.target;
  if (nb < 2) {
    blk::bk_diag1<float>(psi, nb, pg);
    return;
  }
  const std::complex<float> f0 = pg.coeff[0], f1 = pg.coeff[1];
  float* p = reinterpret_cast<float*>(psi);
  const std::uint64_t size = pow2(nb);
  if (t <= 1) {
    const CconstS c = (t == 0) ? cquad_s(f0, f1, f0, f1)
                               : cquad_s(f0, f0, f1, f1);
    for (std::uint64_t i = 0; i < size; i += 4)
      _mm256_storeu_ps(p + 2 * i, cmul_s(_mm256_loadu_ps(p + 2 * i), c));
    return;
  }
  const bool skip_lower = (f0 == std::complex<float>{1.0f, 0.0f});
  const CconstS c0 = cdup_s(f0), c1 = cdup_s(f1);
  const std::uint64_t stride = pow2(t);
  for (std::uint64_t base = 0; base < size; base += 2 * stride) {
    float* lo = p + 2 * base;
    float* hi = lo + 2 * stride;
    for (std::uint64_t j = 0; j < 2 * stride; j += 8) {
      if (!skip_lower)
        _mm256_storeu_ps(lo + j, cmul_s(_mm256_loadu_ps(lo + j), c0));
      _mm256_storeu_ps(hi + j, cmul_s(_mm256_loadu_ps(hi + j), c1));
    }
  }
}

void matrix1_s(std::complex<float>* psi, unsigned nb,
               const PreparedGate<float>& pg) {
  const unsigned t = pg.target;
  if (nb < 2) {
    blk::bk_matrix1<float>(psi, nb, pg);
    return;
  }
  const std::complex<float> m00 = pg.coeff[0], m01 = pg.coeff[1];
  const std::complex<float> m10 = pg.coeff[2], m11 = pg.coeff[3];
  float* p = reinterpret_cast<float*>(psi);
  const std::uint64_t size = pow2(nb);
  if (t <= 1) {
    const CconstS c1 = (t == 0) ? cquad_s(m00, m11, m00, m11)
                                : cquad_s(m00, m00, m11, m11);
    const CconstS c2 = (t == 0) ? cquad_s(m01, m10, m01, m10)
                                : cquad_s(m01, m01, m10, m10);
    for (std::uint64_t i = 0; i < size; i += 4) {
      const __m256 v = _mm256_loadu_ps(p + 2 * i);
      const __m256 w = (t == 0) ? swap_t0_s(v) : swap_t1_s(v);
      _mm256_storeu_ps(p + 2 * i, _mm256_add_ps(cmul_s(v, c1), cmul_s(w, c2)));
    }
    return;
  }
  const CconstS c00 = cdup_s(m00), c01 = cdup_s(m01);
  const CconstS c10 = cdup_s(m10), c11 = cdup_s(m11);
  const std::uint64_t stride = pow2(t);
  for (std::uint64_t base = 0; base < size; base += 2 * stride) {
    float* lo = p + 2 * base;
    float* hi = lo + 2 * stride;
    for (std::uint64_t j = 0; j < 2 * stride; j += 8) {
      const __m256 a0 = _mm256_loadu_ps(lo + j);
      const __m256 a1 = _mm256_loadu_ps(hi + j);
      _mm256_storeu_ps(lo + j, _mm256_add_ps(cmul_s(a0, c00), cmul_s(a1, c01)));
      _mm256_storeu_ps(hi + j, _mm256_add_ps(cmul_s(a0, c10), cmul_s(a1, c11)));
    }
  }
}

void matrix2_s(std::complex<float>* psi, unsigned nb,
               const PreparedGate<float>& pg) {
  if (nb < 4 || pg.sorted[0] < 2) {
    blk::bk_matrix2<float>(psi, nb, pg);
    return;
  }
  CconstS m[16];
  for (int k = 0; k < 16; ++k) m[k] = cdup_s(pg.coeff[k]);
  const std::uint64_t b0 = pow2(pg.qubits[0]), b1 = pow2(pg.qubits[1]);
  float* p = reinterpret_cast<float*>(psi);
  const std::uint64_t total = pow2(nb - 2);
  for (std::uint64_t c = 0; c < total; c += 4) {
    const std::uint64_t base = insert_zero_bits(c, pg.sorted);
    float* q0 = p + 2 * base;
    float* q1 = p + 2 * (base + b0);
    float* q2 = p + 2 * (base + b1);
    float* q3 = p + 2 * (base + b0 + b1);
    const __m256 a0 = _mm256_loadu_ps(q0);
    const __m256 a1 = _mm256_loadu_ps(q1);
    const __m256 a2 = _mm256_loadu_ps(q2);
    const __m256 a3 = _mm256_loadu_ps(q3);
    _mm256_storeu_ps(q0,
                     _mm256_add_ps(_mm256_add_ps(cmul_s(a0, m[0]), cmul_s(a1, m[1])),
                                   _mm256_add_ps(cmul_s(a2, m[2]), cmul_s(a3, m[3]))));
    _mm256_storeu_ps(q1,
                     _mm256_add_ps(_mm256_add_ps(cmul_s(a0, m[4]), cmul_s(a1, m[5])),
                                   _mm256_add_ps(cmul_s(a2, m[6]), cmul_s(a3, m[7]))));
    _mm256_storeu_ps(q2,
                     _mm256_add_ps(_mm256_add_ps(cmul_s(a0, m[8]), cmul_s(a1, m[9])),
                                   _mm256_add_ps(cmul_s(a2, m[10]), cmul_s(a3, m[11]))));
    _mm256_storeu_ps(q3,
                     _mm256_add_ps(_mm256_add_ps(cmul_s(a0, m[12]), cmul_s(a1, m[13])),
                                   _mm256_add_ps(cmul_s(a2, m[14]), cmul_s(a3, m[15]))));
  }
}

}  // namespace

const KernelOverrides& avx2_overrides() {
  static const KernelOverrides ov = [] {
    KernelOverrides o;
    o.compiled = true;
    o.vector_bits = 256;
    o.f64[idx(KernelClass::Hadamard)] = &hadamard_d;
    o.f64[idx(KernelClass::Diag1)] = &diag1_d;
    o.f64[idx(KernelClass::Matrix1)] = &matrix1_d;
    o.f64[idx(KernelClass::Matrix2)] = &matrix2_d;
    o.f32[idx(KernelClass::Hadamard)] = &hadamard_s;
    o.f32[idx(KernelClass::Diag1)] = &diag1_s;
    o.f32[idx(KernelClass::Matrix1)] = &matrix1_s;
    o.f32[idx(KernelClass::Matrix2)] = &matrix2_s;
    return o;
  }();
  return ov;
}

#else  // !SVSIM_HAVE_AVX2_KERNELS

const KernelOverrides& avx2_overrides() {
  static const KernelOverrides ov{};
  return ov;
}

#endif

}  // namespace svsim::sv::simd::detail
