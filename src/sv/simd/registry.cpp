#include <atomic>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "machine/cpu_features.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "sv/simd/backend_tables.hpp"
#include "sv/simd/simd.hpp"

namespace svsim::sv::simd {

// ContextConfig carries the backend as the raw Isa value (obs sits below
// sv and cannot see this enum); pin the encoding it relies on: enumerators
// start at 0, so the -1 "use the active backend" sentinel never collides.
static_assert(static_cast<int>(Isa::Scalar) == 0);
static_assert(ContextConfig{}.simd_isa == -1);

namespace {

struct Tables {
  std::array<BlockKernelFn<float>, kNumKernelClasses> f32;
  std::array<BlockKernelFn<double>, kNumKernelClasses> f64;
};

struct Entry {
  Isa isa = Isa::Scalar;
  unsigned vector_bits = 0;
  bool compiled = false;
  bool available = false;
  std::size_t overridden_classes = 0;
  Tables tables;
};

const detail::KernelOverrides& overrides_for(Isa isa) {
  static const detail::KernelOverrides none{};
  switch (isa) {
    case Isa::Generic: return detail::generic_overrides();
    case Isa::Avx2: return detail::avx2_overrides();
    case Isa::Neon: return detail::neon_overrides();
    case Isa::Sve: return detail::sve_overrides();
    case Isa::Scalar: break;
  }
  return none;
}

bool cpu_supports(Isa isa) {
  const machine::CpuFeatures& f = machine::cpu_features();
  switch (isa) {
    case Isa::Scalar:
    case Isa::Generic: return true;
    case Isa::Avx2: return f.avx2 && f.fma;
    case Isa::Neon: return f.neon;
    case Isa::Sve: return f.sve;
  }
  return false;
}

Entry make_entry(Isa isa) {
  Entry e;
  e.isa = isa;
  e.tables.f32 = block_kernel_table<float>();
  e.tables.f64 = block_kernel_table<double>();
  if (isa == Isa::Scalar) {
    e.compiled = true;
    e.available = true;
    return e;
  }
  const detail::KernelOverrides& ov = overrides_for(isa);
  e.compiled = ov.compiled;
  e.available = ov.compiled && cpu_supports(isa);
  e.vector_bits = ov.compiled ? ov.vector_bits : 0;
  for (std::size_t i = 0; i < kNumKernelClasses; ++i) {
    if (ov.f32[i] == nullptr && ov.f64[i] == nullptr) continue;
    ++e.overridden_classes;
    if (ov.f32[i] != nullptr) e.tables.f32[i] = ov.f32[i];
    if (ov.f64[i] != nullptr) e.tables.f64[i] = ov.f64[i];
  }
  return e;
}

std::array<Entry, kNumIsas>& entries() {
  static std::array<Entry, kNumIsas> all = [] {
    std::array<Entry, kNumIsas> a{};
    for (std::size_t i = 0; i < kNumIsas; ++i)
      a[i] = make_entry(static_cast<Isa>(i));
    return a;
  }();
  return all;
}

std::mutex g_select_mutex;
std::atomic<const Entry*> g_active{nullptr};

void activate(const Entry& e) {
  g_active.store(&e, std::memory_order_release);
  publish_metrics();
}

const Entry& active_entry() {
  const Entry* e = g_active.load(std::memory_order_acquire);
  if (e == nullptr) {
    select_default_backend();
    e = g_active.load(std::memory_order_acquire);
  }
  return *e;
}

bool parse_isa(std::string_view name, Isa& out) {
  for (std::size_t i = 0; i < kNumIsas; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (name == isa_name(isa)) {
      out = isa;
      return true;
    }
  }
  return false;
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::Generic: return "generic";
    case Isa::Avx2: return "avx2";
    case Isa::Neon: return "neon";
    case Isa::Sve: return "sve";
  }
  return "unknown";
}

std::vector<BackendInfo> backends() {
  std::vector<BackendInfo> out;
  out.reserve(kNumIsas);
  for (const Entry& e : entries()) {
    BackendInfo b;
    b.isa = e.isa;
    b.name = isa_name(e.isa);
    b.vector_bits = e.vector_bits;
    b.compiled = e.compiled;
    b.available = e.available;
    b.overridden_classes = e.overridden_classes;
    out.push_back(b);
  }
  return out;
}

Isa detect_isa() {
  const std::array<Entry, kNumIsas>& all = entries();
  for (const Isa isa : {Isa::Sve, Isa::Avx2, Isa::Neon, Isa::Generic})
    if (all[static_cast<std::size_t>(isa)].available) return isa;
  return Isa::Scalar;
}

BackendInfo active_backend() {
  const Entry& e = active_entry();
  BackendInfo b;
  b.isa = e.isa;
  b.name = isa_name(e.isa);
  b.vector_bits = e.vector_bits;
  b.compiled = e.compiled;
  b.available = e.available;
  b.overridden_classes = e.overridden_classes;
  return b;
}

bool select_backend(Isa isa) {
  std::lock_guard<std::mutex> lock(g_select_mutex);
  const Entry& e = entries()[static_cast<std::size_t>(isa)];
  if (!e.available) return false;
  activate(e);
  return true;
}

bool select_backend(std::string_view name) {
  Isa isa = Isa::Scalar;
  if (!parse_isa(name, isa)) return false;
  return select_backend(isa);
}

void select_default_backend() {
  const char* env = std::getenv("SVSIM_SIMD");
  if (env != nullptr && *env != '\0') {
    Isa requested = Isa::Scalar;
    if (!parse_isa(env, requested)) {
      std::fprintf(stderr,
                   "svsim: SVSIM_SIMD=%s is not a known backend; "
                   "using detected ISA\n",
                   env);
    } else if (!select_backend(requested)) {
      std::fprintf(stderr,
                   "svsim: SVSIM_SIMD=%s is not available on this host; "
                   "using detected ISA\n",
                   env);
    } else {
      return;
    }
  }
  select_backend(detect_isa());
}

unsigned effective_vector_bits(unsigned element_bytes) {
  const Entry& e = active_entry();
  if (e.vector_bits == 0) return 16u * element_bytes;  // one complex lane
  return e.vector_bits;
}

void publish_metrics() { publish_metrics(obs::MetricsRegistry::global()); }

void publish_metrics(obs::MetricsRegistry& registry) {
  const Entry& e = active_entry();
  registry.gauge("sv.simd.backend")
      .set(static_cast<double>(static_cast<int>(e.isa)));
  registry.gauge("sv.simd.vector_bits").set(static_cast<double>(e.vector_bits));
}

void count_dispatch(KernelClass cls) {
  count_dispatch(cls, obs::MetricsRegistry::global());
}

void count_dispatch(KernelClass cls, obs::MetricsRegistry& registry) {
  // Metric NAMES are registry-independent, so they are built once; the
  // Counter handles are looked up per call against the caller's registry
  // (caching them in a static would pin the first registry — the
  // stale-handle bug ExecutionContext exists to eliminate).
  static const std::array<std::string, kNumKernelClasses> names = [] {
    std::array<std::string, kNumKernelClasses> n{};
    for (std::size_t i = 0; i < kNumKernelClasses; ++i)
      n[i] = std::string("sv.simd.dispatch.") +
             kernel_class_name(static_cast<KernelClass>(i));
    return n;
  }();
  registry.counter(names[static_cast<std::size_t>(cls)]).increment();
}

}  // namespace svsim::sv::simd

namespace svsim::sv {

// The dispatch points kernels.hpp routes apply_gate_in_block through.
// One relaxed atomic load per (gate, block) application; the unnamed-
// namespace active_entry() is reachable here because this is its TU.

template <>
const std::array<BlockKernelFn<float>, kNumKernelClasses>&
active_block_kernel_table<float>() {
  return simd::active_entry().tables.f32;
}

template <>
const std::array<BlockKernelFn<double>, kNumKernelClasses>&
active_block_kernel_table<double>() {
  return simd::active_entry().tables.f64;
}

}  // namespace svsim::sv
