#pragma once

// SIMD kernel backend registry with runtime CPU dispatch.
//
// Each backend is a full 16-entry KernelClass table per precision, built
// from the portable scalar reference (`sv::block_kernel_table`) with the
// hand-vectorized hot entries (Hadamard, Diag1, Matrix1, Matrix2)
// substituted where the backend provides them. `apply_gate_in_block`
// dispatches through `sv::active_block_kernel_table<T>()` (declared in
// kernels.hpp, defined by this subsystem), so sweeps, run_plan,
// run_plan_batch, and the svc service all inherit the selected backend
// with zero call-site changes.
//
// Selection order: explicit select_backend() call (the CLI `--simd`
// option) > `SVSIM_SIMD` environment variable > runtime CPU detection
// (machine/cpu_features). An unavailable or unknown request falls back to
// detection with a warning on stderr; selection is sticky once made.
//
// Numerical contract: vectorized kernels may reorder and fuse (FMA) the
// complex arithmetic of the scalar reference. Amplitudes agree with the
// scalar table within a few ulps per gate application — the documented
// bounds (docs/ARCHITECTURE.md) are 1e-12 relative for f64 and 1e-4 for
// f32 over whole random-circuit states; exact for pure permutation and
// Hadamard entries (same operation order, no FMA contraction).

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "sv/kernels.hpp"

namespace svsim::obs {
class MetricsRegistry;
}

namespace svsim::sv::simd {

/// Instruction-set tiers, narrowest first. Generic uses compiler vector
/// extensions (portable fixed-width vectors); Sve is vector-length
/// agnostic ACLE behind a compile guard.
enum class Isa : int { Scalar = 0, Generic, Avx2, Neon, Sve };
inline constexpr std::size_t kNumIsas = 5;

const char* isa_name(Isa isa);

struct BackendInfo {
  Isa isa = Isa::Scalar;
  const char* name = "scalar";
  /// Hardware vector width the kernels are written for; 0 for the scalar
  /// backend (one complex per operation).
  unsigned vector_bits = 0;
  /// Kernels for this ISA were compiled into the binary.
  bool compiled = false;
  /// compiled && the executing CPU supports the ISA.
  bool available = false;
  /// Hand-vectorized KernelClass entries (per precision); the remaining
  /// entries of the table fall back to the scalar reference.
  std::size_t overridden_classes = 0;
};

/// All known backends in Isa order, with compiled/available resolved for
/// this binary and CPU.
std::vector<BackendInfo> backends();

/// Widest available ISA on the executing CPU (Sve > Avx2 > Neon >
/// Generic; Generic and Scalar are always available).
Isa detect_isa();

/// The backend block kernels currently dispatch through. Forces default
/// selection if none has happened yet.
BackendInfo active_backend();

/// Switch the active tables to `isa`. Returns false (and leaves the
/// active backend unchanged) when the ISA is not available here.
bool select_backend(Isa isa);
bool select_backend(std::string_view name);

/// Apply the SVSIM_SIMD override if set (unknown or unavailable values
/// fall back to detection with a stderr warning), else detect. Called
/// lazily on first dispatch; callable again to re-read the environment.
void select_default_backend();

/// Effective vector width (bits) of the active backend for the perf
/// model, given the state's scalar element size: the backend width, or
/// one complex (16 * element_bytes bits) for the scalar backend.
unsigned effective_vector_bits(unsigned element_bytes);

/// Bump the `sv.simd.dispatch.<class>` counter for one prepared gate in
/// `registry` (an ExecutionContext's metrics registry); the no-registry
/// form counts against the process-wide registry.
void count_dispatch(KernelClass cls);
void count_dispatch(KernelClass cls, obs::MetricsRegistry& registry);

/// Re-publish the `sv.simd.backend` / `sv.simd.vector_bits` gauges for
/// the active backend. Selection publishes them once (to the process-wide
/// registry); callers that reset the metrics registry afterwards (e.g.
/// `--metrics`) or carry a per-context registry use this to keep the dump
/// truthful.
void publish_metrics();
void publish_metrics(obs::MetricsRegistry& registry);

}  // namespace svsim::sv::simd
