// State-vector checkpointing: binary save/load.
//
// Long multi-hour simulation campaigns checkpoint the register between
// circuit segments. The format is a small magic+metadata header followed by
// the raw amplitude array in the file's native precision; loading validates
// the header and (optionally) converts precision.
#pragma once

#include <string>

#include "sv/state_vector.hpp"

namespace svsim::sv {

/// Writes `state` to `path` (overwrites). Throws svsim::Error on I/O
/// failure.
template <typename T>
void save_state(const StateVector<T>& state, const std::string& path);

/// Reads a state written by save_state. The file may have been written in
/// either precision; amplitudes are converted to T. Throws on malformed
/// files, I/O failure, or register-size overflow.
template <typename T>
StateVector<T> load_state(const std::string& path,
                          ThreadPool* pool = &ThreadPool::global());

extern template void save_state<float>(const StateVector<float>&,
                                       const std::string&);
extern template void save_state<double>(const StateVector<double>&,
                                        const std::string&);
extern template StateVector<float> load_state<float>(const std::string&,
                                                     ThreadPool*);
extern template StateVector<double> load_state<double>(const std::string&,
                                                       ThreadPool*);

}  // namespace svsim::sv
