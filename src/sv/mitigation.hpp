// Zero-noise extrapolation (ZNE) — error mitigation by noise amplification.
//
// Global unitary folding maps a circuit C to C (C† C)^k, which is the
// identity transformation on the ideal state but multiplies the effective
// noise exposure by the scale factor 2k+1. Measuring an observable at
// several scale factors and extrapolating to scale 0 recovers an estimate
// of the noiseless value — the standard NISQ mitigation technique, and a
// natural consumer of this library's trajectory-noise stack.
#pragma once

#include <vector>

#include "qc/circuit.hpp"
#include "qc/pauli.hpp"
#include "sv/simulator.hpp"

namespace svsim::sv {

/// Globally folds a unitary circuit: scale must be odd (1, 3, 5, ...);
/// scale 2k+1 returns C (C† C)^k. Barriers are dropped inside folds.
qc::Circuit fold_global(const qc::Circuit& circuit, unsigned scale);

struct ZneResult {
  std::vector<unsigned> scales;
  std::vector<double> values;       ///< trajectory-averaged <O> per scale
  double extrapolated = 0.0;        ///< Richardson estimate at scale 0
};

/// Runs trajectory-averaged expectations of `observable` at the given odd
/// noise scales (default {1, 3, 5}) and Richardson-extrapolates to zero
/// noise. `trajectories` trajectories per scale. The simulator's noise
/// model supplies the noise; with an empty model every scale returns the
/// ideal value.
template <typename T>
ZneResult zero_noise_extrapolation(Simulator<T>& simulator,
                                   const qc::Circuit& circuit,
                                   const qc::PauliOperator& observable,
                                   int trajectories,
                                   std::vector<unsigned> scales = {1, 3, 5});

/// Richardson (polynomial) extrapolation of (x_i, y_i) to x = 0 via the
/// Lagrange basis. Exact when y is a polynomial of degree < points.
double richardson_extrapolate(const std::vector<double>& xs,
                              const std::vector<double>& ys);

extern template ZneResult zero_noise_extrapolation<float>(
    Simulator<float>&, const qc::Circuit&, const qc::PauliOperator&, int,
    std::vector<unsigned>);
extern template ZneResult zero_noise_extrapolation<double>(
    Simulator<double>&, const qc::Circuit&, const qc::PauliOperator&, int,
    std::vector<unsigned>);

}  // namespace svsim::sv
