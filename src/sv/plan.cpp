#include "sv/plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <ostream>

#include "common/error.hpp"
#include "machine/cache_probe.hpp"
#include "machine/machine_spec.hpp"
#include "obs/metrics.hpp"
#include "sv/fusion.hpp"

namespace svsim::sv {

using qc::Gate;
using qc::GateKind;

const char* phase_kind_name(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::LocalSweep: return "local_sweep";
    case PhaseKind::DenseGate: return "dense_gate";
    case PhaseKind::Exchange: return "exchange";
    case PhaseKind::MeasureFlush: return "measure_flush";
  }
  return "?";
}

namespace {

bool free_gate(const Gate& g) {
  return g.kind == GateKind::I || g.kind == GateKind::BARRIER;
}

bool measure_gate(const Gate& g) {
  return g.kind == GateKind::MEASURE || g.kind == GateKind::RESET;
}

}  // namespace

std::string ExecutionPlan::summary_id() const {
  return "q" + std::to_string(num_qubits) + "r" + std::to_string(num_ranks()) +
         "b" + std::to_string(block_qubits) + "p" +
         std::to_string(phases.size()) + "g" + std::to_string(total_gates());
}

std::size_t ExecutionPlan::num_windows() const noexcept {
  std::size_t windows = 0;
  bool open = false;
  for (const auto& phase : phases) {
    if (phase.kind == PhaseKind::Exchange) {
      open = false;
    } else if (!open) {
      ++windows;
      open = true;
    }
  }
  return windows;
}

std::size_t ExecutionPlan::traversals() const noexcept {
  std::size_t t = 0;
  for (const auto& phase : phases) {
    switch (phase.kind) {
      case PhaseKind::LocalSweep:
        ++t;
        break;
      case PhaseKind::DenseGate:
        for (const auto& g : phase.gates)
          if (!free_gate(g)) ++t;
        break;
      case PhaseKind::MeasureFlush:
        t += phase.gates.size();
        break;
      case PhaseKind::Exchange:
        break;
    }
  }
  return t;
}

double ExecutionPlan::gates_per_traversal() const noexcept {
  const std::size_t t = traversals();
  const std::size_t applied = sweep_gates + dense_gates + measure_gates;
  return t == 0 ? 0.0
                : static_cast<double>(applied) / static_cast<double>(t);
}

void ExecutionPlan::finalize() {
  sweep_gates = dense_gates = free_gates = measure_gates = 0;
  num_exchanges = 0;
  exchange_bytes_per_rank = 0.0;
  for (const auto& phase : phases) {
    switch (phase.kind) {
      case PhaseKind::LocalSweep:
        sweep_gates += phase.gates.size();
        break;
      case PhaseKind::DenseGate:
        for (const auto& g : phase.gates)
          free_gate(g) ? ++free_gates : ++dense_gates;
        break;
      case PhaseKind::MeasureFlush:
        measure_gates += phase.gates.size();
        break;
      case PhaseKind::Exchange:
        num_exchanges += phase.hops.size();
        exchange_bytes_per_rank += phase.exchange_bytes();
        break;
    }
  }
  if (final_slot_of.empty()) {
    final_slot_of.resize(num_qubits);
    for (unsigned q = 0; q < num_qubits; ++q) final_slot_of[q] = q;
  }
}

void ExecutionPlan::validate() const {
  require(num_qubits >= 1, "plan: empty register");
  require(node_qubits < num_qubits && local_qubits == num_qubits - node_qubits,
          "plan: node/local qubit split inconsistent");
  require(block_qubits <= local_qubits,
          "plan: block boundary crosses the rank boundary");
  require(final_slot_of.size() == num_qubits,
          "plan: final_slot_of width mismatch (finalize() not called?)");

  // Track the qubit->slot permutation through data-moving exchanges so the
  // measure-sees-identity and final-layout invariants can be checked.
  std::vector<unsigned> logical_at(num_qubits);
  for (unsigned s = 0; s < num_qubits; ++s) logical_at[s] = s;

  bool prev_exchange = false;
  for (const auto& phase : phases) {
    const bool is_exchange = phase.kind == PhaseKind::Exchange;
    require(!(is_exchange && prev_exchange),
            "plan: two adjacent Exchange phases (windows not coalesced)");
    prev_exchange = is_exchange;

    switch (phase.kind) {
      case PhaseKind::LocalSweep:
        require(!phase.gates.empty(), "plan: empty LocalSweep phase");
        require(block_qubits >= 1, "plan: LocalSweep without a block size");
        for (const auto& g : phase.gates) {
          require(g.is_unitary_op() && !free_gate(g),
                  "plan: non-sweepable gate in a LocalSweep phase");
          require(g.num_qubits() > 0 && g.max_qubit() < block_qubits,
                  "plan: LocalSweep operand at or above the block boundary");
        }
        break;
      case PhaseKind::DenseGate:
        require(phase.gates.size() == 1,
                "plan: DenseGate phase must hold exactly one gate");
        require(phase.gates[0].is_unitary_op(),
                "plan: MEASURE/RESET outside a MeasureFlush phase");
        require(phase.gates[0].qubits.empty() ||
                    phase.gates[0].max_qubit() < num_qubits,
                "plan: DenseGate operand out of range");
        break;
      case PhaseKind::MeasureFlush:
        require(!phase.gates.empty(), "plan: empty MeasureFlush phase");
        for (const auto& g : phase.gates) {
          require(measure_gate(g),
                  "plan: unitary gate inside a MeasureFlush phase");
          require(g.qubits.size() == 1 && g.qubits[0] < num_qubits,
                  "plan: MeasureFlush operand out of range");
        }
        for (unsigned s = 0; s < num_qubits; ++s)
          require(logical_at[s] == s,
                  "plan: MeasureFlush under a permuted qubit layout");
        break;
      case PhaseKind::Exchange:
        require(!phase.hops.empty(), "plan: Exchange phase without hops");
        for (const auto& h : phase.hops) {
          require(h.bytes >= 0.0, "plan: negative exchange bytes");
          if (!phase.moves_data) continue;
          require(h.local_slot < local_qubits &&
                      h.node_slot >= local_qubits && h.node_slot < num_qubits,
                  "plan: exchange hop slots do not straddle the rank "
                  "boundary");
          require(h.rank_bit ==
                      static_cast<int>(h.node_slot - local_qubits),
                  "plan: exchange hop rank bit inconsistent with its slot");
          std::swap(logical_at[h.local_slot], logical_at[h.node_slot]);
        }
        break;
    }
  }

  for (unsigned s = 0; s < num_qubits; ++s)
    require(final_slot_of[logical_at[s]] == s,
            "plan: final_slot_of does not match the executed permutation");
}

namespace {

/// SVSIM_CACHE_BUDGET selects where the auto-blocking budget comes from:
/// "declared" (default) trusts the MachineSpec LLC share, "probed" uses
/// the startup microprobe's measured knee when it found one.
bool cache_budget_prefers_probe() {
  const char* mode = std::getenv("SVSIM_CACHE_BUDGET");
  if (mode == nullptr || *mode == '\0' ||
      std::strcmp(mode, "declared") == 0)
    return false;
  if (std::strcmp(mode, "probed") == 0) return true;
  throw Error(std::string("SVSIM_CACHE_BUDGET: unknown mode \"") + mode +
              "\" (expected \"probed\" or \"declared\")");
}

}  // namespace

std::uint64_t plan_cache_budget(const PlanOptions& options) {
  if (options.cache_bytes != 0) return options.cache_bytes;
  if (cache_budget_prefers_probe()) {
    const machine::CacheProbeResult& probe = machine::probed_cache_budget();
    if (probe.valid && probe.effective_bytes != 0)
      return probe.effective_bytes;
    // Inconclusive probe: fall through to the declared description.
  }
  if (options.machine != nullptr) {
    const std::uint64_t budget = options.machine->cache_budget_per_core_bytes();
    if (budget != 0) return budget;
  }
  return SweepOptions{}.cache_bytes;
}

void append_window_phases(ExecutionPlan& plan, std::vector<Gate> gates,
                          const PlanOptions& options) {
  if (gates.empty()) return;
  if (plan.block_qubits == 0) {
    for (auto& g : gates) {
      PlanPhase phase;
      phase.kind = PhaseKind::DenseGate;
      phase.gates.push_back(std::move(g));
      plan.phases.push_back(std::move(phase));
    }
    return;
  }
  SweepOptions so;
  so.block_qubits = plan.block_qubits;
  so.amp_bytes = options.amp_bytes;
  so.max_sweep_gates = options.max_sweep_gates;
  so.min_free_qubits = options.min_free_qubits;
  so.metrics = options.metrics;
  SweepPlan sweeps = plan_sweeps(gates, plan.num_qubits, so);
  for (auto& step : sweeps.steps) {
    if (step.blocked) {
      PlanPhase phase;
      phase.kind = PhaseKind::LocalSweep;
      phase.gates = std::move(step.gates);
      plan.phases.push_back(std::move(phase));
      continue;
    }
    for (auto& g : step.gates) {
      PlanPhase phase;
      phase.kind = PhaseKind::DenseGate;
      phase.gates.push_back(std::move(g));
      plan.phases.push_back(std::move(phase));
    }
  }
}

// Handles resolve per call against the caller's registry — no function-
// local statics, which would pin the first registry forever.
void note_plan_compiled(const ExecutionPlan& plan,
                        obs::MetricsRegistry* metrics) {
  auto& registry =
      metrics != nullptr ? *metrics : obs::MetricsRegistry::global();
  registry.counter("plan.compiles").increment();
  registry.counter("plan.phases").add(plan.phases.size());
  registry.counter("plan.windows").add(plan.num_windows());
  registry.counter("plan.exchanges").add(plan.num_exchanges);
  registry.counter("plan.exchange_bytes")
      .add(static_cast<std::uint64_t>(plan.exchange_bytes_per_rank));
}

ExecutionPlan compile_plan(const qc::Circuit& circuit,
                           const PlanOptions& options) {
  const unsigned n = circuit.num_qubits();
  require(n >= 1, "compile_plan: circuit must have at least one qubit");

  qc::Circuit fused_storage(1);
  const qc::Circuit* source = &circuit;
  if (options.fusion) {
    FusionOptions fo;
    fo.max_width = options.fusion_width;
    fo.metrics = options.metrics;
    fused_storage = fuse(circuit, fo);
    source = &fused_storage;
  }

  ExecutionPlan plan;
  plan.num_qubits = n;
  plan.node_qubits = 0;
  plan.local_qubits = n;
  plan.num_clbits = circuit.num_clbits();
  if (options.blocking) {
    plan.block_qubits =
        options.block_qubits != 0
            ? std::min(options.block_qubits, n)
            : auto_block_qubits(n, plan_cache_budget(options),
                                options.amp_bytes, options.min_free_qubits);
  }

  std::vector<Gate> window;
  for (const auto& g : source->gates()) {
    if (!measure_gate(g)) {
      window.push_back(g);
      continue;
    }
    append_window_phases(plan, std::move(window), options);
    window.clear();
    // Coalesce consecutive MEASURE/RESET into one flush phase.
    if (plan.phases.empty() ||
        plan.phases.back().kind != PhaseKind::MeasureFlush) {
      PlanPhase flush;
      flush.kind = PhaseKind::MeasureFlush;
      plan.phases.push_back(std::move(flush));
    }
    plan.phases.back().gates.push_back(g);
  }
  append_window_phases(plan, std::move(window), options);

  plan.finalize();
  note_plan_compiled(plan, options.metrics);
  return plan;
}

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void write_gate_json(std::ostream& os, const Gate& g) {
  os << "{\"name\":\"" << g.name() << "\",\"qubits\":[";
  for (std::size_t i = 0; i < g.qubits.size(); ++i)
    os << (i ? "," : "") << g.qubits[i];
  os << "]";
  if (g.kind == GateKind::MEASURE) os << ",\"cbit\":" << g.cbit;
  os << "}";
}

}  // namespace

void write_plan_json(const ExecutionPlan& plan, std::ostream& os) {
  os << std::setprecision(17);
  os << "{\n";
  os << "  \"version\": 1,\n";
  os << "  \"num_qubits\": " << plan.num_qubits << ",\n";
  os << "  \"node_qubits\": " << plan.node_qubits << ",\n";
  os << "  \"local_qubits\": " << plan.local_qubits << ",\n";
  os << "  \"block_qubits\": " << plan.block_qubits << ",\n";
  os << "  \"num_clbits\": " << plan.num_clbits << ",\n";
  os << "  \"ranks\": " << plan.num_ranks() << ",\n";
  os << "  \"stats\": {\"sweep_gates\": " << plan.sweep_gates
     << ", \"dense_gates\": " << plan.dense_gates
     << ", \"free_gates\": " << plan.free_gates
     << ", \"measure_gates\": " << plan.measure_gates
     << ", \"num_exchanges\": " << plan.num_exchanges
     << ", \"exchange_bytes_per_rank\": " << plan.exchange_bytes_per_rank
     << ", \"traversals\": " << plan.traversals()
     << ", \"windows\": " << plan.num_windows()
     << ", \"gates_per_traversal\": " << plan.gates_per_traversal()
     << "},\n";
  os << "  \"final_slot_of\": [";
  for (std::size_t i = 0; i < plan.final_slot_of.size(); ++i)
    os << (i ? "," : "") << plan.final_slot_of[i];
  os << "],\n";
  os << "  \"phases\": [\n";
  for (std::size_t p = 0; p < plan.phases.size(); ++p) {
    const PlanPhase& phase = plan.phases[p];
    os << "    {\"kind\": \"" << phase_kind_name(phase.kind) << "\"";
    if (!phase.note.empty()) {
      os << ", \"note\": ";
      write_json_string(os, phase.note);
    }
    if (phase.kind == PhaseKind::Exchange) {
      os << ", \"moves_data\": " << (phase.moves_data ? "true" : "false");
      os << ", \"bytes_per_rank\": " << phase.exchange_bytes();
      os << ", \"hops\": [";
      for (std::size_t i = 0; i < phase.hops.size(); ++i) {
        const ExchangeHop& h = phase.hops[i];
        os << (i ? "," : "") << "{\"local_slot\":" << h.local_slot
           << ",\"node_slot\":" << h.node_slot
           << ",\"rank_bit\":" << h.rank_bit << ",\"bytes\":" << h.bytes
           << "}";
      }
      os << "]";
    } else {
      os << ", \"gates\": [";
      for (std::size_t i = 0; i < phase.gates.size(); ++i) {
        if (i) os << ",";
        write_gate_json(os, phase.gates[i]);
      }
      os << "]";
    }
    os << "}" << (p + 1 < plan.phases.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace svsim::sv
