#include "sv/fusion.hpp"

#include <algorithm>
#include <optional>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "qc/dense.hpp"

namespace svsim::sv {

namespace {

using qc::Circuit;
using qc::Gate;
using qc::GateKind;
using qc::Matrix;
using qc::cplx;

/// A pending fusion group: gates plus their combined support, in first-seen
/// order (which becomes the local bit order of the fused matrix).
struct Group {
  std::vector<Gate> gates;
  std::vector<unsigned> support;

  bool empty() const { return gates.empty(); }

  /// Local index of qubit q within the support, adding it if new.
  unsigned local(unsigned q) {
    for (unsigned i = 0; i < support.size(); ++i)
      if (support[i] == q) return i;
    support.push_back(q);
    return static_cast<unsigned>(support.size() - 1);
  }

  /// Support size if `g` joined.
  std::size_t width_with(const Gate& g) const {
    std::size_t extra = 0;
    for (unsigned q : g.qubits)
      if (std::find(support.begin(), support.end(), q) == support.end())
        ++extra;
    return support.size() + extra;
  }
};

/// Computes the fused unitary of a group: product of its gates embedded on
/// the group support, column by column via the dense reference (the group is
/// tiny, <= 2^6).
Matrix group_unitary(const Group& group) {
  const unsigned k = static_cast<unsigned>(group.support.size());
  const std::uint64_t dim = pow2(k);
  Matrix u(dim);
  std::vector<cplx> col(dim);
  // Remap each gate's qubits onto local indices once.
  std::vector<Gate> local_gates;
  local_gates.reserve(group.gates.size());
  for (const auto& g : group.gates) {
    Gate lg = g;
    for (auto& q : lg.qubits) {
      const auto it =
          std::find(group.support.begin(), group.support.end(), q);
      SVSIM_ASSERT(it != group.support.end());
      q = static_cast<unsigned>(it - group.support.begin());
    }
    local_gates.push_back(std::move(lg));
  }
  for (std::uint64_t kcol = 0; kcol < dim; ++kcol) {
    std::fill(col.begin(), col.end(), cplx{0.0, 0.0});
    col[kcol] = 1.0;
    for (const auto& lg : local_gates) qc::dense::apply_gate(col, lg, k);
    for (std::uint64_t r = 0; r < dim; ++r) u(r, kcol) = col[r];
  }
  return u;
}

bool all_diagonal(const Group& group) {
  return std::all_of(group.gates.begin(), group.gates.end(),
                     [](const Gate& g) { return g.is_diagonal(); });
}

/// Publishes the width of one emitted multi-gate block (1..6 qubits).
/// Handles resolve per call against the options' registry — caching them
/// in statics would pin whichever registry was seen first.
void observe_block_width(const FusionOptions& options, std::size_t width,
                         std::size_t gates_merged) {
  auto& registry = options.metrics != nullptr ? *options.metrics
                                              : obs::MetricsRegistry::global();
  registry.histogram("fusion.block_width", {1.0, 2.0, 3.0, 4.0, 5.0, 6.0})
      .observe(static_cast<double>(width));
  registry.counter("fusion.blocks").increment();
  registry.counter("fusion.gates_merged").add(gates_merged);
}

void flush(Group& group, Circuit& out, const FusionOptions& options) {
  if (group.empty()) return;
  if (group.gates.size() == 1) {
    out.append(group.gates.front());
  } else if (options.prefer_diagonal && all_diagonal(group)) {
    const Matrix u = group_unitary(group);
    std::vector<cplx> diag(u.dim());
    for (std::size_t i = 0; i < u.dim(); ++i) diag[i] = u(i, i);
    out.append(Gate::diag(group.support, std::move(diag)));
    observe_block_width(options, group.support.size(), group.gates.size());
  } else {
    out.append(Gate::unitary(group.support, group_unitary(group)));
    observe_block_width(options, group.support.size(), group.gates.size());
  }
  group = Group{};
}

}  // namespace

Circuit fuse(const Circuit& circuit, const FusionOptions& options) {
  require(options.max_width >= 1 && options.max_width <= 6,
          "fusion max_width must be in 1..6");
  obs::ScopedSpan span("fuse", obs::SpanCategory::Fusion);
  Circuit out(circuit.num_qubits(), circuit.num_clbits());
  Group group;
  for (const auto& g : circuit.gates()) {
    if (!g.is_unitary_op() || g.kind == GateKind::I) {
      flush(group, out, options);
      if (g.kind != GateKind::BARRIER && g.kind != GateKind::I) out.append(g);
      if (g.kind == GateKind::BARRIER) out.append(g);
      continue;
    }
    if (g.num_qubits() > options.max_width) {
      // Too wide to ever fuse; flush and pass through.
      flush(group, out, options);
      out.append(g);
      continue;
    }
    if (group.width_with(g) > options.max_width) flush(group, out, options);
    for (unsigned q : g.qubits) group.local(q);
    group.gates.push_back(g);
  }
  flush(group, out, options);
  return out;
}

}  // namespace svsim::sv
