// Shot-based observable estimation (the sampled-expectation path a hardware
// workflow uses, with the QWC grouping from qc/grouping).
#pragma once

#include <cstddef>

#include "qc/circuit.hpp"
#include "qc/pauli.hpp"
#include "sv/simulator.hpp"

namespace svsim::sv {

struct EstimateResult {
  double value = 0.0;           ///< Σ_k c_k · sample-mean of term k
  std::size_t groups = 0;       ///< number of QWC shot batches used
  std::size_t total_shots = 0;  ///< shots across all batches
};

/// Estimates <O> on the final state of `circuit` from `shots_per_group`
/// measurement shots per QWC group: for each group, append its basis-change
/// layer, sample bitstrings, and average the diagonalized term values.
/// Converges to Simulator::expectation as shots grow (~1/√shots error).
template <typename T>
EstimateResult estimate_expectation(Simulator<T>& simulator,
                                    const qc::Circuit& circuit,
                                    const qc::PauliOperator& observable,
                                    std::size_t shots_per_group);

extern template EstimateResult estimate_expectation<float>(
    Simulator<float>&, const qc::Circuit&, const qc::PauliOperator&,
    std::size_t);
extern template EstimateResult estimate_expectation<double>(
    Simulator<double>&, const qc::Circuit&, const qc::PauliOperator&,
    std::size_t);

}  // namespace svsim::sv
