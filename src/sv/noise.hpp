// Stochastic noise channels (quantum-trajectory method).
//
// Pauli channels are simulated by inserting a randomly drawn Pauli after
// each matching gate; amplitude damping uses the standard two-Kraus
// trajectory (jump with probability γ·P(|1>), renormalize either way). A
// NoiseModel attaches channels by gate arity, the way device-level noise is
// usually specified for simulator studies.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "qc/gate.hpp"
#include "sv/state_vector.hpp"

namespace svsim::sv {

/// One noise channel applied to the qubits of a matching gate.
struct NoiseChannel {
  enum class Type {
    Depolarizing,      ///< prob p: uniform non-identity Pauli on the qubits
    BitFlip,           ///< prob p: X on each qubit independently
    PhaseFlip,         ///< prob p: Z on each qubit independently
    AmplitudeDamping,  ///< damping rate gamma on each qubit independently
  };
  Type type;
  double parameter;    ///< p or gamma
  unsigned arity;      ///< gate arity this channel attaches to (0 = any)
};

class NoiseModel {
 public:
  bool empty() const noexcept {
    return channels_.empty() && !has_readout_error();
  }

  /// Depolarizing channel with probability p after every `arity`-qubit gate
  /// (arity 0 = every gate).
  NoiseModel& add_depolarizing(double p, unsigned arity = 0);
  /// Independent X-flip with probability p per qubit of matching gates.
  NoiseModel& add_bit_flip(double p, unsigned arity = 0);
  /// Independent Z-flip with probability p per qubit of matching gates.
  NoiseModel& add_phase_flip(double p, unsigned arity = 0);
  /// Amplitude damping with rate gamma per qubit of matching gates.
  NoiseModel& add_amplitude_damping(double gamma, unsigned arity = 0);

  /// Classical readout error: a measured 0 is reported as 1 with
  /// probability p0_to_1, a measured 1 as 0 with probability p1_to_0.
  NoiseModel& set_readout_error(double p0_to_1, double p1_to_0);
  bool has_readout_error() const noexcept {
    return readout_p01_ > 0.0 || readout_p10_ > 0.0;
  }
  /// Applies the readout channel to a true outcome.
  bool flip_readout(bool outcome, Xoshiro256& rng) const;

  const std::vector<NoiseChannel>& channels() const noexcept {
    return channels_;
  }

  /// Applies every channel matching `gate` to the state (one trajectory).
  template <typename T>
  void apply_after(StateVector<T>& state, const qc::Gate& gate,
                   Xoshiro256& rng) const;

 private:
  std::vector<NoiseChannel> channels_;
  double readout_p01_ = 0.0;
  double readout_p10_ = 0.0;
};

}  // namespace svsim::sv
