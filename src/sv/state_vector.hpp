// StateVector<T>: the 2^n-amplitude register.
//
// Owns an aligned array of std::complex<T> (T = float or double; the paper's
// precision study needs both). Allocation is uninitialized and the |0...0>
// fill runs through the thread pool so pages are first-touched by the
// workers that will stream them (NUMA-correct on real multi-socket/CMG
// machines).
//
// All whole-register reductions (norm, probabilities, sampling, expectation)
// live here; gate application is in kernels.hpp.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"
#include "qc/pauli.hpp"

namespace svsim::sv {

template <typename T>
class StateVector {
 public:
  using value_type = std::complex<T>;

  /// Allocates a 2^num_qubits register initialized to |0...0>.
  /// `pool` is borrowed for the lifetime of the object (default: the
  /// process-global pool).
  explicit StateVector(unsigned num_qubits,
                       ThreadPool* pool = &ThreadPool::global());

  StateVector(StateVector&&) noexcept = default;
  StateVector& operator=(StateVector&&) noexcept = default;

  unsigned num_qubits() const noexcept { return num_qubits_; }
  std::uint64_t size() const noexcept { return amps_.size(); }

  value_type* data() noexcept { return amps_.data(); }
  const value_type* data() const noexcept { return amps_.data(); }

  ThreadPool& pool() const noexcept { return *pool_; }

  value_type amplitude(std::uint64_t i) const { return amps_[i]; }
  /// |amplitude(i)|^2.
  double probability(std::uint64_t i) const;

  /// Resets to the computational basis state |basis>.
  void set_basis_state(std::uint64_t basis);

  /// Copies an arbitrary (normalized) state in; size must be 2^n.
  void set_state(std::span<const std::complex<double>> state);

  /// Copies the state out as complex<double> (for test comparison).
  std::vector<std::complex<double>> to_vector() const;

  /// Σ |a_i|^2 (parallel).
  double norm_squared() const;

  /// Scales so norm_squared() == 1. Throws on the zero vector.
  void normalize();

  /// <this|other> (parallel).
  std::complex<double> inner_product(const StateVector& other) const;

  /// Probability that measuring qubit q yields 1 (parallel).
  double probability_of_one(unsigned q) const;

  /// Marginal distribution of a qubit subset: element k is the probability
  /// of reading bit pattern k across `qubits` (qubits[0] = LSB of k).
  /// O(2^n) single sweep; result has 2^|qubits| entries.
  std::vector<double> marginal_probabilities(
      const std::vector<unsigned>& qubits) const;

  /// Projects qubit q onto `outcome` and renormalizes. `prob_outcome` is
  /// the probability of that outcome (pass the value you computed).
  void collapse(unsigned q, bool outcome, double prob_outcome);

  /// Measures qubit q: samples an outcome, collapses, returns the outcome.
  bool measure(unsigned q, Xoshiro256& rng);

  /// Forces qubit q to |0> (measure + conditional X).
  void reset_qubit(unsigned q, Xoshiro256& rng);

  /// Draws `shots` basis-state samples from |a|^2 without disturbing the
  /// state. O(size + shots·log size) via a chunked cumulative table.
  std::vector<std::uint64_t> sample(std::size_t shots, Xoshiro256& rng) const;

  /// <ψ|P|ψ> for a single Pauli string (real by Hermiticity; parallel).
  double expectation(const qc::PauliString& pauli) const;

  /// Σ_k c_k <ψ|P_k|ψ>.
  double expectation(const qc::PauliOperator& op) const;

 private:
  unsigned num_qubits_ = 0;
  AlignedBuffer<value_type> amps_;
  ThreadPool* pool_ = nullptr;
};

extern template class StateVector<float>;
extern template class StateVector<double>;

}  // namespace svsim::sv
