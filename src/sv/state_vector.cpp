#include "sv/state_vector.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace svsim::sv {

template <typename T>
StateVector<T>::StateVector(unsigned num_qubits, ThreadPool* pool)
    : num_qubits_(num_qubits),
      amps_(pow2(num_qubits), /*alignment=*/4096),
      pool_(pool) {
  require(num_qubits >= 1 && num_qubits <= 34,
          "StateVector supports 1..34 qubits");
  SVSIM_ASSERT(pool_ != nullptr);
  set_basis_state(0);
}

template <typename T>
double StateVector<T>::probability(std::uint64_t i) const {
  const value_type a = amps_[i];
  return static_cast<double>(a.real()) * a.real() +
         static_cast<double>(a.imag()) * a.imag();
}

template <typename T>
void StateVector<T>::set_basis_state(std::uint64_t basis) {
  require(basis < size(), "set_basis_state: basis index out of range");
  value_type* psi = amps_.data();
  pool_->parallel_for(size(), [psi](unsigned, std::uint64_t b,
                                    std::uint64_t e) {
    std::fill(psi + b, psi + e, value_type{});
  });
  psi[basis] = value_type{T{1}, T{0}};
}

template <typename T>
void StateVector<T>::set_state(std::span<const std::complex<double>> state) {
  require(state.size() == size(), "set_state: size mismatch");
  value_type* psi = amps_.data();
  const std::complex<double>* src = state.data();
  pool_->parallel_for(size(), [psi, src](unsigned, std::uint64_t b,
                                         std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i)
      psi[i] = value_type{static_cast<T>(src[i].real()),
                          static_cast<T>(src[i].imag())};
  });
}

template <typename T>
std::vector<std::complex<double>> StateVector<T>::to_vector() const {
  std::vector<std::complex<double>> out(size());
  for (std::uint64_t i = 0; i < size(); ++i)
    out[i] = {static_cast<double>(amps_[i].real()),
              static_cast<double>(amps_[i].imag())};
  return out;
}

template <typename T>
double StateVector<T>::norm_squared() const {
  const value_type* psi = amps_.data();
  return pool_->parallel_reduce(
      size(), [psi](unsigned, std::uint64_t b, std::uint64_t e) {
        double acc = 0.0;
        for (std::uint64_t i = b; i < e; ++i) {
          acc += static_cast<double>(psi[i].real()) * psi[i].real() +
                 static_cast<double>(psi[i].imag()) * psi[i].imag();
        }
        return acc;
      });
}

template <typename T>
void StateVector<T>::normalize() {
  const double n2 = norm_squared();
  require(n2 > 0.0, "normalize: zero state");
  const T inv = static_cast<T>(1.0 / std::sqrt(n2));
  value_type* psi = amps_.data();
  pool_->parallel_for(size(),
                      [psi, inv](unsigned, std::uint64_t b, std::uint64_t e) {
                        for (std::uint64_t i = b; i < e; ++i) psi[i] *= inv;
                      });
}

template <typename T>
std::complex<double> StateVector<T>::inner_product(
    const StateVector& other) const {
  require(size() == other.size(), "inner_product: size mismatch");
  const value_type* a = amps_.data();
  const value_type* b = other.amps_.data();
  // Two reductions (real and imaginary part); simpler than a complex-typed
  // reduce and still one pass each through cache-resident test sizes.
  const double re = pool_->parallel_reduce(
      size(), [a, b](unsigned, std::uint64_t lo, std::uint64_t hi) {
        double acc = 0.0;
        for (std::uint64_t i = lo; i < hi; ++i) {
          acc += static_cast<double>(a[i].real()) * b[i].real() +
                 static_cast<double>(a[i].imag()) * b[i].imag();
        }
        return acc;
      });
  const double im = pool_->parallel_reduce(
      size(), [a, b](unsigned, std::uint64_t lo, std::uint64_t hi) {
        double acc = 0.0;
        for (std::uint64_t i = lo; i < hi; ++i) {
          acc += static_cast<double>(a[i].real()) * b[i].imag() -
                 static_cast<double>(a[i].imag()) * b[i].real();
        }
        return acc;
      });
  return {re, im};
}

template <typename T>
double StateVector<T>::probability_of_one(unsigned q) const {
  require(q < num_qubits_, "probability_of_one: qubit out of range");
  const value_type* psi = amps_.data();
  const std::uint64_t half = size() / 2;
  // Fixed-chunk reduction (same scheme as sample()): per-chunk partials are
  // computed in parallel but summed in chunk order, so the result is
  // bit-identical for ANY pool size. This feeds measure() and therefore
  // every trajectory's RNG comparisons — a plain parallel_reduce would make
  // measurement outcomes depend on how many workers the caller's pool has,
  // breaking the serve guarantee that `--threads N` (per-worker pool
  // slices) reproduces `--threads 1` results exactly.
  const std::uint64_t num_chunks = std::min<std::uint64_t>(half, 1u << 12);
  const std::uint64_t chunk = half / num_chunks;
  std::vector<double> partial(num_chunks, 0.0);
  double* part = partial.data();
  pool_->parallel_for(
      num_chunks,
      [psi, q, chunk, part](unsigned, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t k = b; k < e; ++k) {
          double acc = 0.0;
          for (std::uint64_t c = k * chunk; c < (k + 1) * chunk; ++c) {
            const std::uint64_t i = insert_zero_bit(c, q) | pow2(q);
            acc += static_cast<double>(psi[i].real()) * psi[i].real() +
                   static_cast<double>(psi[i].imag()) * psi[i].imag();
          }
          part[k] = acc;
        }
      },
      /*serial_cutoff=*/8);
  double total = 0.0;
  for (std::uint64_t k = 0; k < num_chunks; ++k) total += partial[k];
  return total;
}

template <typename T>
std::vector<double> StateVector<T>::marginal_probabilities(
    const std::vector<unsigned>& qubits) const {
  require(!qubits.empty() && qubits.size() <= 20,
          "marginal_probabilities: need 1..20 qubits");
  for (unsigned q : qubits)
    require(q < num_qubits_, "marginal_probabilities: qubit out of range");
  const std::uint64_t bins = pow2(static_cast<unsigned>(qubits.size()));
  std::vector<double> out(bins, 0.0);
  // Single sequential sweep (parallel would need per-thread bins; marginals
  // are not on the hot path).
  const value_type* psi = amps_.data();
  for (std::uint64_t i = 0; i < size(); ++i) {
    const double p = static_cast<double>(psi[i].real()) * psi[i].real() +
                     static_cast<double>(psi[i].imag()) * psi[i].imag();
    out[gather_bits(i, qubits)] += p;
  }
  return out;
}

template <typename T>
void StateVector<T>::collapse(unsigned q, bool outcome, double prob_outcome) {
  require(q < num_qubits_, "collapse: qubit out of range");
  require(prob_outcome > 0.0, "collapse: zero-probability outcome");
  const T scale = static_cast<T>(1.0 / std::sqrt(prob_outcome));
  value_type* psi = amps_.data();
  const std::uint64_t half = size() / 2;
  pool_->parallel_for(
      half, [psi, q, outcome, scale](unsigned, std::uint64_t b,
                                     std::uint64_t e) {
        for (std::uint64_t c = b; c < e; ++c) {
          const std::uint64_t i0 = insert_zero_bit(c, q);
          const std::uint64_t i1 = i0 | pow2(q);
          const std::uint64_t keep = outcome ? i1 : i0;
          const std::uint64_t kill = outcome ? i0 : i1;
          psi[keep] *= scale;
          psi[kill] = value_type{};
        }
      });
}

template <typename T>
bool StateVector<T>::measure(unsigned q, Xoshiro256& rng) {
  const double p1 = probability_of_one(q);
  const bool outcome = rng.uniform() < p1;
  collapse(q, outcome, outcome ? p1 : 1.0 - p1);
  return outcome;
}

template <typename T>
void StateVector<T>::reset_qubit(unsigned q, Xoshiro256& rng) {
  if (measure(q, rng)) {
    // Map |1> back to |0>: swap the halves (an X gate restricted to the
    // collapsed state is just a relabeling because the |0> half is zero).
    value_type* psi = amps_.data();
    const std::uint64_t half = size() / 2;
    pool_->parallel_for(half, [psi, q](unsigned, std::uint64_t b,
                                       std::uint64_t e) {
      for (std::uint64_t c = b; c < e; ++c) {
        const std::uint64_t i0 = insert_zero_bit(c, q);
        const std::uint64_t i1 = i0 | pow2(q);
        psi[i0] = psi[i1];
        psi[i1] = value_type{};
      }
    });
  }
}

template <typename T>
std::vector<std::uint64_t> StateVector<T>::sample(std::size_t shots,
                                                  Xoshiro256& rng) const {
  // Chunked cumulative distribution: one coarse table of at most 2^12
  // chunk sums, then a scan within the selected chunk. Keeps the setup pass
  // parallel-friendly and each shot cheap.
  const std::uint64_t num_chunks = std::min<std::uint64_t>(size(), 1u << 12);
  const std::uint64_t chunk = size() / num_chunks;
  std::vector<double> cum(num_chunks + 1, 0.0);
  const value_type* psi = amps_.data();
  pool_->parallel_for(
      num_chunks,
      [psi, chunk, &cum](unsigned, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t k = b; k < e; ++k) {
          double acc = 0.0;
          for (std::uint64_t i = k * chunk; i < (k + 1) * chunk; ++i) {
            acc += static_cast<double>(psi[i].real()) * psi[i].real() +
                   static_cast<double>(psi[i].imag()) * psi[i].imag();
          }
          cum[k + 1] = acc;
        }
      },
      /*serial_cutoff=*/8);
  for (std::uint64_t k = 0; k < num_chunks; ++k) cum[k + 1] += cum[k];
  const double total = cum[num_chunks];

  std::vector<std::uint64_t> out;
  out.reserve(shots);
  for (std::size_t s = 0; s < shots; ++s) {
    const double r = rng.uniform() * total;
    // Binary search the chunk, then linear scan inside.
    const auto it = std::upper_bound(cum.begin(), cum.end(), r);
    std::uint64_t k = static_cast<std::uint64_t>(
        std::max<std::ptrdiff_t>(0, it - cum.begin() - 1));
    if (k >= num_chunks) k = num_chunks - 1;
    double acc = cum[k];
    std::uint64_t idx = k * chunk;
    for (; idx + 1 < (k + 1) * chunk; ++idx) {
      acc += static_cast<double>(psi[idx].real()) * psi[idx].real() +
             static_cast<double>(psi[idx].imag()) * psi[idx].imag();
      if (acc > r) break;
    }
    out.push_back(idx);
  }
  return out;
}

template <typename T>
double StateVector<T>::expectation(const qc::PauliString& pauli) const {
  require(pauli.num_qubits() == num_qubits_,
          "expectation: Pauli qubit count mismatch");
  const value_type* psi = amps_.data();
  const std::uint64_t x = pauli.x_mask();
  const std::uint64_t z = pauli.z_mask();
  const unsigned y_count = popcount(x & z);
  // <ψ|P|ψ> = Σ_col conj(ψ[col ^ x]) · phase(col) · ψ[col]; phase(col) =
  // i^{y_count} · (-1)^{popcount(z & col)}. The sum is real for Hermitian P.
  const double re = pool_->parallel_reduce(
      size(), [psi, x, z](unsigned, std::uint64_t b, std::uint64_t e) {
        double acc = 0.0;
        for (std::uint64_t col = b; col < e; ++col) {
          const std::uint64_t row = col ^ x;
          const double sign = (popcount(z & col) % 2) ? -1.0 : 1.0;
          const std::complex<double> a{
              static_cast<double>(psi[row].real()),
              static_cast<double>(psi[row].imag())};
          const std::complex<double> c{
              static_cast<double>(psi[col].real()),
              static_cast<double>(psi[col].imag())};
          acc += sign * (std::conj(a) * c).real();
        }
        return acc;
      });
  const double im = (y_count % 2 == 1)
                        ? pool_->parallel_reduce(
                              size(),
                              [psi, x, z](unsigned, std::uint64_t b,
                                          std::uint64_t e) {
                                double acc = 0.0;
                                for (std::uint64_t col = b; col < e; ++col) {
                                  const std::uint64_t row = col ^ x;
                                  const double sign =
                                      (popcount(z & col) % 2) ? -1.0 : 1.0;
                                  const std::complex<double> a{
                                      static_cast<double>(psi[row].real()),
                                      static_cast<double>(psi[row].imag())};
                                  const std::complex<double> c{
                                      static_cast<double>(psi[col].real()),
                                      static_cast<double>(psi[col].imag())};
                                  acc += sign * (std::conj(a) * c).imag();
                                }
                                return acc;
                              })
                        : 0.0;
  // Multiply by i^{y_count}: rotate (re, im) accordingly and keep the real
  // part, which is the Hermitian expectation value.
  switch (y_count % 4) {
    case 0: return re;
    case 1: return -im;
    case 2: return -re;
    default: return im;
  }
}

template <typename T>
double StateVector<T>::expectation(const qc::PauliOperator& op) const {
  double total = 0.0;
  for (const auto& term : op.terms())
    total += term.coefficient * expectation(term.pauli);
  return total;
}

template class StateVector<float>;
template class StateVector<double>;

}  // namespace svsim::sv
