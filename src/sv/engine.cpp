#include "sv/engine.hpp"

#include <algorithm>
#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sv/kernels.hpp"
#include "sv/simulator.hpp"

namespace svsim::sv {

using qc::Gate;
using qc::GateKind;

namespace {

void observe_sweep(std::size_t gates, std::uint64_t traversal_bytes) {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& sweeps = registry.counter("sv.sweeps");
  static obs::Counter& swept = registry.counter("sv.sweep_gates");
  static obs::Counter& bytes = registry.counter("sv.sweep_bytes");
  sweeps.increment();
  swept.add(gates);
  bytes.add(traversal_bytes);
}

}  // namespace

template <typename T>
void run_sweep(StateVector<T>& state, const Gate* gates, std::size_t count,
               unsigned block_qubits) {
  const unsigned n = state.num_qubits();
  require(block_qubits >= 1 && block_qubits <= n,
          "run_sweep: block_qubits out of range");
  if (count == 0) return;

  std::vector<PreparedGate<T>> prepared;
  prepared.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    for (unsigned q : gates[i].qubits)
      require(q < block_qubits, "run_sweep: gate operand crosses the block "
                                "boundary (not block-local)");
    prepared.push_back(prepare_gate<T>(gates[i]));
  }

  obs::Tracer& tracer = obs::Tracer::global();
  const bool tracing = tracer.enabled();
  const std::uint64_t start_ns = tracing ? tracer.now_ns() : 0;

  std::complex<T>* psi = state.data();
  const unsigned b = block_qubits;
  const std::uint64_t num_blocks = pow2(n - b);
  const PreparedGate<T>* pgs = prepared.data();
  // serial_cutoff=2: blocks are large, so even two of them are worth
  // forking; the static partition mirrors the first-touch layout.
  state.pool().parallel_for(
      num_blocks,
      [psi, pgs, count, b](unsigned, std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t blk = lo; blk < hi; ++blk) {
          std::complex<T>* block = psi + (blk << b);
          for (std::size_t g = 0; g < count; ++g)
            apply_gate_in_block(block, b, pgs[g]);
        }
      },
      /*serial_cutoff=*/2);

  // One read + one write of the state serves the whole sweep (in-block
  // traffic stays in cache); this is the bytes label the drift report and
  // trace viewers see for the sweep span.
  const std::uint64_t traversal_bytes =
      2 * pow2(n) * std::uint64_t{2 * sizeof(T)};
  observe_sweep(count, traversal_bytes);
  if (tracing) {
    tracer.record_span("sweep", obs::SpanCategory::Kernel, nullptr, 0,
                       /*stride=*/pow2(b), traversal_bytes, start_ns);
  }
}

template <typename T>
EngineStats run_plan(StateVector<T>& state, const SweepPlan& plan) {
  EngineStats stats;
  for (const auto& step : plan.steps) {
    if (step.blocked) {
      run_sweep(state, step.gates.data(), step.gates.size(),
                plan.block_qubits);
      ++stats.sweeps;
      ++stats.traversals;
      stats.blocked_gates += step.gates.size();
      continue;
    }
    for (const auto& g : step.gates) {
      require(g.kind != GateKind::MEASURE && g.kind != GateKind::RESET,
              "run_plan: MEASURE/RESET need a Simulator");
      apply_gate(state, g);
      if (g.kind != GateKind::I && g.kind != GateKind::BARRIER) {
        ++stats.passthrough_gates;
        ++stats.traversals;
      }
    }
  }
  return stats;
}

template void run_sweep<float>(StateVector<float>&, const Gate*, std::size_t,
                               unsigned);
template void run_sweep<double>(StateVector<double>&, const Gate*, std::size_t,
                                unsigned);
template EngineStats run_plan<float>(StateVector<float>&, const SweepPlan&);
template EngineStats run_plan<double>(StateVector<double>&, const SweepPlan&);

}  // namespace svsim::sv
