#include "sv/engine.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "sv/kernels.hpp"
#include "sv/simd/simd.hpp"
#include "sv/simulator.hpp"

namespace svsim::sv {

using qc::Gate;
using qc::GateKind;

// The profiler mirrors the phase vocabulary numerically (obs cannot see
// sv::PhaseKind); pin the correspondence here, next to the executor that
// casts between them.
static_assert(obs::kProfilePhaseLocalSweep ==
              static_cast<std::uint8_t>(PhaseKind::LocalSweep));
static_assert(obs::kProfilePhaseDenseGate ==
              static_cast<std::uint8_t>(PhaseKind::DenseGate));
static_assert(obs::kProfilePhaseExchange ==
              static_cast<std::uint8_t>(PhaseKind::Exchange));
static_assert(obs::kProfilePhaseMeasureFlush ==
              static_cast<std::uint8_t>(PhaseKind::MeasureFlush));

namespace {

std::atomic<PlanCaptureScope*> g_plan_capture{nullptr};

}  // namespace

PlanCaptureScope::PlanCaptureScope() {
  PlanCaptureScope* expected = nullptr;
  require(g_plan_capture.compare_exchange_strong(expected, this,
                                                 std::memory_order_acq_rel),
          "PlanCaptureScope: another capture scope is already open");
}

PlanCaptureScope::~PlanCaptureScope() {
  PlanCaptureScope* expected = this;
  g_plan_capture.compare_exchange_strong(expected, nullptr,
                                         std::memory_order_acq_rel);
}

PlanCaptureScope* PlanCaptureScope::current() noexcept {
  return g_plan_capture.load(std::memory_order_acquire);
}

void PlanCaptureScope::add(const ExecutionPlan& plan) {
  std::lock_guard lock(mutex_);
  plans_.push_back(plan);
}

std::vector<ExecutionPlan> PlanCaptureScope::plans() const {
  std::lock_guard lock(mutex_);
  return plans_;
}

namespace {

// Metric handles are resolved from the context's registry on every call —
// never cached in function-local statics, which would pin the first
// registry forever and miscount under per-context registries.
void observe_sweep(obs::MetricsRegistry& registry, std::size_t gates,
                   std::uint64_t traversal_bytes) {
  registry.counter("sv.sweeps").increment();
  registry.counter("sv.sweep_gates").add(gates);
  registry.counter("sv.sweep_bytes").add(traversal_bytes);
}

/// Estimated bytes a gate's kernel streams on a 2^n state (read + write of
/// the touched amplitude subset). Deliberately simple — the line-granular
/// traffic model lives in perf::gate_cost; this is the label attached to
/// measured trace spans so per-kernel GB/s can be derived at runtime.
template <typename T>
std::uint64_t approx_streamed_bytes(const Gate& g, unsigned n) {
  const std::uint64_t N = pow2(n);
  const std::uint64_t amp = 2 * sizeof(T);
  switch (g.kind) {
    case GateKind::I:
    case GateKind::BARRIER:
      return 0;
    // Diagonal phase on the |1> half of one qubit.
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::P:
      return (N / 2) * amp * 2;
    // Controlled single-target kernels touch the all-controls-one subspace.
    case GateKind::CX:
    case GateKind::CY:
    case GateKind::CH:
    case GateKind::CRX:
    case GateKind::CRY:
    case GateKind::CRZ:
    case GateKind::CCX:
    case GateKind::MCX:
      return 2 * (N >> g.num_controls()) * amp;
    // Phase on the all-ones subspace of every operand.
    case GateKind::CZ:
    case GateKind::CP:
    case GateKind::CCZ:
    case GateKind::MCP:
      return 2 * (N >> g.num_qubits()) * amp;
    case GateKind::SWAP:
      return 2 * (N / 2) * amp;
    case GateKind::CSWAP:
      return 2 * (N / 2) * amp;
    // Probability reduction (read all) + collapse (write ~half).
    case GateKind::MEASURE:
    case GateKind::RESET:
      return N * amp * 3 / 2;
    default:
      return 2 * N * amp;  // full-sweep kernels
  }
}

/// Amplitude distance between paired elements in the innermost loop.
std::uint64_t pair_stride(const Gate& g) {
  const auto targets = g.targets();
  if (targets.empty()) return 0;
  return pow2(*std::min_element(targets.begin(), targets.end()));
}

void observe_plan_execution(obs::MetricsRegistry& registry,
                            const EngineStats& stats, std::size_t phases,
                            std::size_t executions) {
  registry.counter("plan.executions").add(executions);
  registry.counter("plan.phases_executed").add(phases * executions);
  registry.counter("plan.exchanges_applied").add(stats.exchanges);
}

}  // namespace

namespace {

/// Pre-casts `count` block-local gates for precision T, validating block
/// locality. Shared by the single-state sweep and the batch executor (which
/// prepares once per sweep for the whole batch).
template <typename T>
std::vector<PreparedGate<T>> prepare_sweep(const Gate* gates,
                                           std::size_t count,
                                           unsigned block_qubits,
                                           obs::MetricsRegistry& registry) {
  std::vector<PreparedGate<T>> prepared;
  prepared.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    for (unsigned q : gates[i].qubits)
      require(q < block_qubits, "run_sweep: gate operand crosses the block "
                                "boundary (not block-local)");
    prepared.push_back(prepare_gate<T>(gates[i]));
    simd::count_dispatch(prepared.back().cls, registry);
  }
  return prepared;
}

/// The block loop of one sweep over one state, gates already prepared.
template <typename T>
void run_sweep_prepared(StateVector<T>& state, const PreparedGate<T>* pgs,
                        std::size_t count, unsigned block_qubits) {
  std::complex<T>* psi = state.data();
  const unsigned b = block_qubits;
  const std::uint64_t num_blocks = pow2(state.num_qubits() - b);
  // serial_cutoff=2: blocks are large, so even two of them are worth
  // forking; the static partition mirrors the first-touch layout.
  state.pool().parallel_for(
      num_blocks,
      [psi, pgs, count, b](unsigned, std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t blk = lo; blk < hi; ++blk) {
          std::complex<T>* block = psi + (blk << b);
          for (std::size_t g = 0; g < count; ++g)
            apply_gate_in_block(block, b, pgs[g]);
        }
      },
      /*serial_cutoff=*/2);
}

}  // namespace

template <typename T>
void run_sweep(StateVector<T>& state, const Gate* gates, std::size_t count,
               unsigned block_qubits, const ExecutionContext& ctx) {
  const unsigned n = state.num_qubits();
  require(block_qubits >= 1 && block_qubits <= n,
          "run_sweep: block_qubits out of range");
  if (count == 0) return;

  const std::vector<PreparedGate<T>> prepared =
      prepare_sweep<T>(gates, count, block_qubits, ctx.metrics());

  obs::Tracer& tracer = ctx.tracer();
  const bool tracing = tracer.enabled();
  const std::uint64_t start_ns = tracing ? tracer.now_ns() : 0;

  run_sweep_prepared(state, prepared.data(), count, block_qubits);

  // One read + one write of the state serves the whole sweep (in-block
  // traffic stays in cache); this is the bytes label the drift report and
  // trace viewers see for the sweep span.
  const std::uint64_t traversal_bytes =
      2 * pow2(n) * std::uint64_t{2 * sizeof(T)};
  observe_sweep(ctx.metrics(), count, traversal_bytes);
  if (tracing) {
    tracer.record_span("sweep", obs::SpanCategory::Kernel, nullptr, 0,
                       /*stride=*/pow2(block_qubits), traversal_bytes,
                       start_ns);
  }
}

template <typename T>
EngineStats run_plan(StateVector<T>& state, const ExecutionPlan& plan,
                     const PlanHooks<T>& hooks, const ExecutionContext& ctx) {
  const unsigned n = state.num_qubits();
  require(n == plan.num_qubits, "run_plan: state/plan width mismatch");

  EngineStats stats;
  obs::Tracer& tracer = ctx.tracer();
  const bool tracing = tracer.enabled();

  // Plan-phase profiling: one relaxed load when idle; when a profiler is
  // installed (or the context pins one), each phase is bracketed with clock
  // reads, a bytes delta, a tracer-drop delta (ring overflow => partial
  // report), and — on request — a perf_event counter scope. Cost-only
  // phases still get a (near-zero) sample so sample i always describes
  // plan.phases[i].
  obs::Profiler* const prof = ctx.profiler();
  if (PlanCaptureScope* capture = PlanCaptureScope::current())
    capture->add(plan);
  std::uint64_t run_start = 0;
  std::uint64_t run_drops_before = 0;
  if (prof != nullptr) {
    obs::RunProfile meta;
    meta.num_qubits = plan.num_qubits;
    meta.node_qubits = plan.node_qubits;
    meta.local_qubits = plan.local_qubits;
    meta.block_qubits = plan.block_qubits;
    meta.threads = state.pool().num_threads();
    meta.phases_planned = plan.phases.size();
    run_start = prof->now_ns();
    meta.start_ns = run_start;
    prof->begin_run(meta);
    run_drops_before = tracer.dropped();
  }

  for (std::size_t phase_index = 0; phase_index < plan.phases.size();
       ++phase_index) {
    const PlanPhase& phase = plan.phases[phase_index];
    const std::uint64_t bytes_before = stats.bytes_streamed;
    const std::uint64_t drops_before =
        prof != nullptr ? tracer.dropped() : 0;
    const std::uint64_t phase_start = prof != nullptr ? prof->now_ns() : 0;
    std::optional<obs::HwCounterScope> hw;
    if (prof != nullptr && prof->hw_counters()) hw.emplace();
    switch (phase.kind) {
      case PhaseKind::LocalSweep: {
        run_sweep(state, phase.gates.data(), phase.gates.size(),
                  plan.block_qubits, ctx);
        ++stats.sweeps;
        ++stats.traversals;
        stats.blocked_gates += phase.gates.size();
        stats.bytes_streamed += 2 * pow2(n) * std::uint64_t{2 * sizeof(T)};
        break;
      }
      case PhaseKind::DenseGate: {
        for (const auto& g : phase.gates) {
          const std::uint64_t gate_bytes = approx_streamed_bytes<T>(g, n);
          const std::uint64_t start_ns = tracing ? tracer.now_ns() : 0;
          apply_gate(state, g);
          if (hooks.after_gate) hooks.after_gate(state, g);
          if (tracing) {
            tracer.record_span(g.name(), obs::SpanCategory::Kernel,
                               g.qubits.data(), g.qubits.size(),
                               pair_stride(g), gate_bytes, start_ns);
          }
          stats.bytes_streamed += gate_bytes;
          if (g.kind != GateKind::I && g.kind != GateKind::BARRIER) {
            ++stats.passthrough_gates;
            ++stats.traversals;
          }
        }
        break;
      }
      case PhaseKind::Exchange: {
        if (!phase.moves_data) break;  // cost-only window marker
        for (const auto& h : phase.hops) {
          const Gate swap_gate = Gate::swap(h.local_slot, h.node_slot);
          const std::uint64_t swap_bytes =
              approx_streamed_bytes<T>(swap_gate, n);
          const std::uint64_t start_ns = tracing ? tracer.now_ns() : 0;
          apply_gate(state, swap_gate);
          if (tracing) {
            tracer.record_span("exchange", obs::SpanCategory::Collective,
                               swap_gate.qubits.data(), 2,
                               pair_stride(swap_gate), swap_bytes, start_ns);
          }
          ++stats.exchanges;
          stats.bytes_streamed += swap_bytes;
        }
        break;
      }
      case PhaseKind::MeasureFlush: {
        require(static_cast<bool>(hooks.measure),
                "run_plan: MEASURE/RESET need a Simulator (no measure hook)");
        for (const auto& g : phase.gates) {
          const std::uint64_t gate_bytes = approx_streamed_bytes<T>(g, n);
          const std::uint64_t start_ns = tracing ? tracer.now_ns() : 0;
          hooks.measure(state, g);
          if (tracing) {
            tracer.record_span(g.name(), obs::SpanCategory::Measure,
                               g.qubits.data(), g.qubits.size(),
                               pair_stride(g), gate_bytes, start_ns);
          }
          ++stats.measure_ops;
          ++stats.traversals;
          stats.bytes_streamed += gate_bytes;
        }
        break;
      }
    }
    if (prof != nullptr) {
      obs::PhaseSample sample;
      sample.index = static_cast<std::uint32_t>(phase_index);
      sample.kind = static_cast<std::uint8_t>(phase.kind);
      sample.gates = static_cast<std::uint32_t>(phase.gates.size());
      sample.hops = static_cast<std::uint32_t>(phase.hops.size());
      sample.threads = state.pool().num_threads();
      sample.bytes = stats.bytes_streamed - bytes_before;
      sample.start_ns = phase_start;
      sample.duration_ns = prof->now_ns() - phase_start;
      sample.dropped_spans = tracer.dropped() - drops_before;
      if (hw.has_value()) sample.hw = hw->stop();
      prof->record_phase(std::move(sample));
    }
  }

  if (prof != nullptr)
    prof->end_run(prof->now_ns() - run_start,
                  tracer.dropped() > run_drops_before);

  observe_plan_execution(ctx.metrics(), stats, plan.phases.size(),
                         /*executions=*/1);
  return stats;
}

template <typename T>
EngineStats run_plan_batch(const std::vector<StateVector<T>*>& states,
                           const ExecutionPlan& plan,
                           const BatchHooks<T>& hooks,
                           const ExecutionContext& ctx) {
  EngineStats stats;
  if (states.empty()) return stats;
  const unsigned n = plan.num_qubits;
  for (const StateVector<T>* s : states) {
    require(s != nullptr, "run_plan_batch: null state in batch");
    require(s->num_qubits() == n,
            "run_plan_batch: state/plan width mismatch");
  }
  const std::size_t batch = states.size();
  const std::uint64_t state_bytes = 2 * pow2(n) * std::uint64_t{2 * sizeof(T)};

  obs::Tracer& tracer = ctx.tracer();
  const bool tracing = tracer.enabled();

  for (const PlanPhase& phase : plan.phases) {
    switch (phase.kind) {
      case PhaseKind::LocalSweep: {
        // The batch payoff: one preparation (coefficient casts, kernel
        // resolution, block-locality checks) serves every trajectory.
        const std::vector<PreparedGate<T>> prepared =
            prepare_sweep<T>(phase.gates.data(), phase.gates.size(),
                             plan.block_qubits, ctx.metrics());
        const std::uint64_t start_ns = tracing ? tracer.now_ns() : 0;
        for (StateVector<T>* s : states)
          run_sweep_prepared(*s, prepared.data(), prepared.size(),
                             plan.block_qubits);
        observe_sweep(ctx.metrics(), phase.gates.size() * batch,
                      state_bytes * batch);
        if (tracing)
          tracer.record_span("sweep", obs::SpanCategory::Kernel, nullptr, 0,
                             pow2(plan.block_qubits), state_bytes * batch,
                             start_ns);
        stats.sweeps += batch;
        stats.traversals += batch;
        stats.blocked_gates += phase.gates.size() * batch;
        stats.bytes_streamed += state_bytes * batch;
        break;
      }
      case PhaseKind::DenseGate: {
        for (const auto& g : phase.gates) {
          const std::uint64_t gate_bytes = approx_streamed_bytes<T>(g, n);
          const std::uint64_t start_ns = tracing ? tracer.now_ns() : 0;
          for (std::size_t i = 0; i < batch; ++i) {
            apply_gate(*states[i], g);
            if (hooks.after_gate) hooks.after_gate(i, *states[i], g);
          }
          if (tracing)
            tracer.record_span(g.name(), obs::SpanCategory::Kernel,
                               g.qubits.data(), g.qubits.size(),
                               pair_stride(g), gate_bytes * batch, start_ns);
          stats.bytes_streamed += gate_bytes * batch;
          if (g.kind != GateKind::I && g.kind != GateKind::BARRIER) {
            stats.passthrough_gates += batch;
            stats.traversals += batch;
          }
        }
        break;
      }
      case PhaseKind::Exchange: {
        if (!phase.moves_data) break;  // cost-only window marker
        for (const auto& h : phase.hops) {
          const Gate swap_gate = Gate::swap(h.local_slot, h.node_slot);
          const std::uint64_t swap_bytes =
              approx_streamed_bytes<T>(swap_gate, n);
          const std::uint64_t start_ns = tracing ? tracer.now_ns() : 0;
          for (StateVector<T>* s : states) apply_gate(*s, swap_gate);
          if (tracing)
            tracer.record_span("exchange", obs::SpanCategory::Collective,
                               swap_gate.qubits.data(), 2,
                               pair_stride(swap_gate), swap_bytes * batch,
                               start_ns);
          stats.exchanges += batch;
          stats.bytes_streamed += swap_bytes * batch;
        }
        break;
      }
      case PhaseKind::MeasureFlush: {
        require(static_cast<bool>(hooks.measure),
                "run_plan_batch: MEASURE/RESET need a measure hook");
        for (const auto& g : phase.gates) {
          const std::uint64_t gate_bytes = approx_streamed_bytes<T>(g, n);
          const std::uint64_t start_ns = tracing ? tracer.now_ns() : 0;
          for (std::size_t i = 0; i < batch; ++i)
            hooks.measure(i, *states[i], g);
          if (tracing)
            tracer.record_span(g.name(), obs::SpanCategory::Measure,
                               g.qubits.data(), g.qubits.size(),
                               pair_stride(g), gate_bytes * batch, start_ns);
          stats.measure_ops += batch;
          stats.traversals += batch;
          stats.bytes_streamed += gate_bytes * batch;
        }
        break;
      }
    }
  }

  // Each trajectory counts as one plan execution, matching what a per-shot
  // loop over run_plan would have published (stats.exchanges is already the
  // batch total, so it is added once, not once per trajectory).
  observe_plan_execution(ctx.metrics(), stats, plan.phases.size(),
                         /*executions=*/batch);
  return stats;
}

template void run_sweep<float>(StateVector<float>&, const Gate*, std::size_t,
                               unsigned, const ExecutionContext&);
template void run_sweep<double>(StateVector<double>&, const Gate*, std::size_t,
                                unsigned, const ExecutionContext&);
template EngineStats run_plan<float>(StateVector<float>&, const ExecutionPlan&,
                                     const PlanHooks<float>&,
                                     const ExecutionContext&);
template EngineStats run_plan<double>(StateVector<double>&,
                                      const ExecutionPlan&,
                                      const PlanHooks<double>&,
                                      const ExecutionContext&);
template EngineStats run_plan_batch<float>(
    const std::vector<StateVector<float>*>&, const ExecutionPlan&,
    const BatchHooks<float>&, const ExecutionContext&);
template EngineStats run_plan_batch<double>(
    const std::vector<StateVector<double>*>&, const ExecutionPlan&,
    const BatchHooks<double>&, const ExecutionContext&);

}  // namespace svsim::sv
