#include "sv/noise.hpp"

#include <cmath>

#include "common/error.hpp"
#include "sv/kernels.hpp"

namespace svsim::sv {

namespace {

/// Applies one uniformly drawn non-identity Pauli over `qubits`.
template <typename T>
void apply_random_pauli(StateVector<T>& state,
                        const std::vector<unsigned>& qubits, Xoshiro256& rng) {
  // Draw a non-identity assignment of {I,X,Y,Z} over the qubits.
  const std::uint64_t combos = pow2(2 * static_cast<unsigned>(qubits.size()));
  const std::uint64_t pick = 1 + rng.uniform_int(combos - 1);
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    const unsigned code = static_cast<unsigned>((pick >> (2 * i)) & 3u);
    const unsigned q = qubits[i];
    switch (code) {
      case 0: break;
      case 1: apply_x(state.data(), state.num_qubits(), q, state.pool()); break;
      case 2: apply_y(state.data(), state.num_qubits(), q, state.pool()); break;
      case 3:
        apply_diag1(state.data(), state.num_qubits(), q, {1.0, 0.0},
                    {-1.0, 0.0}, state.pool());
        break;
    }
  }
}

/// One amplitude-damping trajectory step on qubit q.
template <typename T>
void apply_amplitude_damping(StateVector<T>& state, unsigned q, double gamma,
                             Xoshiro256& rng) {
  const double p1 = state.probability_of_one(q);
  const double p_jump = gamma * p1;
  std::complex<T>* psi = state.data();
  const unsigned n = state.num_qubits();
  if (rng.uniform() < p_jump) {
    // Jump K1 = [[0, √γ],[0, 0]]: |1> component moves to |0>; after
    // normalization the state is the post-jump trajectory.
    const T scale = static_cast<T>(1.0 / std::sqrt(p1));
    state.pool().parallel_for(
        pow2(n - 1), [psi, q, scale](unsigned, std::uint64_t b,
                                     std::uint64_t e) {
          for (std::uint64_t c = b; c < e; ++c) {
            const std::uint64_t i0 = insert_zero_bit(c, q);
            const std::uint64_t i1 = i0 | pow2(q);
            psi[i0] = psi[i1] * scale;
            psi[i1] = {};
          }
        });
  } else {
    // No-jump K0 = diag(1, √(1-γ)), then renormalize by the no-jump
    // probability 1 - γ·p1.
    const T damp = static_cast<T>(std::sqrt(1.0 - gamma));
    apply_diag1(psi, n, q, {1.0, 0.0},
                {static_cast<double>(damp), 0.0}, state.pool());
    const double p_nojump = 1.0 - p_jump;
    const T scale = static_cast<T>(1.0 / std::sqrt(p_nojump));
    state.pool().parallel_for(
        pow2(n), [psi, scale](unsigned, std::uint64_t b, std::uint64_t e) {
          for (std::uint64_t i = b; i < e; ++i) psi[i] *= scale;
        });
  }
}

}  // namespace

NoiseModel& NoiseModel::add_depolarizing(double p, unsigned arity) {
  require(p >= 0.0 && p <= 1.0, "depolarizing probability out of range");
  channels_.push_back({NoiseChannel::Type::Depolarizing, p, arity});
  return *this;
}

NoiseModel& NoiseModel::add_bit_flip(double p, unsigned arity) {
  require(p >= 0.0 && p <= 1.0, "bit-flip probability out of range");
  channels_.push_back({NoiseChannel::Type::BitFlip, p, arity});
  return *this;
}

NoiseModel& NoiseModel::add_phase_flip(double p, unsigned arity) {
  require(p >= 0.0 && p <= 1.0, "phase-flip probability out of range");
  channels_.push_back({NoiseChannel::Type::PhaseFlip, p, arity});
  return *this;
}

NoiseModel& NoiseModel::add_amplitude_damping(double gamma, unsigned arity) {
  require(gamma >= 0.0 && gamma <= 1.0, "damping rate out of range");
  channels_.push_back({NoiseChannel::Type::AmplitudeDamping, gamma, arity});
  return *this;
}

NoiseModel& NoiseModel::set_readout_error(double p0_to_1, double p1_to_0) {
  require(p0_to_1 >= 0.0 && p0_to_1 <= 1.0 && p1_to_0 >= 0.0 &&
              p1_to_0 <= 1.0,
          "readout error probabilities out of range");
  readout_p01_ = p0_to_1;
  readout_p10_ = p1_to_0;
  return *this;
}

bool NoiseModel::flip_readout(bool outcome, Xoshiro256& rng) const {
  const double p = outcome ? readout_p10_ : readout_p01_;
  if (p > 0.0 && rng.uniform() < p) return !outcome;
  return outcome;
}

template <typename T>
void NoiseModel::apply_after(StateVector<T>& state, const qc::Gate& gate,
                             Xoshiro256& rng) const {
  if (!gate.is_unitary_op()) return;
  for (const auto& ch : channels_) {
    if (ch.arity != 0 && ch.arity != gate.num_qubits()) continue;
    switch (ch.type) {
      case NoiseChannel::Type::Depolarizing:
        if (rng.uniform() < ch.parameter)
          apply_random_pauli(state, gate.qubits, rng);
        break;
      case NoiseChannel::Type::BitFlip:
        for (unsigned q : gate.qubits)
          if (rng.uniform() < ch.parameter)
            apply_x(state.data(), state.num_qubits(), q, state.pool());
        break;
      case NoiseChannel::Type::PhaseFlip:
        for (unsigned q : gate.qubits)
          if (rng.uniform() < ch.parameter)
            apply_diag1(state.data(), state.num_qubits(), q, {1.0, 0.0},
                        {-1.0, 0.0}, state.pool());
        break;
      case NoiseChannel::Type::AmplitudeDamping:
        for (unsigned q : gate.qubits)
          apply_amplitude_damping(state, q, ch.parameter, rng);
        break;
    }
  }
}

template void NoiseModel::apply_after<float>(StateVector<float>&,
                                             const qc::Gate&,
                                             Xoshiro256&) const;
template void NoiseModel::apply_after<double>(StateVector<double>&,
                                              const qc::Gate&,
                                              Xoshiro256&) const;

}  // namespace svsim::sv
