// Simulator<T>: the user-facing execution engine.
//
// Dispatches circuit gates onto the specialized kernels, optionally running
// the fusion pass first; handles measurement/reset/noise via per-shot
// trajectories with a fast path (run once + sample) when the circuit is
// noiseless with only trailing measurements.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "common/threading.hpp"
#include "qc/circuit.hpp"
#include "qc/pauli.hpp"
#include "sv/fusion.hpp"
#include "sv/noise.hpp"
#include "sv/state_vector.hpp"

namespace svsim {
class ExecutionContext;
}

namespace svsim::machine {
struct MachineSpec;
}

namespace svsim::sv {

struct ExecutionPlan;

/// Applies one unitary gate to the state (kernel dispatch; no noise, no
/// measurement). BARRIER and I are no-ops. Throws for MEASURE/RESET.
template <typename T>
void apply_gate(StateVector<T>& state, const qc::Gate& gate);

struct SimulatorOptions {
  /// Worker pool (borrowed). Defaults to the process-global pool.
  ThreadPool* pool = &ThreadPool::global();
  /// Run the fusion pass before execution.
  bool fusion = false;
  /// Maximum fused-gate width when fusion is on.
  unsigned fusion_width = 3;
  /// Cache-blocked sweep execution: consecutive gates whose operands all lie
  /// below the block boundary are applied per L2-sized block in one state
  /// traversal (see sv/sweep.hpp and docs/ARCHITECTURE.md). Amplitude-exact:
  /// the same kernel math as the unblocked path (agreement to FP rounding).
  /// Ignored (falls back to per-gate execution) when the noise model is
  /// non-empty, since channels sample after every gate.
  bool blocking = false;
  /// Block size in qubits for the blocked engine; 0 = auto from the cache
  /// budget (see SweepOptions).
  unsigned block_qubits = 0;
  /// Machine whose cache topology sizes auto blocks (borrowed; optional).
  /// When unset the plan compiler falls back to the 512 KiB default.
  const machine::MachineSpec* machine = nullptr;
  /// Seed for measurement sampling and noise trajectories.
  std::uint64_t seed = 0x5eed;
  /// Noise model; empty = ideal simulation.
  NoiseModel noise;
  /// Execution context (borrowed): metrics registry, tracer, profiler hook,
  /// and worker pool the run resolves against. nullptr = the process-wide
  /// singletons (ExecutionContext::global()). When set, the context's pool
  /// takes precedence over `pool` for states this simulator creates.
  const ExecutionContext* context = nullptr;
};

template <typename T>
class Simulator {
 public:
  explicit Simulator(SimulatorOptions options = {});

  const SimulatorOptions& options() const noexcept { return options_; }
  Xoshiro256& rng() noexcept { return rng_; }

  /// Runs the circuit from |0...0> and returns the final state. MEASURE
  /// collapses the state and records the outcome (see classical_bits());
  /// RESET re-initializes the qubit.
  StateVector<T> run(const qc::Circuit& circuit);

  /// Same, operating on an existing state (which must match the circuit
  /// width). The state's own pool is used for kernels. Internally compiles
  /// the circuit into an ExecutionPlan (sv/plan.hpp) and executes it.
  void run_in_place(StateVector<T>& state, const qc::Circuit& circuit);

  /// Executes a pre-compiled plan (single-node or simulated-distributed) on
  /// an existing state of matching width. Measurement and noise run through
  /// this simulator's RNG and classical-bit buffer, exactly as run_in_place.
  void run_plan(StateVector<T>& state, const ExecutionPlan& plan);

  /// Executes a pre-compiled plan over a batch of same-width states — one
  /// noise trajectory per state, with the plan walked once for the whole
  /// batch (engine run_plan_batch). Trajectory i draws from its own RNG
  /// stream derived from the simulator seed and the GLOBAL trajectory index
  /// `first_trajectory + i`, so a 100-shot job produces identical results
  /// whether executed as one batch of 100 or four batches of 25. Returns
  /// the per-trajectory classical bits; classical_bits() afterwards holds
  /// the last trajectory's bits.
  std::vector<std::vector<bool>> run_plan_batch(
      const std::vector<StateVector<T>*>& states, const ExecutionPlan& plan,
      std::uint64_t first_trajectory = 0);

  /// Classical bits recorded by MEASURE gates in the most recent run.
  const std::vector<bool>& classical_bits() const noexcept {
    return classical_bits_;
  }

  /// Executes `shots` shots and histograms the results. For a noiseless
  /// circuit whose measurements (if any) all trail the unitary part, the
  /// state is prepared once and sampled; otherwise each shot is an
  /// independent trajectory. Keys: the measured classical register if the
  /// circuit measures, else the full basis-state index.
  std::map<std::uint64_t, std::size_t> sample_counts(
      const qc::Circuit& circuit, std::size_t shots);

  /// <ψ|O|ψ> on the final state of a unitary circuit (noise: single
  /// trajectory; average externally for channel expectation).
  double expectation(const qc::Circuit& circuit, const qc::PauliOperator& op);

 private:
  /// The context runs resolve against (options_.context or the global one).
  const ExecutionContext& ctx() const noexcept;
  /// Pool for states this simulator creates: the context's when a context
  /// was supplied, else options_.pool.
  ThreadPool& exec_pool() const noexcept;

  SimulatorOptions options_;
  Xoshiro256 rng_;
  std::vector<bool> classical_bits_;
};

extern template void apply_gate<float>(StateVector<float>&, const qc::Gate&);
extern template void apply_gate<double>(StateVector<double>&, const qc::Gate&);
extern template class Simulator<float>;
extern template class Simulator<double>;

}  // namespace svsim::sv
