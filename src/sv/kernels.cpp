#include "sv/kernels.hpp"

#include <algorithm>

namespace svsim::sv {

using qc::Gate;
using qc::GateKind;

const char* kernel_class_name(KernelClass c) {
  switch (c) {
    case KernelClass::Nop: return "nop";
    case KernelClass::PermX: return "perm_x";
    case KernelClass::PermY: return "perm_y";
    case KernelClass::PermSwap: return "perm_swap";
    case KernelClass::Mcx: return "mcx";
    case KernelClass::Hadamard: return "h";
    case KernelClass::Diag1: return "diag1";
    case KernelClass::CtrlDiag1: return "cdiag1";
    case KernelClass::McPhase: return "mcphase";
    case KernelClass::Diag2: return "diag2";
    case KernelClass::DiagK: return "diagk";
    case KernelClass::Matrix1: return "mat1";
    case KernelClass::CtrlMatrix1: return "cmat1";
    case KernelClass::Matrix2: return "mat2";
    case KernelClass::MatrixK: return "matk";
    case KernelClass::Unsupported: return "unsupported";
  }
  return "?";
}

KernelClass classify_gate(const Gate& g) {
  switch (g.kind) {
    case GateKind::I:
    case GateKind::BARRIER:
      return KernelClass::Nop;
    case GateKind::X:
      return KernelClass::PermX;
    case GateKind::Y:
      return KernelClass::PermY;
    case GateKind::H:
      return KernelClass::Hadamard;
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::P:
    case GateKind::RZ:
      return KernelClass::Diag1;
    case GateKind::SX:
    case GateKind::SXdg:
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::U:
      return KernelClass::Matrix1;
    case GateKind::CX:
    case GateKind::CCX:
    case GateKind::MCX:
      return KernelClass::Mcx;
    // CZ/CP/CCZ/MCP apply diag(1, phase) on the target: only the all-ones
    // operand subspace is scaled — the controlled-phase specialization.
    case GateKind::CZ:
    case GateKind::CP:
    case GateKind::CCZ:
    case GateKind::MCP:
      return KernelClass::McPhase;
    case GateKind::CRZ:
      return KernelClass::CtrlDiag1;
    case GateKind::CY:
    case GateKind::CH:
    case GateKind::CRX:
    case GateKind::CRY:
      return KernelClass::CtrlMatrix1;
    case GateKind::SWAP:
      return KernelClass::PermSwap;
    case GateKind::RZZ:
      return KernelClass::Diag2;
    case GateKind::ISWAP:
    case GateKind::RXX:
    case GateKind::RYY:
    case GateKind::U2Q:
      return KernelClass::Matrix2;
    case GateKind::CSWAP:
      return KernelClass::MatrixK;
    case GateKind::DIAG:
      return KernelClass::DiagK;
    case GateKind::UNITARY:
      if (g.num_qubits() == 1) return KernelClass::Matrix1;
      if (g.num_qubits() == 2) return KernelClass::Matrix2;
      return KernelClass::MatrixK;
    case GateKind::MEASURE:
    case GateKind::RESET:
      return KernelClass::Unsupported;
  }
  return KernelClass::Unsupported;
}

namespace {

template <typename T>
std::vector<std::complex<T>> cast_matrix(const qc::Matrix& u) {
  std::vector<std::complex<T>> m(u.dim() * u.dim());
  for (std::size_t r = 0; r < u.dim(); ++r)
    for (std::size_t c = 0; c < u.dim(); ++c)
      m[r * u.dim() + c] = detail::cast_c<T>(u(r, c));
  return m;
}

}  // namespace

template <typename T>
PreparedGate<T> prepare_gate(const Gate& g) {
  PreparedGate<T> pg;
  pg.cls = classify_gate(g);
  pg.qubits = g.qubits;
  require(pg.cls != KernelClass::Unsupported,
          "prepare_gate: MEASURE/RESET have no block kernel");

  // Sorted operand positions + masks (used by the gather-style kernels).
  pg.sorted = g.qubits;
  std::sort(pg.sorted.begin(), pg.sorted.end());
  for (unsigned q : g.qubits) pg.mask |= pow2(q);
  for (unsigned c : g.controls()) pg.cmask |= pow2(c);
  const auto targets = g.targets();
  pg.target = targets.empty() ? 0 : targets[0];

  switch (pg.cls) {
    case KernelClass::Nop:
    case KernelClass::PermX:
    case KernelClass::PermY:
    case KernelClass::PermSwap:
    case KernelClass::Mcx:
    case KernelClass::Hadamard:
      break;
    case KernelClass::Diag1: {
      const qc::Matrix u = g.matrix();
      pg.coeff = {detail::cast_c<T>(u(0, 0)), detail::cast_c<T>(u(1, 1))};
      break;
    }
    case KernelClass::CtrlDiag1: {
      const qc::Matrix u = g.target_matrix();
      pg.coeff = {detail::cast_c<T>(u(0, 0)), detail::cast_c<T>(u(1, 1))};
      break;
    }
    case KernelClass::McPhase: {
      const qc::Matrix u = g.target_matrix();
      pg.coeff = {detail::cast_c<T>(u(1, 1))};
      break;
    }
    case KernelClass::Matrix1:
      pg.coeff = cast_matrix<T>(g.kind == GateKind::UNITARY
                                    ? g.matrix_payload()
                                    : g.matrix());
      break;
    case KernelClass::CtrlMatrix1:
      pg.coeff = cast_matrix<T>(g.target_matrix());
      break;
    case KernelClass::Matrix2:
      pg.coeff = cast_matrix<T>(g.kind == GateKind::UNITARY
                                    ? g.matrix_payload()
                                    : g.matrix());
      break;
    case KernelClass::Diag2: {
      const qc::Matrix u = g.matrix();
      pg.coeff = {detail::cast_c<T>(u(0, 0)), detail::cast_c<T>(u(1, 1)),
                  detail::cast_c<T>(u(2, 2)), detail::cast_c<T>(u(3, 3))};
      break;
    }
    case KernelClass::DiagK: {
      const auto& d = g.diagonal_entries();
      pg.coeff.resize(d.size());
      for (std::size_t i = 0; i < d.size(); ++i)
        pg.coeff[i] = detail::cast_c<T>(d[i]);
      break;
    }
    case KernelClass::MatrixK: {
      const unsigned k = g.num_qubits();
      require(k <= detail::blk::kMaxBlockMatrixK,
              "prepare_gate: dense width too large for the block path");
      pg.coeff = cast_matrix<T>(g.kind == GateKind::UNITARY
                                    ? g.matrix_payload()
                                    : g.matrix());
      const std::uint64_t sub = pow2(k);
      pg.offs.resize(sub);
      for (std::uint64_t s = 0; s < sub; ++s)
        pg.offs[s] = scatter_bits(s, g.qubits);
      break;
    }
    case KernelClass::Unsupported:
      break;  // unreachable (require above)
  }
  return pg;
}

template PreparedGate<float> prepare_gate<float>(const Gate&);
template PreparedGate<double> prepare_gate<double>(const Gate&);

}  // namespace svsim::sv
