#include "sv/sweep.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace svsim::sv {

using qc::Gate;
using qc::GateKind;

unsigned auto_block_qubits(unsigned num_qubits, std::uint64_t cache_bytes,
                           unsigned amp_bytes, unsigned min_free) {
  require(amp_bytes > 0, "auto_block_qubits: amp_bytes must be positive");
  unsigned b = 1;
  while (b + 1 <= 30 && (pow2(b + 1) * amp_bytes) <= cache_bytes) ++b;
  // Leave min_free qubits of blocks for the thread pool when possible.
  if (num_qubits > min_free) b = std::min(b, num_qubits - min_free);
  return std::max(1u, std::min(b, num_qubits));
}

namespace {

/// True if the blocked engine may apply `g` inside a 2^b-amplitude block:
/// a unitary operation whose operands all lie strictly below bit `b`.
/// BARRIER/I are excluded (they are free as pass-throughs and would only
/// inflate sweep bookkeeping); MEASURE/RESET need the simulator's RNG.
bool block_local(const Gate& g, unsigned b) {
  if (!g.is_unitary_op() || g.kind == GateKind::I ||
      g.kind == GateKind::BARRIER) {
    return false;
  }
  return g.max_qubit() < b;
}

bool free_passthrough(const Gate& g) {
  return g.kind == GateKind::I || g.kind == GateKind::BARRIER;
}

}  // namespace

std::size_t SweepPlan::traversals() const noexcept {
  std::size_t t = 0;
  for (const auto& step : steps) {
    if (step.blocked) {
      ++t;
    } else {
      for (const auto& g : step.gates)
        if (!free_passthrough(g)) ++t;
    }
  }
  return t;
}

double SweepPlan::gates_per_traversal() const noexcept {
  const std::size_t t = traversals();
  return t == 0 ? 0.0
               : static_cast<double>(blocked_gates + passthrough_gates) /
                     static_cast<double>(t);
}

SweepPlan plan_sweeps(const qc::Circuit& circuit, const SweepOptions& options) {
  return plan_sweeps(circuit.gates(), circuit.num_qubits(), options);
}

SweepPlan plan_sweeps(const std::vector<Gate>& gates, unsigned num_qubits,
                      const SweepOptions& options) {
  require(options.max_sweep_gates >= 1,
          "plan_sweeps: max_sweep_gates must be >= 1");
  const unsigned n = num_qubits;
  SweepPlan plan;
  plan.block_qubits =
      options.block_qubits != 0
          ? std::min(options.block_qubits, n)
          : auto_block_qubits(n, options.cache_bytes, options.amp_bytes,
                              options.min_free_qubits);

  SweepStep current;
  current.blocked = true;
  auto flush = [&] {
    if (current.gates.empty()) return;
    plan.blocked_gates += current.gates.size();
    plan.steps.push_back(std::move(current));
    current = SweepStep{};
    current.blocked = true;
  };

  for (const auto& g : gates) {
    if (block_local(g, plan.block_qubits)) {
      if (current.gates.size() >= options.max_sweep_gates) flush();
      current.gates.push_back(g);
      continue;
    }
    flush();
    SweepStep pass;
    pass.blocked = false;
    pass.gates.push_back(g);
    if (!free_passthrough(g)) ++plan.passthrough_gates;
    plan.steps.push_back(std::move(pass));
  }
  flush();

  // Planner telemetry: how much of the circuit the blocked path captured.
  // Handles are resolved per call (no function-local statics) so they land
  // in whichever registry the caller's context carries.
  auto& registry = options.metrics != nullptr ? *options.metrics
                                              : obs::MetricsRegistry::global();
  registry.counter("sweep.plans").increment();
  registry.counter("sweep.blocked_gates").add(plan.blocked_gates);
  registry.counter("sweep.passthrough_gates").add(plan.passthrough_gates);
  return plan;
}

}  // namespace svsim::sv
