// Parameter-shift gradients of observable expectations.
//
// For gates of the form exp(-i θ G / 2) with G² = I (RX, RY, RZ, RXX, RYY,
// RZZ — and P/CP, whose global/controlled phase structure still satisfies
// the two-term rule with a π shift at the ±π/2 points for the expectation),
// d<H>/dθ = ( <H>(θ+π/2) − <H>(θ−π/2) ) / 2.
//
// This is the exact gradient rule hardware uses (no finite-difference
// noise); here it doubles as a strong consistency test of the simulator
// (validated against central finite differences in the test suite).
#pragma once

#include <vector>

#include "qc/circuit.hpp"
#include "qc/pauli.hpp"
#include "sv/simulator.hpp"

namespace svsim::sv {

/// Indices (into circuit.gates()) of the gates the shift rule supports:
/// single-parameter Pauli rotations RX/RY/RZ/RXX/RYY/RZZ and the phase
/// gates P/CP (single-frequency expectations; controlled rotations like
/// CRZ mix frequencies 1/2 and 1 and would need the four-term rule).
std::vector<std::size_t> shiftable_parameters(const qc::Circuit& circuit);

/// d<observable>/dθ_k for every shiftable parameter, in the order returned
/// by shiftable_parameters(). Uses 2 circuit evaluations per parameter.
/// Throws if the circuit contains measure/reset or a parameterized gate
/// kind the rule does not cover (U, CRX, CRY, CRZ, MCP).
template <typename T>
std::vector<double> parameter_shift_gradient(
    Simulator<T>& simulator, const qc::Circuit& circuit,
    const qc::PauliOperator& observable);

extern template std::vector<double> parameter_shift_gradient<float>(
    Simulator<float>&, const qc::Circuit&, const qc::PauliOperator&);
extern template std::vector<double> parameter_shift_gradient<double>(
    Simulator<double>&, const qc::Circuit&, const qc::PauliOperator&);

}  // namespace svsim::sv
