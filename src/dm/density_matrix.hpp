// Exact density-matrix simulation — the noise-validation substrate.
//
// Stores the full 2^n x 2^n density matrix and evolves it exactly:
// ρ → U ρ U† for unitaries, ρ → Σ_k K_k ρ K_k† for channels. Memory is
// 4^n amplitudes, so this backend tops out around 10-12 qubits — exactly
// what is needed to validate the state-vector trajectory noise (stochastic
// unraveling) against the closed-form channel evolution, and to compute
// mixed-state quantities (purity, populations) trajectories only estimate.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "qc/circuit.hpp"
#include "qc/matrix.hpp"
#include "qc/pauli.hpp"
#include "sv/noise.hpp"

namespace svsim::dm {

class DensityMatrix {
 public:
  /// ρ = |0...0><0...0| on n qubits (n <= 12).
  explicit DensityMatrix(unsigned num_qubits);

  unsigned num_qubits() const noexcept { return n_; }
  std::uint64_t dim() const noexcept { return std::uint64_t{1} << n_; }

  std::complex<double>& at(std::uint64_t r, std::uint64_t c) {
    return rho_[r * dim() + c];
  }
  const std::complex<double>& at(std::uint64_t r, std::uint64_t c) const {
    return rho_[r * dim() + c];
  }

  /// Initializes to the pure state |psi><psi|.
  void set_pure(const std::vector<std::complex<double>>& psi);

  /// Applies a unitary gate: ρ → U ρ U† (U embedded on the gate's qubits).
  void apply_gate(const qc::Gate& gate);

  /// Applies all unitary gates of the circuit (measure/reset rejected).
  void apply(const qc::Circuit& circuit);

  /// Applies a channel given by Kraus operators acting on `qubits`
  /// (each matrix has dim 2^|qubits|): ρ → Σ_k K_k ρ K_k†.
  void apply_kraus(const std::vector<qc::Matrix>& kraus,
                   const std::vector<unsigned>& qubits);

  /// Applies one of the library noise channels exactly to `qubits`
  /// (same semantics as the trajectory channels in sv::NoiseModel).
  void apply_depolarizing(double p, const std::vector<unsigned>& qubits);
  void apply_bit_flip(double p, unsigned qubit);
  void apply_phase_flip(double p, unsigned qubit);
  void apply_amplitude_damping(double gamma, unsigned qubit);

  /// Applies `noise` after a gate the way Simulator does per trajectory —
  /// but exactly (the channel average).
  void apply_noise_after(const sv::NoiseModel& noise, const qc::Gate& gate);

  /// tr(ρ) — must stay 1.
  double trace() const;
  /// tr(ρ²) — 1 for pure states, 1/2^n for the maximally mixed state.
  double purity() const;
  /// P(basis state i) = ρ_ii.
  double population(std::uint64_t basis) const;
  /// tr(ρ P).
  double expectation(const qc::PauliString& pauli) const;
  /// <ψ|ρ|ψ> for a pure reference state (fidelity with a pure state).
  double fidelity_with_pure(
      const std::vector<std::complex<double>>& psi) const;

 private:
  unsigned n_ = 0;
  std::vector<std::complex<double>> rho_;  ///< row-major dim x dim
};

/// Runs a circuit with exact channel noise from |0...0|: every unitary gate
/// is followed by the exact channel `noise` prescribes for it.
DensityMatrix run_with_noise(const qc::Circuit& circuit,
                             const sv::NoiseModel& noise);

}  // namespace svsim::dm
