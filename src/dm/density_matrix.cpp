#include "dm/density_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace svsim::dm {

using qc::Gate;
using qc::GateKind;
using qc::Matrix;
using qc::cplx;

DensityMatrix::DensityMatrix(unsigned num_qubits)
    : n_(num_qubits), rho_(pow2(2 * num_qubits), cplx{0.0, 0.0}) {
  require(num_qubits >= 1 && num_qubits <= 12,
          "DensityMatrix supports 1..12 qubits");
  rho_[0] = 1.0;
}

void DensityMatrix::set_pure(const std::vector<cplx>& psi) {
  require(psi.size() == dim(), "set_pure: state size mismatch");
  for (std::uint64_t r = 0; r < dim(); ++r)
    for (std::uint64_t c = 0; c < dim(); ++c)
      at(r, c) = psi[r] * std::conj(psi[c]);
}

namespace {

/// Applies the small matrix `m` (on `qubits`, qubits[0] = LSB) to a strided
/// vector view v[i * stride], i in [0, 2^n): v → M_embedded v.
void apply_embedded(const Matrix& m, const std::vector<unsigned>& qubits,
                    unsigned n, cplx* v, std::uint64_t stride) {
  const unsigned k = static_cast<unsigned>(qubits.size());
  const std::uint64_t sub = pow2(k);
  SVSIM_ASSERT(m.dim() == sub);
  std::vector<unsigned> sorted(qubits.begin(), qubits.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<cplx> in(sub), out(sub);
  for (std::uint64_t o = 0; o < pow2(n - k); ++o) {
    const std::uint64_t base = insert_zero_bits(o, sorted);
    for (std::uint64_t s = 0; s < sub; ++s)
      in[s] = v[(base | scatter_bits(s, qubits)) * stride];
    for (std::uint64_t r = 0; r < sub; ++r) {
      cplx acc{0.0, 0.0};
      for (std::uint64_t c = 0; c < sub; ++c) acc += m(r, c) * in[c];
      out[r] = acc;
    }
    for (std::uint64_t s = 0; s < sub; ++s)
      v[(base | scatter_bits(s, qubits)) * stride] = out[s];
  }
}

Matrix conjugated(const Matrix& m) {
  Matrix out(m.dim());
  for (std::size_t r = 0; r < m.dim(); ++r)
    for (std::size_t c = 0; c < m.dim(); ++c)
      out(r, c) = std::conj(m(r, c));
  return out;
}

}  // namespace

void DensityMatrix::apply_gate(const Gate& gate) {
  if (gate.kind == GateKind::BARRIER || gate.kind == GateKind::I) return;
  require(gate.is_unitary_op(),
          "DensityMatrix::apply_gate: non-unitary operation");
  const Matrix u = gate.matrix();
  const Matrix u_conj = conjugated(u);
  const std::uint64_t d = dim();
  // ρ → U ρ: apply U to every column (stride d).
  for (std::uint64_t c = 0; c < d; ++c)
    apply_embedded(u, gate.qubits, n_, rho_.data() + c, d);
  // (Uρ) → (Uρ) U†: apply conj(U) to every row (stride 1).
  for (std::uint64_t r = 0; r < d; ++r)
    apply_embedded(u_conj, gate.qubits, n_, rho_.data() + r * d, 1);
}

void DensityMatrix::apply(const qc::Circuit& circuit) {
  require(circuit.num_qubits() == n_, "DensityMatrix::apply: width mismatch");
  for (const auto& g : circuit.gates()) apply_gate(g);
}

void DensityMatrix::apply_kraus(const std::vector<Matrix>& kraus,
                                const std::vector<unsigned>& qubits) {
  require(!kraus.empty(), "apply_kraus: empty operator list");
  const std::uint64_t d = dim();
  std::vector<cplx> result(rho_.size(), cplx{0.0, 0.0});
  std::vector<cplx> work;
  for (const Matrix& k : kraus) {
    work = rho_;
    const Matrix k_conj = conjugated(k);
    for (std::uint64_t c = 0; c < d; ++c)
      apply_embedded(k, qubits, n_, work.data() + c, d);
    for (std::uint64_t r = 0; r < d; ++r)
      apply_embedded(k_conj, qubits, n_, work.data() + r * d, 1);
    for (std::size_t i = 0; i < result.size(); ++i) result[i] += work[i];
  }
  rho_ = std::move(result);
}

void DensityMatrix::apply_depolarizing(double p,
                                       const std::vector<unsigned>& qubits) {
  require(p >= 0.0 && p <= 1.0, "apply_depolarizing: bad probability");
  const unsigned k = static_cast<unsigned>(qubits.size());
  const std::uint64_t paulis = pow2(2 * k);
  std::vector<Matrix> kraus;
  kraus.reserve(paulis);
  const double per = p / static_cast<double>(paulis - 1);
  for (std::uint64_t code = 0; code < paulis; ++code) {
    // Joint Pauli over the k local qubits: 2 bits per qubit.
    std::uint64_t x = 0, z = 0;
    for (unsigned i = 0; i < k; ++i) {
      const unsigned c = static_cast<unsigned>((code >> (2 * i)) & 3u);
      if (c == 1 || c == 2) x |= pow2(i);
      if (c == 2 || c == 3) z |= pow2(i);
    }
    const qc::PauliString ps(k, x, z);
    const double weight = code == 0 ? 1.0 - p : per;
    kraus.push_back(ps.to_matrix() * cplx{std::sqrt(weight), 0.0});
  }
  apply_kraus(kraus, qubits);
}

void DensityMatrix::apply_bit_flip(double p, unsigned qubit) {
  apply_kraus({qc::mat::I() * cplx{std::sqrt(1.0 - p), 0.0},
               qc::mat::X() * cplx{std::sqrt(p), 0.0}},
              {qubit});
}

void DensityMatrix::apply_phase_flip(double p, unsigned qubit) {
  apply_kraus({qc::mat::I() * cplx{std::sqrt(1.0 - p), 0.0},
               qc::mat::Z() * cplx{std::sqrt(p), 0.0}},
              {qubit});
}

void DensityMatrix::apply_amplitude_damping(double gamma, unsigned qubit) {
  const Matrix k0(2, {1.0, 0.0, 0.0, std::sqrt(1.0 - gamma)});
  const Matrix k1(2, {0.0, std::sqrt(gamma), 0.0, 0.0});
  apply_kraus({k0, k1}, {qubit});
}

void DensityMatrix::apply_noise_after(const sv::NoiseModel& noise,
                                      const Gate& gate) {
  if (!gate.is_unitary_op()) return;
  for (const auto& ch : noise.channels()) {
    if (ch.arity != 0 && ch.arity != gate.num_qubits()) continue;
    switch (ch.type) {
      case sv::NoiseChannel::Type::Depolarizing:
        apply_depolarizing(ch.parameter, gate.qubits);
        break;
      case sv::NoiseChannel::Type::BitFlip:
        for (unsigned q : gate.qubits) apply_bit_flip(ch.parameter, q);
        break;
      case sv::NoiseChannel::Type::PhaseFlip:
        for (unsigned q : gate.qubits) apply_phase_flip(ch.parameter, q);
        break;
      case sv::NoiseChannel::Type::AmplitudeDamping:
        for (unsigned q : gate.qubits)
          apply_amplitude_damping(ch.parameter, q);
        break;
    }
  }
}

double DensityMatrix::trace() const {
  double t = 0.0;
  for (std::uint64_t i = 0; i < dim(); ++i) t += at(i, i).real();
  return t;
}

double DensityMatrix::purity() const {
  // tr(ρ²) = Σ_{r,c} ρ_{rc} ρ_{cr} = Σ |ρ_{rc}|² for Hermitian ρ.
  double p = 0.0;
  for (const cplx& v : rho_) p += std::norm(v);
  return p;
}

double DensityMatrix::population(std::uint64_t basis) const {
  require(basis < dim(), "population: basis index out of range");
  return at(basis, basis).real();
}

double DensityMatrix::expectation(const qc::PauliString& pauli) const {
  require(pauli.num_qubits() == n_, "expectation: width mismatch");
  // tr(ρP) = Σ_i φ(i) ρ_{i, r(i)} with P|i> = φ(i)|r(i)>.
  cplx acc{0.0, 0.0};
  for (std::uint64_t i = 0; i < dim(); ++i) {
    const auto [row, phase] = pauli.apply_to_basis(i);
    acc += cplx{phase.real(), phase.imag()} * at(i, row);
  }
  return acc.real();
}

double DensityMatrix::fidelity_with_pure(const std::vector<cplx>& psi) const {
  require(psi.size() == dim(), "fidelity_with_pure: size mismatch");
  cplx acc{0.0, 0.0};
  for (std::uint64_t r = 0; r < dim(); ++r)
    for (std::uint64_t c = 0; c < dim(); ++c)
      acc += std::conj(psi[r]) * at(r, c) * psi[c];
  return acc.real();
}

DensityMatrix run_with_noise(const qc::Circuit& circuit,
                             const sv::NoiseModel& noise) {
  require(circuit.is_unitary(),
          "run_with_noise: circuit must not contain measure/reset");
  DensityMatrix rho(circuit.num_qubits());
  for (const auto& g : circuit.gates()) {
    if (g.kind == GateKind::BARRIER || g.kind == GateKind::I) continue;
    rho.apply_gate(g);
    rho.apply_noise_after(noise, g);
  }
  return rho;
}

}  // namespace svsim::dm
