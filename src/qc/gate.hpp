// Gate definitions: the instruction set of the circuit IR.
//
// A Gate names an operation (kind), its operand qubits (controls first for
// controlled kinds), its real parameters (rotation angles), and — for the
// generic kinds UNITARY / U2Q / DIAG — an explicit matrix payload shared via
// shared_ptr so gates stay cheap to copy.
//
// Conventions (matching Qiskit / OpenQASM little-endian):
//  * qubits[0] is the least-significant bit of the gate's matrix index.
//  * RX/RY/RZ(θ) = exp(-i θ P / 2); P(λ) = diag(1, e^{iλ}).
//  * U(θ,φ,λ) = [[cos(θ/2), -e^{iλ} sin(θ/2)],
//               [e^{iφ} sin(θ/2), e^{i(φ+λ)} cos(θ/2)]].
//  * RXX/RYY/RZZ(θ) = exp(-i θ P⊗P / 2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qc/matrix.hpp"

namespace svsim::qc {

enum class GateKind : std::uint8_t {
  // one-qubit, parameter-free
  I, X, Y, Z, H, S, Sdg, T, Tdg, SX, SXdg,
  // one-qubit, parameterized
  RX, RY, RZ, P, U,
  // two-qubit
  CX, CY, CZ, CH, CP, CRX, CRY, CRZ,
  SWAP, ISWAP, RXX, RYY, RZZ,
  U2Q,   // general two-qubit unitary (matrix payload)
  // three-qubit
  CCX, CCZ, CSWAP,
  // n-qubit
  MCX,     // multi-controlled X (any number of controls)
  MCP,     // multi-controlled phase
  DIAG,    // diagonal unitary on k qubits (diagonal payload)
  UNITARY, // dense k-qubit unitary (matrix payload); produced by fusion
  // non-unitary / meta operations
  MEASURE, RESET, BARRIER,
};

/// Short lowercase mnemonic ("h", "cx", "rzz", ...).
const char* gate_kind_name(GateKind kind);

/// One circuit operation.
class Gate {
 public:
  GateKind kind = GateKind::I;
  /// Operand qubits; for controlled kinds, controls come first and the
  /// target(s) last. All indices must be distinct.
  std::vector<unsigned> qubits;
  /// Rotation angles / phases, meaning depends on `kind`.
  std::vector<double> params;
  /// Classical bit for MEASURE (record index in the result buffer).
  unsigned cbit = 0;

  // ---- named constructors: 1-qubit -------------------------------------
  static Gate i(unsigned q) { return make(GateKind::I, {q}); }
  static Gate x(unsigned q) { return make(GateKind::X, {q}); }
  static Gate y(unsigned q) { return make(GateKind::Y, {q}); }
  static Gate z(unsigned q) { return make(GateKind::Z, {q}); }
  static Gate h(unsigned q) { return make(GateKind::H, {q}); }
  static Gate s(unsigned q) { return make(GateKind::S, {q}); }
  static Gate sdg(unsigned q) { return make(GateKind::Sdg, {q}); }
  static Gate t(unsigned q) { return make(GateKind::T, {q}); }
  static Gate tdg(unsigned q) { return make(GateKind::Tdg, {q}); }
  static Gate sx(unsigned q) { return make(GateKind::SX, {q}); }
  static Gate sxdg(unsigned q) { return make(GateKind::SXdg, {q}); }
  static Gate rx(unsigned q, double theta) {
    return make(GateKind::RX, {q}, {theta});
  }
  static Gate ry(unsigned q, double theta) {
    return make(GateKind::RY, {q}, {theta});
  }
  static Gate rz(unsigned q, double theta) {
    return make(GateKind::RZ, {q}, {theta});
  }
  static Gate p(unsigned q, double lambda) {
    return make(GateKind::P, {q}, {lambda});
  }
  static Gate u(unsigned q, double theta, double phi, double lambda) {
    return make(GateKind::U, {q}, {theta, phi, lambda});
  }

  // ---- named constructors: 2-qubit -------------------------------------
  static Gate cx(unsigned c, unsigned t) { return make(GateKind::CX, {c, t}); }
  static Gate cy(unsigned c, unsigned t) { return make(GateKind::CY, {c, t}); }
  static Gate cz(unsigned c, unsigned t) { return make(GateKind::CZ, {c, t}); }
  static Gate ch(unsigned c, unsigned t) { return make(GateKind::CH, {c, t}); }
  static Gate cp(unsigned c, unsigned t, double lambda) {
    return make(GateKind::CP, {c, t}, {lambda});
  }
  static Gate crx(unsigned c, unsigned t, double theta) {
    return make(GateKind::CRX, {c, t}, {theta});
  }
  static Gate cry(unsigned c, unsigned t, double theta) {
    return make(GateKind::CRY, {c, t}, {theta});
  }
  static Gate crz(unsigned c, unsigned t, double theta) {
    return make(GateKind::CRZ, {c, t}, {theta});
  }
  static Gate swap(unsigned a, unsigned b) {
    return make(GateKind::SWAP, {a, b});
  }
  static Gate iswap(unsigned a, unsigned b) {
    return make(GateKind::ISWAP, {a, b});
  }
  static Gate rxx(unsigned a, unsigned b, double theta) {
    return make(GateKind::RXX, {a, b}, {theta});
  }
  static Gate ryy(unsigned a, unsigned b, double theta) {
    return make(GateKind::RYY, {a, b}, {theta});
  }
  static Gate rzz(unsigned a, unsigned b, double theta) {
    return make(GateKind::RZZ, {a, b}, {theta});
  }
  /// General two-qubit unitary (4x4). qubits[0]=a is the matrix LSB.
  static Gate u2q(unsigned a, unsigned b, Matrix m);

  // ---- named constructors: 3-qubit and n-qubit -------------------------
  static Gate ccx(unsigned c0, unsigned c1, unsigned t) {
    return make(GateKind::CCX, {c0, c1, t});
  }
  static Gate ccz(unsigned c0, unsigned c1, unsigned t) {
    return make(GateKind::CCZ, {c0, c1, t});
  }
  static Gate cswap(unsigned c, unsigned a, unsigned b) {
    return make(GateKind::CSWAP, {c, a, b});
  }
  static Gate mcx(std::vector<unsigned> controls, unsigned target);
  static Gate mcp(std::vector<unsigned> controls, unsigned target,
                  double lambda);
  /// Diagonal unitary on `qs`; diag has 2^|qs| entries, indexed with qs[0]
  /// as LSB.
  static Gate diag(std::vector<unsigned> qs, std::vector<cplx> diag_entries);
  /// Dense k-qubit unitary on `qs` (dim 2^|qs|), qs[0] as LSB.
  static Gate unitary(std::vector<unsigned> qs, Matrix m);

  // ---- named constructors: non-unitary ---------------------------------
  static Gate measure(unsigned q, unsigned classical_bit);
  static Gate reset(unsigned q) { return make(GateKind::RESET, {q}); }
  static Gate barrier() { return make(GateKind::BARRIER, {}); }

  // ---- queries ----------------------------------------------------------
  const char* name() const { return gate_kind_name(kind); }
  unsigned num_qubits() const noexcept {
    return static_cast<unsigned>(qubits.size());
  }
  /// Number of leading operands that are controls for this kind (0 for
  /// non-controlled kinds; qubits.size()-1 for MCX/MCP).
  unsigned num_controls() const noexcept;
  /// Target qubits (operands after the controls).
  std::vector<unsigned> targets() const;
  /// Control qubits (leading operands).
  std::vector<unsigned> controls() const;

  /// Highest operand qubit index, or 0 for operand-free gates (BARRIER).
  /// `max_qubit() < b` is the block-locality test the plan compiler uses
  /// to decide whether a gate can run inside a 2^b-amplitude block.
  unsigned max_qubit() const noexcept;

  /// True for gates representable by a unitary (everything except
  /// MEASURE / RESET / BARRIER).
  bool is_unitary_op() const noexcept;
  /// True if the full matrix is diagonal in the computational basis.
  bool is_diagonal() const noexcept;
  /// True for kinds carrying rotation-angle parameters.
  bool is_parameterized() const noexcept { return !params.empty(); }

  /// Full unitary on all operand qubits (controls included),
  /// dim = 2^qubits.size(), with qubits[0] as the LSB of the matrix index.
  /// Throws for non-unitary kinds.
  Matrix matrix() const;

  /// For kinds that are a controlled single-target operation (CX..CRZ, CCX,
  /// CCZ, MCX, MCP): the 2x2 matrix applied to the target when all controls
  /// are 1. Throws for other kinds.
  Matrix target_matrix() const;

  /// Gate implementing the adjoint. Parameterized kinds negate angles;
  /// matrix-payload kinds take the dagger.
  Gate inverse() const;

  /// Diagonal entries for DIAG gates.
  const std::vector<cplx>& diagonal_entries() const;
  /// Matrix payload for UNITARY / U2Q gates.
  const Matrix& matrix_payload() const;

  /// Human-readable rendering, e.g. "cx q[0],q[3]" or "rz(0.5) q[2]".
  std::string to_string() const;

  /// Validates operand distinctness and payload shape; throws on error.
  void validate() const;

 private:
  static Gate make(GateKind kind, std::vector<unsigned> qubits,
                   std::vector<double> params = {});

  std::shared_ptr<const Matrix> matrix_payload_;
  std::shared_ptr<const std::vector<cplx>> diag_payload_;
};

/// Embeds `u` (on nt target qubits) as a controlled unitary with `nc`
/// controls occupying the *low* bits of the result index: the result has
/// dimension 2^(nc+nt) and applies `u` on the high bits exactly when all low
/// (control) bits are 1.
Matrix controlled_matrix(const Matrix& u, unsigned num_controls);

/// The 2x2 constants used across the library.
namespace mat {
Matrix I();
Matrix X();
Matrix Y();
Matrix Z();
Matrix H();
Matrix S();
Matrix Sdg();
Matrix T();
Matrix Tdg();
Matrix SX();
Matrix SXdg();
Matrix RX(double theta);
Matrix RY(double theta);
Matrix RZ(double theta);
Matrix P(double lambda);
Matrix U(double theta, double phi, double lambda);
Matrix SWAP();
Matrix ISWAP();
Matrix RXX(double theta);
Matrix RYY(double theta);
Matrix RZZ(double theta);
}  // namespace mat

}  // namespace svsim::qc
