#include "qc/routing.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "common/error.hpp"

namespace svsim::qc {

namespace {

/// Moves the logical qubit at physical position `from` to position `to` by
/// inserting adjacent SWAPs, updating layout maps.
void shift(unsigned from, unsigned to, Circuit& out,
           std::vector<unsigned>& phys_of, std::vector<unsigned>& log_at,
           std::size_t& swaps) {
  while (from != to) {
    const unsigned next = from < to ? from + 1 : from - 1;
    out.swap(from, next);
    ++swaps;
    std::swap(log_at[from], log_at[next]);
    phys_of[log_at[from]] = from;
    phys_of[log_at[next]] = next;
    from = next;
  }
}

}  // namespace

RoutedCircuit route_linear(const Circuit& circuit) {
  const unsigned n = circuit.num_qubits();
  RoutedCircuit result{Circuit(n, circuit.num_clbits()), {}, 0};
  std::vector<unsigned> phys_of(n);  // logical -> physical
  std::vector<unsigned> log_at(n);   // physical -> logical
  std::iota(phys_of.begin(), phys_of.end(), 0u);
  std::iota(log_at.begin(), log_at.end(), 0u);

  for (const auto& g : circuit.gates()) {
    if (g.kind == GateKind::BARRIER) {
      result.circuit.barrier();
      continue;
    }
    require(g.num_qubits() <= 2,
            "route_linear: decompose gates wider than 2 qubits first ('" +
                std::string(g.name()) + "')");
    Gate mapped = g;
    for (auto& q : mapped.qubits) q = phys_of[q];
    if (mapped.num_qubits() == 2) {
      unsigned a = mapped.qubits[0];
      unsigned b = mapped.qubits[1];
      if (a > b ? a - b > 1 : b - a > 1) {
        // Walk the first operand next to the second (cheapest single-line
        // strategy; moving the closer one would also work).
        const unsigned target_pos = a < b ? b - 1 : b + 1;
        shift(a, target_pos, result.circuit, phys_of, log_at, result.swaps_inserted);
        mapped.qubits[0] = phys_of[g.qubits[0]];
        mapped.qubits[1] = phys_of[g.qubits[1]];
      }
    }
    result.circuit.append(std::move(mapped));
  }
  result.final_layout = phys_of;
  return result;
}

bool respects_linear_coupling(const Circuit& circuit) {
  for (const auto& g : circuit.gates()) {
    if (!g.is_unitary_op() || g.num_qubits() < 2) continue;
    if (g.num_qubits() > 2) return false;
    const unsigned a = g.qubits[0], b = g.qubits[1];
    if ((a > b ? a - b : b - a) != 1) return false;
  }
  return true;
}

}  // namespace svsim::qc
