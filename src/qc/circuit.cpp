#include "qc/circuit.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace svsim::qc {

Circuit::Circuit(unsigned num_qubits, unsigned num_clbits)
    : num_qubits_(num_qubits),
      num_clbits_(num_clbits == 0 ? num_qubits : num_clbits) {
  require(num_qubits > 0, "Circuit requires at least one qubit");
}

Circuit& Circuit::append(Gate g) {
  for (unsigned q : g.qubits)
    require(q < num_qubits_, "gate '" + std::string(g.name()) +
                                 "' references qubit " + std::to_string(q) +
                                 " outside register of size " +
                                 std::to_string(num_qubits_));
  if (g.kind == GateKind::MEASURE)
    require(g.cbit < num_clbits_, "measure references classical bit " +
                                      std::to_string(g.cbit) +
                                      " outside register");
  gates_.push_back(std::move(g));
  return *this;
}

Circuit& Circuit::measure_all() {
  require(num_clbits_ >= num_qubits_,
          "measure_all needs one classical bit per qubit");
  for (unsigned q = 0; q < num_qubits_; ++q) measure(q, q);
  return *this;
}

unsigned Circuit::depth() const {
  std::vector<unsigned> level(num_qubits_, 0);
  unsigned max_level = 0;
  for (const auto& g : gates_) {
    if (g.kind == GateKind::BARRIER) continue;
    unsigned start = 0;
    for (unsigned q : g.qubits) start = std::max(start, level[q]);
    for (unsigned q : g.qubits) level[q] = start + 1;
    max_level = std::max(max_level, start + 1);
  }
  return max_level;
}

std::map<std::string, std::size_t> Circuit::gate_counts() const {
  std::map<std::string, std::size_t> counts;
  for (const auto& g : gates_) ++counts[g.name()];
  return counts;
}

std::size_t Circuit::multi_qubit_gate_count() const {
  std::size_t n = 0;
  for (const auto& g : gates_)
    if (g.is_unitary_op() && g.num_qubits() >= 2) ++n;
  return n;
}

bool Circuit::is_unitary() const {
  return std::all_of(gates_.begin(), gates_.end(), [](const Gate& g) {
    return g.kind != GateKind::MEASURE && g.kind != GateKind::RESET;
  });
}

Circuit& Circuit::compose(const Circuit& other) {
  require(other.num_qubits_ == num_qubits_,
          "compose: qubit count mismatch");
  gates_.reserve(gates_.size() + other.gates_.size());
  for (const auto& g : other.gates_) append(g);
  return *this;
}

Circuit Circuit::inverse() const {
  require(is_unitary(), "inverse: circuit contains measure/reset");
  Circuit inv(num_qubits_, num_clbits_);
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
    if (it->kind == GateKind::BARRIER) {
      inv.append(*it);
      continue;
    }
    inv.append(it->inverse());
  }
  return inv;
}

Circuit Circuit::remap(const std::vector<unsigned>& mapping) const {
  require(mapping.size() == num_qubits_, "remap: mapping size mismatch");
  std::vector<bool> hit(num_qubits_, false);
  for (unsigned m : mapping) {
    require(m < num_qubits_ && !hit[m], "remap: mapping is not a permutation");
    hit[m] = true;
  }
  Circuit out(num_qubits_, num_clbits_);
  for (const auto& g : gates_) {
    Gate h = g;
    for (auto& q : h.qubits) q = mapping[q];
    out.append(std::move(h));
  }
  return out;
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  os << "circuit(" << num_qubits_ << " qubits, " << gates_.size()
     << " gates, depth " << depth() << ")\n";
  for (const auto& g : gates_) os << "  " << g.to_string() << '\n';
  return os.str();
}

}  // namespace svsim::qc
