// Circuit: an ordered list of gates on a fixed-width qubit register.
//
// The class doubles as a fluent builder (`c.h(0).cx(0,1).rz(1, 0.3)`), and
// offers the structural queries the rest of the library needs: depth, gate
// histograms, composition, inversion, and qubit remapping (used by the
// distributed scheduler).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "qc/gate.hpp"

namespace svsim::qc {

class Circuit {
 public:
  Circuit() = default;
  /// Circuit on `num_qubits` qubits with `num_clbits` classical bits
  /// (defaults to one classical bit per qubit).
  explicit Circuit(unsigned num_qubits, unsigned num_clbits = 0);

  unsigned num_qubits() const noexcept { return num_qubits_; }
  unsigned num_clbits() const noexcept { return num_clbits_; }
  std::size_t size() const noexcept { return gates_.size(); }
  bool empty() const noexcept { return gates_.empty(); }

  const std::vector<Gate>& gates() const noexcept { return gates_; }
  const Gate& gate(std::size_t i) const { return gates_.at(i); }

  /// Appends a gate after validating its operands against the register.
  Circuit& append(Gate g);

  // ---- fluent builder shims (all validate and return *this) ------------
  Circuit& i(unsigned q) { return append(Gate::i(q)); }
  Circuit& x(unsigned q) { return append(Gate::x(q)); }
  Circuit& y(unsigned q) { return append(Gate::y(q)); }
  Circuit& z(unsigned q) { return append(Gate::z(q)); }
  Circuit& h(unsigned q) { return append(Gate::h(q)); }
  Circuit& s(unsigned q) { return append(Gate::s(q)); }
  Circuit& sdg(unsigned q) { return append(Gate::sdg(q)); }
  Circuit& t(unsigned q) { return append(Gate::t(q)); }
  Circuit& tdg(unsigned q) { return append(Gate::tdg(q)); }
  Circuit& sx(unsigned q) { return append(Gate::sx(q)); }
  Circuit& sxdg(unsigned q) { return append(Gate::sxdg(q)); }
  Circuit& rx(unsigned q, double a) { return append(Gate::rx(q, a)); }
  Circuit& ry(unsigned q, double a) { return append(Gate::ry(q, a)); }
  Circuit& rz(unsigned q, double a) { return append(Gate::rz(q, a)); }
  Circuit& p(unsigned q, double a) { return append(Gate::p(q, a)); }
  Circuit& u(unsigned q, double t_, double p_, double l_) {
    return append(Gate::u(q, t_, p_, l_));
  }
  Circuit& cx(unsigned c, unsigned t_) { return append(Gate::cx(c, t_)); }
  Circuit& cy(unsigned c, unsigned t_) { return append(Gate::cy(c, t_)); }
  Circuit& cz(unsigned c, unsigned t_) { return append(Gate::cz(c, t_)); }
  Circuit& ch(unsigned c, unsigned t_) { return append(Gate::ch(c, t_)); }
  Circuit& cp(unsigned c, unsigned t_, double a) {
    return append(Gate::cp(c, t_, a));
  }
  Circuit& crx(unsigned c, unsigned t_, double a) {
    return append(Gate::crx(c, t_, a));
  }
  Circuit& cry(unsigned c, unsigned t_, double a) {
    return append(Gate::cry(c, t_, a));
  }
  Circuit& crz(unsigned c, unsigned t_, double a) {
    return append(Gate::crz(c, t_, a));
  }
  Circuit& swap(unsigned a, unsigned b) { return append(Gate::swap(a, b)); }
  Circuit& iswap(unsigned a, unsigned b) { return append(Gate::iswap(a, b)); }
  Circuit& rxx(unsigned a, unsigned b, double th) {
    return append(Gate::rxx(a, b, th));
  }
  Circuit& ryy(unsigned a, unsigned b, double th) {
    return append(Gate::ryy(a, b, th));
  }
  Circuit& rzz(unsigned a, unsigned b, double th) {
    return append(Gate::rzz(a, b, th));
  }
  Circuit& ccx(unsigned c0, unsigned c1, unsigned t_) {
    return append(Gate::ccx(c0, c1, t_));
  }
  Circuit& ccz(unsigned c0, unsigned c1, unsigned t_) {
    return append(Gate::ccz(c0, c1, t_));
  }
  Circuit& cswap(unsigned c, unsigned a, unsigned b) {
    return append(Gate::cswap(c, a, b));
  }
  Circuit& measure(unsigned q, unsigned cbit) {
    return append(Gate::measure(q, cbit));
  }
  Circuit& measure_all();
  Circuit& reset(unsigned q) { return append(Gate::reset(q)); }
  Circuit& barrier() { return append(Gate::barrier()); }

  // ---- structure --------------------------------------------------------
  /// Circuit depth: longest chain of gates sharing qubits (barriers ignored,
  /// measure/reset counted).
  unsigned depth() const;

  /// Histogram of gate kinds by mnemonic.
  std::map<std::string, std::size_t> gate_counts() const;

  /// Total number of two-or-more-qubit unitary gates.
  std::size_t multi_qubit_gate_count() const;

  /// True if no MEASURE/RESET present.
  bool is_unitary() const;

  /// Appends all gates of `other` (qubit counts must match).
  Circuit& compose(const Circuit& other);

  /// The adjoint circuit: gates reversed and inverted. Requires unitarity.
  Circuit inverse() const;

  /// Returns the circuit with every qubit index q replaced by mapping[q].
  /// `mapping` must be a permutation of [0, num_qubits).
  Circuit remap(const std::vector<unsigned>& mapping) const;

  /// Multi-line textual rendering.
  std::string to_string() const;

 private:
  unsigned num_qubits_ = 0;
  unsigned num_clbits_ = 0;
  std::vector<Gate> gates_;
};

}  // namespace svsim::qc
