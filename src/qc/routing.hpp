// Qubit routing for restricted connectivity.
//
// Real devices (and cache-blocking schemes on simulators) restrict which
// qubit pairs may interact. `route_linear` rewrites a circuit so every
// multi-qubit gate acts on adjacent physical qubits of a linear chain,
// inserting SWAPs and tracking the logical->physical mapping as it drifts.
// Gates wider than two qubits must be decomposed first
// (decompose_to_cx_basis); the router rejects them.
#pragma once

#include <vector>

#include "qc/circuit.hpp"

namespace svsim::qc {

struct RoutedCircuit {
  Circuit circuit;                     ///< physical-qubit circuit
  std::vector<unsigned> final_layout;  ///< logical qubit -> physical slot
  std::size_t swaps_inserted = 0;
};

/// Routes `circuit` (1- and 2-qubit gates plus measure/reset/barrier only)
/// onto a linear chain: after routing, every 2-qubit gate acts on physical
/// neighbours |p - q| == 1. Measurement/reset follow the tracked layout.
/// The result satisfies: routed ≡ permute(final_layout) ∘ original.
RoutedCircuit route_linear(const Circuit& circuit);

/// Verification helper: true if every multi-qubit unitary in `circuit`
/// touches only adjacent physical qubits.
bool respects_linear_coupling(const Circuit& circuit);

}  // namespace svsim::qc
