// Dense reference simulation — the test oracle.
//
// A deliberately simple O(2^n · 2^k) implementation of gate application on a
// plain std::vector state, written with index gather/scatter helpers and no
// shared code with the optimized sv kernels, so the two can check each other.
// Usable up to ~14 qubits; tests stay well below that.
#pragma once

#include <vector>

#include "qc/circuit.hpp"
#include "qc/gate.hpp"
#include "qc/matrix.hpp"

namespace svsim::qc::dense {

/// |0...0> on n qubits.
std::vector<cplx> zero_state(unsigned num_qubits);

/// Applies a unitary gate to `state` (length 2^num_qubits) in place.
/// Throws for MEASURE/RESET; BARRIER is a no-op.
void apply_gate(std::vector<cplx>& state, const Gate& gate,
                unsigned num_qubits);

/// Runs all unitary gates of `circuit` on |0...0> and returns the final
/// state. Throws if the circuit contains measure/reset.
std::vector<cplx> run(const Circuit& circuit);

/// Full 2^n x 2^n unitary of the circuit (column k = circuit applied to
/// basis state |k>). Requires a unitary circuit and modest n (<= 12).
Matrix circuit_unitary(const Circuit& circuit);

/// Squared-norm of a state (should be 1 for physical states).
double norm_squared(const std::vector<cplx>& state);

/// |<a|b>|: overlap magnitude between two states.
double overlap(const std::vector<cplx>& a, const std::vector<cplx>& b);

/// Max-norm distance between two states.
double distance(const std::vector<cplx>& a, const std::vector<cplx>& b);

/// Max-norm distance ignoring global phase.
double distance_up_to_phase(const std::vector<cplx>& a,
                            const std::vector<cplx>& b);

}  // namespace svsim::qc::dense
