// Circuit library: the workloads used throughout the evaluation.
//
// These are the standard benchmark families for state-vector simulators —
// QFT, GHZ, Grover, quantum-volume-style random circuits, QAOA and
// Trotterized Ising dynamics — generated deterministically from a seed where
// randomness is involved.
#pragma once

#include <cstdint>
#include <tuple>
#include <vector>

#include "qc/circuit.hpp"
#include "qc/pauli.hpp"

namespace svsim::qc {

/// Quantum Fourier transform on n qubits (with the final qubit-reversal
/// swaps if `with_swaps`).
Circuit qft(unsigned num_qubits, bool with_swaps = true);

/// Inverse QFT.
Circuit inverse_qft(unsigned num_qubits, bool with_swaps = true);

/// GHZ state preparation: H on qubit 0, then a CX chain.
Circuit ghz(unsigned num_qubits);

/// Grover search for the single marked computational basis state `marked`,
/// running the optimal ⌊π/4·√N⌋ iterations (or `iterations` if nonzero).
Circuit grover(unsigned num_qubits, std::uint64_t marked,
               unsigned iterations = 0);

/// The optimal number of Grover iterations for one marked item among 2^n.
unsigned grover_optimal_iterations(unsigned num_qubits);

/// Quantum-volume-style random circuit: `depth` layers, each a random
/// permutation of qubits paired up and a Haar-random SU(4) applied to each
/// pair. Deterministic in `seed`.
Circuit random_quantum_volume(unsigned num_qubits, unsigned depth,
                              std::uint64_t seed);

/// Random circuit over a universal discrete set {H,T,S,X,CX}, `length`
/// gates, deterministic in `seed`. Used by property tests.
Circuit random_clifford_t(unsigned num_qubits, std::size_t length,
                          std::uint64_t seed);

/// QAOA ansatz for MaxCut on the given weighted edges: p = gammas.size()
/// rounds of cost (RZZ) and mixer (RX) layers over an initial |+...+>.
Circuit qaoa_maxcut(
    unsigned num_qubits,
    const std::vector<std::tuple<unsigned, unsigned, double>>& edges,
    const std::vector<double>& gammas, const std::vector<double>& betas);

/// Hardware-efficient ansatz: `layers` repetitions of (RY,RZ on all qubits +
/// linear CX entangler). Parameters consumed in order; must have
/// 2 * num_qubits * layers entries.
Circuit hardware_efficient_ansatz(unsigned num_qubits, unsigned layers,
                                  const std::vector<double>& parameters);

/// First-order Trotter circuit for the transverse-field Ising model:
/// `steps` steps of exp(-i h dt Σ X_i) · exp(-i J dt Σ Z_i Z_{i+1}).
Circuit ising_trotter(unsigned num_qubits, double J, double h, double dt,
                      unsigned steps);

/// Second-order (symmetric Suzuki) Trotter circuit for the same model:
/// per step, half an X layer, a full ZZ layer, half an X layer. Error per
/// step is O(dt³) vs. the first-order O(dt²).
Circuit ising_trotter2(unsigned num_qubits, double J, double h, double dt,
                       unsigned steps);

/// Textbook quantum phase estimation of the phase gate P(2π·phase) acting on
/// one target qubit prepared in |1>, with `precision_qubits` readout qubits.
/// Qubits [0, precision) are the readout register, qubit `precision` is the
/// target.
Circuit phase_estimation(unsigned precision_qubits, double phase);

/// Ring graph edges (i, i+1 mod n) with unit weight — a standard MaxCut
/// instance.
std::vector<std::tuple<unsigned, unsigned, double>> ring_graph(
    unsigned num_qubits);

/// Deterministic pseudo-random d-regular-ish graph: `num_edges` distinct
/// edges with weight 1, seeded.
std::vector<std::tuple<unsigned, unsigned, double>> random_graph(
    unsigned num_qubits, unsigned num_edges, std::uint64_t seed);

}  // namespace svsim::qc
