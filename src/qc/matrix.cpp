#include "qc/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace svsim::qc {

Matrix::Matrix(std::size_t dim) : dim_(dim), data_(dim * dim, cplx{0.0, 0.0}) {
  require(dim > 0 && is_pow2(dim), "Matrix dimension must be a power of two");
}

Matrix::Matrix(std::size_t dim, std::initializer_list<cplx> entries)
    : Matrix(dim, std::vector<cplx>(entries)) {}

Matrix::Matrix(std::size_t dim, std::vector<cplx> entries)
    : dim_(dim), data_(std::move(entries)) {
  require(dim > 0 && is_pow2(dim), "Matrix dimension must be a power of two");
  require(data_.size() == dim * dim,
          "Matrix entry count does not match dimension");
}

Matrix Matrix::identity(std::size_t dim) {
  Matrix m(dim);
  for (std::size_t i = 0; i < dim; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const std::vector<cplx>& diag) {
  Matrix m(diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Matrix Matrix::random_unitary(std::size_t dim, Xoshiro256& rng) {
  // Complex Ginibre matrix followed by modified Gram-Schmidt. For the tiny
  // dimensions used for gates this is numerically unitary to ~1e-14.
  Matrix m(dim);
  for (auto& v : m.data_) v = cplx{rng.normal(), rng.normal()};
  for (std::size_t c = 0; c < dim; ++c) {
    // Orthogonalize column c against previous columns, twice for stability.
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t p = 0; p < c; ++p) {
        cplx proj{0.0, 0.0};
        for (std::size_t r = 0; r < dim; ++r)
          proj += std::conj(m(r, p)) * m(r, c);
        for (std::size_t r = 0; r < dim; ++r) m(r, c) -= proj * m(r, p);
      }
    }
    double norm2 = 0.0;
    for (std::size_t r = 0; r < dim; ++r) norm2 += std::norm(m(r, c));
    const double inv = 1.0 / std::sqrt(norm2);
    for (std::size_t r = 0; r < dim; ++r) m(r, c) *= inv;
  }
  return m;
}

unsigned Matrix::num_qubits() const noexcept { return ilog2(dim_); }

Matrix Matrix::operator*(const Matrix& rhs) const {
  require(dim_ == rhs.dim_, "Matrix product dimension mismatch");
  Matrix out(dim_);
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t k = 0; k < dim_; ++k) {
      const cplx a = (*this)(r, k);
      if (a == cplx{0.0, 0.0}) continue;
      for (std::size_t c = 0; c < dim_; ++c) out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  require(dim_ == rhs.dim_, "Matrix sum dimension mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  require(dim_ == rhs.dim_, "Matrix difference dimension mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::operator*(cplx scalar) const {
  Matrix out = *this;
  for (auto& v : out.data_) v *= scalar;
  return out;
}

Matrix Matrix::dagger() const {
  Matrix out(dim_);
  for (std::size_t r = 0; r < dim_; ++r)
    for (std::size_t c = 0; c < dim_; ++c) out(c, r) = std::conj((*this)(r, c));
  return out;
}

Matrix Matrix::kron(const Matrix& rhs) const {
  Matrix out(dim_ * rhs.dim_);
  for (std::size_t r1 = 0; r1 < dim_; ++r1)
    for (std::size_t c1 = 0; c1 < dim_; ++c1) {
      const cplx a = (*this)(r1, c1);
      if (a == cplx{0.0, 0.0}) continue;
      for (std::size_t r2 = 0; r2 < rhs.dim_; ++r2)
        for (std::size_t c2 = 0; c2 < rhs.dim_; ++c2)
          out(r1 * rhs.dim_ + r2, c1 * rhs.dim_ + c2) = a * rhs(r2, c2);
    }
  return out;
}

std::vector<cplx> Matrix::apply(const std::vector<cplx>& v) const {
  require(v.size() == dim_, "Matrix-vector dimension mismatch");
  std::vector<cplx> out(dim_, cplx{0.0, 0.0});
  for (std::size_t r = 0; r < dim_; ++r)
    for (std::size_t c = 0; c < dim_; ++c) out[r] += (*this)(r, c) * v[c];
  return out;
}

double Matrix::unitarity_error() const {
  const Matrix p = dagger() * (*this);
  double err = 0.0;
  for (std::size_t r = 0; r < dim_; ++r)
    for (std::size_t c = 0; c < dim_; ++c) {
      const cplx expect = (r == c) ? cplx{1.0, 0.0} : cplx{0.0, 0.0};
      err = std::max(err, std::abs(p(r, c) - expect));
    }
  return err;
}

bool Matrix::is_diagonal(double tol) const {
  for (std::size_t r = 0; r < dim_; ++r)
    for (std::size_t c = 0; c < dim_; ++c)
      if (r != c && std::abs((*this)(r, c)) > tol) return false;
  return true;
}

double Matrix::distance(const Matrix& rhs) const {
  require(dim_ == rhs.dim_, "Matrix distance dimension mismatch");
  double d = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    d = std::max(d, std::abs(data_[i] - rhs.data_[i]));
  return d;
}

double Matrix::distance_up_to_phase(const Matrix& rhs) const {
  require(dim_ == rhs.dim_, "Matrix distance dimension mismatch");
  // Align global phase on the entry of *this with the largest magnitude.
  std::size_t imax = 0;
  double best = -1.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i]) > best) {
      best = std::abs(data_[i]);
      imax = i;
    }
  }
  if (best < 1e-15 || std::abs(rhs.data_[imax]) < 1e-15)
    return distance(rhs);
  const cplx phase = (rhs.data_[imax] / std::abs(rhs.data_[imax])) /
                     (data_[imax] / std::abs(data_[imax]));
  return (*this * phase).distance(rhs);
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed;
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      const cplx v = (*this)(r, c);
      os << '(' << v.real() << (v.imag() < 0 ? "" : "+") << v.imag() << "i)";
      if (c + 1 < dim_) os << ' ';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace svsim::qc
