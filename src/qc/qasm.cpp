#include "qc/qasm.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <numbers>
#include <optional>
#include <sstream>

#include "common/error.hpp"

namespace svsim::qc {

namespace {

// ---- tokenizer ----------------------------------------------------------

enum class Tok { Ident, Number, String, Symbol, End };

struct Token {
  Tok kind = Tok::End;
  std::string text;
  double value = 0.0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) { advance(); }

  const Token& peek() const { return current_; }

  Token next() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("QASM parse error at line " + std::to_string(current_.line) +
                ": " + msg);
  }

  /// With the current token being '{', returns the raw source up to the
  /// matching '}' (exclusive) and advances past it. Used to capture `gate`
  /// definition bodies for later expansion.
  std::string capture_braced_block() {
    if (current_.kind != Tok::Symbol || current_.text != "{")
      fail("expected '{'");
    std::size_t depth = 1;
    const std::size_t start = pos_;
    std::size_t p = pos_;
    while (p < src_.size() && depth > 0) {
      if (src_[p] == '{') ++depth;
      else if (src_[p] == '}') --depth;
      else if (src_[p] == '\n') ++line_;
      ++p;
    }
    if (depth != 0) fail("unterminated gate body");
    std::string body = src_.substr(start, p - 1 - start);
    pos_ = p;
    advance();
    return body;
  }

 private:
  void advance() {
    skip_space_and_comments();
    current_.line = line_;
    if (pos_ >= src_.size()) {
      current_ = {Tok::End, "", 0.0, line_};
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_'))
        ++pos_;
      current_ = {Tok::Ident, src_.substr(start, pos_ - start), 0.0, line_};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E' ||
              ((src_[pos_] == '+' || src_[pos_] == '-') && pos_ > start &&
               (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E'))))
        ++pos_;
      const std::string text = src_.substr(start, pos_ - start);
      current_ = {Tok::Number, text, std::stod(text), line_};
      return;
    }
    if (c == '"') {
      std::size_t start = ++pos_;
      while (pos_ < src_.size() && src_[pos_] != '"') ++pos_;
      if (pos_ >= src_.size())
        throw Error("QASM parse error: unterminated string at line " +
                    std::to_string(line_));
      current_ = {Tok::String, src_.substr(start, pos_ - start), 0.0, line_};
      ++pos_;
      return;
    }
    // Two-character symbol "->".
    if (c == '-' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '>') {
      pos_ += 2;
      current_ = {Tok::Symbol, "->", 0.0, line_};
      return;
    }
    ++pos_;
    current_ = {Tok::Symbol, std::string(1, c), 0.0, line_};
  }

  void skip_space_and_comments() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

// ---- macro expansion scope ------------------------------------------------

/// Bindings active while expanding a user-defined gate body: formal
/// parameter names to values and formal qubit names to global indices.
struct Scope {
  std::map<std::string, double> params;
  std::map<std::string, unsigned> qubits;
};

// ---- parameter expression evaluation (precedence climbing) --------------

class ExprParser {
 public:
  explicit ExprParser(Lexer& lex, const Scope* scope = nullptr)
      : lex_(lex), scope_(scope) {}

  double parse() { return parse_binary(0); }

 private:
  static int precedence(const std::string& op) {
    if (op == "+" || op == "-") return 1;
    if (op == "*" || op == "/") return 2;
    return -1;
  }

  double parse_binary(int min_prec) {
    double lhs = parse_unary();
    for (;;) {
      const Token& t = lex_.peek();
      if (t.kind != Tok::Symbol) return lhs;
      const int prec = precedence(t.text);
      if (prec < 0 || prec < min_prec) return lhs;
      const std::string op = lex_.next().text;
      const double rhs = parse_binary(prec + 1);
      if (op == "+") lhs += rhs;
      else if (op == "-") lhs -= rhs;
      else if (op == "*") lhs *= rhs;
      else lhs /= rhs;
    }
  }

  double parse_unary() {
    const Token& t = lex_.peek();
    if (t.kind == Tok::Symbol && t.text == "-") {
      lex_.next();
      return -parse_unary();
    }
    if (t.kind == Tok::Symbol && t.text == "+") {
      lex_.next();
      return parse_unary();
    }
    if (t.kind == Tok::Symbol && t.text == "(") {
      lex_.next();
      const double v = parse_binary(0);
      expect_symbol(")");
      return v;
    }
    if (t.kind == Tok::Number) return lex_.next().value;
    if (t.kind == Tok::Ident) {
      const Token id = lex_.next();
      if (scope_ != nullptr) {
        const auto it = scope_->params.find(id.text);
        if (it != scope_->params.end()) return it->second;
      }
      if (id.text == "pi") return std::numbers::pi;
      if (id.text == "sin" || id.text == "cos" || id.text == "tan" ||
          id.text == "exp" || id.text == "ln" || id.text == "sqrt") {
        expect_symbol("(");
        const double v = parse_binary(0);
        expect_symbol(")");
        if (id.text == "sin") return std::sin(v);
        if (id.text == "cos") return std::cos(v);
        if (id.text == "tan") return std::tan(v);
        if (id.text == "exp") return std::exp(v);
        if (id.text == "ln") return std::log(v);
        return std::sqrt(v);
      }
      lex_.fail("unknown identifier '" + id.text + "' in expression");
    }
    lex_.fail("bad expression");
  }

  void expect_symbol(const std::string& s) {
    const Token t = lex_.next();
    if (t.kind != Tok::Symbol || t.text != s)
      lex_.fail("expected '" + s + "'");
  }

  Lexer& lex_;
  const Scope* scope_;
};

// ---- parser ---------------------------------------------------------------

struct Register {
  unsigned offset = 0;
  unsigned size = 0;
};

class Parser {
 public:
  explicit Parser(const std::string& src) : lex_(src) {}

  Circuit parse() {
    parse_header();
    for (;;) {
      const Token& t = lex_.peek();
      if (t.kind == Tok::End) break;
      if (t.kind != Tok::Ident) lex_.fail("expected statement");
      parse_statement(lex_, nullptr, 0);
    }
    require(total_qubits_ > 0, "QASM: no qreg declared");
    ensure_circuit();  // handles declaration-only programs
    return std::move(circuit_).value();
  }

 private:
  /// A user-defined gate: formal parameter/qubit names plus the raw body
  /// source, re-parsed under a Scope at each invocation.
  struct GateDef {
    std::vector<std::string> params;
    std::vector<std::string> qubits;
    std::string body;
  };

  static constexpr int kMaxExpansionDepth = 32;

  void parse_header() {
    const Token& t = lex_.peek();
    if (t.kind == Tok::Ident && t.text == "OPENQASM") {
      lex_.next();
      if (lex_.peek().kind == Tok::Number) lex_.next();  // version
      expect_symbol(lex_, ";");
    }
  }

  void parse_statement(Lexer& lex, const Scope* scope, int depth) {
    const Token id = lex.next();
    if (scope == nullptr) {
      if (id.text == "include") {
        lex.next();  // the string
        expect_symbol(lex, ";");
        return;
      }
      if (id.text == "qreg" || id.text == "creg") {
        parse_register(id.text == "qreg");
        return;
      }
      if (id.text == "gate") {
        parse_gate_def();
        return;
      }
      if (id.text == "OPENQASM") {
        if (lex.peek().kind == Tok::Number) lex.next();
        expect_symbol(lex, ";");
        return;
      }
    }
    ensure_circuit();
    if (id.text == "measure") {
      if (scope != nullptr) lex.fail("measure not allowed in a gate body");
      const unsigned q = parse_qubit_operand(lex, scope);
      expect_symbol(lex, "->");
      const unsigned c = parse_clbit_operand(lex);
      circuit_->measure(q, c);
      expect_symbol(lex, ";");
      return;
    }
    if (id.text == "reset") {
      if (scope != nullptr) lex.fail("reset not allowed in a gate body");
      circuit_->reset(parse_qubit_operand(lex, scope));
      expect_symbol(lex, ";");
      return;
    }
    if (id.text == "barrier") {
      // Consume (and ignore) operands up to ';'.
      while (!(lex.peek().kind == Tok::Symbol && lex.peek().text == ";"))
        lex.next();
      expect_symbol(lex, ";");
      circuit_->barrier();
      return;
    }
    parse_gate(lex, scope, id.text, depth);
  }

  void parse_register(bool quantum) {
    const Token name = lex_.next();
    if (name.kind != Tok::Ident) lex_.fail("expected register name");
    expect_symbol(lex_, "[");
    const Token size = lex_.next();
    if (size.kind != Tok::Number) lex_.fail("expected register size");
    expect_symbol(lex_, "]");
    expect_symbol(lex_, ";");
    require(circuit_ == std::nullopt,
            "QASM: register declared after first gate");
    const auto n = static_cast<unsigned>(size.value);
    if (quantum) {
      qregs_[name.text] = {total_qubits_, n};
      total_qubits_ += n;
    } else {
      cregs_[name.text] = {total_clbits_, n};
      total_clbits_ += n;
    }
  }

  /// gate name(p0, p1) q0, q1 { ... }
  void parse_gate_def() {
    const Token name = lex_.next();
    if (name.kind != Tok::Ident) lex_.fail("expected gate name");
    GateDef def;
    if (lex_.peek().kind == Tok::Symbol && lex_.peek().text == "(") {
      lex_.next();
      while (!(lex_.peek().kind == Tok::Symbol && lex_.peek().text == ")")) {
        const Token pn = lex_.next();
        if (pn.kind != Tok::Ident) lex_.fail("expected parameter name");
        def.params.push_back(pn.text);
        if (lex_.peek().kind == Tok::Symbol && lex_.peek().text == ",")
          lex_.next();
      }
      lex_.next();  // ')'
    }
    for (;;) {
      const Token qn = lex_.next();
      if (qn.kind != Tok::Ident) lex_.fail("expected formal qubit name");
      def.qubits.push_back(qn.text);
      if (lex_.peek().kind == Tok::Symbol && lex_.peek().text == ",") {
        lex_.next();
        continue;
      }
      break;
    }
    require(!def.qubits.empty(), "QASM: gate definition needs qubits");
    def.body = lex_.capture_braced_block();
    gate_defs_[name.text] = std::move(def);
  }

  void ensure_circuit() {
    if (!circuit_) {
      require(total_qubits_ > 0, "QASM: gate before qreg declaration");
      circuit_.emplace(total_qubits_, std::max(total_clbits_, 1u));
    }
  }

  unsigned parse_operand(Lexer& lex, const std::map<std::string, Register>& regs,
                         const Scope* scope, const char* what) {
    const Token name = lex.next();
    if (name.kind != Tok::Ident) lex.fail(std::string("expected ") + what);
    // Inside a gate body, a bare identifier is a formal qubit.
    if (scope != nullptr &&
        !(lex.peek().kind == Tok::Symbol && lex.peek().text == "[")) {
      const auto it = scope->qubits.find(name.text);
      if (it == scope->qubits.end())
        lex.fail("unknown formal qubit '" + name.text + "'");
      return it->second;
    }
    const auto it = regs.find(name.text);
    if (it == regs.end())
      lex.fail("unknown register '" + name.text + "'");
    expect_symbol(lex, "[");
    const Token idx = lex.next();
    if (idx.kind != Tok::Number) lex.fail("expected index");
    expect_symbol(lex, "]");
    const auto i = static_cast<unsigned>(idx.value);
    if (i >= it->second.size)
      lex.fail("index out of range for register '" + name.text + "'");
    return it->second.offset + i;
  }

  unsigned parse_qubit_operand(Lexer& lex, const Scope* scope) {
    return parse_operand(lex, qregs_, scope, "qubit");
  }
  unsigned parse_clbit_operand(Lexer& lex) {
    return parse_operand(lex, cregs_, nullptr, "clbit");
  }

  void parse_gate(Lexer& lex, const Scope* scope, const std::string& name,
                  int depth) {
    std::vector<double> params;
    if (lex.peek().kind == Tok::Symbol && lex.peek().text == "(") {
      lex.next();
      if (!(lex.peek().kind == Tok::Symbol && lex.peek().text == ")")) {
        for (;;) {
          params.push_back(ExprParser(lex, scope).parse());
          if (lex.peek().kind == Tok::Symbol && lex.peek().text == ",") {
            lex.next();
            continue;
          }
          break;
        }
      }
      expect_symbol(lex, ")");
    }
    std::vector<unsigned> qs;
    for (;;) {
      qs.push_back(parse_qubit_operand(lex, scope));
      if (lex.peek().kind == Tok::Symbol && lex.peek().text == ",") {
        lex.next();
        continue;
      }
      break;
    }
    expect_symbol(lex, ";");

    const auto def_it = gate_defs_.find(name);
    if (def_it != gate_defs_.end()) {
      expand_gate_def(lex, def_it->second, params, qs, depth);
      return;
    }
    circuit_->append(build_gate(lex, name, params, qs));
  }

  void expand_gate_def(Lexer& lex, const GateDef& def,
                       const std::vector<double>& params,
                       const std::vector<unsigned>& qs, int depth) {
    if (depth >= kMaxExpansionDepth)
      lex.fail("gate expansion too deep (recursive definition?)");
    if (params.size() != def.params.size() || qs.size() != def.qubits.size())
      lex.fail("gate call does not match its definition arity");
    Scope scope;
    for (std::size_t i = 0; i < params.size(); ++i)
      scope.params[def.params[i]] = params[i];
    for (std::size_t i = 0; i < qs.size(); ++i)
      scope.qubits[def.qubits[i]] = qs[i];
    Lexer body_lex(def.body);
    for (;;) {
      const Token& t = body_lex.peek();
      if (t.kind == Tok::End) break;
      if (t.kind != Tok::Ident) body_lex.fail("expected statement in body");
      parse_statement(body_lex, &scope, depth + 1);
    }
  }

  Gate build_gate(Lexer& lex, const std::string& name,
                  const std::vector<double>& p,
                  const std::vector<unsigned>& q) {
    auto need = [&](std::size_t nq, std::size_t np) {
      if (q.size() != nq || p.size() != np)
        lex.fail("gate '" + name + "' has wrong operand/parameter count");
    };
    if (name == "id") { need(1, 0); return Gate::i(q[0]); }
    if (name == "x") { need(1, 0); return Gate::x(q[0]); }
    if (name == "y") { need(1, 0); return Gate::y(q[0]); }
    if (name == "z") { need(1, 0); return Gate::z(q[0]); }
    if (name == "h") { need(1, 0); return Gate::h(q[0]); }
    if (name == "s") { need(1, 0); return Gate::s(q[0]); }
    if (name == "sdg") { need(1, 0); return Gate::sdg(q[0]); }
    if (name == "t") { need(1, 0); return Gate::t(q[0]); }
    if (name == "tdg") { need(1, 0); return Gate::tdg(q[0]); }
    if (name == "sx") { need(1, 0); return Gate::sx(q[0]); }
    if (name == "sxdg") { need(1, 0); return Gate::sxdg(q[0]); }
    if (name == "rx") { need(1, 1); return Gate::rx(q[0], p[0]); }
    if (name == "ry") { need(1, 1); return Gate::ry(q[0], p[0]); }
    if (name == "rz") { need(1, 1); return Gate::rz(q[0], p[0]); }
    if (name == "p" || name == "u1") { need(1, 1); return Gate::p(q[0], p[0]); }
    if (name == "u2") {
      need(1, 2);
      return Gate::u(q[0], std::numbers::pi / 2, p[0], p[1]);
    }
    if (name == "u3" || name == "u") {
      need(1, 3);
      return Gate::u(q[0], p[0], p[1], p[2]);
    }
    if (name == "cx" || name == "CX") { need(2, 0); return Gate::cx(q[0], q[1]); }
    if (name == "cy") { need(2, 0); return Gate::cy(q[0], q[1]); }
    if (name == "cz") { need(2, 0); return Gate::cz(q[0], q[1]); }
    if (name == "ch") { need(2, 0); return Gate::ch(q[0], q[1]); }
    if (name == "cp" || name == "cu1") {
      need(2, 1);
      return Gate::cp(q[0], q[1], p[0]);
    }
    if (name == "crx") { need(2, 1); return Gate::crx(q[0], q[1], p[0]); }
    if (name == "cry") { need(2, 1); return Gate::cry(q[0], q[1], p[0]); }
    if (name == "crz") { need(2, 1); return Gate::crz(q[0], q[1], p[0]); }
    if (name == "swap") { need(2, 0); return Gate::swap(q[0], q[1]); }
    if (name == "iswap") { need(2, 0); return Gate::iswap(q[0], q[1]); }
    if (name == "rxx") { need(2, 1); return Gate::rxx(q[0], q[1], p[0]); }
    if (name == "ryy") { need(2, 1); return Gate::ryy(q[0], q[1], p[0]); }
    if (name == "rzz") { need(2, 1); return Gate::rzz(q[0], q[1], p[0]); }
    if (name == "ccx") { need(3, 0); return Gate::ccx(q[0], q[1], q[2]); }
    if (name == "ccz") { need(3, 0); return Gate::ccz(q[0], q[1], q[2]); }
    if (name == "cswap") { need(3, 0); return Gate::cswap(q[0], q[1], q[2]); }
    lex.fail("unsupported gate '" + name + "'");
  }

  void expect_symbol(Lexer& lex, const std::string& s) {
    const Token t = lex.next();
    if (t.kind != Tok::Symbol || t.text != s)
      lex.fail("expected '" + s + "', got '" + t.text + "'");
  }

  Lexer lex_;
  std::map<std::string, Register> qregs_;
  std::map<std::string, Register> cregs_;
  std::map<std::string, GateDef> gate_defs_;
  unsigned total_qubits_ = 0;
  unsigned total_clbits_ = 0;
  std::optional<Circuit> circuit_;
};

}  // namespace

Circuit parse_qasm(const std::string& source) {
  return Parser(source).parse();
}

Circuit parse_qasm_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open QASM file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_qasm(buf.str());
}

std::string to_qasm(const Circuit& circuit) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  os << "qreg q[" << circuit.num_qubits() << "];\n";
  os << "creg c[" << circuit.num_clbits() << "];\n";
  for (const auto& g : circuit.gates()) {
    switch (g.kind) {
      case GateKind::U2Q:
      case GateKind::UNITARY:
      case GateKind::DIAG:
      case GateKind::MCX:
      case GateKind::MCP:
        throw Error(std::string("to_qasm: gate '") + g.name() +
                    "' has no OpenQASM 2.0 spelling");
      case GateKind::BARRIER:
        os << "barrier q;\n";
        continue;
      case GateKind::MEASURE:
        os << "measure q[" << g.qubits[0] << "] -> c[" << g.cbit << "];\n";
        continue;
      case GateKind::P:
        os << "u1(" << g.params[0] << ") q[" << g.qubits[0] << "];\n";
        continue;
      case GateKind::CP:
        os << "cu1(" << g.params[0] << ") q[" << g.qubits[0] << "],q["
           << g.qubits[1] << "];\n";
        continue;
      case GateKind::U:
        os << "u3(" << g.params[0] << "," << g.params[1] << "," << g.params[2]
           << ") q[" << g.qubits[0] << "];\n";
        continue;
      default:
        break;
    }
    os << g.name();
    if (!g.params.empty()) {
      os << '(';
      for (std::size_t i = 0; i < g.params.size(); ++i)
        os << g.params[i] << (i + 1 < g.params.size() ? "," : "");
      os << ')';
    }
    os << ' ';
    for (std::size_t i = 0; i < g.qubits.size(); ++i)
      os << "q[" << g.qubits[i] << ']'
         << (i + 1 < g.qubits.size() ? "," : "");
    os << ";\n";
  }
  return os.str();
}

}  // namespace svsim::qc
