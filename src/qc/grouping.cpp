#include "qc/grouping.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace svsim::qc {

bool qubitwise_commute(const PauliString& a, const PauliString& b) {
  require(a.num_qubits() == b.num_qubits(),
          "qubitwise_commute: width mismatch");
  for (unsigned q = 0; q < a.num_qubits(); ++q) {
    const char pa = a.pauli_at(q), pb = b.pauli_at(q);
    if (pa != 'I' && pb != 'I' && pa != pb) return false;
  }
  return true;
}

std::vector<MeasurementGroup> group_qubitwise_commuting(
    const PauliOperator& op) {
  const unsigned n = op.num_qubits();
  std::vector<PauliOperator::Term> terms = op.terms();
  std::sort(terms.begin(), terms.end(), [](const auto& a, const auto& b) {
    return std::abs(a.coefficient) > std::abs(b.coefficient);
  });

  std::vector<MeasurementGroup> groups;
  for (const auto& term : terms) {
    bool placed = false;
    for (auto& group : groups) {
      bool compatible = true;
      for (unsigned q = 0; q < n && compatible; ++q) {
        const char t = term.pauli.pauli_at(q);
        if (t != 'I' && group.basis[q] != 'I' && group.basis[q] != t)
          compatible = false;
      }
      if (!compatible) continue;
      group.terms.push_back(term);
      for (unsigned q = 0; q < n; ++q) {
        const char t = term.pauli.pauli_at(q);
        if (t != 'I') group.basis[q] = t;
      }
      placed = true;
      break;
    }
    if (!placed) {
      MeasurementGroup group;
      group.basis.assign(n, 'I');
      for (unsigned q = 0; q < n; ++q) {
        const char t = term.pauli.pauli_at(q);
        if (t != 'I') group.basis[q] = t;
      }
      group.terms.push_back(term);
      groups.push_back(std::move(group));
    }
  }
  return groups;
}

Circuit measurement_basis_circuit(const MeasurementGroup& group,
                                  unsigned num_qubits) {
  require(group.basis.size() == num_qubits,
          "measurement_basis_circuit: width mismatch");
  Circuit c(num_qubits);
  for (unsigned q = 0; q < num_qubits; ++q) {
    switch (group.basis[q]) {
      case 'I':
      case 'Z':
        break;
      case 'X':
        c.h(q);
        break;
      case 'Y':
        c.sdg(q);
        c.h(q);
        break;
      default:
        throw Error("measurement_basis_circuit: bad basis character");
    }
  }
  return c;
}

double diagonal_term_value(const PauliString& pauli, std::uint64_t bits) {
  const unsigned hits = popcount((pauli.x_mask() | pauli.z_mask()) & bits);
  return (hits % 2) ? -1.0 : 1.0;
}

}  // namespace svsim::qc
