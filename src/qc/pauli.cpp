#include "qc/pauli.hpp"

#include <algorithm>
#include <sstream>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace svsim::qc {

namespace {
constexpr std::complex<double> kI{0.0, 1.0};

/// Phase of the single-qubit product a * b where a,b in {I,X,Y,Z}.
std::complex<double> pauli_product_phase(char a, char b) {
  if (a == 'I' || b == 'I' || a == b) return {1.0, 0.0};
  // Cyclic: XY=iZ, YZ=iX, ZX=iY; reversed order gives -i.
  const bool forward = (a == 'X' && b == 'Y') || (a == 'Y' && b == 'Z') ||
                       (a == 'Z' && b == 'X');
  return forward ? kI : -kI;
}
}  // namespace

PauliString::PauliString(unsigned num_qubits, std::uint64_t x_mask,
                         std::uint64_t z_mask)
    : num_qubits_(num_qubits), x_(x_mask), z_(z_mask) {
  require(num_qubits <= 64, "PauliString supports at most 64 qubits");
  require((x_ | z_) <= low_mask(num_qubits),
          "PauliString masks exceed qubit count");
}

PauliString PauliString::from_label(const std::string& label) {
  require(!label.empty() && label.size() <= 64, "bad Pauli label length");
  const unsigned n = static_cast<unsigned>(label.size());
  std::uint64_t x = 0, z = 0;
  for (unsigned i = 0; i < n; ++i) {
    // label[0] is the highest qubit.
    const unsigned q = n - 1 - i;
    switch (label[i]) {
      case 'I': break;
      case 'X': x = set_bit(x, q); break;
      case 'Y': x = set_bit(x, q); z = set_bit(z, q); break;
      case 'Z': z = set_bit(z, q); break;
      default:
        throw Error(std::string("bad Pauli label character '") + label[i] +
                    "'");
    }
  }
  return PauliString(n, x, z);
}

PauliString PauliString::single(unsigned num_qubits, unsigned q, char pauli) {
  require(q < num_qubits, "single: qubit out of range");
  std::uint64_t x = 0, z = 0;
  switch (pauli) {
    case 'I': break;
    case 'X': x = pow2(q); break;
    case 'Y': x = pow2(q); z = pow2(q); break;
    case 'Z': z = pow2(q); break;
    default: throw Error("single: bad Pauli character");
  }
  return PauliString(num_qubits, x, z);
}

char PauliString::pauli_at(unsigned q) const {
  const bool x = test_bit(x_, q), z = test_bit(z_, q);
  if (x && z) return 'Y';
  if (x) return 'X';
  if (z) return 'Z';
  return 'I';
}

std::string PauliString::to_label() const {
  std::string label(num_qubits_, 'I');
  for (unsigned q = 0; q < num_qubits_; ++q)
    label[num_qubits_ - 1 - q] = pauli_at(q);
  return label;
}

unsigned PauliString::weight() const noexcept { return popcount(x_ | z_); }

bool PauliString::commutes_with(const PauliString& other) const noexcept {
  const unsigned anti =
      popcount(x_ & other.z_) + popcount(z_ & other.x_);
  return (anti % 2) == 0;
}

std::pair<std::complex<double>, PauliString> PauliString::multiply(
    const PauliString& other) const {
  require(num_qubits_ == other.num_qubits_, "Pauli product qubit mismatch");
  std::complex<double> phase{1.0, 0.0};
  for (unsigned q = 0; q < num_qubits_; ++q)
    phase *= pauli_product_phase(pauli_at(q), other.pauli_at(q));
  return {phase,
          PauliString(num_qubits_, x_ ^ other.x_, z_ ^ other.z_)};
}

std::pair<std::uint64_t, std::complex<double>> PauliString::apply_to_basis(
    std::uint64_t col) const {
  const std::uint64_t row = col ^ x_;
  // Z factors: (-1) per set z-bit of col. Y factors additionally give i and
  // act as X on the bit; Y|b> = i(-1)^b |1-b>.
  std::complex<double> phase{1.0, 0.0};
  const unsigned z_hits = popcount(z_ & col);
  if (z_hits % 2) phase = -phase;
  const unsigned y_count = popcount(x_ & z_);
  switch (y_count % 4) {
    case 0: break;
    case 1: phase *= kI; break;
    case 2: phase *= -1.0; break;
    case 3: phase *= -kI; break;
  }
  return {row, phase};
}

Matrix PauliString::to_matrix() const {
  require(num_qubits_ <= 12, "PauliString::to_matrix: too many qubits");
  const std::uint64_t dim = pow2(num_qubits_);
  Matrix m(dim);
  for (std::uint64_t col = 0; col < dim; ++col) {
    const auto [row, phase] = apply_to_basis(col);
    m(row, col) = phase;
  }
  return m;
}

PauliOperator& PauliOperator::add(double coefficient, PauliString pauli) {
  require(pauli.num_qubits() == num_qubits_,
          "PauliOperator::add: qubit count mismatch");
  for (auto& term : terms_) {
    if (term.pauli == pauli) {
      term.coefficient += coefficient;
      return *this;
    }
  }
  terms_.push_back({coefficient, std::move(pauli)});
  return *this;
}

PauliOperator& PauliOperator::add(double coefficient,
                                  const std::string& label) {
  return add(coefficient, PauliString::from_label(label));
}

PauliOperator PauliOperator::operator+(const PauliOperator& rhs) const {
  require(num_qubits_ == rhs.num_qubits_, "operator+: qubit count mismatch");
  PauliOperator out = *this;
  for (const auto& term : rhs.terms_) out.add(term.coefficient, term.pauli);
  return out;
}

PauliOperator PauliOperator::operator*(double scale) const {
  PauliOperator out = *this;
  for (auto& term : out.terms_) term.coefficient *= scale;
  return out;
}

Matrix PauliOperator::to_matrix() const {
  require(num_qubits_ <= 12, "PauliOperator::to_matrix: too many qubits");
  Matrix m(pow2(num_qubits_));
  for (const auto& term : terms_)
    m = m + term.pauli.to_matrix() * cplx{term.coefficient, 0.0};
  return m;
}

std::string PauliOperator::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (i) os << " + ";
    os << terms_[i].coefficient << "*" << terms_[i].pauli.to_label();
  }
  return os.str();
}

PauliOperator maxcut_hamiltonian(
    unsigned num_qubits,
    const std::vector<std::tuple<unsigned, unsigned, double>>& edges) {
  PauliOperator h(num_qubits);
  for (const auto& [i, j, w] : edges) {
    require(i < num_qubits && j < num_qubits && i != j,
            "maxcut_hamiltonian: bad edge");
    auto zz = PauliString::single(num_qubits, i, 'Z')
                  .multiply(PauliString::single(num_qubits, j, 'Z'));
    h.add(-0.5 * w, zz.second);
  }
  return h;
}

PauliOperator tfim_hamiltonian(unsigned num_qubits, double J, double h_field) {
  PauliOperator h(num_qubits);
  for (unsigned q = 0; q + 1 < num_qubits; ++q) {
    auto zz = PauliString::single(num_qubits, q, 'Z')
                  .multiply(PauliString::single(num_qubits, q + 1, 'Z'));
    h.add(-J, zz.second);
  }
  for (unsigned q = 0; q < num_qubits; ++q)
    h.add(-h_field, PauliString::single(num_qubits, q, 'X'));
  return h;
}

PauliOperator heisenberg_hamiltonian(unsigned num_qubits, double Jx, double Jy,
                                     double Jz) {
  PauliOperator h(num_qubits);
  const char paulis[3] = {'X', 'Y', 'Z'};
  const double coeffs[3] = {Jx, Jy, Jz};
  for (unsigned q = 0; q + 1 < num_qubits; ++q) {
    for (int a = 0; a < 3; ++a) {
      auto pp = PauliString::single(num_qubits, q, paulis[a])
                    .multiply(PauliString::single(num_qubits, q + 1, paulis[a]));
      h.add(coeffs[a], pp.second);
    }
  }
  return h;
}

}  // namespace svsim::qc
