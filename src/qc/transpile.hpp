// Circuit transpilation: peephole optimization and basis decomposition.
//
// Passes:
//  * cancel_adjacent_inverses — removes gate pairs that multiply to the
//    identity when nothing touching their qubits sits between them
//    (H·H, CX·CX, S·S†, RZ(θ)·RZ(−θ), ...).
//  * merge_rotations — folds runs of same-axis rotations on the same
//    operands into one gate and drops zero-angle results.
//  * merge_single_qubit_runs — collapses any run of 1-qubit gates on one
//    qubit into a single U(θ,φ,λ) via ZYZ decomposition (global phase is
//    preserved only up to the run, which is physical).
//  * optimize — fixpoint pipeline of the above.
//  * decompose_to_cx_basis — rewrites every multi-qubit gate into
//    {CX + 1-qubit gates}: SWAP/ISWAP/CZ/CY/CH/CP/CRX/CRY/CRZ/RXX/RYY/RZZ/
//    CCX/CCZ/CSWAP/MCX/MCP. Dense-payload gates (U2Q/UNITARY/DIAG) are not
//    supported and throw.
//
// All passes preserve the circuit's unitary exactly (up to global phase for
// merge_single_qubit_runs); the tests verify this against the dense
// reference for every pass and every gate kind.
#pragma once

#include "qc/circuit.hpp"
#include "qc/matrix.hpp"

namespace svsim::qc {

/// ZYZ Euler angles of a 2x2 unitary: U = e^{iα} RZ(β) RY(γ) RZ(δ).
struct ZyzAngles {
  double alpha;  ///< global phase
  double beta;
  double gamma;
  double delta;
};

/// Decomposes any 2x2 unitary. Throws if `u` is not unitary.
ZyzAngles zyz_decompose(const Matrix& u);

/// Converts ZYZ angles to the equivalent U(θ,φ,λ) gate on qubit q plus a
/// global phase (returned in `*global_phase` if non-null).
Gate zyz_to_u(unsigned q, const ZyzAngles& angles,
              double* global_phase = nullptr);

Circuit cancel_adjacent_inverses(const Circuit& circuit);

/// Stronger cancellation: a gate may cancel an earlier inverse even when
/// gates sit in between, as long as every intervening gate *commutes* with
/// it (checked exactly on the joint qubit support, e.g. RZ on a CX control,
/// X on a CX target). Lookback is bounded; unions wider than 4 qubits stop
/// the search.
Circuit commute_cancel(const Circuit& circuit, unsigned max_lookback = 12);
Circuit merge_rotations(const Circuit& circuit, double angle_epsilon = 1e-12);
Circuit merge_single_qubit_runs(const Circuit& circuit);

/// Runs cancel + merge passes to a fixpoint (at most `max_iterations`).
Circuit optimize(const Circuit& circuit, unsigned max_iterations = 8);

/// Rewrites the circuit over the {CX, 1-qubit} basis. MEASURE/RESET/BARRIER
/// pass through. Throws svsim::Error for dense-payload gates.
Circuit decompose_to_cx_basis(const Circuit& circuit);

}  // namespace svsim::qc
