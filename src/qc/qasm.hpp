// OpenQASM 2.0 subset I/O.
//
// Supports the gate vocabulary of qelib1.inc that maps onto svsim's gate
// kinds, multiple quantum/classical registers (flattened into one index
// space in declaration order), arithmetic parameter expressions with `pi`,
// line comments, measure/reset/barrier. Custom `gate` definitions and
// `if` statements are not supported — the simulator evaluation never uses
// them.
#pragma once

#include <string>

#include "qc/circuit.hpp"

namespace svsim::qc {

/// Parses OpenQASM 2.0 source into a Circuit. Throws svsim::Error with a
/// line number on malformed input.
Circuit parse_qasm(const std::string& source);

/// Reads and parses a .qasm file.
Circuit parse_qasm_file(const std::string& path);

/// Serializes a circuit as OpenQASM 2.0 (one flat register "q"). Gates with
/// no QASM spelling (u2q, unitary, diag, mcx, mcp) are rejected; run fusion
/// only after export, or export the pre-fusion circuit.
std::string to_qasm(const Circuit& circuit);

}  // namespace svsim::qc
