// Pauli strings and weighted Pauli operators (observables).
//
// A Pauli string on n qubits is stored as two bitmasks (x, z): qubit q
// carries X if x-bit set, Z if z-bit set, Y if both (Y = iXZ). This is the
// standard symplectic representation; products, commutation and matrix
// elements all reduce to bit arithmetic.
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "qc/matrix.hpp"

namespace svsim::qc {

/// A single n-qubit Pauli string (no coefficient, phase convention +1).
class PauliString {
 public:
  PauliString() = default;
  /// Identity on n qubits.
  explicit PauliString(unsigned num_qubits)
      : num_qubits_(num_qubits) {}
  /// From masks.
  PauliString(unsigned num_qubits, std::uint64_t x_mask, std::uint64_t z_mask);

  /// Parses a label like "XIZY"; label[0] is the HIGHEST qubit
  /// (Qiskit order: rightmost character = qubit 0).
  static PauliString from_label(const std::string& label);

  /// Builds a single-qubit Pauli ('X','Y','Z','I') on qubit q of n.
  static PauliString single(unsigned num_qubits, unsigned q, char pauli);

  unsigned num_qubits() const noexcept { return num_qubits_; }
  std::uint64_t x_mask() const noexcept { return x_; }
  std::uint64_t z_mask() const noexcept { return z_; }

  /// Pauli on qubit q: 'I', 'X', 'Y', or 'Z'.
  char pauli_at(unsigned q) const;

  /// Label with qubit n-1 first (inverse of from_label).
  std::string to_label() const;

  /// Number of non-identity tensor factors.
  unsigned weight() const noexcept;

  bool is_identity() const noexcept { return x_ == 0 && z_ == 0; }

  /// True if this commutes with other.
  bool commutes_with(const PauliString& other) const noexcept;

  /// Product: returns (phase, string) with phase in {1, i, -1, -i} such that
  /// this * other = phase * result.
  std::pair<std::complex<double>, PauliString> multiply(
      const PauliString& other) const;

  /// Dense matrix (2^n); n must be small.
  Matrix to_matrix() const;

  /// Matrix element semantics without building the matrix: for basis state
  /// |col>, P|col> = phase * |row>. Returns {row, phase}.
  std::pair<std::uint64_t, std::complex<double>> apply_to_basis(
      std::uint64_t col) const;

  bool operator==(const PauliString& other) const noexcept {
    return num_qubits_ == other.num_qubits_ && x_ == other.x_ &&
           z_ == other.z_;
  }

 private:
  unsigned num_qubits_ = 0;
  std::uint64_t x_ = 0;
  std::uint64_t z_ = 0;
};

/// A real-weighted sum of Pauli strings (a Hermitian observable).
class PauliOperator {
 public:
  PauliOperator() = default;
  explicit PauliOperator(unsigned num_qubits) : num_qubits_(num_qubits) {}

  unsigned num_qubits() const noexcept { return num_qubits_; }

  struct Term {
    double coefficient;
    PauliString pauli;
  };

  const std::vector<Term>& terms() const noexcept { return terms_; }
  std::size_t size() const noexcept { return terms_.size(); }

  /// Adds coefficient * pauli; merges with an existing equal string.
  PauliOperator& add(double coefficient, PauliString pauli);
  /// Adds coefficient * from_label(label).
  PauliOperator& add(double coefficient, const std::string& label);

  PauliOperator operator+(const PauliOperator& rhs) const;
  PauliOperator operator*(double scale) const;

  /// Dense matrix (2^n); n must be small.
  Matrix to_matrix() const;

  std::string to_string() const;

 private:
  unsigned num_qubits_ = 0;
  std::vector<Term> terms_;
};

/// MaxCut cost Hamiltonian: C = Σ_(i,j)∈E w/2 (1 - Z_i Z_j); we drop the
/// constant and return Σ -w/2 Z_i Z_j, whose ground state maximizes the cut.
PauliOperator maxcut_hamiltonian(
    unsigned num_qubits,
    const std::vector<std::tuple<unsigned, unsigned, double>>& edges);

/// Transverse-field Ising: H = -J Σ Z_i Z_{i+1} - h Σ X_i (open chain).
PauliOperator tfim_hamiltonian(unsigned num_qubits, double J, double h);

/// Heisenberg XXZ chain: H = Σ Jx X_i X_{i+1} + Jy Y_i Y_{i+1}
///                          + Jz Z_i Z_{i+1} (open chain).
PauliOperator heisenberg_hamiltonian(unsigned num_qubits, double Jx, double Jy,
                                     double Jz);

}  // namespace svsim::qc
