#include "qc/dense.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace svsim::qc::dense {

std::vector<cplx> zero_state(unsigned num_qubits) {
  std::vector<cplx> state(pow2(num_qubits), cplx{0.0, 0.0});
  state[0] = 1.0;
  return state;
}

void apply_gate(std::vector<cplx>& state, const Gate& gate,
                unsigned num_qubits) {
  if (gate.kind == GateKind::BARRIER) return;
  require(gate.is_unitary_op(),
          "dense::apply_gate: non-unitary operation in circuit");
  SVSIM_ASSERT(state.size() == pow2(num_qubits));

  const Matrix u = gate.matrix();
  const unsigned k = gate.num_qubits();
  const std::uint64_t sub_dim = pow2(k);
  const std::uint64_t outer = pow2(num_qubits - k);

  // Sorted operand positions for the insert-zero-bits enumeration; the
  // gather/scatter below maps between matrix index order (gate.qubits) and
  // state bits.
  std::vector<unsigned> sorted_ops(gate.qubits.begin(), gate.qubits.end());
  std::sort(sorted_ops.begin(), sorted_ops.end());

  std::vector<cplx> in(sub_dim), out(sub_dim);
  for (std::uint64_t o = 0; o < outer; ++o) {
    const std::uint64_t base = insert_zero_bits(o, sorted_ops);
    for (std::uint64_t s = 0; s < sub_dim; ++s) {
      const std::uint64_t idx = base | scatter_bits(s, gate.qubits);
      in[s] = state[idx];
    }
    for (std::uint64_t r = 0; r < sub_dim; ++r) {
      cplx acc{0.0, 0.0};
      for (std::uint64_t c = 0; c < sub_dim; ++c) acc += u(r, c) * in[c];
      out[r] = acc;
    }
    for (std::uint64_t s = 0; s < sub_dim; ++s) {
      const std::uint64_t idx = base | scatter_bits(s, gate.qubits);
      state[idx] = out[s];
    }
  }
}

std::vector<cplx> run(const Circuit& circuit) {
  require(circuit.is_unitary(), "dense::run: circuit contains measure/reset");
  auto state = zero_state(circuit.num_qubits());
  for (const auto& g : circuit.gates())
    apply_gate(state, g, circuit.num_qubits());
  return state;
}

Matrix circuit_unitary(const Circuit& circuit) {
  require(circuit.is_unitary(),
          "dense::circuit_unitary: circuit contains measure/reset");
  const unsigned n = circuit.num_qubits();
  require(n <= 12, "dense::circuit_unitary: too many qubits");
  const std::uint64_t dim = pow2(n);
  Matrix u(dim);
  std::vector<cplx> col(dim);
  for (std::uint64_t kcol = 0; kcol < dim; ++kcol) {
    std::fill(col.begin(), col.end(), cplx{0.0, 0.0});
    col[kcol] = 1.0;
    for (const auto& g : circuit.gates()) apply_gate(col, g, n);
    for (std::uint64_t r = 0; r < dim; ++r) u(r, kcol) = col[r];
  }
  return u;
}

double norm_squared(const std::vector<cplx>& state) {
  double n = 0.0;
  for (const cplx& a : state) n += std::norm(a);
  return n;
}

double overlap(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  require(a.size() == b.size(), "overlap: state size mismatch");
  cplx acc{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::conj(a[i]) * b[i];
  return std::abs(acc);
}

double distance(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  require(a.size() == b.size(), "distance: state size mismatch");
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    d = std::max(d, std::abs(a[i] - b[i]));
  return d;
}

double distance_up_to_phase(const std::vector<cplx>& a,
                            const std::vector<cplx>& b) {
  require(a.size() == b.size(), "distance: state size mismatch");
  // Align phases on the largest-magnitude entry of a.
  std::size_t imax = 0;
  double best = -1.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i]) > best) {
      best = std::abs(a[i]);
      imax = i;
    }
  }
  if (best < 1e-15 || std::abs(b[imax]) < 1e-15) return distance(a, b);
  const cplx phase = (b[imax] / std::abs(b[imax])) / (a[imax] / std::abs(a[imax]));
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    d = std::max(d, std::abs(a[i] * phase - b[i]));
  return d;
}

}  // namespace svsim::qc::dense
