#include "qc/transpile.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "qc/dense.hpp"

namespace svsim::qc {

namespace {

constexpr double kTinyAngle = 1e-12;

bool is_identity_product(const Gate& first, const Gate& second) {
  const Matrix product = second.matrix() * first.matrix();
  return product.distance(Matrix::identity(product.dim())) < 1e-10;
}

/// Kinds whose single parameter is an additive angle on fixed operands.
bool is_additive_rotation(GateKind kind) {
  switch (kind) {
    case GateKind::RX: case GateKind::RY: case GateKind::RZ:
    case GateKind::P: case GateKind::CP: case GateKind::CRX:
    case GateKind::CRY: case GateKind::CRZ: case GateKind::RXX:
    case GateKind::RYY: case GateKind::RZZ: case GateKind::MCP:
      return true;
    default:
      return false;
  }
}

}  // namespace

ZyzAngles zyz_decompose(const Matrix& u) {
  require(u.dim() == 2, "zyz_decompose: need a 2x2 matrix");
  require(u.is_unitary(1e-9), "zyz_decompose: matrix is not unitary");
  const cplx det = u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0);
  ZyzAngles a{};
  a.alpha = std::arg(det) / 2.0;
  const cplx phase = std::polar(1.0, -a.alpha);
  const cplx v00 = u(0, 0) * phase;
  const cplx v10 = u(1, 0) * phase;
  const cplx v11 = u(1, 1) * phase;

  a.gamma = 2.0 * std::atan2(std::abs(v10), std::abs(v00));
  if (std::abs(v00) < 1e-12) {
    // cos(γ/2) = 0: only β - δ is determined; fix δ = 0.
    // v10 = e^{i(β-δ)/2} sin(γ/2).
    a.beta = 2.0 * std::arg(v10);
    a.delta = 0.0;
  } else if (std::abs(v10) < 1e-12) {
    // sin(γ/2) = 0: only β + δ is determined; fix δ = 0.
    // v11 = e^{i(β+δ)/2} cos(γ/2).
    a.beta = 2.0 * std::arg(v11);
    a.delta = 0.0;
  } else {
    a.beta = std::arg(v11) + std::arg(v10);
    a.delta = std::arg(v11) - std::arg(v10);
  }
  return a;
}

Gate zyz_to_u(unsigned q, const ZyzAngles& angles, double* global_phase) {
  // U(θ,φ,λ) = e^{i(φ+λ)/2} RZ(φ) RY(θ) RZ(λ).
  if (global_phase != nullptr)
    *global_phase = angles.alpha - (angles.beta + angles.delta) / 2.0;
  return Gate::u(q, angles.gamma, angles.beta, angles.delta);
}

Circuit cancel_adjacent_inverses(const Circuit& circuit) {
  Circuit out(circuit.num_qubits(), circuit.num_clbits());
  std::vector<Gate> staged;
  std::vector<bool> alive;
  // last[q]: index in `staged` of the most recent op touching q (-1 none,
  // -2 unknown after a cancellation — blocks chaining within this pass).
  std::vector<std::ptrdiff_t> last(circuit.num_qubits(), -1);

  auto block_all = [&](std::ptrdiff_t idx) {
    for (auto& l : last) l = idx;
  };

  for (const auto& g : circuit.gates()) {
    if (g.kind == GateKind::BARRIER || !g.is_unitary_op()) {
      staged.push_back(g);
      alive.push_back(true);
      const auto idx = static_cast<std::ptrdiff_t>(staged.size() - 1);
      if (g.kind == GateKind::BARRIER) {
        block_all(idx);
      } else {
        for (unsigned q : g.qubits) last[q] = idx;
      }
      continue;
    }
    // Candidate: the unique previous op touching exactly this operand set.
    std::ptrdiff_t candidate = last[g.qubits.front()];
    bool same = candidate >= 0;
    for (unsigned q : g.qubits) same = same && last[q] == candidate;
    if (same && alive[static_cast<std::size_t>(candidate)]) {
      const Gate& prev = staged[static_cast<std::size_t>(candidate)];
      if (prev.is_unitary_op() && prev.kind != GateKind::BARRIER &&
          prev.qubits == g.qubits && is_identity_product(prev, g)) {
        alive[static_cast<std::size_t>(candidate)] = false;
        for (unsigned q : g.qubits) last[q] = -2;
        continue;
      }
    }
    staged.push_back(g);
    alive.push_back(true);
    const auto idx = static_cast<std::ptrdiff_t>(staged.size() - 1);
    for (unsigned q : g.qubits) last[q] = idx;
  }

  for (std::size_t i = 0; i < staged.size(); ++i)
    if (alive[i]) out.append(std::move(staged[i]));
  return out;
}

namespace {

/// Exact commutation check of two gates on their joint support (union must
/// span <= 4 qubits; wider unions return false = "assume non-commuting").
bool gates_commute(const Gate& a, const Gate& b) {
  std::vector<unsigned> support;
  for (unsigned q : a.qubits) support.push_back(q);
  for (unsigned q : b.qubits)
    if (std::find(support.begin(), support.end(), q) == support.end())
      support.push_back(q);
  if (support.size() > 4) return false;
  auto local = [&](const Gate& g) {
    Gate lg = g;
    for (auto& q : lg.qubits) {
      const auto it = std::find(support.begin(), support.end(), q);
      q = static_cast<unsigned>(it - support.begin());
    }
    return lg;
  };
  const unsigned k = static_cast<unsigned>(support.size());
  Circuit ab(k), ba(k);
  ab.append(local(a)).append(local(b));
  ba.append(local(b)).append(local(a));
  return dense::circuit_unitary(ab).distance(dense::circuit_unitary(ba)) <
         1e-10;
}

}  // namespace

Circuit commute_cancel(const Circuit& circuit, unsigned max_lookback) {
  Circuit out(circuit.num_qubits(), circuit.num_clbits());
  std::vector<Gate> staged;
  std::vector<bool> alive;

  for (const auto& g : circuit.gates()) {
    if (!g.is_unitary_op() || g.kind == GateKind::BARRIER) {
      staged.push_back(g);
      alive.push_back(true);
      continue;
    }
    bool cancelled = false;
    unsigned looked = 0;
    for (std::size_t i = staged.size(); i-- > 0 && looked < max_lookback;) {
      if (!alive[i]) continue;
      const Gate& p = staged[i];
      ++looked;
      if (!p.is_unitary_op() || p.kind == GateKind::BARRIER) {
        // Measurement/reset/barrier: nothing moves across.
        bool overlaps = p.kind == GateKind::BARRIER;
        for (unsigned q : p.qubits)
          overlaps = overlaps ||
                     std::find(g.qubits.begin(), g.qubits.end(), q) !=
                         g.qubits.end();
        if (overlaps) break;
        continue;
      }
      // Disjoint supports trivially commute.
      bool overlaps = false;
      for (unsigned q : p.qubits)
        overlaps = overlaps || std::find(g.qubits.begin(), g.qubits.end(),
                                         q) != g.qubits.end();
      if (!overlaps) continue;
      if (p.qubits == g.qubits && is_identity_product(p, g)) {
        alive[i] = false;
        cancelled = true;
        break;
      }
      if (!gates_commute(p, g)) break;
    }
    if (cancelled) continue;
    staged.push_back(g);
    alive.push_back(true);
  }

  for (std::size_t i = 0; i < staged.size(); ++i)
    if (alive[i]) out.append(std::move(staged[i]));
  return out;
}

Circuit merge_rotations(const Circuit& circuit, double angle_epsilon) {
  Circuit out(circuit.num_qubits(), circuit.num_clbits());
  std::vector<Gate> staged;
  std::vector<bool> alive;
  std::vector<std::ptrdiff_t> last(circuit.num_qubits(), -1);

  for (const auto& g : circuit.gates()) {
    bool merged = false;
    if (is_additive_rotation(g.kind)) {
      std::ptrdiff_t candidate = last[g.qubits.front()];
      bool same = candidate >= 0;
      for (unsigned q : g.qubits) same = same && last[q] == candidate;
      if (same && alive[static_cast<std::size_t>(candidate)]) {
        Gate& prev = staged[static_cast<std::size_t>(candidate)];
        if (prev.kind == g.kind && prev.qubits == g.qubits) {
          prev.params[0] += g.params[0];
          if (std::abs(prev.params[0]) < angle_epsilon) {
            alive[static_cast<std::size_t>(candidate)] = false;
            for (unsigned q : g.qubits) last[q] = -2;
          }
          merged = true;
        }
      }
    }
    if (merged) continue;
    staged.push_back(g);
    alive.push_back(true);
    const auto idx = static_cast<std::ptrdiff_t>(staged.size() - 1);
    if (g.kind == GateKind::BARRIER) {
      for (auto& l : last) l = idx;
    } else {
      for (unsigned q : g.qubits) last[q] = idx;
    }
  }

  for (std::size_t i = 0; i < staged.size(); ++i)
    if (alive[i]) out.append(std::move(staged[i]));
  return out;
}

Circuit merge_single_qubit_runs(const Circuit& circuit) {
  Circuit out(circuit.num_qubits(), circuit.num_clbits());
  std::vector<std::vector<Gate>> pending(circuit.num_qubits());

  auto flush = [&](unsigned q) {
    auto& run = pending[q];
    if (run.empty()) return;
    if (run.size() == 1) {
      out.append(run.front());
    } else {
      Matrix m = Matrix::identity(2);
      for (const auto& g : run) m = g.matrix() * m;
      out.append(zyz_to_u(q, zyz_decompose(m)));
    }
    run.clear();
  };
  auto flush_all = [&] {
    for (unsigned q = 0; q < circuit.num_qubits(); ++q) flush(q);
  };

  for (const auto& g : circuit.gates()) {
    if (g.is_unitary_op() && g.num_qubits() == 1 &&
        g.kind != GateKind::I) {
      pending[g.qubits[0]].push_back(g);
      continue;
    }
    if (g.kind == GateKind::I) continue;
    if (g.kind == GateKind::BARRIER) {
      flush_all();
      out.append(g);
      continue;
    }
    for (unsigned q : g.qubits) flush(q);
    out.append(g);
  }
  flush_all();
  return out;
}

Circuit optimize(const Circuit& circuit, unsigned max_iterations) {
  Circuit current = circuit;
  for (unsigned i = 0; i < max_iterations; ++i) {
    const std::size_t before = current.size();
    current = cancel_adjacent_inverses(current);
    current = merge_rotations(current);
    if (current.size() == before) break;
  }
  return current;
}

namespace {

/// Recursive emitter for decompose_to_cx_basis.
class BasisEmitter {
 public:
  explicit BasisEmitter(Circuit& out) : out_(out) {}

  void emit(const Gate& g) {
    switch (g.kind) {
      case GateKind::I:
        return;
      case GateKind::BARRIER:
      case GateKind::MEASURE:
      case GateKind::RESET:
        out_.append(g);
        return;
      // Already in basis.
      case GateKind::X: case GateKind::Y: case GateKind::Z: case GateKind::H:
      case GateKind::S: case GateKind::Sdg: case GateKind::T:
      case GateKind::Tdg: case GateKind::SX: case GateKind::SXdg:
      case GateKind::RX: case GateKind::RY: case GateKind::RZ:
      case GateKind::P: case GateKind::U: case GateKind::CX:
        out_.append(g);
        return;
      case GateKind::SWAP:
        emit_swap(g.qubits[0], g.qubits[1]);
        return;
      case GateKind::ISWAP: {
        // iSWAP = (S⊗S)(H on a) CX(a,b) CX(b,a) (H on b)
        const unsigned a = g.qubits[0], b = g.qubits[1];
        out_.append(Gate::s(a));
        out_.append(Gate::s(b));
        out_.append(Gate::h(a));
        out_.append(Gate::cx(a, b));
        out_.append(Gate::cx(b, a));
        out_.append(Gate::h(b));
        return;
      }
      case GateKind::CZ: case GateKind::CY: case GateKind::CH:
      case GateKind::CP: case GateKind::CRX: case GateKind::CRY:
      case GateKind::CRZ:
        emit_controlled_1q(g.qubits[0], g.qubits[1], g.target_matrix());
        return;
      case GateKind::RZZ:
        emit_rzz(g.qubits[0], g.qubits[1], g.params[0]);
        return;
      case GateKind::RXX: {
        const unsigned a = g.qubits[0], b = g.qubits[1];
        out_.append(Gate::h(a));
        out_.append(Gate::h(b));
        emit_rzz(a, b, g.params[0]);
        out_.append(Gate::h(a));
        out_.append(Gate::h(b));
        return;
      }
      case GateKind::RYY: {
        const unsigned a = g.qubits[0], b = g.qubits[1];
        const double half_pi = std::numbers::pi / 2;
        out_.append(Gate::rx(a, half_pi));
        out_.append(Gate::rx(b, half_pi));
        emit_rzz(a, b, g.params[0]);
        out_.append(Gate::rx(a, -half_pi));
        out_.append(Gate::rx(b, -half_pi));
        return;
      }
      case GateKind::CCX:
        emit_ccx(g.qubits[0], g.qubits[1], g.qubits[2]);
        return;
      case GateKind::CCZ:
        out_.append(Gate::h(g.qubits[2]));
        emit_ccx(g.qubits[0], g.qubits[1], g.qubits[2]);
        out_.append(Gate::h(g.qubits[2]));
        return;
      case GateKind::CSWAP: {
        const unsigned c = g.qubits[0], a = g.qubits[1], b = g.qubits[2];
        out_.append(Gate::cx(b, a));
        emit_ccx(c, a, b);
        out_.append(Gate::cx(b, a));
        return;
      }
      case GateKind::MCX:
        emit_mcx(g.controls(), g.targets()[0]);
        return;
      case GateKind::MCP:
        emit_mcp(g.controls(), g.targets()[0], g.params[0]);
        return;
      case GateKind::U2Q:
      case GateKind::UNITARY:
      case GateKind::DIAG:
        throw Error(std::string("decompose_to_cx_basis: gate '") + g.name() +
                    "' with a dense payload is not supported");
    }
    throw Error("decompose_to_cx_basis: unhandled gate kind");
  }

 private:
  void emit_swap(unsigned a, unsigned b) {
    out_.append(Gate::cx(a, b));
    out_.append(Gate::cx(b, a));
    out_.append(Gate::cx(a, b));
  }

  void emit_rzz(unsigned a, unsigned b, double theta) {
    out_.append(Gate::cx(a, b));
    out_.append(Gate::rz(b, theta));
    out_.append(Gate::cx(a, b));
  }

  /// Controlled-U via the ABC construction: with U = e^{iα} RZ(β) RY(γ)
  /// RZ(δ), CU = P(α)_c · [A]_t CX [B]_t CX [C]_t where A = RZ(β) RY(γ/2),
  /// B = RY(−γ/2) RZ(−(δ+β)/2), C = RZ((δ−β)/2). Circuit order: C first.
  void emit_controlled_1q(unsigned c, unsigned t, const Matrix& u) {
    const ZyzAngles a = zyz_decompose(u);
    // C
    maybe_rz(t, (a.delta - a.beta) / 2.0);
    out_.append(Gate::cx(c, t));
    // B (right factor first)
    maybe_rz(t, -(a.delta + a.beta) / 2.0);
    maybe_ry(t, -a.gamma / 2.0);
    out_.append(Gate::cx(c, t));
    // A
    maybe_ry(t, a.gamma / 2.0);
    maybe_rz(t, a.beta);
    // controlled global phase
    if (std::abs(a.alpha) > kTinyAngle) out_.append(Gate::p(c, a.alpha));
  }

  void maybe_rz(unsigned q, double angle) {
    if (std::abs(angle) > kTinyAngle) out_.append(Gate::rz(q, angle));
  }
  void maybe_ry(unsigned q, double angle) {
    if (std::abs(angle) > kTinyAngle) out_.append(Gate::ry(q, angle));
  }

  void emit_ccx(unsigned a, unsigned b, unsigned t) {
    out_.append(Gate::h(t));
    out_.append(Gate::cx(b, t));
    out_.append(Gate::tdg(t));
    out_.append(Gate::cx(a, t));
    out_.append(Gate::t(t));
    out_.append(Gate::cx(b, t));
    out_.append(Gate::tdg(t));
    out_.append(Gate::cx(a, t));
    out_.append(Gate::t(b));
    out_.append(Gate::t(t));
    out_.append(Gate::h(t));
    out_.append(Gate::cx(a, b));
    out_.append(Gate::t(a));
    out_.append(Gate::tdg(b));
    out_.append(Gate::cx(a, b));
  }

  void emit_mcx(const std::vector<unsigned>& controls, unsigned t) {
    if (controls.size() == 1) {
      out_.append(Gate::cx(controls[0], t));
      return;
    }
    if (controls.size() == 2) {
      emit_ccx(controls[0], controls[1], t);
      return;
    }
    out_.append(Gate::h(t));
    emit_mcp(controls, t, std::numbers::pi);
    out_.append(Gate::h(t));
  }

  /// No-ancilla recursion:
  /// C^k P(λ) = CP(λ/2)(c_k,t) · C^{k-1}X(c_1..c_{k-1} → c_k)
  ///          · CP(−λ/2)(c_k,t) · C^{k-1}X · C^{k-1}P(λ/2)(c_1..c_{k-1}, t).
  /// Exponential in k; guarded by the arity limit below.
  void emit_mcp(const std::vector<unsigned>& controls, unsigned t,
                double lambda) {
    require(controls.size() <= 8,
            "decompose_to_cx_basis: MCP with >8 controls explodes; "
            "use the native kernel instead");
    if (controls.empty()) {
      out_.append(Gate::p(t, lambda));
      return;
    }
    if (controls.size() == 1) {
      emit_controlled_1q(controls[0], t, mat::P(lambda));
      return;
    }
    std::vector<unsigned> rest(controls.begin(), controls.end() - 1);
    const unsigned ck = controls.back();
    emit_controlled_1q(ck, t, mat::P(lambda / 2.0));
    emit_mcx(rest, ck);
    emit_controlled_1q(ck, t, mat::P(-lambda / 2.0));
    emit_mcx(rest, ck);
    emit_mcp(rest, t, lambda / 2.0);
  }

  Circuit& out_;
};

}  // namespace

Circuit decompose_to_cx_basis(const Circuit& circuit) {
  Circuit out(circuit.num_qubits(), circuit.num_clbits());
  BasisEmitter emitter(out);
  for (const auto& g : circuit.gates()) emitter.emit(g);
  return out;
}

}  // namespace svsim::qc
