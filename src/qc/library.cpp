#include "qc/library.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <set>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace svsim::qc {

Circuit qft(unsigned num_qubits, bool with_swaps) {
  Circuit c(num_qubits);
  for (unsigned q = num_qubits; q-- > 0;) {
    c.h(q);
    for (unsigned j = q; j-- > 0;) {
      // Controlled phase by π / 2^(q-j) with control j, target q.
      c.cp(j, q, std::numbers::pi / static_cast<double>(pow2(q - j)));
    }
  }
  if (with_swaps) {
    for (unsigned q = 0; q < num_qubits / 2; ++q)
      c.swap(q, num_qubits - 1 - q);
  }
  return c;
}

Circuit inverse_qft(unsigned num_qubits, bool with_swaps) {
  return qft(num_qubits, with_swaps).inverse();
}

Circuit ghz(unsigned num_qubits) {
  Circuit c(num_qubits);
  c.h(0);
  for (unsigned q = 0; q + 1 < num_qubits; ++q) c.cx(q, q + 1);
  return c;
}

unsigned grover_optimal_iterations(unsigned num_qubits) {
  const double N = static_cast<double>(pow2(num_qubits));
  return static_cast<unsigned>(std::floor(std::numbers::pi / 4 * std::sqrt(N)));
}

Circuit grover(unsigned num_qubits, std::uint64_t marked, unsigned iterations) {
  require(num_qubits >= 2, "grover needs at least 2 qubits");
  require(marked < pow2(num_qubits), "grover: marked item out of range");
  if (iterations == 0) iterations = grover_optimal_iterations(num_qubits);

  Circuit c(num_qubits);
  for (unsigned q = 0; q < num_qubits; ++q) c.h(q);

  std::vector<unsigned> controls;
  for (unsigned q = 0; q + 1 < num_qubits; ++q) controls.push_back(q);
  const unsigned target = num_qubits - 1;

  for (unsigned it = 0; it < iterations; ++it) {
    // Oracle: phase-flip |marked>. X-conjugate the zero bits of `marked`
    // around a multi-controlled Z (implemented as MCP(π)).
    for (unsigned q = 0; q < num_qubits; ++q)
      if (!test_bit(marked, q)) c.x(q);
    c.append(Gate::mcp(controls, target, std::numbers::pi));
    for (unsigned q = 0; q < num_qubits; ++q)
      if (!test_bit(marked, q)) c.x(q);

    // Diffuser: H X (multi-controlled Z) X H.
    for (unsigned q = 0; q < num_qubits; ++q) c.h(q);
    for (unsigned q = 0; q < num_qubits; ++q) c.x(q);
    c.append(Gate::mcp(controls, target, std::numbers::pi));
    for (unsigned q = 0; q < num_qubits; ++q) c.x(q);
    for (unsigned q = 0; q < num_qubits; ++q) c.h(q);
  }
  return c;
}

Circuit random_quantum_volume(unsigned num_qubits, unsigned depth,
                              std::uint64_t seed) {
  require(num_qubits >= 2, "random_quantum_volume needs >= 2 qubits");
  Xoshiro256 rng(seed);
  Circuit c(num_qubits);
  std::vector<unsigned> perm(num_qubits);
  for (unsigned q = 0; q < num_qubits; ++q) perm[q] = q;
  for (unsigned layer = 0; layer < depth; ++layer) {
    // Fisher-Yates shuffle, then pair adjacent entries.
    for (unsigned i = num_qubits; i-- > 1;) {
      const auto j = static_cast<unsigned>(rng.uniform_int(i + 1));
      std::swap(perm[i], perm[j]);
    }
    for (unsigned i = 0; i + 1 < num_qubits; i += 2) {
      c.append(Gate::u2q(perm[i], perm[i + 1],
                         Matrix::random_unitary(4, rng)));
    }
  }
  return c;
}

Circuit random_clifford_t(unsigned num_qubits, std::size_t length,
                          std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Circuit c(num_qubits);
  for (std::size_t i = 0; i < length; ++i) {
    const auto pick = rng.uniform_int(num_qubits >= 2 ? 5 : 4);
    const auto q = static_cast<unsigned>(rng.uniform_int(num_qubits));
    switch (pick) {
      case 0: c.h(q); break;
      case 1: c.t(q); break;
      case 2: c.s(q); break;
      case 3: c.x(q); break;
      case 4: {
        auto t = static_cast<unsigned>(rng.uniform_int(num_qubits - 1));
        if (t >= q) ++t;
        c.cx(q, t);
        break;
      }
    }
  }
  return c;
}

Circuit qaoa_maxcut(
    unsigned num_qubits,
    const std::vector<std::tuple<unsigned, unsigned, double>>& edges,
    const std::vector<double>& gammas, const std::vector<double>& betas) {
  require(gammas.size() == betas.size(),
          "qaoa_maxcut: gammas and betas must have equal length");
  Circuit c(num_qubits);
  for (unsigned q = 0; q < num_qubits; ++q) c.h(q);
  for (std::size_t round = 0; round < gammas.size(); ++round) {
    for (const auto& [i, j, w] : edges)
      c.rzz(i, j, gammas[round] * w);
    for (unsigned q = 0; q < num_qubits; ++q)
      c.rx(q, 2.0 * betas[round]);
  }
  return c;
}

Circuit hardware_efficient_ansatz(unsigned num_qubits, unsigned layers,
                                  const std::vector<double>& parameters) {
  require(parameters.size() == 2ull * num_qubits * layers,
          "hardware_efficient_ansatz: wrong parameter count");
  Circuit c(num_qubits);
  std::size_t p = 0;
  for (unsigned layer = 0; layer < layers; ++layer) {
    for (unsigned q = 0; q < num_qubits; ++q) c.ry(q, parameters[p++]);
    for (unsigned q = 0; q < num_qubits; ++q) c.rz(q, parameters[p++]);
    for (unsigned q = 0; q + 1 < num_qubits; ++q) c.cx(q, q + 1);
  }
  return c;
}

Circuit ising_trotter(unsigned num_qubits, double J, double h, double dt,
                      unsigned steps) {
  Circuit c(num_qubits);
  for (unsigned step = 0; step < steps; ++step) {
    // exp(-i (-J) ZZ dt) per bond: RZZ(θ) = exp(-i θ ZZ / 2) → θ = -2 J dt.
    for (unsigned q = 0; q + 1 < num_qubits; ++q)
      c.rzz(q, q + 1, -2.0 * J * dt);
    // exp(-i (-h) X dt) per site: RX(θ) = exp(-i θ X / 2) → θ = -2 h dt.
    for (unsigned q = 0; q < num_qubits; ++q) c.rx(q, -2.0 * h * dt);
  }
  return c;
}

Circuit ising_trotter2(unsigned num_qubits, double J, double h, double dt,
                       unsigned steps) {
  Circuit c(num_qubits);
  for (unsigned step = 0; step < steps; ++step) {
    for (unsigned q = 0; q < num_qubits; ++q) c.rx(q, -h * dt);
    for (unsigned q = 0; q + 1 < num_qubits; ++q)
      c.rzz(q, q + 1, -2.0 * J * dt);
    for (unsigned q = 0; q < num_qubits; ++q) c.rx(q, -h * dt);
  }
  return c;
}

Circuit phase_estimation(unsigned precision_qubits, double phase) {
  require(precision_qubits >= 1, "phase_estimation needs readout qubits");
  const unsigned n = precision_qubits + 1;
  const unsigned target = precision_qubits;
  Circuit c(n);
  c.x(target);  // eigenstate |1> of P(λ)
  for (unsigned q = 0; q < precision_qubits; ++q) c.h(q);
  // Controlled-U^(2^q): U = P(2π·phase) so U^(2^q) = P(2π·phase·2^q).
  for (unsigned q = 0; q < precision_qubits; ++q) {
    c.cp(q, target,
         2.0 * std::numbers::pi * phase * static_cast<double>(pow2(q)));
  }
  // Inverse QFT on the readout register.
  Circuit iqft = inverse_qft(precision_qubits, /*with_swaps=*/true);
  for (const auto& g : iqft.gates()) c.append(g);
  return c;
}

std::vector<std::tuple<unsigned, unsigned, double>> ring_graph(
    unsigned num_qubits) {
  std::vector<std::tuple<unsigned, unsigned, double>> edges;
  for (unsigned q = 0; q < num_qubits; ++q)
    edges.emplace_back(q, (q + 1) % num_qubits, 1.0);
  return edges;
}

std::vector<std::tuple<unsigned, unsigned, double>> random_graph(
    unsigned num_qubits, unsigned num_edges, std::uint64_t seed) {
  require(num_qubits >= 2, "random_graph needs >= 2 vertices");
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(num_qubits) * (num_qubits - 1) / 2;
  require(num_edges <= max_edges, "random_graph: too many edges requested");
  Xoshiro256 rng(seed);
  std::set<std::pair<unsigned, unsigned>> chosen;
  while (chosen.size() < num_edges) {
    auto a = static_cast<unsigned>(rng.uniform_int(num_qubits));
    auto b = static_cast<unsigned>(rng.uniform_int(num_qubits));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    chosen.insert({a, b});
  }
  std::vector<std::tuple<unsigned, unsigned, double>> edges;
  for (const auto& [a, b] : chosen) edges.emplace_back(a, b, 1.0);
  return edges;
}

}  // namespace svsim::qc
