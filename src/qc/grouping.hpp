// Measurement grouping: partition a Pauli observable into qubit-wise
// commuting (QWC) groups that can be estimated from shared shots.
//
// Two Pauli strings are QWC when on every qubit their factors are equal or
// one is the identity; all strings of a QWC group are diagonalized by one
// single-qubit basis-change layer, so one shot batch serves the whole group.
// Grouping uses greedy sequential coloring (largest-weight-first), the
// standard practical choice.
#pragma once

#include <vector>

#include "qc/circuit.hpp"
#include "qc/pauli.hpp"

namespace svsim::qc {

/// True if a and b commute qubit-wise (a stronger condition than group
/// commutation).
bool qubitwise_commute(const PauliString& a, const PauliString& b);

/// One QWC group: member terms plus the per-qubit measurement basis.
struct MeasurementGroup {
  std::vector<PauliOperator::Term> terms;
  /// basis[q] in {'I','X','Y','Z'}: the non-identity factor required on
  /// qubit q by any member ('I' = unconstrained).
  std::vector<char> basis;
};

/// Greedily partitions the operator's terms into QWC groups
/// (largest |coefficient| first). Identity terms form their own group with
/// an all-'I' basis.
std::vector<MeasurementGroup> group_qubitwise_commuting(
    const PauliOperator& op);

/// The basis-change layer for a group: H for X, Sdg+H for Y, nothing for
/// Z/I. After appending it, every member term is diagonal (Z/I) in the
/// computational basis.
Circuit measurement_basis_circuit(const MeasurementGroup& group,
                                  unsigned num_qubits);

/// Value of a diagonalized term on a sampled bitstring: product over the
/// term's non-identity qubits of (-1)^bit.
double diagonal_term_value(const PauliString& pauli, std::uint64_t bits);

}  // namespace svsim::qc
