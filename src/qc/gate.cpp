#include "qc/gate.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>
#include <unordered_set>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace svsim::qc {

namespace {
constexpr cplx kI{0.0, 1.0};
const double kInvSqrt2 = 1.0 / std::numbers::sqrt2;
}  // namespace

namespace mat {

Matrix I() { return Matrix(2, {1, 0, 0, 1}); }
Matrix X() { return Matrix(2, {0, 1, 1, 0}); }
Matrix Y() { return Matrix(2, {0, -kI, kI, 0}); }
Matrix Z() { return Matrix(2, {1, 0, 0, -1}); }
Matrix H() {
  return Matrix(2, {kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2});
}
Matrix S() { return Matrix(2, {1, 0, 0, kI}); }
Matrix Sdg() { return Matrix(2, {1, 0, 0, -kI}); }
Matrix T() {
  return Matrix(2, {1, 0, 0, std::polar(1.0, std::numbers::pi / 4)});
}
Matrix Tdg() {
  return Matrix(2, {1, 0, 0, std::polar(1.0, -std::numbers::pi / 4)});
}
Matrix SX() {
  // sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]]
  const cplx a{0.5, 0.5}, b{0.5, -0.5};
  return Matrix(2, {a, b, b, a});
}
Matrix SXdg() {
  const cplx a{0.5, -0.5}, b{0.5, 0.5};
  return Matrix(2, {a, b, b, a});
}
Matrix RX(double theta) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return Matrix(2, {c, -kI * s, -kI * s, c});
}
Matrix RY(double theta) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return Matrix(2, {c, -s, s, c});
}
Matrix RZ(double theta) {
  return Matrix(2, {std::polar(1.0, -theta / 2), 0, 0,
                    std::polar(1.0, theta / 2)});
}
Matrix P(double lambda) {
  return Matrix(2, {1, 0, 0, std::polar(1.0, lambda)});
}
Matrix U(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return Matrix(2, {c, -std::polar(1.0, lambda) * s,
                    std::polar(1.0, phi) * s,
                    std::polar(1.0, phi + lambda) * c});
}
Matrix SWAP() {
  return Matrix(4, {1, 0, 0, 0,  //
                    0, 0, 1, 0,  //
                    0, 1, 0, 0,  //
                    0, 0, 0, 1});
}
Matrix ISWAP() {
  return Matrix(4, {1, 0, 0, 0,   //
                    0, 0, kI, 0,  //
                    0, kI, 0, 0,  //
                    0, 0, 0, 1});
}
Matrix RXX(double theta) {
  const cplx c = std::cos(theta / 2), s = -kI * std::sin(theta / 2);
  return Matrix(4, {c, 0, 0, s,  //
                    0, c, s, 0,  //
                    0, s, c, 0,  //
                    s, 0, 0, c});
}
Matrix RYY(double theta) {
  const cplx c = std::cos(theta / 2);
  const cplx s = -kI * std::sin(theta / 2);
  return Matrix(4, {c, 0, 0, -s,  //
                    0, c, s, 0,   //
                    0, s, c, 0,   //
                    -s, 0, 0, c});
}
Matrix RZZ(double theta) {
  const cplx em = std::polar(1.0, -theta / 2), ep = std::polar(1.0, theta / 2);
  return Matrix::diagonal({em, ep, ep, em});
}

}  // namespace mat

Matrix controlled_matrix(const Matrix& u, unsigned num_controls) {
  const std::size_t dim = u.dim() << num_controls;
  const std::uint64_t cmask = low_mask(num_controls);
  Matrix out = Matrix::identity(dim);
  for (std::size_t r = 0; r < u.dim(); ++r) {
    for (std::size_t c = 0; c < u.dim(); ++c) {
      const std::size_t rr = (r << num_controls) | cmask;
      const std::size_t cc = (c << num_controls) | cmask;
      out(rr, cc) = u(r, c);
    }
  }
  return out;
}

const char* gate_kind_name(GateKind kind) {
  switch (kind) {
    case GateKind::I: return "id";
    case GateKind::X: return "x";
    case GateKind::Y: return "y";
    case GateKind::Z: return "z";
    case GateKind::H: return "h";
    case GateKind::S: return "s";
    case GateKind::Sdg: return "sdg";
    case GateKind::T: return "t";
    case GateKind::Tdg: return "tdg";
    case GateKind::SX: return "sx";
    case GateKind::SXdg: return "sxdg";
    case GateKind::RX: return "rx";
    case GateKind::RY: return "ry";
    case GateKind::RZ: return "rz";
    case GateKind::P: return "p";
    case GateKind::U: return "u";
    case GateKind::CX: return "cx";
    case GateKind::CY: return "cy";
    case GateKind::CZ: return "cz";
    case GateKind::CH: return "ch";
    case GateKind::CP: return "cp";
    case GateKind::CRX: return "crx";
    case GateKind::CRY: return "cry";
    case GateKind::CRZ: return "crz";
    case GateKind::SWAP: return "swap";
    case GateKind::ISWAP: return "iswap";
    case GateKind::RXX: return "rxx";
    case GateKind::RYY: return "ryy";
    case GateKind::RZZ: return "rzz";
    case GateKind::U2Q: return "u2q";
    case GateKind::CCX: return "ccx";
    case GateKind::CCZ: return "ccz";
    case GateKind::CSWAP: return "cswap";
    case GateKind::MCX: return "mcx";
    case GateKind::MCP: return "mcp";
    case GateKind::DIAG: return "diag";
    case GateKind::UNITARY: return "unitary";
    case GateKind::MEASURE: return "measure";
    case GateKind::RESET: return "reset";
    case GateKind::BARRIER: return "barrier";
  }
  return "?";
}

Gate Gate::make(GateKind kind, std::vector<unsigned> qubits,
                std::vector<double> params) {
  Gate g;
  g.kind = kind;
  g.qubits = std::move(qubits);
  g.params = std::move(params);
  g.validate();
  return g;
}

Gate Gate::u2q(unsigned a, unsigned b, Matrix m) {
  require(m.dim() == 4, "u2q requires a 4x4 matrix");
  Gate g;
  g.kind = GateKind::U2Q;
  g.qubits = {a, b};
  g.matrix_payload_ = std::make_shared<const Matrix>(std::move(m));
  g.validate();
  return g;
}

Gate Gate::mcx(std::vector<unsigned> controls, unsigned target) {
  require(!controls.empty(), "mcx requires at least one control");
  Gate g;
  g.kind = GateKind::MCX;
  g.qubits = std::move(controls);
  g.qubits.push_back(target);
  g.validate();
  return g;
}

Gate Gate::mcp(std::vector<unsigned> controls, unsigned target,
               double lambda) {
  require(!controls.empty(), "mcp requires at least one control");
  Gate g;
  g.kind = GateKind::MCP;
  g.qubits = std::move(controls);
  g.qubits.push_back(target);
  g.params = {lambda};
  g.validate();
  return g;
}

Gate Gate::diag(std::vector<unsigned> qs, std::vector<cplx> diag_entries) {
  require(!qs.empty(), "diag requires at least one qubit");
  require(diag_entries.size() == pow2(static_cast<unsigned>(qs.size())),
          "diag entry count must be 2^k");
  Gate g;
  g.kind = GateKind::DIAG;
  g.qubits = std::move(qs);
  g.diag_payload_ =
      std::make_shared<const std::vector<cplx>>(std::move(diag_entries));
  g.validate();
  return g;
}

Gate Gate::unitary(std::vector<unsigned> qs, Matrix m) {
  require(!qs.empty(), "unitary requires at least one qubit");
  require(m.dim() == pow2(static_cast<unsigned>(qs.size())),
          "unitary matrix dimension must be 2^k");
  Gate g;
  g.kind = GateKind::UNITARY;
  g.qubits = std::move(qs);
  g.matrix_payload_ = std::make_shared<const Matrix>(std::move(m));
  g.validate();
  return g;
}

Gate Gate::measure(unsigned q, unsigned classical_bit) {
  Gate g;
  g.kind = GateKind::MEASURE;
  g.qubits = {q};
  g.cbit = classical_bit;
  return g;
}

unsigned Gate::num_controls() const noexcept {
  switch (kind) {
    case GateKind::CX: case GateKind::CY: case GateKind::CZ:
    case GateKind::CH: case GateKind::CP: case GateKind::CRX:
    case GateKind::CRY: case GateKind::CRZ:
      return 1;
    case GateKind::CCX: case GateKind::CCZ:
      return 2;
    case GateKind::CSWAP:
      return 1;
    case GateKind::MCX: case GateKind::MCP:
      return static_cast<unsigned>(qubits.size()) - 1;
    default:
      return 0;
  }
}

unsigned Gate::max_qubit() const noexcept {
  unsigned hi = 0;
  for (unsigned q : qubits) hi = q > hi ? q : hi;
  return hi;
}

std::vector<unsigned> Gate::targets() const {
  return {qubits.begin() + num_controls(), qubits.end()};
}

std::vector<unsigned> Gate::controls() const {
  return {qubits.begin(), qubits.begin() + num_controls()};
}

bool Gate::is_unitary_op() const noexcept {
  return kind != GateKind::MEASURE && kind != GateKind::RESET &&
         kind != GateKind::BARRIER;
}

bool Gate::is_diagonal() const noexcept {
  switch (kind) {
    case GateKind::I: case GateKind::Z: case GateKind::S: case GateKind::Sdg:
    case GateKind::T: case GateKind::Tdg: case GateKind::RZ: case GateKind::P:
    case GateKind::CZ: case GateKind::CP: case GateKind::CRZ:
    case GateKind::RZZ: case GateKind::CCZ: case GateKind::MCP:
    case GateKind::DIAG:
      return true;
    default:
      return false;
  }
}

Matrix Gate::target_matrix() const {
  switch (kind) {
    case GateKind::CX: case GateKind::CCX: case GateKind::MCX:
      return mat::X();
    case GateKind::CY: return mat::Y();
    case GateKind::CZ: case GateKind::CCZ: return mat::Z();
    case GateKind::CH: return mat::H();
    case GateKind::CP: case GateKind::MCP: return mat::P(params.at(0));
    case GateKind::CRX: return mat::RX(params.at(0));
    case GateKind::CRY: return mat::RY(params.at(0));
    case GateKind::CRZ: return mat::RZ(params.at(0));
    default:
      throw Error(std::string("target_matrix: gate '") + name() +
                  "' is not a controlled single-target gate");
  }
}

Matrix Gate::matrix() const {
  switch (kind) {
    case GateKind::I: return mat::I();
    case GateKind::X: return mat::X();
    case GateKind::Y: return mat::Y();
    case GateKind::Z: return mat::Z();
    case GateKind::H: return mat::H();
    case GateKind::S: return mat::S();
    case GateKind::Sdg: return mat::Sdg();
    case GateKind::T: return mat::T();
    case GateKind::Tdg: return mat::Tdg();
    case GateKind::SX: return mat::SX();
    case GateKind::SXdg: return mat::SXdg();
    case GateKind::RX: return mat::RX(params.at(0));
    case GateKind::RY: return mat::RY(params.at(0));
    case GateKind::RZ: return mat::RZ(params.at(0));
    case GateKind::P: return mat::P(params.at(0));
    case GateKind::U: return mat::U(params.at(0), params.at(1), params.at(2));
    case GateKind::SWAP: return mat::SWAP();
    case GateKind::ISWAP: return mat::ISWAP();
    case GateKind::RXX: return mat::RXX(params.at(0));
    case GateKind::RYY: return mat::RYY(params.at(0));
    case GateKind::RZZ: return mat::RZZ(params.at(0));
    case GateKind::U2Q: case GateKind::UNITARY: return *matrix_payload_;
    case GateKind::DIAG: return Matrix::diagonal(*diag_payload_);
    case GateKind::CX: case GateKind::CY: case GateKind::CZ:
    case GateKind::CH: case GateKind::CP: case GateKind::CRX:
    case GateKind::CRY: case GateKind::CRZ:
    case GateKind::CCX: case GateKind::CCZ:
    case GateKind::MCX: case GateKind::MCP:
      return controlled_matrix(target_matrix(), num_controls());
    case GateKind::CSWAP:
      return controlled_matrix(mat::SWAP(), 1);
    case GateKind::MEASURE: case GateKind::RESET: case GateKind::BARRIER:
      break;
  }
  throw Error(std::string("matrix: gate '") + name() + "' is not unitary");
}

Gate Gate::inverse() const {
  require(is_unitary_op(), "inverse: non-unitary operation");
  Gate g = *this;
  switch (kind) {
    // Self-inverse kinds.
    case GateKind::I: case GateKind::X: case GateKind::Y: case GateKind::Z:
    case GateKind::H: case GateKind::CX: case GateKind::CY: case GateKind::CZ:
    case GateKind::CH: case GateKind::SWAP: case GateKind::CCX:
    case GateKind::CCZ: case GateKind::CSWAP: case GateKind::MCX:
      return g;
    // Kind swaps.
    case GateKind::S: g.kind = GateKind::Sdg; return g;
    case GateKind::Sdg: g.kind = GateKind::S; return g;
    case GateKind::T: g.kind = GateKind::Tdg; return g;
    case GateKind::Tdg: g.kind = GateKind::T; return g;
    case GateKind::SX: g.kind = GateKind::SXdg; return g;
    case GateKind::SXdg: g.kind = GateKind::SX; return g;
    // Angle negation.
    case GateKind::RX: case GateKind::RY: case GateKind::RZ: case GateKind::P:
    case GateKind::CP: case GateKind::CRX: case GateKind::CRY:
    case GateKind::CRZ: case GateKind::RXX: case GateKind::RYY:
    case GateKind::RZZ: case GateKind::MCP:
      g.params[0] = -g.params[0];
      return g;
    case GateKind::U:
      // U(θ,φ,λ)⁻¹ = U(-θ,-λ,-φ)
      g.params = {-params[0], -params[2], -params[1]};
      return g;
    case GateKind::ISWAP:
      return Gate::u2q(qubits[0], qubits[1], mat::ISWAP().dagger());
    case GateKind::U2Q:
      return Gate::u2q(qubits[0], qubits[1], matrix_payload_->dagger());
    case GateKind::UNITARY:
      return Gate::unitary(qubits, matrix_payload_->dagger());
    case GateKind::DIAG: {
      std::vector<cplx> conj(diag_payload_->size());
      for (std::size_t i = 0; i < conj.size(); ++i)
        conj[i] = std::conj((*diag_payload_)[i]);
      return Gate::diag(qubits, std::move(conj));
    }
    case GateKind::MEASURE: case GateKind::RESET: case GateKind::BARRIER:
      break;
  }
  throw Error("inverse: unhandled gate kind");
}

const std::vector<cplx>& Gate::diagonal_entries() const {
  require(diag_payload_ != nullptr, "gate has no diagonal payload");
  return *diag_payload_;
}

const Matrix& Gate::matrix_payload() const {
  require(matrix_payload_ != nullptr, "gate has no matrix payload");
  return *matrix_payload_;
}

std::string Gate::to_string() const {
  std::ostringstream os;
  os << name();
  if (!params.empty()) {
    os << '(';
    for (std::size_t i = 0; i < params.size(); ++i)
      os << params[i] << (i + 1 < params.size() ? "," : "");
    os << ')';
  }
  if (!qubits.empty()) {
    os << ' ';
    for (std::size_t i = 0; i < qubits.size(); ++i)
      os << "q[" << qubits[i] << ']' << (i + 1 < qubits.size() ? "," : "");
  }
  if (kind == GateKind::MEASURE) os << " -> c[" << cbit << ']';
  return os.str();
}

void Gate::validate() const {
  std::unordered_set<unsigned> seen;
  for (unsigned q : qubits)
    require(seen.insert(q).second,
            "gate '" + std::string(name()) + "' has duplicate operand qubits");
  if (kind == GateKind::UNITARY || kind == GateKind::U2Q)
    require(matrix_payload_ != nullptr, "matrix-kind gate missing payload");
  if (kind == GateKind::DIAG)
    require(diag_payload_ != nullptr, "diag gate missing payload");
}

}  // namespace svsim::qc
