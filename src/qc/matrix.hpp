// Small dense complex matrices for gate definitions.
//
// Gates act on at most a handful of qubits, so these matrices are tiny
// (2x2 .. 64x64). The class is a plain row-major owning matrix with the
// operations the circuit layer needs: multiply, adjoint, Kronecker product,
// unitarity checks, and random-unitary generation for quantum-volume style
// workloads. It is not a linear-algebra library; the state-vector kernels
// never touch it in their hot loops.
#pragma once

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace svsim::qc {

using cplx = std::complex<double>;

/// Square row-major complex matrix with dimension a power of two.
class Matrix {
 public:
  Matrix() = default;

  /// dim x dim zero matrix.
  explicit Matrix(std::size_t dim);

  /// Builds from a row-major initializer list of dim*dim entries.
  Matrix(std::size_t dim, std::initializer_list<cplx> entries);

  /// Builds from a row-major vector of dim*dim entries.
  Matrix(std::size_t dim, std::vector<cplx> entries);

  static Matrix identity(std::size_t dim);
  static Matrix zero(std::size_t dim) { return Matrix(dim); }

  /// Haar-ish random unitary via Gram-Schmidt on a complex Ginibre matrix.
  static Matrix random_unitary(std::size_t dim, Xoshiro256& rng);

  /// Diagonal matrix with the given diagonal entries.
  static Matrix diagonal(const std::vector<cplx>& diag);

  std::size_t dim() const noexcept { return dim_; }
  /// Number of qubits this matrix acts on (log2 of dim).
  unsigned num_qubits() const noexcept;

  cplx& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * dim_ + c];
  }
  const cplx& operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * dim_ + c];
  }

  const std::vector<cplx>& data() const noexcept { return data_; }
  std::vector<cplx>& data() noexcept { return data_; }

  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix operator*(cplx scalar) const;

  /// Conjugate transpose.
  Matrix dagger() const;

  /// Kronecker product: (*this) ⊗ rhs. Index convention: the result's row
  /// index is (r_this * rhs.dim + r_rhs).
  Matrix kron(const Matrix& rhs) const;

  /// Applies this matrix to a dense vector (dim must match).
  std::vector<cplx> apply(const std::vector<cplx>& v) const;

  /// Max-norm distance to the identity of U† U.
  double unitarity_error() const;
  bool is_unitary(double tol = 1e-10) const {
    return unitarity_error() < tol;
  }

  /// True if every off-diagonal entry is (near) zero.
  bool is_diagonal(double tol = 1e-12) const;

  /// Max-norm distance between two matrices.
  double distance(const Matrix& rhs) const;

  /// Max-norm distance up to a global phase (aligns the phase on the
  /// largest-magnitude entry first). Useful for gate-identity tests.
  double distance_up_to_phase(const Matrix& rhs) const;

  std::string to_string(int precision = 4) const;

 private:
  std::size_t dim_ = 0;
  std::vector<cplx> data_;
};

}  // namespace svsim::qc
