#include "perf/perf_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "machine/bandwidth_model.hpp"
#include "machine/roofline.hpp"
#include "sv/fusion.hpp"

namespace svsim::perf {

using machine::ExecConfig;
using machine::MachineSpec;
using machine::Placement;

namespace {

/// Fork-join cost per parallel region: a base dispatch latency plus a
/// tree-barrier term in log2(threads). Calibrated to OpenMP-class barriers
/// (~1-2 µs at 48 threads).
double fork_join_seconds(unsigned threads) {
  if (threads <= 1) return 5.0e-8;
  return 4.0e-7 + 2.0e-7 * std::log2(static_cast<double>(threads));
}

}  // namespace

GateTiming time_gate(const qc::Gate& gate, unsigned num_qubits,
                     const MachineSpec& m, const ExecConfig& config) {
  const Placement p = machine::place_threads(m, config);
  const KernelCost cost = gate_cost(gate, num_qubits, m, config);

  GateTiming t;
  t.gate = gate.name();
  t.cost = cost;
  if (cost.bytes == 0.0 && cost.flops == 0.0) {
    // nop (barrier / identity)
    return t;
  }

  const double compute_roof =
      machine::placement_peak_gflops(m, p, config) * cost.simd_efficiency;
  t.compute_seconds =
      compute_roof > 0.0 ? cost.flops / (compute_roof * 1e9) : 0.0;

  t.serving_level = machine::serving_level(m, p, cost.footprint_bytes);
  const double bw =
      machine::effective_bandwidth_gbps(m, p, cost.footprint_bytes);
  t.memory_seconds = cost.bytes / (bw * 1e9);

  t.overhead_seconds = fork_join_seconds(p.total_threads());
  t.memory_bound = t.memory_seconds > t.compute_seconds;
  t.seconds =
      std::max(t.compute_seconds, t.memory_seconds) + t.overhead_seconds;
  return t;
}

PerfReport simulate_circuit(const qc::Circuit& circuit, const MachineSpec& m,
                            const ExecConfig& config,
                            const PerfOptions& options) {
  qc::Circuit prepared = circuit;
  if (options.fusion) {
    sv::FusionOptions fo;
    fo.max_width = options.fusion_width;
    prepared = sv::fuse(circuit, fo);
  }

  const Placement p = machine::place_threads(m, config);
  PerfReport report;
  report.machine_name = m.name;
  report.num_qubits = circuit.num_qubits();
  report.threads = p.total_threads();
  report.num_gates = prepared.size();

  for (const auto& g : prepared.gates()) {
    GateTiming t = time_gate(g, circuit.num_qubits(), m, config);
    report.total_seconds += t.seconds;
    report.total_flops += t.cost.flops;
    report.total_bytes += t.cost.bytes;
    report.seconds_by_kernel[t.cost.kernel] += t.seconds;
    if (options.record_trace) report.trace.push_back(std::move(t));
  }
  return report;
}

}  // namespace svsim::perf
