#include "perf/perf_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "machine/bandwidth_model.hpp"
#include "machine/roofline.hpp"
#include "sv/fusion.hpp"

namespace svsim::perf {

using machine::ExecConfig;
using machine::MachineSpec;
using machine::Placement;

namespace {

/// Fork-join cost per parallel region: a base dispatch latency plus a
/// tree-barrier term in log2(threads). Calibrated to OpenMP-class barriers
/// (~1-2 µs at 48 threads).
double fork_join_seconds(unsigned threads) {
  if (threads <= 1) return 5.0e-8;
  return 4.0e-7 + 2.0e-7 * std::log2(static_cast<double>(threads));
}

}  // namespace

GateTiming time_gate(const qc::Gate& gate, unsigned num_qubits,
                     const MachineSpec& m, const ExecConfig& config) {
  const Placement p = machine::place_threads(m, config);
  const KernelCost cost = gate_cost(gate, num_qubits, m, config);

  GateTiming t;
  t.gate = gate.name();
  t.cost = cost;
  if (cost.bytes == 0.0 && cost.flops == 0.0) {
    // nop (barrier / identity)
    return t;
  }

  const double compute_roof =
      machine::placement_peak_gflops(m, p, config) * cost.simd_efficiency;
  t.compute_seconds =
      compute_roof > 0.0 ? cost.flops / (compute_roof * 1e9) : 0.0;

  t.serving_level = machine::serving_level(m, p, cost.footprint_bytes);
  const double bw =
      machine::effective_bandwidth_gbps(m, p, cost.footprint_bytes);
  t.memory_seconds = cost.bytes / (bw * 1e9);

  t.overhead_seconds = fork_join_seconds(p.total_threads());
  t.memory_bound = t.memory_seconds > t.compute_seconds;
  t.seconds =
      std::max(t.compute_seconds, t.memory_seconds) + t.overhead_seconds;
  return t;
}

PerfReport simulate_circuit(const qc::Circuit& circuit, const MachineSpec& m,
                            const ExecConfig& config,
                            const PerfOptions& options) {
  qc::Circuit prepared = circuit;
  if (options.fusion) {
    sv::FusionOptions fo;
    fo.max_width = options.fusion_width;
    prepared = sv::fuse(circuit, fo);
  }

  const Placement p = machine::place_threads(m, config);
  PerfReport report;
  report.machine_name = m.name;
  report.num_qubits = circuit.num_qubits();
  report.threads = p.total_threads();
  report.num_gates = prepared.size();

  for (const auto& g : prepared.gates()) {
    GateTiming t = time_gate(g, circuit.num_qubits(), m, config);
    report.total_seconds += t.seconds;
    report.total_flops += t.cost.flops;
    report.total_bytes += t.cost.bytes;
    report.seconds_by_kernel[t.cost.kernel] += t.seconds;
    if (options.record_trace) report.trace.push_back(std::move(t));
  }
  return report;
}

namespace {

/// Slot-space gates may keep operands on node slots (free controls,
/// diagonals): each rank still runs the kernel over its own partition, so
/// cost it with node-slot operands replaced by scratch local slots.
qc::Gate localized_proxy(const qc::Gate& g, unsigned local_qubits) {
  bool local = true;
  for (unsigned q : g.qubits) local = local && q < local_qubits;
  if (local) return g;

  qc::Gate proxy = g;
  std::vector<unsigned> used;
  for (unsigned q : g.qubits)
    if (q < local_qubits) used.push_back(q);
  for (auto& q : proxy.qubits) {
    if (q < local_qubits) continue;
    for (unsigned s = local_qubits; s-- > 0;) {
      if (std::find(used.begin(), used.end(), s) == used.end()) {
        used.push_back(s);
        q = s;
        break;
      }
    }
  }
  return proxy;
}

}  // namespace

PlanCost cost_plan(const sv::ExecutionPlan& plan, const MachineSpec& m,
                   const ExecConfig& config, const ExecutionContext& ctx) {
  obs::ScopedSpan span("cost_plan", obs::SpanCategory::Collective,
                       ctx.tracer());
  const Placement p = machine::place_threads(m, config);
  const unsigned ln = plan.local_qubits;
  const double amp_bytes = 2.0 * config.element_bytes;
  const double partition_bytes = static_cast<double>(pow2(ln)) * amp_bytes;
  const double compute_roof_gflops =
      machine::placement_peak_gflops(m, p, config);

  PlanCost r;
  r.machine_name = m.name;
  r.local_qubits = ln;
  r.block_qubits = plan.block_qubits;
  r.threads = p.total_threads();
  r.num_windows = plan.num_windows();
  r.num_gates = plan.total_gates();
  r.phases.reserve(plan.phases.size());

  for (const auto& phase : plan.phases) {
    PhaseCost pc;
    pc.kind = phase.kind;
    pc.gates = phase.gates.size();
    switch (phase.kind) {
      case sv::PhaseKind::LocalSweep: {
        const SweepCost sc =
            blocked_sweep_cost(phase.gates, ln, plan.block_qubits, m, config);
        // Flop time per gate under its own SIMD derating; one traversal of
        // DRAM traffic serves every gate in the sweep.
        double compute_seconds = 0.0;
        for (const auto& g : phase.gates) {
          const KernelCost kc = gate_cost(g, ln, m, config);
          const double roof = compute_roof_gflops * kc.simd_efficiency;
          if (roof > 0.0) compute_seconds += kc.flops / (roof * 1e9);
        }
        const double bw =
            machine::effective_bandwidth_gbps(m, p, partition_bytes);
        const double memory_seconds = sc.dram_bytes / (bw * 1e9);
        pc.seconds = std::max(compute_seconds, memory_seconds) +
                     fork_join_seconds(p.total_threads());
        pc.flops = sc.flops;
        pc.bytes = sc.dram_bytes;
        ++r.traversals;
        break;
      }
      case sv::PhaseKind::DenseGate:
      case sv::PhaseKind::MeasureFlush: {
        for (const auto& g : phase.gates) {
          const GateTiming t = time_gate(localized_proxy(g, ln), ln, m, config);
          pc.seconds += t.seconds;
          pc.flops += t.cost.flops;
          pc.bytes += t.cost.bytes;
          if (t.cost.flops > 0.0 || t.cost.bytes > 0.0) ++r.traversals;
        }
        break;
      }
      case sv::PhaseKind::Exchange: {
        pc.exchange_bytes = phase.exchange_bytes();
        r.num_exchanges += phase.hops.size();
        r.exchange_bytes_per_rank += pc.exchange_bytes;
        break;
      }
    }
    r.compute_seconds += pc.seconds;
    r.total_flops += pc.flops;
    r.total_bytes += pc.bytes;
    r.phases.push_back(pc);
  }
  ctx.metrics().counter("perf.plan_cost_evals").increment();
  return r;
}

}  // namespace svsim::perf
