// Power and energy estimation on top of a PerfReport.
//
// P(t) = idle + Σ_active cores (core_max_watts x utilization)
//             + mem_watts_per_gbps x achieved bandwidth,
// where utilization is each gate's compute fraction (memory-stalled cores
// still draw a floor fraction). Calibrated so the A64FX boost/eco variants
// reproduce the authors' published relative effects (boost ≈ +10% perf /
// +17% power on compute-bound work; eco cuts power sharply on memory-bound
// work at little cost).
#pragma once

#include "machine/exec_config.hpp"
#include "machine/machine_spec.hpp"
#include "perf/perf_simulator.hpp"
#include "qc/circuit.hpp"

namespace svsim::perf {

struct PowerReport {
  double average_watts = 0.0;
  double joules = 0.0;
  double seconds = 0.0;
  /// Energy-delay product (J·s) — the metric the power studies optimize.
  double energy_delay_product() const noexcept { return joules * seconds; }
};

/// Fraction of peak core power a memory-stalled core still draws.
inline constexpr double kStallPowerFloor = 0.35;

/// Estimates power for a circuit by re-running the performance model with
/// per-gate utilization tracking.
PowerReport estimate_power(const qc::Circuit& circuit,
                           const machine::MachineSpec& m,
                           const machine::ExecConfig& config,
                           const PerfOptions& options = {});

}  // namespace svsim::perf
