// Per-gate cost derivation: flops, memory traffic, SIMD efficiency.
//
// This is the analysis the paper's class of work performs by hand; here it
// is executable. For each gate kind on an n-qubit register we derive:
//
//  * flops — counting a complex multiply as 6 and a complex add as 2;
//  * touched amplitudes — controlled/diagonal gates touch subsets;
//  * memory traffic in *cache lines*, which is where control/target bit
//    positions matter: a constraint on a bit at position >= log2(amps/line)
//    eliminates whole lines, while a constraint below that only masks
//    entries within lines that are fetched anyway. On A64FX the line is
//    256 B = 16 double amplitudes, so a CX with a low control bit streams
//    the whole state even though it updates a quarter of it;
//  * SIMD efficiency as a function of the contiguous-run length 2^t vs. the
//    vector length — the low-target-qubit permute penalty of SVE kernels.
#pragma once

#include <cstdint>
#include <string>

#include "machine/exec_config.hpp"
#include "machine/machine_spec.hpp"
#include "qc/gate.hpp"

namespace svsim::perf {

/// Cost profile of one gate applied to a 2^n state.
struct KernelCost {
  std::string kernel;                ///< kernel-class name for reporting
  double flops = 0.0;
  double bytes = 0.0;                ///< traffic incl. read+write, line-granular
  std::uint64_t touched_amplitudes = 0;
  std::uint64_t footprint_bytes = 0; ///< lines actually visited (for level selection)
  double simd_efficiency = 1.0;

  double arithmetic_intensity() const noexcept {
    return bytes > 0.0 ? flops / bytes : 0.0;
  }
};

/// SIMD efficiency of a unit-run-length-2^t strided pair kernel for vectors
/// of `vector_bits` over complex elements of 2*element_bytes.
double simd_efficiency_for_target(unsigned target, unsigned vector_bits,
                                  unsigned element_bytes);

/// Derives the cost profile of `gate` on an n-qubit register for machine
/// `m` under `config`. Non-unitary ops (measure/reset) are costed as one
/// state sweep (probability reduction + collapse); barriers are free.
KernelCost gate_cost(const qc::Gate& gate, unsigned num_qubits,
                     const machine::MachineSpec& m,
                     const machine::ExecConfig& config);

}  // namespace svsim::perf
