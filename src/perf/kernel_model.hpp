// Per-gate cost derivation: flops, memory traffic, SIMD efficiency.
//
// This is the analysis the paper's class of work performs by hand; here it
// is executable. For each gate kind on an n-qubit register we derive:
//
//  * flops — counting a complex multiply as 6 and a complex add as 2;
//  * touched amplitudes — controlled/diagonal gates touch subsets;
//  * memory traffic in *cache lines*, which is where control/target bit
//    positions matter: a constraint on a bit at position >= log2(amps/line)
//    eliminates whole lines, while a constraint below that only masks
//    entries within lines that are fetched anyway. On A64FX the line is
//    256 B = 16 double amplitudes, so a CX with a low control bit streams
//    the whole state even though it updates a quarter of it;
//  * SIMD efficiency as a function of the contiguous-run length 2^t vs. the
//    vector length — the low-target-qubit permute penalty of SVE kernels.
#pragma once

#include <cstdint>
#include <string>

#include "machine/exec_config.hpp"
#include "machine/machine_spec.hpp"
#include "qc/gate.hpp"

namespace svsim::perf {

/// Cost profile of one gate applied to a 2^n state.
struct KernelCost {
  std::string kernel;                ///< kernel-class name for reporting
  double flops = 0.0;
  double bytes = 0.0;                ///< traffic incl. read+write, line-granular
  std::uint64_t touched_amplitudes = 0;
  std::uint64_t footprint_bytes = 0; ///< lines actually visited (for level selection)
  double simd_efficiency = 1.0;

  double arithmetic_intensity() const noexcept {
    return bytes > 0.0 ? flops / bytes : 0.0;
  }
};

/// SIMD efficiency of a unit-run-length-2^t strided pair kernel for vectors
/// of `vector_bits` over complex elements of 2*element_bytes.
double simd_efficiency_for_target(unsigned target, unsigned vector_bits,
                                  unsigned element_bytes);

/// Derives the cost profile of `gate` on an n-qubit register for machine
/// `m` under `config`. Non-unitary ops (measure/reset) are costed as one
/// state sweep (probability reduction + collapse); barriers are free.
KernelCost gate_cost(const qc::Gate& gate, unsigned num_qubits,
                     const machine::MachineSpec& m,
                     const machine::ExecConfig& config);

/// Cost profile of a cache-blocked sweep: `k` gates applied per 2^b-sized
/// block in one traversal of the state (sv/engine.hpp). DRAM traffic for
/// the whole sweep is one read + one write of the state — in-block gate
/// traffic is served from cache — so effective bytes per gate fall as 1/k
/// while flops are unchanged and arithmetic intensity rises k-fold.
struct SweepCost {
  std::size_t gates = 0;        ///< gates in the sweep
  double flops = 0.0;           ///< summed over the gates
  double dram_bytes = 0.0;      ///< one read+write traversal of the state
  double unblocked_bytes = 0.0; ///< Σ per-gate line-granular traffic
  std::uint64_t block_bytes = 0;///< working-set bytes of one block

  double bytes_per_gate() const noexcept {
    return gates > 0 ? dram_bytes / static_cast<double>(gates) : 0.0;
  }
  double arithmetic_intensity() const noexcept {
    return dram_bytes > 0.0 ? flops / dram_bytes : 0.0;
  }
  /// Traffic ratio vs. applying the same gates unblocked (< 1 is a win).
  double traffic_ratio() const noexcept {
    return unblocked_bytes > 0.0 ? dram_bytes / unblocked_bytes : 0.0;
  }
};

/// Costs a blocked sweep of `gates` (each block-local for `block_qubits`)
/// on an n-qubit register. Throws if a gate's operands reach the boundary.
SweepCost blocked_sweep_cost(const std::vector<qc::Gate>& gates,
                             unsigned num_qubits, unsigned block_qubits,
                             const machine::MachineSpec& m,
                             const machine::ExecConfig& config);

}  // namespace svsim::perf
