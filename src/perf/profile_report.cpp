#include "perf/profile_report.hpp"

#include <algorithm>
#include <ostream>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "machine/cpu_features.hpp"
#include "sv/simd/simd.hpp"

namespace svsim::perf {

namespace {

/// Minimal JSON string escape (machine names are plain identifiers; this
/// keeps the artifact valid even if one ever is not).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::vector<const PhaseProfile*> ProfileReport::by_measured_time() const {
  std::vector<const PhaseProfile*> order;
  order.reserve(phases.size());
  for (const PhaseProfile& p : phases) order.push_back(&p);
  std::stable_sort(order.begin(), order.end(),
                   [](const PhaseProfile* a, const PhaseProfile* b) {
                     return a->measured_seconds > b->measured_seconds;
                   });
  return order;
}

ProfileReport build_profile_report(const obs::RunProfile& run,
                                   const sv::ExecutionPlan& plan,
                                   const machine::MachineSpec& m,
                                   const machine::ExecConfig& config,
                                   const ExecutionContext& ctx) {
  require(run.phases.size() == plan.phases.size(),
          "build_profile_report: run samples do not match the plan's phases "
          "(was this run profiled against a different plan?)");

  const PlanCost cost = cost_plan(plan, m, config, ctx);
  SVSIM_ASSERT(cost.phases.size() == plan.phases.size());
  const machine::Placement placement = machine::place_threads(m, config);
  // Roofline footprint: one rank's partition (what the compute phases
  // actually traverse).
  const std::uint64_t footprint_bytes =
      pow2(plan.local_qubits) * std::uint64_t{2} * config.element_bytes;

  ProfileReport report;
  report.env.machine_name = m.name;
  report.env.threads = run.threads;
  report.env.num_qubits = plan.num_qubits;
  report.env.node_qubits = plan.node_qubits;
  report.env.local_qubits = plan.local_qubits;
  report.env.block_qubits = plan.block_qubits;
  report.env.simd_isa = machine::detected_isa_name();
  {
    const sv::simd::BackendInfo backend = sv::simd::active_backend();
    report.env.simd_backend = backend.name;
    report.env.simd_vector_bits = backend.vector_bits;
  }
  report.env.ranks = plan.num_ranks();
  report.env.declared_cache_budget_bytes = m.cache_budget_per_core_bytes();
  const machine::CacheProbeResult& probe = machine::probed_cache_budget();
  report.env.probe_valid = probe.valid;
  report.env.probed_cache_budget_bytes = probe.effective_bytes;
  report.env.cache_budget_disagreement =
      machine::cache_budget_disagreement(m, probe);
  report.env.cache_budget_warning =
      report.env.cache_budget_disagreement > machine::kCacheProbeWarnThreshold;

  report.measured_seconds = run.seconds();
  report.modeled_seconds = cost.compute_seconds;
  report.partial = run.partial;

  double measured_phase_seconds = 0.0;
  for (std::size_t i = 0; i < plan.phases.size(); ++i) {
    const obs::PhaseSample& sample = run.phases[i];
    const PhaseCost& modeled = cost.phases[i];
    require(sample.index == i,
            "build_profile_report: phase samples out of order");

    PhaseProfile p;
    p.index = i;
    p.kind = plan.phases[i].kind;
    p.gates = sample.gates;
    p.hops = sample.hops;
    p.measured_seconds = sample.seconds();
    p.modeled_seconds = modeled.seconds;
    p.measured_bytes = static_cast<double>(sample.bytes);
    p.modeled_bytes = modeled.bytes;
    p.flops = modeled.flops;
    p.exchange_bytes = modeled.exchange_bytes;
    p.sim_exchange_seconds = sample.sim_exchange_seconds();
    p.hw = sample.hw;
    p.dropped_spans = sample.dropped_spans;
    p.threads = sample.threads;
    if (p.kind != sv::PhaseKind::Exchange) {
      p.roofline = machine::place_on_roofline(
          m, placement, config, modeled.flops, modeled.bytes,
          /*simd_efficiency=*/1.0, footprint_bytes);
    }
    measured_phase_seconds += p.measured_seconds;
    report.measured_bytes += p.measured_bytes;
    report.modeled_bytes += p.modeled_bytes;
    if (sample.dropped_spans > 0) report.partial = true;
    report.phases.push_back(std::move(p));
  }
  if (measured_phase_seconds > 0.0)
    for (PhaseProfile& p : report.phases)
      p.share = p.measured_seconds / measured_phase_seconds;
  ctx.metrics().counter("perf.profile_reports").increment();
  return report;
}

namespace {

void write_phase_json(const PhaseProfile& p, std::ostream& os) {
  os << "{\"index\":" << p.index << ",\"kind\":\""
     << sv::phase_kind_name(p.kind) << "\",\"gates\":" << p.gates
     << ",\"hops\":" << p.hops << ",\"threads\":" << p.threads
     << ",\"measured_seconds\":" << p.measured_seconds
     << ",\"modeled_seconds\":" << p.modeled_seconds
     << ",\"drift_ratio\":" << p.drift_ratio()
     << ",\"measured_bytes\":" << p.measured_bytes
     << ",\"modeled_bytes\":" << p.modeled_bytes << ",\"flops\":" << p.flops
     << ",\"exchange_bytes\":" << p.exchange_bytes
     << ",\"sim_exchange_seconds\":" << p.sim_exchange_seconds
     << ",\"measured_gbps\":" << p.measured_gbps()
     << ",\"modeled_gbps\":" << p.modeled_gbps()
     << ",\"measured_gflops\":" << p.measured_gflops()
     << ",\"modeled_gflops\":" << p.modeled_gflops()
     << ",\"share\":" << p.share
     << ",\"dropped_spans\":" << p.dropped_spans << ",\"roofline\":{"
     << "\"arithmetic_intensity\":" << p.roofline.point.arithmetic_intensity
     << ",\"attainable_gflops\":" << p.roofline.point.attainable_gflops
     << ",\"compute_roof_gflops\":" << p.roofline.point.compute_roof_gflops
     << ",\"bandwidth_gbps\":" << p.roofline.point.bandwidth_gbps
     << ",\"memory_bound\":" << (p.roofline.point.memory_bound ? "true" : "false")
     << "},\"hw\":{\"valid\":" << (p.hw.valid ? "true" : "false")
     << ",\"cycles\":" << p.hw.cycles
     << ",\"instructions\":" << p.hw.instructions
     << ",\"cache_misses\":" << p.hw.cache_misses << ",\"ipc\":" << p.hw.ipc()
     << "}}";
}

}  // namespace

void write_profile_json(const ProfileReport& report, std::ostream& os) {
  const auto saved_precision = os.precision(15);
  const ProfileEnv& e = report.env;
  os << "{\n\"version\":1,\n\"partial\":"
     << (report.partial ? "true" : "false") << ",\n\"env\":{"
     << "\"machine\":\"" << json_escape(e.machine_name)
     << "\",\"threads\":" << e.threads << ",\"num_qubits\":" << e.num_qubits
     << ",\"node_qubits\":" << e.node_qubits
     << ",\"local_qubits\":" << e.local_qubits
     << ",\"block_qubits\":" << e.block_qubits << ",\"simd_isa\":\""
     << json_escape(e.simd_isa) << "\",\"simd_backend\":\""
     << json_escape(e.simd_backend)
     << "\",\"simd_vector_bits\":" << e.simd_vector_bits
     << ",\"ranks\":" << e.ranks
     << ",\"declared_cache_budget_bytes\":" << e.declared_cache_budget_bytes
     << ",\"probed_cache_budget_bytes\":" << e.probed_cache_budget_bytes
     << ",\"probe_valid\":" << (e.probe_valid ? "true" : "false")
     << ",\"cache_budget_disagreement\":" << e.cache_budget_disagreement
     << ",\"cache_budget_warning\":"
     << (e.cache_budget_warning ? "true" : "false") << "},\n\"totals\":{"
     << "\"measured_seconds\":" << report.measured_seconds
     << ",\"modeled_seconds\":" << report.modeled_seconds
     << ",\"drift_ratio\":" << report.drift_ratio()
     << ",\"measured_bytes\":" << report.measured_bytes
     << ",\"modeled_bytes\":" << report.modeled_bytes
     << ",\"phases\":" << report.phases.size() << "},\n\"phases\":[";
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    write_phase_json(report.phases[i], os);
  }
  os << "\n],\n\"attribution\":[";
  const auto order = report.by_measured_time();
  double cumulative = 0.0;
  bool first = true;
  for (const PhaseProfile* p : order) {
    cumulative += p->share;
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"index\":" << p->index << ",\"kind\":\""
       << sv::phase_kind_name(p->kind)
       << "\",\"measured_seconds\":" << p->measured_seconds
       << ",\"share\":" << p->share << ",\"cumulative_share\":" << cumulative
       << "}";
  }
  os << "\n]\n}\n";
  os.precision(saved_precision);
}

Table profile_env_table(const ProfileReport& report) {
  const ProfileEnv& e = report.env;
  Table t("Profile environment", {"field", "value"});
  t.add_row({std::string("machine"), e.machine_name});
  t.add_row({std::string("threads"), static_cast<std::int64_t>(e.threads)});
  t.add_row({std::string("qubits (total/local/block)"),
             std::to_string(e.num_qubits) + "/" +
                 std::to_string(e.local_qubits) + "/" +
                 std::to_string(e.block_qubits)});
  t.add_row({std::string("simd backend"),
             e.simd_backend + " (isa " + e.simd_isa + ", " +
                 std::to_string(e.simd_vector_bits) + "-bit)"});
  t.add_row({std::string("ranks"), static_cast<std::int64_t>(e.ranks)});
  t.add_row({std::string("cache budget declared (KiB)"),
             static_cast<std::int64_t>(e.declared_cache_budget_bytes >> 10)});
  t.add_row({std::string("cache budget probed (KiB)"),
             e.probe_valid
                 ? std::to_string(e.probed_cache_budget_bytes >> 10)
                 : std::string("probe inconclusive")});
  t.add_row({std::string("cache disagreement"),
             e.cache_budget_disagreement});
  if (e.cache_budget_warning)
    t.add_row({std::string("WARNING"),
               std::string("probed cache budget disagrees >25% with the "
                           "MachineSpec declaration")});
  if (report.partial)
    t.add_row({std::string("PARTIAL"),
               std::string("tracer rings overflowed mid-run; span-derived "
                           "data is incomplete")});
  return t;
}

Table profile_phase_table(const ProfileReport& report, std::size_t max_rows) {
  Table t("Plan phases: measured vs modeled",
          {"#", "phase", "gates", "meas ms", "model ms", "ratio", "meas GB/s",
           "model GB/s", "GF/s", "roof GF/s", "bound"});
  const std::size_t rows = std::min(report.phases.size(), max_rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const PhaseProfile& p = report.phases[i];
    t.add_row({static_cast<std::int64_t>(p.index),
               std::string(sv::phase_kind_name(p.kind)),
               static_cast<std::int64_t>(p.gates),
               p.measured_seconds * 1e3, p.modeled_seconds * 1e3,
               p.drift_ratio(), p.measured_gbps(), p.modeled_gbps(),
               p.measured_gflops(), p.roofline.point.attainable_gflops,
               std::string(p.kind == sv::PhaseKind::Exchange ? "wire"
                           : p.roofline.point.memory_bound ? "mem"
                                                           : "compute")});
  }
  t.add_row({std::int64_t{-1}, std::string("TOTAL"),
             static_cast<std::int64_t>(report.phases.size()),
             report.measured_seconds * 1e3, report.modeled_seconds * 1e3,
             report.drift_ratio(), 0.0, 0.0, 0.0, 0.0, std::string("")});
  return t;
}

Table profile_attribution_table(const ProfileReport& report,
                                std::size_t top_n) {
  Table t("Where did the time go",
          {"#", "phase", "gates", "ms", "share", "cumulative"});
  const auto order = report.by_measured_time();
  double cumulative = 0.0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    cumulative += order[i]->share;
    if (i >= top_n) continue;
    t.add_row({static_cast<std::int64_t>(order[i]->index),
               std::string(sv::phase_kind_name(order[i]->kind)),
               static_cast<std::int64_t>(order[i]->gates),
               order[i]->measured_seconds * 1e3, order[i]->share, cumulative});
  }
  return t;
}

}  // namespace svsim::perf
