// Critical-path attribution and what-if sensitivity over a recorded
// distributed timeline (dist/timeline.hpp).
//
// A Timeline is a dependency DAG in disguise: each event's predecessor is
// the previous real event on its own rank, and a Wire event additionally
// depends on the partner rank's matching Wire and everything before it.
// extract_critical_path walks that DAG backward from the finishing event,
// always following the predecessor that actually gated the start (the
// later arrival at a rendezvous), and splits the makespan into compute /
// wire / wait seconds along the one chain that could not have run any
// earlier. Because recorded intervals re-derive the simulator's clock
// chain with the same floating-point expressions, the chronological sum of
// step durations equals the makespan *bit-exactly* — the invariant the
// tests and the JSON schema checker pin.
//
// The what-if layer re-prices the same recorded DAG under scaled knobs
// (compute throughput, link bandwidth, link latency) without re-running
// the plan compiler or cost model: replay_timeline replays the rendezvous
// schedule with each Compute duration divided by compute_scale and each
// Wire re-priced as fixed * latency_scale + transfer / bandwidth_scale.
// At all-1.0 knobs the replay reproduces the recorded makespan bit-exactly
// (x * 1.0 and x / 1.0 are exact in IEEE arithmetic and the replay
// evaluates the same expressions in the same order). Rank-count and
// whole-machine scenarios need recompilation/re-recording and live in the
// CLI, which has the circuit in hand.
//
// This module reads dist/timeline.hpp's header-only data types but links
// no dist code — perf sits below dist in the layering (dist consumes
// perf::cost_plan), and the one-way include keeps it that way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "dist/timeline.hpp"

namespace svsim::perf {

/// One event on the critical path, in chronological order.
struct CriticalPathStep {
  std::uint64_t rank = 0;
  std::uint32_t event_index = 0;  ///< into Timeline::ranks[rank].events
  dist::TimelineEventKind kind = dist::TimelineEventKind::Compute;
  sv::PhaseKind phase_kind = sv::PhaseKind::DenseGate;
  std::uint32_t phase_index = 0;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

/// Whole-timeline split for one rank: compute + wire + wait + slack spans
/// the makespan (slack = time after the rank's last event).
struct RankAttribution {
  std::uint64_t rank = 0;
  double compute_seconds = 0.0;
  double wire_seconds = 0.0;
  double wait_seconds = 0.0;
  double slack_seconds = 0.0;
  /// Seconds of the critical path spent on this rank's events.
  double critical_seconds = 0.0;

  double busy_seconds() const noexcept {
    return compute_seconds + wire_seconds;
  }
};

/// Slack histogram resolution: bucket i holds ranks with slack-fraction
/// (slack / makespan) in [i/N, (i+1)/N).
inline constexpr std::size_t kSlackHistogramBuckets = 10;

struct CriticalPath {
  double makespan_seconds = 0.0;
  /// Chronological sum of step durations; equals makespan_seconds
  /// bit-exactly (the recorder invariant).
  double path_seconds = 0.0;
  // Per-kind split along the path (sums to path_seconds up to rounding).
  double compute_seconds = 0.0;
  double wire_seconds = 0.0;
  double wait_seconds = 0.0;
  std::vector<CriticalPathStep> steps;  ///< chronological
  std::vector<RankAttribution> ranks;
  double imbalance = 0.0;         ///< Timeline::imbalance()
  double wire_utilization = 0.0;  ///< Timeline::wire_utilization()
  /// Rank counts by slack fraction of the makespan.
  std::vector<std::uint64_t> slack_histogram;

  double compute_fraction() const noexcept {
    return path_seconds > 0.0 ? compute_seconds / path_seconds : 0.0;
  }
  double wire_fraction() const noexcept {
    return path_seconds > 0.0 ? wire_seconds / path_seconds : 0.0;
  }
};

/// Walks the timeline's dependency DAG backward from the finishing event.
/// Wait events never appear as steps: a wait is the *symptom* of its late
/// partner, so the walk crosses to the partner's chain instead.
CriticalPath extract_critical_path(const dist::Timeline& timeline);

/// What-if knobs: re-price the recorded schedule under scaled resources.
struct WhatIfKnobs {
  std::string name = "baseline";
  double compute_scale = 1.0;         ///< >1 = faster nodes
  double link_bandwidth_scale = 1.0;  ///< >1 = fatter links
  double latency_scale = 1.0;         ///< <1 = lower fixed cost per hop
};

struct WhatIfResult {
  WhatIfKnobs knobs;
  double makespan_seconds = 0.0;
  double baseline_seconds = 0.0;  ///< the recorded timeline's makespan
  double speedup() const noexcept {
    return makespan_seconds > 0.0 ? baseline_seconds / makespan_seconds : 0.0;
  }
};

/// Replays the recorded event schedule under `knobs`: same rendezvous
/// structure, re-priced durations. All-1.0 knobs reproduce the recorded
/// makespan bit-exactly. Throws Error if the timeline's partner indices
/// are inconsistent (cannot happen for TimelineBuilder output).
WhatIfResult replay_timeline(const dist::Timeline& timeline,
                             const WhatIfKnobs& knobs);

/// The standard sensitivity sweep: baseline, 2x compute, 2x link
/// bandwidth, 1/2 latency, and 2x everything.
std::vector<WhatIfKnobs> default_whatif_scenarios();

/// replay_timeline over each scenario, in order.
std::vector<WhatIfResult> whatif_sensitivity(
    const dist::Timeline& timeline,
    const std::vector<WhatIfKnobs>& scenarios = default_whatif_scenarios());

/// Headline figures: makespan, path split, imbalance, wire utilization.
Table timeline_summary_table(const dist::Timeline& timeline,
                             const CriticalPath& path);
/// Per-rank compute/wire/wait/slack/critical split (first `max_rows`).
Table rank_attribution_table(const CriticalPath& path,
                             std::size_t max_rows = 16);
/// The `top_n` longest critical-path steps, by duration.
Table critical_path_table(const CriticalPath& path, std::size_t top_n = 12);
/// One row per what-if scenario with re-priced makespan and speedup.
Table whatif_table(const std::vector<WhatIfResult>& results);

/// The timeline.json artifact (version 1): plan/provenance block, per-rank
/// event lists, critical path with attribution, and what-if results.
/// scripts/check_timeline_schema.py validates this shape.
void write_timeline_json(const dist::Timeline& timeline,
                         const CriticalPath& path,
                         const std::vector<WhatIfResult>& whatif,
                         std::ostream& os);

}  // namespace svsim::perf
