// Execution-driven performance simulator.
//
// Walks a circuit gate by gate, derives each gate's cost profile
// (kernel_model), resolves the thread placement and serving memory level
// (machine models), and produces per-gate timings plus circuit aggregates:
//
//   gate time = max(flop time under the derated compute roof,
//                   traffic / effective bandwidth) + fork-join overhead.
//
// The absolute numbers are model estimates; the point — as in the paper's
// class of analysis — is the *shape*: regime transitions over target qubit
// and register size, thread/affinity scaling, vector-length sensitivity,
// fusion payoff, and cross-machine ranking.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "machine/exec_config.hpp"
#include "machine/machine_spec.hpp"
#include "obs/context.hpp"
#include "perf/kernel_model.hpp"
#include "qc/circuit.hpp"
#include "sv/plan.hpp"

namespace svsim::perf {

struct GateTiming {
  std::string gate;
  KernelCost cost;
  double seconds = 0.0;
  double compute_seconds = 0.0;
  double memory_seconds = 0.0;
  double overhead_seconds = 0.0;
  bool memory_bound = false;
  int serving_level = -1;  ///< cache index or -1 = memory
};

struct PerfOptions {
  bool fusion = false;
  unsigned fusion_width = 3;
  bool record_trace = false;
};

struct PerfReport {
  std::string machine_name;
  unsigned num_qubits = 0;
  unsigned threads = 0;
  double total_seconds = 0.0;
  double total_flops = 0.0;
  double total_bytes = 0.0;
  std::size_t num_gates = 0;
  std::map<std::string, double> seconds_by_kernel;
  std::vector<GateTiming> trace;  ///< filled iff record_trace

  double achieved_gflops() const noexcept {
    return total_seconds > 0.0 ? total_flops / total_seconds * 1e-9 : 0.0;
  }
  double achieved_bandwidth_gbps() const noexcept {
    return total_seconds > 0.0 ? total_bytes / total_seconds * 1e-9 : 0.0;
  }
};

/// Models one gate on `m` under `config` for an n-qubit register.
GateTiming time_gate(const qc::Gate& gate, unsigned num_qubits,
                     const machine::MachineSpec& m,
                     const machine::ExecConfig& config);

/// Models a whole circuit (optionally fused first).
PerfReport simulate_circuit(const qc::Circuit& circuit,
                            const machine::MachineSpec& m,
                            const machine::ExecConfig& config,
                            const PerfOptions& options = {});

/// Modeled cost of one ExecutionPlan phase. `seconds` is the local compute
/// time on a single rank's 2^local_qubits partition (zero for Exchange
/// phases, whose cost lives in `exchange_bytes` and is priced by the
/// caller's interconnect model).
struct PhaseCost {
  sv::PhaseKind kind = sv::PhaseKind::DenseGate;
  std::size_t gates = 0;
  double seconds = 0.0;
  double flops = 0.0;
  double bytes = 0.0;           ///< modeled local DRAM/cache traffic
  double exchange_bytes = 0.0;  ///< per rank, one direction (Exchange only)
};

/// Plan-level roll-up of the first-principles model: what one rank computes
/// between exchanges. A LocalSweep phase is priced as one state traversal
/// (blocked_sweep_cost) regardless of how many gates it carries — this is
/// where the traversals-saved-between-exchanges payoff shows up against a
/// per-gate plan.
struct PlanCost {
  std::string machine_name;
  unsigned local_qubits = 0;
  unsigned block_qubits = 0;
  unsigned threads = 0;
  double compute_seconds = 0.0;
  double total_flops = 0.0;
  double total_bytes = 0.0;
  std::size_t traversals = 0;
  std::size_t num_windows = 0;
  std::size_t num_exchanges = 0;
  std::size_t num_gates = 0;
  double exchange_bytes_per_rank = 0.0;
  std::vector<PhaseCost> phases;  ///< one entry per plan phase, in order

  double gates_per_traversal() const noexcept {
    return traversals > 0
               ? static_cast<double>(num_gates) /
                     static_cast<double>(traversals)
               : 0.0;
  }
};

/// Costs every phase of `plan` on machine `m` under `config`. Gates with
/// operands on node slots (free controls, diagonals) are priced via a
/// localized proxy on the rank partition, matching what each rank executes.
/// Publishes the `perf.plan_cost_evals` counter and its model span through
/// `ctx` (default: the process-wide singletons).
PlanCost cost_plan(const sv::ExecutionPlan& plan, const machine::MachineSpec& m,
                   const machine::ExecConfig& config,
                   const ExecutionContext& ctx = ExecutionContext::global());

}  // namespace svsim::perf
