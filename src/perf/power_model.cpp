#include "perf/power_model.hpp"

#include <algorithm>

#include "sv/fusion.hpp"

namespace svsim::perf {

using machine::ExecConfig;
using machine::MachineSpec;

PowerReport estimate_power(const qc::Circuit& circuit, const MachineSpec& m,
                           const ExecConfig& config,
                           const PerfOptions& options) {
  qc::Circuit prepared = circuit;
  if (options.fusion) {
    sv::FusionOptions fo;
    fo.max_width = options.fusion_width;
    prepared = sv::fuse(circuit, fo);
  }
  const machine::Placement p = machine::place_threads(m, config);
  const unsigned cores = p.total_threads();

  PowerReport report;
  for (const auto& g : prepared.gates()) {
    const GateTiming t = time_gate(g, circuit.num_qubits(), m, config);
    if (t.seconds <= 0.0) continue;
    // Utilization: fraction of the gate the cores spend computing (vs.
    // stalled on memory), floored at the stall draw.
    const double util = std::max(
        kStallPowerFloor,
        t.seconds > 0.0 ? t.compute_seconds / t.seconds : 0.0);
    const double gate_bw_gbps = t.cost.bytes / t.seconds * 1e-9;
    const double watts = m.idle_watts + cores * m.core_max_watts * util +
                         m.mem_watts_per_gbps * gate_bw_gbps;
    report.joules += watts * t.seconds;
    report.seconds += t.seconds;
  }
  report.average_watts =
      report.seconds > 0.0 ? report.joules / report.seconds : m.idle_watts;
  return report;
}

}  // namespace svsim::perf
