// ProfileReport: the measured<->modeled join for one profiled plan run.
//
// The executor's profiler (obs/profile.hpp) records what each plan phase
// *did* — wall time, bytes, occupancy, counters. This layer joins those
// samples positionally against perf::cost_plan (sample i describes
// plan.phases[i], exactly the contract PlanCost::phases keeps) and places
// every phase on the machine's roofline, producing the report the paper's
// analysis style needs: measured vs modeled GB/s and GF/s per phase,
// per-phase drift ratios, and a top-N "where did the time go" attribution.
// The env block records the startup cache microprobe next to the
// MachineSpec-declared LLC share, so a mis-declared cache budget — which
// skews block sizing and therefore every LocalSweep row — is visible in
// the same artifact that would show its symptoms.
//
// The JSON artifact (`write_profile_json`) is the stable interface:
// scripts/check_profile_schema.py validates it and CI uploads one from the
// smoke tier. The join lives in perf, not obs, because it needs sv (plans),
// machine (roofline), and this module's cost model — all above obs in the
// layering.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/table.hpp"
#include "machine/cache_probe.hpp"
#include "machine/exec_config.hpp"
#include "machine/machine_spec.hpp"
#include "machine/roofline.hpp"
#include "obs/profile.hpp"
#include "perf/perf_simulator.hpp"
#include "sv/plan.hpp"

namespace svsim::perf {

/// One plan phase, measured joined with modeled.
struct PhaseProfile {
  std::size_t index = 0;
  sv::PhaseKind kind = sv::PhaseKind::DenseGate;
  std::size_t gates = 0;
  std::size_t hops = 0;

  double measured_seconds = 0.0;
  double modeled_seconds = 0.0;  ///< cost_plan local compute time
  double measured_bytes = 0.0;   ///< executor's streamed-bytes estimate
  double modeled_bytes = 0.0;    ///< cost_plan local traffic
  double flops = 0.0;            ///< modeled (the executor counts no flops)
  double exchange_bytes = 0.0;   ///< Exchange: per rank, one direction
  /// Exchange: simulated wire seconds (0 until dist::time_plan annotated).
  double sim_exchange_seconds = 0.0;
  double share = 0.0;  ///< of the run's summed measured phase time

  /// Roofline placement at the modeled AI (simd_efficiency 1.0 — the
  /// architectural ceiling; kernel-derated roofs live in kernel_model).
  machine::RooflinePlacement roofline;

  obs::HwCounterValues hw;
  std::uint64_t dropped_spans = 0;
  unsigned threads = 0;

  double measured_gbps() const noexcept {
    return measured_seconds > 0.0 ? measured_bytes / measured_seconds * 1e-9
                                  : 0.0;
  }
  double modeled_gbps() const noexcept {
    return modeled_seconds > 0.0 ? modeled_bytes / modeled_seconds * 1e-9
                                 : 0.0;
  }
  double measured_gflops() const noexcept {
    return measured_seconds > 0.0 ? flops / measured_seconds * 1e-9 : 0.0;
  }
  double modeled_gflops() const noexcept {
    return modeled_seconds > 0.0 ? flops / modeled_seconds * 1e-9 : 0.0;
  }
  /// measured / modeled seconds; 0 when the model predicts zero time.
  double drift_ratio() const noexcept {
    return modeled_seconds > 0.0 ? measured_seconds / modeled_seconds : 0.0;
  }
};

/// Where the run happened: machine/threads/widths plus the cache-budget
/// cross-check (declared LLC share vs startup microprobe).
struct ProfileEnv {
  std::string machine_name;
  unsigned threads = 0;
  unsigned num_qubits = 0;
  unsigned node_qubits = 0;
  unsigned local_qubits = 0;
  unsigned block_qubits = 0;
  std::string simd_isa;      ///< widest SIMD extension detected on the CPU
  std::string simd_backend;  ///< kernel backend active for this run
  unsigned simd_vector_bits = 0;  ///< backend width; 0 = scalar backend
  std::uint64_t ranks = 1;
  std::uint64_t declared_cache_budget_bytes = 0;
  std::uint64_t probed_cache_budget_bytes = 0;
  bool probe_valid = false;
  double cache_budget_disagreement = 0.0;
  /// True when probe and declaration disagree by more than
  /// machine::kCacheProbeWarnThreshold.
  bool cache_budget_warning = false;
};

struct ProfileReport {
  ProfileEnv env;
  double measured_seconds = 0.0;  ///< whole-run wall time
  double modeled_seconds = 0.0;   ///< cost_plan compute total
  double measured_bytes = 0.0;
  double modeled_bytes = 0.0;
  /// Tracer rings overflowed mid-run: span-derived data is incomplete
  /// (phase samples themselves are exact).
  bool partial = false;
  std::vector<PhaseProfile> phases;

  double drift_ratio() const noexcept {
    return modeled_seconds > 0.0 ? measured_seconds / modeled_seconds : 0.0;
  }
  /// Phases sorted by measured time, descending (the attribution order).
  std::vector<const PhaseProfile*> by_measured_time() const;
};

/// Joins one profiled run against its plan's cost model and roofline.
/// `run.phases` must describe `plan.phases` positionally (which is what
/// sv::run_plan emits); throws on a count mismatch. The embedded cost-model
/// evaluation and the `perf.profile_reports` counter resolve through `ctx`.
ProfileReport build_profile_report(const obs::RunProfile& run,
                                   const sv::ExecutionPlan& plan,
                                   const machine::MachineSpec& m,
                                   const machine::ExecConfig& config,
                                   const ExecutionContext& ctx =
                                       ExecutionContext::global());

/// The profile.json artifact (scripts/check_profile_schema.py validates).
void write_profile_json(const ProfileReport& report, std::ostream& os);

/// Env block: machine, threads, widths, cache-budget cross-check.
Table profile_env_table(const ProfileReport& report);
/// Per-phase measured-vs-modeled listing in plan order.
Table profile_phase_table(const ProfileReport& report,
                          std::size_t max_rows = 32);
/// Top-N attribution: phases by measured time with cumulative share.
Table profile_attribution_table(const ProfileReport& report,
                                std::size_t top_n = 8);

}  // namespace svsim::perf
