#include "perf/critical_path.hpp"

#include <algorithm>
#include <cstddef>
#include <ostream>

#include "common/error.hpp"

namespace svsim::perf {

using dist::kNoPartnerEvent;
using dist::RankTimeline;
using dist::Timeline;
using dist::TimelineEvent;
using dist::TimelineEventKind;

namespace {

/// Last real (non-Wait) event of `rank` at or before `idx`; -1 if none.
/// Waits are symptoms, not causes: the walk crosses them to the event
/// whose end actually equals the dependent event's start clock.
std::ptrdiff_t last_real_event(const RankTimeline& rank, std::ptrdiff_t idx) {
  while (idx >= 0 &&
         rank.events[static_cast<std::size_t>(idx)].kind ==
             TimelineEventKind::Wait)
    --idx;
  return idx;
}

CriticalPathStep make_step(const Timeline& t, std::uint64_t rank,
                           std::size_t idx) {
  const TimelineEvent& e = t.ranks[rank].events[idx];
  CriticalPathStep s;
  s.rank = rank;
  s.event_index = static_cast<std::uint32_t>(idx);
  s.kind = e.kind;
  s.phase_kind = e.phase_kind;
  s.phase_index = e.phase_index;
  s.start_seconds = e.start_seconds;
  s.duration_seconds = e.duration_seconds;
  return s;
}

}  // namespace

CriticalPath extract_critical_path(const Timeline& t) {
  CriticalPath cp;
  cp.makespan_seconds = t.makespan_seconds;
  cp.imbalance = t.imbalance();
  cp.wire_utilization = t.wire_utilization();
  cp.slack_histogram.assign(kSlackHistogramBuckets, 0);
  cp.ranks.resize(t.ranks.size());

  for (std::size_t r = 0; r < t.ranks.size(); ++r) {
    const RankTimeline& rt = t.ranks[r];
    RankAttribution& a = cp.ranks[r];
    a.rank = rt.rank;
    a.compute_seconds = rt.compute_seconds;
    a.wire_seconds = rt.wire_seconds;
    a.wait_seconds = rt.wait_seconds;
    a.slack_seconds = t.makespan_seconds - rt.end_seconds;
    if (t.makespan_seconds > 0.0) {
      const double frac = a.slack_seconds / t.makespan_seconds;
      auto bucket = static_cast<std::size_t>(
          frac * static_cast<double>(kSlackHistogramBuckets));
      if (bucket >= kSlackHistogramBuckets)
        bucket = kSlackHistogramBuckets - 1;
      ++cp.slack_histogram[bucket];
    }
  }

  // The finishing event: the latest rank end (ties to the lowest rank,
  // for determinism). An all-empty timeline has no path.
  std::ptrdiff_t finish_rank = -1;
  double finish_end = 0.0;
  for (std::size_t r = 0; r < t.ranks.size(); ++r) {
    if (t.ranks[r].events.empty()) continue;
    if (finish_rank < 0 || t.ranks[r].end_seconds > finish_end) {
      finish_rank = static_cast<std::ptrdiff_t>(r);
      finish_end = t.ranks[r].end_seconds;
    }
  }
  if (finish_rank < 0) return cp;

  // Backward walk: from each event, the gating predecessor is whichever
  // candidate chain ends exactly at this event's start — the same rank's
  // previous real event, or (for a Wire) the partner's chain before its
  // matching Wire. Rendezvous semantics guarantee the later arrival's
  // chain end *is* the start clock, bit-exactly.
  std::vector<CriticalPathStep> rev;
  auto rank = static_cast<std::uint64_t>(finish_rank);
  std::ptrdiff_t idx = last_real_event(
      t.ranks[rank],
      static_cast<std::ptrdiff_t>(t.ranks[rank].events.size()) - 1);
  while (idx >= 0) {
    const TimelineEvent& e = t.ranks[rank].events[static_cast<std::size_t>(idx)];
    rev.push_back(make_step(t, rank, static_cast<std::size_t>(idx)));
    cp.ranks[rank].critical_seconds += e.duration_seconds;
    if (!(e.start_seconds > 0.0)) break;  // reached t = 0

    const std::ptrdiff_t same = last_real_event(t.ranks[rank], idx - 1);
    std::ptrdiff_t across = -1;
    std::uint64_t across_rank = rank;
    if (e.kind == TimelineEventKind::Wire && e.partner_event != kNoPartnerEvent) {
      across_rank = e.partner;
      across = last_real_event(
          t.ranks[across_rank],
          static_cast<std::ptrdiff_t>(e.partner_event) - 1);
    }
    const double same_end =
        same >= 0
            ? t.ranks[rank].events[static_cast<std::size_t>(same)].end_seconds()
            : -1.0;
    const double across_end =
        across >= 0 ? t.ranks[across_rank]
                          .events[static_cast<std::size_t>(across)]
                          .end_seconds()
                    : -1.0;
    SVSIM_ASSERT(same >= 0 || across >= 0);
    if (across >= 0 && across_end > same_end) {
      rank = across_rank;
      idx = across;
    } else {
      idx = same;
    }
  }
  std::reverse(rev.begin(), rev.end());
  cp.steps = std::move(rev);

  // Chronological accumulation re-runs the exact FP addition chain the
  // simulator's clocks performed, so path_seconds == makespan bit-exactly.
  for (const CriticalPathStep& s : cp.steps) {
    cp.path_seconds += s.duration_seconds;
    switch (s.kind) {
      case TimelineEventKind::Compute: cp.compute_seconds += s.duration_seconds; break;
      case TimelineEventKind::Wire: cp.wire_seconds += s.duration_seconds; break;
      case TimelineEventKind::Wait: cp.wait_seconds += s.duration_seconds; break;
    }
  }
  return cp;
}

WhatIfResult replay_timeline(const Timeline& t, const WhatIfKnobs& knobs) {
  require(knobs.compute_scale > 0.0 && knobs.link_bandwidth_scale > 0.0 &&
              knobs.latency_scale > 0.0,
          "replay_timeline: scale knobs must be positive");
  WhatIfResult result;
  result.knobs = knobs;
  result.baseline_seconds = t.makespan_seconds;

  const std::size_t nranks = t.ranks.size();
  std::vector<double> clocks(nranks, 0.0);
  std::vector<std::size_t> cursor(nranks, 0);

  // Worklist replay: drain each rank until it blocks on a rendezvous whose
  // partner has not yet reached the matching Wire. Waits are not replayed
  // — they re-emerge implicitly from the rendezvous max().
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t r = 0; r < nranks; ++r) {
      const auto& events = t.ranks[r].events;
      while (cursor[r] < events.size()) {
        const TimelineEvent& e = events[cursor[r]];
        if (e.kind == TimelineEventKind::Wait) {
          ++cursor[r];
          progressed = true;
          continue;
        }
        if (e.kind == TimelineEventKind::Compute) {
          clocks[r] = clocks[r] + e.duration_seconds / knobs.compute_scale;
          ++cursor[r];
          progressed = true;
          continue;
        }
        // Wire: both partners must sit at the matched pair.
        require(e.partner < nranks && e.partner != r &&
                    e.partner_event != kNoPartnerEvent,
                "replay_timeline: wire event without a valid partner");
        const auto p = static_cast<std::size_t>(e.partner);
        const auto& pevents = t.ranks[p].events;
        std::size_t pc = cursor[p];
        while (pc < pevents.size() &&
               pevents[pc].kind == TimelineEventKind::Wait)
          ++pc;
        if (pc != e.partner_event) break;  // partner still upstream
        const TimelineEvent& pe = pevents[pc];
        require(pe.kind == TimelineEventKind::Wire && pe.partner == r,
                "replay_timeline: partner indices do not match");
        const double comm = e.fixed_seconds * knobs.latency_scale +
                            e.transfer_seconds / knobs.link_bandwidth_scale;
        const double ready = std::max(clocks[r], clocks[p]) + comm;
        clocks[r] = ready;
        clocks[p] = ready;
        ++cursor[r];
        cursor[p] = pc + 1;
        progressed = true;
      }
    }
  }
  for (std::size_t r = 0; r < nranks; ++r)
    require(cursor[r] == t.ranks[r].events.size(),
            "replay_timeline: deadlock — timeline partner indices are "
            "inconsistent");
  for (double c : clocks)
    result.makespan_seconds = std::max(result.makespan_seconds, c);
  return result;
}

std::vector<WhatIfKnobs> default_whatif_scenarios() {
  std::vector<WhatIfKnobs> s(5);
  s[0].name = "baseline";
  s[1].name = "compute x2";
  s[1].compute_scale = 2.0;
  s[2].name = "link bandwidth x2";
  s[2].link_bandwidth_scale = 2.0;
  s[3].name = "link latency /2";
  s[3].latency_scale = 0.5;
  s[4].name = "everything x2";
  s[4].compute_scale = 2.0;
  s[4].link_bandwidth_scale = 2.0;
  s[4].latency_scale = 0.5;
  return s;
}

std::vector<WhatIfResult> whatif_sensitivity(
    const Timeline& timeline, const std::vector<WhatIfKnobs>& scenarios) {
  std::vector<WhatIfResult> results;
  results.reserve(scenarios.size());
  for (const WhatIfKnobs& k : scenarios)
    results.push_back(replay_timeline(timeline, k));
  return results;
}

Table timeline_summary_table(const Timeline& t, const CriticalPath& cp) {
  Table table("timeline summary — " + t.plan_id + " on " + t.machine_name +
                  " / " + t.interconnect_name,
              {"metric", "value"});
  table.add_row({std::string("ranks"),
                 static_cast<std::int64_t>(t.num_ranks())});
  table.add_row({std::string("events"),
                 static_cast<std::int64_t>(t.total_events())});
  table.add_row({std::string("makespan [us]"), t.makespan_seconds * 1e6});
  table.add_row({std::string("critical path [us]"), cp.path_seconds * 1e6});
  table.add_row({std::string("  compute [us]"), cp.compute_seconds * 1e6});
  table.add_row({std::string("  wire [us]"), cp.wire_seconds * 1e6});
  table.add_row({std::string("  wait [us]"), cp.wait_seconds * 1e6});
  table.add_row({std::string("compute fraction"), cp.compute_fraction()});
  table.add_row({std::string("wire fraction"), cp.wire_fraction()});
  table.add_row({std::string("imbalance (max/mean busy)"), cp.imbalance});
  table.add_row({std::string("wire utilization"), cp.wire_utilization});
  return table;
}

Table rank_attribution_table(const CriticalPath& cp, std::size_t max_rows) {
  Table table("per-rank attribution (compute/wire/wait/slack span the "
              "makespan)",
              {"rank", "compute [us]", "wire [us]", "wait [us]", "slack [us]",
               "critical [us]"});
  for (std::size_t i = 0; i < cp.ranks.size() && i < max_rows; ++i) {
    const RankAttribution& a = cp.ranks[i];
    table.add_row({static_cast<std::int64_t>(a.rank),
                   a.compute_seconds * 1e6, a.wire_seconds * 1e6,
                   a.wait_seconds * 1e6, a.slack_seconds * 1e6,
                   a.critical_seconds * 1e6});
  }
  return table;
}

Table critical_path_table(const CriticalPath& cp, std::size_t top_n) {
  std::vector<const CriticalPathStep*> by_duration;
  by_duration.reserve(cp.steps.size());
  for (const CriticalPathStep& s : cp.steps) by_duration.push_back(&s);
  std::stable_sort(by_duration.begin(), by_duration.end(),
                   [](const CriticalPathStep* a, const CriticalPathStep* b) {
                     return a->duration_seconds > b->duration_seconds;
                   });
  Table table("critical path — longest steps",
              {"start [us]", "duration [us]", "rank", "kind", "phase kind",
               "phase"});
  for (std::size_t i = 0; i < by_duration.size() && i < top_n; ++i) {
    const CriticalPathStep& s = *by_duration[i];
    table.add_row({s.start_seconds * 1e6, s.duration_seconds * 1e6,
                   static_cast<std::int64_t>(s.rank),
                   std::string(dist::timeline_event_kind_name(s.kind)),
                   std::string(sv::phase_kind_name(s.phase_kind)),
                   static_cast<std::int64_t>(s.phase_index)});
  }
  return table;
}

Table whatif_table(const std::vector<WhatIfResult>& results) {
  Table table("what-if sensitivity (recorded schedule, re-priced)",
              {"scenario", "compute x", "link bw x", "latency x",
               "makespan [us]", "speedup"});
  for (const WhatIfResult& r : results)
    table.add_row({r.knobs.name, r.knobs.compute_scale,
                   r.knobs.link_bandwidth_scale, r.knobs.latency_scale,
                   r.makespan_seconds * 1e6, r.speedup()});
  return table;
}

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void write_event_json(std::ostream& os, const TimelineEvent& e) {
  os << "{\"kind\":\"" << dist::timeline_event_kind_name(e.kind)
     << "\",\"phase_kind\":\"" << sv::phase_kind_name(e.phase_kind)
     << "\",\"phase\":" << e.phase_index << ",\"start_seconds\":"
     << e.start_seconds << ",\"duration_seconds\":" << e.duration_seconds;
  if (e.kind == TimelineEventKind::Compute) {
    os << ",\"gates\":" << e.gates;
  } else {
    os << ",\"hop\":" << e.hop_index << ",\"partner\":" << e.partner
       << ",\"rank_bit\":" << e.rank_bit;
    if (e.kind == TimelineEventKind::Wire)
      os << ",\"bytes\":" << e.bytes << ",\"fixed_seconds\":"
         << e.fixed_seconds << ",\"transfer_seconds\":" << e.transfer_seconds
         << ",\"partner_event\":" << e.partner_event;
  }
  os << "}";
}

}  // namespace

void write_timeline_json(const Timeline& t, const CriticalPath& cp,
                         const std::vector<WhatIfResult>& whatif,
                         std::ostream& os) {
  os.precision(17);
  os << "{\n";
  os << "  \"version\": 1,\n";
  os << "  \"plan\": {\"id\": ";
  write_json_string(os, t.plan_id);
  os << ", \"num_qubits\": " << t.num_qubits
     << ", \"node_qubits\": " << t.node_qubits
     << ", \"local_qubits\": " << t.local_qubits
     << ", \"block_qubits\": " << t.block_qubits
     << ", \"num_phases\": " << t.num_phases
     << ", \"ranks\": " << t.num_ranks() << "},\n";
  os << "  \"machine\": ";
  write_json_string(os, t.machine_name);
  os << ",\n  \"interconnect\": ";
  write_json_string(os, t.interconnect_name);
  os << ",\n";
  os << "  \"makespan_seconds\": " << t.makespan_seconds << ",\n";
  os << "  \"imbalance\": " << cp.imbalance << ",\n";
  os << "  \"wire_utilization\": " << cp.wire_utilization << ",\n";

  os << "  \"ranks\": [\n";
  for (std::size_t r = 0; r < t.ranks.size(); ++r) {
    const RankTimeline& rt = t.ranks[r];
    os << "    {\"rank\": " << rt.rank
       << ", \"end_seconds\": " << rt.end_seconds
       << ", \"compute_seconds\": " << rt.compute_seconds
       << ", \"wire_seconds\": " << rt.wire_seconds
       << ", \"wait_seconds\": " << rt.wait_seconds << ", \"events\": [";
    for (std::size_t i = 0; i < rt.events.size(); ++i) {
      if (i) os << ",";
      write_event_json(os, rt.events[i]);
    }
    os << "]}" << (r + 1 < t.ranks.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  os << "  \"critical_path\": {\"path_seconds\": " << cp.path_seconds
     << ", \"compute_seconds\": " << cp.compute_seconds
     << ", \"wire_seconds\": " << cp.wire_seconds
     << ", \"wait_seconds\": " << cp.wait_seconds << ", \"steps\": [";
  for (std::size_t i = 0; i < cp.steps.size(); ++i) {
    const CriticalPathStep& s = cp.steps[i];
    os << (i ? "," : "") << "\n    {\"rank\":" << s.rank
       << ",\"event_index\":" << s.event_index << ",\"kind\":\""
       << dist::timeline_event_kind_name(s.kind) << "\",\"phase_kind\":\""
       << sv::phase_kind_name(s.phase_kind) << "\",\"phase\":" << s.phase_index
       << ",\"start_seconds\":" << s.start_seconds
       << ",\"duration_seconds\":" << s.duration_seconds << "}";
  }
  os << "\n  ]},\n";

  os << "  \"attribution\": [\n";
  for (std::size_t i = 0; i < cp.ranks.size(); ++i) {
    const RankAttribution& a = cp.ranks[i];
    os << "    {\"rank\": " << a.rank
       << ", \"compute_seconds\": " << a.compute_seconds
       << ", \"wire_seconds\": " << a.wire_seconds
       << ", \"wait_seconds\": " << a.wait_seconds
       << ", \"slack_seconds\": " << a.slack_seconds
       << ", \"critical_seconds\": " << a.critical_seconds << "}"
       << (i + 1 < cp.ranks.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  os << "  \"slack_histogram\": [";
  for (std::size_t i = 0; i < cp.slack_histogram.size(); ++i)
    os << (i ? "," : "") << cp.slack_histogram[i];
  os << "],\n";

  os << "  \"whatif\": [\n";
  for (std::size_t i = 0; i < whatif.size(); ++i) {
    const WhatIfResult& w = whatif[i];
    os << "    {\"name\": ";
    write_json_string(os, w.knobs.name);
    os << ", \"compute_scale\": " << w.knobs.compute_scale
       << ", \"link_bandwidth_scale\": " << w.knobs.link_bandwidth_scale
       << ", \"latency_scale\": " << w.knobs.latency_scale
       << ", \"makespan_seconds\": " << w.makespan_seconds
       << ", \"baseline_seconds\": " << w.baseline_seconds
       << ", \"speedup\": " << w.speedup() << "}"
       << (i + 1 < whatif.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace svsim::perf
