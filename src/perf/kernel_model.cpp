#include "perf/kernel_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace svsim::perf {

using machine::ExecConfig;
using machine::MachineSpec;
using qc::Gate;
using qc::GateKind;

namespace {

/// Flops for one general 2x2 pair update: 4 cmul (24) + 2 cadd (4).
constexpr double kFlopsPair1Q = 28.0;
/// Hadamard pair: 2 cadd (4) + 2 real scalings (4).
constexpr double kFlopsPairH = 8.0;
/// Pure phase multiply per amplitude: 1 cmul.
constexpr double kFlopsPhase = 6.0;
/// General 4x4 quad update: 16 cmul (96) + 12 cadd (24).
constexpr double kFlopsQuad2Q = 120.0;

/// Number of amplitudes per cache line.
std::uint64_t amps_per_line(const MachineSpec& m, unsigned element_bytes) {
  const unsigned amp_bytes = 2 * element_bytes;
  return std::max<std::uint64_t>(1, m.mem_line_bytes() / amp_bytes);
}

/// Lines visited when the touched index set constrains the bits in
/// `constrained` (to either polarity): constraints at positions >=
/// log2(amps/line) halve the number of lines; lower constraints do not.
std::uint64_t lines_touched(std::uint64_t total_amps, std::uint64_t line_amps,
                            const std::vector<unsigned>& constrained) {
  const unsigned low_bits = ilog2(line_amps);
  std::uint64_t lines = total_amps / line_amps;
  if (lines == 0) lines = 1;
  for (unsigned b : constrained)
    if (b >= low_bits && lines > 1) lines /= 2;
  return lines;
}

}  // namespace

double simd_efficiency_for_target(unsigned target, unsigned vector_bits,
                                  unsigned element_bytes) {
  const double lanes =
      static_cast<double>(vector_bits) / (16.0 * element_bytes);
  if (lanes <= 1.0) return 0.95;
  const double run = static_cast<double>(pow2(target));
  if (run >= lanes) return 0.95;
  // Short contiguous runs force intra-register permutes; efficiency degrades
  // towards but not to the scalar floor (SVE/AVX shuffle kernels recover
  // roughly half the lost throughput).
  return 0.45 + 0.5 * (run / lanes) * 0.95;
}

KernelCost gate_cost(const Gate& g, unsigned n, const MachineSpec& m,
                     const ExecConfig& config) {
  const unsigned eb = config.element_bytes;
  const unsigned vbits = config.effective_vector_bits(m);
  const std::uint64_t N = pow2(n);
  const double amp_bytes = 2.0 * eb;
  const std::uint64_t line_amps = amps_per_line(m, eb);
  const std::uint64_t line_bytes = m.mem_line_bytes();

  KernelCost cost;
  cost.kernel = g.name();

  auto full_sweep = [&](double flops_total, double eff) {
    cost.flops = flops_total;
    cost.touched_amplitudes = N;
    cost.footprint_bytes = N * static_cast<std::uint64_t>(amp_bytes);
    cost.bytes = 2.0 * static_cast<double>(N) * amp_bytes;  // read + write
    cost.simd_efficiency = eff;
  };

  auto constrained_sweep = [&](const std::vector<unsigned>& constrained,
                               std::uint64_t touched, double flops_total,
                               double eff) {
    const std::uint64_t lines = lines_touched(N, line_amps, constrained);
    cost.flops = flops_total;
    cost.touched_amplitudes = touched;
    cost.footprint_bytes = lines * line_bytes;
    cost.bytes = 2.0 * static_cast<double>(lines * line_bytes);
    cost.simd_efficiency = eff;
  };

  const double pairs = static_cast<double>(N) / 2.0;

  switch (g.kind) {
    case GateKind::I:
    case GateKind::BARRIER:
      cost.kernel = "nop";
      cost.simd_efficiency = 1.0;
      return cost;

    // ---- full-sweep 1-qubit kernels ------------------------------------
    case GateKind::X: {
      const double eff = simd_efficiency_for_target(g.qubits[0], vbits, eb);
      full_sweep(0.0, eff);
      cost.kernel = "perm1q";
      return cost;
    }
    case GateKind::Y: {
      const double eff = simd_efficiency_for_target(g.qubits[0], vbits, eb);
      full_sweep(4.0 * pairs, eff);
      cost.kernel = "perm1q";
      return cost;
    }
    case GateKind::H: {
      const double eff = simd_efficiency_for_target(g.qubits[0], vbits, eb);
      full_sweep(kFlopsPairH * pairs, eff);
      cost.kernel = "h";
      return cost;
    }
    case GateKind::SX:
    case GateKind::SXdg:
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::U: {
      const double eff = simd_efficiency_for_target(g.qubits[0], vbits, eb);
      full_sweep(kFlopsPair1Q * pairs, eff);
      cost.kernel = "gen1q";
      return cost;
    }
    case GateKind::RZ: {
      // diag(e^-iθ/2, e^iθ/2): every amplitude scaled.
      full_sweep(kFlopsPhase * static_cast<double>(N), 0.95);
      cost.kernel = "diag1";
      return cost;
    }

    // ---- half-sweep diagonal 1-qubit kernels ----------------------------
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::P: {
      const unsigned t = g.qubits[0];
      constrained_sweep({t}, N / 2, kFlopsPhase * static_cast<double>(N / 2),
                        0.95);
      cost.kernel = "diag1";
      return cost;
    }

    // ---- controlled 1-qubit kernels --------------------------------------
    case GateKind::CX:
    case GateKind::CCX:
    case GateKind::MCX: {
      const auto controls = g.controls();
      const unsigned nc = static_cast<unsigned>(controls.size());
      const std::uint64_t touched = N >> nc;
      // The gather-based controlled kernel loses additional vector
      // efficiency relative to the plain strided kernel.
      const double eff =
          0.7 * simd_efficiency_for_target(g.targets()[0], vbits, eb);
      constrained_sweep(controls, touched, 0.0, eff);
      cost.kernel = "cx";
      return cost;
    }
    case GateKind::CY:
    case GateKind::CH:
    case GateKind::CRX:
    case GateKind::CRY: {
      const auto controls = g.controls();
      const unsigned nc = static_cast<unsigned>(controls.size());
      const std::uint64_t touched = N >> nc;
      const double eff =
          0.7 * simd_efficiency_for_target(g.targets()[0], vbits, eb);
      constrained_sweep(controls, touched,
                        kFlopsPair1Q * static_cast<double>(touched) / 2.0,
                        eff);
      cost.kernel = "ctrl1q";
      return cost;
    }
    case GateKind::CRZ: {
      // diag with d0 != 1: touches the full control subspace.
      const auto controls = g.controls();
      const std::uint64_t touched = N >> controls.size();
      constrained_sweep(controls, touched,
                        kFlopsPhase * static_cast<double>(touched), 0.8);
      cost.kernel = "cdiag1";
      return cost;
    }
    case GateKind::CZ:
    case GateKind::CP:
    case GateKind::CCZ:
    case GateKind::MCP: {
      // Phase on the all-ones subspace of all operands.
      std::vector<unsigned> ones = g.qubits;
      const std::uint64_t touched = N >> ones.size();
      constrained_sweep(ones, touched,
                        kFlopsPhase * static_cast<double>(touched), 0.8);
      cost.kernel = "mcphase";
      return cost;
    }

    // ---- 2-qubit kernels ---------------------------------------------------
    case GateKind::SWAP: {
      // Touches the q0 != q1 half; both operand bits are constrained within
      // each of the two exchanged subsets.
      constrained_sweep({g.qubits[0], g.qubits[1]}, N / 2, 0.0, 0.6);
      // Two subsets are visited (01 and 10): double the line count derived
      // from a single fully-constrained subset, capped at the full state.
      cost.bytes = std::min(2.0 * cost.bytes,
                            2.0 * static_cast<double>(N) * amp_bytes);
      cost.footprint_bytes =
          std::min<std::uint64_t>(2 * cost.footprint_bytes,
                                  N * static_cast<std::uint64_t>(amp_bytes));
      cost.kernel = "swap";
      return cost;
    }
    case GateKind::ISWAP:
    case GateKind::RXX:
    case GateKind::RYY:
    case GateKind::U2Q: {
      const unsigned tmin = std::min(g.qubits[0], g.qubits[1]);
      const double eff =
          0.85 * simd_efficiency_for_target(tmin, vbits, eb);
      full_sweep(kFlopsQuad2Q * static_cast<double>(N) / 4.0, eff);
      cost.kernel = "gen2q";
      return cost;
    }
    case GateKind::RZZ: {
      full_sweep(kFlopsPhase * static_cast<double>(N), 0.9);
      cost.kernel = "diag2";
      return cost;
    }
    case GateKind::CSWAP: {
      constrained_sweep({g.qubits[0], g.qubits[1], g.qubits[2]}, N / 4, 0.0,
                        0.5);
      cost.bytes = std::min(2.0 * cost.bytes,
                            2.0 * static_cast<double>(N) * amp_bytes);
      cost.footprint_bytes =
          std::min<std::uint64_t>(2 * cost.footprint_bytes,
                                  N * static_cast<std::uint64_t>(amp_bytes));
      cost.kernel = "cswap";
      return cost;
    }

    // ---- k-qubit kernels ------------------------------------------------------
    case GateKind::DIAG: {
      full_sweep(kFlopsPhase * static_cast<double>(N), 0.8);
      cost.kernel = "diagk";
      return cost;
    }
    case GateKind::UNITARY: {
      const unsigned k = g.num_qubits();
      if (k == 1) {
        const double eff = simd_efficiency_for_target(g.qubits[0], vbits, eb);
        full_sweep(kFlopsPair1Q * pairs, eff);
        cost.kernel = "gen1q";
        return cost;
      }
      if (k == 2) {
        const unsigned tmin = std::min(g.qubits[0], g.qubits[1]);
        const double eff =
            0.85 * simd_efficiency_for_target(tmin, vbits, eb);
        full_sweep(kFlopsQuad2Q * static_cast<double>(N) / 4.0, eff);
        cost.kernel = "gen2q";
        return cost;
      }
      // 2^k x 2^k blocks: per group of 2^k amps, 2^k rows of (2^k cmul +
      // (2^k - 1) cadd).
      const double sub = static_cast<double>(pow2(k));
      const double flops_per_group = sub * (6.0 * sub + 2.0 * (sub - 1.0));
      const double groups = static_cast<double>(N) / sub;
      full_sweep(flops_per_group * groups, 0.7);
      cost.kernel = "genkq";
      return cost;
    }

    // ---- non-unitary -----------------------------------------------------------
    case GateKind::MEASURE:
    case GateKind::RESET: {
      // Probability reduction (read all) + collapse (write half on average):
      // model as 1.5 sweeps of traffic and a multiply-add per amplitude.
      cost.flops = 4.0 * static_cast<double>(N);
      cost.touched_amplitudes = N;
      cost.footprint_bytes = N * static_cast<std::uint64_t>(amp_bytes);
      cost.bytes = 1.5 * static_cast<double>(N) * amp_bytes;
      cost.simd_efficiency = 0.9;
      cost.kernel = "measure";
      return cost;
    }
  }
  throw Error("gate_cost: unhandled gate kind");
}

SweepCost blocked_sweep_cost(const std::vector<Gate>& gates, unsigned n,
                             unsigned block_qubits, const MachineSpec& m,
                             const ExecConfig& config) {
  require(block_qubits >= 1 && block_qubits <= n,
          "blocked_sweep_cost: block_qubits out of range");
  SweepCost sweep;
  sweep.gates = gates.size();
  const std::uint64_t N = pow2(n);
  const double amp_bytes = 2.0 * config.element_bytes;
  sweep.block_bytes =
      pow2(block_qubits) * static_cast<std::uint64_t>(amp_bytes);
  for (const auto& g : gates) {
    for (unsigned q : g.qubits)
      require(q < block_qubits,
              "blocked_sweep_cost: gate operand crosses the block boundary");
    const KernelCost kc = gate_cost(g, n, m, config);
    sweep.flops += kc.flops;
    sweep.unblocked_bytes += kc.bytes;
  }
  // One read + one write of the state serves the whole sweep; gates whose
  // touched set is a subset (diagonal/controlled) cannot reduce this, since
  // the sweep's first full-coverage gate already streams every line.
  sweep.dram_bytes = 2.0 * static_cast<double>(N) * amp_bytes;
  return sweep;
}

}  // namespace svsim::perf
