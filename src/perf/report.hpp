// Rendering of performance-analysis results as tables.
//
// Thin formatting layer so examples and benches print consistent output:
// a PerfReport becomes a per-kernel breakdown table, a gate trace becomes a
// per-gate listing, and a set of (machine, report) pairs becomes a
// comparison table.
#pragma once

#include <vector>

#include "common/table.hpp"
#include "perf/perf_simulator.hpp"
#include "perf/power_model.hpp"

namespace svsim::perf {

/// Summary line table: totals, achieved GFLOP/s and GB/s.
Table summary_table(const PerfReport& report);

/// Per-kernel-class time breakdown (sorted by share, descending).
Table kernel_breakdown_table(const PerfReport& report);

/// Per-gate trace listing (requires record_trace at simulation time).
Table trace_table(const PerfReport& report, std::size_t max_rows = 32);

/// Side-by-side comparison of several labeled runs.
Table comparison_table(
    const std::vector<std::pair<std::string, PerfReport>>& runs);

/// Power summary for labeled runs.
Table power_table(
    const std::vector<std::pair<std::string, PowerReport>>& runs);

}  // namespace svsim::perf
