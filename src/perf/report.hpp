// Rendering of performance-analysis results as tables.
//
// Thin formatting layer so examples and benches print consistent output:
// a PerfReport becomes a per-kernel breakdown table, a gate trace becomes a
// per-gate listing, and a set of (machine, report) pairs becomes a
// comparison table.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "obs/trace.hpp"
#include "perf/perf_simulator.hpp"
#include "perf/power_model.hpp"

namespace svsim::perf {

/// Summary line table: totals, achieved GFLOP/s and GB/s.
Table summary_table(const PerfReport& report);

/// Per-kernel-class time breakdown (sorted by share, descending).
Table kernel_breakdown_table(const PerfReport& report);

/// Per-gate trace listing (requires record_trace at simulation time).
Table trace_table(const PerfReport& report, std::size_t max_rows = 32);

/// Side-by-side comparison of several labeled runs.
Table comparison_table(
    const std::vector<std::pair<std::string, PerfReport>>& runs);

/// Power summary for labeled runs.
Table power_table(
    const std::vector<std::pair<std::string, PowerReport>>& runs);

// ---- model-vs-measured drift ------------------------------------------
//
// The drift report is the runtime check of the repo's central claim
// (model ≈ measurement): it joins the spans the tracer recorded during a
// real run against the per-gate predictions of the same prepared circuit
// and aggregates the comparison per kernel class.

/// Per-kernel-class comparison row.
struct DriftRow {
  std::string kernel;           ///< kernel-class name (from the model)
  std::size_t count = 0;        ///< gates joined into this row
  double measured_seconds = 0.0;
  double modeled_seconds = 0.0;
  double measured_gbps = 0.0;   ///< model traffic / measured time
  double modeled_gbps = 0.0;    ///< model traffic / modeled time

  /// measured / modeled time (>1 = slower than the model predicts).
  double time_ratio() const noexcept {
    return modeled_seconds > 0.0 ? measured_seconds / modeled_seconds : 0.0;
  }
};

struct DriftReport {
  std::vector<DriftRow> rows;   ///< sorted by measured time, descending
  double measured_total_seconds = 0.0;
  double modeled_total_seconds = 0.0;
  std::size_t matched = 0;       ///< spans joined one-to-one with the model
  std::size_t orphan_spans = 0;  ///< measured spans with no model partner
  std::size_t orphan_model = 0;  ///< modeled gates with no measured span
  /// Spans the tracer lost to ring wraparound before the join. When
  /// nonzero the positional join is unreliable: the surviving spans no
  /// longer line up with the model trace one-to-one.
  std::size_t dropped_spans = 0;

  /// True when the join ran on an incomplete span stream.
  bool partial() const noexcept { return dropped_spans > 0; }

  double time_ratio() const noexcept {
    return modeled_total_seconds > 0.0
               ? measured_total_seconds / modeled_total_seconds
               : 0.0;
  }
};

/// Joins measured spans (Kernel/Measure categories, in record order)
/// positionally against `model.trace` (requires record_trace). Both sides
/// must come from the same prepared circuit — same fusion settings — or
/// the mismatches surface as orphans. Pass the tracer's `dropped()` count
/// so a wrapped ring marks the report partial instead of silently joining
/// a truncated stream.
DriftReport drift_report(const PerfReport& model,
                         const std::vector<obs::Span>& spans,
                         std::size_t dropped_spans = 0);

/// Per-kernel modeled-vs-measured table plus a totals row.
Table drift_table(const DriftReport& drift);

struct ProfileReport;  // perf/profile_report.hpp

/// Per-phase drift section: the plan-phase counterpart of drift_table.
/// Where the per-kernel join above compares gate classes across the whole
/// run, this attributes the drift to the ExecutionPlan phases a profiled
/// run actually executed (one row per phase kind, aggregated). Carries the
/// same PARTIAL marker when the profiled run lost tracer spans.
Table drift_phase_table(const ProfileReport& report);

}  // namespace svsim::perf
