#include "perf/report.hpp"

#include <algorithm>

namespace svsim::perf {

Table summary_table(const PerfReport& report) {
  Table t("Performance summary — " + report.machine_name,
          {"qubits", "threads", "gates", "seconds", "GFLOP/s", "GB/s"});
  t.add_row({static_cast<std::int64_t>(report.num_qubits),
             static_cast<std::int64_t>(report.threads),
             static_cast<std::int64_t>(report.num_gates),
             report.total_seconds, report.achieved_gflops(),
             report.achieved_bandwidth_gbps()});
  return t;
}

Table kernel_breakdown_table(const PerfReport& report) {
  Table t("Time by kernel class — " + report.machine_name,
          {"kernel", "seconds", "share"});
  std::vector<std::pair<std::string, double>> rows(
      report.seconds_by_kernel.begin(), report.seconds_by_kernel.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [kernel, seconds] : rows) {
    t.add_row({kernel, seconds,
               report.total_seconds > 0.0 ? seconds / report.total_seconds
                                          : 0.0});
  }
  return t;
}

Table trace_table(const PerfReport& report, std::size_t max_rows) {
  Table t("Gate trace — " + report.machine_name,
          {"gate", "kernel", "us", "GB/s", "simd_eff", "bound"});
  const std::size_t rows = std::min(report.trace.size(), max_rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const GateTiming& g = report.trace[i];
    t.add_row({g.gate, g.cost.kernel, g.seconds * 1e6,
               g.seconds > 0.0 ? g.cost.bytes / g.seconds * 1e-9 : 0.0,
               g.cost.simd_efficiency,
               std::string(g.memory_bound ? "mem" : "fp")});
  }
  return t;
}

Table comparison_table(
    const std::vector<std::pair<std::string, PerfReport>>& runs) {
  Table t("Configuration comparison",
          {"configuration", "seconds", "GFLOP/s", "GB/s", "vs_first"});
  const double base = runs.empty() ? 1.0 : runs.front().second.total_seconds;
  for (const auto& [label, r] : runs) {
    t.add_row({label, r.total_seconds, r.achieved_gflops(),
               r.achieved_bandwidth_gbps(),
               r.total_seconds > 0.0 ? base / r.total_seconds : 0.0});
  }
  return t;
}

Table power_table(
    const std::vector<std::pair<std::string, PowerReport>>& runs) {
  Table t("Power comparison",
          {"configuration", "seconds", "watts", "joules", "EDP_Js"});
  for (const auto& [label, p] : runs) {
    t.add_row({label, p.seconds, p.average_watts, p.joules,
               p.energy_delay_product()});
  }
  return t;
}

}  // namespace svsim::perf
