#include "perf/report.hpp"

#include <algorithm>
#include <map>

#include "perf/profile_report.hpp"

namespace svsim::perf {

Table summary_table(const PerfReport& report) {
  Table t("Performance summary — " + report.machine_name,
          {"qubits", "threads", "gates", "seconds", "GFLOP/s", "GB/s"});
  t.add_row({static_cast<std::int64_t>(report.num_qubits),
             static_cast<std::int64_t>(report.threads),
             static_cast<std::int64_t>(report.num_gates),
             report.total_seconds, report.achieved_gflops(),
             report.achieved_bandwidth_gbps()});
  return t;
}

Table kernel_breakdown_table(const PerfReport& report) {
  Table t("Time by kernel class — " + report.machine_name,
          {"kernel", "seconds", "share"});
  std::vector<std::pair<std::string, double>> rows(
      report.seconds_by_kernel.begin(), report.seconds_by_kernel.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [kernel, seconds] : rows) {
    t.add_row({kernel, seconds,
               report.total_seconds > 0.0 ? seconds / report.total_seconds
                                          : 0.0});
  }
  return t;
}

Table trace_table(const PerfReport& report, std::size_t max_rows) {
  Table t("Gate trace — " + report.machine_name,
          {"gate", "kernel", "us", "GB/s", "simd_eff", "bound"});
  const std::size_t rows = std::min(report.trace.size(), max_rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const GateTiming& g = report.trace[i];
    t.add_row({g.gate, g.cost.kernel, g.seconds * 1e6,
               g.seconds > 0.0 ? g.cost.bytes / g.seconds * 1e-9 : 0.0,
               g.cost.simd_efficiency,
               std::string(g.memory_bound ? "mem" : "fp")});
  }
  return t;
}

Table comparison_table(
    const std::vector<std::pair<std::string, PerfReport>>& runs) {
  Table t("Configuration comparison",
          {"configuration", "seconds", "GFLOP/s", "GB/s", "vs_first"});
  const double base = runs.empty() ? 1.0 : runs.front().second.total_seconds;
  for (const auto& [label, r] : runs) {
    t.add_row({label, r.total_seconds, r.achieved_gflops(),
               r.achieved_bandwidth_gbps(),
               r.total_seconds > 0.0 ? base / r.total_seconds : 0.0});
  }
  return t;
}

Table power_table(
    const std::vector<std::pair<std::string, PowerReport>>& runs) {
  Table t("Power comparison",
          {"configuration", "seconds", "watts", "joules", "EDP_Js"});
  for (const auto& [label, p] : runs) {
    t.add_row({label, p.seconds, p.average_watts, p.joules,
               p.energy_delay_product()});
  }
  return t;
}

DriftReport drift_report(const PerfReport& model,
                         const std::vector<obs::Span>& spans,
                         std::size_t dropped_spans) {
  // Only per-gate spans participate; fusion/collective spans are passes,
  // not gates, and have no model-side partner.
  std::vector<const obs::Span*> measured;
  measured.reserve(spans.size());
  for (const obs::Span& s : spans)
    if (s.category == obs::SpanCategory::Kernel ||
        s.category == obs::SpanCategory::Measure)
      measured.push_back(&s);

  DriftReport drift;
  drift.dropped_spans = dropped_spans;
  std::map<std::string, DriftRow> by_kernel;
  const std::size_t joined = std::min(measured.size(), model.trace.size());
  for (std::size_t i = 0; i < joined; ++i) {
    const obs::Span& s = *measured[i];
    const GateTiming& g = model.trace[i];
    if (g.gate != s.name.data()) {
      // Positional mismatch: the two sides ran different gate sequences.
      ++drift.orphan_spans;
      ++drift.orphan_model;
      continue;
    }
    ++drift.matched;
    DriftRow& row = by_kernel[g.cost.kernel];
    row.kernel = g.cost.kernel;
    ++row.count;
    row.measured_seconds += static_cast<double>(s.duration_ns) * 1e-9;
    row.modeled_seconds += g.seconds;
    // Both bandwidths use the model's line-granular traffic estimate, so
    // the ratio isolates the *time* disagreement.
    row.measured_gbps += g.cost.bytes;  // accumulate bytes; divide below
    row.modeled_gbps += g.cost.bytes;
  }
  drift.orphan_spans += measured.size() - joined;
  drift.orphan_model += model.trace.size() - joined;

  for (auto& [kernel, row] : by_kernel) {
    const double bytes = row.measured_gbps;
    row.measured_gbps =
        row.measured_seconds > 0.0 ? bytes / row.measured_seconds * 1e-9 : 0.0;
    row.modeled_gbps =
        row.modeled_seconds > 0.0 ? bytes / row.modeled_seconds * 1e-9 : 0.0;
    drift.measured_total_seconds += row.measured_seconds;
    drift.modeled_total_seconds += row.modeled_seconds;
    drift.rows.push_back(std::move(row));
  }
  std::sort(drift.rows.begin(), drift.rows.end(),
            [](const DriftRow& a, const DriftRow& b) {
              return a.measured_seconds > b.measured_seconds;
            });
  return drift;
}

Table drift_table(const DriftReport& drift) {
  std::string title = "Model vs. measured drift";
  if (drift.partial())
    title += " (PARTIAL: " + std::to_string(drift.dropped_spans) +
             " spans dropped)";
  Table t(title,
          {"kernel", "gates", "measured_ms", "modeled_ms", "ratio",
           "measured_GBs", "modeled_GBs"});
  for (const DriftRow& r : drift.rows) {
    t.add_row({r.kernel, static_cast<std::int64_t>(r.count),
               r.measured_seconds * 1e3, r.modeled_seconds * 1e3,
               r.time_ratio(), r.measured_gbps, r.modeled_gbps});
  }
  t.add_row({std::string("TOTAL"),
             static_cast<std::int64_t>(drift.matched),
             drift.measured_total_seconds * 1e3,
             drift.modeled_total_seconds * 1e3, drift.time_ratio(),
             0.0, 0.0});
  return t;
}

Table drift_phase_table(const ProfileReport& report) {
  struct Agg {
    std::size_t phases = 0;
    std::size_t gates = 0;
    double measured = 0.0;
    double modeled = 0.0;
    double bytes = 0.0;
  };
  std::map<sv::PhaseKind, Agg> by_kind;
  for (const PhaseProfile& p : report.phases) {
    Agg& a = by_kind[p.kind];
    ++a.phases;
    a.gates += p.gates;
    a.measured += p.measured_seconds;
    a.modeled += p.modeled_seconds;
    a.bytes += p.measured_bytes;
  }
  std::string title = "Drift by plan phase";
  if (report.partial) title += " (PARTIAL: tracer rings overflowed)";
  Table t(title, {"phase", "count", "gates", "measured_ms", "modeled_ms",
                  "ratio", "measured_GBs"});
  for (const auto& [kind, a] : by_kind) {
    t.add_row({std::string(sv::phase_kind_name(kind)),
               static_cast<std::int64_t>(a.phases),
               static_cast<std::int64_t>(a.gates), a.measured * 1e3,
               a.modeled * 1e3, a.modeled > 0.0 ? a.measured / a.modeled : 0.0,
               a.measured > 0.0 ? a.bytes / a.measured * 1e-9 : 0.0});
  }
  t.add_row({std::string("TOTAL"),
             static_cast<std::int64_t>(report.phases.size()), std::int64_t{0},
             report.measured_seconds * 1e3, report.modeled_seconds * 1e3,
             report.drift_ratio(),
             report.measured_seconds > 0.0
                 ? report.measured_bytes / report.measured_seconds * 1e-9
                 : 0.0});
  return t;
}

}  // namespace svsim::perf
