// Runtime gate-span tracer: what the simulator *actually did*, when.
//
// The perf layer (`src/perf`) predicts per-gate cost from first principles;
// this tracer records the measured counterpart — one span per applied
// gate/fused block (and per fusion pass / collective call) with wall-clock
// nanoseconds, operand qubits, innermost stride, and estimated bytes
// streamed. Spans land in per-thread ring buffers so recording is lock-free
// on the hot path and bounded in memory; `collect()` merges and orders them,
// and `write_chrome_json()` emits the Chrome trace-event format that
// chrome://tracing and Perfetto load directly.
//
// Tracing is off by default. When disabled, the instrumentation in the
// execution layers reduces to one relaxed atomic load per run (not per
// gate), so benchmarks are unaffected.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "common/table.hpp"

namespace svsim::obs {

/// What a span measures. `Kernel` spans are the per-gate unit the drift
/// report joins against the performance model.
enum class SpanCategory : std::uint8_t {
  Kernel,      ///< one gate / fused block applied to the state
  Measure,     ///< MEASURE / RESET (stochastic, collapses the state)
  Fusion,      ///< a whole fusion pass over a circuit
  Collective,  ///< a distributed-timing / collective-model evaluation
  Region,      ///< generic user-scoped region
};

const char* span_category_name(SpanCategory category);

/// One recorded event. POD, fixed-size: rings hold these by value.
struct Span {
  std::array<char, 16> name{};  ///< kernel mnemonic, nul-terminated
  SpanCategory category = SpanCategory::Region;
  std::uint8_t num_qubits = 0;   ///< operand count of the traced gate
  std::uint16_t thread = 0;      ///< recording thread (registration order)
  std::uint32_t q0 = kNoQubit;   ///< first operand qubit
  std::uint32_t q1 = kNoQubit;   ///< second operand qubit
  std::uint64_t stride = 0;      ///< amplitude distance of the pair loop
  std::uint64_t bytes = 0;       ///< estimated bytes streamed
  std::uint64_t start_ns = 0;    ///< since tracer epoch
  std::uint64_t duration_ns = 0;
  std::uint64_t seq = 0;         ///< global record order (tie-break)

  static constexpr std::uint32_t kNoQubit = ~std::uint32_t{0};

  /// Achieved bandwidth of this span, GB/s (0 if instantaneous).
  double gbps() const noexcept {
    return duration_ns > 0
               ? static_cast<double>(bytes) / static_cast<double>(duration_ns)
               : 0.0;
  }
};

/// Process-wide tracer with per-thread ring buffers.
///
/// Typical use:
///   auto& tr = Tracer::global();
///   tr.clear(); tr.enable();
///   ... run circuits ...
///   tr.disable();
///   tr.write_chrome_json(file);
class Tracer {
 public:
  /// Ring capacity in spans per recording thread.
  explicit Tracer(std::size_t capacity_per_thread = 1u << 16);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Shared process-wide tracer (what the execution layers record into).
  static Tracer& global();

  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops all recorded spans (thread registrations persist).
  void clear();

  /// Nanoseconds since this tracer's epoch (monotonic).
  std::uint64_t now_ns() const noexcept;

  /// Records a span ending now. `qubits`/`nq` may be null/0. No-op when
  /// disabled. Lock-free after the calling thread's first record.
  void record_span(const char* name, SpanCategory category,
                   const unsigned* qubits, std::size_t nq, std::uint64_t stride,
                   std::uint64_t bytes, std::uint64_t start_ns);

  /// Records a fully-populated span (thread/seq fields are overwritten).
  void record(Span span);

  /// All retained spans, merged across threads, ordered by (start_ns, seq).
  std::vector<Span> collect() const;

  /// Spans recorded since construction/clear() (including overwritten ones).
  std::uint64_t total_recorded() const;
  /// Spans lost to ring wraparound.
  std::uint64_t dropped() const;

  /// Chrome trace-event JSON ("X" complete events, µs timestamps) —
  /// loadable in chrome://tracing and Perfetto.
  void write_chrome_json(std::ostream& os) const;

 private:
  struct ThreadRing;
  ThreadRing& ring_for_this_thread();

  const std::size_t capacity_;
  const std::uint64_t id_;  ///< process-unique (thread-local cache key)
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> seq_{0};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;  ///< guards rings_ registration and collect()
  std::vector<std::unique_ptr<ThreadRing>> rings_;
};

/// RAII region span recorded into Tracer::global() (if enabled at entry).
/// The two-argument form resolves the global tracer; pass an explicit
/// tracer (e.g. ExecutionContext::tracer()) to record elsewhere.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, SpanCategory category);
  ScopedSpan(const char* name, SpanCategory category, Tracer& tracer);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const noexcept { return tracer_ != nullptr; }
  void set_bytes(std::uint64_t bytes) noexcept { bytes_ = bytes; }

 private:
  Tracer* tracer_ = nullptr;
  const char* name_;
  SpanCategory category_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Per-span listing (measured counterpart of perf::trace_table).
Table span_table(const std::vector<Span>& spans, std::size_t max_rows = 32);

/// Aggregation per span name: count, total time, bytes, achieved GB/s —
/// the measured per-kernel-class bandwidth table.
Table kernel_bandwidth_table(const std::vector<Span>& spans);

}  // namespace svsim::obs
