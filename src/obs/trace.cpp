#include "obs/trace.hpp"

#include <algorithm>
#include <cstring>
#include <ostream>
#include <thread>

#include "common/error.hpp"

namespace svsim::obs {

const char* span_category_name(SpanCategory category) {
  switch (category) {
    case SpanCategory::Kernel: return "kernel";
    case SpanCategory::Measure: return "measure";
    case SpanCategory::Fusion: return "fusion";
    case SpanCategory::Collective: return "collective";
    case SpanCategory::Region: return "region";
  }
  return "?";
}

/// One thread's ring. `head` counts every span ever stored; the slot is
/// head % capacity, so the ring retains the most recent `capacity` spans.
/// Only the owning thread writes `head`, but drop accounting (dropped(),
/// total_recorded(), collect()) reads it from other threads mid-run — it
/// must be atomic or a torn read at ring-wrap can over/under-count drops
/// and miss marking a report partial.
struct Tracer::ThreadRing {
  ThreadRing(std::size_t capacity, std::uint16_t index, std::thread::id owner)
      : spans(capacity), thread_index(index), tid(owner) {}

  std::vector<Span> spans;
  std::atomic<std::uint64_t> head{0};
  std::uint16_t thread_index = 0;
  std::thread::id tid;
};

namespace {

/// Thread-local cache of the ring registered with a particular tracer, so
/// record() takes the registration mutex only once per (thread, tracer).
struct RingCache {
  std::uint64_t owner_id = 0;  // 0 = empty; tracer ids start at 1
  void* ring = nullptr;        // Tracer::ThreadRing* (private type)
};
thread_local RingCache tl_ring_cache;

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer(std::size_t capacity_per_thread)
    : capacity_(capacity_per_thread),
      id_(next_tracer_id()),
      epoch_(std::chrono::steady_clock::now()) {
  require(capacity_ > 0, "Tracer: capacity must be positive");
}

Tracer::~Tracer() = default;

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::ThreadRing& Tracer::ring_for_this_thread() {
  RingCache& cache = tl_ring_cache;
  if (cache.owner_id == id_)
    return *static_cast<ThreadRing*>(cache.ring);
  const std::thread::id tid = std::this_thread::get_id();
  std::lock_guard lock(mutex_);
  // The cache only remembers one tracer per thread; a thread that alternates
  // between tracers must rediscover its existing ring here.
  auto it = std::find_if(rings_.begin(), rings_.end(),
                         [&](const auto& r) { return r->tid == tid; });
  if (it == rings_.end()) {
    rings_.push_back(std::make_unique<ThreadRing>(
        capacity_, static_cast<std::uint16_t>(rings_.size()), tid));
    it = rings_.end() - 1;
  }
  cache.owner_id = id_;
  cache.ring = it->get();
  return **it;
}

void Tracer::record_span(const char* name, SpanCategory category,
                         const unsigned* qubits, std::size_t nq,
                         std::uint64_t stride, std::uint64_t bytes,
                         std::uint64_t start_ns) {
  if (!enabled()) return;
  Span s;
  std::strncpy(s.name.data(), name, s.name.size() - 1);
  s.category = category;
  s.num_qubits = static_cast<std::uint8_t>(std::min<std::size_t>(nq, 255));
  if (nq > 0) s.q0 = qubits[0];
  if (nq > 1) s.q1 = qubits[1];
  s.stride = stride;
  s.bytes = bytes;
  s.start_ns = start_ns;
  const std::uint64_t end = now_ns();
  s.duration_ns = end > start_ns ? end - start_ns : 0;
  record(std::move(s));
}

void Tracer::record(Span span) {
  if (!enabled()) return;
  ThreadRing& ring = ring_for_this_thread();
  span.thread = ring.thread_index;
  span.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  ring.spans[head % capacity_] = span;
  // Publish after the slot write so a concurrent collect() that observes
  // the new head also observes the stored span.
  ring.head.store(head + 1, std::memory_order_release);
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  for (auto& ring : rings_) ring->head.store(0, std::memory_order_relaxed);
  seq_.store(0, std::memory_order_relaxed);
}

std::vector<Span> Tracer::collect() const {
  std::vector<Span> all;
  {
    std::lock_guard lock(mutex_);
    for (const auto& ring : rings_) {
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      const std::uint64_t kept = std::min<std::uint64_t>(head, capacity_);
      for (std::uint64_t i = head - kept; i < head; ++i)
        all.push_back(ring->spans[i % capacity_]);
    }
  }
  std::sort(all.begin(), all.end(), [](const Span& a, const Span& b) {
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns : a.seq < b.seq;
  });
  return all;
}

std::uint64_t Tracer::total_recorded() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_)
    total += ring->head.load(std::memory_order_acquire);
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard lock(mutex_);
  std::uint64_t lost = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    if (head > capacity_) lost += head - capacity_;
  }
  return lost;
}

void Tracer::write_chrome_json(std::ostream& os) const {
  const std::vector<Span> spans = collect();
  // Timestamps are µs floats; default precision would truncate runs longer
  // than a second to µs granularity or print scientific notation.
  const auto saved_precision = os.precision(15);
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans) {
    if (!first) os << ",";
    first = false;
    // Complete ("X") events; Chrome expects microsecond floats.
    os << "\n{\"name\":\"" << s.name.data() << "\",\"cat\":\""
       << span_category_name(s.category) << "\",\"ph\":\"X\",\"pid\":0,"
       << "\"tid\":" << s.thread << ",\"ts\":"
       << static_cast<double>(s.start_ns) * 1e-3 << ",\"dur\":"
       << static_cast<double>(s.duration_ns) * 1e-3 << ",\"args\":{";
    os << "\"bytes\":" << s.bytes << ",\"stride\":" << s.stride;
    if (s.q0 != Span::kNoQubit) {
      os << ",\"qubits\":[" << s.q0;
      if (s.q1 != Span::kNoQubit) os << "," << s.q1;
      if (s.num_qubits > 2) os << ",\"+" << (s.num_qubits - 2) << "\"";
      os << "]";
    }
    os << "}}";
  }
  os << "\n]}\n";
  os.precision(saved_precision);
}

ScopedSpan::ScopedSpan(const char* name, SpanCategory category)
    : ScopedSpan(name, category, Tracer::global()) {}

ScopedSpan::ScopedSpan(const char* name, SpanCategory category, Tracer& tracer)
    : name_(name), category_(category) {
  if (tracer.enabled()) {
    tracer_ = &tracer;
    start_ns_ = tracer.now_ns();
  }
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ != nullptr)
    tracer_->record_span(name_, category_, nullptr, 0, /*stride=*/0, bytes_,
                         start_ns_);
}

Table span_table(const std::vector<Span>& spans, std::size_t max_rows) {
  Table t("Measured gate spans",
          {"name", "cat", "thread", "start_us", "us", "GB/s"});
  const std::size_t rows = std::min(spans.size(), max_rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const Span& s = spans[i];
    t.add_row({std::string(s.name.data()),
               std::string(span_category_name(s.category)),
               static_cast<std::int64_t>(s.thread),
               static_cast<double>(s.start_ns) * 1e-3,
               static_cast<double>(s.duration_ns) * 1e-3, s.gbps()});
  }
  return t;
}

Table kernel_bandwidth_table(const std::vector<Span>& spans) {
  struct Agg {
    std::size_t count = 0;
    std::uint64_t ns = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<std::pair<std::string, Agg>> aggs;
  for (const Span& s : spans) {
    if (s.category != SpanCategory::Kernel &&
        s.category != SpanCategory::Measure)
      continue;
    const std::string name(s.name.data());
    auto it = std::find_if(aggs.begin(), aggs.end(),
                           [&](const auto& a) { return a.first == name; });
    if (it == aggs.end()) it = aggs.insert(aggs.end(), {name, Agg{}});
    ++it->second.count;
    it->second.ns += s.duration_ns;
    it->second.bytes += s.bytes;
  }
  std::sort(aggs.begin(), aggs.end(), [](const auto& a, const auto& b) {
    return a.second.ns > b.second.ns;
  });
  Table t("Measured bandwidth by kernel",
          {"kernel", "count", "ms", "MB", "GB/s"});
  for (const auto& [name, a] : aggs) {
    t.add_row({name, static_cast<std::int64_t>(a.count),
               static_cast<double>(a.ns) * 1e-6,
               static_cast<double>(a.bytes) * 1e-6,
               a.ns > 0 ? static_cast<double>(a.bytes) /
                              static_cast<double>(a.ns)
                        : 0.0});
  }
  return t;
}

}  // namespace svsim::obs
