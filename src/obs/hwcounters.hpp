// Hardware performance-counter sampling via perf_event_open (Linux).
//
// The paper's analysis attributes kernel throughput to memory behaviour;
// cycles / instructions / last-level-cache misses measured around a circuit
// run let the reproduction check that attribution on real hardware.
// Availability is probed at runtime: on non-Linux builds, in containers
// without CAP_PERFMON, or when perf_event_paranoid forbids it, the scope
// degrades to a no-op and reports `valid == false` — callers never need
// platform #ifdefs.
#pragma once

#include <cstdint>

#include "common/table.hpp"

namespace svsim::obs {

/// One sample of the counter group. `valid` is false when the platform
/// refused the counters (the numeric fields are then zero).
struct HwCounterValues {
  bool valid = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;  ///< LLC misses (perf "cache-misses")

  double ipc() const noexcept {
    return cycles > 0
               ? static_cast<double>(instructions) / static_cast<double>(cycles)
               : 0.0;
  }
};

/// RAII counter scope: counting starts at construction and stops at
/// `stop()` (or destruction). One scope per measured region; scopes do not
/// nest usefully (the kernel multiplexes the underlying events).
class HwCounterScope {
 public:
  HwCounterScope();
  ~HwCounterScope();

  HwCounterScope(const HwCounterScope&) = delete;
  HwCounterScope& operator=(const HwCounterScope&) = delete;

  /// Stops counting and returns the sample. Idempotent — later calls
  /// return the same values.
  HwCounterValues stop();

  /// True if this process can open the counter group at all (probed once).
  static bool available();

 private:
  int fd_cycles_ = -1;
  int fd_instructions_ = -1;
  int fd_misses_ = -1;
  bool stopped_ = false;
  HwCounterValues result_;
};

/// Single-row rendering (dashes when !valid).
Table hw_counter_table(const HwCounterValues& values);

}  // namespace svsim::obs
