#include "obs/hwcounters.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace svsim::obs {

#if defined(__linux__)

namespace {

int open_counter(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // user-space only; also needs less privilege
  attr.exclude_hv = 1;
  attr.inherit = 1;  // follow the pool's worker threads
  // pid=0, cpu=-1: this process (all threads via inherit), any CPU.
  const long fd =
      syscall(SYS_perf_event_open, &attr, 0, -1, /*group_fd=*/-1, /*flags=*/0);
  return static_cast<int>(fd);
}

std::uint64_t read_counter(int fd) {
  if (fd < 0) return 0;
  std::uint64_t value = 0;
  if (read(fd, &value, sizeof(value)) != sizeof(value)) return 0;
  return value;
}

}  // namespace

HwCounterScope::HwCounterScope() {
  fd_cycles_ = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  if (fd_cycles_ < 0) return;  // platform refused; stay a no-op
  fd_instructions_ =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  fd_misses_ = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
  for (int fd : {fd_cycles_, fd_instructions_, fd_misses_}) {
    if (fd < 0) continue;
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

HwCounterScope::~HwCounterScope() {
  stop();
  for (int fd : {fd_cycles_, fd_instructions_, fd_misses_})
    if (fd >= 0) close(fd);
}

HwCounterValues HwCounterScope::stop() {
  if (stopped_) return result_;
  stopped_ = true;
  for (int fd : {fd_cycles_, fd_instructions_, fd_misses_})
    if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  if (fd_cycles_ >= 0) {
    result_.valid = true;
    result_.cycles = read_counter(fd_cycles_);
    result_.instructions = read_counter(fd_instructions_);
    result_.cache_misses = read_counter(fd_misses_);
  }
  return result_;
}

bool HwCounterScope::available() {
  static const bool ok = [] {
    const int fd = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
    if (fd < 0) return false;
    close(fd);
    return true;
  }();
  return ok;
}

#else  // !__linux__

HwCounterScope::HwCounterScope() = default;

HwCounterScope::~HwCounterScope() = default;

HwCounterValues HwCounterScope::stop() {
  stopped_ = true;
  return result_;
}

bool HwCounterScope::available() { return false; }

#endif

Table hw_counter_table(const HwCounterValues& v) {
  Table t("Hardware counters",
          {"valid", "cycles", "instructions", "IPC", "LLC_misses"});
  if (v.valid) {
    t.add_row({std::string("yes"), static_cast<std::int64_t>(v.cycles),
               static_cast<std::int64_t>(v.instructions), v.ipc(),
               static_cast<std::int64_t>(v.cache_misses)});
  } else {
    t.add_row({std::string("no"), std::string("-"), std::string("-"),
               std::string("-"), std::string("-")});
  }
  return t;
}

}  // namespace svsim::obs
