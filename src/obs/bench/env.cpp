#include "obs/bench/env.hpp"

#include <unistd.h>

#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>
#include <thread>

#include <atomic>

#include "common/threading.hpp"
#include "machine/cpu_features.hpp"

#ifndef SVSIM_BENCH_BUILD_TYPE
#define SVSIM_BENCH_BUILD_TYPE "unknown"
#endif
#ifndef SVSIM_BENCH_CXX_FLAGS
#define SVSIM_BENCH_CXX_FLAGS ""
#endif

namespace svsim::obs::bench {

namespace {

std::string read_first_line(const char* path) {
  std::ifstream in(path);
  std::string line;
  if (in && std::getline(in, line)) return line;
  return {};
}

std::string compiler_id() {
#if defined(__clang__)
  return "Clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "GNU " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

}  // namespace

double probe_clock_ghz() {
  std::ifstream in("/proc/cpuinfo");
  if (!in) return 0.0;
  double best_mhz = 0.0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("cpu MHz", 0) != 0) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    const double mhz = std::strtod(line.c_str() + colon + 1, nullptr);
    if (mhz > best_mhz) best_mhz = mhz;
  }
  return best_mhz * 1e-3;
}

bool parse_host_spec_override(const std::string& text, unsigned& cores,
                              double& ghz, double& gbps) {
  if (text.empty()) return false;
  std::istringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = item.substr(0, eq);
    char* end = nullptr;
    const double value = std::strtod(item.c_str() + eq + 1, &end);
    if (end == item.c_str() + eq + 1 || value <= 0.0) return false;
    if (key == "cores")
      cores = static_cast<unsigned>(value);
    else if (key == "ghz")
      ghz = value;
    else if (key == "gbps")
      gbps = value;
    else
      return false;
  }
  return true;
}

namespace {

struct HostSpecParams {
  unsigned cores;
  double ghz;
  double gbps;
  std::string clock_source;
  std::string spec_source;
};

HostSpecParams resolve_host_spec() {
  HostSpecParams p;
  p.cores = ThreadPool::global().num_threads();
  p.ghz = 0.0;
  p.gbps = 0.0;
  p.spec_source = "default";

  const double probed = probe_clock_ghz();
  if (probed > 0.0) {
    p.ghz = probed;
    p.clock_source = "cpuinfo";
  } else {
    p.ghz = 2.1;  // the historical conservative guess
    p.clock_source = "fallback";
  }

  unsigned env_cores = 0;
  double env_ghz = 0.0, env_gbps = 0.0;
  if (const char* spec = std::getenv("SVSIM_HOST_SPEC")) {
    if (parse_host_spec_override(spec, env_cores, env_ghz, env_gbps)) {
      if (env_cores > 0) p.cores = env_cores;
      if (env_ghz > 0.0) {
        p.ghz = env_ghz;
        p.clock_source = "env";
      }
      if (env_gbps > 0.0) p.gbps = env_gbps;
      if (env_cores > 0 || env_ghz > 0.0 || env_gbps > 0.0)
        p.spec_source = "env";
    }
  }
  if (p.gbps <= 0.0) p.gbps = 8.0 * p.cores;
  return p;
}

std::atomic<SimdEnvProvider> g_simd_provider{nullptr};

}  // namespace

void set_simd_env_provider(SimdEnvProvider provider) {
  g_simd_provider.store(provider, std::memory_order_release);
}

machine::MachineSpec host_spec() {
  const HostSpecParams p = resolve_host_spec();
  return machine::MachineSpec::generic_host(p.cores, p.ghz, p.gbps);
}

BenchEnv capture_env() {
  BenchEnv env;

  char host[256] = {};
  if (gethostname(host, sizeof host - 1) == 0) env.hostname = host;

  env.hw_concurrency = std::thread::hardware_concurrency();
  env.threads = ThreadPool::global().num_threads();
  env.compiler = compiler_id();
  env.build_type = SVSIM_BENCH_BUILD_TYPE;
  env.flags = SVSIM_BENCH_CXX_FLAGS;

  env.governor = read_first_line(
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  if (env.governor.empty()) env.governor = "unknown";

  const HostSpecParams p = resolve_host_spec();
  env.clock_ghz = p.ghz;
  env.clock_source = p.clock_source;
  env.stream_gbps = p.gbps;
  env.spec_source = p.spec_source;

  env.cpu_isa = machine::detected_isa_name();
  if (const SimdEnvProvider provider =
          g_simd_provider.load(std::memory_order_acquire)) {
    const SimdEnvInfo info = provider();
    env.simd_backend = info.backend;
    env.simd_vector_bits = info.vector_bits;
  } else {
    env.simd_backend = "unset";
  }

  std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  env.timestamp_utc = buf;
  return env;
}

}  // namespace svsim::obs::bench
