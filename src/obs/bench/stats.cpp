#include "obs/bench/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/timer.hpp"

namespace svsim::obs::bench {

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

namespace {

/// Leading samples still warming caches/predictors run slow; strip them
/// while the front sample clearly exceeds the median of what follows.
/// At most a quarter of the samples may be classified as warmup, so a
/// genuinely noisy series is not eaten from the front.
std::size_t detect_warmup(const std::vector<double>& s, double tolerance) {
  const std::size_t budget = s.size() / 4;
  std::size_t w = 0;
  while (w < budget) {
    const std::vector<double> tail(s.begin() + static_cast<std::ptrdiff_t>(w) + 1,
                                   s.end());
    const double med = median_of(tail);
    if (med <= 0.0 || s[w] <= med * (1.0 + tolerance)) break;
    ++w;
  }
  return w;
}

}  // namespace

SampleStats summarize(std::vector<double> raw, const StatConfig& config) {
  SampleStats st;
  if (raw.empty()) return st;

  const std::size_t warmup = detect_warmup(raw, config.warmup_tolerance);
  st.warmup_reps = static_cast<int>(warmup);
  std::vector<double> kept(raw.begin() + static_cast<std::ptrdiff_t>(warmup),
                           raw.end());

  // MAD fence: 1.4826 x MAD estimates sigma for normal noise, so the fence
  // is roughly k-sigma but immune to the outliers it is hunting.
  const double med0 = median_of(kept);
  std::vector<double> dev;
  dev.reserve(kept.size());
  for (double x : kept) dev.push_back(std::abs(x - med0));
  const double mad0 = median_of(dev);
  if (mad0 > 0.0 && kept.size() >= 4) {
    const double fence = config.outlier_mad_k * 1.4826 * mad0;
    std::vector<double> in;
    in.reserve(kept.size());
    for (double x : kept)
      if (std::abs(x - med0) <= fence) in.push_back(x);
    st.outliers_rejected = static_cast<int>(kept.size() - in.size());
    kept = std::move(in);
  }

  st.samples = std::move(kept);
  const auto n = static_cast<double>(st.samples.size());
  if (st.samples.empty()) return st;

  st.min = *std::min_element(st.samples.begin(), st.samples.end());
  st.max = *std::max_element(st.samples.begin(), st.samples.end());
  double sum = 0.0;
  for (double x : st.samples) sum += x;
  st.mean = sum / n;
  double ss = 0.0;
  for (double x : st.samples) ss += (x - st.mean) * (x - st.mean);
  st.stddev = n > 1.0 ? std::sqrt(ss / (n - 1.0)) : 0.0;
  st.median = median_of(st.samples);
  dev.clear();
  for (double x : st.samples) dev.push_back(std::abs(x - st.median));
  st.mad = median_of(dev);
  st.ci95_half = n > 0.0 ? 1.96 * st.stddev / std::sqrt(n) : 0.0;
  st.rel_ci95 = st.median > 0.0 ? st.ci95_half / st.median : 0.0;
  st.converged = st.rel_ci95 <= config.target_rel_ci;
  return st;
}

SampleStats measure(const std::function<void()>& fn,
                    const StatConfig& config) {
  fn();  // priming rep: touches memory, faults pages; never recorded

  std::vector<double> raw;
  raw.reserve(static_cast<std::size_t>(std::max(config.min_reps, 0)) + 8);
  Timer budget;
  while (true) {
    Timer rep;
    fn();
    raw.push_back(rep.seconds());
    const int n = static_cast<int>(raw.size());
    if (n >= config.max_reps) break;
    if (n >= config.min_reps) {
      if (budget.seconds() >= config.max_seconds) break;
      // Cheap convergence probe on the raw series; the final verdict uses
      // the cleaned series in summarize().
      const SampleStats probe = summarize(raw, config);
      if (probe.converged && probe.reps() >= config.min_reps) break;
    }
  }
  const double spent = budget.seconds();
  SampleStats st = summarize(std::move(raw), config);
  st.total_seconds = spent;
  return st;
}

}  // namespace svsim::obs::bench
