// Statistical engine for the benchmark telemetry harness.
//
// `time_mean_seconds` (common/timer.hpp) reports a bare mean with no
// variance, so a regression gate cannot tell signal from noise. This engine
// measures with adaptive repetition — repeat until the 95% confidence
// interval is tight relative to the median or the time budget runs out —
// and summarizes with noise-robust statistics: median and MAD, post-hoc
// warmup detection (leading repetitions still priming caches/branch
// predictors are excluded), and MAD-based outlier rejection. Per-rep
// samples are retained so downstream tools (bench_compare.py) can apply
// their own thresholds.
#pragma once

#include <functional>
#include <vector>

namespace svsim::obs::bench {

/// Knobs of the adaptive measurement loop. `smoke()` trades precision for
/// speed (ctest tier); `full()` is the default for recorded results.
struct StatConfig {
  int min_reps = 5;             ///< never stop before this many samples
  int max_reps = 200;           ///< hard repetition cap
  double target_rel_ci = 0.03;  ///< stop when ci95_half/median <= this
  double max_seconds = 0.5;     ///< sampling time budget (excl. priming rep)
  double warmup_tolerance = 0.25;  ///< leading rep is warmup if it exceeds
                                   ///< (1+tol) x median of the remainder
  double outlier_mad_k = 8.0;   ///< reject |x-median| > k x scaled MAD

  static StatConfig full() { return {}; }
  static StatConfig smoke() {
    StatConfig c;
    c.min_reps = 5;
    c.max_reps = 25;
    c.target_rel_ci = 0.10;
    c.max_seconds = 0.05;
    return c;
  }
};

/// Summary of one measurement. `samples` holds the retained (post-warmup,
/// non-outlier) per-rep seconds; every derived statistic is over those.
struct SampleStats {
  std::vector<double> samples;
  int warmup_reps = 0;        ///< leading reps classified as warmup
  int outliers_rejected = 0;  ///< samples beyond the MAD fence
  bool converged = false;     ///< hit target_rel_ci within the budget
  double total_seconds = 0;   ///< wall time spent sampling

  double mean = 0;
  double median = 0;
  double min = 0;
  double max = 0;
  double stddev = 0;    ///< sample standard deviation
  double mad = 0;       ///< median absolute deviation (unscaled)
  double ci95_half = 0; ///< 95% CI half-width of the mean (normal approx.)
  double rel_ci95 = 0;  ///< ci95_half / median (0 when median is 0)

  int reps() const noexcept { return static_cast<int>(samples.size()); }
};

/// Median of `v` (by copy; empty input yields 0).
double median_of(std::vector<double> v);

/// Classifies warmup and outliers in raw per-rep seconds and computes the
/// summary statistics. Exposed separately from `measure` for testability.
SampleStats summarize(std::vector<double> raw_samples,
                      const StatConfig& config);

/// Runs `fn` once to prime memory, then samples it adaptively under
/// `config` and returns the summary.
SampleStats measure(const std::function<void()>& fn,
                    const StatConfig& config);

}  // namespace svsim::obs::bench
