// Structured benchmark records and their JSON serialization.
//
// One `BenchRecord` is one number the harness stands behind: a measured
// statistic (with its full sample set) or a model prediction, identified by
// a stable ID that baselines and the regression gate key on. Records are
// emitted two ways: one JSONL line per benchmark case (append-friendly,
// stream-processable) and one aggregate `BENCH_results.json` keyed by
// record ID (what `scripts/bench_compare.py` diffs against a baseline).
// `scripts/check_bench_schema.py` validates both renderings in ctest.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/bench/env.hpp"
#include "obs/bench/stats.hpp"

namespace svsim::obs::bench {

/// Optional join of a measured record against the runtime observability
/// substrate: metrics-registry byte counts, tracer spans, and hardware
/// counters sampled around one instrumented repetition.
struct BenchAttribution {
  bool present = false;

  double bytes_per_rep = 0;        ///< sv.bytes_streamed delta (0 = n/a)
  double kernel_spans_per_rep = 0; ///< tracer Kernel/Measure spans seen
  double span_bytes_per_rep = 0;   ///< bytes estimate summed over spans
  bool trace_partial = false;      ///< spans were dropped; join unreliable
  std::uint64_t dropped_spans = 0;

  bool hw_valid = false;  ///< hardware counters were available
  double cycles_per_rep = 0;
  double instructions_per_rep = 0;
  double llc_misses_per_rep = 0;

  double achieved_gbps = 0;  ///< bytes_per_rep / measured median
  double model_gbps = 0;     ///< host bandwidth-model expectation
};

/// One benchmark number. `kind` is "measured" (value = median seconds or a
/// derived unit, with stats retained), "model" (an analytical prediction,
/// deterministic run to run), or "derived" (computed from measured values —
/// e.g. a speedup ratio of two medians — so it inherits measurement noise
/// and regression gates must give it the measured margin, not exact
/// equality). Measured records may carry the model's prediction of the
/// same quantity in `model_value`, making model-vs-measured drift
/// queryable directly from the results file.
struct BenchRecord {
  std::string id;       ///< stable: "<case>.<sub-id>"
  std::string case_id;
  std::string kind;     ///< "measured" | "model" | "derived"
  std::string unit;     ///< "s", "GB/s", "GFLOP/s", ...
  double value = 0;

  bool has_stats = false;
  SampleStats stats;

  bool has_model = false;
  double model_value = 0;
  std::string model_machine;  ///< machine spec the model number is for

  BenchAttribution attr;
};

/// One executed case: its records plus the rendered tables (the
/// human-readable view kept in bench_output.txt).
struct CaseResult {
  std::string id;
  std::string title;
  std::string description;
  bool failed = false;
  std::string error;
  std::vector<BenchRecord> records;
  std::vector<std::string> rendered_tables;
  double wall_seconds = 0;
};

/// JSON-escapes `s` (control characters, quotes, backslashes).
std::string json_escape(const std::string& s);

/// Writes one record as a JSON object (no trailing newline).
void write_record_json(std::ostream& os, const BenchRecord& r);

/// Writes the environment as a JSON object.
void write_env_json(std::ostream& os, const BenchEnv& env);

/// Aggregate results document: schema_version, mode, env, cases index,
/// and every record keyed by its stable ID.
void write_results_json(std::ostream& os, const BenchEnv& env,
                        const std::string& mode,
                        const std::vector<CaseResult>& cases);

/// One JSONL line per case: {"case":..,"title":..,"env":{..},"records":[..]}.
void write_results_jsonl(std::ostream& os, const BenchEnv& env,
                         const std::string& mode,
                         const std::vector<CaseResult>& cases);

}  // namespace svsim::obs::bench
