// Build-host environment capture for benchmark records.
//
// A measured number is only comparable to a baseline taken under the same
// conditions, so every emitted record set is stamped with where and how it
// was produced: core counts, compiler and flags, build type, the cpufreq
// governor when readable, and the host machine description the model
// columns were computed against. The host description itself is probed
// (`/proc/cpuinfo` clock) instead of hardcoded, and can be pinned exactly
// via the `SVSIM_HOST_SPEC` environment variable for reproducible runs:
//
//   SVSIM_HOST_SPEC="cores=16,ghz=2.5,gbps=64"   (any subset of keys)
#pragma once

#include <string>

#include "machine/machine_spec.hpp"

namespace svsim::obs::bench {

/// Everything we can cheaply learn about the machine and build that
/// produced a set of benchmark records.
struct BenchEnv {
  std::string hostname;
  unsigned hw_concurrency = 0;  ///< std::thread::hardware_concurrency()
  unsigned threads = 0;         ///< global ThreadPool size actually used
  std::string compiler;         ///< e.g. "GNU 12.2.0"
  std::string build_type;       ///< CMake build type baked in at compile time
  std::string flags;            ///< optimization-relevant compile flags
  std::string governor;         ///< cpufreq governor, "unknown" if unreadable
  double clock_ghz = 0;         ///< clock used for the host machine spec
  std::string clock_source;     ///< "env" | "cpuinfo" | "fallback"
  double stream_gbps = 0;       ///< STREAM estimate used for the host spec
  std::string spec_source;      ///< "env" if SVSIM_HOST_SPEC overrode anything
  std::string cpu_isa;          ///< widest detected SIMD extension of the CPU
  std::string simd_backend;     ///< active kernel backend ("unset" if none yet)
  unsigned simd_vector_bits = 0;  ///< backend vector width; 0 = scalar
  std::string timestamp_utc;    ///< ISO-8601, time of capture
};

/// Captures the environment now (cheap; reads two /proc//sys files).
BenchEnv capture_env();

/// The SIMD kernel backend lives above this library (sv/simd), so runners
/// that link it install a provider; capture_env falls back to
/// backend "unset" / 0 bits when none is registered. The CPU ISA itself
/// is always probed (machine/cpu_features).
struct SimdEnvInfo {
  std::string backend;
  unsigned vector_bits = 0;
};
using SimdEnvProvider = SimdEnvInfo (*)();
void set_simd_env_provider(SimdEnvProvider provider);

/// Highest "cpu MHz" in /proc/cpuinfo as GHz, or 0 when unreadable
/// (non-Linux, masked /proc). Exposed for tests.
double probe_clock_ghz();

/// The machine description benchmarks compare the host against. Cores
/// default to the global thread pool, the clock to the probed value, and
/// STREAM to a conservative 8 GB/s per core; `SVSIM_HOST_SPEC` overrides
/// any subset (see header comment). Falls back to 2.1 GHz when nothing is
/// known — the pre-harness hardcoded guess.
machine::MachineSpec host_spec();

/// Parses a "cores=..,ghz=..,gbps=.." override string into the given
/// fields (unmentioned keys untouched). Returns false on malformed input.
/// Exposed for tests.
bool parse_host_spec_override(const std::string& text, unsigned& cores,
                              double& ghz, double& gbps);

}  // namespace svsim::obs::bench
