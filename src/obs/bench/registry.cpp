#include "obs/bench/registry.hpp"

#include <algorithm>
#include <ostream>

#include "common/timer.hpp"
#include "machine/bandwidth_model.hpp"
#include "machine/exec_config.hpp"
#include "obs/hwcounters.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace svsim::obs::bench {

namespace {

std::vector<BenchCase>& registry() {
  static std::vector<BenchCase> cases;
  return cases;
}

/// `case_id` + '.' + `sub` without operator+ chains (GCC 12's -Wrestrict
/// false-positives on those under -O3).
std::string joined_id(const std::string& case_id, const std::string& sub) {
  std::string id;
  id.reserve(case_id.size() + 1 + sub.size());
  id.append(case_id);
  id.push_back('.');
  id.append(sub);
  return id;
}

}  // namespace

bool register_case(BenchCase c) {
  registry().push_back(std::move(c));
  return true;
}

std::vector<BenchCase> all_cases() {
  std::vector<BenchCase> cases = registry();
  std::sort(cases.begin(), cases.end(),
            [](const BenchCase& a, const BenchCase& b) { return a.id < b.id; });
  return cases;
}

BenchContext::BenchContext(const BenchCase& c, StatConfig config, bool smoke,
                           bool attribute, std::ostream* table_out)
    : case_(c),
      config_(config),
      smoke_(smoke),
      attribute_(attribute),
      table_out_(table_out) {}

SampleStats BenchContext::measure(const std::string& sub_id,
                                  const std::function<void()>& fn,
                                  const MeasureOpts& opts) {
  StatConfig cfg = config_;
  if (opts.min_reps > 0) cfg.min_reps = opts.min_reps;
  if (opts.max_reps > 0) cfg.max_reps = opts.max_reps;
  if (opts.max_seconds > 0) cfg.max_seconds = opts.max_seconds;
  SampleStats stats = bench::measure(fn, cfg);

  BenchRecord r;
  r.id = joined_id(case_.id, sub_id);
  r.case_id = case_.id;
  r.kind = "measured";
  r.unit = "s";
  r.value = stats.median;
  r.has_stats = true;
  r.stats = stats;
  if (opts.model_seconds > 0.0) {
    r.has_model = true;
    r.model_value = opts.model_seconds;
    r.model_machine = opts.model_machine;
  }

  if (attribute_ && opts.attribute) {
    // One extra instrumented repetition, outside the timed samples so the
    // instrumentation itself never contaminates the statistics.
    auto& registry_ = MetricsRegistry::global();
    const std::uint64_t bytes_before =
        registry_.counter("sv.bytes_streamed").value();
    Tracer& tracer = Tracer::global();
    const bool was_enabled = tracer.enabled();
    tracer.clear();
    tracer.enable();
    // Aggregate-mode profiler: cases that drive sv::run_plan feed per-phase
    // totals into ProfileRegistry::global() during the instrumented rep
    // (retain_runs=false keeps it allocation-free). Skipped if the caller
    // already installed one — a Profiler is process-global.
    ProfilerOptions prof_opts;
    prof_opts.retain_runs = false;
    Profiler profiler(prof_opts);
    const bool own_profiler = Profiler::current() == nullptr;
    if (own_profiler) profiler.install();
    HwCounterScope counters;
    fn();
    const HwCounterValues hw = counters.stop();
    if (own_profiler) profiler.uninstall();
    tracer.disable();
    const std::uint64_t bytes_after =
        registry_.counter("sv.bytes_streamed").value();

    BenchAttribution& a = r.attr;
    a.present = true;
    a.bytes_per_rep = static_cast<double>(bytes_after - bytes_before);
    for (const Span& s : tracer.collect()) {
      if (s.category == SpanCategory::Kernel ||
          s.category == SpanCategory::Measure) {
        a.kernel_spans_per_rep += 1.0;
        a.span_bytes_per_rep += static_cast<double>(s.bytes);
      }
    }
    a.dropped_spans = tracer.dropped();
    a.trace_partial = a.dropped_spans > 0;
    a.hw_valid = hw.valid;
    if (hw.valid) {
      a.cycles_per_rep = static_cast<double>(hw.cycles);
      a.instructions_per_rep = static_cast<double>(hw.instructions);
      a.llc_misses_per_rep = static_cast<double>(hw.cache_misses);
    }
    const double bytes =
        a.bytes_per_rep > 0.0 ? a.bytes_per_rep : opts.model_bytes;
    if (bytes > 0.0 && stats.median > 0.0)
      a.achieved_gbps = bytes / stats.median * 1e-9;
    if (opts.model_bytes > 0.0 && opts.model_seconds > 0.0) {
      a.model_gbps = opts.model_bytes / opts.model_seconds * 1e-9;
    } else {
      // No per-gate model supplied: fall back to the host bandwidth
      // model's memory-regime asymptote as the reference line.
      const machine::MachineSpec spec = host_spec();
      const machine::Placement placement =
          machine::place_threads(spec, machine::ExecConfig{});
      a.model_gbps = machine::memory_bandwidth_gbps(spec, placement);
    }
    tracer.clear();
    if (was_enabled) tracer.enable();
  }

  records_.push_back(std::move(r));
  return stats;
}

void BenchContext::model(const std::string& sub_id, double value,
                         const std::string& unit,
                         const std::string& machine) {
  BenchRecord r;
  r.id = joined_id(case_.id, sub_id);
  r.case_id = case_.id;
  r.kind = "model";
  r.unit = unit;
  r.value = value;
  r.model_machine = machine;
  records_.push_back(std::move(r));
}

void BenchContext::derived(const std::string& sub_id, double value,
                           const std::string& unit) {
  BenchRecord r;
  r.id = joined_id(case_.id, sub_id);
  r.case_id = case_.id;
  r.kind = "derived";
  r.unit = unit;
  r.value = value;
  records_.push_back(std::move(r));
}

void BenchContext::record(BenchRecord r) {
  r.id = joined_id(case_.id, r.id);
  r.case_id = case_.id;
  records_.push_back(std::move(r));
}

void BenchContext::table(const Table& t) {
  std::string text = t.to_text();
  if (table_out_ != nullptr) *table_out_ << text << "\n";
  tables_.push_back(std::move(text));
}

CaseResult run_case(const BenchCase& c, const StatConfig& config, bool smoke,
                    bool attribute, std::ostream* table_out) {
  CaseResult result;
  result.id = c.id;
  result.title = c.title;
  result.description = c.description;
  BenchContext ctx(c, config, smoke, attribute, table_out);
  Timer timer;
  try {
    c.fn(ctx);
  } catch (const std::exception& e) {
    result.failed = true;
    result.error = e.what();
  } catch (...) {
    result.failed = true;
    result.error = "unknown exception";
  }
  result.wall_seconds = timer.seconds();
  result.records = ctx.records();
  result.rendered_tables = ctx.rendered_tables();
  return result;
}

}  // namespace svsim::obs::bench
