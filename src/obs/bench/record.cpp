#include "obs/bench/record.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace svsim::obs::bench {

namespace {

/// JSON has no NaN/Inf; clamp to 0 so emitted files always parse.
double finite(double v) { return std::isfinite(v) ? v : 0.0; }

/// Shortest round-trippable rendering ("%.17g" is exact but ugly; %.9g
/// keeps files readable and is far below measurement noise).
void put_number(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", finite(v));
  os << buf;
}

void put_kv(std::ostream& os, const char* key, const std::string& value,
            bool trailing_comma = true) {
  os << '"' << key << "\":\"" << json_escape(value) << '"';
  if (trailing_comma) os << ',';
}

void put_kv(std::ostream& os, const char* key, double value,
            bool trailing_comma = true) {
  os << '"' << key << "\":";
  put_number(os, value);
  if (trailing_comma) os << ',';
}

void put_kv(std::ostream& os, const char* key, std::uint64_t value,
            bool trailing_comma = true) {
  os << '"' << key << "\":" << value;
  if (trailing_comma) os << ',';
}

void put_kv(std::ostream& os, const char* key, int value,
            bool trailing_comma = true) {
  os << '"' << key << "\":" << value;
  if (trailing_comma) os << ',';
}

void put_kv(std::ostream& os, const char* key, bool value,
            bool trailing_comma = true) {
  os << '"' << key << "\":" << (value ? "true" : "false");
  if (trailing_comma) os << ',';
}

void write_stats_json(std::ostream& os, const SampleStats& st) {
  os << '{';
  put_kv(os, "reps", st.reps());
  put_kv(os, "warmup_reps", st.warmup_reps);
  put_kv(os, "outliers_rejected", st.outliers_rejected);
  put_kv(os, "converged", st.converged);
  put_kv(os, "mean", st.mean);
  put_kv(os, "median", st.median);
  put_kv(os, "min", st.min);
  put_kv(os, "max", st.max);
  put_kv(os, "stddev", st.stddev);
  put_kv(os, "mad", st.mad);
  put_kv(os, "ci95", st.ci95_half);
  put_kv(os, "rel_ci95", st.rel_ci95);
  put_kv(os, "total_seconds", st.total_seconds);
  os << "\"samples\":[";
  for (std::size_t i = 0; i < st.samples.size(); ++i) {
    if (i > 0) os << ',';
    put_number(os, st.samples[i]);
  }
  os << "]}";
}

void write_attr_json(std::ostream& os, const BenchAttribution& a) {
  os << '{';
  put_kv(os, "bytes_per_rep", a.bytes_per_rep);
  put_kv(os, "kernel_spans_per_rep", a.kernel_spans_per_rep);
  put_kv(os, "span_bytes_per_rep", a.span_bytes_per_rep);
  put_kv(os, "trace_partial", a.trace_partial);
  put_kv(os, "dropped_spans", a.dropped_spans);
  put_kv(os, "hw_valid", a.hw_valid);
  put_kv(os, "cycles_per_rep", a.cycles_per_rep);
  put_kv(os, "instructions_per_rep", a.instructions_per_rep);
  put_kv(os, "llc_misses_per_rep", a.llc_misses_per_rep);
  put_kv(os, "achieved_gbps", a.achieved_gbps);
  put_kv(os, "model_gbps", a.model_gbps, /*trailing_comma=*/false);
  os << '}';
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void write_record_json(std::ostream& os, const BenchRecord& r) {
  os << '{';
  put_kv(os, "id", r.id);
  put_kv(os, "case", r.case_id);
  put_kv(os, "kind", r.kind);
  put_kv(os, "unit", r.unit);
  put_kv(os, "value", r.value, /*trailing_comma=*/false);
  if (r.has_stats) {
    os << ",\"stats\":";
    write_stats_json(os, r.stats);
  }
  if (r.has_model) {
    os << ",\"model\":{";
    put_kv(os, "value", r.model_value);
    put_kv(os, "machine", r.model_machine, /*trailing_comma=*/false);
    os << '}';
  }
  if (r.attr.present) {
    os << ",\"attr\":";
    write_attr_json(os, r.attr);
  }
  os << '}';
}

void write_env_json(std::ostream& os, const BenchEnv& env) {
  os << '{';
  put_kv(os, "hostname", env.hostname);
  put_kv(os, "hw_concurrency", static_cast<std::uint64_t>(env.hw_concurrency));
  put_kv(os, "threads", static_cast<std::uint64_t>(env.threads));
  put_kv(os, "compiler", env.compiler);
  put_kv(os, "build_type", env.build_type);
  put_kv(os, "flags", env.flags);
  put_kv(os, "governor", env.governor);
  put_kv(os, "clock_ghz", env.clock_ghz);
  put_kv(os, "clock_source", env.clock_source);
  put_kv(os, "stream_gbps", env.stream_gbps);
  put_kv(os, "spec_source", env.spec_source);
  put_kv(os, "cpu_isa", env.cpu_isa);
  put_kv(os, "simd_backend", env.simd_backend);
  put_kv(os, "simd_vector_bits",
         static_cast<std::uint64_t>(env.simd_vector_bits));
  put_kv(os, "timestamp_utc", env.timestamp_utc, /*trailing_comma=*/false);
  os << '}';
}

void write_results_json(std::ostream& os, const BenchEnv& env,
                        const std::string& mode,
                        const std::vector<CaseResult>& cases) {
  os << "{\"schema_version\":1,";
  put_kv(os, "generated_by", std::string("svsim_bench"));
  put_kv(os, "mode", mode);
  os << "\"env\":";
  write_env_json(os, env);
  os << ",\"cases\":{";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    if (i > 0) os << ',';
    os << '"' << json_escape(c.id) << "\":{";
    put_kv(os, "title", c.title);
    put_kv(os, "failed", c.failed);
    put_kv(os, "wall_seconds", c.wall_seconds);
    put_kv(os, "records", static_cast<std::uint64_t>(c.records.size()),
           /*trailing_comma=*/false);
    os << '}';
  }
  os << "},\"records\":{";
  bool first = true;
  for (const CaseResult& c : cases) {
    for (const BenchRecord& r : c.records) {
      if (!first) os << ',';
      first = false;
      os << "\n\"" << json_escape(r.id) << "\":";
      write_record_json(os, r);
    }
  }
  os << "\n}}\n";
}

void write_results_jsonl(std::ostream& os, const BenchEnv& env,
                         const std::string& mode,
                         const std::vector<CaseResult>& cases) {
  for (const CaseResult& c : cases) {
    os << '{';
    put_kv(os, "case", c.id);
    put_kv(os, "title", c.title);
    put_kv(os, "mode", mode);
    put_kv(os, "failed", c.failed);
    put_kv(os, "wall_seconds", c.wall_seconds);
    os << "\"env\":";
    write_env_json(os, env);
    os << ",\"records\":[";
    for (std::size_t i = 0; i < c.records.size(); ++i) {
      if (i > 0) os << ',';
      write_record_json(os, c.records[i]);
    }
    os << "]}\n";
  }
}

}  // namespace svsim::obs::bench
