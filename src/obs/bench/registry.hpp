// Benchmark case registry and execution context.
//
// A benchmark case is a function that reproduces one figure/table of the
// evaluation. Cases self-register at static-initialization time via the
// SVSIM_BENCH macro, so adding a benchmark is adding one translation unit;
// the unified `svsim_bench` runner discovers, filters, and runs them, and
// owns output policy (tables to stdout, records to JSON/JSONL).
//
// Inside a case, `BenchContext` is the only API:
//   ctx.smoke()              — scale the workload down for the ctest tier
//   ctx.measure(id, fn, o)   — adaptive-repetition measurement -> record
//   ctx.model(id, v, unit)   — record an analytical prediction
//   ctx.table(t)             — emit a rendered table (human view)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "obs/bench/record.hpp"
#include "obs/bench/stats.hpp"

namespace svsim::obs::bench {

class BenchContext;

using BenchFn = void (*)(BenchContext&);

/// Registry entry: stable ID (doubles as the record-ID prefix), the
/// paper-facing title, and the case body.
struct BenchCase {
  std::string id;
  std::string title;
  std::string description;
  BenchFn fn = nullptr;
};

/// Registers `c` (called from SVSIM_BENCH macro expansions). Returns true
/// so it can initialize a static flag.
bool register_case(BenchCase c);

/// All registered cases, sorted by ID (registration order is link order,
/// which is not stable across builds).
std::vector<BenchCase> all_cases();

/// Execution context handed to a case body. Collects records and rendered
/// tables; measurement knobs and attribution policy come from the runner.
class BenchContext {
 public:
  /// Per-measurement options supplied by the case.
  struct MeasureOpts {
    double model_seconds = 0;    ///< model-predicted seconds per rep (0 = none)
    double model_bytes = 0;      ///< model-estimated bytes streamed per rep
    std::string model_machine;   ///< spec the model numbers are for
    bool attribute = true;       ///< join obs substrate when runner asks
    // Per-measurement StatConfig overrides (0 = inherit from runner). Used
    // by macro-scale measurements (whole-circuit runs) where the default
    // repetition floor would cost minutes.
    int min_reps = 0;
    int max_reps = 0;
    double max_seconds = 0;
  };

  BenchContext(const BenchCase& c, StatConfig config, bool smoke,
               bool attribute, std::ostream* table_out);

  /// True in the fast ctest tier: cases should shrink register sizes and
  /// sweep points (the stats budget is already reduced).
  bool smoke() const noexcept { return smoke_; }

  const StatConfig& config() const noexcept { return config_; }

  /// Measures `fn` with the statistical engine and appends a "measured"
  /// record `<case>.<sub_id>` (unit: seconds, value: median). When the
  /// runner enabled attribution and `opts.attribute`, one extra
  /// instrumented repetition joins tracer spans, metrics deltas, and
  /// hardware counters into the record.
  SampleStats measure(const std::string& sub_id,
                      const std::function<void()>& fn,
                      const MeasureOpts& opts);
  SampleStats measure(const std::string& sub_id,
                      const std::function<void()>& fn) {
    return measure(sub_id, fn, MeasureOpts{});
  }

  /// Appends a "model" record `<case>.<sub_id>` with an analytical value.
  void model(const std::string& sub_id, double value, const std::string& unit,
             const std::string& machine = "");

  /// Appends a "derived" record: a value computed from measured results
  /// (ratios of medians, per-gate rates, ...). Regression gates compare it
  /// with the measured noise margin rather than exact equality.
  void derived(const std::string& sub_id, double value,
               const std::string& unit);

  /// Appends a fully-custom record (id is prefixed with the case ID).
  void record(BenchRecord r);

  /// Emits a rendered table: printed immediately (when the runner wants
  /// table output) and retained for bench_output.txt.
  void table(const Table& t);

  const std::vector<BenchRecord>& records() const noexcept {
    return records_;
  }
  const std::vector<std::string>& rendered_tables() const noexcept {
    return tables_;
  }

 private:
  const BenchCase& case_;
  StatConfig config_;
  bool smoke_;
  bool attribute_;
  std::ostream* table_out_;  ///< null = quiet
  std::vector<BenchRecord> records_;
  std::vector<std::string> tables_;
};

/// Runs one case under the given policy, capturing failure instead of
/// propagating (one broken case must not kill the whole run).
CaseResult run_case(const BenchCase& c, const StatConfig& config, bool smoke,
                    bool attribute, std::ostream* table_out);

}  // namespace svsim::obs::bench

/// Defines and registers a benchmark case:
///   SVSIM_BENCH(fig1_target_qubit, "Fig. 1", "H bandwidth vs. target") {
///     ctx.measure(...);
///   }
#define SVSIM_BENCH(ident, title_, desc_)                                  \
  static void svsim_bench_body_##ident(::svsim::obs::bench::BenchContext&); \
  [[maybe_unused]] static const bool svsim_bench_reg_##ident =             \
      ::svsim::obs::bench::register_case(                                  \
          {#ident, title_, desc_, &svsim_bench_body_##ident});             \
  static void svsim_bench_body_##ident(                                    \
      [[maybe_unused]] ::svsim::obs::bench::BenchContext& ctx)
