#pragma once

#include <cstdint>

#include "common/threading.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace svsim {

/// Resolved execution configuration carried by an ExecutionContext. Plain
/// numbers rather than layer types: obs sits below sv, so the SIMD ISA is
/// stored as its raw enumerator value (sv/simd pins the correspondence with
/// a static_assert) and precision as the amplitude component width in bytes.
struct ContextConfig {
  /// Raw sv::simd::Isa value of the backend this context expects, or -1 to
  /// use whatever backend is active process-wide.
  int simd_isa = -1;
  /// Amplitude component width: 4 (f32) or 8 (f64).
  unsigned element_bytes = 8;
  /// Per-plan cache budget in bytes; 0 resolves per plan from the machine
  /// spec (sv::plan_cache_budget).
  std::uint64_t cache_budget_bytes = 0;
};

/// Bundles the execution-scoped services the stack used to reach for via
/// process-wide singletons: a metrics registry, a tracer, an optional
/// profiler hook, a ThreadPool slice, and the resolved numeric config.
///
/// A default-constructed context resolves every service to the process-wide
/// singleton (`MetricsRegistry::global()`, `Tracer::global()`,
/// `Profiler::current()`, `ThreadPool::global()`), so call sites that take
/// `const ExecutionContext& ctx = ExecutionContext::global()` behave exactly
/// as before the refactor. Builders override individual services:
///
///   obs::MetricsRegistry my_metrics;
///   ThreadPool my_pool(4);
///   ExecutionContext ctx;
///   ctx.with_metrics(my_metrics).with_pool(my_pool);
///   sv::run_plan(state, plan, {}, ctx);   // counters land in my_metrics
///
/// Contexts are cheap value types (a few pointers); they do not own the
/// services they reference. The caller keeps registries and pools alive for
/// as long as any context pointing at them is in use. Resolution happens at
/// call time, never at first use: nothing downstream may cache a resolved
/// `Counter&` in a function-local static (the stale-handle bug this type
/// exists to eliminate — see tests/test_context.cpp).
class ExecutionContext {
 public:
  ExecutionContext() = default;

  /// Metrics registry counters/gauges/histograms resolve against.
  obs::MetricsRegistry& metrics() const noexcept {
    return metrics_ != nullptr ? *metrics_ : obs::MetricsRegistry::global();
  }

  /// Tracer spans record into.
  obs::Tracer& tracer() const noexcept {
    return tracer_ != nullptr ? *tracer_ : obs::Tracer::global();
  }

  /// Profiler hook, or nullptr when profiling is off. By default this
  /// follows the process-wide installed profiler dynamically (so a
  /// `Profiler::install()` mid-run is observed); `with_profiler` pins an
  /// explicit profiler, and `with_profiler(nullptr)` suppresses profiling
  /// for this context even while one is installed globally.
  obs::Profiler* profiler() const noexcept {
    return follow_installed_profiler_ ? obs::Profiler::current() : profiler_;
  }

  /// ThreadPool amplitude loops fork onto.
  ThreadPool& pool() const noexcept {
    return pool_ != nullptr ? *pool_ : ThreadPool::global();
  }

  const ContextConfig& config() const noexcept { return config_; }

  ExecutionContext& with_metrics(obs::MetricsRegistry& registry) noexcept {
    metrics_ = &registry;
    return *this;
  }
  ExecutionContext& with_tracer(obs::Tracer& tracer) noexcept {
    tracer_ = &tracer;
    return *this;
  }
  ExecutionContext& with_profiler(obs::Profiler* profiler) noexcept {
    follow_installed_profiler_ = false;
    profiler_ = profiler;
    return *this;
  }
  ExecutionContext& with_pool(ThreadPool& pool) noexcept {
    pool_ = &pool;
    return *this;
  }
  ExecutionContext& with_config(const ContextConfig& config) noexcept {
    config_ = config;
    return *this;
  }

  /// The process-default context: every service resolves to the singleton.
  static const ExecutionContext& global() noexcept;

 private:
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  bool follow_installed_profiler_ = true;
  ThreadPool* pool_ = nullptr;
  ContextConfig config_;
};

}  // namespace svsim
