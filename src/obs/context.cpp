#include "obs/context.hpp"

namespace svsim {

const ExecutionContext& ExecutionContext::global() noexcept {
  // Default-constructed: every accessor falls through to the process-wide
  // singleton. Immutable, so safe to share across threads. The referenced
  // singletons are lazily created on first use by their own accessors; this
  // object holds only null pointers until then.
  static const ExecutionContext ctx;
  return ctx;
}

}  // namespace svsim
