#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace svsim::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  require(std::is_sorted(bounds_.begin(), bounds_.end()) &&
              std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                  bounds_.end(),
          "Histogram: bucket bounds must be strictly increasing");
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> (C++20); relaxed is fine — metrics are
  // statistical, not synchronizing.
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  SVSIM_ASSERT(i < buckets_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {

/// "≤1 ≤3 >6" style label for histogram bucket i.
std::string bucket_label(const std::vector<double>& bounds, std::size_t i) {
  std::ostringstream os;
  if (i < bounds.size())
    os << "le_" << bounds[i];
  else
    os << "gt_" << bounds.back();
  return os.str();
}

}  // namespace

Table MetricsRegistry::table() const {
  std::lock_guard lock(mutex_);
  Table t("Metrics", {"name", "value"});
  for (const auto& [name, c] : counters_)
    t.add_row({name, static_cast<std::int64_t>(c->value())});
  for (const auto& [name, g] : gauges_) t.add_row({name, g->value()});
  for (const auto& [name, h] : histograms_) {
    t.add_row({name + ".count", static_cast<std::int64_t>(h->count())});
    t.add_row({name + ".mean", h->mean()});
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      if (h->bucket_count(i) == 0) continue;
      t.add_row({name + "." + bucket_label(h->bounds(), i),
                 static_cast<std::int64_t>(h->bucket_count(i))});
    }
  }
  return t;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard lock(mutex_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\"" << name << "\":" << c->value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\"" << name << "\":" << g->value();
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\"" << name << "\":{\"count\":" << h->count()
       << ",\"sum\":" << h->sum() << ",\"buckets\":[";
    for (std::size_t i = 0; i <= h->bounds().size(); ++i)
      os << (i > 0 ? "," : "") << h->bucket_count(i);
    os << "]}";
    first = false;
  }
  os << "}}\n";
}

}  // namespace svsim::obs
