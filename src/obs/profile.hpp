// Plan-phase profiler: measured per-phase records for ExecutionPlan runs.
//
// The tracer (obs/trace.hpp) answers "what did each gate do"; this profiler
// answers "where did the run's time go" at the granularity the rest of the
// stack reasons in — the plan phases (LocalSweep / DenseGate / Exchange /
// MeasureFlush) that sv::run_plan executes, perf::cost_plan prices, and
// dist::time_plan wires. The executor records one PhaseSample per executed
// phase (wall time, bytes, gate count, thread occupancy, optional
// perf_event counters, tracer-drop delta); the perf layer joins those
// samples against the model (perf/profile_report.hpp) — the join cannot
// live here because obs sits below sv/perf/machine in the layering.
//
// Collection is opt-in and cheap when off: the executors check one relaxed
// atomic pointer per run. A Profiler aggregates into the process-wide
// ProfileRegistry as it records, so long-lived processes can dump
// OpenMetrics-style totals without retaining per-run samples.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "common/table.hpp"
#include "obs/hwcounters.hpp"
#include "obs/trace.hpp"

namespace svsim::obs {

/// Phase vocabulary mirror of sv::PhaseKind (obs cannot include sv). The
/// numeric values and names are pinned by the plan IR; test_profile.cpp
/// asserts the two tables agree.
enum : std::uint8_t {
  kProfilePhaseLocalSweep = 0,
  kProfilePhaseDenseGate = 1,
  kProfilePhaseExchange = 2,
  kProfilePhaseMeasureFlush = 3,
  kProfilePhaseKinds = 4,
};

/// Stable lowercase phase name ("local_sweep", ...); "?" for out-of-range.
const char* profile_phase_name(std::uint8_t kind);

/// One executed plan phase, as measured by the executor.
struct PhaseSample {
  std::uint32_t index = 0;        ///< position in ExecutionPlan::phases
  std::uint8_t kind = 0;          ///< kProfilePhase* value
  std::uint32_t gates = 0;        ///< gates applied (sweep depth k for sweeps)
  std::uint32_t hops = 0;         ///< Exchange: pairwise hops in the window
  std::uint32_t threads = 0;      ///< pool workers available to the phase
  std::uint64_t bytes = 0;        ///< estimated bytes streamed locally
  std::uint64_t start_ns = 0;     ///< tracer-epoch nanoseconds
  std::uint64_t duration_ns = 0;
  std::uint64_t dropped_spans = 0;  ///< tracer ring drops during this phase
  HwCounterValues hw;               ///< valid only when sampling was on
  /// Exchange: simulated per-hop wire seconds (dist::time_plan feeds this
  /// via Profiler::annotate_exchange; empty until a timing model ran).
  std::vector<double> sim_hop_seconds;

  double seconds() const noexcept {
    return static_cast<double>(duration_ns) * 1e-9;
  }
  /// Achieved local bandwidth, GB/s (0 if instantaneous).
  double gbps() const noexcept {
    return duration_ns > 0
               ? static_cast<double>(bytes) / static_cast<double>(duration_ns)
               : 0.0;
  }
  double sim_exchange_seconds() const noexcept {
    double total = 0.0;
    for (double s : sim_hop_seconds) total += s;
    return total;
  }
};

/// One profiled sv::run_plan execution.
struct RunProfile {
  unsigned num_qubits = 0;
  unsigned node_qubits = 0;
  unsigned local_qubits = 0;
  unsigned block_qubits = 0;
  unsigned threads = 0;           ///< worker-pool width for the run
  std::size_t phases_planned = 0; ///< ExecutionPlan::phases.size()
  std::uint64_t start_ns = 0;     ///< tracer-epoch nanoseconds
  std::uint64_t duration_ns = 0;
  /// True when any tracer ring overflowed mid-run: per-span data is
  /// incomplete, though the phase samples themselves are exact.
  bool partial = false;
  std::vector<PhaseSample> phases;

  double seconds() const noexcept {
    return static_cast<double>(duration_ns) * 1e-9;
  }
};

struct ProfilerOptions {
  /// Keep per-run samples (up to max_runs). Aggregate-only profilers
  /// (retain_runs = false) still feed ProfileRegistry::global().
  bool retain_runs = true;
  std::size_t max_runs = 64;
  /// Sample perf_event hardware counters around every phase (when the
  /// platform allows; see obs/hwcounters.hpp).
  bool hw_counters = false;
};

/// Records plan-phase samples for every sv::run_plan executed while
/// installed. Exactly one profiler can be installed at a time; executors
/// check `Profiler::current()` (one relaxed load) and skip all bookkeeping
/// when it is null.
///
/// Typical use:
///   obs::Profiler profiler;
///   profiler.install();
///   sim.run_plan(state, plan);          // emits one RunProfile
///   dist::time_plan(plan, m, cfg, net); // annotates Exchange wire time
///   profiler.uninstall();
///   use profiler.runs()...
class Profiler {
 public:
  explicit Profiler(ProfilerOptions options = {});
  ~Profiler();  ///< uninstalls if still installed

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// The installed profiler, or nullptr. Relaxed: the hot-path guard.
  static Profiler* current() noexcept {
    return current_.load(std::memory_order_acquire);
  }

  /// Makes this profiler the process-current one; throws if another
  /// profiler is already installed.
  void install();
  /// Removes this profiler if it is the current one (no-op otherwise).
  void uninstall() noexcept;
  bool installed() const noexcept { return current() == this; }

  const ProfilerOptions& options() const noexcept { return options_; }
  bool hw_counters() const noexcept { return options_.hw_counters; }

  /// Nanoseconds on the global tracer's clock — phase samples share the
  /// tracer epoch so the Chrome overlay's lanes line up with gate spans.
  std::uint64_t now_ns() const noexcept;

  // --- executor-facing API (sv::run_plan) ---------------------------------
  /// Opens a run; `meta.phases` is ignored (samples arrive via
  /// record_phase). Nested runs are not supported: a begin while a run is
  /// open closes the open run first.
  void begin_run(const RunProfile& meta);
  void record_phase(PhaseSample sample);
  /// Closes the open run. `partial` marks tracer-ring overflow mid-run.
  void end_run(std::uint64_t duration_ns, bool partial);

  // --- model-facing API (dist::time_plan) ---------------------------------
  /// Attaches simulated wire seconds to Exchange phase `phase_index` of the
  /// most recent run (open or closed). No-op when no run matches.
  void annotate_exchange(std::uint32_t phase_index,
                         const std::vector<double>& hop_seconds);

  /// Completed runs, oldest first (empty when retain_runs is false).
  std::vector<RunProfile> runs() const;
  /// Completed runs observed, including ones dropped beyond max_runs.
  std::uint64_t runs_recorded() const noexcept {
    return runs_recorded_.load(std::memory_order_relaxed);
  }
  void clear();

 private:
  void close_open_run_locked(std::uint64_t duration_ns, bool partial);

  static std::atomic<Profiler*> current_;

  const ProfilerOptions options_;
  std::atomic<std::uint64_t> runs_recorded_{0};

  mutable std::mutex mutex_;
  std::vector<RunProfile> runs_;
  RunProfile open_run_;
  bool run_open_ = false;
};

/// Process-wide phase aggregates: totals per phase kind plus run counts.
/// Fed by every Profiler as it records; survives profiler teardown, so
/// long-lived processes (serve mode, bench loops) can report cumulative
/// attribution cheaply.
class ProfileRegistry {
 public:
  struct KindTotals {
    std::uint64_t phases = 0;
    std::uint64_t gates = 0;
    std::uint64_t bytes = 0;
    double seconds = 0.0;
  };

  static ProfileRegistry& global();

  void note_phase(std::uint8_t kind, double seconds, std::uint64_t bytes,
                  std::uint64_t gates);
  void note_run(double seconds);

  KindTotals kind_totals(std::uint8_t kind) const;
  std::uint64_t runs() const;
  double run_seconds() const;

  /// Human table: one row per phase kind with counts, time, share.
  Table table() const;
  /// OpenMetrics-style text exposition (svsim_profile_* families).
  void write_openmetrics(std::ostream& os) const;
  void reset();

 private:
  mutable std::mutex mutex_;
  KindTotals kinds_[kProfilePhaseKinds];
  std::uint64_t runs_ = 0;
  double run_seconds_ = 0.0;
};

/// Chrome trace-event overlay: gate/measure spans from the tracer (pid 0,
/// one lane per recording thread), plan-phase lanes from the profiled runs
/// (pid 1), and simulated Exchange hop timelines (pid 2) when the dist
/// timing model annotated them. Loadable in chrome://tracing / Perfetto.
void write_profile_chrome_json(std::ostream& os, const std::vector<Span>& spans,
                               const std::vector<RunProfile>& runs);

}  // namespace svsim::obs
