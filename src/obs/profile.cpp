#include "obs/profile.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"

namespace svsim::obs {

const char* profile_phase_name(std::uint8_t kind) {
  switch (kind) {
    case kProfilePhaseLocalSweep: return "local_sweep";
    case kProfilePhaseDenseGate: return "dense_gate";
    case kProfilePhaseExchange: return "exchange";
    case kProfilePhaseMeasureFlush: return "measure_flush";
    default: return "?";
  }
}

std::atomic<Profiler*> Profiler::current_{nullptr};

Profiler::Profiler(ProfilerOptions options) : options_(options) {
  require(options_.max_runs > 0, "Profiler: max_runs must be positive");
}

Profiler::~Profiler() { uninstall(); }

void Profiler::install() {
  Profiler* expected = nullptr;
  require(current_.compare_exchange_strong(expected, this,
                                           std::memory_order_acq_rel),
          "Profiler::install: another profiler is already installed");
}

void Profiler::uninstall() noexcept {
  Profiler* expected = this;
  current_.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_acq_rel);
}

std::uint64_t Profiler::now_ns() const noexcept {
  return Tracer::global().now_ns();
}

void Profiler::begin_run(const RunProfile& meta) {
  std::lock_guard lock(mutex_);
  if (run_open_)  // nested/unclosed runs: close with what we have
    close_open_run_locked(now_ns() - open_run_.start_ns, false);
  open_run_ = meta;
  open_run_.phases.clear();
  open_run_.duration_ns = 0;
  open_run_.partial = false;
  if (open_run_.start_ns == 0) open_run_.start_ns = now_ns();
  run_open_ = true;
}

void Profiler::record_phase(PhaseSample sample) {
  ProfileRegistry::global().note_phase(sample.kind, sample.seconds(),
                                       sample.bytes, sample.gates);
  std::lock_guard lock(mutex_);
  if (!run_open_) return;  // stray sample (executor without begin_run)
  if (sample.dropped_spans > 0) open_run_.partial = true;
  open_run_.phases.push_back(std::move(sample));
}

void Profiler::end_run(std::uint64_t duration_ns, bool partial) {
  std::lock_guard lock(mutex_);
  if (!run_open_) return;
  if (partial) open_run_.partial = true;
  close_open_run_locked(duration_ns, open_run_.partial);
}

void Profiler::close_open_run_locked(std::uint64_t duration_ns, bool partial) {
  open_run_.duration_ns = duration_ns;
  open_run_.partial = partial;
  ProfileRegistry::global().note_run(open_run_.seconds());
  runs_recorded_.fetch_add(1, std::memory_order_relaxed);
  if (options_.retain_runs) {
    if (runs_.size() >= options_.max_runs)
      runs_.erase(runs_.begin());  // keep the most recent max_runs
    runs_.push_back(std::move(open_run_));
  }
  open_run_ = RunProfile{};
  run_open_ = false;
}

void Profiler::annotate_exchange(std::uint32_t phase_index,
                                 const std::vector<double>& hop_seconds) {
  std::lock_guard lock(mutex_);
  RunProfile* run = run_open_ ? &open_run_
                   : runs_.empty() ? nullptr
                                   : &runs_.back();
  if (run == nullptr) return;
  for (PhaseSample& s : run->phases) {
    if (s.index == phase_index && s.kind == kProfilePhaseExchange) {
      s.sim_hop_seconds = hop_seconds;
      return;
    }
  }
}

std::vector<RunProfile> Profiler::runs() const {
  std::lock_guard lock(mutex_);
  return runs_;
}

void Profiler::clear() {
  std::lock_guard lock(mutex_);
  runs_.clear();
  open_run_ = RunProfile{};
  run_open_ = false;
  runs_recorded_.store(0, std::memory_order_relaxed);
}

ProfileRegistry& ProfileRegistry::global() {
  static ProfileRegistry registry;
  return registry;
}

void ProfileRegistry::note_phase(std::uint8_t kind, double seconds,
                                 std::uint64_t bytes, std::uint64_t gates) {
  if (kind >= kProfilePhaseKinds) return;
  std::lock_guard lock(mutex_);
  KindTotals& t = kinds_[kind];
  ++t.phases;
  t.gates += gates;
  t.bytes += bytes;
  t.seconds += seconds;
}

void ProfileRegistry::note_run(double seconds) {
  std::lock_guard lock(mutex_);
  ++runs_;
  run_seconds_ += seconds;
}

ProfileRegistry::KindTotals ProfileRegistry::kind_totals(
    std::uint8_t kind) const {
  std::lock_guard lock(mutex_);
  return kind < kProfilePhaseKinds ? kinds_[kind] : KindTotals{};
}

std::uint64_t ProfileRegistry::runs() const {
  std::lock_guard lock(mutex_);
  return runs_;
}

double ProfileRegistry::run_seconds() const {
  std::lock_guard lock(mutex_);
  return run_seconds_;
}

Table ProfileRegistry::table() const {
  KindTotals kinds[kProfilePhaseKinds];
  std::uint64_t runs;
  double run_seconds;
  {
    std::lock_guard lock(mutex_);
    std::copy(std::begin(kinds_), std::end(kinds_), std::begin(kinds));
    runs = runs_;
    run_seconds = run_seconds_;
  }
  double total_seconds = 0.0;
  for (const KindTotals& t : kinds) total_seconds += t.seconds;
  Table t("Profile registry (cumulative)",
          {"phase", "count", "gates", "ms", "share", "GB/s"});
  for (std::uint8_t k = 0; k < kProfilePhaseKinds; ++k) {
    const KindTotals& kt = kinds[k];
    t.add_row({std::string(profile_phase_name(k)),
               static_cast<std::int64_t>(kt.phases),
               static_cast<std::int64_t>(kt.gates), kt.seconds * 1e3,
               total_seconds > 0.0 ? kt.seconds / total_seconds : 0.0,
               kt.seconds > 0.0
                   ? static_cast<double>(kt.bytes) / kt.seconds * 1e-9
                   : 0.0});
  }
  t.add_row({std::string("RUNS"), static_cast<std::int64_t>(runs),
             std::int64_t{0}, run_seconds * 1e3, 1.0, 0.0});
  return t;
}

void ProfileRegistry::write_openmetrics(std::ostream& os) const {
  KindTotals kinds[kProfilePhaseKinds];
  std::uint64_t runs;
  double run_seconds;
  {
    std::lock_guard lock(mutex_);
    std::copy(std::begin(kinds_), std::end(kinds_), std::begin(kinds));
    runs = runs_;
    run_seconds = run_seconds_;
  }
  os << "# TYPE svsim_profile_phases_total counter\n";
  for (std::uint8_t k = 0; k < kProfilePhaseKinds; ++k)
    os << "svsim_profile_phases_total{kind=\"" << profile_phase_name(k)
       << "\"} " << kinds[k].phases << "\n";
  os << "# TYPE svsim_profile_phase_seconds_total counter\n";
  for (std::uint8_t k = 0; k < kProfilePhaseKinds; ++k)
    os << "svsim_profile_phase_seconds_total{kind=\"" << profile_phase_name(k)
       << "\"} " << kinds[k].seconds << "\n";
  os << "# TYPE svsim_profile_phase_bytes_total counter\n";
  for (std::uint8_t k = 0; k < kProfilePhaseKinds; ++k)
    os << "svsim_profile_phase_bytes_total{kind=\"" << profile_phase_name(k)
       << "\"} " << kinds[k].bytes << "\n";
  os << "# TYPE svsim_profile_phase_gates_total counter\n";
  for (std::uint8_t k = 0; k < kProfilePhaseKinds; ++k)
    os << "svsim_profile_phase_gates_total{kind=\"" << profile_phase_name(k)
       << "\"} " << kinds[k].gates << "\n";
  os << "# TYPE svsim_profile_runs_total counter\n"
     << "svsim_profile_runs_total " << runs << "\n"
     << "# TYPE svsim_profile_run_seconds_total counter\n"
     << "svsim_profile_run_seconds_total " << run_seconds << "\n"
     << "# EOF\n";
}

void ProfileRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (KindTotals& t : kinds_) t = KindTotals{};
  runs_ = 0;
  run_seconds_ = 0.0;
}

void write_profile_chrome_json(std::ostream& os, const std::vector<Span>& spans,
                               const std::vector<RunProfile>& runs) {
  const auto saved_precision = os.precision(15);
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const char* name, const char* cat, int pid, int tid,
                        std::uint64_t start_ns, std::uint64_t dur_ns,
                        std::uint64_t bytes) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << name << "\",\"cat\":\"" << cat
       << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"ts\":" << static_cast<double>(start_ns) * 1e-3
       << ",\"dur\":" << static_cast<double>(dur_ns) * 1e-3
       << ",\"args\":{\"bytes\":" << bytes << "}}";
  };
  // pid 0: the gate/measure spans the tracer recorded (one lane per thread).
  for (const Span& s : spans)
    emit(s.name.data(), span_category_name(s.category), 0, s.thread,
         s.start_ns, s.duration_ns, s.bytes);
  // pid 1: one lane of plan phases per profiled run.
  for (std::size_t r = 0; r < runs.size(); ++r) {
    for (const PhaseSample& p : runs[r].phases)
      emit(profile_phase_name(p.kind), "phase", 1, static_cast<int>(r),
           p.start_ns, p.duration_ns, p.bytes);
  }
  // pid 2: simulated Exchange hop timelines (wire time from the dist
  // model), laid end to end from each exchange phase's start.
  for (std::size_t r = 0; r < runs.size(); ++r) {
    for (const PhaseSample& p : runs[r].phases) {
      if (p.sim_hop_seconds.empty()) continue;
      std::uint64_t t = p.start_ns;
      for (double hop : p.sim_hop_seconds) {
        const auto dur = static_cast<std::uint64_t>(hop * 1e9);
        emit("sim_hop", "exchange_model", 2, static_cast<int>(r), t, dur, 0);
        t += dur;
      }
    }
  }
  os << "\n]}\n";
  os.precision(saved_precision);
}

}  // namespace svsim::obs
