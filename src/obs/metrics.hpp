// Metrics registry: named counters, gauges, and histograms.
//
// The execution layers publish what they did (gates applied, bytes
// streamed, fused-block widths, exchanges modeled) into a process-wide
// registry; consumers snapshot it as a text table or JSON. Metric objects
// are created on first use, never destroyed, and updated with relaxed
// atomics, so references returned by the registry stay valid for the
// process lifetime and updates are wait-free.
//
// Naming convention: "subsystem.metric", e.g. "sv.gates_applied",
// "fusion.blocks", "dist.exchange_bytes".
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace svsim::obs {

/// Monotonic unsigned counter.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins floating-point value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram (Prometheus-style "le" buckets plus overflow).
/// Bucket i counts observations v with v <= bounds[i] (and > bounds[i-1]);
/// the final bucket counts v > bounds.back().
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Count in bucket i, i in [0, bounds().size()] — last = overflow.
  std::uint64_t bucket_count(std::size_t i) const;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;  ///< strictly increasing
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Process-wide metric namespace. Lookup takes a mutex; the returned
/// references are stable, so hot paths should cache them.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies on first creation only (later calls must agree in
  /// size or pass empty to reuse).
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Zeroes every metric (objects and references stay valid).
  void reset();

  /// All metrics as one table (histograms as count/mean plus buckets).
  Table table() const;

  /// JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace svsim::obs
