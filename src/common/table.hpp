// Lightweight result-table formatting for the benchmark harness.
//
// Every bench binary reproduces one table or figure from the paper; Table
// collects rows of heterogeneous cells and renders them as aligned text (for
// the terminal) or CSV (for plotting). No external dependencies.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace svsim {

/// One table cell: string, integer, or floating point (with per-column
/// precision chosen at render time).
using Cell = std::variant<std::string, std::int64_t, double>;

/// A titled table of rows. Columns are fixed at construction.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Appends a row; must have exactly as many cells as there are columns.
  void add_row(std::vector<Cell> row);

  /// Renders as an aligned, human-readable text table.
  std::string to_text(int float_precision = 3) const;

  /// Renders as CSV (header + rows).
  std::string to_csv(int float_precision = 6) const;

  /// Prints the text rendering (plus a trailing newline) to `os`.
  void print(std::ostream& os) const;

  const std::string& title() const noexcept { return title_; }
  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_columns() const noexcept { return columns_.size(); }
  const std::vector<Cell>& row(std::size_t i) const { return rows_.at(i); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// Formats a cell with the given floating-point precision.
std::string format_cell(const Cell& cell, int float_precision);

}  // namespace svsim
