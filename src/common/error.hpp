// Error handling primitives shared across svsim.
//
// The library throws svsim::Error (an std::runtime_error) for user-facing
// misuse (bad qubit index, malformed QASM, non-unitary matrix, ...) and uses
// SVSIM_ASSERT for internal invariants that indicate a library bug.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace svsim {

/// Exception type for all user-facing errors raised by svsim.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws svsim::Error with the given message if `cond` is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw Error(msg);
}

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "svsim internal assertion failed: %s at %s:%d\n", expr,
               file, line);
  std::abort();
}
}  // namespace detail

}  // namespace svsim

/// Internal invariant check: aborts on failure. Active in all build types —
/// a violated invariant in a simulator silently corrupts physics results,
/// which is worse than a crash.
#define SVSIM_ASSERT(expr)                                        \
  ((expr) ? static_cast<void>(0)                                  \
          : ::svsim::detail::assert_fail(#expr, __FILE__, __LINE__))
