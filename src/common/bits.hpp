// Bit-manipulation helpers used by the state-vector kernels.
//
// State-vector simulation is index arithmetic: applying a gate to qubit `t`
// pairs amplitude indices that differ only in bit `t`. The helpers here
// implement the "insert zero bit(s)" enumeration that walks exactly the
// lower half of each such pair, plus small utilities (powers of two, masks,
// popcount wrappers) shared across the library.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace svsim {

/// 2^e as a 64-bit value. Precondition: e < 64.
constexpr std::uint64_t pow2(unsigned e) noexcept {
  return std::uint64_t{1} << e;
}

/// Mask with the low `n` bits set. Precondition: n <= 64.
constexpr std::uint64_t low_mask(unsigned n) noexcept {
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

/// True if v is a power of two (v != 0).
constexpr bool is_pow2(std::uint64_t v) noexcept {
  return std::has_single_bit(v);
}

/// floor(log2(v)). Precondition: v != 0.
constexpr unsigned ilog2(std::uint64_t v) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/// Number of set bits.
constexpr unsigned popcount(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::popcount(v));
}

/// Tests bit `b` of `v`.
constexpr bool test_bit(std::uint64_t v, unsigned b) noexcept {
  return (v >> b) & 1u;
}

/// Returns `v` with bit `b` set.
constexpr std::uint64_t set_bit(std::uint64_t v, unsigned b) noexcept {
  return v | (std::uint64_t{1} << b);
}

/// Returns `v` with bit `b` cleared.
constexpr std::uint64_t clear_bit(std::uint64_t v, unsigned b) noexcept {
  return v & ~(std::uint64_t{1} << b);
}

/// Returns `v` with bit `b` flipped.
constexpr std::uint64_t flip_bit(std::uint64_t v, unsigned b) noexcept {
  return v ^ (std::uint64_t{1} << b);
}

/// Expands `v` by inserting a zero bit at position `pos`: bits [0, pos) of v
/// stay in place, bits [pos, 63) shift up by one, bit `pos` of the result is
/// zero. This enumerates, for counter v in [0, 2^(n-1)), every n-bit index
/// whose bit `pos` is clear — the canonical 1-qubit kernel iteration.
constexpr std::uint64_t insert_zero_bit(std::uint64_t v, unsigned pos) noexcept {
  const std::uint64_t lo = v & low_mask(pos);
  const std::uint64_t hi = (v >> pos) << (pos + 1);
  return hi | lo;
}

/// Expands `v` by inserting zero bits at each position in `sorted_positions`
/// (which must be strictly ascending). Enumerates indices whose bits at all
/// the given positions are clear — the k-qubit kernel iteration.
inline std::uint64_t insert_zero_bits(std::uint64_t v,
                                      const std::vector<unsigned>& sorted_positions) noexcept {
  for (unsigned p : sorted_positions) v = insert_zero_bit(v, p);
  return v;
}

/// Extracts bit `b` of each element of `bits` and packs them little-endian:
/// result bit i = bit bits[i] of v.
inline std::uint64_t gather_bits(std::uint64_t v,
                                 const std::vector<unsigned>& bits) noexcept {
  std::uint64_t r = 0;
  for (std::size_t i = 0; i < bits.size(); ++i)
    r |= static_cast<std::uint64_t>(test_bit(v, bits[i])) << i;
  return r;
}

/// Inverse of gather_bits: scatters the low bits of `packed` into positions
/// `bits` of a zero word.
inline std::uint64_t scatter_bits(std::uint64_t packed,
                                  const std::vector<unsigned>& bits) noexcept {
  std::uint64_t r = 0;
  for (std::size_t i = 0; i < bits.size(); ++i)
    r |= static_cast<std::uint64_t>((packed >> i) & 1u) << bits[i];
  return r;
}

/// Reverses the low `n` bits of `v` (bit 0 <-> bit n-1, ...).
constexpr std::uint64_t reverse_bits(std::uint64_t v, unsigned n) noexcept {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < n; ++i) r |= ((v >> i) & 1u) << (n - 1 - i);
  return r;
}

}  // namespace svsim
