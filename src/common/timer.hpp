// Wall-clock timing utilities for benchmarks and the perf harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace svsim {

/// Monotonic stopwatch. Construction starts it.
class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed nanoseconds.
  std::uint64_t nanoseconds() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Times `fn()` repeatedly until at least `min_seconds` have elapsed (and at
/// least `min_reps` repetitions ran) and returns the mean seconds per call.
/// Good enough for kernel measurements where google-benchmark is too heavy.
template <typename Fn>
double time_mean_seconds(Fn&& fn, double min_seconds = 0.05,
                         int min_reps = 3) {
  // Warm-up run (touches memory, primes caches).
  fn();
  int reps = 0;
  Timer t;
  do {
    fn();
    ++reps;
  } while (t.seconds() < min_seconds || reps < min_reps);
  return t.seconds() / reps;
}

}  // namespace svsim
