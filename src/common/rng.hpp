// Deterministic, splittable pseudo-random number generation.
//
// xoshiro256** (Blackman & Vigna) — fast, high-quality, and trivially
// splittable via long-jumps, which gives each worker thread an independent
// stream from one seed so parallel sampling and noise trajectories are
// reproducible regardless of thread count.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace svsim {

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from a single 64-bit seed using splitmix64,
  /// as recommended by the xoshiro authors.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Advances the state by 2^128 steps; used to derive non-overlapping
  /// per-thread substreams from a common seed.
  void long_jump() noexcept {
    static constexpr std::uint64_t kJump[] = {
        0x76e15d3efefdcbbfull, 0xc5004e441c522fb3ull, 0x77710069854ee241ull,
        0x39109bb02acbe635ull};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump & (std::uint64_t{1} << b)) {
          s0 ^= s_[0];
          s1 ^= s_[1];
          s2 ^= s_[2];
          s3 ^= s_[3];
        }
        (*this)();
      }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

  /// Returns a generator 2^128 * `stream` steps ahead — an independent
  /// substream for worker `stream`.
  Xoshiro256 split(unsigned stream) const noexcept {
    Xoshiro256 g = *this;
    for (unsigned i = 0; i <= stream; ++i) g.long_jump();
    return g;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Uses rejection to avoid modulo bias.
  std::uint64_t uniform_int(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t v;
    do {
      v = (*this)();
    } while (v >= limit);
    return v % n;
  }

  /// Standard normal variate (Marsaglia polar method, one value per call;
  /// the spare is cached).
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace svsim
