#include "common/threading.hpp"

#include <numeric>

namespace svsim {

ThreadPool::ThreadPool(unsigned num_threads) {
  unsigned n = num_threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  rngs_.resize(n);
  seed_rngs(0x5eedULL);
  // Worker 0 is the caller; spawn n-1 helpers.
  threads_.reserve(n - 1);
  for (unsigned w = 1; w < n; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::seed_rngs(std::uint64_t seed) {
  Xoshiro256 root(seed);
  for (unsigned w = 0; w < rngs_.size(); ++w) rngs_[w] = root.split(w);
}

void ThreadPool::worker_loop(unsigned worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(unsigned, std::uint64_t, std::uint64_t)>* job;
    std::uint64_t count;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      job = job_;
      count = job_count_;
    }
    const Partition p = static_partition(count, num_threads(), worker_index);
    if (p.begin < p.end) (*job)(worker_index, p.begin, p.end);
    {
      std::lock_guard lock(mutex_);
      --pending_;
    }
    cv_done_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::uint64_t count,
    const std::function<void(unsigned, std::uint64_t, std::uint64_t)>& body,
    std::uint64_t serial_cutoff) {
  const unsigned n = num_threads();
  // Run inline when parallelism can't pay for its fork-join cost, when there
  // are no helpers, or when called from inside a parallel region (nested).
  if (count < serial_cutoff || n == 1 || in_parallel_region_) {
    stat_inline_.fetch_add(1, std::memory_order_relaxed);
    stat_items_.fetch_add(count, std::memory_order_relaxed);
    if (count > 0) body(0, 0, count);
    return;
  }
  stat_parallel_.fetch_add(1, std::memory_order_relaxed);
  stat_items_.fetch_add(count, std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    job_ = &body;
    job_count_ = count;
    pending_ = n - 1;
    ++generation_;
    in_parallel_region_ = true;
  }
  cv_start_.notify_all();
  const Partition p = static_partition(count, n, 0);
  if (p.begin < p.end) body(0, p.begin, p.end);
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
    in_parallel_region_ = false;
  }
}

double ThreadPool::parallel_reduce(
    std::uint64_t count,
    const std::function<double(unsigned, std::uint64_t, std::uint64_t)>& body,
    std::uint64_t serial_cutoff) {
  const unsigned n = num_threads();
  if (count < serial_cutoff || n == 1 || in_parallel_region_) {
    stat_inline_.fetch_add(1, std::memory_order_relaxed);
    stat_items_.fetch_add(count, std::memory_order_relaxed);
    return count > 0 ? body(0, 0, count) : 0.0;
  }
  // Pad partials to separate cache lines to avoid false sharing.
  struct alignas(64) Padded {
    double value = 0.0;
  };
  std::vector<Padded> partials(n);
  parallel_for(
      count,
      [&](unsigned w, std::uint64_t begin, std::uint64_t end) {
        partials[w].value = body(w, begin, end);
      },
      /*serial_cutoff=*/0);
  double total = 0.0;
  for (const auto& p : partials) total += p.value;
  return total;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace svsim
