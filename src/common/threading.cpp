#include "common/threading.hpp"

#include <cstdlib>
#include <numeric>
#include <string>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace svsim {

unsigned pin_cpu_for_worker(const PinPolicy& policy, unsigned w,
                            unsigned num_workers) noexcept {
  unsigned cores = policy.num_cores;
  if (cores == 0) cores = std::thread::hardware_concurrency();
  if (cores == 0) cores = num_workers > 0 ? num_workers : 1;
  if (policy.mode == PinPolicy::Mode::Scatter && policy.num_domains > 1 &&
      cores >= policy.num_domains) {
    const unsigned domains = policy.num_domains;
    const unsigned per_domain = cores / domains;
    const unsigned domain = w % domains;
    const unsigned slot = w / domains;
    return (domain * per_domain + slot % per_domain) % cores;
  }
  // Compact (and degenerate scatter): fill cores in order.
  return w % cores;
}

PinPolicy pin_policy_from_env() {
  PinPolicy policy;
  const char* env = std::getenv("SVSIM_PIN");
  if (env == nullptr) return policy;
  std::string v(env);
  if (v == "compact") {
    policy.mode = PinPolicy::Mode::Compact;
  } else if (v.rfind("scatter", 0) == 0) {
    policy.mode = PinPolicy::Mode::Scatter;
    policy.num_domains = 2;
    const auto colon = v.find(':');
    if (colon != std::string::npos) {
      const unsigned long d = std::strtoul(v.c_str() + colon + 1, nullptr, 10);
      if (d >= 1 && d <= 1024) policy.num_domains = static_cast<unsigned>(d);
    }
  }
  return policy;
}

namespace {

/// Pins `handle` (or the calling thread when null) to `cpu`. Returns false
/// when the platform has no affinity API.
bool pin_native_thread(std::thread::native_handle_type handle, unsigned cpu,
                       bool self) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % CPU_SETSIZE, &set);
  const pthread_t target = self ? pthread_self() : handle;
  return pthread_setaffinity_np(target, sizeof(set), &set) == 0;
#else
  (void)handle;
  (void)cpu;
  (void)self;
  return false;
#endif
}

}  // namespace

bool ThreadPool::pin_threads(const PinPolicy& policy) {
  if (policy.mode == PinPolicy::Mode::None) return false;
  const unsigned n = num_threads();
  bool ok = pin_native_thread({}, pin_cpu_for_worker(policy, 0, n),
                              /*self=*/true);
  for (unsigned w = 1; w < n; ++w) {
    ok = pin_native_thread(threads_[w - 1].native_handle(),
                           pin_cpu_for_worker(policy, w, n),
                           /*self=*/false) &&
         ok;
  }
  pinned_ = ok;
  return ok;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  unsigned n = num_threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  rngs_.resize(n);
  seed_rngs(0x5eedULL);
  // Worker 0 is the caller; spawn n-1 helpers.
  threads_.reserve(n - 1);
  for (unsigned w = 1; w < n; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::seed_rngs(std::uint64_t seed) {
  Xoshiro256 root(seed);
  for (unsigned w = 0; w < rngs_.size(); ++w) rngs_[w] = root.split(w);
}

void ThreadPool::worker_loop(unsigned worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(unsigned, std::uint64_t, std::uint64_t)>* job;
    std::uint64_t count;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      job = job_;
      count = job_count_;
    }
    const Partition p = static_partition(count, num_threads(), worker_index);
    if (p.begin < p.end) (*job)(worker_index, p.begin, p.end);
    {
      std::lock_guard lock(mutex_);
      --pending_;
    }
    cv_done_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::uint64_t count,
    const std::function<void(unsigned, std::uint64_t, std::uint64_t)>& body,
    std::uint64_t serial_cutoff) {
  const unsigned n = num_threads();
  // Run inline when parallelism can't pay for its fork-join cost, when there
  // are no helpers, or when called from inside a parallel region (nested).
  if (count < serial_cutoff || n == 1 || in_parallel_region_) {
    stat_inline_.fetch_add(1, std::memory_order_relaxed);
    stat_items_.fetch_add(count, std::memory_order_relaxed);
    if (count > 0) body(0, 0, count);
    return;
  }
  stat_parallel_.fetch_add(1, std::memory_order_relaxed);
  stat_items_.fetch_add(count, std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    job_ = &body;
    job_count_ = count;
    pending_ = n - 1;
    ++generation_;
    in_parallel_region_ = true;
  }
  cv_start_.notify_all();
  const Partition p = static_partition(count, n, 0);
  if (p.begin < p.end) body(0, p.begin, p.end);
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
    in_parallel_region_ = false;
  }
}

double ThreadPool::parallel_reduce(
    std::uint64_t count,
    const std::function<double(unsigned, std::uint64_t, std::uint64_t)>& body,
    std::uint64_t serial_cutoff) {
  const unsigned n = num_threads();
  if (count < serial_cutoff || n == 1 || in_parallel_region_) {
    stat_inline_.fetch_add(1, std::memory_order_relaxed);
    stat_items_.fetch_add(count, std::memory_order_relaxed);
    return count > 0 ? body(0, 0, count) : 0.0;
  }
  // Pad partials to separate cache lines to avoid false sharing.
  struct alignas(64) Padded {
    double value = 0.0;
  };
  std::vector<Padded> partials(n);
  parallel_for(
      count,
      [&](unsigned w, std::uint64_t begin, std::uint64_t end) {
        partials[w].value = body(w, begin, end);
      },
      /*serial_cutoff=*/0);
  double total = 0.0;
  for (const auto& p : partials) total += p.value;
  return total;
}

ThreadPool& ThreadPool::global() {
  // First-touch NUMA placement only pays off if workers stay on the cores
  // whose memory they touched, so the shared pool honours SVSIM_PIN once at
  // creation (no-op when unset).
  static ThreadPool pool;
  static const bool pinned [[maybe_unused]] =
      pool.pin_threads(pin_policy_from_env());
  return pool;
}

}  // namespace svsim
