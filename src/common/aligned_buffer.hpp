// Cache-line/page aligned heap buffer with RAII ownership.
//
// State vectors are large (2^n * 16 bytes) streaming arrays; aligning them to
// at least the SIMD vector width keeps loads/stores aligned, and aligning to
// the page size makes first-touch NUMA placement deterministic when the
// buffer is initialized by the thread pool.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "common/error.hpp"

namespace svsim {

/// Default alignment: 256 bytes covers AVX-512/SVE-512 vectors and several
/// cache lines; large buffers additionally round their size up so realloc-free
/// vectorized tail handling is safe.
inline constexpr std::size_t kDefaultAlignment = 256;

/// Owning, aligned, non-resizable array of trivially-destructible T.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedBuffer only supports trivially destructible types");

 public:
  AlignedBuffer() noexcept = default;

  /// Allocates `count` elements aligned to `alignment` bytes. Contents are
  /// uninitialized; callers are expected to initialize in parallel
  /// (first-touch). Throws std::bad_alloc on failure.
  explicit AlignedBuffer(std::size_t count,
                         std::size_t alignment = kDefaultAlignment)
      : size_(count) {
    if (count == 0) return;
    std::size_t bytes = count * sizeof(T);
    // std::aligned_alloc requires the size to be a multiple of the alignment.
    bytes = (bytes + alignment - 1) / alignment * alignment;
    data_ = static_cast<T*>(std::aligned_alloc(alignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc{};
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

 private:
  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace svsim
