// A fixed-size thread pool with a fork-join parallel_for.
//
// State-vector kernels are embarrassingly parallel over the amplitude index
// space; all we need is a static-partition fork-join loop with low per-gate
// overhead (a gate on a small register takes microseconds, so re-spawning
// std::thread per gate would dominate). Workers block on a condition
// variable between parallel regions.
//
// The pool also exposes `parallel_reduce` for norms/probabilities and a
// per-worker RNG substream facility for parallel sampling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace svsim {

/// Describes how a range [0, count) is split across `num_workers` workers:
/// contiguous static chunks, remainder spread over the first chunks.
struct Partition {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Computes worker `w`'s chunk of [0, count) under static partitioning.
inline Partition static_partition(std::uint64_t count, unsigned num_workers,
                                  unsigned w) noexcept {
  const std::uint64_t base = count / num_workers;
  const std::uint64_t rem = count % num_workers;
  const std::uint64_t begin =
      w * base + (w < rem ? w : static_cast<std::uint64_t>(rem));
  const std::uint64_t len = base + (w < rem ? 1 : 0);
  return {begin, begin + len};
}

/// NUMA/CMG-aware thread-pinning policy.
///
/// State-vector kernels and the first-touch page placement both use the
/// same static partition of the amplitude space, so once a worker is pinned
/// to a core it keeps streaming pages homed on that core's memory domain.
/// `Compact` fills domain 0 first (one memory controller active at low
/// thread counts — the paper's compact-affinity curve); `Scatter`
/// round-robins workers across domains so every HBM stack / memory
/// controller is active from `num_domains` threads up.
struct PinPolicy {
  enum class Mode { None, Compact, Scatter };
  Mode mode = Mode::None;
  /// NUMA domains (CMGs / sockets) to spread across; >= 1.
  unsigned num_domains = 1;
  /// Total cores to place onto (0 = hardware_concurrency).
  unsigned num_cores = 0;
};

/// CPU id worker `w` of `num_workers` lands on under `policy` (pure, so the
/// placement function is unit-testable without touching the OS). Compact:
/// cpu = w. Scatter: domain d = w mod D, slot = w div D, cpu = d *
/// (cores/D) + slot. CPUs wrap modulo the core count when oversubscribed.
unsigned pin_cpu_for_worker(const PinPolicy& policy, unsigned w,
                            unsigned num_workers) noexcept;

/// Policy from the environment: SVSIM_PIN = "none" | "compact" |
/// "scatter[:domains]" (e.g. "scatter:4" for an A64FX-like 4-CMG spread).
/// Unset/unrecognized -> Mode::None.
PinPolicy pin_policy_from_env();

/// Cumulative counters of what a pool has executed. Observability hook for
/// the obs layer (which mirrors these into its metrics registry); kept here
/// as plain atomics so `common` stays dependency-free.
struct PoolStats {
  std::uint64_t parallel_regions = 0;  ///< regions forked across workers
  std::uint64_t inline_regions = 0;    ///< regions run inline (cutoff/nested)
  std::uint64_t items = 0;             ///< total loop iterations dispatched
};

/// Fork-join worker pool. Thread-safe for one parallel region at a time;
/// nested parallelism is not supported (inner calls run sequentially on the
/// calling thread, which is the behaviour kernels want).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = std::thread::hardware_concurrency()).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers (>= 1). Worker 0 is the calling thread.
  unsigned num_threads() const noexcept {
    return static_cast<unsigned>(threads_.size()) + 1;
  }

  /// Runs body(worker_index, begin, end) on every worker with a static
  /// partition of [0, count). Blocks until all workers finish. If the range
  /// is smaller than `serial_cutoff`, runs inline on the caller.
  void parallel_for(std::uint64_t count,
                    const std::function<void(unsigned, std::uint64_t,
                                             std::uint64_t)>& body,
                    std::uint64_t serial_cutoff = 1u << 12);

  /// Parallel sum-reduction: each worker computes body(worker, begin, end)
  /// and the partial results are summed on the caller.
  double parallel_reduce(std::uint64_t count,
                         const std::function<double(unsigned, std::uint64_t,
                                                    std::uint64_t)>& body,
                         std::uint64_t serial_cutoff = 1u << 12);

  /// Pins every worker (including the caller, which acts as worker 0) to
  /// the CPU pin_cpu_for_worker assigns it. Returns false — and pins
  /// nothing — when the policy is Mode::None or the platform has no
  /// affinity support; pinning is best-effort and idempotent.
  bool pin_threads(const PinPolicy& policy);

  /// True after a successful pin_threads call.
  bool pinned() const noexcept { return pinned_; }

  /// Deterministic per-worker RNG substream derived from `seed`.
  /// Re-seeds all streams; call once per stochastic run.
  void seed_rngs(std::uint64_t seed);

  /// RNG stream of worker `w`. Valid after seed_rngs().
  Xoshiro256& rng(unsigned w) {
    SVSIM_ASSERT(w < rngs_.size());
    return rngs_[w];
  }

  /// Snapshot of the execution counters (relaxed; monotonic per field).
  PoolStats stats() const noexcept {
    return {stat_parallel_.load(std::memory_order_relaxed),
            stat_inline_.load(std::memory_order_relaxed),
            stat_items_.load(std::memory_order_relaxed)};
  }

  /// Zeroes the execution counters.
  void reset_stats() noexcept {
    stat_parallel_.store(0, std::memory_order_relaxed);
    stat_inline_.store(0, std::memory_order_relaxed);
    stat_items_.store(0, std::memory_order_relaxed);
  }

  /// Shared process-wide pool sized to hardware concurrency. Lazily created.
  static ThreadPool& global();

 private:
  void worker_loop(unsigned worker_index);

  std::vector<std::thread> threads_;
  std::vector<Xoshiro256> rngs_;
  bool pinned_ = false;

  std::atomic<std::uint64_t> stat_parallel_{0};
  std::atomic<std::uint64_t> stat_inline_{0};
  std::atomic<std::uint64_t> stat_items_{0};

  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  // Generation counter: workers run the stored job once per increment.
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stopping_ = false;
  std::atomic<bool> in_parallel_region_{false};

  // Current job, valid while pending_ > 0.
  const std::function<void(unsigned, std::uint64_t, std::uint64_t)>* job_ =
      nullptr;
  std::uint64_t job_count_ = 0;
};

}  // namespace svsim
