#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace svsim {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  require(!columns_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<Cell> row) {
  require(row.size() == columns_.size(),
          "Table row has wrong number of cells for '" + title_ + "'");
  rows_.push_back(std::move(row));
}

std::string format_cell(const Cell& cell, int float_precision) {
  std::ostringstream os;
  if (const auto* s = std::get_if<std::string>(&cell)) {
    os << *s;
  } else if (const auto* i = std::get_if<std::int64_t>(&cell)) {
    os << *i;
  } else {
    os << std::setprecision(float_precision) << std::fixed
       << std::get<double>(cell);
  }
  return os.str();
}

std::string Table::to_text(int float_precision) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    widths[c] = columns_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c], float_precision));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << cells[c]
         << (c + 1 < cells.size() ? "  " : "");
    }
    os << '\n';
  };
  emit_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rendered) emit_row(row);
  return os.str();
}

std::string Table::to_csv(int float_precision) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c)
    os << escape(columns_[c]) << (c + 1 < columns_.size() ? "," : "\n");
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << escape(format_cell(row[c], float_precision))
         << (c + 1 < row.size() ? "," : "\n");
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_text() << '\n'; }

}  // namespace svsim
