#include "svc/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace svsim::svc::json {

const Value* Value::find(const std::string& key) const noexcept {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

const Value& Value::at(const std::string& key, const std::string& where) const {
  const Value* v = find(key);
  require(v != nullptr, "json: " + where + ": missing key '" + key + "'");
  return *v;
}

bool Value::as_bool(const std::string& where) const {
  require(kind == Kind::Bool, "json: " + where + ": expected a boolean");
  return boolean;
}

double Value::as_number(const std::string& where) const {
  require(kind == Kind::Number, "json: " + where + ": expected a number");
  return number;
}

const std::string& Value::as_string(const std::string& where) const {
  require(kind == Kind::String, "json: " + where + ": expected a string");
  return string;
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_bool(key);
}

double Value::get_number(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_number(key);
}

std::string Value::get_string(const std::string& key,
                              const std::string& fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_string(key);
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    require(pos_ == text_.size(),
            "json: trailing characters at offset " + std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t len = 0;
    while (lit[len] != '\0') ++len;
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.kind = Value::Kind::Bool;
    v.boolean = b;
    return v;
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
            pos_ += 4;
          } else {
            // Pass non-ASCII escapes through as literal text; the protocol's
            // structural fields are ASCII and QASM payloads use raw UTF-8.
            out += "\\u";
            out.append(text_, pos_, 4);
            pos_ += 4;
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      bool any = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        any = true;
      }
      return any;
    };
    if (!digits()) fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("bad number fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!digits()) fail("bad number exponent");
    }
    Value v;
    v.kind = Value::Kind::Number;
    v.number = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace svsim::svc::json
