// PlanCache: compile-once, serve-many storage of ExecutionPlans.
//
// The serve loop's economics hinge on never recompiling a circuit a client
// already submitted: a cache entry holds the compiled plan (plus everything
// the executor needs to run it without re-inspecting the circuit — the shot
// strategy, the trailing-measure map, and the perf::cost_plan admission
// price). Entries are keyed by three FNV-1a fingerprints — circuit
// structure, MachineSpec description, and the effective compile options
// (including the *resolved* cache budget, so SVSIM_CACHE_BUDGET=probed
// changing block sizing changes the key) — and evicted LRU by estimated
// plan memory footprint against a byte budget.
//
// Hit/miss/eviction counts and resident bytes publish to the obs registry
// as svc.plan_cache.{hits,misses,evictions} counters and the
// svc.plan_cache.bytes gauge; per-instance totals back each session's
// summary record (docs/SERVICE.md#plan-cache).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "perf/perf_simulator.hpp"
#include "sv/plan.hpp"

namespace svsim::qc {
class Circuit;
}
namespace svsim::machine {
struct MachineSpec;
}
namespace svsim::obs {
class MetricsRegistry;
}

namespace svsim::svc {

/// Cache key: (what to run) x (what it runs on) x (how it was compiled).
struct PlanKey {
  std::uint64_t circuit_fp = 0;
  std::uint64_t machine_fp = 0;
  std::uint64_t options_fp = 0;

  bool operator==(const PlanKey&) const = default;
  /// Stable rendering "c<hex>.m<hex>.o<hex>" used in result records.
  std::string to_string() const;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const noexcept {
    // The fingerprints are already avalanched; fold them.
    return static_cast<std::size_t>(k.circuit_fp ^ (k.machine_fp * 31) ^
                                    (k.options_fp * 131));
  }
};

/// Structural fingerprint of a circuit: width, classical register, and
/// every gate's kind/operands/parameter bit patterns/payload entries.
/// Equal circuits fingerprint equal; parameter changes, operand swaps, and
/// payload edits all change it.
std::uint64_t fingerprint_circuit(const qc::Circuit& circuit);

/// Fingerprint of the machine description that sizes blocks and prices
/// admission; nullptr (no machine) has its own stable value.
std::uint64_t fingerprint_machine(const machine::MachineSpec* machine);

/// Fingerprint of the effective compile options: fusion/blocking knobs, the
/// *resolved* cache budget (sv::plan_cache_budget), rank count, scheduler,
/// and amplitude precision.
std::uint64_t fingerprint_plan_options(const sv::PlanOptions& options,
                                       unsigned ranks,
                                       const std::string& scheduler,
                                       unsigned amp_bytes);

/// Estimated resident bytes of a compiled plan: phases, gates, operand and
/// parameter vectors, matrix/diagonal payloads, hops, and the slot map.
/// This is the footprint the LRU budget meters.
std::uint64_t plan_footprint_bytes(const sv::ExecutionPlan& plan);

/// One cached compilation: everything needed to execute a job without
/// touching the circuit again.
struct CachedPlan {
  std::shared_ptr<const sv::ExecutionPlan> plan;
  perf::PlanCost cost;               ///< admission price (modeled)
  std::uint64_t footprint_bytes = 0;
  /// True = the plan is the stripped unitary part; run once and sample
  /// (`measures` maps sampled basis states to classical bits). False = one
  /// trajectory per shot through the full plan's MeasureFlush phases.
  bool sampled_mode = true;
  std::vector<std::pair<unsigned, unsigned>> measures;  ///< (qubit, cbit)
  unsigned num_clbits = 0;
};

/// Thread-safe LRU plan cache with a byte budget. An entry larger than the
/// whole budget is rejected (never inserted) rather than evicting the
/// entire cache for one tenant.
class PlanCache {
 public:
  /// `metrics` is the registry the svc.plan_cache.* series publish to;
  /// nullptr resolves to the process registry on every call (never cached
  /// in a static handle, so a substituted registry is picked up).
  explicit PlanCache(std::uint64_t budget_bytes,
                     obs::MetricsRegistry* metrics = nullptr);

  /// Returns the entry (refreshing its recency) or nullptr. Counts a hit
  /// or a miss on the svc.plan_cache.* metrics either way.
  std::shared_ptr<const CachedPlan> get(const PlanKey& key);

  /// Inserts (or replaces) an entry, evicting least-recently-used entries
  /// until the footprint fits. Returns false when the entry alone exceeds
  /// the budget and was not stored.
  bool put(const PlanKey& key, std::shared_ptr<const CachedPlan> entry);

  void clear();

  std::uint64_t budget_bytes() const noexcept { return budget_bytes_; }
  std::uint64_t bytes() const;
  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  void evict_until_fits(std::uint64_t incoming_bytes);  // requires mutex_
  obs::MetricsRegistry& registry() const;

  const std::uint64_t budget_bytes_;
  obs::MetricsRegistry* const metrics_;
  mutable std::mutex mutex_;
  /// MRU at the front. The map points into the list.
  std::list<std::pair<PlanKey, std::shared_ptr<const CachedPlan>>> lru_;
  std::unordered_map<PlanKey, decltype(lru_)::iterator, PlanKeyHash> index_;
  std::uint64_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace svsim::svc
