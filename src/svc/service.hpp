// svc::Service: the compile-once serve-many simulation service.
//
// A Service owns a PlanCache and executes JobRequests against it:
//
//   normalize -> fingerprint -> cache get-or-compile -> admission -> execute
//
// Compilation (fusion, sweep grouping, distributed exchange placement, and
// the perf::cost_plan admission price) happens at most once per distinct
// (circuit, machine, options) key; every later submission of the same job
// reuses the cached plan and pays execution only. Shots amortize further:
// a noiseless job with trailing measurements runs ONE state preparation and
// samples (the Simulator::sample_counts fast path, bit-identical to it by
// construction), and a noisy job batches trajectories through
// sv::run_plan_batch so the plan walk and gate preparation are shared
// across the batch.
//
// The line-delimited serve loop (`svsim serve`, serve_session below) is a
// thin transport over run_job: one JSON job per input line, one JSON result
// per output line, one summary line at EOF. With workers > 1 the loop runs
// N executor threads against the shared PlanCache, each under its own
// ExecutionContext (private ThreadPool slice, shared metrics registry); a
// writer thread serializes result lines. docs/SERVICE.md specifies the
// schema; scripts/check_service_schema.py validates a captured session.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/threading.hpp"
#include "machine/machine_spec.hpp"
#include "obs/context.hpp"
#include "qc/circuit.hpp"
#include "sv/noise.hpp"
#include "svc/plan_cache.hpp"

namespace svsim::svc {

struct ServiceOptions {
  /// Machine whose cache topology sizes blocks and whose roofline prices
  /// admission. Owned by value: jobs may outlive any caller-held spec.
  machine::MachineSpec machine = machine::MachineSpec::a64fx();
  /// Plan-cache byte budget (LRU evicts beyond it).
  std::uint64_t cache_bytes = 64ull << 20;
  /// Admission ceiling on the modeled compute time of one job
  /// (cost.compute_seconds x trajectory executions); 0 = admit everything.
  double max_modeled_seconds = 0.0;
  /// Target resident bytes of one trajectory batch's state vectors; the
  /// batch size is max(1, batch_bytes / state_bytes), capped by the shot
  /// count. Results are invariant to the split (global trajectory seeding).
  std::uint64_t batch_bytes = 256ull << 20;
  /// Threads assumed by the admission price model (0 = all cores).
  unsigned threads = 0;
  /// Amplitude precision for jobs that do not request one ("f64" | "f32").
  /// Precision is part of the plan fingerprint (via amp_bytes), so f32 and
  /// f64 plans never share a cache entry.
  std::string default_precision = "f64";
  /// Worker pool for kernels (borrowed). A context passed to run_job takes
  /// precedence; this is the fallback for the context-free overload.
  ThreadPool* pool = &ThreadPool::global();
  /// Serve-loop executor threads. 1 keeps the classic single-consumer loop;
  /// N > 1 runs N workers against the shared PlanCache, each with a private
  /// ThreadPool slice of roughly hardware_concurrency()/N threads. The
  /// per-job result payload is identical either way (plans and trajectory
  /// seeding are order- and pool-size-independent); only line order and
  /// timing/cache-hit attribution may differ.
  unsigned workers = 1;
};

/// One job: a circuit plus execution options. Field-for-field what a serve
/// job line carries (parse_job_line); library users fill it directly.
struct JobRequest {
  std::string id;
  qc::Circuit circuit{1};
  std::size_t shots = 1024;
  bool fusion = false;
  unsigned fusion_width = 3;
  bool blocking = false;
  unsigned block_qubits = 0;
  unsigned ranks = 1;                ///< power of two; >1 = distributed plan
  std::string scheduler = "remap";   ///< "remap" | "naive"
  std::uint64_t seed = 1;
  std::string precision;             ///< "f64" | "f32"; empty = service default
  sv::NoiseModel noise;
};

/// One job's outcome, including the cache/admission attribution the serve
/// protocol reports.
struct JobResult {
  std::string id;
  bool ok = true;
  std::string error_code;     ///< "bad_request" | "admission_rejected" |
                              ///< "job_failed"; empty when ok
  std::string error_message;

  std::size_t shots = 0;
  /// MSB-first classical-register bitstrings -> occurrences.
  std::map<std::string, std::size_t> counts;

  bool cache_hit = false;
  std::string cache_key;      ///< PlanKey::to_string()
  std::string plan_summary;   ///< ExecutionPlan::summary_id()
  std::uint64_t plan_footprint_bytes = 0;

  double modeled_seconds = 0.0;        ///< admission price of this job
  double modeled_limit_seconds = 0.0;  ///< ceiling in force (0 = none)

  std::string mode;           ///< "sampled" | "trajectory"
  std::string precision;      ///< resolved amplitude precision ("f64"|"f32")
  std::size_t executions = 0; ///< plan executions (1 sampled, shots noisy)
  std::size_t batches = 0;
  std::size_t batch_size = 0; ///< states per full batch

  double compile_seconds = 0.0;  ///< 0 on a cache hit
  double execute_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Thread-safe service instance: run_job may be called concurrently from
/// any number of threads (the PlanCache is internally locked and the job
/// counters are atomic). Callers that execute in parallel should hand each
/// thread its own ExecutionContext with a private ThreadPool, as the serve
/// loop does — ThreadPool itself is not safe for concurrent external
/// submitters.
class Service {
 public:
  explicit Service(ServiceOptions options = {});

  /// Executes one job end to end. Never throws: failures come back as a
  /// JobResult with ok=false and a structured error code. This overload
  /// runs under a context built from the service options (options.pool).
  JobResult run_job(const JobRequest& request);

  /// Same, but every observable side effect — kernel pool, metrics
  /// registry, tracer spans, profiler samples — resolves through `ctx`.
  JobResult run_job(const JobRequest& request, const ExecutionContext& ctx);

  const ServiceOptions& options() const noexcept { return options_; }
  PlanCache& cache() noexcept { return cache_; }

  std::uint64_t jobs_run() const noexcept { return jobs_run_.load(); }
  std::uint64_t jobs_rejected() const noexcept {
    return jobs_rejected_.load();
  }
  std::uint64_t shots_executed() const noexcept {
    return shots_executed_.load();
  }

 private:
  JobResult execute(const JobRequest& request, const ExecutionContext& ctx);

  ServiceOptions options_;
  PlanCache cache_;
  std::atomic<std::uint64_t> jobs_run_{0};
  std::atomic<std::uint64_t> jobs_rejected_{0};
  std::atomic<std::uint64_t> shots_executed_{0};
};

/// Parses one serve job line (see docs/SERVICE.md#job-schema). Throws
/// svsim::Error on malformed input; the serve loop converts that into an
/// ok=false result with code "bad_request".
JobRequest parse_job_line(const std::string& line);

/// Renders a JobResult as one line of JSON (no trailing newline).
std::string result_to_json(const JobResult& result);

/// What one serve session processed (mirrors the emitted summary line).
struct ServeStats {
  std::uint64_t jobs = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t shots = 0;
  unsigned workers = 1;
  std::vector<std::uint64_t> worker_jobs;  ///< jobs executed per worker
};

/// Line-delimited serve loop: one JSON job per line on `in`, one JSON
/// result line per job on `out`, then one summary line. Blank lines are
/// skipped; jobs without an "id" get "job-<seq>". A reader thread parses
/// ahead through a JobQueue while executor threads run jobs, so parsing
/// overlaps simulation; a socket transport would bind here without touching
/// Service.
///
/// With options().workers == 1 result lines come out in submission order.
/// With workers > 1, N executor threads pull from the queue — each under a
/// private ExecutionContext/ThreadPool slice — and a writer thread emits
/// result lines in completion order (clients correlate by "id"). The result
/// *set* is identical across worker counts for the same input. Returns the
/// session totals.
ServeStats serve_session(std::istream& in, std::ostream& out,
                         Service& service);

}  // namespace svsim::svc
