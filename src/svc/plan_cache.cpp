#include "svc/plan_cache.hpp"

#include <bit>
#include <cstdio>

#include "common/error.hpp"
#include "machine/machine_spec.hpp"
#include "obs/metrics.hpp"
#include "qc/circuit.hpp"

namespace svsim::svc {

namespace {

/// FNV-1a 64-bit accumulator. Fast, dependency-free, and good enough for a
/// cache key space of a few thousand circuits; collisions only cost a wrong
/// cache hit, which validate()'d width checks would surface immediately.
class Fnv1a {
 public:
  void bytes(const void* data, std::size_t len) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ull;
    }
  }
  void u64(std::uint64_t v) noexcept { bytes(&v, sizeof(v)); }
  void u32(std::uint32_t v) noexcept { bytes(&v, sizeof(v)); }
  void f64(double v) noexcept { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) noexcept {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

void hash_complex(Fnv1a& h, const qc::cplx& c) {
  h.f64(c.real());
  h.f64(c.imag());
}


}  // namespace

std::string PlanKey::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "c%016llx.m%016llx.o%016llx",
                static_cast<unsigned long long>(circuit_fp),
                static_cast<unsigned long long>(machine_fp),
                static_cast<unsigned long long>(options_fp));
  return buf;
}

std::uint64_t fingerprint_circuit(const qc::Circuit& circuit) {
  Fnv1a h;
  h.u32(circuit.num_qubits());
  h.u32(circuit.num_clbits());
  h.u64(circuit.size());
  for (const auto& g : circuit.gates()) {
    h.u32(static_cast<std::uint32_t>(g.kind));
    h.u64(g.qubits.size());
    for (unsigned q : g.qubits) h.u32(q);
    h.u64(g.params.size());
    for (double p : g.params) h.f64(p);
    h.u32(g.cbit);
    if (g.kind == qc::GateKind::DIAG) {
      const auto& diag = g.diagonal_entries();
      h.u64(diag.size());
      for (const auto& d : diag) hash_complex(h, d);
    } else if (g.kind == qc::GateKind::UNITARY ||
               g.kind == qc::GateKind::U2Q) {
      const auto& m = g.matrix_payload();
      h.u64(m.dim());
      for (unsigned r = 0; r < m.dim(); ++r)
        for (unsigned c = 0; c < m.dim(); ++c) hash_complex(h, m(r, c));
    }
  }
  return h.value();
}

std::uint64_t fingerprint_machine(const machine::MachineSpec* machine) {
  Fnv1a h;
  if (machine == nullptr) {
    h.str("<none>");
    return h.value();
  }
  const machine::MachineSpec& m = *machine;
  h.str(m.name);
  h.u32(m.numa_domains);
  h.u32(m.cores_per_domain);
  h.f64(m.clock_ghz);
  h.u32(m.simd_bits);
  h.u32(m.fma_pipes_per_core);
  h.f64(m.mem_bandwidth_gbps_per_domain);
  h.f64(m.mem_stream_efficiency);
  h.f64(m.core_mem_bandwidth_gbps);
  h.u64(m.caches.size());
  for (const auto& c : m.caches) {
    h.str(c.name);
    h.u64(c.size_bytes);
    h.u32(c.line_bytes);
    h.u32(c.shared_by_cores);
    h.f64(c.core_bandwidth_gbps);
    h.f64(c.domain_bandwidth_gbps);
  }
  return h.value();
}

std::uint64_t fingerprint_plan_options(const sv::PlanOptions& options,
                                       unsigned ranks,
                                       const std::string& scheduler,
                                       unsigned amp_bytes) {
  Fnv1a h;
  h.u32(options.fusion ? 1 : 0);
  h.u32(options.fusion_width);
  h.u32(options.blocking ? 1 : 0);
  h.u32(options.block_qubits);
  // Hash the budget auto sizing will actually use, not the raw knob: a
  // probed-vs-declared budget switch (SVSIM_CACHE_BUDGET) changes block
  // sizes and therefore must change the key.
  h.u64(options.blocking ? sv::plan_cache_budget(options) : 0);
  h.u32(options.amp_bytes);
  h.u32(options.max_sweep_gates);
  h.u32(options.min_free_qubits);
  h.u32(ranks);
  h.str(scheduler);
  h.u32(amp_bytes);
  return h.value();
}

std::uint64_t plan_footprint_bytes(const sv::ExecutionPlan& plan) {
  std::uint64_t total = sizeof(sv::ExecutionPlan);
  total += plan.final_slot_of.size() * sizeof(unsigned);
  for (const auto& phase : plan.phases) {
    total += sizeof(sv::PlanPhase);
    total += phase.note.size();
    total += phase.hops.size() * sizeof(sv::ExchangeHop);
    for (const auto& g : phase.gates) {
      total += sizeof(qc::Gate);
      total += g.qubits.size() * sizeof(unsigned);
      total += g.params.size() * sizeof(double);
      if (g.kind == qc::GateKind::DIAG) {
        total += g.diagonal_entries().size() * sizeof(qc::cplx);
      } else if (g.kind == qc::GateKind::UNITARY ||
                 g.kind == qc::GateKind::U2Q) {
        const std::uint64_t dim = g.matrix_payload().dim();
        total += dim * dim * sizeof(qc::cplx);
      }
    }
  }
  return total;
}

PlanCache::PlanCache(std::uint64_t budget_bytes, obs::MetricsRegistry* metrics)
    : budget_bytes_(budget_bytes), metrics_(metrics) {
  require(budget_bytes_ > 0, "PlanCache: budget must be positive");
}

// Handles resolve per call; a function-local static handle struct here used
// to pin the first registry forever (stale after a registry substitution —
// see tests/test_context.cpp).
obs::MetricsRegistry& PlanCache::registry() const {
  return metrics_ != nullptr ? *metrics_ : obs::MetricsRegistry::global();
}

std::shared_ptr<const CachedPlan> PlanCache::get(const PlanKey& key) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    registry().counter("svc.plan_cache.misses").increment();
    return nullptr;
  }
  ++hits_;
  registry().counter("svc.plan_cache.hits").increment();
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

bool PlanCache::put(const PlanKey& key,
                    std::shared_ptr<const CachedPlan> entry) {
  SVSIM_ASSERT(entry != nullptr && entry->plan != nullptr);
  std::lock_guard lock(mutex_);
  const std::uint64_t incoming = entry->footprint_bytes;
  if (const auto it = index_.find(key); it != index_.end()) {
    bytes_ -= it->second->second->footprint_bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  if (incoming > budget_bytes_) {
    registry().gauge("svc.plan_cache.bytes").set(static_cast<double>(bytes_));
    return false;  // one oversized tenant must not flush everyone else
  }
  evict_until_fits(incoming);
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  bytes_ += incoming;
  registry().gauge("svc.plan_cache.bytes").set(static_cast<double>(bytes_));
  return true;
}

void PlanCache::evict_until_fits(std::uint64_t incoming_bytes) {
  while (!lru_.empty() && bytes_ + incoming_bytes > budget_bytes_) {
    const auto victim = std::prev(lru_.end());
    bytes_ -= victim->second->footprint_bytes;
    index_.erase(victim->first);
    lru_.erase(victim);
    ++evictions_;
    registry().counter("svc.plan_cache.evictions").increment();
  }
}

void PlanCache::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  registry().gauge("svc.plan_cache.bytes").set(0.0);
}

std::uint64_t PlanCache::bytes() const {
  std::lock_guard lock(mutex_);
  return bytes_;
}

std::size_t PlanCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

std::uint64_t PlanCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t PlanCache::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

std::uint64_t PlanCache::evictions() const {
  std::lock_guard lock(mutex_);
  return evictions_;
}

}  // namespace svsim::svc
