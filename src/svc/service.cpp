#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "dist/dist_plan.hpp"
#include "machine/exec_config.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perf/perf_simulator.hpp"
#include "qc/library.hpp"
#include "qc/qasm.hpp"
#include "sv/engine.hpp"
#include "sv/plan.hpp"
#include "sv/simd/simd.hpp"
#include "sv/simulator.hpp"
#include "svc/job_queue.hpp"
#include "svc/json.hpp"

namespace svsim::svc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// True if every MEASURE comes after every non-measure operation (the same
/// predicate Simulator::sample_counts gates its fast path on).
bool measurements_trailing(const qc::Circuit& circuit) {
  bool seen_measure = false;
  for (const auto& g : circuit.gates()) {
    if (g.kind == qc::GateKind::MEASURE) {
      seen_measure = true;
    } else if (seen_measure && g.kind != qc::GateKind::BARRIER) {
      return false;
    }
  }
  return true;
}

/// MSB-first classical-register rendering of a counts key (identical to the
/// `svsim run` output labels).
std::string bit_label(std::uint64_t key, unsigned width) {
  std::string label;
  label.reserve(width);
  for (unsigned b = width; b-- > 0;)
    label += ((key >> b) & 1) ? '1' : '0';
  return label;
}

sv::PlanOptions plan_options_for(const JobRequest& req,
                                 const machine::MachineSpec* machine,
                                 unsigned element_bytes) {
  sv::PlanOptions po;
  po.fusion = req.fusion;
  po.fusion_width = req.fusion_width;
  // Mirrors Simulator::run_in_place: channels sample after every gate, so
  // the blocked path only serves noiseless execution.
  po.blocking = req.blocking && req.noise.channels().empty();
  po.block_qubits = req.block_qubits;
  // f32 amplitudes halve the footprint, so auto-sized blocks go twice as
  // deep; amp_bytes also feeds the plan fingerprint, keeping precisions in
  // separate cache entries.
  po.amp_bytes = 2 * element_bytes;
  po.machine = machine;
  return po;
}

sv::ExecutionPlan compile_for_service(const qc::Circuit& circuit,
                                      const sv::PlanOptions& po,
                                      unsigned ranks,
                                      const std::string& scheduler) {
  sv::ExecutionPlan plan;
  if (ranks <= 1) {
    plan = sv::compile_plan(circuit, po);
  } else {
    dist::DistExecOptions dopts;
    dopts.scheduler = scheduler == "naive" ? dist::CommScheduler::Naive
                                           : dist::CommScheduler::Remap;
    dopts.plan = po;
    plan = dist::compile_distributed(circuit, ilog2(ranks), dopts);
  }
  plan.validate();
  return plan;
}

/// Runs the cached plan at amplitude precision T and fills the counts and
/// batch attribution. The RNG discipline (sampling, then per-sample
/// readout flips; global trajectory seeding) is identical across
/// precisions — only the state element type changes.
template <typename T>
void execute_counts(const CachedPlan& cached, const JobRequest& request,
                    const ServiceOptions& options,
                    const sv::SimulatorOptions& sim_opts,
                    const ExecutionContext& ctx, unsigned label_width,
                    JobResult& result) {
  const unsigned n = cached.plan->num_qubits;
  ThreadPool* const pool = &ctx.pool();
  if (cached.sampled_mode) {
    // One preparation, `shots` samples; the RNG consumption replicates
    // Simulator::sample_counts exactly.
    sv::Simulator<T> sim(sim_opts);
    sv::StateVector<T> state(n, pool);
    sim.run_plan(state, *cached.plan);
    const auto samples = state.sample(request.shots, sim.rng());
    const bool readout = request.noise.has_readout_error();
    for (std::uint64_t basis : samples) {
      std::uint64_t key_bits = 0;
      if (!cached.measures.empty()) {
        for (const auto& [q, c] : cached.measures) {
          bool bit = test_bit(basis, q);
          if (readout) bit = request.noise.flip_readout(bit, sim.rng());
          if (bit) key_bits = set_bit(key_bits, c);
        }
      } else {
        key_bits = basis;
      }
      ++result.counts[bit_label(key_bits, label_width)];
    }
    result.batches = 1;
    result.batch_size = 1;
  } else {
    // Trajectory mode: batches of states walk the plan together, each
    // trajectory keyed by its global index so the split does not affect
    // the statistics.
    const std::uint64_t state_bytes = pow2(n) * std::uint64_t{2 * sizeof(T)};
    const std::size_t batch_size = static_cast<std::size_t>(std::clamp<
        std::uint64_t>(options.batch_bytes / std::max<std::uint64_t>(
                           state_bytes, 1),
                       1, request.shots));
    sv::Simulator<T> sim(sim_opts);
    std::size_t done = 0;
    while (done < request.shots) {
      const std::size_t this_batch =
          std::min(batch_size, request.shots - done);
      std::vector<sv::StateVector<T>> states;
      states.reserve(this_batch);
      std::vector<sv::StateVector<T>*> ptrs;
      ptrs.reserve(this_batch);
      for (std::size_t i = 0; i < this_batch; ++i) {
        states.emplace_back(n, pool);
        ptrs.push_back(&states.back());
      }
      const auto bits =
          sim.run_plan_batch(ptrs, *cached.plan, /*first_trajectory=*/done);
      for (const auto& traj_bits : bits) {
        std::uint64_t key_bits = 0;
        for (std::size_t b = 0; b < traj_bits.size(); ++b)
          if (traj_bits[b]) key_bits = set_bit(key_bits, unsigned(b));
        ++result.counts[bit_label(key_bits, label_width)];
      }
      done += this_batch;
      ++result.batches;
    }
    result.batch_size = batch_size;
  }
}

}  // namespace

Service::Service(ServiceOptions options)
    : options_(std::move(options)), cache_(options_.cache_bytes) {
  SVSIM_ASSERT(options_.pool != nullptr);
  require(options_.batch_bytes > 0, "Service: batch_bytes must be positive");
}

JobResult Service::run_job(const JobRequest& request) {
  ExecutionContext ctx;
  ctx.with_pool(*options_.pool);
  return run_job(request, ctx);
}

JobResult Service::run_job(const JobRequest& request,
                           const ExecutionContext& ctx) {
  obs::ScopedSpan span("svc.job", obs::SpanCategory::Region, ctx.tracer());
  // Counter handles resolve per job through the context's registry; a
  // function-local static here would pin the first registry forever.
  obs::MetricsRegistry& registry = ctx.metrics();
  registry.counter("svc.jobs").increment();
  jobs_run_.fetch_add(1, std::memory_order_relaxed);
  try {
    JobResult result = execute(request, ctx);
    if (!result.ok && result.error_code == "admission_rejected") {
      registry.counter("svc.jobs_rejected").increment();
      jobs_rejected_.fetch_add(1, std::memory_order_relaxed);
    }
    if (result.ok) {
      registry.counter("svc.shots").add(result.shots);
      shots_executed_.fetch_add(result.shots, std::memory_order_relaxed);
    }
    return result;
  } catch (const std::exception& e) {
    JobResult result;
    result.id = request.id;
    result.ok = false;
    result.error_code = "job_failed";
    result.error_message = e.what();
    return result;
  }
}

JobResult Service::execute(const JobRequest& request,
                           const ExecutionContext& ctx) {
  const auto job_start = Clock::now();
  JobResult result;
  result.id = request.id;
  result.shots = request.shots;
  result.modeled_limit_seconds = options_.max_modeled_seconds;
  require(request.shots > 0, "job: shots must be positive");
  require(request.ranks >= 1 && is_pow2(request.ranks),
          "job: ranks must be a power of two");
  require(request.scheduler == "remap" || request.scheduler == "naive",
          "job: scheduler must be remap or naive");
  const std::string precision = request.precision.empty()
                                    ? options_.default_precision
                                    : request.precision;
  require(precision == "f64" || precision == "f32",
          "job: precision must be f64 or f32");
  const unsigned element_bytes = precision == "f32" ? 4 : 8;
  result.precision = precision;

  // Normalize the way `svsim run` does: a purely unitary circuit measures
  // every qubit, so counts always key on the classical register.
  qc::Circuit circuit = request.circuit;
  if (circuit.is_unitary()) circuit.measure_all();

  sv::PlanOptions po =
      plan_options_for(request, &options_.machine, element_bytes);
  // Compile-path telemetry (fusion/sweep/plan counters) lands in the
  // context's registry; the pointer is not part of the fingerprint.
  po.metrics = &ctx.metrics();

  // ---- Cache lookup (compile at most once per key) ----------------------
  PlanKey key;
  key.circuit_fp = fingerprint_circuit(circuit);
  key.machine_fp = fingerprint_machine(&options_.machine);
  key.options_fp = fingerprint_plan_options(po, request.ranks,
                                            request.scheduler, po.amp_bytes);
  result.cache_key = key.to_string();

  std::shared_ptr<const CachedPlan> cached = cache_.get(key);
  result.cache_hit = cached != nullptr;
  if (cached == nullptr) {
    const auto compile_start = Clock::now();
    auto entry = std::make_shared<CachedPlan>();
    entry->num_clbits = circuit.num_clbits();

    const bool has_measure = std::any_of(
        circuit.gates().begin(), circuit.gates().end(),
        [](const qc::Gate& g) { return g.kind == qc::GateKind::MEASURE; });
    const bool has_reset = std::any_of(
        circuit.gates().begin(), circuit.gates().end(),
        [](const qc::Gate& g) { return g.kind == qc::GateKind::RESET; });
    entry->sampled_mode = request.noise.channels().empty() && !has_reset &&
                          (!has_measure || measurements_trailing(circuit));

    if (entry->sampled_mode) {
      // Prepare-once-sample-many: strip the trailing measures and compile
      // the unitary part, exactly as Simulator::sample_counts does, so
      // sampled service results are bit-identical to it.
      qc::Circuit unitary_part(circuit.num_qubits(), circuit.num_clbits());
      for (const auto& g : circuit.gates()) {
        if (g.kind == qc::GateKind::MEASURE) {
          entry->measures.emplace_back(g.qubits[0], g.cbit);
        } else if (g.kind != qc::GateKind::BARRIER) {
          unitary_part.append(g);
        }
      }
      entry->plan = std::make_shared<const sv::ExecutionPlan>(
          compile_for_service(unitary_part, po, request.ranks,
                              request.scheduler));
    } else {
      entry->plan = std::make_shared<const sv::ExecutionPlan>(
          compile_for_service(circuit, po, request.ranks, request.scheduler));
    }

    machine::ExecConfig cfg;
    cfg.threads = options_.threads;
    cfg.element_bytes = element_bytes;
    entry->cost = perf::cost_plan(*entry->plan, options_.machine, cfg, ctx);
    entry->footprint_bytes = plan_footprint_bytes(*entry->plan);
    result.compile_seconds = seconds_since(compile_start);
    cache_.put(key, entry);
    cached = std::move(entry);
  }

  result.plan_summary = cached->plan->summary_id();
  result.plan_footprint_bytes = cached->footprint_bytes;
  result.mode = cached->sampled_mode ? "sampled" : "trajectory";
  result.executions = cached->sampled_mode ? 1 : request.shots;

  // ---- Admission --------------------------------------------------------
  result.modeled_seconds =
      cached->cost.compute_seconds * static_cast<double>(result.executions);
  if (options_.max_modeled_seconds > 0.0 &&
      result.modeled_seconds > options_.max_modeled_seconds) {
    result.ok = false;
    result.error_code = "admission_rejected";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "modeled compute %.3gs exceeds the %.3gs admission ceiling",
                  result.modeled_seconds, options_.max_modeled_seconds);
    result.error_message = buf;
    result.total_seconds = seconds_since(job_start);
    return result;  // the plan stays cached for a cheaper resubmission
  }

  // ---- Execute ----------------------------------------------------------
  const auto exec_start = Clock::now();
  const unsigned n = cached->plan->num_qubits;
  const bool has_measure = !cached->measures.empty() ||
                           (!cached->sampled_mode && cached->num_clbits > 0);
  const unsigned label_width =
      has_measure ? std::max(cached->num_clbits, 1u) : n;

  sv::SimulatorOptions sim_opts;
  sim_opts.pool = options_.pool;
  sim_opts.context = &ctx;
  sim_opts.seed = request.seed;
  sim_opts.noise = request.noise;

  if (element_bytes == 4) {
    execute_counts<float>(*cached, request, options_, sim_opts, ctx,
                          label_width, result);
  } else {
    execute_counts<double>(*cached, request, options_, sim_opts, ctx,
                           label_width, result);
  }

  result.execute_seconds = seconds_since(exec_start);
  result.total_seconds = seconds_since(job_start);
  return result;
}

// ---- Serve protocol -----------------------------------------------------

namespace {

sv::NoiseModel parse_noise(const json::Value& v) {
  sv::NoiseModel noise;
  if (const json::Value* p = v.find("depolarizing"))
    noise.add_depolarizing(p->as_number("noise.depolarizing"));
  if (const json::Value* p = v.find("bit_flip"))
    noise.add_bit_flip(p->as_number("noise.bit_flip"));
  if (const json::Value* p = v.find("phase_flip"))
    noise.add_phase_flip(p->as_number("noise.phase_flip"));
  if (const json::Value* p = v.find("amplitude_damping"))
    noise.add_amplitude_damping(p->as_number("noise.amplitude_damping"));
  if (const json::Value* p = v.find("readout")) {
    require(p->is_array() && p->array.size() == 2,
            "noise.readout must be [p0_to_1, p1_to_0]");
    noise.set_readout_error(p->array[0].as_number("noise.readout[0]"),
                            p->array[1].as_number("noise.readout[1]"));
  }
  return noise;
}

qc::Circuit parse_circuit(const json::Value& job) {
  if (const json::Value* q = job.find("qasm"))
    return qc::parse_qasm(q->as_string("qasm"));
  if (const json::Value* q = job.find("qft"))
    return qc::qft(static_cast<unsigned>(q->as_number("qft")));
  if (const json::Value* q = job.find("qv")) {
    require(q->is_array() && q->array.size() >= 2,
            "qv must be [qubits, depth] or [qubits, depth, seed]");
    const auto nq = static_cast<unsigned>(q->array[0].as_number("qv[0]"));
    const auto d = static_cast<unsigned>(q->array[1].as_number("qv[1]"));
    const auto seed =
        q->array.size() > 2
            ? static_cast<std::uint64_t>(q->array[2].as_number("qv[2]"))
            : 1234;
    return qc::random_quantum_volume(nq, d, seed);
  }
  throw Error("job needs a circuit: one of \"qasm\", \"qft\", \"qv\"");
}

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

JobRequest parse_job_line(const std::string& line) {
  const json::Value job = json::parse(line);
  require(job.is_object(), "job line must be a JSON object");
  JobRequest req;
  req.id = job.get_string("id", "");
  req.circuit = parse_circuit(job);
  const double shots = job.get_number("shots", 1024.0);
  require(shots >= 1.0, "shots must be >= 1");
  req.shots = static_cast<std::size_t>(shots);
  if (const json::Value* o = job.find("options")) {
    require(o->is_object(), "\"options\" must be an object");
    req.fusion = o->get_bool("fusion", false);
    req.fusion_width =
        static_cast<unsigned>(o->get_number("fusion_width", 3));
    req.blocking = o->get_bool("blocked", false);
    req.block_qubits =
        static_cast<unsigned>(o->get_number("block_qubits", 0));
    req.ranks = static_cast<unsigned>(o->get_number("ranks", 1));
    req.scheduler = o->get_string("sched", "remap");
    req.seed = static_cast<std::uint64_t>(o->get_number("seed", 1));
    req.precision = o->get_string("precision", "");
  }
  if (const json::Value* noise = job.find("noise")) {
    require(noise->is_object(), "\"noise\" must be an object");
    req.noise = parse_noise(*noise);
  }
  return req;
}

std::string result_to_json(const JobResult& r) {
  std::ostringstream out;
  out << "{\"type\":\"result\",\"id\":\"" << json::escape(r.id) << "\","
      << "\"ok\":" << (r.ok ? "true" : "false");
  if (!r.ok) {
    out << ",\"error\":{\"code\":\"" << json::escape(r.error_code)
        << "\",\"message\":\"" << json::escape(r.error_message) << "\"}";
  }
  out << ",\"shots\":" << r.shots;
  if (r.ok) {
    out << ",\"counts\":{";
    bool first = true;
    for (const auto& [bits, count] : r.counts) {
      if (!first) out << ",";
      first = false;
      out << "\"" << bits << "\":" << count;
    }
    out << "},\"mode\":\"" << r.mode << "\",\"precision\":\""
        << json::escape(r.precision) << "\",\"executions\":" << r.executions
        << ",\"batches\":" << r.batches
        << ",\"batch_size\":" << r.batch_size;
  }
  if (!r.cache_key.empty()) {
    out << ",\"cache\":{\"hit\":" << (r.cache_hit ? "true" : "false")
        << ",\"key\":\"" << r.cache_key << "\",\"plan\":\""
        << json::escape(r.plan_summary)
        << "\",\"footprint_bytes\":" << r.plan_footprint_bytes << "}";
  }
  out << ",\"admission\":{\"modeled_seconds\":"
      << format_double(r.modeled_seconds) << ",\"limit_seconds\":"
      << format_double(r.modeled_limit_seconds) << "}";
  out << ",\"timing\":{\"compile_seconds\":"
      << format_double(r.compile_seconds) << ",\"execute_seconds\":"
      << format_double(r.execute_seconds) << ",\"total_seconds\":"
      << format_double(r.total_seconds) << "}}";
  return out.str();
}

namespace {

/// One parsed (or failed-to-parse) job line in flight between the reader
/// thread and the executing thread.
struct QueueItem {
  std::uint64_t seq = 0;
  JobRequest request;
  bool parsed = false;
  std::string parse_error;
};

bool blank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

ServeStats serve_session(std::istream& in, std::ostream& out,
                         Service& service) {
  const unsigned workers = std::max(1u, service.options().workers);

  JobQueue<QueueItem> queue;
  std::thread reader([&in, &queue] {
    std::string line;
    std::uint64_t seq = 0;
    while (std::getline(in, line)) {
      if (blank(line)) continue;
      QueueItem item;
      item.seq = ++seq;
      try {
        item.request = parse_job_line(line);
        item.parsed = true;
      } catch (const std::exception& e) {
        item.parse_error = e.what();
        // Salvage the submitted id when the line was at least valid JSON,
        // so the client can correlate the bad_request result.
        try {
          const json::Value job = json::parse(line);
          if (job.is_object()) item.request.id = job.get_string("id", "");
        } catch (const std::exception&) {
        }
      }
      queue.push(std::move(item));
    }
    queue.close();
  });

  // Per-worker execution contexts. Each worker owns a private ThreadPool
  // slice — ThreadPool is not safe for concurrent external submitters, so
  // workers never share one. All contexts resolve to the process metrics
  // registry, so session metrics merge by construction (counters are
  // atomic). A single worker reuses the service's configured pool and pops
  // in submission order, preserving the classic serve behavior exactly.
  std::vector<std::unique_ptr<ThreadPool>> slices;
  std::vector<ExecutionContext> contexts;
  contexts.reserve(workers);
  if (workers == 1) {
    contexts.emplace_back();
    contexts.back().with_pool(*service.options().pool);
  } else {
    ContextConfig config;
    config.element_bytes =
        service.options().default_precision == "f32" ? 4u : 8u;
    config.simd_isa = static_cast<int>(sv::simd::active_backend().isa);
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned per_worker = std::max(1u, hw / workers);
    for (unsigned w = 0; w < workers; ++w) {
      slices.push_back(std::make_unique<ThreadPool>(per_worker));
      contexts.emplace_back();
      contexts.back().with_pool(*slices.back()).with_config(config);
    }
  }

  ServeStats stats;
  stats.workers = workers;
  stats.worker_jobs.assign(workers, 0);
  contexts.front().metrics().gauge("svc.workers").set(workers);

  // Result lines flow through an output queue drained by one writer thread,
  // so concurrent workers never interleave bytes on `out`. Lines appear in
  // completion order; clients correlate by "id".
  JobQueue<std::string> output;
  std::thread writer([&out, &output] {
    std::string line;
    while (output.pop(line)) out << line << "\n" << std::flush;
  });

  std::mutex stats_mutex;
  auto run_worker = [&](unsigned w) {
    const ExecutionContext& ctx = contexts[w];
    const std::string jobs_counter =
        "svc.worker." + std::to_string(w) + ".jobs";
    QueueItem item;
    while (queue.pop(item)) {
      JobResult result;
      if (!item.parsed) {
        result.ok = false;
        result.error_code = "bad_request";
        result.error_message = item.parse_error;
        result.id = item.request.id;
      } else {
        if (item.request.id.empty())
          item.request.id = "job-" + std::to_string(item.seq);
        result = service.run_job(item.request, ctx);
      }
      if (result.id.empty()) result.id = "job-" + std::to_string(item.seq);
      ctx.metrics().counter(jobs_counter).increment();
      {
        std::lock_guard<std::mutex> lock(stats_mutex);
        ++stats.jobs;
        ++stats.worker_jobs[w];
        if (result.ok) {
          ++stats.ok;
          stats.shots += result.shots;
        } else {
          ++stats.errors;
        }
      }
      output.push(result_to_json(result));
    }
  };
  std::vector<std::thread> executors;
  executors.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) executors.emplace_back(run_worker, w);
  for (auto& t : executors) t.join();
  reader.join();
  output.close();
  writer.join();

  PlanCache& cache = service.cache();
  out << "{\"type\":\"summary\",\"jobs\":" << stats.jobs
      << ",\"ok\":" << stats.ok << ",\"errors\":" << stats.errors
      << ",\"shots\":" << stats.shots << ",\"svc\":{\"workers\":"
      << stats.workers << ",\"worker_jobs\":[";
  for (unsigned w = 0; w < workers; ++w) {
    if (w != 0) out << ",";
    out << stats.worker_jobs[w];
  }
  out << "]},\"plan_cache\":{\"hits\":"
      << cache.hits() << ",\"misses\":" << cache.misses()
      << ",\"evictions\":" << cache.evictions() << ",\"entries\":"
      << cache.size() << ",\"bytes\":" << cache.bytes()
      << ",\"budget_bytes\":" << cache.budget_bytes() << "}}\n"
      << std::flush;
  return stats;
}

}  // namespace svsim::svc
