// Minimal JSON reader for the service job protocol.
//
// The repo has several JSON *writers* (plan dumps, profile reports, bench
// records) but the serve loop is the first consumer of JSON *input*: one
// job object per line on stdin. This is a small recursive-descent parser
// over an ordered DOM — no external dependency, UTF-8 passed through
// verbatim (only \uXXXX escapes below 0x80 are decoded; others are kept as
// their escape text, which is fine for the protocol's ASCII field names).
// docs/SERVICE.md specifies the job/result schema this feeds.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace svsim::svc::json {

/// One parsed JSON value. Objects keep insertion order (the protocol never
/// relies on it, but error messages and tests read better).
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const noexcept { return kind == Kind::Null; }
  bool is_bool() const noexcept { return kind == Kind::Bool; }
  bool is_number() const noexcept { return kind == Kind::Number; }
  bool is_string() const noexcept { return kind == Kind::String; }
  bool is_array() const noexcept { return kind == Kind::Array; }
  bool is_object() const noexcept { return kind == Kind::Object; }

  /// Member lookup (objects only); nullptr when absent or not an object.
  const Value* find(const std::string& key) const noexcept;

  // Checked accessors: throw svsim::Error naming `where` on kind mismatch
  // or absence, so job-parse failures carry a usable diagnostic.
  const Value& at(const std::string& key, const std::string& where) const;
  bool as_bool(const std::string& where) const;
  double as_number(const std::string& where) const;
  const std::string& as_string(const std::string& where) const;

  // Optional-with-default member reads for the job options block.
  bool get_bool(const std::string& key, bool fallback) const;
  double get_number(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
};

/// Parses one complete JSON document; throws svsim::Error with a byte
/// offset on malformed input or trailing garbage.
Value parse(const std::string& text);

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included) — the writer-side counterpart the result emitter uses.
std::string escape(const std::string& s);

}  // namespace svsim::svc::json
