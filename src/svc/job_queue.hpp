// JobQueue<T>: the bounded-by-nothing FIFO between job producers and the
// service worker.
//
// The serve loop runs two threads: a reader that parses job lines as they
// arrive and a worker that executes them in admission order (single worker,
// so result lines come out in submission order without reordering logic).
// pop() blocks until an item or close(); close() drains — already-queued
// items are still delivered, matching an EOF on stdin that must not drop
// submitted jobs. Library users can drive svc::Service directly and skip
// the queue entirely.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace svsim::svc {

template <typename T>
class JobQueue {
 public:
  /// Enqueues one item. No-op after close() (the producer lost the race
  /// with shutdown; the item is dropped, mirroring a closed socket).
  void push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
  }

  /// Blocks for the next item. Returns false — and leaves `out` untouched —
  /// once the queue is closed and drained.
  bool pop(T& out) {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Marks the end of input; queued items still drain through pop().
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace svsim::svc
