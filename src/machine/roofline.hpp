// Roofline model: attainable performance from arithmetic intensity.
//
// Attainable GFLOPS = min(compute roof, AI x bandwidth roof), where the
// compute roof scales with the placement's active cores, the configured
// vector length, and a per-kernel SIMD efficiency, and the bandwidth roof is
// the effective-bandwidth model's rate for the sweep footprint.
#pragma once

#include <cstdint>

#include "machine/bandwidth_model.hpp"
#include "machine/exec_config.hpp"
#include "machine/machine_spec.hpp"

namespace svsim::machine {

/// Peak GFLOPS of the placement under `config` (vector-length override and
/// precision applied), before SIMD-efficiency derating.
double placement_peak_gflops(const MachineSpec& m, const Placement& p,
                             const ExecConfig& config);

struct RooflinePoint {
  double arithmetic_intensity = 0.0;  ///< flops / byte
  double attainable_gflops = 0.0;
  double compute_roof_gflops = 0.0;
  double bandwidth_gbps = 0.0;
  bool memory_bound = false;
};

/// Evaluates the roofline at the given arithmetic intensity for a sweep of
/// `footprint_bytes`, derating the compute roof by `simd_efficiency`.
RooflinePoint roofline(const MachineSpec& m, const Placement& p,
                       const ExecConfig& config, double arithmetic_intensity,
                       double simd_efficiency, std::uint64_t footprint_bytes);

/// The AI at which compute and bandwidth roofs intersect (the ridge point).
double ridge_intensity(const MachineSpec& m, const Placement& p,
                       const ExecConfig& config, double simd_efficiency,
                       std::uint64_t footprint_bytes);

/// A workload placed on the roofline: its flop/byte totals plus the model
/// evaluated at the resulting arithmetic intensity.
struct RooflinePlacement {
  double flops = 0.0;
  double bytes = 0.0;
  RooflinePoint point;

  /// GFLOPS the workload achieves if it runs in `seconds`.
  double achieved_gflops(double seconds) const noexcept {
    return seconds > 0.0 ? flops / seconds * 1e-9 : 0.0;
  }
  /// Fraction of the attainable roof that `seconds` realizes.
  double roof_fraction(double seconds) const noexcept {
    return point.attainable_gflops > 0.0
               ? achieved_gflops(seconds) / point.attainable_gflops
               : 0.0;
  }
};

/// Places a (flops, bytes) workload on the roofline: AI = flops / bytes
/// (0 when no bytes move) evaluated under the usual roofs. This is the one
/// placement computation — bench_fig5_roofline's points and the profiler's
/// per-phase placement both go through it, so figure and profile reports
/// cannot disagree.
RooflinePlacement place_on_roofline(const MachineSpec& m, const Placement& p,
                                    const ExecConfig& config, double flops,
                                    double bytes, double simd_efficiency,
                                    std::uint64_t footprint_bytes);

}  // namespace svsim::machine
