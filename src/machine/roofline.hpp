// Roofline model: attainable performance from arithmetic intensity.
//
// Attainable GFLOPS = min(compute roof, AI x bandwidth roof), where the
// compute roof scales with the placement's active cores, the configured
// vector length, and a per-kernel SIMD efficiency, and the bandwidth roof is
// the effective-bandwidth model's rate for the sweep footprint.
#pragma once

#include <cstdint>

#include "machine/bandwidth_model.hpp"
#include "machine/exec_config.hpp"
#include "machine/machine_spec.hpp"

namespace svsim::machine {

/// Peak GFLOPS of the placement under `config` (vector-length override and
/// precision applied), before SIMD-efficiency derating.
double placement_peak_gflops(const MachineSpec& m, const Placement& p,
                             const ExecConfig& config);

struct RooflinePoint {
  double arithmetic_intensity = 0.0;  ///< flops / byte
  double attainable_gflops = 0.0;
  double compute_roof_gflops = 0.0;
  double bandwidth_gbps = 0.0;
  bool memory_bound = false;
};

/// Evaluates the roofline at the given arithmetic intensity for a sweep of
/// `footprint_bytes`, derating the compute roof by `simd_efficiency`.
RooflinePoint roofline(const MachineSpec& m, const Placement& p,
                       const ExecConfig& config, double arithmetic_intensity,
                       double simd_efficiency, std::uint64_t footprint_bytes);

/// The AI at which compute and bandwidth roofs intersect (the ridge point).
double ridge_intensity(const MachineSpec& m, const Placement& p,
                       const ExecConfig& config, double simd_efficiency,
                       std::uint64_t footprint_bytes);

}  // namespace svsim::machine
