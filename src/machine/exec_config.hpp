// Execution configuration: thread count, placement policy, vector length.
//
// The thread-affinity study (Fig. 3) hinges on where threads land: `Compact`
// fills CMG 0 before touching CMG 1 (shorter OpenMP strides, one memory
// controller at low thread counts); `Scatter` round-robins across CMGs
// (all four HBM2 stacks active from 4 threads up). `vector_bits` overrides
// the SIMD width below the machine's native width — the SVE vector-length-
// agnostic sweep of Fig. 4.
#pragma once

#include <vector>

#include "machine/machine_spec.hpp"

namespace svsim::machine {

enum class Affinity { Compact, Scatter };

const char* affinity_name(Affinity a);

struct ExecConfig {
  unsigned threads = 0;       ///< 0 = all cores
  Affinity affinity = Affinity::Compact;
  unsigned vector_bits = 0;   ///< 0 = machine native; else 128/256/512
  unsigned element_bytes = 8; ///< 8 = double, 4 = float amplitudes' scalars

  /// Effective SIMD width for this run on `m`.
  unsigned effective_vector_bits(const MachineSpec& m) const noexcept {
    return vector_bits == 0 ? m.simd_bits : vector_bits;
  }
};

/// Resolved thread placement: how many threads sit in each NUMA domain.
struct Placement {
  std::vector<unsigned> threads_per_domain;

  unsigned total_threads() const noexcept {
    unsigned t = 0;
    for (unsigned d : threads_per_domain) t += d;
    return t;
  }
  unsigned active_domains() const noexcept {
    unsigned a = 0;
    for (unsigned d : threads_per_domain) a += (d > 0);
    return a;
  }
};

/// Places `config.threads` threads on `m` under the affinity policy.
/// Throws if more threads than cores are requested.
Placement place_threads(const MachineSpec& m, const ExecConfig& config);

}  // namespace svsim::machine
