#include "machine/bandwidth_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace svsim::machine {

namespace {

/// Number of active sharing-domains of a cache level under a placement:
/// private caches count active cores; CMG/socket-shared caches count active
/// NUMA domains (one cache instance per domain in all modeled machines).
unsigned active_cache_domains(const CacheLevel& level, const Placement& p) {
  if (level.shared_by_cores <= 1) return p.total_threads();
  return p.active_domains();
}

}  // namespace

int serving_level(const MachineSpec& m, const Placement& p,
                  std::uint64_t footprint_bytes) {
  for (std::size_t i = 0; i < m.caches.size(); ++i) {
    const std::uint64_t capacity =
        m.caches[i].size_bytes * active_cache_domains(m.caches[i], p);
    if (footprint_bytes <= capacity) return static_cast<int>(i);
  }
  return -1;
}

double memory_bandwidth_gbps(const MachineSpec& m, const Placement& p) {
  double total = 0.0;
  for (unsigned used : p.threads_per_domain) {
    if (used == 0) continue;
    const double domain_ceiling =
        m.mem_bandwidth_gbps_per_domain * m.mem_stream_efficiency;
    total += std::min(used * m.core_mem_bandwidth_gbps, domain_ceiling);
  }
  return total;
}

double effective_bandwidth_gbps(const MachineSpec& m, const Placement& p,
                                std::uint64_t footprint_bytes) {
  require(p.total_threads() >= 1, "effective_bandwidth: empty placement");
  const int level = serving_level(m, p, footprint_bytes);
  if (level < 0) return memory_bandwidth_gbps(m, p);

  const CacheLevel& c = m.caches[static_cast<std::size_t>(level)];
  double bw = c.core_bandwidth_gbps * p.total_threads();
  if (c.domain_bandwidth_gbps > 0.0) {
    const double ceiling =
        c.domain_bandwidth_gbps * active_cache_domains(c, p);
    bw = std::min(bw, ceiling);
  }
  return bw;
}

}  // namespace svsim::machine
