#include "machine/cpu_features.hpp"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#ifndef HWCAP_SVE
#define HWCAP_SVE (1 << 22)
#endif
#endif

namespace svsim::machine {

namespace {

CpuFeatures probe() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
#elif defined(__aarch64__)
#if defined(__linux__)
  const unsigned long hwcap = getauxval(AT_HWCAP);
  f.neon = (hwcap & HWCAP_ASIMD) != 0;
  f.sve = (hwcap & HWCAP_SVE) != 0;
#else
  // AdvSIMD is architecturally mandatory on AArch64; without an auxv
  // interface we cannot probe SVE, so leave it off.
  f.neon = true;
#endif
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = probe();
  return f;
}

const char* detected_isa_name() {
  const CpuFeatures& f = cpu_features();
  if (f.sve) return "sve";
  if (f.neon) return "neon";
  if (f.avx2 && f.fma) return "avx2";
  return "baseline";
}

}  // namespace svsim::machine
