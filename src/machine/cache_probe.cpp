#include "machine/cache_probe.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>

#include "common/error.hpp"

namespace svsim::machine {

namespace {

using Clock = std::chrono::steady_clock;

/// One timed pass: a strided streaming reduction over `data`. The stride
/// visits every element once per pass but defeats a pure next-line
/// prefetch pattern enough to expose the capacity knee; the running sum
/// keeps the loads live.
double timed_pass_seconds(const std::vector<double>& data, int passes,
                          double& sink) {
  const std::size_t n = data.size();
  double acc = 0.0;
  const auto t0 = Clock::now();
  for (int p = 0; p < passes; ++p) {
    // 8 doubles = one 64 B line; four interleaved line streams.
    for (std::size_t base = 0; base < 32 && base < n; base += 8) {
      for (std::size_t i = base; i < n; i += 32) acc += data[i];
    }
  }
  const auto t1 = Clock::now();
  sink += acc;
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

CacheProbeResult run_cache_probe(std::size_t min_bytes, std::size_t max_bytes,
                                 int reps) {
  require(min_bytes >= 1024 && min_bytes < max_bytes,
          "run_cache_probe: need 1 KiB <= min_bytes < max_bytes");
  require(reps >= 1, "run_cache_probe: reps must be positive");

  CacheProbeResult r;
  double sink = 0.0;
  // One allocation at the largest size, reused by every working set: the
  // probe measures capacity, not allocator behaviour.
  std::vector<double> data(max_bytes / sizeof(double), 1.0);

  for (std::size_t bytes = min_bytes; bytes <= max_bytes; bytes *= 2) {
    const std::size_t n = bytes / sizeof(double);
    std::vector<double> window(data.begin(),
                               data.begin() + static_cast<std::ptrdiff_t>(n));
    // Equalize traffic per sample: small sets run more passes.
    const int passes = static_cast<int>(
        std::max<std::size_t>(1, (std::size_t{4} << 20) / bytes));
    // Warm the working set into cache, then keep the fastest rep — the
    // one least disturbed by interrupts/co-runners.
    timed_pass_seconds(window, 1, sink);
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep)
      best = std::min(best, timed_pass_seconds(window, passes, sink));
    const double moved =
        static_cast<double>(bytes) * static_cast<double>(passes);
    r.points.push_back({bytes, best > 0.0 ? moved / best * 1e-9 : 0.0});
  }
  // Defeat dead-code elimination of the reduction.
  if (!std::isfinite(sink)) r.points.clear();

  if (r.points.size() < 3) return r;
  r.cached_gbps = r.points.front().gbps;
  r.beyond_gbps = r.points.back().gbps;
  // A knee needs clear separation between the cached and beyond-cache
  // plateaus; otherwise the curve is flat and the probe is inconclusive.
  if (!(r.cached_gbps > 0.0) || !(r.beyond_gbps > 0.0) ||
      r.cached_gbps < 1.3 * r.beyond_gbps)
    return r;
  // Effective budget: the largest working set still served above the
  // geometric mean of the two plateaus.
  const double threshold = std::sqrt(r.cached_gbps * r.beyond_gbps);
  for (const CacheProbePoint& p : r.points)
    if (p.gbps >= threshold) r.effective_bytes = p.bytes;
  r.valid = r.effective_bytes > 0;
  return r;
}

namespace {

/// Test override slot for probed_cache_budget(); see the header.
const CacheProbeResult* g_probe_override = nullptr;
CacheProbeResult g_probe_override_storage;

}  // namespace

const CacheProbeResult& probed_cache_budget() {
  if (g_probe_override != nullptr) return *g_probe_override;
  static std::once_flag once;
  static CacheProbeResult result;
  std::call_once(once, [] { result = run_cache_probe(); });
  return result;
}

void set_probed_cache_budget_for_testing(const CacheProbeResult* result) {
  if (result == nullptr) {
    g_probe_override = nullptr;
    return;
  }
  g_probe_override_storage = *result;
  g_probe_override = &g_probe_override_storage;
}

double cache_budget_disagreement(const MachineSpec& m,
                                 const CacheProbeResult& probe) {
  if (!probe.valid) return 0.0;
  const double declared =
      static_cast<double>(m.cache_budget_per_core_bytes());
  if (declared <= 0.0) return 0.0;
  return std::abs(static_cast<double>(probe.effective_bytes) - declared) /
         declared;
}

}  // namespace svsim::machine
