// Machine descriptions for the performance model.
//
// Every number here is a published, public parameter (vendor spec sheets and
// the A64FX/Fugaku papers by Sato, Kodama, Tsuji, Odajima et al.): core
// counts, NUMA/CMG topology, SIMD width, cache sizes, peak and STREAM
// bandwidths, and power calibration points. The A64FX eco/boost variants
// model the Fugaku power knobs (eco = one FMA pipe at reduced core power;
// boost = 2.2 GHz at higher power) whose measured effects the authors
// published (≈ +10% performance / +17% power for boost on CPU-bound code).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace svsim::machine {

/// One cache level. Bandwidth is split into a per-core sustainable rate and
/// an optional per-sharing-domain ceiling (0 = no shared ceiling).
struct CacheLevel {
  std::string name;
  std::uint64_t size_bytes;        ///< capacity per sharing domain
  unsigned line_bytes;             ///< cache line size
  unsigned shared_by_cores;        ///< 1 = private, 12 = per-CMG, ...
  double core_bandwidth_gbps;      ///< per-core sustainable stream rate
  double domain_bandwidth_gbps;    ///< ceiling per sharing domain (0 = none)
  double latency_ns;
};

/// A processor (node-level) description.
struct MachineSpec {
  std::string name;

  unsigned numa_domains;           ///< CMGs / sockets
  unsigned cores_per_domain;
  double clock_ghz;
  unsigned simd_bits;              ///< SVE/AVX vector width
  unsigned fma_pipes_per_core;     ///< FP pipelines issuing FMA per cycle

  std::vector<CacheLevel> caches;  ///< ordered L1 → last level

  double mem_bandwidth_gbps_per_domain;  ///< peak (HBM2: 256/CMG)
  double mem_stream_efficiency;    ///< STREAM-achievable fraction of peak
  double mem_latency_ns;
  double core_mem_bandwidth_gbps;  ///< max memory BW one core can draw

  // Power model calibration.
  double idle_watts;               ///< chip + memory idle
  double core_max_watts;           ///< per-core dynamic power at full load
  double mem_watts_per_gbps;       ///< DRAM/HBM power per GB/s moved

  // ---- derived ----------------------------------------------------------
  unsigned total_cores() const noexcept {
    return numa_domains * cores_per_domain;
  }
  /// DP flops per cycle per core: SIMD lanes x 2 (FMA) x pipes.
  double flops_per_cycle_per_core(unsigned element_bytes = 8) const noexcept {
    return static_cast<double>(simd_bits) / (8.0 * element_bytes) * 2.0 *
           fma_pipes_per_core;
  }
  /// Node peak GFLOPS (double precision by default).
  double peak_gflops(unsigned element_bytes = 8) const noexcept {
    return flops_per_cycle_per_core(element_bytes) * clock_ghz * total_cores();
  }
  /// STREAM-achievable node memory bandwidth in GB/s.
  double stream_bandwidth_gbps() const noexcept {
    return mem_bandwidth_gbps_per_domain * numa_domains *
           mem_stream_efficiency;
  }
  /// Last-level-cache aggregate capacity.
  std::uint64_t llc_total_bytes() const noexcept;
  /// Memory-system cache line size (line of the last level).
  unsigned mem_line_bytes() const noexcept;
  /// Per-core share of the last-level cache — the working-set budget a
  /// cache-blocked sweep should target (A64FX: 8 MiB CMG L2 / 12 cores
  /// ≈ 680 KiB). 0 when no cache levels are described.
  std::uint64_t cache_budget_per_core_bytes() const noexcept;

  /// What-if knob override: this machine with every clock scaled by
  /// `compute_scale` and every bandwidth figure (cache, memory, per-core)
  /// scaled by `bandwidth_scale`. Capacities, core counts, and latencies
  /// are unchanged; the name is annotated so artifacts show the scenario.
  MachineSpec scaled(double compute_scale, double bandwidth_scale) const;

  // ---- factory machine descriptions --------------------------------------
  /// Fujitsu A64FX at 2.0 GHz (normal mode), 4 CMGs x 12 cores, HBM2.
  static MachineSpec a64fx();
  /// A64FX boost mode: 2.2 GHz, higher core power.
  static MachineSpec a64fx_boost();
  /// A64FX eco mode: one FMA pipe, reduced core power.
  static MachineSpec a64fx_eco();
  /// Fujitsu FX700 (commercial A64FX SKU): 1.8 GHz, same memory system.
  static MachineSpec a64fx_fx700();
  /// Dual-socket Intel Xeon Gold 6148 (Skylake-SP, 2 x 20 cores, AVX-512).
  static MachineSpec xeon_6148_dual();
  /// Dual-socket Marvell ThunderX2 CN9980 (2 x 32 cores, NEON 128-bit).
  static MachineSpec thunderx2_dual();
  /// A crude single-domain description of the build host (used only to
  /// cross-check model shape against measured host numbers).
  static MachineSpec generic_host(unsigned cores, double clock_ghz,
                                  double stream_gbps);
};

}  // namespace svsim::machine
