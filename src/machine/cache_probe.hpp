// Streaming-stride cache microprobe: measured per-core cache budget.
//
// The plan compiler sizes sweep blocks from MachineSpec's declared LLC
// share (`cache_budget_per_core_bytes`), but on real machines the share a
// core can actually keep resident differs — co-runners, way partitioning,
// and prefetcher behaviour all eat into it. This probe measures it: a
// single thread streams over working sets of increasing size and the
// bandwidth knee — the largest working set still served at near-cache
// speed — is the effective budget. The profiler records both the declared
// and the probed figure in every report's env block and flags >25%
// disagreement, closing the ROADMAP "probe effective cache budget" lever.
//
// The probe is deliberately cheap (tens of ms, run once per process via
// probed_cache_budget()) and conservative: when the bandwidth curve is too
// flat to locate a knee (e.g. under emulation or a saturated host) it
// reports valid == false and callers fall back to the declared budget.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "machine/machine_spec.hpp"

namespace svsim::machine {

struct CacheProbePoint {
  std::uint64_t bytes = 0;  ///< working-set size
  double gbps = 0.0;        ///< measured single-thread streaming bandwidth
};

struct CacheProbeResult {
  /// False when no reliable knee was found (flat curve / timer too coarse);
  /// the numeric fields are then best-effort and must not steer decisions.
  bool valid = false;
  /// Largest working set still served at near-cache bandwidth.
  std::uint64_t effective_bytes = 0;
  double cached_gbps = 0.0;  ///< bandwidth of the smallest working set
  double beyond_gbps = 0.0;  ///< bandwidth of the largest working set
  std::vector<CacheProbePoint> points;
};

/// Runs the microprobe: streaming reduction over power-of-two working sets
/// in [min_bytes, max_bytes], best-of-`reps` timing per size.
CacheProbeResult run_cache_probe(std::size_t min_bytes = std::size_t{32} << 10,
                                 std::size_t max_bytes = std::size_t{16} << 20,
                                 int reps = 3);

/// The process-wide probe result, measured lazily on first call and cached
/// (thread-safe). Everything that wants "the" probed budget — profiler env
/// blocks, startup diagnostics, SVSIM_CACHE_BUDGET=probed block sizing —
/// reads this one.
const CacheProbeResult& probed_cache_budget();

/// Test seam: makes probed_cache_budget() return a copy of `result` instead
/// of measuring (the real probe is host-dependent and can be inconclusive
/// under emulation). Pass nullptr to restore the measured result. Not
/// thread-safe against concurrent probed_cache_budget() readers — test use
/// only.
void set_probed_cache_budget_for_testing(const CacheProbeResult* result);

/// Relative disagreement |probed - declared| / declared between the probe
/// and `m.cache_budget_per_core_bytes()`; 0 when the probe is invalid or
/// the declared budget is zero.
double cache_budget_disagreement(const MachineSpec& m,
                                 const CacheProbeResult& probe);

/// Disagreement above this fraction is worth a warning: the declared LLC
/// share is steering block sizing away from what the hardware serves.
inline constexpr double kCacheProbeWarnThreshold = 0.25;

}  // namespace svsim::machine
