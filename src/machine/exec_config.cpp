#include "machine/exec_config.hpp"

#include "common/error.hpp"

namespace svsim::machine {

const char* affinity_name(Affinity a) {
  return a == Affinity::Compact ? "compact" : "scatter";
}

Placement place_threads(const MachineSpec& m, const ExecConfig& config) {
  unsigned threads = config.threads == 0 ? m.total_cores() : config.threads;
  require(threads <= m.total_cores(),
          "place_threads: more threads than cores");
  Placement p;
  p.threads_per_domain.assign(m.numa_domains, 0);
  if (config.affinity == Affinity::Compact) {
    for (unsigned d = 0; d < m.numa_domains && threads > 0; ++d) {
      const unsigned take = std::min(threads, m.cores_per_domain);
      p.threads_per_domain[d] = take;
      threads -= take;
    }
  } else {
    unsigned d = 0;
    while (threads > 0) {
      if (p.threads_per_domain[d] < m.cores_per_domain) {
        ++p.threads_per_domain[d];
        --threads;
      }
      d = (d + 1) % m.numa_domains;
    }
  }
  return p;
}

}  // namespace svsim::machine
