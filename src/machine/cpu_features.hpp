#pragma once

// Runtime CPU feature detection for SIMD kernel dispatch (sv/simd).
//
// Detection runs once per process (cpuid-backed builtins on x86-64,
// getauxval(AT_HWCAP) on aarch64 Linux) and is cheap to query afterwards.
// The machine layer owns this so both the kernel registry (sv/simd) and
// the bench environment capture (obs/bench) can report the same answer.

namespace svsim::machine {

struct CpuFeatures {
  // x86-64
  bool avx2 = false;
  bool fma = false;
  // aarch64
  bool neon = false;
  bool sve = false;
};

/// Detected features of the executing CPU; probed once, then cached.
const CpuFeatures& cpu_features();

/// Short name of the widest SIMD extension the CPU exposes that our
/// kernel tier knows about: "sve", "neon", "avx2", or "baseline".
const char* detected_isa_name();

}  // namespace svsim::machine
