#include "machine/machine_spec.hpp"

#include "common/error.hpp"

namespace svsim::machine {

std::uint64_t MachineSpec::llc_total_bytes() const noexcept {
  if (caches.empty()) return 0;
  const CacheLevel& llc = caches.back();
  const unsigned domains =
      total_cores() / llc.shared_by_cores;
  return llc.size_bytes * domains;
}

unsigned MachineSpec::mem_line_bytes() const noexcept {
  return caches.empty() ? 64u : caches.back().line_bytes;
}

std::uint64_t MachineSpec::cache_budget_per_core_bytes() const noexcept {
  if (caches.empty()) return 0;
  const CacheLevel& llc = caches.back();
  const unsigned sharers = llc.shared_by_cores > 0 ? llc.shared_by_cores : 1;
  return llc.size_bytes / sharers;
}

MachineSpec MachineSpec::scaled(double compute_scale,
                                double bandwidth_scale) const {
  require(compute_scale > 0.0 && bandwidth_scale > 0.0,
          "MachineSpec::scaled: scale factors must be positive");
  MachineSpec m = *this;
  m.name = name + " [x" + std::to_string(compute_scale) + " compute, x" +
           std::to_string(bandwidth_scale) + " bandwidth]";
  m.clock_ghz *= compute_scale;
  for (CacheLevel& level : m.caches) {
    level.core_bandwidth_gbps *= bandwidth_scale;
    level.domain_bandwidth_gbps *= bandwidth_scale;
  }
  m.mem_bandwidth_gbps_per_domain *= bandwidth_scale;
  m.core_mem_bandwidth_gbps *= bandwidth_scale;
  return m;
}

MachineSpec MachineSpec::a64fx() {
  MachineSpec m;
  m.name = "A64FX (2.0 GHz)";
  m.numa_domains = 4;          // CMGs
  m.cores_per_domain = 12;
  m.clock_ghz = 2.0;
  m.simd_bits = 512;           // SVE
  m.fma_pipes_per_core = 2;
  // L1D: 64 KiB, 256 B lines, private; ~128 B/cycle load+store → 256 GB/s.
  m.caches.push_back({"L1d", 64 * 1024, 256, 1, 256.0, 0.0, 2.5});
  // L2: 8 MiB per CMG, shared by 12 cores; per-core rate capped and a
  // per-CMG ceiling of ~512 GB/s effective.
  m.caches.push_back({"L2", 8ull * 1024 * 1024, 256, 12, 128.0, 512.0, 18.0});
  m.mem_bandwidth_gbps_per_domain = 256.0;  // HBM2, 1024 GB/s node
  m.mem_stream_efficiency = 0.81;           // STREAM triad ≈ 830 GB/s
  m.mem_latency_ns = 130.0;
  m.core_mem_bandwidth_gbps = 40.0;         // ~6 cores saturate a CMG
  m.idle_watts = 60.0;
  m.core_max_watts = 2.1;                   // ≈160 W node under full load
  m.mem_watts_per_gbps = 0.04;              // HBM2 is cheap per byte
  return m;
}

MachineSpec MachineSpec::a64fx_boost() {
  MachineSpec m = a64fx();
  m.name = "A64FX (boost 2.2 GHz)";
  m.clock_ghz = 2.2;
  // Calibrated to the published boost-mode observation: ~10% speedup at
  // ~17% more power on CPU-bound code → per-core power up ~1.17x-ish
  // relative to performance gain.
  m.core_max_watts = 2.1 * 1.28;
  // Cache bandwidths scale with clock.
  for (auto& c : m.caches) {
    c.core_bandwidth_gbps *= 1.1;
    c.domain_bandwidth_gbps *= 1.1;
  }
  return m;
}

MachineSpec MachineSpec::a64fx_eco() {
  MachineSpec m = a64fx();
  m.name = "A64FX (eco, 1 pipe)";
  m.fma_pipes_per_core = 1;  // one FLA pipeline active
  m.core_max_watts = 2.1 * 0.55;  // reduced supply voltage to the FP units
  return m;
}

MachineSpec MachineSpec::a64fx_fx700() {
  MachineSpec m = a64fx();
  m.name = "A64FX FX700 (1.8 GHz)";
  m.clock_ghz = 1.8;
  for (auto& c : m.caches) {
    c.core_bandwidth_gbps *= 0.9;
    c.domain_bandwidth_gbps *= 0.9;
  }
  m.core_max_watts = 1.9;
  return m;
}

MachineSpec MachineSpec::xeon_6148_dual() {
  MachineSpec m;
  m.name = "2x Xeon Gold 6148 (Skylake)";
  m.numa_domains = 2;
  m.cores_per_domain = 20;
  m.clock_ghz = 2.2;           // sustained AVX-512 clock
  m.simd_bits = 512;
  m.fma_pipes_per_core = 2;
  m.caches.push_back({"L1d", 32 * 1024, 64, 1, 300.0, 0.0, 1.5});
  m.caches.push_back({"L2", 1024 * 1024, 64, 1, 150.0, 0.0, 5.5});
  m.caches.push_back(
      {"L3", 27ull * 1024 * 1024 + 512 * 1024, 64, 20, 60.0, 450.0, 20.0});
  m.mem_bandwidth_gbps_per_domain = 128.0;  // 6ch DDR4-2666
  m.mem_stream_efficiency = 0.80;           // ~205 GB/s node STREAM
  m.mem_latency_ns = 90.0;
  m.core_mem_bandwidth_gbps = 14.0;
  m.idle_watts = 90.0;
  m.core_max_watts = 6.0;
  m.mem_watts_per_gbps = 0.12;              // DDR4 costs more per byte
  return m;
}

MachineSpec MachineSpec::thunderx2_dual() {
  MachineSpec m;
  m.name = "2x ThunderX2 CN9980";
  m.numa_domains = 2;
  m.cores_per_domain = 32;
  m.clock_ghz = 2.2;
  m.simd_bits = 128;           // NEON
  m.fma_pipes_per_core = 2;
  m.caches.push_back({"L1d", 32 * 1024, 64, 1, 100.0, 0.0, 2.0});
  m.caches.push_back({"L2", 256 * 1024, 64, 1, 60.0, 0.0, 6.0});
  m.caches.push_back({"L3", 32ull * 1024 * 1024, 64, 32, 30.0, 300.0, 30.0});
  m.mem_bandwidth_gbps_per_domain = 170.7;  // 8ch DDR4-2666
  m.mem_stream_efficiency = 0.72;           // ~245 GB/s node STREAM
  m.mem_latency_ns = 100.0;
  m.core_mem_bandwidth_gbps = 10.0;
  m.idle_watts = 80.0;
  m.core_max_watts = 4.0;
  m.mem_watts_per_gbps = 0.12;
  return m;
}

MachineSpec MachineSpec::generic_host(unsigned cores, double clock_ghz,
                                      double stream_gbps) {
  require(cores >= 1, "generic_host: need at least one core");
  MachineSpec m;
  m.name = "generic host";
  m.numa_domains = 1;
  m.cores_per_domain = cores;
  m.clock_ghz = clock_ghz;
  m.simd_bits = 256;  // AVX2-class default
  m.fma_pipes_per_core = 2;
  m.caches.push_back({"L1d", 32 * 1024, 64, 1, 200.0, 0.0, 1.5});
  m.caches.push_back({"L2", 1024 * 1024, 64, 1, 80.0, 0.0, 5.0});
  m.caches.push_back(
      {"L3", 16ull * 1024 * 1024, 64, cores, 40.0, 200.0, 20.0});
  m.mem_bandwidth_gbps_per_domain = stream_gbps / 0.8;
  m.mem_stream_efficiency = 0.8;
  m.mem_latency_ns = 90.0;
  m.core_mem_bandwidth_gbps = stream_gbps;  // one core can saturate small hosts
  m.idle_watts = 20.0;
  m.core_max_watts = 8.0;
  m.mem_watts_per_gbps = 0.15;
  return m;
}

}  // namespace svsim::machine
