#include "machine/roofline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace svsim::machine {

double placement_peak_gflops(const MachineSpec& m, const Placement& p,
                             const ExecConfig& config) {
  const unsigned vbits = config.effective_vector_bits(m);
  require(vbits >= 8u * config.element_bytes,
          "vector width below one element");
  const double lanes =
      static_cast<double>(vbits) / (8.0 * config.element_bytes);
  const double flops_per_cycle = lanes * 2.0 * m.fma_pipes_per_core;
  return flops_per_cycle * m.clock_ghz * p.total_threads();
}

RooflinePoint roofline(const MachineSpec& m, const Placement& p,
                       const ExecConfig& config, double arithmetic_intensity,
                       double simd_efficiency, std::uint64_t footprint_bytes) {
  RooflinePoint pt;
  pt.arithmetic_intensity = arithmetic_intensity;
  pt.compute_roof_gflops =
      placement_peak_gflops(m, p, config) * simd_efficiency;
  pt.bandwidth_gbps = effective_bandwidth_gbps(m, p, footprint_bytes);
  const double bw_roof = arithmetic_intensity * pt.bandwidth_gbps;
  pt.memory_bound = bw_roof < pt.compute_roof_gflops;
  pt.attainable_gflops = std::min(pt.compute_roof_gflops, bw_roof);
  return pt;
}

RooflinePlacement place_on_roofline(const MachineSpec& m, const Placement& p,
                                    const ExecConfig& config, double flops,
                                    double bytes, double simd_efficiency,
                                    std::uint64_t footprint_bytes) {
  RooflinePlacement placed;
  placed.flops = flops;
  placed.bytes = bytes;
  const double ai = bytes > 0.0 ? flops / bytes : 0.0;
  placed.point = roofline(m, p, config, ai, simd_efficiency, footprint_bytes);
  return placed;
}

double ridge_intensity(const MachineSpec& m, const Placement& p,
                       const ExecConfig& config, double simd_efficiency,
                       std::uint64_t footprint_bytes) {
  const double compute =
      placement_peak_gflops(m, p, config) * simd_efficiency;
  const double bw = effective_bandwidth_gbps(m, p, footprint_bytes);
  return compute / bw;
}

}  // namespace svsim::machine
