// Effective-bandwidth model: which level of the hierarchy serves a
// streaming sweep, and how fast.
//
// State-vector kernels stream their footprint with unit or power-of-two
// stride and no temporal reuse within a gate, so the serving level is a pure
// capacity question (footprint vs. aggregate capacity of the caches the
// active threads can reach) and the achievable rate is the min of per-core
// rates and shared-domain ceilings. This reproduces the three-regime
// structure (L1 / L2 / HBM) of bandwidth-vs-size plots on A64FX.
#pragma once

#include <cstdint>

#include "machine/exec_config.hpp"
#include "machine/machine_spec.hpp"

namespace svsim::machine {

/// Identifies the hierarchy level a sweep of `footprint_bytes` is served
/// from: 0-based cache index, or -1 for main memory.
int serving_level(const MachineSpec& m, const Placement& p,
                  std::uint64_t footprint_bytes);

/// Achievable aggregate bandwidth in GB/s when the active threads stream
/// `footprint_bytes` (read+write counted by the caller in its byte volume).
double effective_bandwidth_gbps(const MachineSpec& m, const Placement& p,
                                std::uint64_t footprint_bytes);

/// Main-memory bandwidth available to the placement (GB/s), i.e. the
/// memory-regime asymptote: per-domain min(threads x core rate, STREAM
/// ceiling), summed over domains.
double memory_bandwidth_gbps(const MachineSpec& m, const Placement& p);

}  // namespace svsim::machine
