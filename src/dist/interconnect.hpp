// Interconnect models for multi-node projection.
//
// Distributed state-vector simulation assigns the top d qubits to the node
// rank; a non-diagonal gate on such a "node qubit" requires a pairwise
// exchange of (up to) the whole local partition between partner nodes. The
// only network primitive needed is therefore a full-duplex pairwise exchange,
// which these specs cost as latency + bytes / (usable links x per-link rate).
// Parameters are the published Tofu-D (Fugaku) and EDR InfiniBand numbers.
#pragma once

#include <string>

namespace svsim::dist {

struct InterconnectSpec {
  std::string name;
  double link_bandwidth_gbps;       ///< per link, per direction
  unsigned concurrent_links;        ///< links usable by one exchange (TNIs)
  double latency_seconds;           ///< end-to-end small-message latency
  double software_overhead_seconds; ///< per-message injection overhead

  /// Seconds for partner nodes to exchange `bytes` each way (full duplex).
  double pairwise_exchange_seconds(double bytes) const;

  /// The same cost split into its two scaling regimes: `fixed_seconds` =
  /// latency + software overhead (scales with message count), and
  /// `transfer_seconds` = bytes / (links x rate) (scales with volume).
  /// `pairwise_exchange_seconds(b)` equals `fixed + transfer` bit-exactly;
  /// the timeline what-if replay relies on re-pricing the terms separately.
  void pairwise_exchange_split(double bytes, double& fixed_seconds,
                               double& transfer_seconds) const;

  /// Fugaku's Tofu Interconnect D: 6.8 GB/s per link, 4 usable TNIs,
  /// ~0.5 µs put latency.
  static InterconnectSpec tofu_d();
  /// 100 Gb/s EDR InfiniBand (single rail) for comparison.
  static InterconnectSpec infiniband_edr();
};

}  // namespace svsim::dist
