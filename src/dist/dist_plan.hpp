// Distribution planner for multi-node state-vector simulation.
//
// With 2^d nodes, qubit *slots* [n-d, n) live in the node rank ("node
// slots") and slots [0, n-d) index the local partition. The planner walks a
// circuit and decides, per gate, what each node computes locally and how
// much data partner nodes must exchange:
//
//  * diagonal gates never communicate (each node knows its rank bits);
//  * a control on a node slot is free (half the nodes apply the target op);
//  * a non-diagonal target on a node slot costs a pairwise exchange of the
//    local partition (half of it when a local control restricts the update,
//    or for a local<->node SWAP).
//
// Two schedulers are provided: `Naive` pays the exchange at every such gate;
// `Remap` instead swaps the offending logical qubit into a local slot
// (one half-exchange) and keeps a qubit->slot permutation, evicting the
// local qubit whose next use is farthest in the future (Belady). For
// QFT-like circuits that hammer the same high qubits this collapses the
// exchange count — the distributed-scaling experiment (Fig. 6) quantifies it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "qc/circuit.hpp"
#include "sv/plan.hpp"

namespace svsim::dist {

enum class CommScheduler { Naive, Remap };

const char* scheduler_name(CommScheduler s);

/// One planned step: an optional local cost-proxy gate (operands remapped
/// into local-slot space, i.e. qubit indices < n-d) and the bytes each node
/// exchanges with its partner before executing it.
struct DistStep {
  std::optional<qc::Gate> local_gate;
  double exchange_bytes = 0.0;   ///< per node, one direction
  /// Rank bit whose flip identifies the exchange partner (-1 = no exchange).
  int exchange_rank_bit = -1;
  std::string note;              ///< why the exchange happened
};

struct DistPlan {
  unsigned num_qubits = 0;       ///< total (global) register width
  unsigned node_qubits = 0;      ///< d: log2(node count)
  unsigned local_qubits = 0;     ///< n - d
  std::vector<DistStep> steps;
  std::size_t num_exchanges = 0;
  double total_exchange_bytes = 0.0;  ///< per node, summed over steps
  /// slot_of[logical qubit] after the plan (identity unless Remap moved it).
  std::vector<unsigned> final_slot_of;

  std::uint64_t num_nodes() const noexcept {
    return std::uint64_t{1} << node_qubits;
  }
};

/// Plans the distribution of `circuit` over 2^node_qubits nodes.
/// `element_bytes` is the scalar precision (8 = double).
/// Requires node_qubits < circuit.num_qubits() and a measure-free circuit.
DistPlan plan_distribution(const qc::Circuit& circuit, unsigned node_qubits,
                           CommScheduler scheduler,
                           unsigned element_bytes = 8);

struct DistExecOptions {
  CommScheduler scheduler = CommScheduler::Remap;
  /// Scalar precision (8 = double; an amplitude is 2 * element_bytes).
  unsigned element_bytes = 8;
  /// Emit restore exchanges so the plan ends — and every MeasureFlush runs —
  /// under the identity qubit->slot layout. Required for amplitude
  /// execution; model-only studies may disable it.
  bool restore_layout = true;
  /// Fusion / sweep-blocking knobs forwarded to the window compiler. The
  /// block size is clamped to the local partition (block_qubits <=
  /// local_qubits), and auto sizing budgets against `plan.machine`.
  sv::PlanOptions plan;
};

/// Compiles `circuit` into the shared ExecutionPlan IR for 2^node_qubits
/// ranks: fusion -> Belady-style exchange placement (the same remapper
/// plan_distribution uses) -> sweep grouping per exchange window. Gates in
/// the result are in slot space; with the Remap scheduler, Exchange phases
/// carry the data-moving slot swaps, with Naive they are cost-only markers.
/// MEASURE/RESET compile into MeasureFlush phases behind a layout restore.
sv::ExecutionPlan compile_distributed(const qc::Circuit& circuit,
                                      unsigned node_qubits,
                                      const DistExecOptions& options = {});

/// Adapts a legacy per-gate DistPlan to the shared IR: each step becomes a
/// cost-only Exchange phase (adjacent ones coalesced) and/or a DenseGate
/// phase. For timing models only — the result carries the DistPlan's final
/// layout but no data-moving hops, so it is not amplitude-executable.
sv::ExecutionPlan to_execution_plan(const DistPlan& plan);

}  // namespace svsim::dist
