#include "dist/timeline.hpp"

#include <algorithm>
#include <ostream>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace svsim::dist {

TimelineBuilder::TimelineBuilder(const sv::ExecutionPlan& plan,
                                 std::string machine_name,
                                 std::string interconnect_name) {
  timeline_.plan_id = plan.summary_id();
  timeline_.num_qubits = plan.num_qubits;
  timeline_.node_qubits = plan.node_qubits;
  timeline_.local_qubits = plan.local_qubits;
  timeline_.block_qubits = plan.block_qubits;
  timeline_.num_phases = plan.phases.size();
  timeline_.machine_name = std::move(machine_name);
  timeline_.interconnect_name = std::move(interconnect_name);
  timeline_.ranks.resize(plan.num_ranks());
  for (std::size_t r = 0; r < timeline_.ranks.size(); ++r)
    timeline_.ranks[r].rank = r;
}

void TimelineBuilder::on_compute(std::uint64_t rank, std::uint32_t phase_index,
                                 sv::PhaseKind kind, std::uint32_t gates,
                                 double start, double duration) {
  SVSIM_ASSERT(!finished_ && rank < timeline_.ranks.size());
  RankTimeline& rt = timeline_.ranks[rank];
  // Compute starts exactly at the rank's clock: ranks never idle between
  // compute phases, only at exchange rendezvous.
  SVSIM_ASSERT(start == rt.end_seconds);
  TimelineEvent e;
  e.kind = TimelineEventKind::Compute;
  e.phase_kind = kind;
  e.phase_index = phase_index;
  e.gates = gates;
  e.start_seconds = start;
  e.duration_seconds = duration;
  rt.events.push_back(e);
  rt.end_seconds = e.end_seconds();
}

void TimelineBuilder::on_exchange(std::uint64_t rank_a, std::uint64_t rank_b,
                                  std::uint32_t phase_index,
                                  std::uint32_t hop_index, int rank_bit,
                                  double bytes, double fixed, double transfer,
                                  double arrive_a, double arrive_b) {
  SVSIM_ASSERT(!finished_ && rank_a < timeline_.ranks.size() &&
               rank_b < timeline_.ranks.size() && rank_a != rank_b);
  RankTimeline& a = timeline_.ranks[rank_a];
  RankTimeline& b = timeline_.ranks[rank_b];
  SVSIM_ASSERT(arrive_a == a.end_seconds && arrive_b == b.end_seconds);
  const double start = std::max(arrive_a, arrive_b);

  // The early rank parks until the rendezvous; record the idle gap. The
  // wait's duration is a subtraction (one rounding), so the stored
  // end_seconds is advanced to `start` directly — Compute/Wire timing
  // stays an exact re-derivation of the simulator's clock chain while
  // waits tile the axis to visual precision.
  auto park = [&](RankTimeline& rt, std::uint64_t other, double arrive) {
    if (arrive >= start) return;
    TimelineEvent w;
    w.kind = TimelineEventKind::Wait;
    w.phase_kind = sv::PhaseKind::Exchange;
    w.phase_index = phase_index;
    w.hop_index = hop_index;
    w.partner = other;
    w.rank_bit = rank_bit;
    w.start_seconds = arrive;
    w.duration_seconds = start - arrive;
    rt.events.push_back(w);
    rt.end_seconds = start;
  };
  park(a, rank_b, arrive_a);
  park(b, rank_a, arrive_b);

  auto wire = [&](std::uint64_t other, std::uint32_t partner_event) {
    TimelineEvent e;
    e.kind = TimelineEventKind::Wire;
    e.phase_kind = sv::PhaseKind::Exchange;
    e.phase_index = phase_index;
    e.hop_index = hop_index;
    e.partner = other;
    e.rank_bit = rank_bit;
    e.bytes = bytes;
    e.fixed_seconds = fixed;
    e.transfer_seconds = transfer;
    e.partner_event = partner_event;
    e.start_seconds = start;
    // Same expression as the simulator's `comm`: end re-derives `ready`.
    e.duration_seconds = fixed + transfer;
    return e;
  };
  const auto ia = static_cast<std::uint32_t>(a.events.size());
  const auto ib = static_cast<std::uint32_t>(b.events.size());
  a.events.push_back(wire(rank_b, ib));
  b.events.push_back(wire(rank_a, ia));
  const double ready = a.events.back().end_seconds();
  a.end_seconds = ready;
  b.end_seconds = ready;
}

Timeline TimelineBuilder::finish(double makespan_seconds) {
  SVSIM_ASSERT(!finished_);
  finished_ = true;
  timeline_.makespan_seconds = makespan_seconds;
  for (RankTimeline& rt : timeline_.ranks) {
    rt.compute_seconds = rt.wire_seconds = rt.wait_seconds = 0.0;
    for (const TimelineEvent& e : rt.events) {
      switch (e.kind) {
        case TimelineEventKind::Compute: rt.compute_seconds += e.duration_seconds; break;
        case TimelineEventKind::Wire: rt.wire_seconds += e.duration_seconds; break;
        case TimelineEventKind::Wait: rt.wait_seconds += e.duration_seconds; break;
      }
    }
  }
  return std::move(timeline_);
}

namespace {

// Handles resolve per call against the context's registry; function-local
// statics here used to pin the first registry forever (stale after a
// registry substitution — see tests/test_context.cpp).
void record_timeline_metrics(obs::MetricsRegistry& registry,
                             const Timeline& t) {
  registry.counter("dist.timeline.records").increment();
  registry.counter("dist.timeline.events").add(t.total_events());
  registry.gauge("dist.timeline.imbalance").set(t.imbalance());
  registry.gauge("dist.timeline.wire_utilization").set(t.wire_utilization());
  registry.gauge("dist.timeline.makespan_seconds").set(t.makespan_seconds);
}

}  // namespace

Timeline record_timeline(const sv::ExecutionPlan& plan,
                         const machine::MachineSpec& m,
                         const machine::ExecConfig& config,
                         const InterconnectSpec& net,
                         const StragglerConfig& straggler,
                         const ExecutionContext& ctx) {
  obs::ScopedSpan span("record_timeline", obs::SpanCategory::Collective,
                       ctx.tracer());
  const std::uint64_t nodes = plan.num_ranks();
  if (nodes > kTimelineMaxRanks)
    throw Error("record_timeline: plan " + plan.summary_id() + " spans " +
                std::to_string(nodes) +
                " ranks, above the timeline recorder cap of " +
                std::to_string(kTimelineMaxRanks) +
                " (use event_driven_makespan without a recorder)");
  TimelineBuilder builder(plan, m.name, net.name);
  const double makespan =
      event_driven_makespan(plan, m, config, net, straggler, &builder);
  Timeline t = builder.finish(makespan);
  record_timeline_metrics(ctx.metrics(), t);
  return t;
}

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void write_timeline_chrome_json(std::ostream& os, const Timeline& t) {
  // Pids 0-2 belong to the profiler overlay (tracer spans / phase lanes /
  // modeled hop lanes); the rank timeline claims 3 and the wire view 4 so
  // both traces compose into one chrome://tracing load.
  constexpr int kRankPid = 3;
  constexpr int kWirePid = 4;
  os.precision(15);
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kRankPid
     << ",\"args\":{\"name\":\"timeline ranks (" << t.ranks.size() << " x "
     << t.local_qubits << "q local)\"}},\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kWirePid
     << ",\"args\":{\"name\":\"timeline wire (per rank bit)\"}}";
  for (const RankTimeline& rt : t.ranks) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kRankPid
       << ",\"tid\":" << rt.rank << ",\"args\":{\"name\":\"rank " << rt.rank
       << "\"}}";
    for (const TimelineEvent& e : rt.events) {
      const double ts_us = e.start_seconds * 1e6;
      const double dur_us = e.duration_seconds * 1e6;
      os << ",\n{\"name\":";
      if (e.kind == TimelineEventKind::Compute)
        write_json_string(os, sv::phase_kind_name(e.phase_kind));
      else
        write_json_string(os, timeline_event_kind_name(e.kind));
      os << ",\"ph\":\"X\",\"pid\":" << kRankPid << ",\"tid\":" << rt.rank
         << ",\"ts\":" << ts_us << ",\"dur\":" << dur_us << ",\"args\":{"
         << "\"phase\":" << e.phase_index;
      if (e.kind == TimelineEventKind::Compute) {
        os << ",\"gates\":" << e.gates;
      } else {
        os << ",\"hop\":" << e.hop_index << ",\"partner\":" << e.partner
           << ",\"rank_bit\":" << e.rank_bit;
        if (e.kind == TimelineEventKind::Wire) os << ",\"bytes\":" << e.bytes;
      }
      os << "}}";
      // The wire lane shows each hop once (from the lower-numbered rank).
      if (e.kind == TimelineEventKind::Wire && rt.rank < e.partner) {
        os << ",\n{\"name\":\"wire b" << e.rank_bit
           << "\",\"ph\":\"X\",\"pid\":" << kWirePid
           << ",\"tid\":" << e.rank_bit << ",\"ts\":" << ts_us
           << ",\"dur\":" << dur_us << ",\"args\":{\"src\":" << rt.rank
           << ",\"dst\":" << e.partner << ",\"bytes\":" << e.bytes
           << ",\"phase\":" << e.phase_index << "}}";
      }
    }
  }
  os << "\n]}\n";
}

}  // namespace svsim::dist
