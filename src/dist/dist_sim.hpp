// Timing a distributed ExecutionPlan: BSP aggregate and event-driven
// timelines.
//
// Both models walk the shared ExecutionPlan IR (sv/plan.hpp): per-phase
// local compute comes from perf::cost_plan (the single-node performance
// model applied to the rank partition, including the one-traversal pricing
// of LocalSweep phases) and exchange time from the interconnect model
// applied to each Exchange hop. The BSP estimate sums the two streams; the
// pipelined bound overlaps them. The event-driven simulator keeps one clock
// per node and synchronizes partner pairs at each hop (rendezvous
// semantics), which is what lets a straggling node's delay propagate
// through the exchange pattern — the effect large-machine studies care
// about and a mean-field BSP sum hides.
//
// Legacy DistPlan overloads adapt through dist::to_execution_plan; there is
// no separate per-step dispatch loop anymore.
#pragma once

#include <cstdint>

#include "dist/dist_plan.hpp"
#include "dist/interconnect.hpp"
#include "machine/exec_config.hpp"
#include "machine/machine_spec.hpp"
#include "obs/context.hpp"
#include "sv/plan.hpp"

namespace svsim::dist {

struct DistTiming {
  double compute_seconds = 0.0;   ///< Σ per-phase local kernel time
  double comm_seconds = 0.0;      ///< Σ per-hop exchange time
  double total_seconds = 0.0;     ///< BSP: compute + comm (no overlap)
  double pipelined_seconds = 0.0; ///< max(compute, comm): full-overlap bound
  std::size_t num_exchanges = 0;  ///< pairwise hops priced
  double exchange_bytes = 0.0;    ///< per node, total
};

/// Times `plan` with each node modeled as `m` under `config`. Spans,
/// counters, and the profiler exchange annotations resolve through `ctx`
/// (default: the process-wide singletons).
DistTiming time_plan(const sv::ExecutionPlan& plan,
                     const machine::MachineSpec& m,
                     const machine::ExecConfig& config,
                     const InterconnectSpec& net,
                     const ExecutionContext& ctx = ExecutionContext::global());

/// Legacy per-gate plan, adapted through to_execution_plan.
DistTiming time_plan(const DistPlan& plan, const machine::MachineSpec& m,
                     const machine::ExecConfig& config,
                     const InterconnectSpec& net);

struct StragglerConfig {
  /// Node whose compute time is scaled (UINT64_MAX = none).
  std::uint64_t node = ~std::uint64_t{0};
  double slowdown = 1.0;
};

/// Observer of the makespan simulation (dist/timeline.hpp). Forward
/// declared so passing nullptr costs nothing and the header stays light.
class TimelineBuilder;

/// event_driven_makespan keeps one clock (and, with a recorder, an event
/// list) per simulated rank; plans wider than this are refused with a
/// structured Error naming the plan and its rank count.
inline constexpr std::uint64_t kMakespanMaxRanks = std::uint64_t{1} << 22;

/// Event-driven makespan: per-node clocks, rendezvous at each exchange hop.
/// Without a straggler this equals the BSP total (all nodes identical);
/// with one it shows how the delay spreads through the exchange pattern.
/// A non-null `timeline` records every scheduled interval (the recorder
/// does not perturb the result — clocks are computed identically with and
/// without it); use dist::record_timeline for the packaged entry point.
double event_driven_makespan(const sv::ExecutionPlan& plan,
                             const machine::MachineSpec& m,
                             const machine::ExecConfig& config,
                             const InterconnectSpec& net,
                             const StragglerConfig& straggler = {},
                             TimelineBuilder* timeline = nullptr);

/// Legacy per-gate plan, adapted through to_execution_plan.
double event_driven_makespan(const DistPlan& plan,
                             const machine::MachineSpec& m,
                             const machine::ExecConfig& config,
                             const InterconnectSpec& net,
                             const StragglerConfig& straggler = {});

}  // namespace svsim::dist
