#include "dist/dist_sim.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "dist/timeline.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "perf/perf_simulator.hpp"

namespace svsim::dist {

using machine::ExecConfig;
using machine::MachineSpec;

namespace {

/// Publishes what one plan-timing evaluation modeled. Handles resolve per
/// call against the context's registry — caching them in function-local
/// statics pinned the first registry forever (the stale-handle bug; see
/// tests/test_context.cpp).
void record_plan_metrics(obs::MetricsRegistry& registry, std::size_t exchanges,
                         double exchange_bytes) {
  registry.counter("dist.plan_evals").increment();
  registry.counter("dist.exchanges").add(exchanges);
  registry.counter("dist.exchange_bytes")
      .add(static_cast<std::uint64_t>(exchange_bytes));
}

}  // namespace

DistTiming time_plan(const sv::ExecutionPlan& plan, const MachineSpec& m,
                     const ExecConfig& config, const InterconnectSpec& net,
                     const ExecutionContext& ctx) {
  obs::ScopedSpan span("time_plan", obs::SpanCategory::Collective,
                       ctx.tracer());
  const perf::PlanCost cost = perf::cost_plan(plan, m, config, ctx);

  DistTiming t;
  t.compute_seconds = cost.compute_seconds;
  obs::Profiler* const prof = ctx.profiler();
  for (std::size_t i = 0; i < plan.phases.size(); ++i) {
    const auto& phase = plan.phases[i];
    if (phase.kind != sv::PhaseKind::Exchange) continue;
    std::vector<double> hop_seconds;
    hop_seconds.reserve(phase.hops.size());
    for (const auto& hop : phase.hops) {
      const double comm = net.pairwise_exchange_seconds(hop.bytes);
      hop_seconds.push_back(comm);
      t.comm_seconds += comm;
      ++t.num_exchanges;
      t.exchange_bytes += hop.bytes;
    }
    // Attach the modeled wire time to the profiler's matching Exchange
    // sample (simulated runs move amplitudes locally; this is what the
    // phase would cost on the real interconnect).
    if (prof != nullptr && !hop_seconds.empty())
      prof->annotate_exchange(static_cast<std::uint32_t>(i), hop_seconds);
  }
  t.total_seconds = t.compute_seconds + t.comm_seconds;
  t.pipelined_seconds = std::max(t.compute_seconds, t.comm_seconds);
  span.set_bytes(static_cast<std::uint64_t>(t.exchange_bytes));
  record_plan_metrics(ctx.metrics(), t.num_exchanges, t.exchange_bytes);
  return t;
}

DistTiming time_plan(const DistPlan& plan, const MachineSpec& m,
                     const ExecConfig& config, const InterconnectSpec& net) {
  return time_plan(to_execution_plan(plan), m, config, net);
}

double event_driven_makespan(const sv::ExecutionPlan& plan,
                             const MachineSpec& m, const ExecConfig& config,
                             const InterconnectSpec& net,
                             const StragglerConfig& straggler,
                             TimelineBuilder* timeline) {
  obs::ScopedSpan span("makespan", obs::SpanCategory::Collective);
  const std::uint64_t nodes = plan.num_ranks();
  if (nodes > kMakespanMaxRanks)
    throw Error("event_driven_makespan: plan " + plan.summary_id() +
                " spans " + std::to_string(nodes) +
                " ranks, above the per-rank simulation cap of " +
                std::to_string(kMakespanMaxRanks));
  const perf::PlanCost cost = perf::cost_plan(plan, m, config);
  SVSIM_ASSERT(cost.phases.size() == plan.phases.size());
  std::vector<double> clock(nodes, 0.0);

  for (std::size_t i = 0; i < plan.phases.size(); ++i) {
    const sv::PlanPhase& phase = plan.phases[i];
    const auto pidx = static_cast<std::uint32_t>(i);
    if (phase.kind == sv::PhaseKind::Exchange) {
      // Each hop is a rendezvous: both partners must arrive, then pay the
      // wire time together (data must land before the next window runs).
      for (std::size_t h = 0; h < phase.hops.size(); ++h) {
        const sv::ExchangeHop& hop = phase.hops[h];
        if (hop.rank_bit < 0) continue;
        double fixed = 0.0;
        double transfer = 0.0;
        net.pairwise_exchange_split(hop.bytes, fixed, transfer);
        const double comm = fixed + transfer;
        const std::uint64_t mask = std::uint64_t{1}
                                   << static_cast<unsigned>(hop.rank_bit);
        for (std::uint64_t r = 0; r < nodes; ++r) {
          const std::uint64_t partner = r ^ mask;
          if (partner < r) continue;  // each pair once
          if (timeline != nullptr)
            timeline->on_exchange(r, partner, pidx,
                                  static_cast<std::uint32_t>(h), hop.rank_bit,
                                  hop.bytes, fixed, transfer, clock[r],
                                  clock[partner]);
          const double ready = std::max(clock[r], clock[partner]) + comm;
          clock[r] = ready;
          clock[partner] = ready;
        }
      }
      continue;
    }
    const double base = cost.phases[i].seconds;
    if (base == 0.0) continue;
    const auto gates = static_cast<std::uint32_t>(phase.gates.size());
    for (std::uint64_t r = 0; r < nodes; ++r) {
      double compute = base;
      if (r == straggler.node) compute *= straggler.slowdown;
      if (timeline != nullptr)
        timeline->on_compute(r, pidx, phase.kind, gates, clock[r], compute);
      clock[r] += compute;
    }
  }
  return *std::max_element(clock.begin(), clock.end());
}

double event_driven_makespan(const DistPlan& plan, const MachineSpec& m,
                             const ExecConfig& config,
                             const InterconnectSpec& net,
                             const StragglerConfig& straggler) {
  return event_driven_makespan(to_execution_plan(plan), m, config, net,
                               straggler);
}

}  // namespace svsim::dist
