#include "dist/dist_sim.hpp"

#include <algorithm>
#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perf/perf_simulator.hpp"

namespace svsim::dist {

using machine::ExecConfig;
using machine::MachineSpec;

namespace {

double step_compute_seconds(const DistStep& step, const DistPlan& plan,
                            const MachineSpec& m, const ExecConfig& config) {
  if (!step.local_gate) return 0.0;
  return perf::time_gate(*step.local_gate, plan.local_qubits, m, config)
      .seconds;
}

}  // namespace

namespace {

/// Publishes what one plan-timing evaluation modeled.
void record_plan_metrics(std::size_t exchanges, double exchange_bytes) {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& evals = registry.counter("dist.plan_evals");
  static obs::Counter& xchg = registry.counter("dist.exchanges");
  static obs::Counter& bytes = registry.counter("dist.exchange_bytes");
  evals.increment();
  xchg.add(exchanges);
  bytes.add(static_cast<std::uint64_t>(exchange_bytes));
}

}  // namespace

DistTiming time_plan(const DistPlan& plan, const MachineSpec& m,
                     const ExecConfig& config, const InterconnectSpec& net) {
  obs::ScopedSpan span("time_plan", obs::SpanCategory::Collective);
  DistTiming t;
  for (const auto& step : plan.steps) {
    t.compute_seconds += step_compute_seconds(step, plan, m, config);
    if (step.exchange_bytes > 0.0) {
      t.comm_seconds += net.pairwise_exchange_seconds(step.exchange_bytes);
      ++t.num_exchanges;
      t.exchange_bytes += step.exchange_bytes;
    }
  }
  t.total_seconds = t.compute_seconds + t.comm_seconds;
  t.pipelined_seconds = std::max(t.compute_seconds, t.comm_seconds);
  span.set_bytes(static_cast<std::uint64_t>(t.exchange_bytes));
  record_plan_metrics(t.num_exchanges, t.exchange_bytes);
  return t;
}

double event_driven_makespan(const DistPlan& plan, const MachineSpec& m,
                             const ExecConfig& config,
                             const InterconnectSpec& net,
                             const StragglerConfig& straggler) {
  obs::ScopedSpan span("makespan", obs::SpanCategory::Collective);
  const std::uint64_t nodes = plan.num_nodes();
  require(nodes <= (std::uint64_t{1} << 22),
          "event_driven_makespan: too many nodes to simulate per-node");
  std::vector<double> clock(nodes, 0.0);

  for (const auto& step : plan.steps) {
    const double base = step_compute_seconds(step, plan, m, config);
    // Exchange first (data must arrive before the local kernel runs on it).
    if (step.exchange_bytes > 0.0 && step.exchange_rank_bit >= 0) {
      const double comm = net.pairwise_exchange_seconds(step.exchange_bytes);
      const std::uint64_t mask = std::uint64_t{1}
                                 << static_cast<unsigned>(
                                        step.exchange_rank_bit);
      for (std::uint64_t r = 0; r < nodes; ++r) {
        const std::uint64_t partner = r ^ mask;
        if (partner < r) continue;  // each pair once
        const double ready = std::max(clock[r], clock[partner]) + comm;
        clock[r] = ready;
        clock[partner] = ready;
      }
    }
    for (std::uint64_t r = 0; r < nodes; ++r) {
      double compute = base;
      if (r == straggler.node) compute *= straggler.slowdown;
      clock[r] += compute;
    }
  }
  return *std::max_element(clock.begin(), clock.end());
}

}  // namespace svsim::dist
