// Collective-communication cost models over the interconnect.
//
// Distributed state-vector workloads need more than pairwise exchange:
// observable estimation allreduces partial expectations, sampling gathers
// per-node cumulative weights, and initial-state broadcast seeds replicas.
// Standard algorithm models (Hockney-style alpha-beta):
//   broadcast (binomial):            ceil(log2 P) · (α + m·β)
//   allreduce (recursive doubling):  ceil(log2 P) · (α + m·β)       [small m]
//   allreduce (ring):                2(P−1) · (α + (m/P)·β)         [large m]
// with α = latency + software overhead, β = seconds/byte on one link.
#pragma once

#include <cstdint>

#include "dist/interconnect.hpp"

namespace svsim::dist {

enum class AllreduceAlgorithm {
  RecursiveDoubling,  ///< latency-optimal, log2(P) full-message rounds
  Ring,               ///< bandwidth-optimal, 2(P-1) chunked rounds
  Auto,               ///< min of the two (what MPI libraries select)
};

/// Broadcast of `bytes` from one root to all `nodes` (binomial tree).
double broadcast_seconds(std::uint64_t nodes, double bytes,
                         const InterconnectSpec& net);

/// Allreduce of `bytes` across `nodes`.
double allreduce_seconds(std::uint64_t nodes, double bytes,
                         const InterconnectSpec& net,
                         AllreduceAlgorithm algorithm = AllreduceAlgorithm::Auto);

/// Allgather: each node contributes `bytes_per_node`; everyone ends with
/// nodes x bytes_per_node (ring model).
double allgather_seconds(std::uint64_t nodes, double bytes_per_node,
                         const InterconnectSpec& net);

/// Cost of a distributed expectation value of `num_terms` Pauli terms:
/// every node streams its 2^local_qubits partition once per term batch
/// (modeled by the caller's compute estimate) and the partials are
/// allreduced (8 bytes per term). This helper returns only the
/// communication part.
double expectation_allreduce_seconds(std::uint64_t nodes,
                                     std::size_t num_terms,
                                     const InterconnectSpec& net);

}  // namespace svsim::dist
