#include "dist/interconnect.hpp"

namespace svsim::dist {

double InterconnectSpec::pairwise_exchange_seconds(double bytes) const {
  double fixed = 0.0;
  double transfer = 0.0;
  pairwise_exchange_split(bytes, fixed, transfer);
  return fixed + transfer;
}

void InterconnectSpec::pairwise_exchange_split(double bytes,
                                               double& fixed_seconds,
                                               double& transfer_seconds) const {
  const double rate =
      link_bandwidth_gbps * 1e9 * static_cast<double>(concurrent_links);
  fixed_seconds = latency_seconds + software_overhead_seconds;
  transfer_seconds = bytes / rate;
}

InterconnectSpec InterconnectSpec::tofu_d() {
  InterconnectSpec s;
  s.name = "Tofu-D";
  s.link_bandwidth_gbps = 6.8;
  s.concurrent_links = 4;  // four TNIs drive links concurrently
  s.latency_seconds = 0.49e-6;
  s.software_overhead_seconds = 0.3e-6;
  return s;
}

InterconnectSpec InterconnectSpec::infiniband_edr() {
  InterconnectSpec s;
  s.name = "InfiniBand EDR";
  s.link_bandwidth_gbps = 12.5;
  s.concurrent_links = 1;
  s.latency_seconds = 1.0e-6;
  s.software_overhead_seconds = 0.5e-6;
  return s;
}

}  // namespace svsim::dist
