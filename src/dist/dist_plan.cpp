#include "dist/dist_plan.hpp"

#include <algorithm>
#include <limits>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace svsim::dist {

using qc::Circuit;
using qc::Gate;
using qc::GateKind;

const char* scheduler_name(CommScheduler s) {
  return s == CommScheduler::Naive ? "naive" : "remap";
}

namespace {

/// Next-use oracle: for each logical qubit, the ordered gate indices that
/// touch it; a per-qubit cursor advances as planning passes each gate.
class NextUse {
 public:
  NextUse(const Circuit& circuit) : uses_(circuit.num_qubits()),
                                    cursor_(circuit.num_qubits(), 0) {
    for (std::size_t i = 0; i < circuit.size(); ++i)
      for (unsigned q : circuit.gate(i).qubits)
        uses_[q].push_back(i);
  }

  /// First use of qubit q at or after gate index i (SIZE_MAX if none).
  std::size_t next(unsigned q, std::size_t i) {
    auto& c = cursor_[q];
    const auto& u = uses_[q];
    while (c < u.size() && u[c] < i) ++c;
    return c < u.size() ? u[c] : std::numeric_limits<std::size_t>::max();
  }

 private:
  std::vector<std::vector<std::size_t>> uses_;
  std::vector<std::size_t> cursor_;
};

class Planner {
 public:
  Planner(const Circuit& circuit, unsigned node_qubits,
          CommScheduler scheduler, unsigned element_bytes)
      : circuit_(circuit),
        scheduler_(scheduler),
        n_(circuit.num_qubits()),
        d_(node_qubits),
        ln_(n_ - node_qubits),
        partition_bytes_(static_cast<double>(pow2(ln_)) * 2.0 *
                         element_bytes),
        next_use_(circuit),
        slot_of_(n_),
        logical_at_(n_) {
    for (unsigned q = 0; q < n_; ++q) {
      slot_of_[q] = q;
      logical_at_[q] = q;
    }
  }

  DistPlan run() {
    DistPlan plan;
    plan.num_qubits = n_;
    plan.node_qubits = d_;
    plan.local_qubits = ln_;
    for (std::size_t i = 0; i < circuit_.size(); ++i)
      plan_gate(i, circuit_.gate(i), plan);
    plan.final_slot_of = slot_of_;
    for (const auto& s : plan.steps) {
      if (s.exchange_bytes > 0.0) {
        ++plan.num_exchanges;
        plan.total_exchange_bytes += s.exchange_bytes;
      }
    }
    return plan;
  }

 private:
  bool is_local(unsigned slot) const { return slot < ln_; }

  /// Picks a scratch local slot not in `used` (highest local slots first so
  /// proxies rarely collide with real operands).
  unsigned scratch_slot(std::vector<unsigned>& used) const {
    for (unsigned s = ln_; s-- > 0;) {
      if (std::find(used.begin(), used.end(), s) == used.end()) {
        used.push_back(s);
        return s;
      }
    }
    throw Error("dist planner: no free local slot for proxy");
  }

  void add_local(DistPlan& plan, Gate g, double bytes, std::string note,
                 int rank_bit = -1) {
    DistStep step;
    step.local_gate = std::move(g);
    step.exchange_bytes = bytes;
    step.exchange_rank_bit = bytes > 0.0 ? rank_bit : -1;
    step.note = std::move(note);
    plan.steps.push_back(std::move(step));
  }

  void add_comm_only(DistPlan& plan, double bytes, std::string note,
                     int rank_bit = -1) {
    DistStep step;
    step.exchange_bytes = bytes;
    step.exchange_rank_bit = rank_bit;
    step.note = std::move(note);
    plan.steps.push_back(std::move(step));
  }

  /// Performs a remap swap between the node slot of logical qubit `q` and a
  /// local slot chosen by Belady eviction. Records the half-exchange.
  /// Slots holding operands of the gate being planned are never evicted.
  void remap_in(std::size_t gate_index, unsigned q, DistPlan& plan) {
    const Gate& current = circuit_.gate(gate_index);
    // Choose the local slot whose occupant's next use is farthest away.
    unsigned best_slot = std::numeric_limits<unsigned>::max();
    std::size_t best_next = 0;
    for (unsigned s = 0; s < ln_; ++s) {
      const unsigned occupant = logical_at_[s];
      if (std::find(current.qubits.begin(), current.qubits.end(), occupant) !=
          current.qubits.end())
        continue;  // operand of the current gate: not evictable
      const std::size_t nu = next_use_.next(occupant, gate_index + 1);
      if (best_slot == std::numeric_limits<unsigned>::max() ||
          nu >= best_next) {
        best_next = nu;
        best_slot = s;
      }
    }
    require(best_slot != std::numeric_limits<unsigned>::max(),
            "dist planner: no evictable local slot");
    const unsigned node_slot = slot_of_[q];
    const unsigned evicted = logical_at_[best_slot];
    std::swap(logical_at_[best_slot], logical_at_[node_slot]);
    slot_of_[q] = best_slot;
    slot_of_[evicted] = node_slot;
    add_comm_only(plan, partition_bytes_ / 2.0,
                  "remap q" + std::to_string(q) + " into slot " +
                      std::to_string(best_slot),
                  static_cast<int>(node_slot - ln_));
  }

  void plan_gate(std::size_t i, const Gate& g, DistPlan& plan) {
    if (g.kind == GateKind::BARRIER || g.kind == GateKind::I) return;
    require(g.is_unitary_op(),
            "dist planner: circuit must be unitary (no measure/reset)");

    // Diagonal gates never communicate.
    if (g.is_diagonal()) {
      plan_diagonal(g, plan);
      return;
    }

    // Split operands: node-slot controls are free; node-slot targets force
    // an exchange (naive) or a remap.
    const auto controls = g.controls();
    const auto targets = g.targets();
    std::vector<unsigned> node_targets;
    for (unsigned q : targets)
      if (!is_local(slot_of_[q])) node_targets.push_back(q);

    if (scheduler_ == CommScheduler::Remap && !node_targets.empty()) {
      for (unsigned q : node_targets) remap_in(i, q, plan);
      node_targets.clear();
    }

    unsigned local_controls = 0;
    for (unsigned q : controls)
      if (is_local(slot_of_[q])) ++local_controls;

    // Build the local proxy gate: slot-mapped operands, node-slot operands
    // replaced by scratch local slots (post-exchange the work is local).
    Gate proxy = g;
    std::vector<unsigned> used;
    for (unsigned q : g.qubits)
      if (is_local(slot_of_[q])) used.push_back(slot_of_[q]);
    for (auto& q : proxy.qubits) {
      const unsigned slot = slot_of_[q];
      q = is_local(slot) ? slot : scratch_slot(used);
    }

    double bytes = 0.0;
    int rank_bit = -1;
    std::string note = "local";
    if (!node_targets.empty()) {
      // One full-duplex partition exchange per node-slot target, restricted
      // by local controls; a local<->node SWAP moves only mismatched halves.
      double per_exchange =
          partition_bytes_ / static_cast<double>(pow2(local_controls));
      if (g.kind == GateKind::SWAP || g.kind == GateKind::CSWAP) {
        const bool one_side_local =
            node_targets.size() == 1 && targets.size() == 2;
        if (one_side_local) per_exchange /= 2.0;
      }
      bytes = per_exchange * static_cast<double>(node_targets.size());
      rank_bit = static_cast<int>(slot_of_[node_targets.front()] - ln_);
      note = "exchange for " + std::string(g.name());
    } else {
      // All remaining node-slot operands are controls: free (conditional
      // local execution on half the nodes). Drop them from the proxy cost?
      // Keep the reduced arity: the makespan node still runs the target op.
      note = controls.empty() ? "local" : "node-control local";
    }
    add_local(plan, std::move(proxy), bytes, std::move(note), rank_bit);
  }

  void plan_diagonal(const Gate& g, DistPlan& plan) {
    std::vector<unsigned> local_slots;
    for (unsigned q : g.qubits)
      if (is_local(slot_of_[q])) local_slots.push_back(slot_of_[q]);

    if (local_slots.size() == g.qubits.size()) {
      Gate proxy = g;
      for (auto& q : proxy.qubits) q = slot_of_[q];
      add_local(plan, std::move(proxy), 0.0, "local diagonal");
      return;
    }
    if (local_slots.empty()) {
      // Pure rank-dependent phase: each node scales its whole partition.
      add_local(plan, Gate::rz(0, 0.1), 0.0, "rank-phase diagonal");
      return;
    }
    // Mixed: nodes whose rank bits satisfy the node operands apply the
    // residual diagonal on the local slots.
    std::vector<qc::cplx> entries(pow2(static_cast<unsigned>(
                                      local_slots.size())),
                                  qc::cplx{1.0, 0.0});
    entries.back() = qc::cplx{0.0, 1.0};  // cost proxy values
    add_local(plan, Gate::diag(local_slots, std::move(entries)), 0.0,
              "conditional local diagonal");
  }

  const Circuit& circuit_;
  CommScheduler scheduler_;
  unsigned n_, d_, ln_;
  double partition_bytes_;
  NextUse next_use_;
  std::vector<unsigned> slot_of_;    ///< logical qubit -> slot
  std::vector<unsigned> logical_at_; ///< slot -> logical qubit
};

}  // namespace

DistPlan plan_distribution(const Circuit& circuit, unsigned node_qubits,
                           CommScheduler scheduler, unsigned element_bytes) {
  require(node_qubits < circuit.num_qubits(),
          "plan_distribution: node qubits must be fewer than total qubits");
  require(circuit.num_qubits() - node_qubits >= 2,
          "plan_distribution: need at least 2 local qubits");
  Planner planner(circuit, node_qubits, scheduler, element_bytes);
  return planner.run();
}

}  // namespace svsim::dist
