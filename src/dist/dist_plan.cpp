#include "dist/dist_plan.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "sv/fusion.hpp"
#include "sv/sweep.hpp"

namespace svsim::dist {

using qc::Circuit;
using qc::Gate;
using qc::GateKind;

const char* scheduler_name(CommScheduler s) {
  return s == CommScheduler::Naive ? "naive" : "remap";
}

namespace {

/// Next-use oracle: for each logical qubit, the ordered gate indices that
/// touch it; a per-qubit cursor advances as planning passes each gate.
class NextUse {
 public:
  NextUse(const Circuit& circuit) : uses_(circuit.num_qubits()),
                                    cursor_(circuit.num_qubits(), 0) {
    for (std::size_t i = 0; i < circuit.size(); ++i)
      for (unsigned q : circuit.gate(i).qubits)
        uses_[q].push_back(i);
  }

  /// First use of qubit q at or after gate index i (SIZE_MAX if none).
  std::size_t next(unsigned q, std::size_t i) {
    auto& c = cursor_[q];
    const auto& u = uses_[q];
    while (c < u.size() && u[c] < i) ++c;
    return c < u.size() ? u[c] : std::numeric_limits<std::size_t>::max();
  }

 private:
  std::vector<std::vector<std::size_t>> uses_;
  std::vector<std::size_t> cursor_;
};

/// The qubit->slot permutation both distribution compilers maintain, with
/// the Belady eviction rule (evict the local occupant whose next use is
/// farthest in the future, never an operand of the gate being planned).
class SlotMap {
 public:
  SlotMap(unsigned num_qubits, unsigned local_qubits)
      : ln_(local_qubits), slot_of_(num_qubits), logical_at_(num_qubits) {
    for (unsigned q = 0; q < num_qubits; ++q) {
      slot_of_[q] = q;
      logical_at_[q] = q;
    }
  }

  unsigned slot_of(unsigned q) const { return slot_of_[q]; }
  unsigned logical_at(unsigned s) const { return logical_at_[s]; }
  bool is_local_slot(unsigned s) const { return s < ln_; }
  bool is_local(unsigned q) const { return slot_of_[q] < ln_; }
  const std::vector<unsigned>& slots() const { return slot_of_; }

  bool is_identity() const {
    for (unsigned q = 0; q < slot_of_.size(); ++q)
      if (slot_of_[q] != q) return false;
    return true;
  }

  /// Local slot whose occupant's next use past `gate_index` is farthest
  /// away; slots holding operands of `current` are never evicted.
  unsigned choose_eviction(const Gate& current, std::size_t gate_index,
                           NextUse& next_use) const {
    unsigned best_slot = std::numeric_limits<unsigned>::max();
    std::size_t best_next = 0;
    for (unsigned s = 0; s < ln_; ++s) {
      const unsigned occupant = logical_at_[s];
      if (std::find(current.qubits.begin(), current.qubits.end(), occupant) !=
          current.qubits.end())
        continue;  // operand of the current gate: not evictable
      const std::size_t nu = next_use.next(occupant, gate_index + 1);
      if (best_slot == std::numeric_limits<unsigned>::max() ||
          nu >= best_next) {
        best_next = nu;
        best_slot = s;
      }
    }
    require(best_slot != std::numeric_limits<unsigned>::max(),
            "dist planner: no evictable local slot");
    return best_slot;
  }

  void swap_slots(unsigned a, unsigned b) {
    std::swap(logical_at_[a], logical_at_[b]);
    slot_of_[logical_at_[a]] = a;
    slot_of_[logical_at_[b]] = b;
  }

 private:
  unsigned ln_;
  std::vector<unsigned> slot_of_;    ///< logical qubit -> slot
  std::vector<unsigned> logical_at_; ///< slot -> logical qubit
};

/// Bytes each rank exchanges (one direction) for a non-diagonal gate with
/// `node_targets` targets on node slots under the naive scheduler: one
/// full-duplex partition exchange per node-slot target, restricted by local
/// controls; a local<->node SWAP moves only the mismatched halves.
double naive_exchange_bytes(const Gate& g, std::size_t node_targets,
                            std::size_t total_targets,
                            unsigned local_controls, double partition_bytes) {
  double per_exchange =
      partition_bytes / static_cast<double>(pow2(local_controls));
  if (g.kind == GateKind::SWAP || g.kind == GateKind::CSWAP) {
    const bool one_side_local = node_targets == 1 && total_targets == 2;
    if (one_side_local) per_exchange /= 2.0;
  }
  return per_exchange * static_cast<double>(node_targets);
}

class Planner {
 public:
  Planner(const Circuit& circuit, unsigned node_qubits,
          CommScheduler scheduler, unsigned element_bytes)
      : circuit_(circuit),
        scheduler_(scheduler),
        n_(circuit.num_qubits()),
        d_(node_qubits),
        ln_(n_ - node_qubits),
        partition_bytes_(static_cast<double>(pow2(ln_)) * 2.0 *
                         element_bytes),
        next_use_(circuit),
        map_(n_, ln_) {}

  DistPlan run() {
    DistPlan plan;
    plan.num_qubits = n_;
    plan.node_qubits = d_;
    plan.local_qubits = ln_;
    for (std::size_t i = 0; i < circuit_.size(); ++i)
      plan_gate(i, circuit_.gate(i), plan);
    plan.final_slot_of = map_.slots();
    for (const auto& s : plan.steps) {
      if (s.exchange_bytes > 0.0) {
        ++plan.num_exchanges;
        plan.total_exchange_bytes += s.exchange_bytes;
      }
    }
    return plan;
  }

 private:
  /// Picks a scratch local slot not in `used` (highest local slots first so
  /// proxies rarely collide with real operands).
  unsigned scratch_slot(std::vector<unsigned>& used) const {
    for (unsigned s = ln_; s-- > 0;) {
      if (std::find(used.begin(), used.end(), s) == used.end()) {
        used.push_back(s);
        return s;
      }
    }
    throw Error("dist planner: no free local slot for proxy");
  }

  void add_local(DistPlan& plan, Gate g, double bytes, std::string note,
                 int rank_bit = -1) {
    DistStep step;
    step.local_gate = std::move(g);
    step.exchange_bytes = bytes;
    step.exchange_rank_bit = bytes > 0.0 ? rank_bit : -1;
    step.note = std::move(note);
    plan.steps.push_back(std::move(step));
  }

  void add_comm_only(DistPlan& plan, double bytes, std::string note,
                     int rank_bit = -1) {
    DistStep step;
    step.exchange_bytes = bytes;
    step.exchange_rank_bit = rank_bit;
    step.note = std::move(note);
    plan.steps.push_back(std::move(step));
  }

  /// Performs a remap swap between the node slot of logical qubit `q` and a
  /// local slot chosen by Belady eviction. Records the half-exchange.
  void remap_in(std::size_t gate_index, unsigned q, DistPlan& plan) {
    const Gate& current = circuit_.gate(gate_index);
    const unsigned best_slot =
        map_.choose_eviction(current, gate_index, next_use_);
    const unsigned node_slot = map_.slot_of(q);
    map_.swap_slots(best_slot, node_slot);
    add_comm_only(plan, partition_bytes_ / 2.0,
                  "remap q" + std::to_string(q) + " into slot " +
                      std::to_string(best_slot),
                  static_cast<int>(node_slot - ln_));
  }

  void plan_gate(std::size_t i, const Gate& g, DistPlan& plan) {
    if (g.kind == GateKind::BARRIER || g.kind == GateKind::I) return;
    require(g.is_unitary_op(),
            "dist planner: circuit must be unitary (no measure/reset)");

    // Diagonal gates never communicate.
    if (g.is_diagonal()) {
      plan_diagonal(g, plan);
      return;
    }

    // Split operands: node-slot controls are free; node-slot targets force
    // an exchange (naive) or a remap.
    const auto controls = g.controls();
    const auto targets = g.targets();
    std::vector<unsigned> node_targets;
    for (unsigned q : targets)
      if (!map_.is_local(q)) node_targets.push_back(q);

    if (scheduler_ == CommScheduler::Remap && !node_targets.empty()) {
      for (unsigned q : node_targets) remap_in(i, q, plan);
      node_targets.clear();
    }

    unsigned local_controls = 0;
    for (unsigned q : controls)
      if (map_.is_local(q)) ++local_controls;

    // Build the local proxy gate: slot-mapped operands, node-slot operands
    // replaced by scratch local slots (post-exchange the work is local).
    Gate proxy = g;
    std::vector<unsigned> used;
    for (unsigned q : g.qubits)
      if (map_.is_local(q)) used.push_back(map_.slot_of(q));
    for (auto& q : proxy.qubits) {
      const unsigned slot = map_.slot_of(q);
      q = map_.is_local_slot(slot) ? slot : scratch_slot(used);
    }

    double bytes = 0.0;
    int rank_bit = -1;
    std::string note = "local";
    if (!node_targets.empty()) {
      bytes = naive_exchange_bytes(g, node_targets.size(), targets.size(),
                                   local_controls, partition_bytes_);
      rank_bit =
          static_cast<int>(map_.slot_of(node_targets.front()) - ln_);
      note = "exchange for " + std::string(g.name());
    } else {
      // All remaining node-slot operands are controls: free (conditional
      // local execution on half the nodes). Drop them from the proxy cost?
      // Keep the reduced arity: the makespan node still runs the target op.
      note = controls.empty() ? "local" : "node-control local";
    }
    add_local(plan, std::move(proxy), bytes, std::move(note), rank_bit);
  }

  void plan_diagonal(const Gate& g, DistPlan& plan) {
    std::vector<unsigned> local_slots;
    for (unsigned q : g.qubits)
      if (map_.is_local(q)) local_slots.push_back(map_.slot_of(q));

    if (local_slots.size() == g.qubits.size()) {
      Gate proxy = g;
      for (auto& q : proxy.qubits) q = map_.slot_of(q);
      add_local(plan, std::move(proxy), 0.0, "local diagonal");
      return;
    }
    if (local_slots.empty()) {
      // Pure rank-dependent phase: each node scales its whole partition.
      add_local(plan, Gate::rz(0, 0.1), 0.0, "rank-phase diagonal");
      return;
    }
    // Mixed: nodes whose rank bits satisfy the node operands apply the
    // residual diagonal on the local slots.
    std::vector<qc::cplx> entries(pow2(static_cast<unsigned>(
                                      local_slots.size())),
                                  qc::cplx{1.0, 0.0});
    entries.back() = qc::cplx{0.0, 1.0};  // cost proxy values
    add_local(plan, Gate::diag(local_slots, std::move(entries)), 0.0,
              "conditional local diagonal");
  }

  const Circuit& circuit_;
  CommScheduler scheduler_;
  unsigned n_, d_, ln_;
  double partition_bytes_;
  NextUse next_use_;
  SlotMap map_;
};

/// Compiles a circuit into the shared ExecutionPlan IR: the same remap
/// decisions as Planner, but expressed as Exchange phases with slot-swap
/// hops and exchange-free windows handed to the sweep grouper.
class DistCompiler {
 public:
  DistCompiler(const Circuit& circuit, const DistExecOptions& options)
      : circuit_(circuit),
        options_(options),
        n_(circuit.num_qubits()),
        d_(0),
        ln_(0),
        next_use_(circuit),
        map_(circuit.num_qubits(), 0) {}

  sv::ExecutionPlan run(unsigned node_qubits, unsigned num_clbits) {
    d_ = node_qubits;
    ln_ = n_ - node_qubits;
    partition_bytes_ = static_cast<double>(pow2(ln_)) * 2.0 *
                       options_.element_bytes;
    map_ = SlotMap(n_, ln_);

    plan_.num_qubits = n_;
    plan_.node_qubits = d_;
    plan_.local_qubits = ln_;
    plan_.num_clbits = num_clbits;
    if (options_.plan.blocking) {
      const unsigned b =
          options_.plan.block_qubits != 0
              ? options_.plan.block_qubits
              : sv::auto_block_qubits(ln_, sv::plan_cache_budget(options_.plan),
                                      options_.plan.amp_bytes,
                                      options_.plan.min_free_qubits);
      // Sweeps traverse the local partition; blocks never cross ranks.
      plan_.block_qubits = std::min(b, ln_);
    }

    for (std::size_t i = 0; i < circuit_.size(); ++i)
      compile_gate(i, circuit_.gate(i));
    flush_window();
    if (options_.restore_layout) emit_restore();

    plan_.final_slot_of = map_.slots();
    plan_.finalize();
    plan_.validate();
    sv::note_plan_compiled(plan_);
    return std::move(plan_);
  }

 private:
  Gate slot_mapped(const Gate& g) const {
    Gate mapped = g;
    for (auto& q : mapped.qubits) q = map_.slot_of(q);
    return mapped;
  }

  void flush_window() {
    if (window_.empty()) return;
    sv::append_window_phases(plan_, std::move(window_), options_.plan);
    window_.clear();
  }

  void push_exchange(sv::PlanPhase phase) {
    SVSIM_ASSERT(phase.kind == sv::PhaseKind::Exchange);
    if (phase.hops.empty()) return;
    plan_.phases.push_back(std::move(phase));
  }

  void add_hop(sv::PlanPhase& phase, unsigned local_slot, unsigned node_slot) {
    sv::ExchangeHop hop;
    hop.local_slot = local_slot;
    hop.node_slot = node_slot;
    hop.rank_bit = static_cast<int>(node_slot - ln_);
    hop.bytes = partition_bytes_ / 2.0;
    phase.hops.push_back(hop);
    map_.swap_slots(local_slot, node_slot);
  }

  /// Emits the Exchange phase that returns the register to the identity
  /// layout. Every hop is a local<->node slot swap: node-home qubits are
  /// parked first, then residual local cycles are resolved through a node
  /// slot acting as the exchange buffer (rank-local permutes would be free
  /// in a real machine, but modeling them as exchanges keeps the IR to one
  /// data-movement primitive and is conservative on cost).
  void emit_restore() {
    if (map_.is_identity()) return;
    sv::PlanPhase ex;
    ex.kind = sv::PhaseKind::Exchange;
    ex.moves_data = true;
    ex.note = "restore qubit layout";

    for (unsigned ns = ln_; ns < n_; ++ns) {
      while (map_.logical_at(ns) != ns) {
        const unsigned s = map_.slot_of(ns);
        if (map_.is_local_slot(s)) {
          add_hop(ex, s, ns);
        } else {
          add_hop(ex, 0, s);  // route through local slot 0
        }
      }
    }
    // Node slots all hold their own qubits now; fix local cycles through
    // node slot ln_ (it is restored between cycles, so hops stay valid).
    for (unsigned c = 0; c < ln_; ++c) {
      if (map_.logical_at(c) == c) continue;
      add_hop(ex, c, ln_);
      while (map_.logical_at(ln_) != ln_) {
        const unsigned waiting = map_.logical_at(ln_);
        add_hop(ex, waiting, ln_);
      }
    }
    push_exchange(std::move(ex));
  }

  void compile_gate(std::size_t i, const Gate& g) {
    if (g.kind == GateKind::MEASURE || g.kind == GateKind::RESET) {
      flush_window();
      emit_restore();  // stochastic collapse must see logical qubits
      if (plan_.phases.empty() ||
          plan_.phases.back().kind != sv::PhaseKind::MeasureFlush) {
        sv::PlanPhase flush;
        flush.kind = sv::PhaseKind::MeasureFlush;
        plan_.phases.push_back(std::move(flush));
      }
      plan_.phases.back().gates.push_back(g);
      return;
    }
    if (g.kind == GateKind::BARRIER || g.kind == GateKind::I) {
      window_.push_back(slot_mapped(g));
      return;
    }
    require(g.is_unitary_op(), "compile_distributed: unsupported operation");

    // Diagonal gates and node-slot controls are free on the wire; only a
    // non-diagonal *target* on a node slot needs the interconnect.
    if (!g.is_diagonal()) {
      std::vector<unsigned> node_targets;
      for (unsigned q : g.targets())
        if (!map_.is_local(q)) node_targets.push_back(q);

      if (!node_targets.empty()) {
        flush_window();
        sv::PlanPhase ex;
        ex.kind = sv::PhaseKind::Exchange;
        if (options_.scheduler == CommScheduler::Remap) {
          ex.moves_data = true;
          ex.note = "remap for " + std::string(g.name());
          for (unsigned q : node_targets) {
            const unsigned node_slot = map_.slot_of(q);
            const unsigned local_slot =
                map_.choose_eviction(g, i, next_use_);
            add_hop(ex, local_slot, node_slot);
          }
        } else {
          // Naive per-gate scheduler: the gate itself straddles the rank
          // boundary; the hop records cost only and the layout never moves.
          unsigned local_controls = 0;
          for (unsigned q : g.controls())
            if (map_.is_local(q)) ++local_controls;
          ex.moves_data = false;
          ex.note = "exchange for " + std::string(g.name());
          sv::ExchangeHop hop;
          hop.rank_bit = static_cast<int>(
              map_.slot_of(node_targets.front()) - ln_);
          hop.bytes = naive_exchange_bytes(g, node_targets.size(),
                                           g.targets().size(), local_controls,
                                           partition_bytes_);
          ex.hops.push_back(hop);
        }
        push_exchange(std::move(ex));
      }
    }
    window_.push_back(slot_mapped(g));
  }

  const Circuit& circuit_;
  const DistExecOptions& options_;
  unsigned n_, d_, ln_;
  double partition_bytes_ = 0.0;
  NextUse next_use_;
  SlotMap map_;
  std::vector<Gate> window_;
  sv::ExecutionPlan plan_;
};

}  // namespace

DistPlan plan_distribution(const Circuit& circuit, unsigned node_qubits,
                           CommScheduler scheduler, unsigned element_bytes) {
  require(node_qubits < circuit.num_qubits(),
          "plan_distribution: node qubits must be fewer than total qubits");
  require(circuit.num_qubits() - node_qubits >= 2,
          "plan_distribution: need at least 2 local qubits");
  Planner planner(circuit, node_qubits, scheduler, element_bytes);
  return planner.run();
}

sv::ExecutionPlan compile_distributed(const Circuit& circuit,
                                      unsigned node_qubits,
                                      const DistExecOptions& options) {
  require(node_qubits < circuit.num_qubits(),
          "compile_distributed: node qubits must be fewer than total qubits");
  require(circuit.num_qubits() - node_qubits >= 2,
          "compile_distributed: need at least 2 local qubits");

  qc::Circuit fused_storage(1);
  const qc::Circuit* source = &circuit;
  if (options.plan.fusion) {
    sv::FusionOptions fo;
    fo.max_width = options.plan.fusion_width;
    fused_storage = sv::fuse(circuit, fo);
    source = &fused_storage;
  }

  DistCompiler compiler(*source, options);
  return compiler.run(node_qubits, circuit.num_clbits());
}

sv::ExecutionPlan to_execution_plan(const DistPlan& plan) {
  sv::ExecutionPlan ep;
  ep.num_qubits = plan.num_qubits;
  ep.node_qubits = plan.node_qubits;
  ep.local_qubits = plan.local_qubits;
  ep.final_slot_of = plan.final_slot_of;

  for (const auto& step : plan.steps) {
    if (step.exchange_bytes > 0.0) {
      // Adjacent comm-only steps (e.g. two remaps feeding one gate) merge
      // into a single Exchange phase so windows stay maximal.
      if (ep.phases.empty() ||
          ep.phases.back().kind != sv::PhaseKind::Exchange) {
        sv::PlanPhase ex;
        ex.kind = sv::PhaseKind::Exchange;
        ex.moves_data = false;
        ex.note = step.note;
        ep.phases.push_back(std::move(ex));
      }
      sv::ExchangeHop hop;
      hop.rank_bit = step.exchange_rank_bit;
      hop.bytes = step.exchange_bytes;
      ep.phases.back().hops.push_back(hop);
    }
    if (step.local_gate.has_value()) {
      sv::PlanPhase phase;
      phase.kind = sv::PhaseKind::DenseGate;
      phase.gates.push_back(*step.local_gate);
      phase.note = step.note;
      ep.phases.push_back(std::move(phase));
    }
  }

  ep.finalize();
  return ep;
}

}  // namespace svsim::dist
