#include "dist/collectives.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace svsim::dist {

namespace {

double alpha(const InterconnectSpec& net) {
  return net.latency_seconds + net.software_overhead_seconds;
}

double beta(const InterconnectSpec& net) {
  // One link per peer in a collective step (TNI concurrency helps the
  // pairwise-exchange path, not tree steps to a single peer).
  return 1.0 / (net.link_bandwidth_gbps * 1e9);
}

double log2_ceil(std::uint64_t nodes) {
  double rounds = 0.0;
  std::uint64_t span = 1;
  while (span < nodes) {
    span *= 2;
    rounds += 1.0;
  }
  return rounds;
}

}  // namespace

double broadcast_seconds(std::uint64_t nodes, double bytes,
                         const InterconnectSpec& net) {
  require(nodes >= 1, "broadcast_seconds: need at least one node");
  if (nodes == 1) return 0.0;
  return log2_ceil(nodes) * (alpha(net) + bytes * beta(net));
}

double allreduce_seconds(std::uint64_t nodes, double bytes,
                         const InterconnectSpec& net,
                         AllreduceAlgorithm algorithm) {
  require(nodes >= 1, "allreduce_seconds: need at least one node");
  if (nodes == 1) return 0.0;
  const double doubling =
      log2_ceil(nodes) * (alpha(net) + bytes * beta(net));
  const double ring =
      2.0 * static_cast<double>(nodes - 1) *
      (alpha(net) + bytes / static_cast<double>(nodes) * beta(net));
  switch (algorithm) {
    case AllreduceAlgorithm::RecursiveDoubling: return doubling;
    case AllreduceAlgorithm::Ring: return ring;
    case AllreduceAlgorithm::Auto: return std::min(doubling, ring);
  }
  throw Error("allreduce_seconds: unhandled algorithm");
}

double allgather_seconds(std::uint64_t nodes, double bytes_per_node,
                         const InterconnectSpec& net) {
  require(nodes >= 1, "allgather_seconds: need at least one node");
  if (nodes == 1) return 0.0;
  return static_cast<double>(nodes - 1) *
         (alpha(net) + bytes_per_node * beta(net));
}

double expectation_allreduce_seconds(std::uint64_t nodes,
                                     std::size_t num_terms,
                                     const InterconnectSpec& net) {
  return allreduce_seconds(nodes, 8.0 * static_cast<double>(num_terms), net);
}

}  // namespace svsim::dist
